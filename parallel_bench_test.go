// Parallel-engine throughput benches: the same 8-core heterogeneous
// mix stepped by the sequential scheduler and by the parallel
// epoch-barrier engine. Both report *aggregate* instr/s (instructions
// summed across all cores), so on a multi-CPU host the pair directly
// exposes the parallel speedup; `make benchgate` holds their ratio on
// hosts with enough CPUs. On a single-CPU host the parallel engine
// degenerates to cooperative scheduling (Gosched-driven spins) and the
// pair instead bounds its coordination overhead.
package ipcp_test

import (
	"testing"

	"ipcp/internal/sim"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// benchMix8 spans the paper's Fig. 15 spatial classes twice over:
// dense streaming (lbm, bwaves, roms), irregular (mcf, omnetpp),
// constant stride (exchange2), and big-code (gcc, xalancbmk).
var benchMix8 = []string{
	"lbm-94", "mcf-1536", "bwaves-2931", "exchange2-387",
	"roms-1070", "omnetpp-17", "gcc-2226", "xalancbmk-165",
}

func benchMixThroughput(b *testing.B, parallel bool) {
	const instrPerCorePerOp = 5_000
	cfg := sim.PaperConfig(len(benchMix8))
	cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.ParallelCores = parallel
	streams := make([]trace.Stream, len(benchMix8))
	for i, name := range benchMix8 {
		w, err := workload.Named(name)
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = w.New(1)
	}
	sys, err := sim.Build(cfg, streams)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pools, rings, and page tables past their growth phase.
	if err := sys.Advance(20_000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Advance(instrPerCorePerOp); err != nil {
			b.Fatal(err)
		}
	}
	aggregate := float64(instrPerCorePerOp * len(benchMix8))
	b.ReportMetric(aggregate*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkMultiCoreSeqThroughput is the sequential baseline of the
// pair: the 8-core mix stepped by the single-goroutine scheduler.
func BenchmarkMultiCoreSeqThroughput(b *testing.B) {
	benchMixThroughput(b, false)
}

// BenchmarkParallelThroughput steps the same mix with one goroutine
// per core slice under the deterministic epoch barrier. Results are
// bit-identical to the sequential run (see TestParallelMatchesSequential
// and the audit differential); only wall-clock differs.
func BenchmarkParallelThroughput(b *testing.B) {
	benchMixThroughput(b, true)
}
