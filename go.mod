module ipcp

go 1.22
