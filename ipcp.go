// Package ipcp is the public facade of the IPCP reproduction: a
// trace-driven cache-hierarchy simulator with the paper's Instruction
// Pointer Classifier-based spatial Prefetcher (Pakalapati & Panda,
// ISCA 2020), the baseline prefetchers it is evaluated against, and
// synthetic workloads standing in for the paper's trace suites.
//
// Quickstart:
//
//	res, err := ipcp.Run(ipcp.RunConfig{
//		Workload:      "gcc-2226",
//		L1DPrefetcher: "ipcp",
//		L2Prefetcher:  "ipcp",
//	})
//
// The heavy lifting lives in the internal packages; this package
// re-exports the stable surface a downstream user needs: running
// simulations, enumerating workloads and prefetchers, constructing
// custom-configured IPCP instances, and the Table I storage budget.
package ipcp

import (
	"context"
	"fmt"

	"ipcp/internal/audit"
	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// Result is a simulation outcome (per-core IPC, per-level cache
// statistics, DRAM statistics).
type Result = sim.Result

// SystemConfig is the full simulated-system configuration; see
// PaperSystem for the paper's Table II values.
type SystemConfig = sim.Config

// PaperSystem returns the paper's Table II system for the given core
// count.
func PaperSystem(cores int) SystemConfig { return sim.PaperConfig(cores) }

// L1Config and L2Config parametrize IPCP at the two levels.
type L1Config = core.L1Config

// L2Config parametrizes the L2 IPCP.
type L2Config = core.L2Config

// DefaultL1Config returns the paper's L1 IPCP configuration.
func DefaultL1Config() L1Config { return core.DefaultL1Config() }

// DefaultL2Config returns the paper's L2 IPCP configuration.
func DefaultL2Config() L2Config { return core.DefaultL2Config() }

// Storage is the Table I hardware budget.
type Storage = core.Storage

// StorageBudget computes the Table I budget for the given configs.
func StorageBudget(l1 L1Config, l2 L2Config) Storage {
	return core.ComputeStorage(l1, l2)
}

// Prefetcher is the hardware-prefetcher interface; custom prefetchers
// implement it and plug into any cache level.
type Prefetcher = prefetch.Prefetcher

// NewL1IPCP constructs the paper's L1-D bouquet prefetcher.
func NewL1IPCP(cfg L1Config) Prefetcher { return core.NewL1IPCP(cfg) }

// NewL2IPCP constructs the metadata-driven L2 IPCP.
func NewL2IPCP(cfg L2Config) Prefetcher { return core.NewL2IPCP(cfg) }

// Prefetchers lists the registered prefetcher names usable in
// RunConfig ("none", "nl", "ipstride", "spp", "bingo", "ipcp", ...).
func Prefetchers() []string { return prefetch.Names() }

// Workloads lists the registered synthetic workload names.
func Workloads() []string { return workload.Names(workload.All()) }

// MemoryIntensiveWorkloads lists the stand-ins for the paper's 46
// LLC-MPKI ≥ 1 SPEC traces.
func MemoryIntensiveWorkloads() []string {
	return workload.Names(workload.MemoryIntensive())
}

// RunConfig describes one simulation run through the facade.
type RunConfig struct {
	// Workload names the trace for single-core runs; Mix supplies one
	// workload per core for multi-core runs (Workload is ignored when
	// Mix is set).
	Workload string
	Mix      []string

	// Prefetcher names per level ("" = none). See Prefetchers().
	L1DPrefetcher string
	L2Prefetcher  string
	LLCPrefetcher string

	// CustomL1D plugs an explicit prefetcher instance into the L1-D
	// (overrides L1DPrefetcher) — the hook for user-written
	// prefetchers and configured IPCP variants.
	CustomL1D Prefetcher

	// Warmup and Measure are per-core instruction budgets; zero values
	// default to 50k / 200k.
	Warmup, Measure uint64

	// Seed drives workload randomness and page allocation.
	Seed int64

	// Parallel steps each core's private-cache slice on its own
	// goroutine under the deterministic epoch barrier. Results are
	// bit-identical to the sequential scheduler; it only pays off for
	// multi-core mixes on multi-CPU hosts. Ignored (sequential fallback)
	// for single-core runs and when Tracer or Audit is attached.
	Parallel bool

	// System optionally overrides the whole system configuration
	// (defaults to PaperSystem for the mix size).
	System *SystemConfig

	// Tracer, when non-nil, records structured telemetry events
	// (prefetch lifecycle, class transitions, throttle decisions) for
	// the measured phase. Nil keeps the hot path allocation-free.
	Tracer *Tracer

	// Intervals, when non-nil, receives one metrics Sample every
	// Intervals.Every cycles of the measured phase.
	Intervals *IntervalLog

	// Audit, when non-nil, attaches the differential audit harness: a
	// functional shadow model of every cache and a straight-from-the-
	// paper reference oracle running in lockstep with each IPCP
	// instance. Invariant violations and reference divergences
	// accumulate on the checker; RunContext finalizes it, so
	// Audit.Err() is ready as soon as the run returns. Auditing slows
	// the simulation severalfold — leave nil for performance runs.
	Audit *AuditChecker
}

// Run builds and runs one simulation.
func Run(rc RunConfig) (*Result, error) {
	return RunContext(context.Background(), rc)
}

// RunContext is Run with cooperative cancellation: the simulation's
// cycle loop polls ctx every few thousand cycles, so a cancelled or
// timed-out context stops the run promptly with ctx's error. Telemetry
// collected up to that point (Tracer events, Intervals samples) remains
// readable — an interrupted run still flushes what it observed.
func RunContext(ctx context.Context, rc RunConfig) (*Result, error) {
	mix := rc.Mix
	if len(mix) == 0 {
		if rc.Workload == "" {
			return nil, fmt.Errorf("ipcp: RunConfig needs a Workload or a Mix")
		}
		mix = []string{rc.Workload}
	}
	var cfg SystemConfig
	if rc.System != nil {
		cfg = *rc.System
	} else {
		cfg = sim.PaperConfig(len(mix))
	}
	if rc.CustomL1D != nil {
		p := rc.CustomL1D
		cfg.L1DPrefetcher = sim.PrefetcherSpec{New: func() (Prefetcher, error) { return p, nil }}
	} else if rc.L1DPrefetcher != "" {
		cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: rc.L1DPrefetcher}
	}
	if rc.L2Prefetcher != "" {
		cfg.L2Prefetcher = sim.PrefetcherSpec{Name: rc.L2Prefetcher}
	}
	if rc.LLCPrefetcher != "" {
		cfg.LLCPrefetcher = sim.PrefetcherSpec{Name: rc.LLCPrefetcher}
	}
	if rc.Audit != nil {
		cfg.Audit = rc.Audit
	}
	seed := rc.Seed
	if seed == 0 {
		seed = 1
	}
	cfg.Seed = seed
	if rc.Parallel {
		cfg.ParallelCores = true
	}

	streams := make([]trace.Stream, len(mix))
	for i, name := range mix {
		w, err := workload.Named(name)
		if err != nil {
			return nil, err
		}
		streams[i] = w.New(seed)
	}
	sys, err := sim.Build(cfg, streams)
	if err != nil {
		return nil, err
	}
	if rc.Tracer != nil {
		sys.SetTracer(rc.Tracer)
	}
	if rc.Intervals != nil {
		sys.SetIntervalLog(rc.Intervals)
	}
	warm, meas := rc.Warmup, rc.Measure
	if warm == 0 {
		warm = 50_000
	}
	if meas == 0 {
		meas = 200_000
	}
	res, err := sys.RunContext(ctx, warm, meas)
	if rc.Audit != nil {
		rc.Audit.Finish()
	}
	return res, err
}

// PrefetcherFault is a fail-safe trip recorded in Result: a guarded
// prefetcher panicked or violated its budget, was disabled for the rest
// of the run, and the simulation continued unprefetched at that level.
type PrefetcherFault = sim.PrefetcherFault

// Speedup runs a workload with and without the given prefetcher
// configuration and returns IPC_with/IPC_without.
func Speedup(workloadName, l1d, l2 string, warmup, measure uint64) (float64, error) {
	base, err := Run(RunConfig{Workload: workloadName, Warmup: warmup, Measure: measure})
	if err != nil {
		return 0, err
	}
	pf, err := Run(RunConfig{
		Workload: workloadName, L1DPrefetcher: l1d, L2Prefetcher: l2,
		Warmup: warmup, Measure: measure,
	})
	if err != nil {
		return 0, err
	}
	if base.IPC[0] == 0 {
		return 0, fmt.Errorf("ipcp: baseline IPC is zero")
	}
	return pf.IPC[0] / base.IPC[0], nil
}

// Telemetry surface, re-exported for observability tooling. A Tracer
// records structured events into a bounded ring buffer (exportable as
// JSONL or Chrome trace_event JSON); an IntervalLog collects the
// per-epoch metrics timeline; an IPCPSnapshot is the per-class
// introspection state attached to Result.
type (
	Tracer         = telemetry.Tracer
	TraceEvent     = telemetry.Event
	IntervalLog    = telemetry.IntervalLog
	IntervalSample = telemetry.Sample
	IPCPSnapshot   = telemetry.Snapshot
)

// NewTracer returns an event tracer retaining up to capacity events
// (<= 0 selects the default capacity).
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// NewIntervalLog returns an interval-metrics log sampled every `every`
// cycles (<= 0 selects the default period).
func NewIntervalLog(every int64) *IntervalLog { return telemetry.NewIntervalLog(every) }

// Audit surface, re-exported for correctness tooling. An AuditChecker
// cross-checks a run against slow-but-obviously-correct reference
// models (functional shadow caches, paper-faithful IPCP oracles) and
// runtime invariants (page-boundary clamp, throttle ceilings, RR-filter
// dedup, request-pool ownership); an AuditViolation is one failed
// check.
type (
	AuditChecker   = audit.Checker
	AuditViolation = audit.Violation
)

// NewAuditChecker returns an audit harness for RunConfig.Audit.
func NewAuditChecker() *AuditChecker { return audit.New() }

// Class identifiers, re-exported for metadata-aware tooling.
const (
	ClassNone = memsys.ClassNone
	ClassCS   = memsys.ClassCS
	ClassCPLX = memsys.ClassCPLX
	ClassGS   = memsys.ClassGS
	ClassNL   = memsys.ClassNL
)
