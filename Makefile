GO ?= go

.PHONY: check build vet test bench

# Tier-1 gate: everything must pass before a change lands.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Smoke-run every benchmark once (no timing significance).
bench:
	$(GO) test -bench . -benchtime=1x
