GO ?= go

.PHONY: check build vet test bench fuzz

# Tier-1 gate: everything must pass before a change lands.
check: build vet test fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Smoke-run every benchmark once (no timing significance).
bench:
	$(GO) test -bench . -benchtime=1x

# Brief fuzz pass over the trace reader (longer runs: raise -fuzztime).
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzReader$$' -fuzztime=10s
