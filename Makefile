GO ?= go

# Benchmarks tracked in BENCH_throughput.json: the simulator hot-loop
# throughput benches, two representative figure benches, the sweep
# pair whose ratio is the shared-warmup amortization factor, and the
# 8-core pair whose ratio is the parallel-engine speedup.
TRACKED_BENCH = SimulatorThroughput|Fig7$$|Fig8$$|SweepColdWarmup$$|SweepSharedWarmup$$|MultiCoreSeqThroughput$$|ParallelThroughput$$
BENCH_FILE   = BENCH_throughput.json

.PHONY: check build vet test determinism audit bench benchsmoke benchdiff benchgate fuzz serve-smoke obs-smoke chaos-smoke dist-smoke

# Tier-1 gate: everything must pass before a change lands. `test` runs
# -race over every package — including the session-concurrency and
# serve suites (internal/experiments, internal/serve); serve-smoke,
# obs-smoke, chaos-smoke and dist-smoke exercise the built ipcpd binary
# end to end; benchgate holds the shared-warmup amortization ratio and
# guards tracked instr/s against structural collapse (see benchgate
# below).
check: build vet test determinism audit benchgate fuzz serve-smoke obs-smoke chaos-smoke dist-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Golden equivalence: fast-forwarded scheduler vs cycle-by-cycle
# reference, run-to-run repeatability, and the parallel epoch-barrier
# engine vs the sequential scheduler (already part of `test`; kept as
# its own gate so a perf change can run just this, fast).
determinism:
	$(GO) test ./internal/sim -run 'Determinism|FastForward|Parallel' -count=1

# Differential audit: every bundled workload through the fully audited
# system (shadow caches + paper-faithful IPCP oracles in lockstep),
# fast-forward on and off, diffed; plus the fork-vs-cold differential
# that holds every warmup-forked run to byte-identity with a cold run,
# and the parallel-vs-sequential differential that holds the parallel
# epoch-barrier engine to byte-identity on multi-core mixes (up to 8
# cores under AUDIT_FULL). No -race: the harness is already several
# times slower than the plain simulation, and `test` covers the subset
# under -race.
audit:
	AUDIT_FULL=1 $(GO) test ./internal/audit -run 'TestDifferentialSuite|TestDeepThrottleRun|TestForkDifferentialSuite|TestParallelDifferentialSuite' -count=1

# Timed run of the tracked benchmarks, appended to $(BENCH_FILE).
bench:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCH)' -benchmem -benchtime=2s -count=3 . \
		| tee /dev/stderr | $(GO) run ./cmd/benchrecord -record $(BENCH_FILE)

# Same run, compared against the last recorded entries instead of
# recorded; fails on >10% instr/s regression.
benchdiff:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCH)' -benchmem -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/benchrecord -diff $(BENCH_FILE)

# Perf gate for `make check`. Two checks, calibrated for a shared
# single-CPU host whose absolute speed drifts tens of percent between
# runs:
#  1. ratio gate — SweepSharedWarmup must deliver >=2x SweepColdWarmup
#     instr/s *within the same run*; host drift is common-mode there,
#     so the amortization factor is stable even when absolutes are not
#     (measured 3.0-3.5x, so 2x leaves real margin);
#  2. absolute gate — >50% instr/s drop against the recorded history
#     fails; that catches structural collapses (a disabled fast path, a
#     sweep gone cold) that no plausible host drift explains.
# On hosts with >=4 CPUs a third check runs: the parallel epoch-barrier
# engine must deliver >=2.5x the sequential scheduler's aggregate
# instr/s on the 8-core mix. Single-CPU hosts skip it (parallelism
# cannot beat sequential without real cores; the pair is still timed
# and history-gated above). `make benchdiff` keeps the tight 10%
# tolerance for quiet machines.
benchgate:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCH)' -benchmem -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/benchrecord -diff $(BENCH_FILE) -tolerance 0.5 \
		  -gate-fast BenchmarkSweepSharedWarmup -gate-slow BenchmarkSweepColdWarmup -gate-min 2.0
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) test -run '^$$' -bench 'MultiCoreSeqThroughput$$|ParallelThroughput$$' -benchmem -benchtime=2s -count=3 . \
			| $(GO) run ./cmd/benchrecord -diff $(BENCH_FILE) -tolerance 0.5 \
			  -gate-fast BenchmarkParallelThroughput -gate-slow BenchmarkMultiCoreSeqThroughput -gate-min 2.5; \
	else \
		echo "benchgate: $$(nproc) CPU(s) < 4; skipping the parallel speedup ratio gate" \
		     "(the epoch-barrier engine needs real cores to outrun the sequential scheduler)"; \
	fi

# Smoke-run every benchmark once (no timing significance).
benchsmoke:
	$(GO) test -bench . -benchtime=1x

# Brief fuzz passes (longer runs: raise -fuzztime): the trace reader,
# and the checkpoint frame decoder that guards the result store against
# torn/corrupt files. `go test -fuzz` takes one fuzz target per run.
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzReader$$' -fuzztime=10s
	$(GO) test ./internal/experiments -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime=10s

# End-to-end daemon smoke: build the real ipcpd binary, boot it on an
# ephemeral port with a cache dir, drive the API, SIGTERM it mid-job
# expecting a clean (exit 0) drain, then reboot over the same cache and
# prove the checkpointed result is served without resimulating.
serve-smoke:
	$(GO) test ./cmd/ipcpd -run '^TestServeSmoke$$' -count=1 -v

# End-to-end observability smoke: boot ipcpd with JSON debug logs and a
# pprof listener, submit a run tagged X-Request-ID: demo, and demand the
# id back on the response header, every related structured log line and
# the Chrome trace; scrape Prometheus metrics; hit buildinfo and pprof.
obs-smoke:
	$(GO) test ./cmd/ipcpd -run '^TestObsSmoke$$' -count=1 -v

# End-to-end crash/recovery smoke: kill -9 the real daemon mid-burst
# with a journal dir and demand zero acknowledged work lost on restart;
# corrupt the checkpoint store and demand quarantine + recompute; crash
# via injected fault (IPCPD_CHAOS) at the queue handoff and recover.
chaos-smoke:
	$(GO) test ./cmd/ipcpd -run '^TestChaosSmoke$$' -count=1 -v

# End-to-end distributed smoke: boot a real coordinator and two real
# workers, submit one parameter grid via POST /v1/sweeps, kill -9 a
# worker mid-sweep, and demand every acknowledged point still reach a
# result — with the reassignment visible on the coordinator's metrics.
dist-smoke:
	$(GO) test ./cmd/ipcpd -run '^TestDistSmoke$$' -count=1 -v
