package memsys

import (
	"testing"
	"testing/quick"
)

func TestBlockAlign(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{0xdeadbeef, 0xdeadbeef &^ 63},
	}
	for _, c := range cases {
		if got := BlockAlign(c.in); got != c.want {
			t.Errorf("BlockAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestPageGeometry(t *testing.T) {
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if PageOffsetLine(0) != 0 {
		t.Errorf("PageOffsetLine(0) = %d", PageOffsetLine(0))
	}
	if PageOffsetLine(4095) != 63 {
		t.Errorf("PageOffsetLine(4095) = %d, want 63", PageOffsetLine(4095))
	}
	if PageOffsetLine(4096) != 0 {
		t.Errorf("PageOffsetLine(4096) = %d, want 0", PageOffsetLine(4096))
	}
	if !SamePage(4096, 8191) {
		t.Error("SamePage(4096, 8191) = false, want true")
	}
	if SamePage(4095, 4096) {
		t.Error("SamePage(4095, 4096) = true, want false")
	}
}

func TestAccessTypeIsDemand(t *testing.T) {
	demand := map[AccessType]bool{
		Load: true, RFO: true, CodeRead: true,
		Prefetch: false, Writeback: false,
	}
	for typ, want := range demand {
		if got := typ.IsDemand(); got != want {
			t.Errorf("%v.IsDemand() = %v, want %v", typ, got, want)
		}
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	cases := []Metadata{
		{ClassNone, 0},
		{ClassCS, 1},
		{ClassCS, -1},
		{ClassCS, 63},
		{ClassCS, -64},
		{ClassGS, 1},
		{ClassGS, -1},
		{ClassNL, 0},
	}
	for _, m := range cases {
		got := DecodeMetadata(m.Encode())
		if got != m {
			t.Errorf("round trip %+v -> %#x -> %+v", m, m.Encode(), got)
		}
	}
}

func TestMetadataEncodeWidth(t *testing.T) {
	// The wire format must fit in 9 bits, per the paper.
	f := func(cls uint8, stride int8) bool {
		m := Metadata{Class: PrefetchClass(cls%4) + 0, Stride: stride}
		if m.Stride < -64 || m.Stride > 63 {
			return true // outside the representable 7-bit range
		}
		return m.Encode() < 1<<9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetadataRoundTripProperty(t *testing.T) {
	f := func(clsRaw uint8, stride int8) bool {
		var cls PrefetchClass
		switch clsRaw % 4 {
		case 0:
			cls = ClassNone
		case 1:
			cls = ClassCS
		case 2:
			cls = ClassGS
		case 3:
			cls = ClassNL
		}
		if stride < -64 || stride > 63 {
			return true
		}
		m := Metadata{Class: cls, Stride: stride}
		if cls == ClassNone {
			// ClassNone does not preserve the stride on the wire;
			// only the class must survive.
			return DecodeMetadata(m.Encode()).Class == ClassNone ||
				DecodeMetadata(m.Encode()).Stride == stride
		}
		return DecodeMetadata(m.Encode()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelL1D: "L1D", LevelL2: "L2", LevelLLC: "LLC", LevelDRAM: "DRAM",
	} {
		if l.String() != want {
			t.Errorf("Level %d String = %q, want %q", l, l.String(), want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[PrefetchClass]string{
		ClassCS: "CS", ClassCPLX: "CPLX", ClassGS: "GS", ClassNL: "NL", ClassNone: "none",
	} {
		if c.String() != want {
			t.Errorf("class String = %q, want %q", c.String(), want)
		}
	}
}

func TestRequestHelpers(t *testing.T) {
	r := &Request{Addr: 0x12345, Type: Prefetch}
	if !r.IsPrefetch() {
		t.Error("IsPrefetch false for prefetch")
	}
	if r.Block() != 0x12340 {
		t.Errorf("Block = %#x", r.Block())
	}
	d := &Request{Type: Load}
	if d.IsPrefetch() {
		t.Error("IsPrefetch true for load")
	}
}

func TestBlockNumberRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		return BlockNumber(a)<<BlockBits == BlockAlign(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessTypeStrings(t *testing.T) {
	for typ, want := range map[AccessType]string{
		Load: "load", RFO: "rfo", Prefetch: "prefetch",
		Writeback: "writeback", CodeRead: "code",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}
