package memsys

import "fmt"

// RequestPool is a free list of Request values shared by the components
// of one simulated system. A pool is only ever touched from one
// goroutine at a time — sequential stepping is single-threaded, and the
// parallel engine gives each core slice a private pool (the shared
// LLC/DRAM pool is touched only with the slice workers parked) — so a
// plain slice beats sync.Pool: no locking, no per-P caches, and
// requests recycle deterministically. Requests may migrate between
// pools (created from one, recycled into another); a Request carries no
// pool affinity, so migration is harmless.
//
// Ownership protocol: the component that finishes a request recycles
// it — a core recycles its own requests when ReturnData hands them
// back, a cache recycles the forwarded requests it created once their
// fill installs (and any waiter whose ReturnTo is nil), and the DRAM
// controller recycles writebacks when they are scheduled. Get returns
// a dirty Request; every creation site must overwrite the whole struct
// (a full composite-literal assignment), never field-by-field.
//
// A nil *RequestPool is valid and degrades to plain allocation, so
// components constructed outside sim.Build (unit tests, tools) work
// unchanged.
type RequestPool struct {
	free []*Request

	// Audit mode (EnableAudit): inFree tracks the identity of every
	// free-listed request so a double Put — the ownership bug the
	// protocol above is designed to prevent — is caught at the second
	// Put instead of corrupting two in-flight requests much later.
	// nil (the default) keeps Get/Put on the allocation-free fast path.
	inFree      map[*Request]struct{}
	report      func(detail string)
	outstanding int
}

// NewRequestPool returns an empty pool.
func NewRequestPool() *RequestPool { return &RequestPool{} }

// EnableAudit switches the pool into audit mode: every Put of a request
// already on the free list is reported through report (a double-free),
// and Outstanding tracks the live-request balance. Audit mode allocates
// per call and exists for the audit/test harness, not production runs.
func (p *RequestPool) EnableAudit(report func(detail string)) {
	if p == nil {
		return
	}
	p.inFree = make(map[*Request]struct{}, len(p.free))
	for _, r := range p.free {
		p.inFree[r] = struct{}{}
	}
	p.report = report
}

// Outstanding reports the audit-mode balance of requests handed out
// (Get calls, including fresh allocations) minus requests recycled.
// Meaningless (zero) outside audit mode.
func (p *RequestPool) Outstanding() int {
	if p == nil {
		return 0
	}
	return p.outstanding
}

// Get returns a Request for reuse. The caller must overwrite every
// field before use; the returned value holds stale contents.
func (p *RequestPool) Get() *Request {
	if p == nil || len(p.free) == 0 {
		if p != nil && p.inFree != nil {
			p.outstanding++
		}
		return &Request{}
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	if p.inFree != nil {
		delete(p.inFree, r)
		p.outstanding++
	}
	return r
}

// Put recycles r. The caller must not touch r afterwards; r must not be
// reachable from any queue, MSHR, or fill buffer.
func (p *RequestPool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	if p.inFree != nil {
		if _, dup := p.inFree[r]; dup {
			if p.report != nil {
				p.report(fmt.Sprintf("double free of request %p (addr %#x type %v)", r, r.Addr, r.Type))
			}
			return // keep the free list consistent: one copy only
		}
		p.inFree[r] = struct{}{}
		p.outstanding--
	}
	p.free = append(p.free, r)
}

// Len reports the number of free requests held (testing).
func (p *RequestPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
