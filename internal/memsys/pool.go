package memsys

// RequestPool is a free list of Request values shared by the components
// of one simulated system. The simulator is single-threaded per system,
// so a plain slice beats sync.Pool: no locking, no per-P caches, and
// requests recycle deterministically.
//
// Ownership protocol: the component that finishes a request recycles
// it — a core recycles its own requests when ReturnData hands them
// back, a cache recycles the forwarded requests it created once their
// fill installs (and any waiter whose ReturnTo is nil), and the DRAM
// controller recycles writebacks when they are scheduled. Get returns
// a dirty Request; every creation site must overwrite the whole struct
// (a full composite-literal assignment), never field-by-field.
//
// A nil *RequestPool is valid and degrades to plain allocation, so
// components constructed outside sim.Build (unit tests, tools) work
// unchanged.
type RequestPool struct {
	free []*Request
}

// NewRequestPool returns an empty pool.
func NewRequestPool() *RequestPool { return &RequestPool{} }

// Get returns a Request for reuse. The caller must overwrite every
// field before use; the returned value holds stale contents.
func (p *RequestPool) Get() *Request {
	if p == nil || len(p.free) == 0 {
		return &Request{}
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return r
}

// Put recycles r. The caller must not touch r afterwards; r must not be
// reachable from any queue, MSHR, or fill buffer.
func (p *RequestPool) Put(r *Request) {
	if p == nil || r == nil {
		return
	}
	p.free = append(p.free, r)
}

// Len reports the number of free requests held (testing).
func (p *RequestPool) Len() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}
