// Package memsys defines the shared vocabulary of the simulated memory
// system: addresses, access types, cache levels, and the Request that
// flows between components.
//
// Every component of the hierarchy (cores, caches, DRAM) exchanges
// *Request values and is clocked by a single global cycle counter owned
// by the simulation driver.
package memsys

import "fmt"

// Address geometry. The simulator models 64-byte cache blocks and 4KB
// pages throughout, matching the paper's configuration.
const (
	BlockBits = 6
	BlockSize = 1 << BlockBits // 64 B

	PageBits = 12
	PageSize = 1 << PageBits // 4 KiB

	// LinesPerPage is the number of cache lines in one page; a line
	// offset within a page therefore fits in 6 bits (0..63).
	LinesPerPage = PageSize / BlockSize
)

// Addr is a 64-bit (virtual or physical) byte address.
type Addr = uint64

// BlockAlign clears the intra-block offset bits of a.
func BlockAlign(a Addr) Addr { return a &^ (BlockSize - 1) }

// BlockNumber returns the cache-line-aligned address shifted down so that
// consecutive blocks differ by one.
func BlockNumber(a Addr) uint64 { return a >> BlockBits }

// PageNumber returns the virtual/physical page number of a.
func PageNumber(a Addr) uint64 { return a >> PageBits }

// PageOffsetLine returns the cache-line offset of a within its page
// (0..LinesPerPage-1).
func PageOffsetLine(a Addr) int { return int((a >> BlockBits) & (LinesPerPage - 1)) }

// SamePage reports whether two byte addresses fall in the same page.
func SamePage(a, b Addr) bool { return PageNumber(a) == PageNumber(b) }

// AccessType describes why a request exists.
type AccessType uint8

const (
	// Load is a demand data read.
	Load AccessType = iota
	// RFO is a demand store (read-for-ownership).
	RFO
	// Prefetch is a prefetcher-generated read.
	Prefetch
	// Writeback is a dirty eviction travelling down the hierarchy.
	Writeback
	// CodeRead is an instruction fetch from the L1-I.
	CodeRead
)

// IsDemand reports whether the access type counts as a demand access for
// MPKI and coverage accounting.
func (t AccessType) IsDemand() bool {
	return t == Load || t == RFO || t == CodeRead
}

func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case RFO:
		return "rfo"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	case CodeRead:
		return "code"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Level identifies a position in the cache hierarchy. It is used both to
// name caches and to bound how far up a prefetch fill propagates.
type Level uint8

const (
	LevelCore Level = iota
	LevelL1I
	LevelL1D
	LevelL2
	LevelLLC
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelCore:
		return "core"
	case LevelL1I:
		return "L1I"
	case LevelL1D:
		return "L1D"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// PrefetchClass tags a prefetch with the IPCP class that generated it (or
// ClassNone for non-IPCP prefetchers). It doubles as the 2-bit per-line
// class tag the paper stores in the L1-D and as the class component of
// the L1→L2 metadata.
type PrefetchClass uint8

const (
	ClassNone PrefetchClass = iota
	ClassCS
	ClassCPLX
	ClassGS
	ClassNL
	numClasses
)

// NumClasses is the number of distinct prefetch classes including
// ClassNone.
const NumClasses = int(numClasses)

func (c PrefetchClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassCS:
		return "CS"
	case ClassCPLX:
		return "CPLX"
	case ClassGS:
		return "GS"
	case ClassNL:
		return "NL"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Metadata is the 9-bit payload IPCP sends from the L1 prefetcher to the
// L2 prefetcher alongside each prefetch request: a 2-bit class and a
// 7-bit signed stride (or stream direction for the GS class).
type Metadata struct {
	Class  PrefetchClass
	Stride int8 // 7-bit signed stride / direction; 0 means "none"
}

// Encode packs m into the 9-bit wire format used on the L1→L2 bus.
func (m Metadata) Encode() uint16 {
	cls := uint16(0)
	switch m.Class {
	case ClassCS:
		cls = 1
	case ClassGS:
		cls = 2
	case ClassNL:
		cls = 3
	}
	return cls<<7 | uint16(uint8(m.Stride))&0x7f
}

// DecodeMetadata unpacks a 9-bit payload produced by Encode.
func DecodeMetadata(v uint16) Metadata {
	var m Metadata
	switch v >> 7 & 3 {
	case 1:
		m.Class = ClassCS
	case 2:
		m.Class = ClassGS
	case 3:
		m.Class = ClassNL
	}
	// Sign-extend the 7-bit stride.
	s := int(v & 0x7f)
	if s >= 64 {
		s -= 128
	}
	m.Stride = int8(s)
	return m
}

// Receiver is implemented by anything that can accept a completed
// request travelling back up the hierarchy (a cache filling itself, or a
// core completing a load).
type Receiver interface {
	// ReturnData delivers the data for req at cycle now. The request's
	// Addr identifies the block.
	ReturnData(now int64, req *Request)
}

// Sink is implemented by every component that accepts requests from
// above (caches and the DRAM controller). Each Add method reports
// whether the request was accepted; false means the target queue is full
// and the caller must retry on a later cycle.
type Sink interface {
	AddRead(r *Request) bool
	AddWrite(r *Request) bool
	AddPrefetch(r *Request) bool
}

// Component is the per-cycle clocking interface.
type Component interface {
	Cycle(now int64)
}

// Request is one in-flight memory transaction. Requests are created by
// cores (demand) and prefetchers, travel down the hierarchy through
// queues and MSHRs, and return upward via the Receiver chain.
type Request struct {
	// Addr is the physical byte address (block aligned for everything
	// but core loads, which keep the precise address).
	Addr Addr
	// VAddr is the virtual byte address; IPCP trains on virtual
	// addresses at the L1-D.
	VAddr Addr
	// IP is the instruction pointer of the triggering instruction; it
	// travels with the request so lower-level prefetchers can use it.
	IP Addr
	// Type is the access type.
	Type AccessType
	// CoreID identifies the requesting core (multi-core sharing).
	CoreID int

	// FillLevel bounds how far up the returned data is installed: a
	// prefetch with FillLevel = LevelL2 fills the LLC and L2 but not
	// the L1. Demand requests use the issuing cache's own level.
	FillLevel Level

	// PfClass and PfMeta describe prefetch requests: the IPCP class and
	// the encoded 9-bit L1→L2 metadata payload.
	PfClass PrefetchClass
	PfMeta  uint16
	// PfOrigin is the level whose prefetcher created the request.
	PfOrigin Level

	// ReturnTo receives the data when the request completes. It is set
	// by each level as it forwards the request downward.
	ReturnTo Receiver

	// Tag is an opaque requester cookie (the core uses it to find the
	// ROB entry). It must be preserved by the hierarchy.
	Tag int64

	// Born is the cycle the request was created (for latency stats).
	Born int64
}

// IsPrefetch reports whether the request was generated by a prefetcher.
func (r *Request) IsPrefetch() bool { return r.Type == Prefetch }

// Block returns the block-aligned physical address.
func (r *Request) Block() Addr { return BlockAlign(r.Addr) }
