package serve

import (
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestWatchdogReapsStalledJob: a job whose simulation makes no progress
// past StallTimeout terminates as "stalled", its worker slot is
// reclaimed (a healthy job completes on the same single worker while
// the wedged simulation is still blocked), and the dead job no longer
// pins the coalescing key.
func TestWatchdogReapsStalledJob(t *testing.T) {
	gateJobs(t) // never released until cleanup: the simulation is wedged
	s := newTestServer(t, Options{
		Workers: 1, QueueSize: 8,
		StallTimeout: 50 * time.Millisecond,
		WatchdogTick: 5 * time.Millisecond,
	})
	req := runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "wedge"}
	v := s.submitRun(t, req, http.StatusAccepted)

	j, ok := s.lookup(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	waitFor(t, 5*time.Second, func() bool { return j.State() == StateStalled })
	if err := j.Err(); err == nil {
		t.Fatal("stalled job carries no error")
	}
	kinds := map[string]bool{}
	for _, e := range eventKinds(t, s, v.ID) {
		kinds[e] = true
	}
	if !kinds["stall-detected"] || !kinds["stalled"] {
		t.Fatalf("stalled job events = %v", kinds)
	}
	if m := s.Metrics(); m.Jobs.Stalled != 1 {
		t.Fatalf("stalled counter = %d, want 1", m.Jobs.Stalled)
	}

	// Slot reclaimed: the single worker, whose previous simulation is
	// still wedged on the gate, completes a healthy job.
	hv := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, ConfigKey: "healthy"}, http.StatusAccepted)
	if job := s.await(t, hv.ID, 10*time.Second); job.Status != StateDone {
		t.Fatalf("healthy job after reap = %+v", job)
	}

	// The stalled job does not pin byKey: resubmitting the same spec
	// admits a fresh job instead of coalescing onto the corpse.
	again := s.submitRun(t, req, http.StatusAccepted)
	if again.Coalesced || again.ID == v.ID {
		t.Fatalf("resubmission after stall = %+v, want a fresh job", again)
	}
}

// TestDeadlineSheddingRejects: once a queued job has outlived its own
// deadline, new submissions are shed with 429 + Retry-After instead of
// queueing behind work that is guaranteed to time out.
func TestDeadlineSheddingRejects(t *testing.T) {
	release := gateJobs(t)
	s := newTestServer(t, Options{Workers: 1, QueueSize: 8})

	// Job 1 wedges the single worker; job 2 queues with a 20ms deadline
	// it can never meet.
	first := s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "shed-0"}, http.StatusAccepted)
	waitFor(t, time.Second, func() bool { return s.Metrics().InFlight == 1 })
	s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "shed-1", TimeoutMS: 20}, http.StatusAccepted)

	time.Sleep(40 * time.Millisecond) // let the queued deadline lapse
	resp, body := s.post(t, "/v1/runs", runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "shed-2"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed-backlog submission = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response without Retry-After")
	}
	if m := s.Metrics(); m.Jobs.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", m.Jobs.Shed)
	}

	release()
	s.await(t, first.ID, 10*time.Second)
}

// TestRetryAfterJitter: the hint stays within base ± 25% and does not
// collapse onto a single value.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		v := retryAfter()
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3 {
			t.Fatalf("Retry-After = %q, want an integer in [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter collapsed onto %v", seen)
	}
}
