package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestSubmitRunBodyTooLarge pins the request-body cap: a multi-MB body
// answers an honest 413 instead of being read unboundedly (or, as
// before the fix, surfacing as a confusing 400 "unexpected EOF" from a
// silent truncation).
func TestSubmitRunBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Options{})
	huge := []byte(`{"workloads":["` + strings.Repeat("x", maxRequestBody+1024) + `"]}`)
	resp, err := http.Post(s.ts.URL+"/v1/runs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("POST /v1/runs with %d-byte body = %d, want 413", len(huge), resp.StatusCode)
	}

	resp2, err := http.Post(s.ts.URL+"/v1/experiments", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("POST /v1/experiments with %d-byte body = %d, want 413", len(huge), resp2.StatusCode)
	}
}

// TestSubmitRunBodyWithinLimit proves the cap does not clip legitimate
// requests: a valid body just under the limit still parses (and fails
// validation on its unknown workload, not on framing).
func TestSubmitRunBodyWithinLimit(t *testing.T) {
	s := newTestServer(t, Options{})
	name := strings.Repeat("y", maxRequestBody-64)
	resp, raw := s.post(t, "/v1/runs", map[string][]string{"workloads": {name}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("near-limit POST /v1/runs = %d, want 400 (unknown workload), body %.120s",
			resp.StatusCode, raw)
	}
}

// TestRetryAfterDeterministicUnderSeed pins the jitter source: seeded,
// the probabilistic-rounding branch produces an identical sequence on
// every replay — even when drawn concurrently — and every value stays
// inside the ±25% window around the 2s base (integer-rounded: 1..3s).
func TestRetryAfterDeterministicUnderSeed(t *testing.T) {
	const n = 64
	draw := func() []string {
		seedRetryJitter(42)
		out := make([]string, n)
		for i := range out {
			out[i] = retryAfter()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %q != %q — seeded sequence is not reproducible", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, v := range a {
		seen[v] = true
		if v != "1" && v != "2" && v != "3" {
			t.Fatalf("retryAfter() = %q, want 1..3 seconds", v)
		}
	}
	if len(seen) < 2 {
		t.Errorf("seeded sequence produced only %v: jitter collapsed to one value", seen)
	}

	// Concurrent draws must not race (locked local source, not the
	// shared global generator); the set of values drawn concurrently
	// equals the seeded sequence drawn serially.
	seedRetryJitter(42)
	got := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = retryAfter()
		}(i)
	}
	wg.Wait()
	counts := func(vs []string) map[string]int {
		m := map[string]int{}
		for _, v := range vs {
			m[v]++
		}
		return m
	}
	ca, cg := counts(a), counts(got)
	if fmt.Sprint(ca) != fmt.Sprint(cg) {
		t.Errorf("concurrent draws %v != serial draws %v", cg, ca)
	}
}

// TestRemoteBlobsRequiresCacheDir pins the option contract: a remote
// blob store is a second level behind the disk cache, never a
// replacement for it.
func TestRemoteBlobsRequiresCacheDir(t *testing.T) {
	_, err := New(Options{Scale: tiny, RemoteBlobs: nopBlobs{}})
	if err == nil {
		t.Fatal("New accepted RemoteBlobs without CacheDir")
	}
}

type nopBlobs struct{}

func (nopBlobs) GetBlob(string) ([]byte, bool) { return nil, false }
func (nopBlobs) PutBlob(string, []byte)        {}
