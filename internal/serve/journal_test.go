package serve

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ipcp/internal/chaos"
	"ipcp/internal/sim"
)

func discard() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// TestJournalRoundTripAndReplay: records appended in one life are
// merged per job and replayed in the next, and replay compacts the old
// segments into one canonical segment.
func TestJournalRoundTripAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, replayed, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	spec := &runRequest{Workloads: []string{"bwaves-98"}, ConfigKey: "wal"}
	res := &sim.Result{IPC: []float64{2.5}}
	recs := []journalRecord{
		{Type: "submit", Time: time.Now(), Job: "j000001", Seq: 1, Kind: KindRun, Spec: spec, RequestID: "r-1"},
		{Type: "start", Time: time.Now(), Job: "j000001"},
		{Type: "finish", Time: time.Now(), Job: "j000001", Outcome: StateDone, Result: res},
		{Type: "submit", Time: time.Now(), Job: "j000002", Seq: 2, Kind: KindRun, Spec: spec},
		{Type: "start", Time: time.Now(), Job: "j000002"},
		// j000002 never finishes: the crash takes it mid-run.
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, replayed, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	done, unfinished := replayed[0], replayed[1]
	if done.id != "j000001" || done.outcome != StateDone || done.result == nil || done.result.IPC[0] != 2.5 {
		t.Fatalf("finished job replayed as %+v", done)
	}
	if done.requestID != "r-1" || done.spec == nil || done.spec.ConfigKey != "wal" {
		t.Fatalf("identity lost in replay: %+v", done)
	}
	if unfinished.id != "j000002" || unfinished.outcome != "" || unfinished.started.IsZero() {
		t.Fatalf("unfinished job replayed as %+v", unfinished)
	}
	if d := j2.damaged.Load(); d != 0 {
		t.Fatalf("clean journal reported %d damaged frames", d)
	}

	// Compaction: the original segment is gone, replaced by one
	// compacted segment plus the new active one.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 2 {
		t.Fatalf("segments after compaction = %v, want compacted + active", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("pre-compaction segment survived (err=%v)", err)
	}
}

// TestJournalTornTailRecovers: a crash mid-append leaves a torn frame
// at the tail; replay recovers every record before it (the WAL's
// prefix-durability contract) and counts the damage.
func TestJournalTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	spec := &runRequest{Workloads: []string{"bwaves-98"}}
	for i := 1; i <= 3; i++ {
		id := "j00000" + strconv.Itoa(i)
		if err := j.append(journalRecord{Type: "submit", Time: time.Now(), Job: id, Seq: i, Kind: KindRun, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the tail: append half a frame header, as a crash mid-write
	// would.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x99, 0x00, 0x00})
	f.Close()

	j2, replayed, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d jobs, want the 3 before the tear", len(replayed))
	}
	if d := j2.damaged.Load(); d != 1 {
		t.Fatalf("damaged frames = %d, want 1", d)
	}
}

// TestJournalBitFlipStopsReplayAtDamage: a flipped bit inside a frame
// fails its CRC; records before it replay, records after are discarded.
func TestJournalBitFlipStopsReplayAtDamage(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	spec := &runRequest{Workloads: []string{"bwaves-98"}}
	var sizes []int64
	for i := 1; i <= 3; i++ {
		id := "j00000" + strconv.Itoa(i)
		if err := j.append(journalRecord{Type: "submit", Time: time.Now(), Job: id, Seq: i, Kind: KindRun, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, j.size)
	}
	j.Close()

	// Flip one payload bit inside the second frame.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[sizes[0]+walFrameHeader+4] ^= 0x08
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, replayed, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(replayed) != 1 || replayed[0].id != "j000001" {
		t.Fatalf("replayed %v, want only the pre-damage job", replayed)
	}
	if d := j2.damaged.Load(); d != 1 {
		t.Fatalf("damaged frames = %d, want 1", d)
	}
}

// TestServerReplayServesFinishedJob: a finished job survives a restart
// with its original ID and result, and later identical submissions
// coalesce onto the replayed job.
func TestServerReplayServesFinishedJob(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{JournalDir: dir})
	req := runRequest{Workloads: []string{"bwaves-98"}, L1D: "ipcp", ConfigKey: "replay-done"}
	v := s1.submitRun(t, req, http.StatusAccepted)
	job := s1.await(t, v.ID, 10*time.Second)
	if job.Status != StateDone {
		t.Fatalf("job = %+v", job)
	}
	wantIPC := job.Result.IPC[0]
	s1.ts.Close()
	s1.Close()

	s2 := newTestServer(t, Options{JournalDir: dir})
	resp, body := s2.get(t, "/v1/runs/"+v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET replayed job = %d (%s)", resp.StatusCode, body)
	}
	var got jobView
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != StateDone || got.Result == nil || got.Result.IPC[0] != wantIPC {
		t.Fatalf("replayed job = %+v, want done with IPC %v", got, wantIPC)
	}
	if got.RequestID == "" || got.Spec == nil || got.Spec.ConfigKey != "replay-done" {
		t.Fatalf("replayed identity = %+v", got)
	}
	if m := s2.Metrics(); !m.Journal.Enabled || m.Journal.ReplayedJobs != 1 {
		t.Fatalf("journal metrics = %+v", m.Journal)
	}

	// Identical submission coalesces onto the replayed job: no second
	// execution for work already done before the crash.
	again := s2.submitRun(t, req, http.StatusOK)
	if !again.Coalesced || again.ID != v.ID {
		t.Fatalf("post-replay resubmission = %+v, want coalesced onto %s", again, v.ID)
	}
	if got := s2.Session().Executed(); got != 0 {
		t.Fatalf("replayed result re-executed %d times", got)
	}
}

// TestServerReplayReenqueuesUnfinished: a journaled job with no finish
// record (accepted, maybe started, then the process died) is re-run on
// startup and completes under its original ID. New admissions continue
// the ID sequence past the replayed ones.
func TestServerReplayReenqueuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	spec := &runRequest{Workloads: []string{"bwaves-98"}, L1D: "ipcp", ConfigKey: "replay-requeue"}
	if err := j.append(journalRecord{
		Type: "submit", Time: time.Now(), Job: "j000007", Seq: 7,
		Kind: KindRun, Spec: spec, RequestID: "r-lost",
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: "start", Time: time.Now(), Job: "j000007"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s := newTestServer(t, Options{JournalDir: dir})
	job := s.await(t, "j000007", 10*time.Second)
	if job.Status != StateDone || job.Result == nil {
		t.Fatalf("replayed unfinished job = %+v", job)
	}
	if job.RequestID != "r-lost" {
		t.Fatalf("request id lost across replay: %+v", job)
	}
	// The replayed job went through the full lifecycle again, with the
	// restart visible in its event stream.
	kinds := map[string]bool{}
	for _, e := range eventKinds(t, s, "j000007") {
		kinds[e] = true
	}
	if !kinds["replayed"] || !kinds["started"] || !kinds["done"] {
		t.Fatalf("replayed job events = %v", kinds)
	}
	// New submissions pick up the sequence after the replayed maximum.
	v := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, ConfigKey: "post-replay"}, http.StatusAccepted)
	if v.ID != "j000008" {
		t.Fatalf("post-replay id = %s, want j000008", v.ID)
	}
}

func eventKinds(t *testing.T, s *testServer, id string) []string {
	t.Helper()
	j, ok := s.lookup(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	events, _, _ := j.eventsSince(0)
	kinds := make([]string, 0, len(events))
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	return kinds
}

// TestJournalAppendFailureDegradesGracefully: a dead journal disk costs
// crash-durability, never availability — submissions still serve, the
// failure is counted.
func TestJournalAppendFailureDegradesGracefully(t *testing.T) {
	in := chaos.New(1)
	in.Add(chaos.Rule{Point: "journal.append", Kind: chaos.KindErr})
	chaos.Enable(in)
	t.Cleanup(func() { chaos.Enable(nil) })

	s := newTestServer(t, Options{JournalDir: t.TempDir()})
	v := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, ConfigKey: "degraded"}, http.StatusAccepted)
	job := s.await(t, v.ID, 10*time.Second)
	if job.Status != StateDone {
		t.Fatalf("job under journal failure = %+v", job)
	}
	if m := s.Metrics(); m.Journal.AppendErrors == 0 {
		t.Fatalf("append errors not surfaced: %+v", m.Journal)
	}
}
