package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"ipcp/internal/telemetry"
)

// This file is the daemon's observability seam: request-id propagation
// and per-request spans (instrument), the Prometheus text exposition of
// the /metrics counters, and build identification for /v1/buildinfo and
// run metadata.

// --- request correlation --------------------------------------------------

// requestIDHeader is accepted on every request and echoed on every
// response; absent, a fresh id is generated so every request is
// correlatable.
const requestIDHeader = "X-Request-ID"

// newRequestID returns a 16-hex-char random correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is near-impossible; degrade to a
		// time-derived id rather than an unidentifiable request.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response code for the access log and the
// request span, forwarding Flush so the JSONL follow-streams keep
// streaming through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// httpSpanKey carries the request's span so submit handlers can stamp
// the job id onto it once the job is admitted.
type httpSpanKey struct{}

// httpSpan returns the request's span (nil outside instrument).
func httpSpan(ctx context.Context) *telemetry.ActiveSpan {
	sp, _ := ctx.Value(httpSpanKey{}).(*telemetry.ActiveSpan)
	return sp
}

// instrument wraps the API mux with the observability front door:
// accept or mint an X-Request-ID, echo it on the response, open a span
// covering the handler, and emit one structured access-log line —
// every downstream span and log line carries the same request id.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)

		ctx := telemetry.ContextWithSpanTracer(r.Context(), s.spans)
		ctx = telemetry.ContextWithRequestID(ctx, rid)
		ctx, sp := telemetry.StartSpan(ctx, "http "+r.Method+" "+r.URL.Path)
		ctx = context.WithValue(ctx, httpSpanKey{}, sp)

		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))

		sp.SetAttr("status", strconv.Itoa(rec.code))
		sp.End()
		s.log.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "status", rec.code,
			"duration", time.Since(start), "request_id", rid)
	})
}

// --- build identification -------------------------------------------------

// BuildInfo identifies the running binary: module version, VCS revision
// and Go toolchain, read from the binary's embedded build information.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version"`
	Revision  string `json:"vcs_revision"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// ReadBuildInfo assembles the binary's identification; fields without
// embedded data (a `go test` binary, a non-VCS build) degrade to
// "unknown" rather than empty strings.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version(), Version: "unknown", Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	out.Module = bi.Main.Path
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.Revision = kv.Value
		case "vcs.time":
			out.VCSTime = kv.Value
		case "vcs.modified":
			out.Modified = kv.Value == "true"
		}
	}
	return out
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.build)
}

// --- Prometheus exposition ------------------------------------------------

// wantsPrometheus decides the /metrics representation: any Accept
// preference for the text exposition formats (what prometheus and every
// scraper in its lineage sends) selects them; everything else keeps the
// original JSON shape for compatibility.
func wantsPrometheus(accept string) bool {
	for _, marker := range []string{"text/plain", "openmetrics", "text/*"} {
		if containsToken(accept, marker) {
			return true
		}
	}
	return false
}

// containsToken is a dependency-free substring check (Accept headers
// are comma-separated media ranges; an exact parser buys nothing here).
func containsToken(header, token string) bool {
	for i := 0; i+len(token) <= len(header); i++ {
		if header[i:i+len(token)] == token {
			return true
		}
	}
	return false
}

// writePrometheus renders one consistent metrics snapshot in the text
// exposition format: queue/in-flight gauges, job and session counters
// by outcome, the three latency histograms, trace-ring accounting and
// build identification.
func (s *Server) writePrometheus(w io.Writer) {
	m := s.Metrics()

	telemetry.WritePrometheusValue(w, "ipcpd_queue_depth", "gauge",
		"Jobs admitted but not yet started.", float64(m.QueueDepth))
	telemetry.WritePrometheusValue(w, "ipcpd_queue_capacity", "gauge",
		"Bounded queue capacity; a full queue rejects with 429.", float64(m.QueueCapacity))
	telemetry.WritePrometheusValue(w, "ipcpd_in_flight_jobs", "gauge",
		"Jobs currently executing.", float64(m.InFlight))
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	telemetry.WritePrometheusValue(w, "ipcpd_draining", "gauge",
		"1 while admission is closed for graceful shutdown.", draining)

	telemetry.WritePrometheusHeader(w, "ipcpd_jobs_total", "counter",
		"Jobs by admission/terminal outcome.")
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"admitted\"} %d\n", m.Jobs.Admitted)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"rejected\"} %d\n", m.Jobs.Rejected)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"shed\"} %d\n", m.Jobs.Shed)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"coalesced\"} %d\n", m.Jobs.Coalesced)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"completed\"} %d\n", m.Jobs.Completed)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"failed\"} %d\n", m.Jobs.Failed)
	fmt.Fprintf(w, "ipcpd_jobs_total{outcome=\"stalled\"} %d\n", m.Jobs.Stalled)

	telemetry.WritePrometheusHeader(w, "ipcpd_session_runs_total", "counter",
		"Session run dispositions underneath the job layer.")
	fmt.Fprintf(w, "ipcpd_session_runs_total{disposition=\"executed\"} %d\n", m.Session.Executed)
	fmt.Fprintf(w, "ipcpd_session_runs_total{disposition=\"memo_hit\"} %d\n", m.Session.MemoHits)
	fmt.Fprintf(w, "ipcpd_session_runs_total{disposition=\"disk_hit\"} %d\n", m.Session.DiskHits)
	fmt.Fprintf(w, "ipcpd_session_runs_total{disposition=\"coalesced\"} %d\n", m.Session.Coalesced)
	fmt.Fprintf(w, "ipcpd_session_runs_total{disposition=\"fault\"} %d\n", m.Session.Faults)

	telemetry.WritePrometheusHeader(w, "ipcpd_snapshot_store_total", "counter",
		"Shared-warmup snapshot dispositions: forks served from memory or "+
			"the disk spill, and warmups that had to simulate.")
	fmt.Fprintf(w, "ipcpd_snapshot_store_total{disposition=\"mem_hit\"} %d\n", m.Session.SnapshotMemHits)
	fmt.Fprintf(w, "ipcpd_snapshot_store_total{disposition=\"disk_hit\"} %d\n", m.Session.SnapshotDiskHits)
	fmt.Fprintf(w, "ipcpd_snapshot_store_total{disposition=\"miss\"} %d\n", m.Session.SnapshotMisses)
	telemetry.WritePrometheusValue(w, "ipcpd_snapshot_bytes_total", "counter",
		"Warmup snapshot bytes spilled to the disk cache.", float64(m.Session.SnapshotBytes))
	telemetry.WritePrometheusValue(w, "ipcpd_warmups_coalesced_total", "counter",
		"Run jobs that reused an in-flight shared warmup instead of running their own.",
		float64(m.Session.WarmupsCoalesced))
	telemetry.WritePrometheusValue(w, "ipcpd_forked_runs_total", "counter",
		"Measure phases forked from a warmup snapshot.", float64(m.Session.ForkedRuns))

	telemetry.WritePrometheusHeader(w, "ipcpd_remote_blob_total", "counter",
		"Shared blob-store traffic: local misses served remotely and local writes pushed.")
	fmt.Fprintf(w, "ipcpd_remote_blob_total{op=\"hit\"} %d\n", m.Session.RemoteBlobHits)
	fmt.Fprintf(w, "ipcpd_remote_blob_total{op=\"put\"} %d\n", m.Session.RemoteBlobPuts)

	telemetry.WritePrometheusValue(w, "ipcpd_checkpoints_quarantined", "counter",
		"Corrupt checkpoint files detected on load and moved to the corrupt/ subdirectory.",
		float64(m.Session.Quarantined))
	telemetry.WritePrometheusValue(w, "ipcpd_checkpoint_store_failures_total", "counter",
		"Checkpoint writes that failed (results still served from memory).",
		float64(m.Session.StoreFailures))

	telemetry.WritePrometheusHeader(w, "ipcpd_journal_records_total", "counter",
		"Job-journal WAL appends this process life, by result.")
	fmt.Fprintf(w, "ipcpd_journal_records_total{result=\"appended\"} %d\n", m.Journal.Appended)
	fmt.Fprintf(w, "ipcpd_journal_records_total{result=\"error\"} %d\n", m.Journal.AppendErrors)
	telemetry.WritePrometheusValue(w, "ipcpd_journal_replayed_jobs", "gauge",
		"Jobs restored from the journal at startup.", float64(m.Journal.ReplayedJobs))
	telemetry.WritePrometheusValue(w, "ipcpd_journal_damaged_frames_total", "counter",
		"Damaged WAL frames discarded during replay.", float64(m.Journal.DamagedFrames))

	m.QueueWait.WritePrometheus(w, "ipcpd_job_queue_wait_seconds",
		"Time from admission to a worker picking the job up.")
	m.Execution.WritePrometheus(w, "ipcpd_job_execution_seconds",
		"Time from worker pickup to job completion.")
	m.JobLatency.WritePrometheus(w, "ipcpd_job_duration_seconds",
		"End-to-end job latency (queue wait + execution).")

	telemetry.WritePrometheusValue(w, "ipcpd_trace_spans_dropped_total", "counter",
		"Spans overwritten in the bounded trace ring.", float64(s.spans.Dropped()))

	telemetry.WritePrometheusHeader(w, "ipcpd_build_info", "gauge",
		"Build identification; value is always 1.")
	fmt.Fprintf(w, "ipcpd_build_info{version=%q,revision=%q,goversion=%q} 1\n",
		s.build.Version, s.build.Revision, s.build.GoVersion)
}
