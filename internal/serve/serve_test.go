package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// tiny keeps every simulation in the low milliseconds.
var tiny = experiments.Scale{Warmup: 8_000, Measure: 20_000, MaxTraces: 2, Mixes: 1, Seed: 1}

// serveGate blocks workload-stream construction (inside the session's
// execute path) until released, so tests can hold jobs in the running
// state deterministically.
var (
	serveGateMu      sync.Mutex
	serveGateBlocked chan struct{} // non-nil: streams block on it
)

func gateJobs(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	serveGateMu.Lock()
	serveGateBlocked = ch
	serveGateMu.Unlock()
	var once sync.Once
	release = func() {
		once.Do(func() { close(ch) })
	}
	t.Cleanup(func() {
		release()
		serveGateMu.Lock()
		serveGateBlocked = nil
		serveGateMu.Unlock()
	})
	return release
}

func init() {
	workload.Register(workload.Spec{
		Name: "serve-gate", Suite: "test",
		NewStream: func(seed int64) trace.Stream {
			serveGateMu.Lock()
			ch := serveGateBlocked
			serveGateMu.Unlock()
			if ch != nil {
				<-ch
			}
			return &trace.SliceStream{
				Instrs: []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x10000}}},
				Loop:   true,
			}
		},
	})
}

// testServer is a Server plus its httptest front end.
type testServer struct {
	*Server
	ts *httptest.Server
}

func newTestServer(t *testing.T, opts Options) *testServer {
	t.Helper()
	if opts.Scale == (experiments.Scale{}) {
		opts.Scale = tiny
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &testServer{Server: s, ts: ts}
}

func (s *testServer) post(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func (s *testServer) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// submitRun posts a run and decodes the submission view.
func (s *testServer) submitRun(t *testing.T, req runRequest, wantCode int) submitView {
	t.Helper()
	resp, body := s.post(t, "/v1/runs", req)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /v1/runs = %d, want %d (body %s)", resp.StatusCode, wantCode, body)
	}
	var v submitView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return v
}

// await polls a job until terminal.
func (s *testServer) await(t *testing.T, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := s.get(t, "/v1/runs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/runs/%s = %d (%s)", id, resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == StateDone || v.Status == StateFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitPollComplete(t *testing.T) {
	s := newTestServer(t, Options{})
	v := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, L1D: "ipcp", L2: "ipcp"}, http.StatusAccepted)
	if v.ID == "" || v.Coalesced {
		t.Fatalf("submission view = %+v", v)
	}
	job := s.await(t, v.ID, 10*time.Second)
	if job.Status != StateDone || job.Error != "" {
		t.Fatalf("job = %+v", job)
	}
	if job.Result == nil || len(job.Result.IPC) != 1 || job.Result.IPC[0] <= 0 {
		t.Fatalf("result = %+v", job.Result)
	}
	if job.Spec == nil || job.Spec.L1D != "ipcp" {
		t.Errorf("spec echo = %+v", job.Spec)
	}

	// The events stream replays the full lifecycle and terminates.
	resp, body := s.get(t, "/v1/runs/"+v.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	var kinds []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var e JobEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Kind == "progress" {
			continue
		}
		kinds = append(kinds, e.Kind)
	}
	if want := []string{"queued", "started", "done"}; fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}
}

// TestStampedeCoalesces is the acceptance-criteria stampede: M
// concurrent identical submissions cost exactly one simulation and
// every client gets the same successful result.
func TestStampedeCoalesces(t *testing.T) {
	s := newTestServer(t, Options{QueueSize: 64, Workers: 4})
	const m = 16
	req := runRequest{Workloads: []string{"mcf-994"}, L1D: "ipcp", L2: "ipcp"}

	var wg sync.WaitGroup
	ids := make([]string, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			resp, err := http.Post(s.ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var v submitView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var ipc float64
	for i, id := range ids {
		job := s.await(t, id, 10*time.Second)
		if job.Status != StateDone {
			t.Fatalf("client %d: job %s = %+v", i, id, job)
		}
		if i == 0 {
			ipc = job.Result.IPC[0]
		} else if job.Result.IPC[0] != ipc {
			t.Fatalf("client %d saw IPC %v, client 0 saw %v", i, job.Result.IPC[0], ipc)
		}
	}
	if got := s.Session().Executed(); got != 1 {
		t.Fatalf("Executed = %d, want 1: the stampede must share one simulation", got)
	}
	m2 := s.Metrics()
	if m2.Jobs.Admitted+m2.Jobs.Coalesced != m {
		t.Errorf("admitted %d + coalesced %d != %d clients", m2.Jobs.Admitted, m2.Jobs.Coalesced, m)
	}
	if m2.Jobs.Coalesced == 0 {
		t.Error("no HTTP-level coalescing recorded for identical submissions")
	}
}

func TestQueueFullRejects(t *testing.T) {
	release := gateJobs(t)
	s := newTestServer(t, Options{QueueSize: 1, Workers: 1})

	// Job 1 occupies the single worker (blocked on the gate); job 2
	// fills the queue; job 3 must be refused with 429 + Retry-After.
	first := s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "q-0"}, http.StatusAccepted)
	waitFor(t, time.Second, func() bool { return s.Metrics().InFlight == 1 })
	s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "q-1"}, http.StatusAccepted)

	resp, body := s.post(t, "/v1/runs", runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "q-2"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submission = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if m := s.Metrics(); m.Jobs.Rejected != 1 || m.QueueDepth != 1 {
		t.Errorf("metrics = %+v", m)
	}

	// Identical resubmission of a queued spec coalesces instead of
	// consuming the full queue's capacity.
	again := s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "q-0"}, http.StatusOK)
	if !again.Coalesced || again.ID != first.ID {
		t.Errorf("resubmission = %+v, want coalesced onto %s", again, first.ID)
	}

	release()
	s.await(t, first.ID, 10*time.Second)
}

func TestDrainStopsAdmissionAndFinishesInFlight(t *testing.T) {
	release := gateJobs(t)
	s := newTestServer(t, Options{QueueSize: 8, Workers: 2})
	v := s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "drain"}, http.StatusAccepted)
	waitFor(t, time.Second, func() bool { return s.Metrics().InFlight == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(t.Context()) }()
	waitFor(t, time.Second, func() bool { return s.Draining() })

	// Admission is closed: new work bounces with 429, healthz flips.
	resp, _ := s.post(t, "/v1/runs", runRequest{Workloads: []string{"bwaves-98"}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission while draining = %d, want 429", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	// The in-flight job still completes, then the drain resolves.
	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	job := s.await(t, v.ID, 10*time.Second)
	if job.Status != StateDone {
		t.Fatalf("in-flight job after drain = %+v", job)
	}
}

func TestValidationAndLookupErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  runRequest
	}{
		{"empty workloads", runRequest{}},
		{"unknown workload", runRequest{Workloads: []string{"no-such-trace"}}},
		{"unknown prefetcher", runRequest{Workloads: []string{"bwaves-98"}, L1D: "warp-drive"}},
		{"core mismatch", runRequest{Workloads: []string{"bwaves-98"}, Cores: 3}},
		{"negative timeout", runRequest{Workloads: []string{"bwaves-98"}, TimeoutMS: -1}},
	}
	for _, c := range cases {
		if resp, body := s.post(t, "/v1/runs", c.req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, body)
		}
	}
	if resp, _ := s.get(t, "/v1/runs/j999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	if resp, _ := s.get(t, "/v1/runs/j999999/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events = %d, want 404", resp.StatusCode)
	}
	if resp, body := s.post(t, "/v1/experiments", experimentsRequest{IDs: []string{"fig999"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment = %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestExperimentsListAndJob(t *testing.T) {
	s := newTestServer(t, Options{Scale: experiments.Scale{Warmup: 2_000, Measure: 5_000, MaxTraces: 1, Mixes: 1, Seed: 1}})
	resp, body := s.get(t, "/v1/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var list []experimentView
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("no experiments listed")
	}
	id := ""
	for _, e := range list {
		if e.ID == "fig7" {
			id = e.ID
		}
	}
	if id == "" {
		t.Fatalf("fig7 missing from %v", list)
	}

	resp, body = s.post(t, "/v1/experiments", experimentsRequest{IDs: []string{id}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, body)
	}
	var v submitView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	job := s.await(t, v.ID, 60*time.Second)
	if job.Status != StateDone || job.Report == nil {
		t.Fatalf("experiment job = %+v", job)
	}
	if !strings.Contains(job.Report.Markdown, "fig7") {
		t.Errorf("report markdown missing the experiment:\n%s", job.Report.Markdown)
	}
	if job.Result != nil {
		t.Error("experiment job must not carry a run result")
	}
}

func TestMetricsSnapshotShape(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir()})
	v := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, ConfigKey: "metrics"}, http.StatusAccepted)
	s.await(t, v.ID, 10*time.Second)

	resp, body := s.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding metrics %s: %v", body, err)
	}
	if m.Jobs.Admitted != 1 || m.Jobs.Completed != 1 {
		t.Errorf("jobs = %+v", m.Jobs)
	}
	if m.Session.Executed != 1 {
		t.Errorf("session = %+v", m.Session)
	}
	if m.JobLatency.Count != 1 || m.JobLatency.Sum <= 0 {
		t.Errorf("latency = %+v", m.JobLatency)
	}
	if m.QueueCapacity != 64 {
		t.Errorf("queue capacity = %d", m.QueueCapacity)
	}
}

// TestSharedWarmupServer drives the -shared-warmup daemon path: two
// runs differing only in prefetcher configuration share one warmup,
// the snapshot-store counters surface in both /metrics encodings, and
// forked jobs carry the warmup_shared span attribute.
func TestSharedWarmupServer(t *testing.T) {
	s := newTestServer(t, Options{SharedWarmup: true})

	a := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, L1D: "ipcp"}, http.StatusAccepted)
	s.await(t, a.ID, 10*time.Second)
	b := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, L1D: "spp"}, http.StatusAccepted)
	s.await(t, b.ID, 10*time.Second)

	resp, body := s.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding metrics %s: %v", body, err)
	}
	if m.Session.SnapshotMisses != 1 {
		t.Errorf("snapshot misses = %d, want 1 (one warmup for both jobs)", m.Session.SnapshotMisses)
	}
	if m.Session.ForkedRuns != 2 {
		t.Errorf("forked runs = %d, want 2", m.Session.ForkedRuns)
	}
	if m.Session.SnapshotMemHits != 1 {
		t.Errorf("snapshot mem hits = %d, want 1 (second job forks the resident snapshot)", m.Session.SnapshotMemHits)
	}

	// The same counters must reach Prometheus scrapers.
	req, _ := http.NewRequest(http.MethodGet, s.ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	promResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(promResp.Body)
	promResp.Body.Close()
	for _, want := range []string{
		`ipcpd_snapshot_store_total{disposition="miss"} 1`,
		`ipcpd_snapshot_store_total{disposition="mem_hit"} 1`,
		"ipcpd_forked_runs_total 2",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition lacks %q", want)
		}
	}

	// Both jobs' spans are tagged as shared-warmup runs.
	for _, id := range []string{a.ID, b.ID} {
		resp, traceBody := s.get(t, "/v1/runs/"+id+"/trace")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace for %s = %d", id, resp.StatusCode)
		}
		if !bytes.Contains(traceBody, []byte("warmup_shared")) {
			t.Errorf("job %s trace lacks the warmup_shared attribute", id)
		}
	}
}

// TestEventsFollowLiveJob streams events while the job is still
// running: the started event must arrive before release, the terminal
// event after.
func TestEventsFollowLiveJob(t *testing.T) {
	release := gateJobs(t)
	s := newTestServer(t, Options{})
	v := s.submitRun(t, runRequest{Workloads: []string{"serve-gate"}, ConfigKey: "follow"}, http.StatusAccepted)
	waitFor(t, time.Second, func() bool { return s.Metrics().InFlight == 1 })

	resp, err := http.Get(s.ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// read returns the next lifecycle event, skipping any live
	// "progress" lines the stream folds in while the job runs.
	read := func() JobEvent {
		t.Helper()
		for sc.Scan() {
			var e JobEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatal(err)
			}
			if e.Kind == "progress" {
				continue
			}
			return e
		}
		t.Fatalf("event stream ended early: %v", sc.Err())
		return JobEvent{}
	}
	if e := read(); e.Kind != "queued" {
		t.Fatalf("first event = %+v", e)
	}
	if e := read(); e.Kind != "started" {
		t.Fatalf("second event = %+v", e)
	}
	release()
	if e := read(); e.Kind != "done" {
		t.Fatalf("terminal event = %+v", e)
	}
	if sc.Scan() {
		t.Fatalf("stream continued past the terminal event: %q", sc.Text())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
