package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipcp/internal/chaos"
	"ipcp/internal/sim"
)

// The job journal is ipcpd's write-ahead log: every job's submit,
// start and finish is appended (fsynced) to a segment file before the
// daemon acts on it, so a kill -9 at any instant loses zero
// acknowledged work. On startup the journal is replayed: finished jobs
// are re-registered with their original IDs and results (a client
// polling across the crash sees its job complete), unfinished jobs are
// re-enqueued with their original IDs (they run again — their results
// were never delivered), and the replayed state is compacted into a
// fresh segment written via tmp + fsync + rename.
//
// Record framing is binary and per-record checksummed:
//
//	uint32le payload length | uint32le CRC-32C(payload) | JSON payload
//
// Replay reads frames until EOF or the first damaged frame (torn tail
// from a crash mid-append, or a bit flip): everything before the
// damage is recovered, everything after is discarded with a warning —
// a WAL's prefix-durability contract. Records are merged per job ID,
// so replay tolerates any interleaving of submit/start/finish appends.

// journalRecord is one WAL entry. Type decides which fields are live.
type journalRecord struct {
	Type string    `json:"type"` // "submit" | "start" | "finish"
	Time time.Time `json:"time"`
	Job  string    `json:"job"`

	// submit fields: everything needed to rebuild the job's identity.
	Seq       int         `json:"seq,omitempty"`
	Kind      JobKind     `json:"kind,omitempty"`
	Spec      *runRequest `json:"spec,omitempty"`
	ExpIDs    []string    `json:"exp_ids,omitempty"`
	TimeoutMS int64       `json:"timeout_ms,omitempty"`
	RequestID string      `json:"request_id,omitempty"`
	Revision  string      `json:"revision,omitempty"`

	// finish fields.
	Outcome JobState    `json:"outcome,omitempty"` // done | failed | stalled
	Error   string      `json:"error,omitempty"`
	Result  *sim.Result `json:"result,omitempty"`
	Report  *reportView `json:"report,omitempty"`
}

// walTable is Castagnoli, matching the checkpoint store.
var walTable = crc32.MakeTable(crc32.Castagnoli)

const (
	walFrameHeader = 8
	// walMaxRecord bounds a frame so a corrupt length field cannot ask
	// replay to allocate gigabytes.
	walMaxRecord = 64 << 20
	// walMaxSegment rotates the active segment when it grows past this.
	walMaxSegment = 8 << 20
)

// journal is the WAL: one active append segment plus replay/compaction.
type journal struct {
	dir string
	log *slog.Logger

	mu     sync.Mutex
	f      *os.File
	segSeq int   // suffix of the active segment
	size   int64 // bytes appended to the active segment

	appended   atomic.Uint64 // records appended this process life
	appendErrs atomic.Uint64 // appends that failed (journal degraded)
	damaged    atomic.Uint64 // damaged frames discarded during replay
	replayed   atomic.Uint64 // jobs restored by replay
}

func segName(seq int) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// openJournal opens (creating if needed) the journal directory,
// replays every segment, compacts the live records into a single fresh
// segment, and opens a new active segment for this life's appends.
// The returned records are the replayed history, merged per job.
func openJournal(dir string, log *slog.Logger) (*journal, []*replayedJob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: creating journal dir: %w", err)
	}
	j := &journal{dir: dir, log: log}

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(segs)
	var recs []journalRecord
	maxSeg := 0
	for _, seg := range segs {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(seg), "wal-%d.seg", &n); err == nil && n > maxSeg {
			maxSeg = n
		}
		segRecs, damaged := j.readSegment(seg)
		recs = append(recs, segRecs...)
		if damaged > 0 {
			j.damaged.Add(uint64(damaged))
			j.log.Warn("journal segment damaged; trailing records discarded",
				"segment", seg, "recovered", len(segRecs), "damaged_frames", damaged)
		}
	}
	jobs := mergeReplay(recs, log)
	j.replayed.Store(uint64(len(jobs)))

	// Compact: canonical submit(+finish) records for every replayed
	// job, written tmp + fsync + rename, then the old segments go.
	// A crash mid-compaction leaves the old segments intact (the
	// rename is the commit point); a crash after leaves only the
	// compacted segment. Either way replay sees consistent state.
	if len(segs) > 0 {
		compacted := filepath.Join(dir, segName(maxSeg+1))
		if err := writeCompacted(compacted, jobs); err != nil {
			return nil, nil, fmt.Errorf("serve: compacting journal: %w", err)
		}
		for _, seg := range segs {
			if err := os.Remove(seg); err != nil {
				j.log.Warn("journal: removing pre-compaction segment", "segment", seg, "err", err)
			}
		}
		j.segSeq = maxSeg + 2
	} else {
		j.segSeq = 1
	}
	if err := j.openActive(); err != nil {
		return nil, nil, err
	}
	return j, jobs, nil
}

func (j *journal) openActive() error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.segSeq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: opening journal segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	j.f, j.size = f, st.Size()
	return nil
}

// append frames, writes and fsyncs one record. An error degrades the
// journal (counted, logged by the caller) but never the serving path.
func (j *journal) append(rec journalRecord) error {
	if err := chaos.At("journal.append"); err != nil {
		j.appendErrs.Add(1)
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		j.appendErrs.Add(1)
		return err
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walTable))
	copy(frame[walFrameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("serve: journal closed")
	}
	if _, err := chaos.Writer("journal.write", j.f).Write(frame); err != nil {
		// A torn frame would poison every later append in this
		// segment; truncate it away, or abandon the segment if even
		// that fails (the next segment starts clean).
		if terr := j.f.Truncate(j.size); terr != nil {
			j.rotateLocked()
		}
		j.appendErrs.Add(1)
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.appendErrs.Add(1)
		return err
	}
	j.size += int64(len(frame))
	j.appended.Add(1)
	if j.size >= walMaxSegment {
		j.rotateLocked()
	}
	return nil
}

// rotateLocked moves appends to a fresh segment; j.mu held.
func (j *journal) rotateLocked() {
	if j.f != nil {
		j.f.Close()
	}
	j.segSeq++
	if err := j.openActive(); err != nil {
		j.log.Error("journal rotation failed; journaling disabled", "err", err)
		j.f = nil
	}
}

// Close flushes and closes the active segment.
func (j *journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Sync()
		j.f.Close()
		j.f = nil
	}
}

// readSegment decodes frames until EOF or the first damaged frame.
func (j *journal) readSegment(path string) (recs []journalRecord, damaged int) {
	data, err := os.ReadFile(path)
	if err != nil {
		j.log.Warn("journal: unreadable segment", "segment", path, "err", err)
		return nil, 1
	}
	off := 0
	for off < len(data) {
		if len(data)-off < walFrameHeader {
			return recs, 1 // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 0 || n > walMaxRecord || off+walFrameHeader+n > len(data) {
			return recs, 1 // torn or length-corrupted payload
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		if crc32.Checksum(payload, walTable) != crc {
			return recs, 1 // bit flip
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, 1 // CRC-valid but unparseable: treat as damage
		}
		recs = append(recs, rec)
		off += walFrameHeader + n
	}
	return recs, 0
}

// replayedJob is one job's merged journal history.
type replayedJob struct {
	seq       int
	id        string
	kind      JobKind
	spec      *runRequest
	expIDs    []string
	timeoutMS int64
	requestID string
	revision  string
	submitted time.Time
	started   time.Time
	finished  time.Time
	outcome   JobState // "" while unfinished
	errstr    string
	result    *sim.Result
	report    *reportView
}

// mergeReplay folds records into per-job state, ordered by submit
// sequence. Records for jobs whose submit record was lost to damage
// cannot be acted on (no identity to rebuild) and are dropped with a
// warning.
func mergeReplay(recs []journalRecord, log *slog.Logger) []*replayedJob {
	byID := make(map[string]*replayedJob)
	get := func(id string) *replayedJob {
		r, ok := byID[id]
		if !ok {
			r = &replayedJob{id: id}
			byID[id] = r
		}
		return r
	}
	for _, rec := range recs {
		if rec.Job == "" {
			continue
		}
		r := get(rec.Job)
		switch rec.Type {
		case "submit":
			r.seq = rec.Seq
			r.kind = rec.Kind
			r.spec = rec.Spec
			r.expIDs = rec.ExpIDs
			r.timeoutMS = rec.TimeoutMS
			r.requestID = rec.RequestID
			r.revision = rec.Revision
			r.submitted = rec.Time
		case "start":
			r.started = rec.Time
		case "finish":
			r.finished = rec.Time
			r.outcome = rec.Outcome
			r.errstr = rec.Error
			r.result = rec.Result
			r.report = rec.Report
		}
	}
	out := make([]*replayedJob, 0, len(byID))
	for id, r := range byID {
		if r.submitted.IsZero() || (r.kind == KindRun && r.spec == nil) {
			log.Warn("journal: dropping job with incomplete history", "job_id", id)
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].seq < out[k].seq })
	return out
}

// writeCompacted writes the canonical replay of jobs as one segment:
// tmp file, fsync, rename — the same discipline as the checkpoint
// store, so a crash never leaves a half-compacted segment in place.
func writeCompacted(path string, jobs []*replayedJob) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".wal-compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var buf []byte
	frame := func(rec journalRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walTable))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		return nil
	}
	for _, r := range jobs {
		if err := frame(journalRecord{
			Type: "submit", Time: r.submitted, Job: r.id, Seq: r.seq,
			Kind: r.kind, Spec: r.spec, ExpIDs: r.expIDs,
			TimeoutMS: r.timeoutMS, RequestID: r.requestID, Revision: r.revision,
		}); err != nil {
			tmp.Close()
			return err
		}
		if r.outcome == "" {
			continue
		}
		if err := frame(journalRecord{
			Type: "finish", Time: r.finished, Job: r.id,
			Outcome: r.outcome, Error: r.errstr, Result: r.result, Report: r.report,
		}); err != nil {
			tmp.Close()
			return err
		}
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if f, err := os.Open(filepath.Dir(path)); err == nil {
		f.Sync()
		f.Close()
	}
	return nil
}

// submitRecord renders a job's admission for the WAL.
func submitRecord(j *Job, seq int) journalRecord {
	return journalRecord{
		Type: "submit", Time: j.submitted, Job: j.ID, Seq: seq,
		Kind: j.Kind, Spec: j.Req, ExpIDs: j.ExpIDs,
		TimeoutMS: int64(j.Timeout / time.Millisecond),
		RequestID: j.RequestID, Revision: j.Revision,
	}
}

// appendOrWarn journals one record, downgrading failure to a warning:
// serving keeps working on a dead journal disk, it just loses
// crash-durability (visible via the append-error counter).
func (s *Server) appendOrWarn(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.log.Warn("journal append failed; job not crash-durable",
			"job_id", rec.Job, "type", rec.Type, "err", err)
	}
}
