package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
)

// JobKind distinguishes the two job shapes ipcpd serves.
type JobKind string

const (
	// KindRun is one simulation described by a RunSpec.
	KindRun JobKind = "run"
	// KindExperiments is a batch of named paper experiments.
	KindExperiments JobKind = "experiments"
)

// JobState is a job's lifecycle position. Transitions are strictly
// queued → running → done|failed|stalled; a job never leaves a
// terminal state. (A journal replay may move a crashed daemon's
// running jobs back to queued — in the next process life.)
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateStalled is the watchdog's verdict: the job's simulation
	// stopped retiring instructions for longer than the stall timeout
	// and was cancelled to reclaim its worker slot.
	StateStalled JobState = "stalled"
)

// terminal reports whether a state is final.
func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateStalled
}

// JobEvent is one line of a job's progress stream, delivered as JSONL
// on GET /v1/runs/{id}/events.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg,omitempty"`
}

// Job is one unit of admitted work. The immutable identity fields are
// set before the job is published; everything below mu is the mutable
// lifecycle, observed concurrently by workers, pollers and streamers.
type Job struct {
	ID         string
	Kind       JobKind
	Spec       experiments.RunSpec // KindRun
	Req        *runRequest         // the wire form of Spec, echoed in views
	ExpIDs     []string            // KindExperiments
	Timeout    time.Duration       // 0 = no per-job deadline
	key        string              // coalescing key (KindRun only)
	RequestID  string              // X-Request-ID of the submitting request
	Revision   string              // daemon VCS revision, stamped at admission
	parentSpan uint64              // submitting request's span, parents queue.wait
	submitted  time.Time           // set once in newJob, before publication

	mu         sync.Mutex
	state      JobState
	err        error
	result     *sim.Result
	report     *experiments.Report
	replayRep  *reportView // journal-replayed report (original lost to the crash)
	started    time.Time
	finished   time.Time
	events     []JobEvent
	changed    chan struct{} // closed and replaced on every mutation
	progress   telemetry.Progress
	progressAt time.Time

	// Watchdog state: cancel tears down the running job's context;
	// stalled marks the watchdog's verdict before the cancellation
	// surfaces; lastMove is the last time the simulation demonstrably
	// advanced (started, or a progress report whose counters moved).
	cancel   func()
	stalled  bool
	lastMove time.Time
	abandon  chan struct{} // closed by markStalled; wakes the worker's select
}

func newJob(kind JobKind) *Job {
	j := &Job{
		Kind:      kind,
		state:     StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
	j.events = append(j.events, JobEvent{Seq: 0, Time: j.submitted, Kind: "queued"})
	return j
}

// notifyLocked wakes every waiter; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Event appends one progress event and wakes streamers.
func (j *Job) Event(kind, msg string) {
	j.mu.Lock()
	j.events = append(j.events, JobEvent{Seq: len(j.events), Time: time.Now(), Kind: kind, Msg: msg})
	j.notifyLocked()
	j.mu.Unlock()
}

// begin marks the job running; cancel lets the watchdog tear it down.
func (j *Job) begin(cancel func()) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.lastMove = j.started
	j.cancel = cancel
	j.abandon = make(chan struct{})
	j.events = append(j.events, JobEvent{Seq: len(j.events), Time: j.started, Kind: "started"})
	j.notifyLocked()
	j.mu.Unlock()
}

// finish resolves the job into its terminal state. A watchdog-marked
// job terminates as stalled regardless of the error the cancellation
// surfaced as.
func (j *Job) finish(res *sim.Result, rep *experiments.Report, err error) {
	j.mu.Lock()
	j.result, j.report, j.err = res, rep, err
	j.finished = time.Now()
	ev := JobEvent{Seq: len(j.events), Time: j.finished, Kind: "done"}
	switch {
	case j.stalled:
		j.state = StateStalled
		ev.Kind = "stalled"
		if err != nil {
			ev.Msg = err.Error()
		}
	case err != nil:
		j.state = StateFailed
		ev.Kind = "failed"
		ev.Msg = err.Error()
	default:
		j.state = StateDone
	}
	j.events = append(j.events, ev)
	j.cancel = nil
	j.notifyLocked()
	j.mu.Unlock()
}

// markStalled records the watchdog's verdict and cancels the job's
// context. Returns false if the job is not running (already finished,
// or already marked).
func (j *Job) markStalled() bool {
	j.mu.Lock()
	if j.state != StateRunning || j.stalled {
		j.mu.Unlock()
		return false
	}
	j.stalled = true
	cancel := j.cancel
	close(j.abandon)
	j.events = append(j.events, JobEvent{
		Seq: len(j.events), Time: time.Now(), Kind: "stall-detected",
		Msg: "no simulation progress within the stall timeout; cancelling",
	})
	j.notifyLocked()
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Stalled reports whether the watchdog marked this job.
func (j *Job) Stalled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stalled
}

// abandonCh returns the channel markStalled closes — the worker's cue
// to stop waiting on a wedged simulation. Valid once begin has run.
func (j *Job) abandonCh() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.abandon
}

// Result returns the job's terminal result (nil otherwise).
func (j *Job) Result() *sim.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// stalledFor returns how long the running job has gone without
// demonstrable progress (zero for non-running jobs).
func (j *Job) stalledFor(now time.Time) time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.stalled {
		return 0
	}
	return now.Sub(j.lastMove)
}

// setProgress records the latest simulation progress report. It is the
// job's telemetry.ProgressFunc: called from the sim loop's existing
// cancellation-check cadence, so a mutex here is off the hot path.
// Streamers poll on a ticker instead of being woken per report.
//
// lastMove advances only when the report shows actual movement
// (retired-instruction or cycle counters changed, or the phase
// flipped): a wedged simulation that keeps reporting the same numbers
// still reads as stalled to the watchdog.
func (j *Job) setProgress(p telemetry.Progress) {
	j.mu.Lock()
	now := time.Now()
	if p.Phase != j.progress.Phase || p.Retired != j.progress.Retired || p.Cycle != j.progress.Cycle {
		j.lastMove = now
	}
	j.progress = p
	j.progressAt = now
	j.mu.Unlock()
}

// Progress returns the latest report and whether one has arrived yet.
func (j *Job) Progress() (telemetry.Progress, time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress, j.progressAt, !j.progressAt.IsZero()
}

// Err returns the job's terminal error (nil while non-terminal or on
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// eventsSince returns a copy of the events from seq onward, the channel
// that will be closed on the next mutation, and whether the job is
// terminal — everything a streamer needs for one follow iteration.
func (j *Job) eventsSince(seq int) (events []JobEvent, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		events = append(events, j.events[seq:]...)
	}
	return events, j.changed, j.state.terminal()
}

// jobView is the JSON shape of GET /v1/runs/{id}.
type jobView struct {
	ID        string      `json:"id"`
	Kind      JobKind     `json:"kind"`
	Status    JobState    `json:"status"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	ElapsedS  float64     `json:"elapsed_s,omitempty"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
	Report    *reportView `json:"report,omitempty"`
	Spec      *runRequest `json:"spec,omitempty"`
	ExpIDs    []string    `json:"experiment_ids,omitempty"`
	RequestID string      `json:"request_id,omitempty"`
	Revision  string      `json:"revision,omitempty"`
}

// reportView is the JSON shape of a completed experiments job.
type reportView struct {
	Interrupted bool         `json:"interrupted"`
	Markdown    string       `json:"markdown"`
	Failed      []failedView `json:"failed,omitempty"`
}

type failedView struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.ID,
		Kind:      j.Kind,
		Status:    j.state,
		Submitted: j.submitted,
		Result:    j.result,
		ExpIDs:    j.ExpIDs,
		Spec:      j.Req,
		RequestID: j.RequestID,
		Revision:  j.Revision,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		v.ElapsedS = j.finished.Sub(j.started).Seconds()
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.report != nil {
		rv := &reportView{Interrupted: j.report.Interrupted, Markdown: j.report.Markdown()}
		for _, res := range j.report.Failed() {
			rv.Failed = append(rv.Failed, failedView{ID: res.ID, Error: fmt.Sprint(res.Err)})
		}
		v.Report = rv
	} else if j.replayRep != nil {
		v.Report = j.replayRep
	}
	return v
}

// reportViewOf renders the job's report for the journal (nil when the
// job has none).
func (j *Job) reportViewOf() *reportView {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.report == nil {
		return j.replayRep
	}
	rv := &reportView{Interrupted: j.report.Interrupted, Markdown: j.report.Markdown()}
	for _, res := range j.report.Failed() {
		rv.Failed = append(rv.Failed, failedView{ID: res.ID, Error: fmt.Sprint(res.Err)})
	}
	return rv
}

// newReplayedJob rebuilds a Job from its journal history. Finished
// jobs come back terminal with their original result; unfinished ones
// come back queued (the caller re-enqueues them) — their start in the
// previous life, if any, died with the process.
func newReplayedJob(r *replayedJob) *Job {
	j := &Job{
		ID:        r.id,
		Kind:      r.kind,
		ExpIDs:    r.expIDs,
		Timeout:   time.Duration(r.timeoutMS) * time.Millisecond,
		RequestID: r.requestID,
		Revision:  r.revision,
		submitted: r.submitted,
		state:     StateQueued,
		changed:   make(chan struct{}),
	}
	if r.spec != nil {
		j.Req = r.spec
		j.Spec = r.spec.spec()
		j.key = j.Spec.Key()
	}
	j.events = append(j.events, JobEvent{Seq: 0, Time: r.submitted, Kind: "queued"})
	if r.outcome == "" {
		// Unfinished: back to the queue with a visible marker that the
		// daemon restarted underneath the job.
		j.events = append(j.events, JobEvent{
			Seq: 1, Time: time.Now(), Kind: "replayed",
			Msg: "daemon restarted; job re-enqueued from the journal",
		})
		return j
	}
	if !r.started.IsZero() {
		j.started = r.started
		j.events = append(j.events, JobEvent{Seq: len(j.events), Time: r.started, Kind: "started"})
	}
	j.state = r.outcome
	j.finished = r.finished
	j.result = r.result
	j.replayRep = r.report
	j.stalled = r.outcome == StateStalled
	ev := JobEvent{Seq: len(j.events), Time: r.finished, Kind: string(r.outcome), Msg: r.errstr}
	if r.outcome == StateDone {
		ev.Kind = "done"
	}
	if r.errstr != "" {
		j.err = errors.New(r.errstr)
	}
	j.events = append(j.events, ev)
	return j
}
