package serve

import (
	"fmt"
	"sync"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
)

// JobKind distinguishes the two job shapes ipcpd serves.
type JobKind string

const (
	// KindRun is one simulation described by a RunSpec.
	KindRun JobKind = "run"
	// KindExperiments is a batch of named paper experiments.
	KindExperiments JobKind = "experiments"
)

// JobState is a job's lifecycle position. Transitions are strictly
// queued → running → done|failed; a job never leaves a terminal state.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// JobEvent is one line of a job's progress stream, delivered as JSONL
// on GET /v1/runs/{id}/events.
type JobEvent struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg,omitempty"`
}

// Job is one unit of admitted work. The immutable identity fields are
// set before the job is published; everything below mu is the mutable
// lifecycle, observed concurrently by workers, pollers and streamers.
type Job struct {
	ID         string
	Kind       JobKind
	Spec       experiments.RunSpec // KindRun
	Req        *runRequest         // the wire form of Spec, echoed in views
	ExpIDs     []string            // KindExperiments
	Timeout    time.Duration       // 0 = no per-job deadline
	key        string              // coalescing key (KindRun only)
	RequestID  string              // X-Request-ID of the submitting request
	Revision   string              // daemon VCS revision, stamped at admission
	parentSpan uint64              // submitting request's span, parents queue.wait
	submitted  time.Time           // set once in newJob, before publication

	mu         sync.Mutex
	state      JobState
	err        error
	result     *sim.Result
	report     *experiments.Report
	started    time.Time
	finished   time.Time
	events     []JobEvent
	changed    chan struct{} // closed and replaced on every mutation
	progress   telemetry.Progress
	progressAt time.Time
}

func newJob(kind JobKind) *Job {
	j := &Job{
		Kind:      kind,
		state:     StateQueued,
		submitted: time.Now(),
		changed:   make(chan struct{}),
	}
	j.events = append(j.events, JobEvent{Seq: 0, Time: j.submitted, Kind: "queued"})
	return j
}

// notifyLocked wakes every waiter; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Event appends one progress event and wakes streamers.
func (j *Job) Event(kind, msg string) {
	j.mu.Lock()
	j.events = append(j.events, JobEvent{Seq: len(j.events), Time: time.Now(), Kind: kind, Msg: msg})
	j.notifyLocked()
	j.mu.Unlock()
}

// begin marks the job running.
func (j *Job) begin() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.events = append(j.events, JobEvent{Seq: len(j.events), Time: j.started, Kind: "started"})
	j.notifyLocked()
	j.mu.Unlock()
}

// finish resolves the job into its terminal state.
func (j *Job) finish(res *sim.Result, rep *experiments.Report, err error) {
	j.mu.Lock()
	j.result, j.report, j.err = res, rep, err
	j.finished = time.Now()
	ev := JobEvent{Seq: len(j.events), Time: j.finished, Kind: "done"}
	j.state = StateDone
	if err != nil {
		j.state = StateFailed
		ev.Kind = "failed"
		ev.Msg = err.Error()
	}
	j.events = append(j.events, ev)
	j.notifyLocked()
	j.mu.Unlock()
}

// setProgress records the latest simulation progress report. It is the
// job's telemetry.ProgressFunc: called from the sim loop's existing
// cancellation-check cadence, so a mutex here is off the hot path.
// Streamers poll on a ticker instead of being woken per report.
func (j *Job) setProgress(p telemetry.Progress) {
	j.mu.Lock()
	j.progress = p
	j.progressAt = time.Now()
	j.mu.Unlock()
}

// Progress returns the latest report and whether one has arrived yet.
func (j *Job) Progress() (telemetry.Progress, time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress, j.progressAt, !j.progressAt.IsZero()
}

// Err returns the job's terminal error (nil while non-terminal or on
// success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// eventsSince returns a copy of the events from seq onward, the channel
// that will be closed on the next mutation, and whether the job is
// terminal — everything a streamer needs for one follow iteration.
func (j *Job) eventsSince(seq int) (events []JobEvent, changed <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		events = append(events, j.events[seq:]...)
	}
	return events, j.changed, j.state == StateDone || j.state == StateFailed
}

// jobView is the JSON shape of GET /v1/runs/{id}.
type jobView struct {
	ID        string      `json:"id"`
	Kind      JobKind     `json:"kind"`
	Status    JobState    `json:"status"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	ElapsedS  float64     `json:"elapsed_s,omitempty"`
	Error     string      `json:"error,omitempty"`
	Result    *sim.Result `json:"result,omitempty"`
	Report    *reportView `json:"report,omitempty"`
	Spec      *runRequest `json:"spec,omitempty"`
	ExpIDs    []string    `json:"experiment_ids,omitempty"`
	RequestID string      `json:"request_id,omitempty"`
	Revision  string      `json:"revision,omitempty"`
}

// reportView is the JSON shape of a completed experiments job.
type reportView struct {
	Interrupted bool         `json:"interrupted"`
	Markdown    string       `json:"markdown"`
	Failed      []failedView `json:"failed,omitempty"`
}

type failedView struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.ID,
		Kind:      j.Kind,
		Status:    j.state,
		Submitted: j.submitted,
		Result:    j.result,
		ExpIDs:    j.ExpIDs,
		Spec:      j.Req,
		RequestID: j.RequestID,
		Revision:  j.Revision,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		v.ElapsedS = j.finished.Sub(j.started).Seconds()
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if j.report != nil {
		rv := &reportView{Interrupted: j.report.Interrupted, Markdown: j.report.Markdown()}
		for _, res := range j.report.Failed() {
			rv.Failed = append(rv.Failed, failedView{ID: res.ID, Error: fmt.Sprint(res.Err)})
		}
		v.Report = rv
	}
	return v
}
