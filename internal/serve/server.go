// Package serve is the ipcpd daemon's core: a long-running HTTP/JSON
// front end over a shared experiments.Session. It turns the session's
// memoization, single-flight dedup, disk checkpointing and
// context-cancellation machinery into a simulation service with
// admission control (bounded queue, 429 + Retry-After on overload),
// request coalescing (N clients asking for the same run share one
// simulation and one job), per-job deadlines, streamed progress, and
// graceful drain on shutdown.
//
// Everything is stdlib net/http; the API surface is small and
// versioned under /v1:
//
// Every request is correlated: an X-Request-ID (client-supplied or
// minted) is echoed on the response, attached to every structured log
// line, carried through context into the session and simulator, and
// stamped on every span the request produces.
//
//	POST /v1/runs               submit one simulation (RunSpec shape)
//	GET  /v1/runs/{id}          job status, result when done
//	GET  /v1/runs/{id}/events   streamed JSONL progress + events
//	GET  /v1/runs/{id}/progress latest simulation progress report
//	GET  /v1/runs/{id}/trace    Chrome trace_event JSON for one job
//	POST /v1/experiments        run named paper experiments
//	GET  /v1/experiments        list experiment ids
//	GET  /v1/buildinfo          binary version/revision/toolchain
//	GET  /healthz               liveness (503 while draining)
//	GET  /metrics               counters (JSON, or Prometheus text via Accept)
//	GET  /debug/trace           Chrome trace_event JSON, daemon-wide
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ipcp/internal/chaos"
	"ipcp/internal/experiments"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
	"ipcp/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Scale is the session's simulation scale (experiments.Quick when
	// zero).
	Scale experiments.Scale
	// CacheDir, when set, checkpoints every finished simulation to disk
	// so results persist across daemon restarts.
	CacheDir string
	// QueueSize bounds the admitted-but-not-started backlog (default
	// 64). A full queue rejects with 429 + Retry-After.
	QueueSize int
	// Workers is the number of concurrent job runners (default
	// NumCPU). The session separately caps concurrent simulations at
	// NumCPU, so extra workers only help jobs that coalesce or hit
	// caches.
	Workers int
	// JobTimeout caps every job's per-request timeout_ms; 0 means
	// requests may run unbounded.
	JobTimeout time.Duration
	// SharedWarmup routes run jobs through the session's shared-warmup
	// scheduler: jobs differing only in prefetcher configuration share
	// one warmup simulation and fork their measure phases from its
	// snapshot. Results use the cache-warm-only methodology (see
	// DESIGN.md §15) and are cached separately from classic runs.
	SharedWarmup bool
	// RemoteBlobs, when set, attaches a shared second-level blob store
	// (the coordinator's /v1/blobs service) behind the disk cache:
	// local checkpoint/snapshot misses fall through to it and local
	// writes are pushed to it, so any worker's result is every
	// worker's disk hit. Requires CacheDir.
	RemoteBlobs experiments.RemoteBlobs
	// JournalDir, when set, write-ahead journals every job's
	// submit/start/finish to CRC-framed, fsynced segment files. On
	// startup the journal is replayed: finished jobs are re-served
	// with their original IDs and results, unfinished ones are
	// re-enqueued — a kill -9 loses zero acknowledged work.
	JournalDir string
	// StallTimeout arms the hung-job watchdog: a running job whose
	// simulation progress counters stop moving for this long is
	// cancelled, terminates as outcome "stalled", and its worker slot
	// is reclaimed (even if the simulation itself is wedged beyond
	// cancellation). 0 disables the watchdog.
	StallTimeout time.Duration
	// WatchdogTick overrides the stall-scan cadence (default
	// StallTimeout/4, clamped to [10ms, 1s]). Tests shrink it.
	WatchdogTick time.Duration
	// Log receives structured operational logs (admissions, completions,
	// drain) with request_id/job_id/kind/duration attributes. Nil
	// discards.
	Log *slog.Logger
	// SpanBuf bounds the in-memory span ring backing /debug/trace
	// (default telemetry.DefaultSpanCapacity). Oldest spans are
	// overwritten, never blocked on.
	SpanBuf int
}

// Server owns the session, the job queue and the worker pool. Create
// with New, expose via Handler, stop with Drain (graceful) or Close.
type Server struct {
	opts    Options
	session *experiments.Session
	ctx     context.Context
	cancel  context.CancelFunc
	log     *slog.Logger
	spans   *telemetry.SpanTracer
	build   BuildInfo
	journal *journal // nil when JournalDir is unset

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]*Job      // in-flight/completed run jobs by spec key
	queuedDL map[string]time.Time // queued jobs' absolute deadlines (load shedding)
	seq      int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup // workers
	bg    sync.WaitGroup // watchdog

	inFlight  telemetry.Gauge
	admitted  telemetry.Counter
	rejected  telemetry.Counter
	shed      telemetry.Counter // deadline-aware load shedding refusals
	coalesced telemetry.Counter
	completed telemetry.Counter
	failed    telemetry.Counter
	stalledC  telemetry.Counter // watchdog-reaped jobs
	queueWait *telemetry.Histogram // admission → worker pickup
	execution *telemetry.Histogram // worker pickup → finish
	latency   *telemetry.Histogram // admission → finish (end to end)
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Scale == (experiments.Scale{}) {
		opts.Scale = experiments.Quick
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.SpanBuf <= 0 {
		opts.SpanBuf = telemetry.DefaultSpanCapacity
	}
	ctx, cancel := context.WithCancel(context.Background())
	session := experiments.NewSessionContext(ctx, opts.Scale)
	if opts.CacheDir != "" {
		if err := session.SetCacheDir(opts.CacheDir); err != nil {
			cancel()
			return nil, err
		}
	}
	if opts.RemoteBlobs != nil {
		if opts.CacheDir == "" {
			cancel()
			return nil, fmt.Errorf("serve: RemoteBlobs requires CacheDir")
		}
		if err := session.SetRemoteBlobs(opts.RemoteBlobs); err != nil {
			cancel()
			return nil, err
		}
	}
	s := &Server{
		opts:      opts,
		session:   session,
		ctx:       ctx,
		cancel:    cancel,
		log:       opts.Log,
		spans:     telemetry.NewSpanTracer(opts.SpanBuf),
		build:     ReadBuildInfo(),
		jobs:      make(map[string]*Job),
		byKey:     make(map[string]*Job),
		queuedDL:  make(map[string]time.Time),
		queueWait: telemetry.NewHistogram(),
		execution: telemetry.NewHistogram(),
		latency:   telemetry.NewHistogram(),
	}
	var replay []*replayedJob
	if opts.JournalDir != "" {
		jr, jobs, err := openJournal(opts.JournalDir, opts.Log)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jr
		replay = jobs
	}
	// The queue must absorb every replayed unfinished job even when
	// that exceeds QueueSize: the jobs were already acknowledged in a
	// previous life and are never dropped on restart.
	queueCap := opts.QueueSize
	unfinished := 0
	for _, r := range replay {
		if r.outcome == "" {
			unfinished++
		}
	}
	if unfinished > queueCap {
		queueCap = unfinished
	}
	s.queue = make(chan *Job, queueCap)
	requeued := 0
	for _, r := range replay {
		if r.seq > s.seq {
			s.seq = r.seq
		}
		j := newReplayedJob(r)
		s.jobs[j.ID] = j
		// Done and still-queued runs pin the coalescing key so
		// identical submissions after the restart share them; stalled
		// and failed replays don't (their retry semantics match the
		// live eviction rules).
		if st := j.State(); j.Kind == KindRun && j.key != "" &&
			(st == StateQueued || st == StateDone) {
			s.byKey[j.key] = j
		}
		if !j.State().terminal() {
			requeued++
			s.queue <- j
		}
	}
	if s.journal != nil {
		s.log.Info("journal replayed",
			"dir", opts.JournalDir, "jobs", len(replay), "requeued", requeued,
			"finished", len(replay)-requeued, "damaged_frames", s.journal.damaged.Load())
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.StallTimeout > 0 {
		s.bg.Add(1)
		go s.watchdog()
	}
	return s, nil
}

// watchdog periodically scans running jobs for ones whose simulation
// progress counters have stopped moving and reaps them (cancellation +
// worker-slot reclaim). Exits when the server's context does.
func (s *Server) watchdog() {
	defer s.bg.Done()
	tick := s.opts.WatchdogTick
	if tick <= 0 {
		tick = s.opts.StallTimeout / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		if tick > time.Second {
			tick = time.Second
		}
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-t.C:
			s.reapStalled(now)
		}
	}
}

// reapStalled marks every over-deadline running job stalled.
func (s *Server) reapStalled(now time.Time) {
	s.mu.Lock()
	var stale []*Job
	for _, j := range s.jobs {
		if j.stalledFor(now) > s.opts.StallTimeout {
			stale = append(stale, j)
		}
	}
	s.mu.Unlock()
	for _, j := range stale {
		if j.markStalled() {
			s.log.Warn("watchdog: job stalled; cancelling to reclaim its worker",
				"job_id", j.ID, "kind", string(j.Kind), "request_id", j.RequestID,
				"stall_timeout", s.opts.StallTimeout)
		}
	}
}

// Session exposes the underlying experiments session (metrics, tests).
func (s *Server) Session() *experiments.Session { return s.session }

// Spans exposes the daemon-wide span ring (trace endpoints, tests).
func (s *Server) Spans() *telemetry.SpanTracer { return s.spans }

// Build returns the daemon's build identification.
func (s *Server) Build() BuildInfo { return s.build }

// Draining reports whether admission has been closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain closes admission: new submissions are rejected with 429
// and workers exit once the queue empties. Idempotent.
func (s *Server) StartDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		s.log.Info("draining", "queue_depth", len(s.queue))
	}
	s.mu.Unlock()
}

// AwaitDrain blocks until every queued and in-flight job has finished.
// If ctx expires first, in-flight simulations are cancelled (they stop
// within a few thousand cycles; completed sub-runs are already
// checkpointed when a cache dir is configured) and the context error is
// returned after the workers unwind.
func (s *Server) AwaitDrain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Drain is StartDrain + AwaitDrain: the SIGTERM path.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	return s.AwaitDrain(ctx)
}

// Close shuts down immediately: admission off, in-flight work
// cancelled, workers joined.
func (s *Server) Close() {
	s.StartDrain()
	s.cancel()
	s.wg.Wait()
	s.bg.Wait()
	if s.journal != nil {
		s.journal.Close()
	}
}

// The admission refusals; all map to 429 so clients retry against a
// drained or less-loaded server.
var (
	errQueueFull     = errors.New("job queue full")
	errDraining      = errors.New("server draining")
	errBacklogDoomed = errors.New("queue backlog already past its deadlines; shedding load")
)

// submit admits a job (assigning its ID) or coalesces it onto an
// existing identical run job. An admission is journaled before it is
// acknowledged, so the caller's 202 implies crash-durability.
func (s *Server) submit(j *Job) (*Job, bool, error) {
	s.mu.Lock()
	if s.draining {
		s.rejected.Inc()
		s.mu.Unlock()
		return nil, false, errDraining
	}
	if j.Kind == KindRun {
		if exist, ok := s.byKey[j.key]; ok {
			// HTTP-level coalescing: the identical run is already
			// queued, running or done — share its job. Identical runs
			// reached through *different* entry points (a run job and
			// an experiment job touching the same spec) are coalesced
			// one layer down, by the session's single-flight cache.
			s.coalesced.Inc()
			s.mu.Unlock()
			return exist, true, nil
		}
	}
	// Deadline-aware shedding: if any already-queued job has blown past
	// its own absolute deadline while waiting, the backlog is doomed —
	// new work would only wait behind jobs guaranteed to time out, so
	// refuse it now instead of timing it out later.
	now := time.Now()
	for _, dl := range s.queuedDL {
		if now.After(dl) {
			s.shed.Inc()
			s.mu.Unlock()
			return nil, false, errBacklogDoomed
		}
	}
	// Identity must be stamped before the channel send: the send is the
	// happens-before edge to the worker, so a field written after it
	// races with the worker reading the job.
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)
	j.Revision = s.build.Revision
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.rejected.Inc()
		s.mu.Unlock()
		return nil, false, errQueueFull
	}
	s.jobs[j.ID] = j
	if j.Kind == KindRun {
		s.byKey[j.key] = j
	}
	if j.Timeout > 0 {
		s.queuedDL[j.ID] = j.submitted.Add(j.Timeout)
	}
	s.admitted.Inc()
	seq := s.seq
	s.log.Info("job admitted",
		"job_id", j.ID, "kind", string(j.Kind), "request_id", j.RequestID,
		"queue_depth", len(s.queue))
	s.mu.Unlock()
	// Journal outside the lock (the append fsyncs) but before the ack.
	// A crash in this window — modeled by the queue.handoff chaos point
	// — loses only a job nobody was ever told about.
	_ = chaos.At("queue.handoff")
	s.appendOrWarn(submitRecord(j, seq))
	return j, false, nil
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// interrupted reports a cancellation-shaped error (per-job deadline or
// server shutdown) — the kind the session deliberately does not
// memoize, so a retried job re-runs.
func interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// errStalled is a reaped job's terminal error when its simulation was
// wedged beyond cancellation and had to be abandoned outright.
var errStalled = errors.New("stalled: no simulation progress within the stall timeout")

// stallGrace is how long a stall-cancelled job gets to unwind cleanly
// (surfacing the session's own cancellation error) before the worker
// abandons the simulation goroutine and reclaims the slot anyway.
const stallGrace = 250 * time.Millisecond

func (s *Server) runJob(j *Job) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	start := time.Now()
	s.mu.Lock()
	delete(s.queuedDL, j.ID)
	s.mu.Unlock()
	wait := start.Sub(j.submitted)
	s.queueWait.Observe(wait.Seconds())
	// The queue wait already happened by the time a worker sees the job,
	// so its span is emitted retroactively, parented to the submitting
	// HTTP request's span to bridge the async boundary.
	s.spans.Emit(telemetry.Span{
		Name:      "queue.wait",
		Parent:    j.parentSpan,
		RequestID: j.RequestID,
		JobID:     j.ID,
		Start:     j.submitted,
		Dur:       wait,
	})

	// Rebuild the request's correlation on the worker's context: the
	// span tracer, request id, job id and parent span flow from here
	// through the session into the simulator's phase spans, and the
	// progress sink routes live simulation progress back onto the job.
	ctx := telemetry.ContextWithSpanTracer(s.ctx, s.spans)
	ctx = telemetry.ContextWithRequestID(ctx, j.RequestID)
	ctx = telemetry.ContextWithJobID(ctx, j.ID)
	ctx = telemetry.ContextWithParentSpan(ctx, j.parentSpan)
	ctx = telemetry.ContextWithProgress(ctx, j.setProgress)
	ctx, jobSpan := telemetry.StartSpan(ctx, "job."+string(j.Kind))

	// Every job context is cancellable so the watchdog can tear the job
	// down; the per-job deadline layers on top.
	var cancel context.CancelFunc
	if j.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	j.begin(cancel)
	s.appendOrWarn(journalRecord{Type: "start", Time: time.Now(), Job: j.ID})

	// The session call runs in a child goroutine so the worker can
	// abandon a simulation the watchdog's cancellation cannot unwind
	// (wedged outside the cycle loop's cancellation checks): the worker
	// slot is reclaimed either way. The abandoned goroutine parks on
	// the buffered channel send and unwinds whenever the simulation
	// eventually returns.
	type outcome struct {
		res *sim.Result
		rep *experiments.Report
		err error
	}
	outc := make(chan outcome, 1)
	go func() {
		switch j.Kind {
		case KindRun:
			var res *sim.Result
			var err error
			if s.opts.SharedWarmup {
				jobSpan.SetAttr("warmup_shared", "true")
				res, err = s.session.RunSharedContext(ctx, j.Spec)
			} else {
				res, err = s.session.RunContext(ctx, j.Spec)
			}
			outc <- outcome{res: res, err: err}
		case KindExperiments:
			rep, err := experiments.RunIDs(ctx, s.session, j.ExpIDs,
				func(res experiments.ExperimentResult, done bool) {
					switch {
					case !done:
						j.Event("experiment-start", res.ID)
					case res.Err != nil:
						j.Event("experiment-failed", fmt.Sprintf("%s: %v", res.ID, res.Err))
					default:
						j.Event("experiment-done", fmt.Sprintf("%s (%.1fs)", res.ID, res.Elapsed.Seconds()))
					}
				})
			if err == nil && rep.Interrupted {
				err = fmt.Errorf("experiments interrupted: %w", firstNonNil(ctx.Err(), context.Canceled))
			}
			outc <- outcome{rep: rep, err: err}
		}
	}()
	var out outcome
	select {
	case out = <-outc:
	case <-j.abandonCh():
		// Watchdog verdict: the context is already cancelled. Give the
		// cancellation a grace period to unwind cleanly, then abandon
		// the goroutine outright.
		grace := time.NewTimer(stallGrace)
		select {
		case out = <-outc:
		case <-grace.C:
			out = outcome{err: errStalled}
		}
		grace.Stop()
	}
	j.finish(out.res, out.rep, out.err)

	elapsed := time.Since(start)
	s.execution.Observe(elapsed.Seconds())
	s.latency.Observe(time.Since(j.submitted).Seconds())
	st, err := j.State(), j.Err()
	s.journalFinish(j, st, err)
	switch st {
	case StateStalled:
		jobSpan.SetAttr("outcome", "stalled")
		if err != nil {
			jobSpan.SetAttr("error", err.Error())
		}
		jobSpan.End()
		s.stalledC.Inc()
		s.log.Error("job stalled; worker slot reclaimed",
			"job_id", j.ID, "kind", string(j.Kind), "request_id", j.RequestID,
			"queue_wait", wait, "duration", elapsed, "err", err)
	case StateFailed:
		jobSpan.SetAttr("outcome", "failed")
		jobSpan.SetAttr("error", err.Error())
		jobSpan.End()
		s.failed.Inc()
		s.log.Error("job failed",
			"job_id", j.ID, "kind", string(j.Kind), "request_id", j.RequestID,
			"queue_wait", wait, "duration", elapsed, "err", err)
	default:
		jobSpan.SetAttr("outcome", "done")
		jobSpan.End()
		s.completed.Inc()
		s.log.Info("job done",
			"job_id", j.ID, "kind", string(j.Kind), "request_id", j.RequestID,
			"queue_wait", wait, "duration", elapsed)
	}
	// Neither a stalled nor a cancelled/timed-out run is memoized by
	// the session, so don't pin later identical submissions to a dead
	// job.
	if j.Kind == KindRun && (st == StateStalled || (err != nil && interrupted(err))) {
		s.mu.Lock()
		if s.byKey[j.key] == j {
			delete(s.byKey, j.key)
		}
		s.mu.Unlock()
	}
}

// journalFinish decides which terminal states earn a WAL finish
// record. Shutdown-interrupted jobs deliberately get none — mirroring
// the session's refusal to memoize cancellation, replay re-enqueues
// them. A job's own blown deadline, a stall verdict, and genuine
// failures are final outcomes the next life must re-serve as-is.
func (s *Server) journalFinish(j *Job, st JobState, err error) {
	if s.journal == nil {
		return
	}
	if st == StateFailed && interrupted(err) &&
		!(errors.Is(err, context.DeadlineExceeded) && j.Timeout > 0) {
		return
	}
	rec := journalRecord{Type: "finish", Time: time.Now(), Job: j.ID, Outcome: st}
	if err != nil {
		rec.Error = err.Error()
	}
	if st == StateDone {
		if j.Kind == KindRun {
			rec.Result = j.Result()
		} else {
			rec.Report = j.reportViewOf()
		}
	}
	s.appendOrWarn(rec)
}

func firstNonNil(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- HTTP layer ----------------------------------------------------------

// runRequest is the wire form of POST /v1/runs — a JSON rendering of
// experiments.RunSpec plus a per-job timeout.
type runRequest struct {
	Workloads      []string `json:"workloads"`
	Cores          int      `json:"cores,omitempty"`
	L1D            string   `json:"l1d,omitempty"`
	L2             string   `json:"l2,omitempty"`
	LLC            string   `json:"llc,omitempty"`
	ConfigKey      string   `json:"config_key,omitempty"`
	LLCRepl        string   `json:"llc_repl,omitempty"`
	DRAMGBps       float64  `json:"dram_gbps,omitempty"`
	L1PQ           int      `json:"l1_pq,omitempty"`
	L1MSHR         int      `json:"l1_mshr,omitempty"`
	L1DWays        int      `json:"l1d_ways,omitempty"`
	L2Sets         int      `json:"l2_sets,omitempty"`
	LLCSetsPerCore int      `json:"llc_sets_per_core,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
	TimeoutMS      int64    `json:"timeout_ms,omitempty"`
}

func (r *runRequest) spec() experiments.RunSpec {
	return experiments.RunSpec{
		Workloads: r.Workloads, Cores: r.Cores,
		L1D: r.L1D, L2: r.L2, LLC: r.LLC, ConfigKey: r.ConfigKey,
		LLCRepl: r.LLCRepl, DRAMGBps: r.DRAMGBps,
		L1PQ: r.L1PQ, L1MSHR: r.L1MSHR, L1DWays: r.L1DWays,
		L2Sets: r.L2Sets, LLCSetsPerCore: r.LLCSetsPerCore,
		Seed: r.Seed,
	}
}

// validate rejects requests the simulator would only fail on later,
// so bad input costs a 400 instead of a queued failing job.
func (r *runRequest) validate() error {
	if len(r.Workloads) == 0 {
		return errors.New("workloads must be non-empty")
	}
	for _, w := range r.Workloads {
		if _, err := workload.Named(w); err != nil {
			return err
		}
	}
	if r.Cores != 0 && r.Cores != len(r.Workloads) {
		return fmt.Errorf("cores (%d) must be 0 or match the workload count (%d)", r.Cores, len(r.Workloads))
	}
	for _, p := range []string{r.L1D, r.L2, r.LLC} {
		if _, err := prefetch.New(p, memsys.LevelL1D); err != nil {
			return err
		}
	}
	if r.TimeoutMS < 0 {
		return errors.New("timeout_ms must be >= 0")
	}
	return nil
}

// experimentsRequest is the wire form of POST /v1/experiments.
type experimentsRequest struct {
	IDs       []string `json:"ids"` // experiment ids, or ["all"]
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// submitView is the JSON shape of a successful submission.
type submitView struct {
	ID        string   `json:"id"`
	Status    JobState `json:"status"`
	Location  string   `json:"location"`
	Coalesced bool     `json:"coalesced,omitempty"`
}

// Handler returns the daemon's HTTP handler, wrapped in the
// observability middleware (request ids, spans, access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/runs/{id}/progress", s.handleJobProgress)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /v1/experiments", s.handleSubmitExperiments)
	mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	mux.HandleFunc("GET /v1/buildinfo", s.handleBuildinfo)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	return s.instrument(mux)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeAdmissionError maps admission refusals onto 429 + Retry-After.
func writeAdmissionError(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", retryAfter())
	writeError(w, http.StatusTooManyRequests, err)
}

// retryAfterBase is the midpoint of the jittered Retry-After hint.
const retryAfterBase = 2 * time.Second

// retryRNG is the jitter source behind retryAfter. It is a locked
// *local* source, not the shared global math/rand state: request
// handlers must not contend on (or perturb) whatever else in the
// process uses the global generator, and tests must be able to seed
// the jitter deterministically without racing other rand users.
var retryRNG = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(time.Now().UnixNano()))}

// seedRetryJitter reseeds the jitter source; tests use it to make the
// probabilistic rounding in retryAfter reproducible.
func seedRetryJitter(seed int64) {
	retryRNG.Lock()
	retryRNG.Rand = rand.New(rand.NewSource(seed))
	retryRNG.Unlock()
}

// retryAfter renders base ± 25% jitter as whole seconds, so a burst of
// rejected clients does not re-arrive as one synchronized burst. The
// sub-second remainder rounds probabilistically — integer granularity
// would otherwise collapse the jitter back onto a single value. Both
// draws come from one locked acquisition so a seeded sequence is
// deterministic even under concurrent handlers.
func retryAfter() string {
	retryRNG.Lock()
	scale, round := retryRNG.Float64(), retryRNG.Float64()
	retryRNG.Unlock()
	secs := retryAfterBase.Seconds() * (0.75 + 0.5*scale)
	n := int(secs)
	if round < secs-float64(n) {
		n++
	}
	if n < 1 {
		n = 1
	}
	return strconv.Itoa(n)
}

// timeout clamps a request's timeout_ms to the server's JobTimeout cap.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if s.opts.JobTimeout > 0 && (d == 0 || d > s.opts.JobTimeout) {
		d = s.opts.JobTimeout
	}
	return d
}

// maxRequestBody bounds every JSON request body. Decoding used to run
// behind a silent io.LimitReader truncation, which surfaced a multi-MB
// body as a confusing 400 "unexpected EOF" (and, before the limit, as
// an unbounded allocation); MaxBytesReader both caps the read and lets
// the handler answer an honest 413.
const maxRequestBody = 1 << 20

// decodeRequest decodes a bounded JSON body into v. The returned
// status is 413 when the body blew the cap, 400 for malformed JSON,
// 200 on success.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	return http.StatusOK, nil
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if code, err := decodeRequest(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := newJob(KindRun)
	j.Spec = req.spec()
	j.Req = &req
	j.Timeout = s.timeout(req.TimeoutMS)
	j.key = j.Spec.Key()
	j.RequestID = telemetry.RequestIDFrom(r.Context())
	j.parentSpan = httpSpan(r.Context()).ID()

	admitted, coalesced, err := s.submit(j)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	httpSpan(r.Context()).SetJobID(admitted.ID)
	code := http.StatusAccepted
	if coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, submitView{
		ID:        admitted.ID,
		Status:    admitted.State(),
		Location:  "/v1/runs/" + admitted.ID,
		Coalesced: coalesced,
	})
}

func (s *Server) handleSubmitExperiments(w http.ResponseWriter, r *http.Request) {
	var req experimentsRequest
	if code, err := decodeRequest(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	ids := req.IDs
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range ids {
			if _, err := experiments.ByID(id); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
	}
	j := newJob(KindExperiments)
	j.ExpIDs = ids
	j.Timeout = s.timeout(req.TimeoutMS)
	j.RequestID = telemetry.RequestIDFrom(r.Context())
	j.parentSpan = httpSpan(r.Context()).ID()

	admitted, _, err := s.submit(j)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	httpSpan(r.Context()).SetJobID(admitted.ID)
	writeJSON(w, http.StatusAccepted, submitView{
		ID:       admitted.ID,
		Status:   admitted.State(),
		Location: "/v1/runs/" + admitted.ID,
	})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// progressLine is the JSONL rendering of a live progress report, both
// folded into the events follow-stream (kind "progress") and returned
// by GET /v1/runs/{id}/progress.
type progressLine struct {
	Kind    string    `json:"kind"`
	Time    time.Time `json:"time"`
	Phase   string    `json:"phase"`
	Retired uint64    `json:"retired"`
	Target  uint64    `json:"target"`
	Percent float64   `json:"percent"`
	Cycle   int64     `json:"cycle"`
}

func newProgressLine(p telemetry.Progress, at time.Time) progressLine {
	l := progressLine{
		Kind: "progress", Time: at,
		Phase: p.Phase, Retired: p.Retired, Target: p.Target, Cycle: p.Cycle,
	}
	if p.Target > 0 {
		l.Percent = 100 * float64(p.Retired) / float64(p.Target)
		if l.Percent > 100 {
			l.Percent = 100
		}
	}
	return l
}

// progressTick is how often the events follow-stream samples the job's
// live simulation progress between lifecycle events.
const progressTick = 250 * time.Millisecond

// handleJobEvents streams a job's lifecycle events as JSONL, following
// until the job reaches a terminal state or the client goes away. While
// the job runs, live simulation progress is folded into the stream as
// lines with kind "progress", sampled on a ticker rather than per
// report.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(progressTick)
	defer ticker.Stop()
	next := 0
	var lastProgress time.Time
	for {
		events, changed, terminal := j.eventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(events)
		if fl != nil && len(events) > 0 {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-ticker.C:
			if p, at, ok := j.Progress(); ok && at.After(lastProgress) {
				lastProgress = at
				if err := enc.Encode(newProgressLine(p, at)); err != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// handleJobProgress returns the job's latest simulation progress report
// (zero-valued until the simulator's first report arrives).
func (s *Server) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	p, at, _ := j.Progress()
	line := newProgressLine(p, at)
	writeJSON(w, http.StatusOK, struct {
		ID     string   `json:"id"`
		Status JobState `json:"status"`
		progressLine
	}{ID: j.ID, Status: j.State(), progressLine: line})
}

// handleJobTrace exports the job's spans (HTTP submit, queue wait,
// session, checkpoint and simulation phases) as Chrome trace_event
// JSON — loadable in chrome://tracing or Perfetto.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.spans.WriteChromeTrace(w, j.ID); err != nil {
		s.log.Debug("trace export aborted", "job_id", j.ID, "err", err)
	}
}

// handleDebugTrace exports the daemon-wide span ring as Chrome
// trace_event JSON, one lane per job plus a daemon lane.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.spans.WriteChromeTrace(w, ""); err != nil {
		s.log.Debug("trace export aborted", "err", err)
	}
}

// experimentView is one row of GET /v1/experiments.
type experimentView struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Paper string `json:"paper,omitempty"`
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	out := make([]experimentView, 0)
	for _, e := range experiments.All() {
		out = append(out, experimentView{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// MetricsSnapshot is the JSON shape of GET /metrics.
type MetricsSnapshot struct {
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	InFlight      int64 `json:"in_flight"`
	Draining      bool  `json:"draining"`

	Jobs struct {
		Admitted  uint64 `json:"admitted"`
		Rejected  uint64 `json:"rejected"`
		Shed      uint64 `json:"shed"`
		Coalesced uint64 `json:"coalesced"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		Stalled   uint64 `json:"stalled"`
	} `json:"jobs"`

	// Session counters: how run requests were satisfied underneath the
	// job layer (memo, disk checkpoint, single-flight coalescing), plus
	// the checkpoint store's durability counters.
	Session struct {
		Executed      int `json:"executed"`
		MemoHits      int `json:"memo_hits"`
		DiskHits      int `json:"disk_hits"`
		Coalesced     int `json:"coalesced"`
		Faults        int `json:"faults"`
		StoreFailures int `json:"store_failures"`
		Quarantined   int `json:"quarantined"`

		// Shared-warmup dispositions (all zero unless the daemon runs
		// with -shared-warmup): how warmup snapshots were satisfied,
		// bytes spilled to disk, warmups coalesced onto an in-flight
		// leader, and measure phases forked from a snapshot.
		SnapshotMemHits  int   `json:"snapshot_mem_hits"`
		SnapshotDiskHits int   `json:"snapshot_disk_hits"`
		SnapshotMisses   int   `json:"snapshot_misses"`
		SnapshotBytes    int64 `json:"snapshot_bytes"`
		WarmupsCoalesced int   `json:"warmups_coalesced"`
		ForkedRuns       int   `json:"forked_runs"`

		// Remote blob traffic (all zero unless the daemon runs as a
		// -worker attached to a coordinator blob store): local misses
		// satisfied by the shared store and local writes pushed to it.
		RemoteBlobHits int `json:"remote_blob_hits"`
		RemoteBlobPuts int `json:"remote_blob_puts"`
	} `json:"session"`

	// Journal counters: the WAL's health this process life. AppendErrors
	// rising means accepted jobs are not crash-durable right now.
	Journal struct {
		Enabled       bool   `json:"enabled"`
		ReplayedJobs  uint64 `json:"replayed_jobs"`
		Appended      uint64 `json:"appended"`
		AppendErrors  uint64 `json:"append_errors"`
		DamagedFrames uint64 `json:"damaged_frames"`
	} `json:"journal"`

	// QueueWait is admission → worker pickup, Execution is pickup →
	// finish, and JobLatency is the end-to-end sum of the two — all in
	// seconds, observed when the respective boundary is crossed. The
	// split tells queue backpressure apart from slow simulations.
	QueueWait  telemetry.HistogramSnapshot `json:"queue_wait_s"`
	Execution  telemetry.HistogramSnapshot `json:"execution_s"`
	JobLatency telemetry.HistogramSnapshot `json:"job_latency_s"`
}

// Metrics assembles a point-in-time snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	var m MetricsSnapshot
	m.QueueDepth = len(s.queue)
	m.QueueCapacity = cap(s.queue)
	m.InFlight = s.inFlight.Value()
	m.Draining = s.Draining()
	m.Jobs.Admitted = s.admitted.Value()
	m.Jobs.Rejected = s.rejected.Value()
	m.Jobs.Shed = s.shed.Value()
	m.Jobs.Coalesced = s.coalesced.Value()
	m.Jobs.Completed = s.completed.Value()
	m.Jobs.Failed = s.failed.Value()
	m.Jobs.Stalled = s.stalledC.Value()
	st := s.session.Stats()
	m.Session.Executed = st.Executed
	m.Session.MemoHits = st.MemoHits
	m.Session.DiskHits = st.DiskHits
	m.Session.Coalesced = st.Coalesced
	m.Session.Faults = st.Faults
	m.Session.StoreFailures = st.StoreFailures
	m.Session.Quarantined = st.Quarantined
	m.Session.SnapshotMemHits = st.SnapshotMemHits
	m.Session.SnapshotDiskHits = st.SnapshotDiskHits
	m.Session.SnapshotMisses = st.SnapshotMisses
	m.Session.SnapshotBytes = st.SnapshotBytes
	m.Session.WarmupsCoalesced = st.WarmupsCoalesced
	m.Session.ForkedRuns = st.ForkedRuns
	m.Session.RemoteBlobHits = st.RemoteBlobHits
	m.Session.RemoteBlobPuts = st.RemoteBlobPuts
	if s.journal != nil {
		m.Journal.Enabled = true
		m.Journal.ReplayedJobs = s.journal.replayed.Load()
		m.Journal.Appended = s.journal.appended.Load()
		m.Journal.AppendErrors = s.journal.appendErrs.Load()
		m.Journal.DamagedFrames = s.journal.damaged.Load()
	}
	m.QueueWait = s.queueWait.Snapshot()
	m.Execution = s.execution.Snapshot()
	m.JobLatency = s.latency.Snapshot()
	return m
}

// handleMetrics negotiates the representation: scrapers asking for the
// text exposition formats get Prometheus 0.0.4 text; everything else
// (curl, the CLI, existing tooling) keeps the JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", telemetry.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		s.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}
