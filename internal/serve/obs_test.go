package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the slog handler and the test read/write log output
// from different goroutines without a race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newObsServer is newTestServer with a captured JSON debug-level log.
func newObsServer(t *testing.T, opts Options) (*testServer, *syncBuffer) {
	t.Helper()
	logBuf := &syncBuffer{}
	opts.Log = slog.New(slog.NewJSONHandler(logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	return newTestServer(t, opts), logBuf
}

// TestRequestIDCorrelationEndToEnd is the acceptance-criteria walk: one
// POST with X-Request-ID: demo must surface that id on the response
// header, the job record, every related structured log line, and every
// span from the HTTP handler down to the simulator's phase spans.
func TestRequestIDCorrelationEndToEnd(t *testing.T) {
	s, logBuf := newObsServer(t, Options{})

	body, _ := json.Marshal(runRequest{Workloads: []string{"mcf-994"}, L1D: "ipcp", L2: "ipcp"})
	req, err := http.NewRequest(http.MethodPost, s.ts.URL+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "demo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "demo" {
		t.Errorf("response X-Request-ID = %q, want demo", got)
	}
	var v submitView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}

	job := s.await(t, v.ID, 10*time.Second)
	if job.Status != StateDone {
		t.Fatalf("job = %+v", job)
	}
	if job.RequestID != "demo" {
		t.Errorf("job view request_id = %q, want demo", job.RequestID)
	}
	if job.Revision == "" {
		t.Errorf("job view carries no revision")
	}

	// Spans: the whole hop chain must exist for this job, each hop
	// stamped with the request id.
	want := map[string]bool{
		"queue.wait": false, "job.run": false, "session.run": false,
		"session.admission": false, "sim.warmup": false, "sim.measure": false,
	}
	sawHTTP := false
	for _, sp := range s.Spans().Snapshot() {
		if strings.HasPrefix(sp.Name, "http POST /v1/runs") && sp.RequestID == "demo" {
			sawHTTP = true
		}
		if sp.JobID != v.ID {
			continue
		}
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
			if sp.RequestID != "demo" {
				t.Errorf("span %s request id = %q, want demo", sp.Name, sp.RequestID)
			}
		}
	}
	if !sawHTTP {
		t.Errorf("no http submit span with request id demo")
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %s span for job %s", name, v.ID)
		}
	}

	// The per-job Chrome trace export carries the id too.
	traceResp, traceBody := s.get(t, "/v1/runs/"+v.ID+"/trace")
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace = %d", traceResp.StatusCode)
	}
	var chromeTrace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Args struct {
				RequestID string `json:"request_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &chromeTrace); err != nil {
		t.Fatalf("trace is not chrome trace JSON: %v", err)
	}
	foundPhase := false
	for _, ev := range chromeTrace.TraceEvents {
		if ev.Name == "sim.measure" && ev.Args.RequestID == "demo" {
			foundPhase = true
		}
	}
	if !foundPhase {
		t.Errorf("chrome trace lacks a sim.measure event with request_id demo: %s", traceBody)
	}

	// Logs: every line mentioning this job carries request_id=demo, and
	// the admitted/done lifecycle lines exist.
	sawAdmitted, sawDone := false, false
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if line["job_id"] != v.ID {
			continue
		}
		if line["request_id"] != "demo" {
			t.Errorf("log line %q lacks request_id=demo", sc.Text())
		}
		switch line["msg"] {
		case "job admitted":
			sawAdmitted = true
		case "job done":
			sawDone = true
		}
	}
	if !sawAdmitted || !sawDone {
		t.Errorf("lifecycle log lines missing: admitted=%v done=%v\n%s", sawAdmitted, sawDone, logBuf.String())
	}
}

// TestRequestIDMinted checks a header-less request still gets a
// correlation id echoed back.
func TestRequestIDMinted(t *testing.T) {
	s := newTestServer(t, Options{})
	resp, _ := s.get(t, "/healthz")
	if rid := resp.Header.Get("X-Request-ID"); len(rid) < 8 {
		t.Errorf("minted request id = %q", rid)
	}
}

// promLine matches one Prometheus text-format sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// validateExposition checks every sample line parses and is preceded by
// HELP/TYPE headers for its family.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suffix)
		}
		if !typed[family] && !typed[name] {
			t.Errorf("sample %q has no TYPE header", line)
		}
	}
}

// TestMetricsPrometheusExposition runs a job, scrapes /metrics with a
// Prometheus-shaped Accept header and checks the exposition parses,
// keeps queue-wait and execution as distinct histograms, and counts the
// completed job.
func TestMetricsPrometheusExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	v := s.submitRun(t, runRequest{Workloads: []string{"bwaves-98"}, L1D: "ipcp"}, http.StatusAccepted)
	s.await(t, v.ID, 10*time.Second)

	req, _ := http.NewRequest(http.MethodGet, s.ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()

	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	validateExposition(t, text)

	for _, needle := range []string{
		"ipcpd_jobs_total{outcome=\"completed\"} 1",
		"ipcpd_job_queue_wait_seconds_count 1",
		"ipcpd_job_execution_seconds_count 1",
		"ipcpd_job_duration_seconds_count 1",
		"ipcpd_job_queue_wait_seconds_bucket{le=\"+Inf\"} 1",
		"ipcpd_job_execution_seconds_bucket{le=\"+Inf\"} 1",
		"ipcpd_build_info{",
		"ipcpd_session_runs_total{disposition=\"executed\"} 1",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("exposition lacks %q:\n%s", needle, text)
		}
	}

	// The default representation stays JSON and now splits the latency.
	_, jsonBody := s.get(t, "/metrics")
	var m MetricsSnapshot
	if err := json.Unmarshal(jsonBody, &m); err != nil {
		t.Fatalf("JSON /metrics broke: %v", err)
	}
	if m.QueueWait.Count != 1 || m.Execution.Count != 1 || m.JobLatency.Count != 1 {
		t.Errorf("histogram counts = %d/%d/%d, want 1/1/1",
			m.QueueWait.Count, m.Execution.Count, m.JobLatency.Count)
	}
	if m.JobLatency.Sum < m.Execution.Sum {
		t.Errorf("end-to-end latency %.6fs < execution %.6fs", m.JobLatency.Sum, m.Execution.Sum)
	}
}

// TestWantsPrometheus pins the content negotiation.
func TestWantsPrometheus(t *testing.T) {
	for accept, want := range map[string]bool{
		"":                          false,
		"application/json":          false,
		"text/plain":                true,
		"text/plain; version=0.0.4": true,
		"application/openmetrics-text; version=1.0.0": true,
		"text/*":                          true,
		"text/html,application/xhtml+xml": false,
	} {
		if got := wantsPrometheus(accept); got != want {
			t.Errorf("wantsPrometheus(%q) = %v, want %v", accept, got, want)
		}
	}
}

// TestConcurrentMetricsScrape hammers /metrics (both representations)
// and /debug/trace while jobs run — the -race guard for the scrape
// paths reading live counters, histograms and the span ring.
func TestConcurrentMetricsScrape(t *testing.T) {
	s := newTestServer(t, Options{QueueSize: 16, Workers: 2})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet, s.ts.URL+"/metrics", nil)
				if i%2 == 0 {
					req.Header.Set("Accept", "text/plain")
				}
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
				if resp, err := http.Get(s.ts.URL + "/debug/trace"); err == nil {
					resp.Body.Close()
				}
			}
		}(i)
	}
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		v := s.submitRun(t, runRequest{Workloads: []string{"mcf-994"}, Seed: int64(i + 1)}, http.StatusAccepted)
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		s.await(t, id, 20*time.Second)
	}
	close(done)
	wg.Wait()
}

// TestProgressEndpoint checks the live-progress surface: after a run
// completes, its last report shows a finished measure phase, and the
// events stream replayed a progress line shape when any were sampled.
func TestProgressEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	v := s.submitRun(t, runRequest{Workloads: []string{"gcc-56"}, L1D: "ipcp", L2: "ipcp"}, http.StatusAccepted)
	s.await(t, v.ID, 10*time.Second)

	resp, body := s.get(t, "/v1/runs/"+v.ID+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress = %d (%s)", resp.StatusCode, body)
	}
	var p struct {
		ID      string   `json:"id"`
		Status  JobState `json:"status"`
		Phase   string   `json:"phase"`
		Retired uint64   `json:"retired"`
		Target  uint64   `json:"target"`
		Percent float64  `json:"percent"`
	}
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.ID != v.ID || p.Status != StateDone {
		t.Fatalf("progress view = %+v", p)
	}
	if p.Phase != "measure" || p.Target != tiny.Measure || p.Retired < p.Target {
		t.Errorf("final progress = %+v, want completed measure phase (target %d)", p, tiny.Measure)
	}
	if p.Percent != 100 {
		t.Errorf("percent = %v, want 100", p.Percent)
	}

	_, notFound := s.get(t, "/v1/runs/nope/progress")
	if !bytes.Contains(notFound, []byte("unknown job")) {
		t.Errorf("missing-job progress body = %s", notFound)
	}
}

// TestBuildinfoEndpoint checks /v1/buildinfo always answers with a
// toolchain version, even in test binaries without VCS stamps.
func TestBuildinfoEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	resp, body := s.get(t, "/v1/buildinfo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buildinfo = %d", resp.StatusCode)
	}
	var bi BuildInfo
	if err := json.Unmarshal(body, &bi); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("go version = %q", bi.GoVersion)
	}
	if bi.Revision == "" || bi.Version == "" {
		t.Errorf("build info = %+v, want non-empty fallbacks", bi)
	}
}

// TestDebugTraceDaemonWide checks /debug/trace includes spans from
// multiple jobs plus daemon-lane metadata.
func TestDebugTraceDaemonWide(t *testing.T) {
	s := newTestServer(t, Options{})
	a := s.submitRun(t, runRequest{Workloads: []string{"mcf-994"}, Seed: 101}, http.StatusAccepted)
	b := s.submitRun(t, runRequest{Workloads: []string{"mcf-994"}, Seed: 102}, http.StatusAccepted)
	s.await(t, a.ID, 10*time.Second)
	s.await(t, b.ID, 10*time.Second)

	resp, body := s.get(t, "/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug trace = %d", resp.StatusCode)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				JobID string `json:"job_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("debug trace is not chrome trace JSON: %v", err)
	}
	jobs := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.Args.JobID != "" {
			jobs[ev.Args.JobID] = true
		}
	}
	if !jobs[a.ID] || !jobs[b.ID] {
		t.Errorf("daemon-wide trace covers jobs %v, want both %s and %s", jobs, a.ID, b.ID)
	}
}
