package core

import "ipcp/internal/memsys"

// rrFilter is the paper's 32-entry recent-request filter: it keeps
// 12-bit partial tags of recently seen demand blocks and recently
// generated prefetch addresses, so IPCP never probes the
// bandwidth-starved L1-D before issuing — a hit in the filter drops
// the candidate instead (§V, "L1-D bandwidth and Recent Request
// Filter").
type rrFilter struct {
	// tags is a fixed array: the probe loop runs on every candidate the
	// L1 IPCP generates, and the embedded array spares it a pointer
	// indirection and slice bounds checks.
	tags [rrEntries]uint16
	pos  int

	// probes/hits are observation counters for telemetry snapshots;
	// they never influence filtering decisions.
	probes uint64
	hits   uint64
}

const (
	rrEntries = 32
	rrTagBits = 12
)

func newRRFilter() *rrFilter {
	f := &rrFilter{}
	for i := range f.tags {
		f.tags[i] = 0xffff // invalid
	}
	return f
}

func rrTag(addr memsys.Addr) uint16 {
	b := memsys.BlockNumber(addr)
	return uint16((b ^ b>>rrTagBits) & (1<<rrTagBits - 1))
}

// hit reports whether addr's partial tag is present.
func (f *rrFilter) hit(addr memsys.Addr) bool {
	f.probes++
	t := rrTag(addr)
	for _, x := range &f.tags {
		if x == t {
			f.hits++
			return true
		}
	}
	return false
}

// stats returns the cumulative probe and hit counts.
func (f *rrFilter) stats() (probes, hits uint64) { return f.probes, f.hits }

// resetStats zeroes the observation counters (warmup boundary); the
// filter contents are architectural state and stay intact.
func (f *rrFilter) resetStats() { f.probes, f.hits = 0, 0 }

// insert records addr, replacing the oldest entry (FIFO).
func (f *rrFilter) insert(addr memsys.Addr) {
	f.tags[f.pos] = rrTag(addr)
	f.pos = (f.pos + 1) % rrEntries
}
