package core

import (
	"testing"

	"ipcp/internal/memsys"
)

// --- page-boundary clamp, low end ---------------------------------------

// TestCSNegativeStrideClampsAtPageBase trains CS on a descending stride
// and triggers just above a page base: every candidate below the page
// must be clamped (never issued), including the addr==0 underflow case
// where block+offset goes negative.
func TestCSNegativeStrideClampsAtPageBase(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x401000
	base := uint64(0x90_0000) + 40*memsys.BlockSize
	const stride = 3 // descending: -3 blocks per access
	for i := uint64(0); i < 8; i++ {
		demand(p, rec, int64(i), ip, base-i*stride*memsys.BlockSize, false)
	}
	rec.reset()
	before := p.PageClamped[memsys.ClassCS]
	// Trigger one block above the next page's base: -3, -6, ... all
	// land below it.
	trigger := uint64(0x91_0000) + 1*memsys.BlockSize
	demand(p, rec, 20, ip, trigger, false)
	for _, c := range rec.cands {
		if memsys.PageNumber(c.Addr) != memsys.PageNumber(memsys.Addr(trigger)) {
			t.Errorf("candidate %#x left the trigger page %#x", c.Addr, trigger)
		}
		if c.Addr < memsys.Addr(trigger)&^uint64(memsys.PageSize-1) {
			t.Errorf("candidate %#x below the page base", c.Addr)
		}
	}
	if p.PageClamped[memsys.ClassCS] == before {
		t.Error("descending candidates below the page base were not counted as clamped")
	}
}

// TestGSBackwardClampsAtPageBase drives a descending GS stream into the
// first blocks of a region: the deep GS run must stop at the page base
// instead of wrapping below it.
func TestGSBackwardClampsAtPageBase(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x402000
	region := uint64(0xA0_0000)
	now := int64(1)
	for l := 31; l >= 0; l-- {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	rec.reset()
	// Enter the previous region right at its second block: a full
	// descending GS run would shoot past the base.
	next := region - 4096 + 1*memsys.BlockSize
	demand(p, rec, now, ip, next, false)
	pageBase := memsys.Addr(next) &^ uint64(memsys.PageSize-1)
	for _, c := range rec.byClass(memsys.ClassGS) {
		if c.Addr < pageBase || memsys.PageNumber(c.Addr) != memsys.PageNumber(memsys.Addr(next)) {
			t.Errorf("descending GS candidate %#x escaped page [%#x, ...)", c.Addr, pageBase)
		}
	}
}

// --- signature advance at the stride extremes ----------------------------

// TestAdvanceSigInt8Extremes pins the signature fold at the edges of
// the clamped stride range [-64, 63]: the int8→uint8 conversion must be
// the two's-complement byte, masked to SignatureBits.
func TestAdvanceSigInt8Extremes(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config()) // SignatureBits = 7, mask 0x7f
	cases := []struct {
		sig    uint16
		stride int8
		want   uint16
	}{
		{0, 63, 0x3f},         // max positive stride
		{0, -64, 0xc0 & 0x7f}, // min negative stride: byte 0xc0
		{0, -1, 0xff & 0x7f},  // all-ones byte folds into the mask
		{0x7f, 63, (0xfe ^ 0x3f) & 0x7f},
		{0x40, -64, ((0x40 << 1) ^ 0xc0) & 0x7f},
	}
	for _, c := range cases {
		if got := p.advanceSig(c.sig, c.stride); got != c.want {
			t.Errorf("advanceSig(%#x, %d) = %#x, want %#x", c.sig, c.stride, got, c.want)
		}
	}
	// Property: the result stays within the signature mask for every
	// possible int8 stride, including values outside the clamp range
	// that a bug might let through.
	for s := -128; s <= 127; s++ {
		for _, sig := range []uint16{0, 1, 0x7f, 0xff, 0xffff} {
			if got := p.advanceSig(sig, int8(s)); got > p.sigMask() {
				t.Fatalf("advanceSig(%#x, %d) = %#x exceeds mask %#x", sig, s, got, p.sigMask())
			}
		}
	}
}

// TestStrideOutsideClampDoesNotTrain checks the stride gate: a jump
// beyond [-64, 63] blocks (possible across distant pages) is treated as
// stride 0 — no CS/CPLX training on a garbage truncated stride.
func TestStrideOutsideClampDoesNotTrain(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x403000
	addr := uint64(0xB0_0000)
	// Alternate between two far-apart addresses: every stride is ±4096
	// blocks, far outside int8.
	for i := 0; i < 16; i++ {
		demand(p, rec, int64(i), ip, addr, false)
		if i%2 == 0 {
			addr += 4096 * memsys.BlockSize
		} else {
			addr -= 4096 * memsys.BlockSize
		}
	}
	if cs := rec.byClass(memsys.ClassCS); len(cs) != 0 {
		t.Errorf("CS trained on out-of-clamp strides: %d candidates", len(cs))
	}
	if cplx := rec.byClass(memsys.ClassCPLX); len(cplx) != 0 {
		t.Errorf("CPLX trained on out-of-clamp strides: %d candidates", len(cplx))
	}
}

// --- CSPT / SignatureBits reconciliation ---------------------------------

// TestCSPTSizeFollowsSignatureBits locks in the construction-time
// reconciliation: the CSPT is indexed by the SignatureBits-wide
// signature, so its size is forced to 1<<SignatureBits no matter what
// the configuration claims (the abl-sig ablation varies SignatureBits
// without touching CSPTEntries).
func TestCSPTSizeFollowsSignatureBits(t *testing.T) {
	cases := []struct {
		bits, entries, wantLen int
		wantBits               int
	}{
		{7, 128, 128, 7},       // paper default, already consistent
		{9, 128, 512, 9},       // abl-sig: wider signature, stale entry count
		{5, 128, 32, 5},        // narrower signature, oversized table
		{0, 128, 2, 1},         // degenerate bits clamp to 1
		{20, 128, 1 << 16, 16}, // over-wide bits clamp to 16
	}
	for _, c := range cases {
		cfg := DefaultL1Config()
		cfg.SignatureBits = c.bits
		cfg.CSPTEntries = c.entries
		p := NewL1IPCP(cfg)
		if len(p.cspt) != c.wantLen {
			t.Errorf("SignatureBits=%d CSPTEntries=%d: CSPT has %d entries, want %d",
				c.bits, c.entries, len(p.cspt), c.wantLen)
		}
		if p.cfg.SignatureBits != c.wantBits {
			t.Errorf("SignatureBits=%d: reconciled to %d, want %d", c.bits, p.cfg.SignatureBits, c.wantBits)
		}
		if p.cfg.CSPTEntries != len(p.cspt) {
			t.Errorf("config CSPTEntries %d does not match table size %d", p.cfg.CSPTEntries, len(p.cspt))
		}
		// Every reachable signature must index in bounds.
		if int(p.sigMask())+1 != len(p.cspt) {
			t.Errorf("sigMask %#x inconsistent with CSPT size %d", p.sigMask(), len(p.cspt))
		}
	}
}

// TestWideSignatureNoAliasing reproduces the bug the reconciliation
// fixes: with SignatureBits=9 the old code indexed a 128-entry CSPT
// with sig%128, aliasing signatures 0x080 and 0x000. After the fix the
// two signatures train distinct entries.
func TestWideSignatureNoAliasing(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.SignatureBits = 9
	p := NewL1IPCP(cfg)
	a, b := uint16(0x080), uint16(0x000)
	if a&p.sigMask() == b&p.sigMask() {
		t.Fatalf("signatures %#x and %#x alias under mask %#x", a, b, p.sigMask())
	}
	p.cspt[a&p.sigMask()].stride = 7
	if got := p.cspt[b&p.sigMask()].stride; got != 0 {
		t.Fatalf("training signature %#x leaked into %#x (stride %d)", a, b, got)
	}
}
