package core

import (
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

func TestIPIndexSpreadsRegularSpacing(t *testing.T) {
	// Compiler-emitted load IPs are often spaced at a fixed power of
	// two; the hashed index must still use most of the table.
	p := NewL1IPCP(DefaultL1Config())
	for _, spacing := range []uint64{4, 8, 16} {
		seen := map[uint64]bool{}
		for i := uint64(0); i < 64; i++ {
			seen[p.ipIndex(0x400000+i*spacing)] = true
		}
		if len(seen) < 48 {
			t.Errorf("spacing %d: only %d/64 distinct indices", spacing, len(seen))
		}
	}
}

func TestGSLowAccuracyFallsThroughToCS(t *testing.T) {
	// When GS accuracy sits below the low watermark, the bouquet also
	// explores CS for the same access (§V coordinated throttling).
	cfg := DefaultL1Config()
	cfg.ThrottleWindow = 8
	cfg.UseRRFilter = false // observe raw candidates
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	// Report a window of useless GS fills: accuracy 0 < 0.40.
	for i := 0; i < 8; i++ {
		p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassGS})
	}
	if p.ClassAccuracy(memsys.ClassGS) != 0 {
		t.Fatal("setup failed")
	}
	// Two stride-2 IPs interleave to make the region dense, so each is
	// both GS (dense region) and CS (stride 2). CS's lattice reaches
	// past GS's throttled next-k window, so the fall-through candidate
	// is observable despite the RR filter.
	ipA, ipB := uint64(0x420000), uint64(0x420040)
	region := uint64(0x2_0000_0000)
	now := int64(1)
	for l := 0; l < 32; l += 2 {
		demand(p, rec, now, ipA, region+uint64(l)*memsys.BlockSize, false)
		demand(p, rec, now+1, ipB, region+uint64(l+1)*memsys.BlockSize, false)
		now += 2
	}
	rec.reset()
	demand(p, rec, now, ipA, region+2048, false)
	if len(rec.byClass(memsys.ClassGS)) == 0 {
		t.Fatal("GS did not fire")
	}
	if len(rec.byClass(memsys.ClassCS)) == 0 {
		t.Error("low-accuracy GS did not fall through to CS")
	}
}

func TestRSTEvictsLRU(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x421000
	base := uint64(0x2_1000_0000)
	// Touch 9 distinct regions; the RST holds 8 — the first must be
	// evicted.
	for r := 0; r < 9; r++ {
		demand(p, rec, int64(r), ip, base+uint64(r)*2048, false)
	}
	first, _ := p.regionOf(memsys.Addr(base))
	if p.findRST(first) != nil {
		t.Error("LRU region survived 9 allocations in an 8-entry RST")
	}
	last, _ := p.regionOf(memsys.Addr(base + 8*2048))
	if p.findRST(last) == nil {
		t.Error("most recent region missing from RST")
	}
}

func TestDebugEntriesExposesState(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x422000
	for i := uint64(0); i < 5; i++ {
		demand(p, rec, int64(i), ip, 0x2_2000_0000+i*2*memsys.BlockSize, false)
	}
	found := false
	p.DebugEntries(func(idx int, tag uint64, stride int8, conf uint8, stream bool, sig uint16) {
		if stride == 2 && conf >= 2 {
			found = true
		}
	})
	if !found {
		t.Error("trained entry not visible via DebugEntries")
	}
}

func TestL2TableConflictReplaces(t *testing.T) {
	p := NewL2IPCP(DefaultL2Config())
	rec := &recorder{}
	n := uint64(64)
	ipA := uint64(0x430000)
	ipB := ipA + n*4*8 // same index, different tag
	metaA := memsys.Metadata{Class: memsys.ClassCS, Stride: 2}.Encode()
	metaB := memsys.Metadata{Class: memsys.ClassGS, Stride: 1}.Encode()
	p.Operate(0, &prefetch.Access{Addr: 0x3_0000_0000, IP: ipA, Type: memsys.Prefetch, Meta: metaA}, rec)
	p.Operate(1, &prefetch.Access{Addr: 0x3_0001_0000, IP: ipB, Type: memsys.Prefetch, Meta: metaB}, rec)
	rec.reset()
	// A demand from B must see B's class (GS), not A's.
	p.Operate(2, &prefetch.Access{Addr: 0x3_0002_0000, IP: ipB, Type: memsys.Load}, rec)
	if len(rec.byClass(memsys.ClassGS)) == 0 {
		t.Error("L2 entry not replaced on metadata conflict")
	}
}

func TestThrottleWindowResets(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.ThrottleWindow = 4
	p := NewL1IPCP(cfg)
	// 3 fills: no measurement yet.
	for i := 0; i < 3; i++ {
		p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassCS})
	}
	if p.classes[memsys.ClassCS].measured {
		t.Fatal("measured before the window filled")
	}
	p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassCS})
	st := p.classes[memsys.ClassCS]
	if !st.measured {
		t.Fatal("window did not trigger measurement")
	}
	if st.fills != 0 || st.useful != 0 {
		t.Error("window counters not reset")
	}
}

func TestNonIPCPFillsIgnored(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	// Demand fills and class-less prefetch fills must not disturb the
	// throttle windows.
	p.Fill(0, &prefetch.FillEvent{Prefetch: false, Class: memsys.ClassCS})
	p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassNone})
	for cls := 0; cls < memsys.NumClasses; cls++ {
		if p.classes[cls].fills != 0 {
			t.Errorf("class %d window counted a foreign fill", cls)
		}
	}
}

func TestIPCPIgnoresCodeReads(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	p.Operate(0, &prefetch.Access{
		Addr: 0x400000, VAddr: 0x400000, IP: 0x400000, Type: memsys.CodeRead,
	}, rec)
	if len(rec.cands) != 0 {
		t.Error("IPCP reacted to a code read")
	}
}

func TestGSDegreeAggressive(t *testing.T) {
	// The GS class issues with the paper's aggressive degree 6 when
	// untouched by throttling. The RR filter is disabled here so
	// candidates already issued during training don't hide the degree.
	cfg := DefaultL1Config()
	cfg.UseRRFilter = false
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	const ip = 0x423000
	region := uint64(0x2_3000_0000)
	now := int64(1)
	for l := 0; l < 32; l++ {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	rec.reset()
	// Trigger in the (tentatively dense) next region, far from the
	// page end so all 6 candidates fit.
	demand(p, rec, now, ip, region+2048, false)
	if got := len(rec.byClass(memsys.ClassGS)); got != p.cfg.DegreeGS {
		t.Errorf("GS issued %d, want degree %d", got, p.cfg.DegreeGS)
	}
}
