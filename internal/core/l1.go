// Package core implements the paper's contribution: Instruction
// Pointer Classifier-based spatial Prefetching (IPCP) — the bouquet of
// tiny per-class prefetchers at the L1-D (constant stride, complex
// stride, global stream, tentative next-line) and the metadata-driven
// IPCP at the L2. The data structures mirror Figures 2–6 and the
// sizing of Table I.
package core

import (
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/telemetry"
)

// L1Config parametrizes the L1-D IPCP. The zero value is not valid;
// use DefaultL1Config. The class-enable switches and the priority
// order exist for the paper's ablations (Fig. 13a/13b).
type L1Config struct {
	IPTableEntries int // direct-mapped; paper: 64
	CSPTEntries    int // direct-mapped; paper: 128
	RSTEntries     int // fully associative LRU; paper: 8
	SignatureBits  int // paper: 7
	RegionBits     int // log2 region bytes; paper: 11 (2KB)

	// Default prefetch degrees per class (paper: CS 3, CPLX 3, GS 6).
	DegreeCS, DegreeCPLX, DegreeGS int

	// CPLXDistance skips the first k CPLX candidates, starting the run
	// farther ahead — the paper's §V latency-relief option ("the
	// prefetch distance can be increased ... only to the CPLX class").
	CPLXDistance int

	// Dense threshold: fraction of region lines that must be touched
	// before the region trains as dense (paper: 0.75).
	DenseFraction float64

	// Accuracy watermarks and the per-class fill window for
	// coordinated throttling (paper: 0.75 / 0.40 / 256).
	ThrottleHigh   float64
	ThrottleLow    float64
	ThrottleWindow int

	// NLThresholdMPKC gates the tentative next-line class: NL is on
	// while demand misses per kilo-cycle stay below this value (the
	// paper uses MPKI 50 and notes misses-per-kilo-cycles is equally
	// effective; the prefetcher observes cycles, not retirements).
	NLThresholdMPKC float64

	// Class enables (Fig. 13a isolation study).
	EnableCS, EnableCPLX, EnableGS, EnableNL bool

	// Priority is the hierarchical class order (Fig. 13b); default
	// GS > CS > CPLX > NL.
	Priority []memsys.PrefetchClass

	// UseRRFilter enables the recent-request filter (ablation).
	UseRRFilter bool

	// EmitMetadata controls whether candidates carry the 9-bit L1→L2
	// payload (§VI-B2 studies turning it off).
	EmitMetadata bool
}

// DefaultL1Config returns the paper's configuration.
func DefaultL1Config() L1Config {
	return L1Config{
		IPTableEntries:  64,
		CSPTEntries:     128,
		RSTEntries:      8,
		SignatureBits:   7,
		RegionBits:      11,
		DegreeCS:        3,
		DegreeCPLX:      3,
		DegreeGS:        6,
		DenseFraction:   0.75,
		ThrottleHigh:    0.75,
		ThrottleLow:     0.40,
		ThrottleWindow:  256,
		NLThresholdMPKC: 50,
		EnableCS:        true,
		EnableCPLX:      true,
		EnableGS:        true,
		EnableNL:        true,
		Priority: []memsys.PrefetchClass{
			memsys.ClassGS, memsys.ClassCS, memsys.ClassCPLX, memsys.ClassNL,
		},
		UseRRFilter:  true,
		EmitMetadata: true,
	}
}

// ipEntry is one IP-table entry (Fig. 5). The simulator stores the
// full last virtual block address; the hardware keeps only the two
// low bits of the virtual page plus the 6-bit line offset, which
// suffice to recompute the stride across adjacent pages (§IV-A) — the
// storage accounting in Table I uses the hardware widths.
type ipEntry struct {
	tag   uint64
	valid bool

	lastBlock   uint64 // last virtual cache-block address
	hasLast     bool
	stride      int8
	confidence  uint8 // 2-bit
	streamValid bool
	direction   int8 // +1 / -1
	signature   uint16
	// lastClass is telemetry bookkeeping (class-transition events), not
	// architectural state.
	lastClass memsys.PrefetchClass
}

// csptEntry is one Complex Stride Prediction Table entry (Fig. 3).
type csptEntry struct {
	stride     int8
	confidence uint8 // 2-bit
}

// rstEntry is one Region Stream Table entry (Fig. 4).
type rstEntry struct {
	region    uint64
	lastLine  int    // 5-bit last line offset within the region
	bits      uint64 // one bit per region line
	posNeg    int    // 6-bit saturating counter, initialized mid-range
	dense     int    // dense-count
	trained   bool
	tentative bool
	direction int8
	lru       uint64
	valid     bool
}

// classState carries the throttle machinery of one class.
type classState struct {
	degree    int // current throttled degree
	defDegree int
	fills     uint64 // window counters
	useful    uint64
	accuracy  float64
	measured  bool
}

// L1IPCP is the L1-D bouquet prefetcher.
type L1IPCP struct {
	cfg L1Config

	ipTable []ipEntry
	cspt    []csptEntry
	rst     []rstEntry
	rr      *rrFilter
	// temporal is the optional future-work temporal component
	// (EnableTemporal); nil by default.
	temporal *TemporalTable

	classes [memsys.NumClasses]classState

	// tentative-NL machinery: demand misses per kilo-cycle.
	missCounter uint64
	cycleMark   int64
	nlOn        bool

	clock uint64
	now   int64 // last observed cycle (telemetry timestamps)

	// tr is the optional event tracer; nil (the default) keeps every
	// emit site on a single predictable branch.
	tr   *telemetry.Tracer
	core int

	// Stats: per-class attribution of the prefetch lifecycle. All reset
	// at the warmup boundary; none feed back into prefetch decisions.
	Issued        [memsys.NumClasses]uint64
	Fills         [memsys.NumClasses]uint64
	Useful        [memsys.NumClasses]uint64
	RRFiltered    [memsys.NumClasses]uint64
	PageClamped   [memsys.NumClasses]uint64
	ThrottleUps   [memsys.NumClasses]uint64
	ThrottleDowns [memsys.NumClasses]uint64

	// ClassTransitions counts IPs switching class.
	ClassTransitions uint64
}

// NewL1IPCP builds the L1-D prefetcher.
func NewL1IPCP(cfg L1Config) *L1IPCP {
	if cfg.IPTableEntries <= 0 {
		cfg = DefaultL1Config()
	}
	// The CSPT is indexed by the SignatureBits-wide signature, so its
	// size IS 1<<SignatureBits — a mismatched configuration would either
	// silently alias distinct signatures (table too small) or leave
	// entries unreachable (table too large). Reconcile the size from the
	// signature width, the parameter that defines the CPLX history
	// depth (paper Table I: 7 bits ↔ 128 entries).
	if cfg.SignatureBits < 1 {
		cfg.SignatureBits = 1
	}
	if cfg.SignatureBits > 16 {
		cfg.SignatureBits = 16
	}
	if cfg.CSPTEntries != 1<<cfg.SignatureBits {
		cfg.CSPTEntries = 1 << cfg.SignatureBits
	}
	p := &L1IPCP{
		cfg:     cfg,
		ipTable: make([]ipEntry, cfg.IPTableEntries),
		cspt:    make([]csptEntry, cfg.CSPTEntries),
		rst:     make([]rstEntry, cfg.RSTEntries),
		rr:      newRRFilter(),
		nlOn:    true,
	}
	p.classes[memsys.ClassCS] = classState{degree: cfg.DegreeCS, defDegree: cfg.DegreeCS, accuracy: 1}
	p.classes[memsys.ClassCPLX] = classState{degree: cfg.DegreeCPLX, defDegree: cfg.DegreeCPLX, accuracy: 1}
	p.classes[memsys.ClassGS] = classState{degree: cfg.DegreeGS, defDegree: cfg.DegreeGS, accuracy: 1}
	p.classes[memsys.ClassNL] = classState{degree: 1, defDegree: 1, accuracy: 1}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *L1IPCP) Name() string { return "ipcp" }

// Config returns the effective configuration (after construction-time
// reconciliation of the CSPT size) — the audit oracle builds its
// reference model from it.
func (p *L1IPCP) Config() L1Config { return p.cfg }

// TemporalEnabled reports whether the optional temporal extension is
// attached (the audit oracle models only the paper's spatial classes).
func (p *L1IPCP) TemporalEnabled() bool { return p.temporal != nil }

func (p *L1IPCP) regionOf(v memsys.Addr) (region uint64, line int) {
	region = uint64(v) >> p.cfg.RegionBits
	line = int(v>>memsys.BlockBits) & (1<<(p.cfg.RegionBits-memsys.BlockBits) - 1)
	return
}

func (p *L1IPCP) regionLines() int { return 1 << (p.cfg.RegionBits - memsys.BlockBits) }

func (p *L1IPCP) sigMask() uint16 { return uint16(1<<p.cfg.SignatureBits - 1) }

// ipIndex hashes the instruction pointer into the direct-mapped IP
// table. Two higher shifted copies are folded in so that regularly
// spaced load IPs (compilers emit those, at strides of 8 or 16 bytes)
// do not alias systematically on any single power of two.
func (p *L1IPCP) ipIndex(ip memsys.Addr) uint64 {
	h := ip>>2 ^ ip>>5 ^ ip>>11
	return h % uint64(len(p.ipTable))
}

// ipTag is the 9-bit partial tag stored per entry.
func ipTag(ip memsys.Addr) uint64 { return (ip >> 2) & 0x1ff }

// advanceSig implements signature = (signature << 1) XOR stride.
func (p *L1IPCP) advanceSig(sig uint16, stride int8) uint16 {
	return (sig<<1 ^ uint16(uint8(stride))) & p.sigMask()
}

// Operate implements prefetch.Prefetcher: classify the IP and issue
// prefetches for the winning class.
func (p *L1IPCP) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	if !a.Type.IsDemand() || a.Type == memsys.CodeRead {
		return
	}
	p.now = now
	// Per-class usefulness feedback (per-line class bits, §V).
	if a.HitPrefetched && a.HitClass != memsys.ClassNone {
		p.classes[a.HitClass].useful++
		p.Useful[a.HitClass]++
	}
	if !a.Hit {
		p.missCounter++
	}
	v := a.VAddr
	if v == 0 {
		v = a.Addr
	}
	block := memsys.BlockNumber(v)
	p.clock++

	if p.cfg.UseRRFilter {
		p.rr.insert(v)
	}

	// --- IP table lookup with hysteresis (§V) ---
	idx := p.ipIndex(a.IP)
	tag := ipTag(a.IP)
	e := &p.ipTable[idx]
	if e.tag != tag || !e.hasLast {
		if e.hasLast && e.tag != tag && e.valid {
			// First conflict: keep the incumbent, clear valid. The
			// RST still trains — region denseness is IP-independent
			// ("RST is checked concurrently for its training", §V).
			e.valid = false
			p.updateRST(v, false, 0)
			return
		}
		// Allocate (or hand over after a second conflict).
		*e = ipEntry{tag: tag, valid: true, lastBlock: block, hasLast: true}
		p.trainRST(e, v, block)
		return
	}
	e.valid = true

	// --- stride computation (virtual, page-crossing aware, §IV-A) ---
	strideFull := int64(block) - int64(e.lastBlock)
	stride := int8(0)
	if strideFull >= -64 && strideFull <= 63 {
		stride = int8(strideFull)
	}
	prevBlock := e.lastBlock
	e.lastBlock = block

	// --- CS training ---
	if stride != 0 {
		if stride == e.stride {
			if e.confidence < 3 {
				e.confidence++
			}
		} else {
			if e.confidence > 0 {
				e.confidence--
			}
			if e.confidence == 0 {
				e.stride = stride
			}
		}
	}

	// --- CPLX training (Fig. 3) ---
	var oldSig uint16
	if stride != 0 {
		oldSig = e.signature
		c := &p.cspt[oldSig&p.sigMask()]
		if c.stride == stride {
			if c.confidence < 3 {
				c.confidence++
			}
		} else {
			if c.confidence > 0 {
				c.confidence--
			}
			if c.confidence == 0 {
				c.stride = stride
			}
		}
		e.signature = p.advanceSig(oldSig, stride)
	}

	// --- GS training via the RST (Fig. 4) ---
	gsEligible := p.trainRSTWithPrev(e, v, block, prevBlock)
	if p.cfg.EnableGS {
		e.streamValid = gsEligible
	}

	if strideFull == 0 && !e.streamValid {
		return // same-block re-access: nothing new to prefetch
	}

	// --- class selection and prefetch (hierarchical priority, §V) ---
	p.prefetchFor(e, a, v, iss)
}

// trainRST handles the first access of a (re)allocated IP entry.
func (p *L1IPCP) trainRST(e *ipEntry, v memsys.Addr, block uint64) {
	eligible := p.updateRST(v, false, 0)
	if p.cfg.EnableGS {
		e.streamValid = eligible
		if eligible {
			e.direction = p.rstDirection(v)
		}
	}
}

// trainRSTWithPrev updates the RST for the access and applies the
// tentative-region chaining (§IV-C): if the IP's previous region was
// trained dense, the new region is tentatively dense.
func (p *L1IPCP) trainRSTWithPrev(e *ipEntry, v memsys.Addr, block, prevBlock uint64) bool {
	prevRegion := prevBlock >> (p.cfg.RegionBits - memsys.BlockBits)
	curRegion := block >> (p.cfg.RegionBits - memsys.BlockBits)
	carryTentative := false
	carryDir := int8(0)
	if curRegion != prevRegion {
		if pe := p.findRST(prevRegion); pe != nil && pe.trained {
			carryTentative = true
			carryDir = pe.direction
		}
	}
	eligible := p.updateRST(v, carryTentative, carryDir)
	if eligible {
		e.direction = p.rstDirection(v)
	}
	return eligible
}

// updateRST records the access in the region stream table and reports
// whether the region is (tentatively) dense, making its IPs GS IPs.
// A tentatively dense region inherits the trained direction of the
// IP's previous region (carryDir) until its own votes accumulate.
func (p *L1IPCP) updateRST(v memsys.Addr, carryTentative bool, carryDir int8) bool {
	region, line := p.regionOf(v)
	p.clock++
	e := p.findRST(region)
	if e == nil {
		e = p.allocRST(region)
		e.tentative = carryTentative
		if carryTentative && carryDir != 0 {
			// Bias the pos/neg counter toward the inherited direction
			// so a single spurious first vote cannot flip it.
			if carryDir > 0 {
				e.posNeg = 40
			} else {
				e.posNeg = 24
			}
		}
	}
	e.lru = p.clock

	// Direction voting: compare to the last line offset in the region
	// (the allocation access carries no vote — there is no previous
	// offset within the region yet).
	if e.lastLine >= 0 && line != e.lastLine {
		if line > e.lastLine {
			if e.posNeg < 63 {
				e.posNeg++
			}
		} else if e.posNeg > 0 {
			e.posNeg--
		}
	}
	e.lastLine = line
	if e.posNeg >= 32 {
		e.direction = 1
	} else {
		e.direction = -1
	}

	if e.bits&(1<<uint(line)) == 0 {
		e.bits |= 1 << uint(line)
		e.dense++
		if float64(e.dense) >= p.cfg.DenseFraction*float64(p.regionLines()) {
			e.trained = true
		}
	}
	return e.trained || e.tentative
}

func (p *L1IPCP) findRST(region uint64) *rstEntry {
	for i := range p.rst {
		if p.rst[i].valid && p.rst[i].region == region {
			return &p.rst[i]
		}
	}
	return nil
}

func (p *L1IPCP) allocRST(region uint64) *rstEntry {
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.rst {
		if !p.rst[i].valid {
			victim, oldest = i, 0
			break
		}
		if p.rst[i].lru < oldest {
			victim, oldest = i, p.rst[i].lru
		}
	}
	p.rst[victim] = rstEntry{
		region: region, lastLine: -1,
		posNeg: 32, // 6-bit counter initialized to 2^5
		valid:  true,
	}
	return &p.rst[victim]
}

func (p *L1IPCP) rstDirection(v memsys.Addr) int8 {
	region, _ := p.regionOf(v)
	if e := p.findRST(region); e != nil {
		return e.direction
	}
	return 1
}

// prefetchFor picks the highest-priority eligible class and issues its
// prefetches. If GS wins but its accuracy sits below the low
// watermark, the lower classes also get to prefetch (§V, coordinated
// throttling).
func (p *L1IPCP) prefetchFor(e *ipEntry, a *prefetch.Access, v memsys.Addr, iss prefetch.Issuer) {
	chosen := memsys.ClassNone
	for _, cls := range p.cfg.Priority {
		if p.eligible(cls, e) {
			chosen = cls
			break
		}
	}
	if chosen != e.lastClass {
		p.ClassTransitions++
		if p.tr != nil {
			p.tr.Emit(telemetry.Event{
				Cycle: p.now, Kind: telemetry.EvClassTransition,
				Level: memsys.LevelL1D, Core: p.core, Class: chosen,
				IP: a.IP, Old: int(e.lastClass), New: int(chosen),
			})
		}
		e.lastClass = chosen
	}
	if chosen == memsys.ClassNone {
		p.temporalIssue(a, v, iss)
		return
	}
	p.issueClass(chosen, e, a.IP, v, iss)
	if chosen == memsys.ClassNL {
		// The temporal extension complements NL on irregular streams.
		p.temporalIssue(a, v, iss)
	}

	if chosen == memsys.ClassGS {
		st := &p.classes[memsys.ClassGS]
		if st.measured && st.accuracy < p.cfg.ThrottleLow {
			for _, cls := range p.cfg.Priority {
				if cls != memsys.ClassGS && cls != memsys.ClassNL && p.eligible(cls, e) {
					p.issueClass(cls, e, a.IP, v, iss)
					break
				}
			}
		}
	}
}

// eligible reports whether the IP currently belongs to the class.
func (p *L1IPCP) eligible(cls memsys.PrefetchClass, e *ipEntry) bool {
	switch cls {
	case memsys.ClassGS:
		return p.cfg.EnableGS && e.streamValid
	case memsys.ClassCS:
		return p.cfg.EnableCS && e.confidence >= 2 && e.stride != 0
	case memsys.ClassCPLX:
		if !p.cfg.EnableCPLX {
			return false
		}
		c := p.cspt[e.signature&p.sigMask()]
		return c.confidence >= 1 && c.stride != 0
	case memsys.ClassNL:
		return p.cfg.EnableNL && p.nlOn
	}
	return false
}

// issueClass generates the candidates of one class.
func (p *L1IPCP) issueClass(cls memsys.PrefetchClass, e *ipEntry, ip, v memsys.Addr, iss prefetch.Issuer) {
	switch cls {
	case memsys.ClassGS:
		deg := p.classes[memsys.ClassGS].degree
		dir := int64(e.direction)
		if dir == 0 {
			dir = 1
		}
		for k := int64(1); k <= int64(deg); k++ {
			p.issue(iss, ip, v, dir*k, memsys.ClassGS, int8(dir))
		}
	case memsys.ClassCS:
		deg := p.classes[memsys.ClassCS].degree
		for k := int64(1); k <= int64(deg); k++ {
			p.issue(iss, ip, v, int64(e.stride)*k, memsys.ClassCS, e.stride)
		}
	case memsys.ClassCPLX:
		deg := p.classes[memsys.ClassCPLX].degree
		sig := e.signature
		off := int64(0)
		issued, skipped := 0, 0
		for step := 0; step < (deg+p.cfg.CPLXDistance)*2 && issued < deg; step++ {
			c := p.cspt[sig&p.sigMask()]
			if c.stride == 0 {
				break
			}
			if c.confidence >= 1 {
				off += int64(c.stride)
				if skipped < p.cfg.CPLXDistance {
					skipped++ // distance: walk the path without issuing
				} else if p.issue(iss, ip, v, off, memsys.ClassCPLX, c.stride) {
					issued++
				}
			}
			sig = p.advanceSig(sig, c.stride)
		}
	case memsys.ClassNL:
		p.issue(iss, ip, v, 1, memsys.ClassNL, 1)
	}
}

// issue emits one candidate at v + off blocks, respecting the page
// boundary and the RR filter, and attaching the L1→L2 metadata.
func (p *L1IPCP) issue(iss prefetch.Issuer, ip, v memsys.Addr, offBlocks int64, cls memsys.PrefetchClass, stride int8) bool {
	cand := memsys.Addr(int64(memsys.BlockNumber(v))+offBlocks) << memsys.BlockBits
	if !memsys.SamePage(v, cand) {
		// IPCP never crosses the page boundary (§IV).
		p.PageClamped[cls]++
		if p.tr != nil {
			p.tr.Emit(telemetry.Event{
				Cycle: p.now, Kind: telemetry.EvPageClamped,
				Level: memsys.LevelL1D, Core: p.core, Class: cls,
				Addr: cand, IP: ip,
			})
		}
		return false
	}
	if p.cfg.UseRRFilter && p.rr.hit(cand) {
		p.RRFiltered[cls]++
		if p.tr != nil {
			p.tr.Emit(telemetry.Event{
				Cycle: p.now, Kind: telemetry.EvRRFiltered,
				Level: memsys.LevelL1D, Core: p.core, Class: cls,
				Addr: cand, IP: ip,
			})
		}
		return false
	}
	meta := uint16(0)
	if p.cfg.EmitMetadata {
		s := stride
		// Stride metadata is passed down only when the class accuracy
		// clears the high watermark (§V, metadata decoding).
		if st := &p.classes[cls]; st.measured && st.accuracy <= p.cfg.ThrottleHigh {
			s = 0
		}
		meta = memsys.Metadata{Class: cls, Stride: s}.Encode()
	}
	ok := iss.Issue(prefetch.Candidate{
		Addr:  cand,
		IP:    ip,
		Class: cls,
		Meta:  meta,
	})
	if ok {
		p.Issued[cls]++
		if p.cfg.UseRRFilter {
			p.rr.insert(cand)
		}
	}
	return ok
}

// Fill implements prefetch.Prefetcher: per-class fill counting drives
// the accuracy window.
func (p *L1IPCP) Fill(now int64, f *prefetch.FillEvent) {
	if !f.Prefetch || f.Class == memsys.ClassNone {
		return
	}
	p.now = now
	p.Fills[f.Class]++
	st := &p.classes[f.Class]
	st.fills++
	if st.fills >= uint64(p.cfg.ThrottleWindow) {
		p.throttle(f.Class)
	}
}

// throttle applies the epoch's accuracy to the class degree (§V,
// coordinated prefetch throttling).
func (p *L1IPCP) throttle(cls memsys.PrefetchClass) {
	st := &p.classes[cls]
	acc := float64(st.useful) / float64(st.fills)
	st.accuracy = acc
	st.measured = true
	st.fills, st.useful = 0, 0
	old := st.degree
	switch {
	case acc > p.cfg.ThrottleHigh:
		if st.degree < st.defDegree {
			st.degree++
		}
	case acc < p.cfg.ThrottleLow:
		if st.degree > 1 {
			st.degree--
		}
	}
	if st.degree > old {
		p.ThrottleUps[cls]++
	} else if st.degree < old {
		p.ThrottleDowns[cls]++
	}
	if p.tr != nil {
		p.tr.Emit(telemetry.Event{
			Cycle: p.now, Kind: telemetry.EvThrottle,
			Level: memsys.LevelL1D, Core: p.core, Class: cls,
			Old: old, New: st.degree, Acc: acc,
		})
	}
}

// Cycle implements prefetch.Prefetcher: the MPKC epoch for the
// tentative-NL gate.
func (p *L1IPCP) Cycle(now int64) {
	const epoch = 4096
	if now-p.cycleMark < epoch {
		return
	}
	mpkc := float64(p.missCounter) * 1000 / float64(now-p.cycleMark)
	was := p.nlOn
	p.nlOn = mpkc < p.cfg.NLThresholdMPKC
	p.missCounter = 0
	p.cycleMark = now
	if p.nlOn != was && p.tr != nil {
		p.tr.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvNLGate,
			Level: memsys.LevelL1D, Core: p.core, Class: memsys.ClassNL,
			Old: boolToInt(was), New: boolToInt(p.nlOn),
		})
	}
}

// NextEvent implements prefetch.NextEventer: the only clocked work is
// the MPKC epoch close, exactly 4096 cycles after the last mark. The
// bound keeps the epoch denominator bit-identical under fast-forwarding
// (the epoch must close at cycleMark+4096, never later).
func (p *L1IPCP) NextEvent(now int64) int64 {
	next := p.cycleMark + 4096
	if next <= now {
		return now + 1
	}
	return next
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ClassAccuracy exposes a class's last measured accuracy (testing and
// reports).
func (p *L1IPCP) ClassAccuracy(cls memsys.PrefetchClass) float64 {
	return p.classes[cls].accuracy
}

// ClassDegree exposes a class's current throttled degree.
func (p *L1IPCP) ClassDegree(cls memsys.PrefetchClass) int {
	return p.classes[cls].degree
}

// NLEnabled reports the tentative-NL gate state.
func (p *L1IPCP) NLEnabled() bool { return p.nlOn }

// SetTracer implements telemetry.Traceable: attach (or detach, with
// nil) the event tracer. core tags emitted events.
func (p *L1IPCP) SetTracer(tr *telemetry.Tracer, core int) {
	p.tr = tr
	p.core = core
}

// ResetStats implements telemetry.StatsResetter: zero the observation
// counters at the warmup boundary. Architectural state — table
// contents, throttle degrees, accuracy windows, the NL gate — is
// untouched, so behavior is identical with or without the reset.
func (p *L1IPCP) ResetStats() {
	p.Issued = [memsys.NumClasses]uint64{}
	p.Fills = [memsys.NumClasses]uint64{}
	p.Useful = [memsys.NumClasses]uint64{}
	p.RRFiltered = [memsys.NumClasses]uint64{}
	p.PageClamped = [memsys.NumClasses]uint64{}
	p.ThrottleUps = [memsys.NumClasses]uint64{}
	p.ThrottleDowns = [memsys.NumClasses]uint64{}
	p.ClassTransitions = 0
	p.rr.resetStats()
}

// TelemetrySnapshot implements telemetry.Introspector: export the
// per-class counters and live throttle state.
func (p *L1IPCP) TelemetrySnapshot() telemetry.Snapshot {
	s := telemetry.Snapshot{
		Name:             p.Name(),
		Level:            memsys.LevelL1D,
		NLOn:             p.nlOn,
		ClassTransitions: p.ClassTransitions,
	}
	s.RRProbes, s.RRHits = p.rr.stats()
	for c := 0; c < memsys.NumClasses; c++ {
		st := &p.classes[c]
		s.Classes[c] = telemetry.ClassStats{
			Issued:           p.Issued[c],
			Fills:            p.Fills[c],
			Useful:           p.Useful[c],
			RRFiltered:       p.RRFiltered[c],
			PageClamped:      p.PageClamped[c],
			ThrottleUps:      p.ThrottleUps[c],
			ThrottleDowns:    p.ThrottleDowns[c],
			Degree:           st.degree,
			Accuracy:         st.accuracy,
			AccuracyMeasured: st.measured,
		}
	}
	return s
}

// DebugEntries invokes f for every trained IP-table entry (testing and
// diagnostics).
func (p *L1IPCP) DebugEntries(f func(idx int, tag uint64, stride int8, conf uint8, stream bool, sig uint16)) {
	for i := range p.ipTable {
		e := &p.ipTable[i]
		if e.hasLast {
			f(i, e.tag, e.stride, e.confidence, e.streamValid, e.signature)
		}
	}
}
