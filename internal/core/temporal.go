package core

import (
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// The paper's summary names two future directions; one is "enhancing
// IPCP with a temporal component for covering temporal and irregular
// accesses" (§VII). TemporalTable is that extension: a small
// miss-correlation table (a Markov-1 predictor over the L1 demand-miss
// stream, in the spirit of temporal streaming / Domino scaled down to
// IPCP's budget) that predicts the next missing block from the current
// one. It is off by default; the abl-temporal experiment measures it.
type TemporalTable struct {
	entries []temporalEntry
	mask    uint64

	lastMiss uint64
	haveLast bool
}

type temporalEntry struct {
	tag  uint32 // partial tag of the triggering block
	next uint64 // successor block number
	conf uint8  // 2-bit confidence
}

// NewTemporalTable returns a table with the given entry count (power
// of two).
func NewTemporalTable(entries int) *TemporalTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: temporal table size must be a power of two")
	}
	return &TemporalTable{
		entries: make([]temporalEntry, entries),
		mask:    uint64(entries - 1),
	}
}

func (t *TemporalTable) slot(block uint64) (*temporalEntry, uint32) {
	h := block ^ block>>16
	return &t.entries[h&t.mask], uint32(h >> 12)
}

// RecordMiss trains the miss-to-miss correlation and returns the
// predicted successor block (0 if no confident prediction).
func (t *TemporalTable) RecordMiss(block uint64) uint64 {
	if t.haveLast && t.lastMiss != block {
		e, tag := t.slot(t.lastMiss)
		if e.tag == tag && e.next == block {
			if e.conf < 3 {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		} else {
			*e = temporalEntry{tag: tag, next: block, conf: 1}
		}
	}
	t.lastMiss = block
	t.haveLast = true

	e, tag := t.slot(block)
	if e.tag == tag && e.conf >= 2 {
		return e.next
	}
	return 0
}

// temporalIssue lets the L1 IPCP consult the temporal table as a
// last-resort class for misses nothing else covered.
func (p *L1IPCP) temporalIssue(a *prefetch.Access, v memsys.Addr, iss prefetch.Issuer) {
	if p.temporal == nil || a.Hit {
		return
	}
	next := p.temporal.RecordMiss(memsys.BlockNumber(v))
	if next == 0 {
		return
	}
	cand := memsys.Addr(next) << memsys.BlockBits
	// Temporal candidates may leave the page; the issuing cache's
	// translator drops unmapped ones, and we skip the RR filter
	// check symmetrically with issue().
	if p.cfg.UseRRFilter && p.rr.hit(cand) {
		return
	}
	if iss.Issue(prefetch.Candidate{Addr: cand, IP: a.IP, Class: memsys.ClassNone}) {
		p.Issued[memsys.ClassNone]++
		if p.cfg.UseRRFilter {
			p.rr.insert(cand)
		}
	}
}

// EnableTemporal attaches the future-work temporal component.
func (p *L1IPCP) EnableTemporal(entries int) {
	p.temporal = NewTemporalTable(entries)
}
