package core

import (
	"testing"

	"ipcp/internal/memsys"
)

func TestTemporalTableLearnsSuccessor(t *testing.T) {
	tt := NewTemporalTable(256)
	// Repeating miss sequence A -> B -> C.
	seq := []uint64{100, 237, 512}
	for round := 0; round < 4; round++ {
		for _, b := range seq {
			tt.RecordMiss(b)
		}
	}
	if got := tt.RecordMiss(100); got != 237 {
		t.Errorf("successor of 100 = %d, want 237", got)
	}
	if got := tt.RecordMiss(237); got != 512 {
		t.Errorf("successor of 237 = %d, want 512", got)
	}
}

func TestTemporalTableConfidenceGate(t *testing.T) {
	tt := NewTemporalTable(256)
	// A single observation must not reach the prediction threshold.
	tt.RecordMiss(7)
	tt.RecordMiss(11)
	if got := tt.RecordMiss(7); got != 0 {
		t.Errorf("one-shot correlation predicted %d; confidence gate broken", got)
	}
}

func TestTemporalTableRelearns(t *testing.T) {
	tt := NewTemporalTable(256)
	for i := 0; i < 6; i++ {
		tt.RecordMiss(1)
		tt.RecordMiss(2)
	}
	if tt.RecordMiss(1) != 2 {
		t.Fatal("did not learn 1->2")
	}
	// Pattern changes to 1 -> 3.
	for i := 0; i < 10; i++ {
		tt.RecordMiss(1)
		tt.RecordMiss(3)
	}
	if got := tt.RecordMiss(1); got != 3 {
		t.Errorf("after relearning, successor of 1 = %d, want 3", got)
	}
}

func TestTemporalTableSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size accepted")
		}
	}()
	NewTemporalTable(100)
}

func TestIPCPTemporalExtensionCoversIrregularRepeats(t *testing.T) {
	// A repeating irregular miss sequence that no spatial class can
	// learn: with the temporal extension enabled, IPCP must start
	// prefetching it.
	p := NewL1IPCP(DefaultL1Config())
	p.EnableTemporal(1024)
	rec := &recorder{}
	// A repeating sequence of 40 far-apart blocks: long enough that the
	// 32-entry RR filter ages each block out before its successor is
	// predicted again, and irregular enough that no spatial class can
	// learn it.
	var seq []uint64
	x := uint64(0x5_0000_0000)
	for i := 0; i < 40; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		seq = append(seq, 0x5_0000_0000+(x%(1<<20))<<12)
	}
	const ip = 0x450000
	now := int64(0)
	for round := 0; round < 8; round++ {
		for _, a := range seq {
			demand(p, rec, now, ip, a, false)
			now++
		}
	}
	if p.Issued[memsys.ClassNone] == 0 {
		t.Error("temporal extension issued nothing on a repeating miss sequence")
	}
	// The candidates must be learned successors from the sequence.
	inSeq := map[uint64]bool{}
	for _, a := range seq {
		inSeq[memsys.BlockNumber(a)] = true
	}
	found := false
	for _, c := range rec.cands {
		if c.Class == memsys.ClassNone && inSeq[memsys.BlockNumber(c.Addr)] {
			found = true
		}
	}
	if !found {
		t.Error("no temporal candidate matched a sequence block")
	}
}

func TestCPLXDistanceSkipsNearCandidates(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.CPLXDistance = 2
	cfg.UseRRFilter = false
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	const ip = 0x460000
	addr := uint64(0x6_0000_0000)
	deltas := []uint64{1, 2}
	for i := 0; i < 50; i++ { // ends mid-page so distance-shifted candidates fit
		demand(p, rec, int64(i), ip, addr, false)
		addr += deltas[i%2] * memsys.BlockSize
	}
	rec.reset()
	demand(p, rec, 100, ip, addr, false)
	cplx := rec.byClass(memsys.ClassCPLX)
	if len(cplx) == 0 {
		t.Fatal("no CPLX candidates")
	}
	// With distance 2, the nearest candidate must be at least 3 pattern
	// steps ahead (the first two were skipped).
	minDelta := int64(1 << 30)
	for _, c := range cplx {
		d := int64(memsys.BlockNumber(c.Addr)) - int64(memsys.BlockNumber(addr))
		if d < minDelta {
			minDelta = d
		}
	}
	if minDelta < 4 { // skipping 1,2 puts the first issue at ≥ +4 blocks
		t.Errorf("nearest CPLX candidate at +%d blocks; distance not applied", minDelta)
	}
}

func TestNewTemporalTablePanicsOnBadSize(t *testing.T) {
	cases := []struct {
		name    string
		entries int
		panics  bool
	}{
		{"zero", 0, true},
		{"negative", -1, true},
		{"non-power-of-two", 1000, true},
		{"power of two", 1024, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if tc.panics && r == nil {
					t.Errorf("NewTemporalTable(%d) did not panic", tc.entries)
				}
				if !tc.panics && r != nil {
					t.Errorf("NewTemporalTable(%d) panicked: %v", tc.entries, r)
				}
			}()
			NewTemporalTable(tc.entries)
		})
	}
}
