package core

import (
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// recorder collects issued candidates.
type recorder struct {
	cands []prefetch.Candidate
}

func (r *recorder) Issue(c prefetch.Candidate) bool {
	r.cands = append(r.cands, c)
	return true
}

func (r *recorder) reset() { r.cands = r.cands[:0] }

func (r *recorder) byClass(cls memsys.PrefetchClass) []prefetch.Candidate {
	var out []prefetch.Candidate
	for _, c := range r.cands {
		if c.Class == cls {
			out = append(out, c)
		}
	}
	return out
}

func demand(p prefetch.Prefetcher, rec *recorder, now int64, ip, vaddr uint64, hit bool) {
	p.Operate(now, &prefetch.Access{
		Addr: vaddr, VAddr: vaddr, IP: ip, Type: memsys.Load, Hit: hit,
	}, rec)
}

// --- CS class ----------------------------------------------------------

func TestCSLearnsConstantStride(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400100
	base := uint64(0x10_0000)
	stride := uint64(3)
	for i := uint64(0); i < 5; i++ {
		demand(p, rec, int64(i), ip, base+i*stride*memsys.BlockSize, false)
	}
	rec.reset()
	cur := base + 5*stride*memsys.BlockSize
	demand(p, rec, 10, ip, cur, false)
	cs := rec.byClass(memsys.ClassCS)
	if len(cs) == 0 {
		t.Fatal("CS class issued nothing for a constant-stride IP")
	}
	if len(cs) > p.cfg.DegreeCS {
		t.Errorf("CS issued %d > degree %d", len(cs), p.cfg.DegreeCS)
	}
	// Candidates land on the stride lattice ahead of the trigger
	// (nearer ones may be RR-filter-suppressed as already issued).
	for _, c := range cs {
		d := int64(memsys.BlockNumber(c.Addr)) - int64(memsys.BlockNumber(cur))
		if d <= 0 || d%int64(stride) != 0 || d > int64(stride)*int64(p.cfg.DegreeCS) {
			t.Errorf("CS candidate at delta %d, want positive multiple of %d within degree", d, stride)
		}
	}
}

func TestCSHandlesPageCrossingStride(t *testing.T) {
	// The paper's example: offset 63 → 0 with a page change in the
	// forward direction is stride +1 (§IV-A). Training must survive
	// page crossings.
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400200
	base := uint64(0x20_0000) + 60*memsys.BlockSize // near end of page
	for i := uint64(0); i < 10; i++ {
		demand(p, rec, int64(i), ip, base+i*memsys.BlockSize, false)
	}
	// The last few accesses are in the next page; CS must be trained.
	rec.reset()
	demand(p, rec, 20, ip, base+10*memsys.BlockSize, false)
	if len(rec.byClass(memsys.ClassCS)) == 0 {
		t.Error("CS lost confidence across a page crossing")
	}
}

func TestCSNoConfidenceOnAlternatingStride(t *testing.T) {
	// The paper's motivating example: strides 1,2,1,2 starve the CS
	// class of confidence (coverage zero) — CPLX handles it instead.
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400300
	addr := uint64(0x30_0000)
	deltas := []uint64{1, 2}
	for i := 0; i < 20; i++ {
		demand(p, rec, int64(i), ip, addr, false)
		addr += deltas[i%2] * memsys.BlockSize
	}
	if len(rec.byClass(memsys.ClassCS)) != 0 {
		t.Error("CS prefetched on an alternating-stride pattern")
	}
	if len(rec.byClass(memsys.ClassCPLX)) == 0 {
		t.Error("CPLX did not cover the alternating-stride pattern")
	}
}

// --- CPLX class --------------------------------------------------------

func TestCPLXFollowsPattern(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400400
	addr := uint64(0x40_0000)
	deltas := []uint64{3, 3, 4} // paper's 66%-coverage CS example
	for i := 0; i < 60; i++ {
		demand(p, rec, int64(i), ip, addr, false)
		addr += deltas[i%3] * memsys.BlockSize
	}
	cplx := rec.byClass(memsys.ClassCPLX)
	if len(cplx) == 0 {
		t.Fatal("CPLX issued nothing on a 3,3,4 pattern")
	}
}

func TestSignatureAdvance(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	// signature = (signature << 1) XOR stride, masked to 7 bits.
	if got := p.advanceSig(0, 3); got != 3 {
		t.Errorf("advanceSig(0,3) = %d, want 3", got)
	}
	if got := p.advanceSig(3, 3); got != (3<<1)^3 {
		t.Errorf("advanceSig(3,3) = %d, want %d", got, (3<<1)^3)
	}
	if got := p.advanceSig(0x7f, 0); got > p.sigMask() {
		t.Errorf("signature escaped its mask: %#x", got)
	}
	f := func(sig uint16, stride int8) bool {
		return p.advanceSig(sig&p.sigMask(), stride) <= p.sigMask()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- GS class ----------------------------------------------------------

// touchDense walks a 2KB region densely with rotating IPs, returning
// the recorder.
func touchDense(p *L1IPCP, rec *recorder, regionBase uint64, ips []uint64, skip int) {
	now := int64(1000)
	i := 0
	for l := 0; l < 32; l++ {
		if skip > 0 && l%skip == 0 && l != 0 {
			continue
		}
		ip := ips[i%len(ips)]
		i++
		demand(p, rec, now, ip, regionBase+uint64(l)*memsys.BlockSize, false)
		now++
	}
}

func TestGSTrainsOnDenseRegion(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	ips := []uint64{0x400500, 0x400504, 0x400508}
	region := uint64(0x50_0000)
	touchDense(p, rec, region, ips, 0)
	// The region is dense; accesses to the NEXT region by these IPs
	// should be GS-classified.
	rec.reset()
	demand(p, rec, 2000, ips[0], region+2048, false)
	demand(p, rec, 2001, ips[1], region+2048+memsys.BlockSize, false)
	gs := rec.byClass(memsys.ClassGS)
	if len(gs) == 0 {
		t.Fatal("GS did not classify IPs touching a dense region")
	}
	for _, c := range gs {
		if c.Addr <= region+2048 {
			t.Errorf("GS prefetched backwards on a positive stream: %#x", c.Addr)
		}
	}
}

func TestGSTentativeChaining(t *testing.T) {
	// After a region trains dense, an IP moving to a NEW region makes
	// the new region tentatively dense (control flow predicted data
	// flow, §IV-C), so GS prefetching starts without retraining.
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	ips := []uint64{0x400600}
	region := uint64(0x60_0000)
	touchDense(p, rec, region, ips, 0)
	rec.reset()
	// Very first access to the next region: tentative bit must let GS
	// fire immediately.
	demand(p, rec, 3000, ips[0], region+2048, false)
	if len(rec.byClass(memsys.ClassGS)) == 0 {
		t.Error("tentative chaining did not start GS in the new region")
	}
}

func TestGSDeclassifiesWhenNotDense(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400700
	region := uint64(0x70_0000)
	touchDense(p, rec, region, []uint64{ip}, 0)
	// Move the IP to a sparse far region twice; the second access's
	// region is not dense and not tentative (previous region of the
	// IP was not trained), so the IP must not stay GS forever.
	demand(p, rec, 4000, ip, region+1*memsys.PageSize*8, false)
	rec.reset()
	demand(p, rec, 4001, ip, region+2*memsys.PageSize*8, false)
	if len(rec.byClass(memsys.ClassGS)) != 0 {
		t.Error("GS classification stuck after the stream ended")
	}
}

func TestGSNegativeDirection(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400800
	region := uint64(0x80_0000)
	now := int64(1)
	// Touch the region densely in descending order.
	for l := 31; l >= 0; l-- {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	rec.reset()
	// Next (previous in memory) region, descending entry point.
	next := region - 2048 + 31*memsys.BlockSize
	demand(p, rec, now, ip, next, false)
	gs := rec.byClass(memsys.ClassGS)
	if len(gs) == 0 {
		t.Fatal("GS did not fire on a descending stream")
	}
	for _, c := range gs {
		if c.Addr >= next {
			t.Errorf("descending GS prefetched forwards: %#x (trigger %#x)", c.Addr, next)
		}
	}
}

// --- priority and hysteresis --------------------------------------------

func TestPriorityGSOverCS(t *testing.T) {
	// An IP that is both GS and CS must prefetch as GS (paper: GS
	// wins ties for timeliness and global order).
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400900
	region := uint64(0x90_0000)
	// Unit stride makes the IP CS-eligible AND densely covers the
	// region, making it GS-eligible.
	now := int64(1)
	for l := 0; l < 32; l++ {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	rec.reset()
	demand(p, rec, now, ip, region+2048, false)
	if len(rec.byClass(memsys.ClassGS)) == 0 {
		t.Error("GS did not win the GS/CS tie")
	}
	if len(rec.byClass(memsys.ClassCS)) != 0 {
		t.Error("CS prefetched despite GS priority")
	}
}

func TestPriorityReordering(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.Priority = []memsys.PrefetchClass{
		memsys.ClassCS, memsys.ClassGS, memsys.ClassCPLX, memsys.ClassNL,
	}
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	const ip = 0x400a00
	region := uint64(0xa0_0000)
	now := int64(1)
	for l := 0; l < 32; l++ {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	rec.reset()
	demand(p, rec, now, ip, region+2048, false)
	if len(rec.byClass(memsys.ClassCS)) == 0 {
		t.Error("reordered priority did not let CS win")
	}
}

func TestIPTableHysteresis(t *testing.T) {
	// Two IPs colliding on the same entry: the first conflict clears
	// the valid bit but keeps the incumbent; the second hands over.
	cfg := DefaultL1Config()
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	ipA := uint64(0x400b00)
	// Find another IP that hashes to the same table index but has a
	// different tag.
	idx := p.ipIndex(ipA)
	ipB := ipA
	for cand := ipA + 4; ; cand += 4 {
		if p.ipIndex(cand) == idx && ipTag(cand) != ipTag(ipA) {
			ipB = cand
			break
		}
	}
	base := uint64(0xb0_0000)
	for i := uint64(0); i < 4; i++ {
		demand(p, rec, int64(i), ipA, base+i*memsys.BlockSize, false)
	}
	if !p.ipTable[idx].valid {
		t.Fatal("incumbent not valid after training")
	}
	// First access by B: conflict → valid cleared, A's fields kept.
	demand(p, rec, 10, ipB, base+0x10000, false)
	if p.ipTable[idx].valid {
		t.Error("valid bit not cleared on first conflict")
	}
	if p.ipTable[idx].tag != ipTag(ipA) {
		t.Error("incumbent evicted on first conflict")
	}
	// Second access by B: entry handed over.
	demand(p, rec, 11, ipB, base+0x10000, false)
	if p.ipTable[idx].tag != ipTag(ipB) || !p.ipTable[idx].valid {
		t.Error("entry not handed to the new IP on second conflict")
	}
	// A comes back: its own access re-establishes hysteresis the same
	// way (valid cleared first).
	demand(p, rec, 12, ipA, base+4*memsys.BlockSize, false)
	if p.ipTable[idx].valid {
		t.Error("hysteresis asymmetric on the way back")
	}
}

// --- NL gate and throttling ----------------------------------------------

func TestTentativeNLGate(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	if !p.NLEnabled() {
		t.Fatal("NL must start enabled")
	}
	// Hammer misses: MPKC far above 50 → NL off at the next epoch.
	for i := 0; i < 3000; i++ {
		demand(p, rec, int64(i), uint64(0x400c00+i*64), uint64(0xc0_0000+i*8192), false)
	}
	p.Cycle(5000)
	if p.NLEnabled() {
		t.Error("NL stayed on at extreme miss rates")
	}
	// Quiet phase: NL back on.
	p.Cycle(20000)
	if !p.NLEnabled() {
		t.Error("NL did not re-enable after misses subsided")
	}
}

func TestNLIssuesForUnclassifiedIP(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400d00
	// Two random touches: no class trains, NL (on by default) fires.
	demand(p, rec, 0, ip, 0xd0_0000, false)
	rec.reset()
	demand(p, rec, 1, ip, 0xd0_0000+17*memsys.PageSize+5*memsys.BlockSize, false)
	nl := rec.byClass(memsys.ClassNL)
	if len(nl) != 1 {
		t.Fatalf("NL issued %d, want 1", len(nl))
	}
}

func TestThrottleDegreeDown(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.ThrottleWindow = 16
	p := NewL1IPCP(cfg)
	// Simulate a window of useless GS fills.
	for i := 0; i < 16; i++ {
		p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassGS})
	}
	if got := p.ClassDegree(memsys.ClassGS); got != cfg.DegreeGS-1 {
		t.Errorf("GS degree after useless window = %d, want %d", got, cfg.DegreeGS-1)
	}
	// Keep feeding useless windows: degree bottoms out at 1.
	for w := 0; w < 20; w++ {
		for i := 0; i < 16; i++ {
			p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassGS})
		}
	}
	if got := p.ClassDegree(memsys.ClassGS); got != 1 {
		t.Errorf("GS degree floor = %d, want 1", got)
	}
}

func TestThrottleDegreeRecovers(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.ThrottleWindow = 16
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	// Drive degree down...
	for w := 0; w < 10; w++ {
		for i := 0; i < 16; i++ {
			p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassCS})
		}
	}
	if p.ClassDegree(memsys.ClassCS) != 1 {
		t.Fatal("setup failed")
	}
	// ...then report high accuracy: every fill followed by a useful
	// hit.
	for w := 0; w < 10; w++ {
		for i := 0; i < 16; i++ {
			p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassCS})
			p.Operate(0, &prefetch.Access{
				Addr: 0xe0_0000, VAddr: 0xe0_0000, IP: 0x400e00,
				Type: memsys.Load, Hit: true,
				HitPrefetched: true, HitClass: memsys.ClassCS,
			}, rec)
		}
	}
	if got := p.ClassDegree(memsys.ClassCS); got != cfg.DegreeCS {
		t.Errorf("CS degree did not recover: %d, want %d", got, cfg.DegreeCS)
	}
}

// --- RR filter -----------------------------------------------------------

func TestRRFilterSuppressesDuplicates(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x400f00
	base := uint64(0xf0_0000)
	for i := uint64(0); i < 6; i++ {
		demand(p, rec, int64(i), ip, base+i*memsys.BlockSize, false)
	}
	// The same trained access repeated back-to-back must not re-issue
	// the identical candidates (they are in the RR filter).
	rec.reset()
	demand(p, rec, 10, ip, base+6*memsys.BlockSize, false)
	n1 := len(rec.cands)
	rec.reset()
	demand(p, rec, 11, ip, base+6*memsys.BlockSize, false)
	n2 := len(rec.cands)
	if n2 >= n1 && n1 > 0 {
		t.Errorf("RR filter did not suppress duplicates: first %d, repeat %d", n1, n2)
	}
}

func TestRRFilterUnit(t *testing.T) {
	f := newRRFilter()
	if f.hit(0x1000) {
		t.Error("empty filter hit")
	}
	f.insert(0x1000)
	if !f.hit(0x1000) {
		t.Error("inserted tag missed")
	}
	// FIFO capacity: 32 further inserts evict the first.
	for i := 1; i <= rrEntries; i++ {
		f.insert(memsys.Addr(0x1000 + i*memsys.BlockSize))
	}
	if f.hit(0x1000) {
		t.Error("tag survived past FIFO capacity")
	}
}

// --- page boundary property ------------------------------------------------

func TestNeverCrossesPageProperty(t *testing.T) {
	// Whatever access pattern IPCP sees, no candidate may leave the
	// triggering page (§IV).
	f := func(seed uint32, pattern []uint8) bool {
		p := NewL1IPCP(DefaultL1Config())
		rec := &recorder{}
		addr := uint64(seed)<<12 | 0x1_0000_0000
		ip := uint64(0x410000)
		var lastPage uint64
		for i, d := range pattern {
			demand(p, rec, int64(i), ip+uint64(d%4)*4, addr, false)
			lastPage = memsys.PageNumber(addr)
			for _, c := range rec.cands {
				_ = c
			}
			// All candidates so far must be in some previously
			// accessed page; specifically the current trigger's page.
			for _, c := range rec.cands {
				if memsys.PageNumber(c.Addr) != lastPage {
					// allow candidates from earlier triggers: track
					// instead that each candidate was issued in-page
					// at issue time — simplest: drain per step.
					return false
				}
			}
			rec.reset()
			addr += uint64(d%8) * memsys.BlockSize
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- metadata ---------------------------------------------------------------

func TestMetadataAttached(t *testing.T) {
	p := NewL1IPCP(DefaultL1Config())
	rec := &recorder{}
	const ip = 0x411000
	base := uint64(0x1_1000_0000)
	for i := uint64(0); i < 6; i++ {
		demand(p, rec, int64(i), ip, base+i*2*memsys.BlockSize, false)
	}
	cs := rec.byClass(memsys.ClassCS)
	if len(cs) == 0 {
		t.Fatal("no CS candidates")
	}
	m := memsys.DecodeMetadata(cs[len(cs)-1].Meta)
	if m.Class != memsys.ClassCS {
		t.Errorf("metadata class = %v, want CS", m.Class)
	}
	if m.Stride != 2 {
		t.Errorf("metadata stride = %d, want 2 (accuracy unmeasured ⇒ optimistic)", m.Stride)
	}
}

func TestMetadataDisabled(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.EmitMetadata = false
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	const ip = 0x412000
	base := uint64(0x1_2000_0000)
	for i := uint64(0); i < 6; i++ {
		demand(p, rec, int64(i), ip, base+i*memsys.BlockSize, false)
	}
	for _, c := range rec.cands {
		if c.Meta != 0 {
			t.Fatal("metadata emitted despite EmitMetadata=false")
		}
	}
}

func TestMetadataStrideGatedByAccuracy(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.ThrottleWindow = 8
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	// Force low measured CS accuracy.
	for i := 0; i < 8; i++ {
		p.Fill(0, &prefetch.FillEvent{Prefetch: true, Class: memsys.ClassCS})
	}
	const ip = 0x413000
	base := uint64(0x1_3000_0000)
	for i := uint64(0); i < 6; i++ {
		demand(p, rec, int64(i), ip, base+i*2*memsys.BlockSize, false)
	}
	cs := rec.byClass(memsys.ClassCS)
	if len(cs) == 0 {
		t.Fatal("no CS candidates")
	}
	m := memsys.DecodeMetadata(cs[0].Meta)
	if m.Stride != 0 {
		t.Errorf("stride metadata leaked despite low accuracy: %d", m.Stride)
	}
	if m.Class != memsys.ClassCS {
		t.Errorf("class metadata lost: %v", m.Class)
	}
}

// --- class isolation (Fig. 13a machinery) -----------------------------------

func TestClassEnableSwitches(t *testing.T) {
	cfg := DefaultL1Config()
	cfg.EnableGS = false
	cfg.EnableCPLX = false
	cfg.EnableNL = false
	p := NewL1IPCP(cfg)
	rec := &recorder{}
	const ip = 0x414000
	region := uint64(0x1_4000_0000)
	now := int64(1)
	for l := 0; l < 32; l++ {
		demand(p, rec, now, ip, region+uint64(l)*memsys.BlockSize, false)
		now++
	}
	demand(p, rec, now, ip, region+2048, false)
	if len(rec.byClass(memsys.ClassGS)) != 0 {
		t.Error("GS issued while disabled")
	}
	if len(rec.byClass(memsys.ClassNL)) != 0 {
		t.Error("NL issued while disabled")
	}
	if len(rec.byClass(memsys.ClassCS)) == 0 {
		t.Error("CS-only config did not prefetch a unit-stride stream")
	}
}

// --- L2 IPCP ------------------------------------------------------------------

func TestL2DecodesMetadataAndPrefetches(t *testing.T) {
	p := NewL2IPCP(DefaultL2Config())
	rec := &recorder{}
	const ip = 0x415000
	meta := memsys.Metadata{Class: memsys.ClassCS, Stride: 2}.Encode()
	// L1 prefetch request arrives with metadata.
	p.Operate(0, &prefetch.Access{
		Addr: 0x2_0000_0000, IP: ip, Type: memsys.Prefetch, Meta: meta,
	}, rec)
	rec.reset()
	// Demand access from the same IP: deep CS prefetching, degree 4.
	p.Operate(1, &prefetch.Access{
		Addr: 0x2_0000_1000, IP: ip, Type: memsys.Load, Hit: false,
	}, rec)
	cs := rec.byClass(memsys.ClassCS)
	if len(cs) != p.cfg.DegreeCS {
		t.Fatalf("L2 CS issued %d, want degree %d", len(cs), p.cfg.DegreeCS)
	}
	for k, c := range cs {
		want := memsys.BlockNumber(0x2_0000_1000) + uint64(2*(k+1))
		if memsys.BlockNumber(c.Addr) != want {
			t.Errorf("L2 CS candidate %d at block %d, want %d", k, memsys.BlockNumber(c.Addr), want)
		}
	}
}

func TestL2NLOnMetadata(t *testing.T) {
	p := NewL2IPCP(DefaultL2Config())
	rec := &recorder{}
	meta := memsys.Metadata{Class: memsys.ClassNL, Stride: 1}.Encode()
	p.Operate(0, &prefetch.Access{
		Addr: 0x2_1000_0000, IP: 0x416000, Type: memsys.Prefetch, Meta: meta,
	}, rec)
	if len(rec.byClass(memsys.ClassNL)) == 0 {
		t.Error("L2 did not next-line on an NL-class prefetch arrival")
	}
}

func TestL2GSDirection(t *testing.T) {
	p := NewL2IPCP(DefaultL2Config())
	rec := &recorder{}
	const ip = 0x417000
	meta := memsys.Metadata{Class: memsys.ClassGS, Stride: -1}.Encode()
	p.Operate(0, &prefetch.Access{Addr: 0x2_2000_0000, IP: ip, Type: memsys.Prefetch, Meta: meta}, rec)
	rec.reset()
	trigger := memsys.Addr(0x2_2000_0000 + 16*memsys.BlockSize)
	p.Operate(1, &prefetch.Access{Addr: trigger, IP: ip, Type: memsys.Load}, rec)
	gs := rec.byClass(memsys.ClassGS)
	if len(gs) == 0 {
		t.Fatal("L2 GS issued nothing")
	}
	for _, c := range gs {
		if c.Addr >= trigger {
			t.Errorf("L2 GS ignored negative direction: %#x", c.Addr)
		}
	}
}

func TestL2NoCPLX(t *testing.T) {
	// The L2 table has no CPLX slot: CPLX-class metadata must not
	// cause CPLX prefetching at L2 (the class encodes as ClassNone on
	// the 2-bit wire).
	m := memsys.Metadata{Class: memsys.ClassCPLX, Stride: 3}
	dec := memsys.DecodeMetadata(m.Encode())
	if dec.Class == memsys.ClassCPLX {
		t.Fatal("the 9-bit metadata wire must not carry a CPLX class")
	}
}

func TestL2TentativeNLGate(t *testing.T) {
	p := NewL2IPCP(DefaultL2Config())
	rec := &recorder{}
	for i := 0; i < 2000; i++ {
		p.Operate(int64(i), &prefetch.Access{
			Addr: memsys.Addr(0x2_3000_0000 + i*memsys.PageSize),
			IP:   uint64(0x418000 + i*4), Type: memsys.Load, Hit: false,
		}, rec)
	}
	p.Cycle(5000)
	if p.NLEnabled() {
		t.Error("L2 NL stayed on at extreme miss rates")
	}
}

func TestL2RegistryLevels(t *testing.T) {
	l1, err := prefetch.New("ipcp", memsys.LevelL1D)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l1.(*L1IPCP); !ok {
		t.Errorf("ipcp at L1D resolved to %T", l1)
	}
	l2, err := prefetch.New("ipcp", memsys.LevelL2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l2.(*L2IPCP); !ok {
		t.Errorf("ipcp at L2 resolved to %T", l2)
	}
}

// --- storage (Table I) --------------------------------------------------------

func TestStorageMatchesTableI(t *testing.T) {
	s := ComputeStorage(DefaultL1Config(), DefaultL2Config())
	if s.L1Bits != 5800 {
		t.Errorf("L1 table bits = %d, want 5800", s.L1Bits)
	}
	if s.OthersBits != 113 {
		t.Errorf("others bits = %d, want 113", s.OthersBits)
	}
	if s.L2Bits != 1237 {
		t.Errorf("L2 bits = %d, want 1237", s.L2Bits)
	}
	if got := s.L1Bytes(); got != 740 {
		t.Errorf("L1 bytes = %d, want 740", got)
	}
	if got := s.L2Bytes(); got != 155 {
		t.Errorf("L2 bytes = %d, want 155", got)
	}
	if got := s.TotalBytes(); got != 895 {
		t.Errorf("total bytes = %d, want 895 (Table I)", got)
	}
}
