package core

import (
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/telemetry"
)

// L2Config parametrizes the L2 IPCP (Fig. 6).
type L2Config struct {
	IPTableEntries int // paper: 64
	// DegreeCS is the CS prefetch degree at L2 (paper: 4 — deeper
	// than L1 thanks to the larger PQ/MSHR).
	DegreeCS int
	// DegreeGS is the GS degree at L2.
	DegreeGS int
	// NLThresholdMPKC gates tentative NL at the L2 (paper: 40).
	NLThresholdMPKC float64
}

// DefaultL2Config returns the paper's configuration.
func DefaultL2Config() L2Config {
	return L2Config{
		IPTableEntries:  64,
		DegreeCS:        4,
		DegreeGS:        4,
		NLThresholdMPKC: 40,
	}
}

// l2Entry is one L2 IP-table entry: 19 bits in hardware (9-bit tag,
// valid, 2-bit class, 7-bit stride/direction).
type l2Entry struct {
	tag    uint64
	valid  bool
	class  memsys.PrefetchClass
	stride int8
}

// L2IPCP is the bookkeeping IPCP at the L2: it never trains on the
// jumbled L2 access stream; it only decodes the classification
// metadata arriving with L1 prefetch requests and prefetches deep
// (from L2, filling to L2) on demand accesses. CPLX is deliberately
// absent at this level (§V, Multilevel Holistic IPCP).
type L2IPCP struct {
	cfg   L2Config
	table []l2Entry

	missCounter uint64
	cycleMark   int64
	nlOn        bool

	tr   *telemetry.Tracer
	core int

	Issued [memsys.NumClasses]uint64
}

// NewL2IPCP builds the L2 prefetcher.
func NewL2IPCP(cfg L2Config) *L2IPCP {
	if cfg.IPTableEntries <= 0 {
		cfg = DefaultL2Config()
	}
	return &L2IPCP{
		cfg:   cfg,
		table: make([]l2Entry, cfg.IPTableEntries),
		nlOn:  true,
	}
}

// Name implements prefetch.Prefetcher.
func (p *L2IPCP) Name() string { return "ipcp-l2" }

// Config returns the effective configuration (the audit oracle builds
// its reference model from it).
func (p *L2IPCP) Config() L2Config { return p.cfg }

// Operate implements prefetch.Prefetcher.
func (p *L2IPCP) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	idx := (a.IP >> 2) % uint64(len(p.table))
	tag := (a.IP >> 2) / uint64(len(p.table)) & 0x1ff

	if a.Type == memsys.Prefetch {
		// An L1 prefetch arriving with metadata populates the table,
		// and — this is the multi-level mechanism — the L2 prefetches
		// deep ahead of the L1's own prefetch stream with the
		// communicated stride/direction ("prefetch deep based on the
		// L1 access stream but from L2 and till L2", §V).
		if a.Meta != 0 {
			m := memsys.DecodeMetadata(a.Meta)
			p.table[idx] = l2Entry{tag: tag, valid: true, class: m.Class, stride: m.Stride}
			switch m.Class {
			case memsys.ClassCS:
				if m.Stride != 0 {
					p.issueRun(iss, a.Addr, int64(m.Stride), p.cfg.DegreeCS, memsys.ClassCS)
				}
			case memsys.ClassGS:
				dir := int64(m.Stride)
				if dir == 0 {
					dir = 1
				}
				p.issueRun(iss, a.Addr, dir, p.cfg.DegreeGS, memsys.ClassGS)
			case memsys.ClassNL:
				// "If the L2 sees a prefetch request from L1-D with
				// class NL, it simply prefetches NL at the L2."
				if p.nlOn {
					p.issueRun(iss, a.Addr, 1, 1, memsys.ClassNL)
				}
			}
		}
		return
	}
	if !a.Type.IsDemand() || a.Type == memsys.CodeRead {
		return
	}
	if !a.Hit {
		p.missCounter++
	}

	e := p.table[idx]
	if e.valid && e.tag == tag {
		switch e.class {
		case memsys.ClassCS:
			if e.stride != 0 {
				p.issueRun(iss, a.Addr, int64(e.stride), p.cfg.DegreeCS, memsys.ClassCS)
			}
		case memsys.ClassGS:
			dir := int64(e.stride)
			if dir == 0 {
				dir = 1
			}
			p.issueRun(iss, a.Addr, dir, p.cfg.DegreeGS, memsys.ClassGS)
		case memsys.ClassNL:
			// Tentative NL only for IPs the L1 classified as NL, and
			// only below the L2 miss-rate threshold — unclassified
			// demands do NOT next-line (that would pollute strided
			// streams).
			if p.nlOn {
				p.issueRun(iss, a.Addr, 1, 1, memsys.ClassNL)
			}
		}
	}
}

// issueRun issues degree prefetches spaced stride blocks apart, within
// the page, filling to the L2.
func (p *L2IPCP) issueRun(iss prefetch.Issuer, addr memsys.Addr, stride int64, degree int, cls memsys.PrefetchClass) {
	for k := int64(1); k <= int64(degree); k++ {
		cand := memsys.Addr(int64(memsys.BlockNumber(addr))+stride*k) << memsys.BlockBits
		if !memsys.SamePage(addr, cand) {
			return
		}
		if iss.Issue(prefetch.Candidate{Addr: cand, Class: cls}) {
			p.Issued[cls]++
		}
	}
}

// Fill implements prefetch.Prefetcher.
func (p *L2IPCP) Fill(int64, *prefetch.FillEvent) {}

// Cycle implements prefetch.Prefetcher: the L2 MPKC epoch for
// tentative NL.
func (p *L2IPCP) Cycle(now int64) {
	const epoch = 4096
	if now-p.cycleMark < epoch {
		return
	}
	mpkc := float64(p.missCounter) * 1000 / float64(now-p.cycleMark)
	was := p.nlOn
	p.nlOn = mpkc < p.cfg.NLThresholdMPKC
	p.missCounter = 0
	p.cycleMark = now
	if p.nlOn != was && p.tr != nil {
		p.tr.Emit(telemetry.Event{
			Cycle: now, Kind: telemetry.EvNLGate,
			Level: memsys.LevelL2, Core: p.core, Class: memsys.ClassNL,
			Old: boolToInt(was), New: boolToInt(p.nlOn),
		})
	}
}

// NextEvent implements prefetch.NextEventer: the MPKC epoch closes
// exactly 4096 cycles after the last mark (see L1IPCP.NextEvent).
func (p *L2IPCP) NextEvent(now int64) int64 {
	next := p.cycleMark + 4096
	if next <= now {
		return now + 1
	}
	return next
}

// NLEnabled reports the tentative-NL gate state (testing).
func (p *L2IPCP) NLEnabled() bool { return p.nlOn }

// SetTracer implements telemetry.Traceable.
func (p *L2IPCP) SetTracer(tr *telemetry.Tracer, core int) {
	p.tr = tr
	p.core = core
}

// ResetStats implements telemetry.StatsResetter (warmup boundary).
func (p *L2IPCP) ResetStats() {
	p.Issued = [memsys.NumClasses]uint64{}
}

// TelemetrySnapshot implements telemetry.Introspector. The L2 IPCP has
// no throttling or filtering of its own, so only the issued counters
// and the NL gate carry state.
func (p *L2IPCP) TelemetrySnapshot() telemetry.Snapshot {
	s := telemetry.Snapshot{
		Name:  p.Name(),
		Level: memsys.LevelL2,
		NLOn:  p.nlOn,
	}
	for c := 0; c < memsys.NumClasses; c++ {
		s.Classes[c] = telemetry.ClassStats{Issued: p.Issued[c]}
	}
	return s
}

func init() {
	prefetch.Register("ipcp", func(level prefetch.Level) prefetch.Prefetcher {
		if level == memsys.LevelL2 {
			return NewL2IPCP(DefaultL2Config())
		}
		return NewL1IPCP(DefaultL1Config())
	})
}
