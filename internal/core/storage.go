package core

import "fmt"

// Storage reproduces Table I of the paper: the bit-exact hardware
// budget of IPCP at the L1 and L2. The widths are the hardware widths
// of Fig. 5/6 (the simulator's in-memory structs are wider for
// convenience; what the paper costs is the hardware encoding).
type Storage struct {
	L1Bits     int
	OthersBits int
	L2Bits     int
}

// Hardware field widths at the L1 (Fig. 5).
const (
	l1IPTagBits       = 9
	l1ValidBits       = 1
	l1LastVPageBits   = 2
	l1LastOffsetBits  = 6
	l1StrideBits      = 7
	l1ConfBits        = 2
	l1StreamValidBits = 1
	l1DirectionBits   = 1
	l1SignatureBits   = 7

	csptStrideBits = 7
	csptConfBits   = 2

	rstRegionIDBits   = 3
	rstLastOffsetBits = 5
	rstBitVectorBits  = 32
	rstPosNegBits     = 6
	rstDenseBits      = 1
	rstTrainedBits    = 1
	rstTentativeBits  = 1
	rstDirectionBits  = 1
	rstLRUBits        = 3

	l1ClassBitsPerLine = 2
	l1Sets             = 64
	l1Ways             = 12

	rrFilterTagBits = 12

	// "Others" (Table I): tentative-NL bit, per-class issue/hit
	// counters, miss + instruction counters, per-class accuracy
	// registers and the MPKI register.
	tentativeNLBits    = 1
	perClassIssuedBits = 8 * 4
	perClassHitsBits   = 8 * 4
	missCounterBits    = 10
	instrCounterBits   = 10
	accuracyRegBits    = 7 * 4 // three 7-bit accuracy registers + 7-bit MPKI
)

// Hardware field widths at the L2 (Fig. 6): 9-bit tag + valid + 2-bit
// class + 7-bit stride = 19 bits per entry.
const (
	l2EntryBits        = 19
	l2TentativeNLBits  = 1
	l2MissCounterBits  = 10
	l2InstrCounterBits = 10
)

// ipTableEntryBits is the width of one shared L1 IP-table entry.
func ipTableEntryBits() int {
	return l1IPTagBits + l1ValidBits + l1LastVPageBits + l1LastOffsetBits +
		l1StrideBits + l1ConfBits + l1StreamValidBits + l1DirectionBits + l1SignatureBits
}

// rstEntryBits is the width of one RST entry.
func rstEntryBits() int {
	return rstRegionIDBits + rstLastOffsetBits + rstBitVectorBits + rstPosNegBits +
		rstDenseBits + rstTrainedBits + rstTentativeBits + rstDirectionBits + rstLRUBits
}

// ComputeStorage returns the Table I budget for the given configs.
func ComputeStorage(l1 L1Config, l2 L2Config) Storage {
	var s Storage
	s.L1Bits = ipTableEntryBits()*l1.IPTableEntries +
		(csptStrideBits+csptConfBits)*l1.CSPTEntries +
		rstEntryBits()*l1.RSTEntries +
		l1ClassBitsPerLine*l1Sets*l1Ways +
		rrFilterTagBits*rrEntries
	s.OthersBits = tentativeNLBits + perClassIssuedBits + perClassHitsBits +
		missCounterBits + instrCounterBits + accuracyRegBits
	s.L2Bits = l2EntryBits*l2.IPTableEntries +
		l2TentativeNLBits + l2MissCounterBits + l2InstrCounterBits
	return s
}

// L1Bytes is the L1 budget (tables + others) rounded up to bytes.
func (s Storage) L1Bytes() int { return (s.L1Bits + s.OthersBits + 7) / 8 }

// L2Bytes is the L2 budget rounded up to bytes.
func (s Storage) L2Bytes() int { return (s.L2Bits + 7) / 8 }

// TotalBytes is the whole-framework budget.
func (s Storage) TotalBytes() int { return s.L1Bytes() + s.L2Bytes() }

// String formats the budget like Table I.
func (s Storage) String() string {
	return fmt.Sprintf(
		"IPCP at L1: %d bits (+%d bits counters) = %d bytes; IPCP at L2: %d bits = %d bytes; total %d bytes",
		s.L1Bits, s.OthersBits, s.L1Bytes(), s.L2Bits, s.L2Bytes(), s.TotalBytes())
}
