package cache

import "ipcp/internal/memsys"

// queue is a fixed-capacity FIFO of requests. Pops are two-phase
// (peek then pop) so a handler that cannot make progress — e.g. the
// MSHR is full — can leave the request at the head and retry on a
// later cycle, which is how the hardware queues behave.
type queue struct {
	buf  []*memsys.Request
	head int
	size int
}

func newQueue(capacity int) *queue {
	if capacity <= 0 {
		capacity = 1
	}
	return &queue{buf: make([]*memsys.Request, capacity)}
}

func (q *queue) push(r *memsys.Request) bool {
	if q.size == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = r
	q.size++
	return true
}

func (q *queue) peek() *memsys.Request {
	if q.size == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *queue) pop() {
	if q.size == 0 {
		return
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
}

func (q *queue) len() int   { return q.size }
func (q *queue) full() bool { return q.size == len(q.buf) }
func (q *queue) cap() int   { return len(q.buf) }
