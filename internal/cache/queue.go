package cache

import "ipcp/internal/memsys"

// queue is a fixed-capacity FIFO of requests. Pops are two-phase
// (peek then pop) so a handler that cannot make progress — e.g. the
// MSHR is full — can leave the request at the head and retry on a
// later cycle, which is how the hardware queues behave.
//
// The backing buffer is rounded up to a power of two so indexing is a
// mask instead of a modulo; capacity semantics (full, cap) still follow
// the configured size, so a 6-entry queue rejects the 7th push exactly
// as before.
type queue struct {
	buf      []*memsys.Request // len(buf) is a power of two
	mask     int
	capacity int // configured capacity; size never exceeds it
	head     int
	size     int
}

// ceilPow2 returns the smallest power of two >= n (n >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newQueue(capacity int) *queue {
	if capacity <= 0 {
		capacity = 1
	}
	n := ceilPow2(capacity)
	return &queue{buf: make([]*memsys.Request, n), mask: n - 1, capacity: capacity}
}

func (q *queue) push(r *memsys.Request) bool {
	if q.size == q.capacity {
		return false
	}
	q.buf[(q.head+q.size)&q.mask] = r
	q.size++
	return true
}

func (q *queue) peek() *memsys.Request {
	if q.size == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *queue) pop() {
	if q.size == 0 {
		return
	}
	q.buf[q.head] = nil
	q.head = (q.head + 1) & q.mask
	q.size--
}

func (q *queue) len() int   { return q.size }
func (q *queue) full() bool { return q.size == q.capacity }
func (q *queue) cap() int   { return q.capacity }
