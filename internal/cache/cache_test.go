package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// fakeMemory is an always-accepting lower level that answers every read
// after a fixed latency.
type fakeMemory struct {
	latency int64
	pend    []fill
	Reads   int
	Writes  int
	Pf      int
	now     int64
	clock   int64
	// rejectWrites makes AddWrite fail (for blocked-eviction tests).
	rejectWrites bool
}

type fill struct {
	at  int64
	req *memsys.Request
}

func (m *fakeMemory) AddRead(r *memsys.Request) bool {
	m.Reads++
	m.pend = append(m.pend, fill{at: m.now + m.latency, req: r})
	return true
}

func (m *fakeMemory) AddPrefetch(r *memsys.Request) bool {
	m.Pf++
	m.pend = append(m.pend, fill{at: m.now + m.latency, req: r})
	return true
}

func (m *fakeMemory) AddWrite(r *memsys.Request) bool {
	if m.rejectWrites {
		return false
	}
	m.Writes++
	return true
}

func (m *fakeMemory) Cycle(now int64) {
	m.now = now
	rest := m.pend[:0]
	for _, f := range m.pend {
		if f.at <= now {
			if f.req.ReturnTo != nil {
				f.req.ReturnTo.ReturnData(now, f.req)
			}
		} else {
			rest = append(rest, f)
		}
	}
	m.pend = rest
}

// collector records completed core requests.
type collector struct {
	done map[int64]int64 // Tag -> completion cycle
}

func newCollector() *collector { return &collector{done: make(map[int64]int64)} }

func (c *collector) ReturnData(now int64, r *memsys.Request) { c.done[r.Tag] = now }

func testConfig() Config {
	return Config{
		Name: "L1D", Level: memsys.LevelL1D,
		Sets: 64, Ways: 12, Latency: 5, Ports: 2,
		RQSize: 16, WQSize: 16, PQSize: 8, MSHRs: 16,
	}
}

// run advances the pair by the given number of cycles, resuming from
// where the previous call stopped.
func run(c *Cache, m *fakeMemory, cycles int) {
	for i := 0; i < cycles; i++ {
		m.Cycle(m.clock)
		c.Cycle(m.clock)
		m.clock++
	}
}

func load(addr memsys.Addr, tag int64, to memsys.Receiver) *memsys.Request {
	return &memsys.Request{
		Addr: addr, VAddr: addr, IP: 0x400000, Type: memsys.Load,
		Tag: tag, ReturnTo: to,
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := &fakeMemory{latency: 50}
	c.SetLower(m)
	col := newCollector()

	if !c.AddRead(load(0x1000, 1, col)) {
		t.Fatal("AddRead rejected")
	}
	run(c, m, 100)
	if _, ok := col.done[1]; !ok {
		t.Fatal("miss never completed")
	}
	first := col.done[1]
	if first < 50 {
		t.Errorf("miss completed at %d, expected >= memory latency", first)
	}

	// Second access to the same block must hit with the hit latency.
	c.AddRead(load(0x1008, 2, col))
	run(c, m, 120)
	hitAt, ok := col.done[2]
	if !ok {
		t.Fatal("hit never completed")
	}
	if lat := hitAt - 100; lat != int64(c.cfg.Latency) {
		t.Errorf("hit latency = %d, want %d", lat, c.cfg.Latency)
	}
	if c.Stats.Hit[memsys.Load] != 1 || c.Stats.Miss[memsys.Load] != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Stats.Hit[memsys.Load], c.Stats.Miss[memsys.Load])
	}
}

func TestMSHRMerge(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 80}
	c.SetLower(m)
	col := newCollector()

	// Two loads to the same block, different words.
	c.AddRead(load(0x2000, 1, col))
	c.AddRead(load(0x2020, 2, col))
	run(c, m, 200)
	if len(col.done) != 2 {
		t.Fatalf("completed %d, want 2", len(col.done))
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d, want 1 (merged)", m.Reads)
	}
	if c.Stats.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", c.Stats.MSHRMerges)
	}
}

func TestMSHRFullStallsDemand(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	cfg.RQSize = 8
	c, _ := New(cfg)
	m := &fakeMemory{latency: 500}
	c.SetLower(m)
	col := newCollector()

	for i := 0; i < 4; i++ {
		c.AddRead(load(memsys.Addr(0x10000+i*0x1000), int64(i), col))
	}
	run(c, m, 100) // not enough for memory to answer
	_, _, _, mshr := c.Occupancy()
	if mshr != 2 {
		t.Errorf("MSHR occupancy = %d, want 2 (full)", mshr)
	}
	if m.Reads != 2 {
		t.Errorf("memory reads = %d, want 2", m.Reads)
	}
	run(c, m, 1500)
	if len(col.done) != 4 {
		t.Errorf("eventually completed %d, want 4", len(col.done))
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := testConfig()
	cfg.Sets = 1
	cfg.Ways = 2
	c, _ := New(cfg)
	m := &fakeMemory{latency: 10}
	c.SetLower(m)
	col := newCollector()

	// Fill both ways; dirty one of them via RFO.
	rfo := load(0x0, 1, col)
	rfo.Type = memsys.RFO
	c.AddRead(rfo)
	c.AddRead(load(0x40, 2, col))
	run(c, m, 50)
	// Evict: bring in two more blocks mapping to the same (only) set.
	c.AddRead(load(0x80, 3, col))
	c.AddRead(load(0xc0, 4, col))
	run(c, m, 100)
	if m.Writes != 1 {
		t.Errorf("writebacks to memory = %d, want 1", m.Writes)
	}
}

func TestBlockedEvictionRetries(t *testing.T) {
	cfg := testConfig()
	cfg.Sets = 1
	cfg.Ways = 1
	c, _ := New(cfg)
	m := &fakeMemory{latency: 5, rejectWrites: true}
	c.SetLower(m)
	col := newCollector()

	rfo := load(0x0, 1, col)
	rfo.Type = memsys.RFO
	c.AddRead(rfo)
	run(c, m, 30)
	// This load must evict the dirty line, but writes are rejected.
	c.AddRead(load(0x40, 2, col))
	run(c, m, 60)
	if _, ok := col.done[2]; ok {
		t.Fatal("fill installed despite blocked writeback")
	}
	m.rejectWrites = false
	run(c, m, 60)
	if _, ok := col.done[2]; !ok {
		t.Fatal("fill never completed after writeback unblocked")
	}
}

func TestPrefetchFillAndUseful(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 20}
	c.SetLower(m)
	col := newCollector()

	// Issue a prefetch via the issuer path.
	ok := (issuer{c}).Issue(prefetch.Candidate{Addr: 0x3000, Class: memsys.ClassCS})
	if !ok {
		t.Fatal("prefetch rejected")
	}
	run(c, m, 100)
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d, want 1", c.Stats.PrefetchFills)
	}
	if c.Stats.FillsByClass[memsys.ClassCS] != 1 {
		t.Errorf("CS fills = %d, want 1", c.Stats.FillsByClass[memsys.ClassCS])
	}
	// Demand hit on the prefetched block counts as useful exactly once.
	c.AddRead(load(0x3000, 1, col))
	c.AddRead(load(0x3010, 2, col))
	run(c, m, 200)
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d, want 1", c.Stats.PrefetchUseful)
	}
	if c.Stats.UsefulByClass[memsys.ClassCS] != 1 {
		t.Errorf("CS useful = %d, want 1", c.Stats.UsefulByClass[memsys.ClassCS])
	}
}

func TestPrefetchHitIsDropped(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 20}
	c.SetLower(m)
	col := newCollector()

	c.AddRead(load(0x4000, 1, col))
	run(c, m, 100)
	(issuer{c}).Issue(prefetch.Candidate{Addr: 0x4000, Class: memsys.ClassCS})
	run(c, m, 200)
	if m.Pf != 0 {
		t.Errorf("prefetch forwarded to memory despite residency")
	}
	if c.Stats.PrefetchFills != 0 {
		t.Errorf("PrefetchFills = %d, want 0", c.Stats.PrefetchFills)
	}
}

func TestLatePrefetch(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 200}
	c.SetLower(m)
	col := newCollector()

	(issuer{c}).Issue(prefetch.Candidate{Addr: 0x5000, Class: memsys.ClassGS})
	run(c, m, 20) // prefetch in flight
	c.AddRead(load(0x5000, 1, col))
	run(c, m, 400)
	if c.Stats.LatePrefetch != 1 {
		t.Errorf("LatePrefetch = %d, want 1", c.Stats.LatePrefetch)
	}
	if _, ok := col.done[1]; !ok {
		t.Fatal("demand merged into prefetch never completed")
	}
	if m.Reads+m.Pf != 1 {
		t.Errorf("memory requests = %d, want 1", m.Reads+m.Pf)
	}
}

func TestPQFullDropsPrefetch(t *testing.T) {
	cfg := testConfig()
	cfg.PQSize = 2
	cfg.Ports = 1
	c, _ := New(cfg)
	m := &fakeMemory{latency: 100}
	c.SetLower(m)

	for i := 0; i < 5; i++ {
		(issuer{c}).Issue(prefetch.Candidate{Addr: memsys.Addr(0x6000 + i*64), Class: memsys.ClassCS})
	}
	if c.Stats.PrefetchDropPQFull != 3 {
		t.Errorf("PrefetchDropPQFull = %d, want 3", c.Stats.PrefetchDropPQFull)
	}
	if c.Stats.PrefetchIssued != 2 {
		t.Errorf("PrefetchIssued = %d, want 2", c.Stats.PrefetchIssued)
	}
}

func TestTranslatorDropsUnmapped(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 10}
	c.SetLower(m)
	c.SetTranslator(func(v memsys.Addr) (memsys.Addr, bool) {
		if v < 0x10000 {
			return v + 0x100000, true
		}
		return 0, false
	})
	if (issuer{c}).Issue(prefetch.Candidate{Addr: 0x20000}) {
		t.Error("unmapped candidate accepted")
	}
	if c.Stats.PrefetchDropUnmapped != 1 {
		t.Errorf("PrefetchDropUnmapped = %d, want 1", c.Stats.PrefetchDropUnmapped)
	}
	if !((issuer{c}).Issue(prefetch.Candidate{Addr: 0x8000})) {
		t.Error("mapped candidate rejected")
	}
	run(c, m, 100)
	if !c.Probe(0x108000) {
		t.Error("prefetch filled at untranslated address")
	}
}

func TestDeepFillLevelPassesThrough(t *testing.T) {
	// A prefetch with FillLevel deeper than this cache must be
	// forwarded without filling this cache.
	cfg := testConfig()
	c, _ := New(cfg)
	m := &fakeMemory{latency: 10}
	c.SetLower(m)

	r := &memsys.Request{
		Addr: 0x7000, Type: memsys.Prefetch,
		FillLevel: memsys.LevelL2, PfOrigin: memsys.LevelL1D,
	}
	c.AddPrefetch(r)
	run(c, m, 100)
	if m.Pf != 1 {
		t.Fatalf("forwarded prefetches = %d, want 1", m.Pf)
	}
	if c.Probe(0x7000) {
		t.Error("pass-through prefetch filled the upper cache")
	}
}

func TestRFOMakesLineDirty(t *testing.T) {
	c, _ := New(testConfig())
	m := &fakeMemory{latency: 10}
	c.SetLower(m)
	col := newCollector()

	rfo := load(0x9000, 1, col)
	rfo.Type = memsys.RFO
	c.AddRead(rfo)
	run(c, m, 50)
	set, way := c.lookup(memsys.BlockNumber(0x9000))
	if way < 0 {
		t.Fatal("block not resident")
	}
	if !c.lines[set*c.cfg.Ways+way].Dirty {
		t.Error("RFO-filled line not dirty")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 4},
		{Sets: 3, Ways: 4},
		{Sets: 4, Ways: 0},
		{Sets: 4, Ways: 2, Repl: "nope"},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestStatsConsistencyProperty(t *testing.T) {
	// Invariant: for each access type, hits + misses == accesses, and
	// every returned block completes exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		cfg.Sets = 8
		cfg.Ways = 2
		c, _ := New(cfg)
		m := &fakeMemory{latency: int64(5 + rng.Intn(40))}
		c.SetLower(m)
		col := newCollector()
		tag := int64(0)
		var cycle int64
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				r := load(memsys.Addr(rng.Intn(64))*64, tag+1, col)
				if rng.Intn(4) == 0 {
					r.Type = memsys.RFO
				}
				if c.AddRead(r) {
					tag++ // only accepted requests owe a completion
				}
			}
			m.Cycle(cycle)
			c.Cycle(cycle)
			cycle++
		}
		for i := 0; i < 2000; i++ {
			m.Cycle(cycle)
			c.Cycle(cycle)
			cycle++
		}
		for _, typ := range []memsys.AccessType{memsys.Load, memsys.RFO} {
			if c.Stats.Hit[typ]+c.Stats.Miss[typ] != c.Stats.Access[typ] {
				return false
			}
		}
		return len(col.done) == int(tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSingleCopyPerSetProperty(t *testing.T) {
	// After arbitrary traffic, no block may appear twice in a set.
	cfg := testConfig()
	cfg.Sets = 4
	cfg.Ways = 4
	c, _ := New(cfg)
	m := &fakeMemory{latency: 7}
	c.SetLower(m)
	col := newCollector()
	rng := rand.New(rand.NewSource(99))
	var cycle int64
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 {
			c.AddRead(load(memsys.Addr(rng.Intn(32))*64, int64(i), col))
		}
		if rng.Intn(8) == 0 {
			(issuer{c}).Issue(prefetch.Candidate{Addr: memsys.Addr(rng.Intn(32)) * 64})
		}
		m.Cycle(cycle)
		c.Cycle(cycle)
		cycle++
	}
	for set := 0; set < cfg.Sets; set++ {
		seen := map[uint64]bool{}
		for w := 0; w < cfg.Ways; w++ {
			l := c.lines[set*cfg.Ways+w]
			if !l.Valid {
				continue
			}
			if seen[l.Tag] {
				t.Fatalf("block %#x duplicated in set %d", l.Tag, set)
			}
			seen[l.Tag] = true
			if int(l.Tag)%cfg.Sets != set {
				t.Fatalf("block %#x in wrong set %d", l.Tag, set)
			}
		}
	}
}

func TestQueueBasics(t *testing.T) {
	q := newQueue(2)
	if q.peek() != nil {
		t.Error("peek on empty queue")
	}
	r1, r2, r3 := &memsys.Request{Tag: 1}, &memsys.Request{Tag: 2}, &memsys.Request{Tag: 3}
	if !q.push(r1) || !q.push(r2) {
		t.Fatal("push failed")
	}
	if q.push(r3) {
		t.Error("push succeeded on full queue")
	}
	if q.peek().Tag != 1 {
		t.Error("FIFO order violated")
	}
	q.pop()
	if !q.push(r3) {
		t.Error("push failed after pop")
	}
	if q.peek().Tag != 2 {
		t.Error("FIFO order violated after wrap")
	}
	if q.len() != 2 || q.cap() != 2 || !q.full() {
		t.Error("occupancy accounting wrong")
	}
}

func TestUselessEvictedCounter(t *testing.T) {
	cfg := testConfig()
	cfg.Sets = 1
	cfg.Ways = 1
	c, _ := New(cfg)
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	col := newCollector()

	(issuer{c}).Issue(prefetch.Candidate{Addr: 0x0, Class: memsys.ClassNL})
	run(c, m, 50)
	c.AddRead(load(0x40, 1, col)) // evicts the untouched prefetch
	run(c, m, 100)
	if c.Stats.UselessEvicted != 1 {
		t.Errorf("UselessEvicted = %d, want 1", c.Stats.UselessEvicted)
	}
}
