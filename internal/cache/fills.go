package cache

import (
	"math"

	"ipcp/internal/memsys"
)

// fillRec is a returned block waiting to be installed.
type fillRec struct {
	ready int64
	req   *memsys.Request
}

// fillRing holds returned blocks until their ready cycle, in arrival
// order. It replaces the per-cycle rebuild of a fills slice with an
// in-place ring plus a min-ready gate: on cycles where nothing is due
// the whole processing pass is a single comparison, and when entries
// are consumed the survivors compact in place without churning the
// allocator. Arrival order is preserved exactly — install order is
// architecturally visible (replacement state, writeback order), so the
// ring must not reorder.
type fillRing struct {
	buf  []fillRec // len(buf) is a power of two
	head int
	size int
	// minReady is the earliest ready cycle of any held entry
	// (math.MaxInt64 when empty): the cache's fill-side next event.
	minReady int64
}

func newFillRing() fillRing {
	return fillRing{buf: make([]fillRec, 8), minReady: math.MaxInt64}
}

func (f *fillRing) len() int { return f.size }

func (f *fillRing) push(ready int64, req *memsys.Request) {
	if f.size == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.size)&(len(f.buf)-1)] = fillRec{ready: ready, req: req}
	f.size++
	if ready < f.minReady {
		f.minReady = ready
	}
}

func (f *fillRing) grow() {
	next := make([]fillRec, len(f.buf)*2)
	for i := 0; i < f.size; i++ {
		next[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = next
	f.head = 0
}

// process invokes install for every entry due at now, in arrival order,
// compacting survivors (not yet due, or install returned false) in
// place. It mirrors the original slice rebuild exactly: a blocked
// install keeps its position and later due entries are still attempted.
func (f *fillRing) process(now int64, install func(*memsys.Request) bool) {
	if f.minReady > now {
		return
	}
	mask := len(f.buf) - 1
	kept := 0
	newMin := int64(math.MaxInt64)
	for i := 0; i < f.size; i++ {
		rec := f.buf[(f.head+i)&mask]
		if rec.ready <= now && install(rec.req) {
			continue
		}
		f.buf[(f.head+kept)&mask] = rec
		kept++
		if rec.ready < newMin {
			newMin = rec.ready
		}
	}
	// Clear vacated slots so consumed requests are recyclable.
	for i := kept; i < f.size; i++ {
		f.buf[(f.head+i)&mask] = fillRec{}
	}
	f.size = kept
	f.minReady = newMin
}
