package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// TestMSHRNeverOverflowsProperty: under arbitrary interleavings of
// demands and prefetches, MSHR occupancy never exceeds its capacity
// and every allocated entry eventually frees.
func TestMSHRNeverOverflowsProperty(t *testing.T) {
	f := func(seed int64, mshrs uint8) bool {
		capacity := int(mshrs%14) + 2
		cfg := testConfig()
		cfg.MSHRs = capacity
		c, _ := New(cfg)
		m := &fakeMemory{latency: 30}
		c.SetLower(m)
		col := newCollector()
		rng := rand.New(rand.NewSource(seed))
		var cycle int64
		for i := 0; i < 600; i++ {
			if rng.Intn(2) == 0 {
				c.AddRead(load(memsys.Addr(rng.Intn(128))*64, int64(i), col))
			}
			if rng.Intn(4) == 0 {
				(issuer{c}).Issue(prefetch.Candidate{Addr: memsys.Addr(rng.Intn(128)) * 64})
			}
			m.Cycle(cycle)
			c.Cycle(cycle)
			if _, _, _, occ := c.Occupancy(); occ > capacity {
				return false
			}
			cycle++
		}
		for i := 0; i < 3000; i++ {
			m.Cycle(cycle)
			c.Cycle(cycle)
			cycle++
		}
		_, _, _, occ := c.Occupancy()
		return occ == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFillMatchesRequestProperty: the block a receiver gets back is
// always the block it asked for.
func TestFillMatchesRequestProperty(t *testing.T) {
	type probe struct {
		want map[int64]memsys.Addr
		bad  bool
	}
	f := func(seed int64) bool {
		cfg := testConfig()
		c, _ := New(cfg)
		m := &fakeMemory{latency: 12}
		c.SetLower(m)
		p := &probe{want: map[int64]memsys.Addr{}}
		recv := recvFunc(func(now int64, r *memsys.Request) {
			if memsys.BlockAlign(p.want[r.Tag]) != r.Block() {
				p.bad = true
			}
		})
		rng := rand.New(rand.NewSource(seed))
		var cycle int64
		for i := 0; i < 400; i++ {
			if rng.Intn(2) == 0 {
				addr := memsys.Addr(rng.Intn(512)) * 64
				tag := int64(i)
				p.want[tag] = addr
				c.AddRead(&memsys.Request{
					Addr: addr, VAddr: addr, Type: memsys.Load,
					Tag: tag, ReturnTo: recv,
				})
			}
			m.Cycle(cycle)
			c.Cycle(cycle)
			cycle++
		}
		for i := 0; i < 2000; i++ {
			m.Cycle(cycle)
			c.Cycle(cycle)
			cycle++
		}
		return !p.bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// recvFunc adapts a function to memsys.Receiver.
type recvFunc func(int64, *memsys.Request)

func (f recvFunc) ReturnData(now int64, r *memsys.Request) { f(now, r) }

// TestWritebackPreservesDataVisibility: a dirty block evicted and then
// re-read must come back from below (the writeback reached the lower
// level before the refetch).
func TestWritebackPreservesDataVisibility(t *testing.T) {
	cfg := testConfig()
	cfg.Sets = 1
	cfg.Ways = 1
	c, _ := New(cfg)
	m := &fakeMemory{latency: 8}
	c.SetLower(m)
	col := newCollector()

	rfo := load(0x0, 1, col)
	rfo.Type = memsys.RFO
	c.AddRead(rfo)
	run(c, m, 40)
	c.AddRead(load(0x40, 2, col)) // evicts dirty block 0
	run(c, m, 40)
	if m.Writes != 1 {
		t.Fatalf("writebacks = %d, want 1", m.Writes)
	}
	c.AddRead(load(0x0, 3, col)) // re-read evicted block
	run(c, m, 60)
	if _, ok := col.done[3]; !ok {
		t.Fatal("re-read of written-back block never completed")
	}
}

// TestExternalPrefetchMetadataPreserved: metadata on an arriving
// prefetch reaches the attached prefetcher's hook.
func TestExternalPrefetchMetadataPreserved(t *testing.T) {
	cfg := testConfig()
	cfg.Level = memsys.LevelL2
	c, _ := New(cfg)
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	var seenMeta uint16
	c.SetPrefetcher(hookFunc(func(a *prefetch.Access) {
		if a.Type == memsys.Prefetch && a.Meta != 0 {
			seenMeta = a.Meta
		}
	}))
	r := &memsys.Request{
		Addr: 0x9000, Type: memsys.Prefetch,
		FillLevel: memsys.LevelL1D, PfOrigin: memsys.LevelL1D,
		PfMeta: 0x123,
	}
	c.AddPrefetch(r)
	run(c, m, 40)
	if seenMeta != 0x123 {
		t.Errorf("metadata = %#x, want 0x123", seenMeta)
	}
}

// hookFunc adapts a function to prefetch.Prefetcher.
type hookFunc func(*prefetch.Access)

func (hookFunc) Name() string { return "hook" }
func (h hookFunc) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	h(a)
}
func (hookFunc) Fill(int64, *prefetch.FillEvent) {}
func (hookFunc) Cycle(int64)                     {}
