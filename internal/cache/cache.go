// Package cache implements the set-associative cache model used at
// every level of the simulated hierarchy: read/write/prefetch queues,
// MSHRs with request merging, a non-inclusive fill path, per-line
// prefetch class tags, and the prefetcher hook points.
//
// The model is cycle-stepped: the simulation driver clocks every cache
// once per cycle, and each cache services a bounded number of lookups
// per cycle (its "ports"), forwards misses downward through memsys.Sink
// and receives data back through memsys.Receiver. NextEvent lets the
// driver skip cycles where the cache provably has nothing to do (see
// the quiescence contract in DESIGN.md).
package cache

import (
	"fmt"
	"math"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/repl"
	"ipcp/internal/telemetry"
)

// Config describes one cache.
type Config struct {
	Name  string
	Level memsys.Level

	Sets int // must be a power of two
	Ways int

	// Latency is the lookup (hit) latency in cycles.
	Latency int
	// Ports bounds read-side lookups (demand + prefetch) per cycle.
	Ports int

	RQSize, WQSize, PQSize, MSHRs int

	// Repl names the replacement policy ("lru" if empty).
	Repl string
}

// SizeBytes returns the capacity of the configured cache.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * memsys.BlockSize }

// Line is one cache block's bookkeeping state.
type Line struct {
	Tag        uint64 // block number
	Valid      bool
	Dirty      bool
	Prefetched bool // brought in by a prefetch and not yet demanded
	Class      memsys.PrefetchClass
}

// Stats aggregates a cache's counters. Demand counters exclude
// writebacks and prefetches.
type Stats struct {
	Access [5]uint64
	Hit    [5]uint64
	Miss   [5]uint64

	MSHRMerges   uint64
	LatePrefetch uint64 // demand merged into an outstanding prefetch miss

	PrefetchIssued       uint64
	PrefetchDropPQFull   uint64
	PrefetchMSHRStall    uint64
	PrefetchDropUnmapped uint64
	PrefetchFills        uint64
	PrefetchUseful       uint64
	UselessEvicted       uint64 // prefetched lines evicted untouched

	IssuedByClass [memsys.NumClasses]uint64
	FillsByClass  [memsys.NumClasses]uint64
	UsefulByClass [memsys.NumClasses]uint64

	Writebacks uint64

	DemandMissLatency uint64 // summed cycles
	DemandMissSamples uint64
}

// DemandAccesses returns loads + RFOs + code reads handled.
func (s *Stats) DemandAccesses() uint64 {
	return s.Access[memsys.Load] + s.Access[memsys.RFO] + s.Access[memsys.CodeRead]
}

// DemandMisses returns demand misses (loads + RFOs + code reads).
func (s *Stats) DemandMisses() uint64 {
	return s.Miss[memsys.Load] + s.Miss[memsys.RFO] + s.Miss[memsys.CodeRead]
}

// DemandHits returns demand hits.
func (s *Stats) DemandHits() uint64 {
	return s.Hit[memsys.Load] + s.Hit[memsys.RFO] + s.Hit[memsys.CodeRead]
}

// Accuracy returns useful/filled prefetch accuracy in [0,1], or 0 when
// no prefetch has filled.
func (s *Stats) Accuracy() float64 {
	if s.PrefetchFills == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / float64(s.PrefetchFills)
}

// Translator maps a virtual prefetch address to a physical one without
// allocating pages; ok=false drops the candidate.
type Translator func(v memsys.Addr) (memsys.Addr, bool)

// Auditor observes the cache's architectural events so an external
// reference model (internal/audit) can shadow the line array and cross-
// check hits, victims and bookkeeping. Every hook fires next to the
// corresponding Stats update; nil (the default) costs one predictable
// branch per site. OnAccess fires once per serviced request — never for
// a request parked at its queue head (MSHR full) or a pass-through
// prefetch drop, which touch no stats or replacement state either.
// Ordering caveat: a write-allocate miss installs the block before it is
// counted, so for Writeback accesses the OnInstall event precedes the
// OnAccess event of the same request.
type Auditor interface {
	OnAccess(now int64, addr memsys.Addr, typ memsys.AccessType, hit, hitPrefetched bool, hitClass memsys.PrefetchClass)
	OnInstall(now int64, addr memsys.Addr, typ memsys.AccessType, prefetched bool, class memsys.PrefetchClass,
		victim memsys.Addr, victimValid, victimDirty, victimPrefetched bool)
	OnResetStats()
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config
	lines []Line
	pol   repl.Policy

	lower memsys.Sink
	pf    prefetch.Prefetcher
	// pfNil caches whether pf is the no-op prefetcher (fast-path key).
	pfNil bool
	// pfNext caches pf's NextEventer, nil when pf gives no bound (the
	// cache then never reports quiescence past the next cycle).
	pfNext prefetch.NextEventer

	// translate is set on the L1-D: prefetcher candidates there are
	// virtual addresses.
	translate Translator

	rq, wq, pq *queue
	mshr       *mshrTable
	fills      fillRing

	// pool recycles Requests across the whole system (nil: allocate).
	pool *memsys.RequestPool

	// installCb adapts installFill to the fill ring without a per-call
	// closure allocation (c.now carries the cycle).
	installCb func(*memsys.Request) bool

	// iss is the prefetcher-facing issuer, boxed once instead of per
	// Operate call.
	iss prefetch.Issuer
	// opAcc and fillEv are the reusable hook-argument buffers; the
	// prefetcher contract forbids retaining the pointers.
	opAcc  prefetch.Access
	fillEv prefetch.FillEvent

	// rqBlocked records that the read-queue head was tried this cycle
	// and could not make progress (MSHR full, no merge): it cannot
	// unblock before a fill completes, so the cache may sleep.
	rqBlocked bool

	setsMask uint64
	now      int64

	// tr is the optional event tracer (nil = tracing off); trCore tags
	// events with the owning core (-1 for the shared LLC).
	tr     *telemetry.Tracer
	trCore int

	// aud is the optional architectural auditor (nil = auditing off).
	aud Auditor

	Stats Stats
}

// New constructs a cache. The lower sink and prefetcher are attached
// with SetLower / SetPrefetcher before the first cycle.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: sets must be a power of two, got %d", cfg.Name, cfg.Sets)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways must be positive", cfg.Name)
	}
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	if cfg.Repl == "" {
		cfg.Repl = "lru"
	}
	pol, err := repl.New(cfg.Repl, cfg.Sets, cfg.Ways)
	if err != nil {
		return nil, fmt.Errorf("cache %s: %w", cfg.Name, err)
	}
	c := &Cache{
		cfg:      cfg,
		lines:    make([]Line, cfg.Sets*cfg.Ways),
		pol:      pol,
		rq:       newQueue(cfg.RQSize),
		wq:       newQueue(cfg.WQSize),
		pq:       newQueue(cfg.PQSize),
		mshr:     newMSHR(cfg.MSHRs),
		fills:    newFillRing(),
		setsMask: uint64(cfg.Sets - 1),
	}
	c.SetPrefetcher(nil)
	c.iss = issuer{c}
	c.installCb = func(req *memsys.Request) bool { return c.installFill(c.now, req) }
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetLower attaches the next level down.
func (c *Cache) SetLower(s memsys.Sink) { c.lower = s }

// SetRequestPool attaches the system-wide request free list (nil keeps
// plain allocation, the default for standalone caches).
func (c *Cache) SetRequestPool(p *memsys.RequestPool) { c.pool = p }

// SetPrefetcher attaches a prefetcher (nil detaches).
func (c *Cache) SetPrefetcher(p prefetch.Prefetcher) {
	if p == nil {
		p = prefetch.Nil{}
	}
	c.pf = p
	_, c.pfNil = p.(prefetch.Nil)
	c.pfNext, _ = p.(prefetch.NextEventer)
}

// Prefetcher returns the attached prefetcher.
func (c *Cache) Prefetcher() prefetch.Prefetcher { return c.pf }

// SetTranslator supplies the virtual→physical mapping for prefetch
// candidates (L1-D only).
func (c *Cache) SetTranslator(t Translator) { c.translate = t }

// SetTracer implements telemetry.Traceable: attach (or detach, with
// nil) the event tracer. core tags emitted events (-1 for shared
// caches).
func (c *Cache) SetTracer(tr *telemetry.Tracer, core int) {
	c.tr = tr
	c.trCore = core
}

// SetAuditor attaches an architectural auditor (nil detaches).
func (c *Cache) SetAuditor(a Auditor) { c.aud = a }

// ResetStats zeroes the counters (end of warmup).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	if c.aud != nil {
		c.aud.OnResetStats()
	}
}

// --- memsys.Sink ------------------------------------------------------

// AddRead enqueues a demand read from above.
func (c *Cache) AddRead(r *memsys.Request) bool { return c.rq.push(r) }

// AddWrite enqueues a writeback from above.
func (c *Cache) AddWrite(r *memsys.Request) bool { return c.wq.push(r) }

// AddPrefetch enqueues a prefetch from the level above.
func (c *Cache) AddPrefetch(r *memsys.Request) bool { return c.pq.push(r) }

// --- memsys.Receiver ----------------------------------------------------

// ReturnData receives a completed forwarded request from below.
func (c *Cache) ReturnData(ready int64, req *memsys.Request) {
	c.fills.push(ready, req)
}

// --- clocking -----------------------------------------------------------

// Cycle advances the cache one cycle.
func (c *Cache) Cycle(now int64) {
	c.now = now

	// Idle fast path: with empty queues, no due fill, and nothing to
	// forward, the full pass below is a no-op — only the prefetcher's
	// clock remains. This is the common state for the L1-I and for
	// lower levels between bursts.
	if c.fills.minReady > now && c.mshr.pendingIssue == 0 &&
		c.wq.size == 0 && c.rq.size == 0 && c.pq.size == 0 {
		c.rqBlocked = false
		if !c.pfNil {
			c.pf.Cycle(now)
		}
		return
	}

	c.fills.process(now, c.installCb)
	c.issueMSHR(now)

	// One writeback handled per cycle.
	if r := c.wq.peek(); r != nil {
		if c.handleWrite(now, r) {
			c.wq.pop()
		}
	}

	// Read-side lookups: demand queue has priority over prefetches,
	// but the prefetch queue always gets one lookup of its own — the
	// paper's L1 prefetcher never probes the data ports (that is what
	// the RR filter is for), so prefetches do not starve behind a
	// saturated demand stream.
	c.rqBlocked = false
	budget := c.cfg.Ports
	for budget > 0 {
		if r := c.rq.peek(); r != nil {
			if !c.handleRead(now, r) {
				c.rqBlocked = true
				break // head blocked (MSHR full); retry next cycle
			}
			c.rq.pop()
			budget--
			continue
		}
		break
	}
	pfBudget := budget
	if pfBudget < 1 {
		pfBudget = 1
	}
	for pfBudget > 0 {
		r := c.pq.peek()
		if r == nil {
			break
		}
		if !c.handlePrefetchPop(now, r) {
			break
		}
		c.pq.pop()
		pfBudget--
	}

	if !c.pfNil {
		c.pf.Cycle(now)
	}
}

// NextEvent reports the earliest future cycle at which clocking this
// cache could have any effect — on its own state, its statistics, or
// another component. Between now and the returned cycle every Cycle
// call is provably a no-op, so the driver may skip straight there.
// prefetch.NoEvent means the cache is idle until external input
// arrives (which only happens inside some other component's event).
func (c *Cache) NextEvent(now int64) int64 {
	// Queued writebacks and prefetches are retried every cycle, and
	// their handlers touch counters (e.g. PrefetchMSHRStall), so any
	// occupancy pins the cache awake.
	if c.wq.len() > 0 || c.pq.len() > 0 {
		return now + 1
	}
	// A read-queue head that was not even tried this cycle (ports
	// exhausted, or freshly pushed) must be tried next cycle; one that
	// bounced off a full MSHR can only unblock when a fill frees an
	// entry, which the fill bound below covers.
	if c.rq.len() > 0 && !c.rqBlocked {
		return now + 1
	}
	next := int64(math.MaxInt64)
	if c.fills.len() > 0 {
		if c.fills.minReady <= now {
			return now + 1 // blocked install retries every cycle
		}
		next = c.fills.minReady
	}
	if t, ok := c.mshr.nextIssue(); ok {
		if t <= now {
			return now + 1 // forward retry (lower queue full)
		}
		if t < next {
			next = t
		}
	}
	// The prefetcher's epoch/delay machinery: without a declared
	// bound we must assume its Cycle does work every cycle.
	if !c.pfNil {
		if c.pfNext == nil {
			return now + 1
		}
		if t := c.pfNext.NextEvent(now); t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// lookup finds the way holding block, or -1.
func (c *Cache) lookup(block uint64) (set, way int) {
	set = int(block & c.setsMask)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if l := &c.lines[base+w]; l.Valid && l.Tag == block {
			return set, w
		}
	}
	return set, -1
}

// Probe reports whether the block containing addr is resident (testing
// and statistics; does not touch replacement state).
func (c *Cache) Probe(addr memsys.Addr) bool {
	_, way := c.lookup(memsys.BlockNumber(addr))
	return way >= 0
}

// handleRead services the head of the read queue. It returns false if
// the request cannot make progress this cycle.
func (c *Cache) handleRead(now int64, r *memsys.Request) bool {
	return c.service(now, r, false)
}

// handlePrefetchPop services the head of the prefetch queue.
func (c *Cache) handlePrefetchPop(now int64, r *memsys.Request) bool {
	// A prefetch whose fill target is deeper than this cache is only
	// passing through: check residency, then forward without MSHR.
	if r.FillLevel > c.cfg.Level {
		_, way := c.lookup(memsys.BlockNumber(r.Addr))
		if way >= 0 {
			c.pool.Put(r) // already resident here; drop
			return true
		}
		return c.lower.AddPrefetch(r)
	}
	return c.service(now, r, true)
}

// service performs the tag lookup and hit/miss handling shared by
// demand reads and prefetches. fromPQ marks prefetch-queue pops.
func (c *Cache) service(now int64, r *memsys.Request, fromPQ bool) bool {
	block := memsys.BlockNumber(r.Addr)
	set, way := c.lookup(block)

	external := !fromPQ || r.PfOrigin != c.cfg.Level

	if way >= 0 {
		line := &c.lines[set*c.cfg.Ways+way]
		hitClass := memsys.ClassNone
		hitPrefetched := false
		if line.Prefetched && r.Type.IsDemand() {
			c.Stats.PrefetchUseful++
			c.Stats.UsefulByClass[line.Class]++
			hitClass = line.Class
			hitPrefetched = true
			line.Prefetched = false
			if c.tr != nil {
				c.tr.Emit(telemetry.Event{
					Cycle: now, Kind: telemetry.EvUseful,
					Level: c.cfg.Level, Core: c.trCore, Class: hitClass,
					Addr: r.Addr, IP: r.IP,
				})
			}
		}
		c.count(r.Type, true)
		c.pol.Hit(set, way, r)
		if r.Type == memsys.RFO {
			line.Dirty = true
		}
		if c.aud != nil {
			c.aud.OnAccess(now, r.Addr, r.Type, true, hitPrefetched, hitClass)
		}
		if external {
			c.operatePrefetcher(now, r, true, hitPrefetched, hitClass)
		}
		if r.ReturnTo != nil {
			r.ReturnTo.ReturnData(now+int64(c.cfg.Latency), r)
		} else {
			c.pool.Put(r) // terminal here: RFO or prefetch hit
		}
		return true
	}

	// Miss. Merge into an outstanding entry if one exists.
	if e := c.mshr.find(block); e != nil {
		c.count(r.Type, false)
		if c.aud != nil {
			c.aud.OnAccess(now, r.Addr, r.Type, false, false, memsys.ClassNone)
		}
		c.Stats.MSHRMerges++
		e.waiters = append(e.waiters, r)
		if r.Type.IsDemand() {
			if e.prefetchOnly {
				c.Stats.LatePrefetch++
				e.prefetchOnly = false
			}
			if r.FillLevel < e.fillLevel {
				e.fillLevel = r.FillLevel
			}
		}
		if external {
			c.operatePrefetcher(now, r, false, false, memsys.ClassNone)
		}
		return true
	}

	if c.mshr.full() {
		if r.IsPrefetch() && fromPQ {
			c.Stats.PrefetchMSHRStall++
		}
		// Both demands and prefetches wait at their queue heads for an
		// MSHR slot (as in ChampSim). A full PQ then drops newly
		// issued prefetches — the paper's natural throttling.
		return false
	}

	c.count(r.Type, false)
	if c.aud != nil {
		c.aud.OnAccess(now, r.Addr, r.Type, false, false, memsys.ClassNone)
	}
	fl := r.FillLevel
	if fl == 0 {
		fl = c.cfg.Level
	}
	e := c.mshr.alloc()
	e.block = block
	e.waiters = append(e.waiters, r)
	e.readyToIssue = now + int64(c.cfg.Latency)
	e.prefetchOnly = r.IsPrefetch()
	e.class = r.PfClass
	e.meta = r.PfMeta
	e.fillLevel = fl
	e.born = now
	if external {
		c.operatePrefetcher(now, r, false, false, memsys.ClassNone)
	}
	return true
}

func (c *Cache) count(t memsys.AccessType, hit bool) {
	c.Stats.Access[t]++
	if hit {
		c.Stats.Hit[t]++
	} else {
		c.Stats.Miss[t]++
	}
}

// operatePrefetcher invokes the attached prefetcher's Operate hook. The
// Access buffer is reused across calls; prefetchers must not retain it.
func (c *Cache) operatePrefetcher(now int64, r *memsys.Request, hit, hitPrefetched bool, hitClass memsys.PrefetchClass) {
	if c.pfNil {
		return
	}
	vaddr := r.VAddr
	if c.translate == nil {
		// Below the (virtually trained) L1-D, prefetchers operate on
		// physical addresses only: their candidates are issued
		// untranslated, so offering a virtual address here would make
		// them prefetch the wrong physical lines.
		vaddr = 0
	}
	c.opAcc = prefetch.Access{
		Addr:          r.Addr,
		VAddr:         vaddr,
		IP:            r.IP,
		Type:          r.Type,
		Hit:           hit,
		Meta:          r.PfMeta,
		HitPrefetched: hitPrefetched,
		HitClass:      hitClass,
	}
	c.pf.Operate(now, &c.opAcc, c.iss)
}

// issuer adapts the cache to prefetch.Issuer.
type issuer struct{ c *Cache }

// Issue accepts a prefetch candidate from the attached prefetcher.
func (i issuer) Issue(cand prefetch.Candidate) bool {
	return i.c.issuePrefetch(cand)
}

func (c *Cache) issuePrefetch(cand prefetch.Candidate) bool {
	paddr := cand.Addr
	vaddr := memsys.Addr(0)
	if c.translate != nil {
		vaddr = cand.Addr
		p, ok := c.translate(cand.Addr)
		if !ok {
			c.Stats.PrefetchDropUnmapped++
			return false
		}
		paddr = p
	}
	if c.pq.full() {
		c.Stats.PrefetchDropPQFull++
		return false
	}
	fl := cand.FillLevel
	if fl == 0 {
		fl = c.cfg.Level
	}
	r := c.pool.Get()
	*r = memsys.Request{
		Addr:      memsys.BlockAlign(paddr),
		VAddr:     memsys.BlockAlign(vaddr),
		IP:        cand.IP,
		Type:      memsys.Prefetch,
		FillLevel: fl,
		PfClass:   cand.Class,
		PfMeta:    cand.Meta,
		PfOrigin:  c.cfg.Level,
		Born:      c.now,
	}
	c.pq.push(r)
	c.Stats.PrefetchIssued++
	c.Stats.IssuedByClass[cand.Class]++
	if c.tr != nil {
		c.tr.Emit(telemetry.Event{
			Cycle: c.now, Kind: telemetry.EvIssued,
			Level: c.cfg.Level, Core: c.trCore, Class: cand.Class,
			Addr: r.Addr, IP: cand.IP,
		})
	}
	return true
}

// issueMSHR forwards unissued misses to the lower level.
func (c *Cache) issueMSHR(now int64) {
	c.mshr.unissued(func(e *mshrEntry) {
		if e.readyToIssue > now {
			return
		}
		first := e.waiters[0]
		fwd := c.pool.Get()
		*fwd = memsys.Request{
			Addr:      e.block << memsys.BlockBits,
			VAddr:     memsys.BlockAlign(first.VAddr),
			IP:        first.IP,
			CoreID:    first.CoreID,
			FillLevel: e.fillLevel,
			PfClass:   e.class,
			PfMeta:    e.meta,
			PfOrigin:  first.PfOrigin,
			ReturnTo:  c,
			Born:      e.born,
		}
		if e.prefetchOnly {
			fwd.Type = memsys.Prefetch
			if c.lower.AddPrefetch(fwd) {
				c.mshr.markIssued(e)
			} else {
				c.pool.Put(fwd)
			}
			return
		}
		fwd.Type = firstDemandType(e.waiters)
		if c.lower.AddRead(fwd) {
			c.mshr.markIssued(e)
		} else {
			c.pool.Put(fwd)
		}
	})
}

func firstDemandType(ws []*memsys.Request) memsys.AccessType {
	for _, w := range ws {
		if w.Type.IsDemand() {
			return w.Type
		}
	}
	return memsys.Load
}

// installFill installs the returned block for req and completes its
// MSHR entry. It returns false if the install cannot proceed (dirty
// victim with the lower write queue full).
func (c *Cache) installFill(now int64, req *memsys.Request) bool {
	block := memsys.BlockNumber(req.Addr)
	e := c.mshr.find(block)

	prefetched := e != nil && e.prefetchOnly
	class := memsys.ClassNone
	if e != nil {
		class = e.class
	}

	if _, way := c.lookup(block); way < 0 {
		if !c.install(now, req, prefetched, class) {
			return false
		}
	}

	if e == nil {
		c.pool.Put(req) // stale fill (entry already satisfied)
		return true
	}
	if e.prefetchOnly {
		c.Stats.PrefetchFills++
		c.Stats.FillsByClass[e.class]++
		if c.tr != nil {
			c.tr.Emit(telemetry.Event{
				Cycle: now, Kind: telemetry.EvFill,
				Level: c.cfg.Level, Core: c.trCore, Class: e.class,
				Addr: req.Addr,
			})
		}
	}
	for _, w := range e.waiters {
		// Latency stats read w before ReturnData: the receiver may
		// recycle the request as soon as it gets it back.
		if w.Type.IsDemand() {
			c.Stats.DemandMissLatency += uint64(now - w.Born)
			c.Stats.DemandMissSamples++
		}
		if w.ReturnTo != nil {
			w.ReturnTo.ReturnData(now, w)
		} else {
			c.pool.Put(w) // terminal: store RFO or prefetch waiter
		}
	}
	c.mshr.free(block)
	c.pool.Put(req) // the forwarded request this cache created
	return true
}

// install places a block into its set, evicting a victim if needed.
// It returns false when a dirty victim cannot be written back yet.
func (c *Cache) install(now int64, req *memsys.Request, prefetched bool, class memsys.PrefetchClass) bool {
	block := memsys.BlockNumber(req.Addr)
	set := int(block & c.setsMask)
	base := set * c.cfg.Ways
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].Valid {
			way = w
			break
		}
	}
	var evicted memsys.Addr
	evictedUnused := false
	victimValid, victimDirty := false, false
	if way < 0 {
		way = c.pol.Victim(set, req)
		victim := &c.lines[base+way]
		victimValid, victimDirty = true, victim.Dirty
		if victim.Dirty {
			wb := c.pool.Get()
			*wb = memsys.Request{
				Addr:   victim.Tag << memsys.BlockBits,
				Type:   memsys.Writeback,
				CoreID: req.CoreID,
				Born:   now,
			}
			if c.lower == nil || !c.lower.AddWrite(wb) {
				c.pool.Put(wb)
				return false
			}
			c.Stats.Writebacks++
		}
		if victim.Prefetched {
			c.Stats.UselessEvicted++
			evictedUnused = true
		}
		evicted = victim.Tag << memsys.BlockBits
	}
	c.lines[base+way] = Line{
		Tag:        block,
		Valid:      true,
		Dirty:      req.Type == memsys.RFO || req.Type == memsys.Writeback,
		Prefetched: prefetched,
		Class:      class,
	}
	c.pol.Fill(set, way, req)
	if c.aud != nil {
		c.aud.OnInstall(now, req.Addr, req.Type, prefetched, class,
			evicted, victimValid, victimDirty, evictedUnused)
	}
	if !c.pfNil {
		c.fillEv = prefetch.FillEvent{
			Addr:                  memsys.BlockAlign(req.Addr),
			VAddr:                 memsys.BlockAlign(req.VAddr),
			Set:                   set,
			Way:                   way,
			Prefetch:              prefetched,
			Class:                 class,
			Evicted:               evicted,
			EvictedUnusedPrefetch: evictedUnused,
		}
		c.pf.Fill(now, &c.fillEv)
	}
	return true
}

// handleWrite services a writeback from above: hit updates in place,
// miss allocates the block locally (write-allocate without fetch).
func (c *Cache) handleWrite(now int64, r *memsys.Request) bool {
	block := memsys.BlockNumber(r.Addr)
	set, way := c.lookup(block)
	if way >= 0 {
		c.count(memsys.Writeback, true)
		line := &c.lines[set*c.cfg.Ways+way]
		line.Dirty = true
		c.pol.Hit(set, way, r)
		if c.aud != nil {
			c.aud.OnAccess(now, r.Addr, memsys.Writeback, true, false, memsys.ClassNone)
		}
		c.pool.Put(r)
		return true
	}
	if !c.install(now, r, false, memsys.ClassNone) {
		return false
	}
	c.count(memsys.Writeback, false)
	if c.aud != nil {
		c.aud.OnAccess(now, r.Addr, memsys.Writeback, false, false, memsys.ClassNone)
	}
	c.pool.Put(r)
	return true
}

// Occupancy reports current queue and MSHR occupancy (testing).
func (c *Cache) Occupancy() (rq, wq, pq, mshr int) {
	return c.rq.len(), c.wq.len(), c.pq.len(), c.mshr.len()
}
