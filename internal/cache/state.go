package cache

import (
	"fmt"

	"ipcp/internal/repl"
)

// Snapshot/restore support. A cache is only captured at quiescence —
// empty request queues, no outstanding MSHR entries, no pending fills —
// so the capturable state is exactly the line array, the replacement
// policy's metadata and the counters.

// State captures a quiescent cache.
type State struct {
	Lines []Line
	Repl  repl.State
	Stats Stats
}

// Quiescent reports whether the cache holds no in-flight work.
func (c *Cache) Quiescent() bool {
	return c.rq.len() == 0 && c.wq.len() == 0 && c.pq.len() == 0 &&
		c.mshr.len() == 0 && c.fills.len() == 0
}

// CaptureState captures the cache. The cache must be quiescent.
func (c *Cache) CaptureState() (State, error) {
	if !c.Quiescent() {
		rq, wq, pq, mshr := c.Occupancy()
		return State{}, fmt.Errorf("cache %s: not quiescent (rq=%d wq=%d pq=%d mshr=%d fills=%d)",
			c.cfg.Name, rq, wq, pq, mshr, c.fills.len())
	}
	rs, err := repl.Save(c.pol)
	if err != nil {
		return State{}, fmt.Errorf("cache %s: %w", c.cfg.Name, err)
	}
	return State{
		Lines: append([]Line(nil), c.lines...),
		Repl:  rs,
		Stats: c.Stats,
	}, nil
}

// RestoreState overwrites a freshly constructed cache (same Config)
// with the captured state.
func (c *Cache) RestoreState(s State) error {
	if len(s.Lines) != len(c.lines) {
		return fmt.Errorf("cache %s: line-array geometry mismatch (%d vs %d)",
			c.cfg.Name, len(s.Lines), len(c.lines))
	}
	if err := repl.Restore(c.pol, s.Repl); err != nil {
		return fmt.Errorf("cache %s: %w", c.cfg.Name, err)
	}
	copy(c.lines, s.Lines)
	c.Stats = s.Stats
	c.rqBlocked = false
	return nil
}
