package cache

import "ipcp/internal/memsys"

// mshrEntry tracks one outstanding miss. All requests to the same block
// merge into a single entry; each keeps its own return path so the fill
// can answer every waiter.
type mshrEntry struct {
	block   uint64 // block number (addr >> BlockBits)
	waiters []*memsys.Request

	// issued is set once the miss has been forwarded to the lower
	// level; readyToIssue delays forwarding by the tag-lookup latency.
	issued       bool
	readyToIssue int64

	// prefetchOnly is true while every waiter is a prefetch; a demand
	// merging into such an entry is a "late prefetch".
	prefetchOnly bool
	// class is the prefetch class of the initiating prefetch (for
	// per-class fill attribution).
	class memsys.PrefetchClass
	// meta is the IPCP metadata of the initiating prefetch.
	meta uint16
	// fillLevel is the shallowest (closest-to-core) level the fill
	// must reach across all waiters.
	fillLevel memsys.Level
	// born is the cycle the entry was allocated (latency stats).
	born int64
}

// mshrTable is a fully associative miss-status holding register file.
// Iteration over entries is in allocation order so the simulation stays
// deterministic.
type mshrTable struct {
	byBlock map[uint64]*mshrEntry
	order   []*mshrEntry
	cap     int
}

func newMSHR(capacity int) *mshrTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &mshrTable{byBlock: make(map[uint64]*mshrEntry, capacity), cap: capacity}
}

func (m *mshrTable) find(block uint64) *mshrEntry { return m.byBlock[block] }

func (m *mshrTable) full() bool { return len(m.order) >= m.cap }

func (m *mshrTable) len() int { return len(m.order) }

// alloc inserts a new entry; the caller must have checked full().
func (m *mshrTable) alloc(e *mshrEntry) {
	m.byBlock[e.block] = e
	m.order = append(m.order, e)
}

func (m *mshrTable) free(block uint64) {
	e, ok := m.byBlock[block]
	if !ok {
		return
	}
	delete(m.byBlock, block)
	for i, x := range m.order {
		if x == e {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// unissued invokes f for every entry not yet forwarded downward, in
// allocation order.
func (m *mshrTable) unissued(f func(*mshrEntry)) {
	for _, e := range m.order {
		if !e.issued {
			f(e)
		}
	}
}
