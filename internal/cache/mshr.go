package cache

import "ipcp/internal/memsys"

// mshrEntry tracks one outstanding miss. All requests to the same block
// merge into a single entry; each keeps its own return path so the fill
// can answer every waiter.
type mshrEntry struct {
	block   uint64 // block number (addr >> BlockBits)
	waiters []*memsys.Request

	// live marks the slot occupied (entries are embedded by value in
	// the fixed table, so there is no nil to test).
	live bool

	// issued is set once the miss has been forwarded to the lower
	// level; readyToIssue delays forwarding by the tag-lookup latency.
	issued       bool
	readyToIssue int64

	// prefetchOnly is true while every waiter is a prefetch; a demand
	// merging into such an entry is a "late prefetch".
	prefetchOnly bool
	// class is the prefetch class of the initiating prefetch (for
	// per-class fill attribution).
	class memsys.PrefetchClass
	// meta is the IPCP metadata of the initiating prefetch.
	meta uint16
	// fillLevel is the shallowest (closest-to-core) level the fill
	// must reach across all waiters.
	fillLevel memsys.Level
	// born is the cycle the entry was allocated (latency stats).
	born int64
}

// mshrTable is a fully associative miss-status holding register file.
// Entries are embedded by value in a table sized to the configured MSHR
// count: lookups are a linear scan (hardware MSHRs are this small — 8
// to 32 entries — and the scan beats a map's hashing and per-entry
// allocation on the simulator's hottest path). Iteration over entries
// is in allocation order so the simulation stays deterministic, and a
// freed entry's waiters backing array is kept for its slot's next
// occupant.
type mshrTable struct {
	entries []mshrEntry
	// order lists occupied slot indices in allocation order.
	order []int
	count int
	// pendingIssue counts live entries not yet forwarded downward; the
	// per-cycle unissued/nextIssue scans short-circuit when it is zero
	// (the common steady state: every outstanding miss already issued
	// and waiting for its fill).
	pendingIssue int
}

func newMSHR(capacity int) *mshrTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &mshrTable{
		entries: make([]mshrEntry, capacity),
		order:   make([]int, 0, capacity),
	}
}

func (m *mshrTable) find(block uint64) *mshrEntry {
	for _, slot := range m.order {
		if e := &m.entries[slot]; e.block == block {
			return e
		}
	}
	return nil
}

func (m *mshrTable) full() bool { return m.count >= len(m.entries) }

func (m *mshrTable) len() int { return m.count }

// alloc claims a free slot and returns it; the caller must have checked
// full() and must set every field except waiters, which comes back
// emptied with its backing array intact — append to it rather than
// assigning a fresh slice.
func (m *mshrTable) alloc() *mshrEntry {
	for i := range m.entries {
		if e := &m.entries[i]; !e.live {
			w := e.waiters[:0]
			*e = mshrEntry{live: true, waiters: w}
			m.order = append(m.order, i)
			m.count++
			m.pendingIssue++
			return e
		}
	}
	return nil // unreachable when the caller honours full()
}

// markIssued flags e as forwarded; always use this instead of setting
// e.issued directly so the pendingIssue count stays exact.
func (m *mshrTable) markIssued(e *mshrEntry) {
	e.issued = true
	m.pendingIssue--
}

func (m *mshrTable) free(block uint64) {
	for i := range m.entries {
		e := &m.entries[i]
		if !e.live || e.block != block {
			continue
		}
		if !e.issued {
			m.pendingIssue--
		}
		// Drop request references (they recycle through the pool) but
		// keep the backing array for the slot's next occupant.
		for j := range e.waiters {
			e.waiters[j] = nil
		}
		e.waiters = e.waiters[:0]
		e.live = false
		for j, slot := range m.order {
			if slot == i {
				m.order = append(m.order[:j], m.order[j+1:]...)
				break
			}
		}
		m.count--
		return
	}
}

// unissued invokes f for every entry not yet forwarded downward, in
// allocation order.
func (m *mshrTable) unissued(f func(*mshrEntry)) {
	if m.pendingIssue == 0 {
		return
	}
	for _, slot := range m.order {
		if e := &m.entries[slot]; !e.issued {
			f(e)
		}
	}
}

// nextIssue reports the earliest readyToIssue among unissued entries
// and whether one exists (the cache's next-event bound).
func (m *mshrTable) nextIssue() (int64, bool) {
	if m.pendingIssue == 0 {
		return 0, false
	}
	var t int64
	found := false
	for _, slot := range m.order {
		e := &m.entries[slot]
		if e.issued {
			continue
		}
		if !found || e.readyToIssue < t {
			t = e.readyToIssue
			found = true
		}
	}
	return t, found
}
