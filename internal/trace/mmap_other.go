//go:build !unix

package trace

import "os"

// mmapFile is unavailable on this platform; OpenBinary falls back to
// plain ReaderAt access.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, nil
}
