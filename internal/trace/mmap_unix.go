//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps f read-only. Returns (nil, nil) when mapping is
// unsupported for this file (e.g. an empty file); the caller falls back
// to ReaderAt access.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Not all filesystems support mmap; treat as "unavailable"
		// rather than an error and let the caller fall back.
		return nil, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
