package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// genInstrs produces a deterministic pseudo-random instruction mix that
// exercises every field and flag combination.
func genInstrs(n int, seed int64) []Instr {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Instr, n)
	for i := range out {
		in := &out[i]
		in.IP = 0x400000 + uint64(rng.Intn(1<<20))*4
		switch rng.Intn(4) {
		case 0:
			in.Loads[0] = rng.Uint64()
			in.DepPrev = rng.Intn(2) == 0
		case 1:
			in.Loads[0] = rng.Uint64()
			in.Loads[1] = rng.Uint64()
		case 2:
			in.Stores[0] = rng.Uint64()
		case 3:
			in.IsBranch = true
			in.Taken = rng.Intn(2) == 0
			in.Target = 0x400000 + uint64(rng.Intn(1<<20))*4
		}
	}
	return out
}

// writeBinary serializes instrs into an in-memory binary image.
func writeBinary(t *testing.T, instrs []Instr) []byte {
	t.Helper()
	var ws memWriteSeeker
	bw, err := NewBinaryWriter(&ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := bw.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return ws.buf
}

// drainBinary reads every record through a fresh cursor.
func drainBinary(t *testing.T, b *Binary) []Instr {
	t.Helper()
	s := b.Stream()
	var out []Instr
	var in Instr
	for s.Next(&in) {
		out = append(out, in)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return out
}

func equalInstrs(a, b []Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBinaryRoundTrip spans multiple CRC blocks (n > blockRecords) and
// demands exact record identity plus a clean looping Reset.
func TestBinaryRoundTrip(t *testing.T) {
	instrs := genInstrs(3*binBlockRecords/2, 42)
	buf := writeBinary(t, instrs)
	b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != uint64(len(instrs)) {
		t.Fatalf("count = %d, want %d", b.Count(), len(instrs))
	}
	got := drainBinary(t, b)
	if !equalInstrs(got, instrs) {
		t.Fatal("binary round trip altered records")
	}

	// Reset replays from the top, like the simulator's looping streams.
	s := b.Stream()
	var in Instr
	for s.Next(&in) {
	}
	s.Reset()
	if !s.Next(&in) || in != instrs[0] {
		t.Fatal("Reset did not replay from record 0")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryEmpty round-trips a zero-record trace.
func TestBinaryEmpty(t *testing.T) {
	buf := writeBinary(t, nil)
	if len(buf) != binHeaderSize {
		t.Fatalf("empty trace is %d bytes, want %d", len(buf), binHeaderSize)
	}
	b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if s := b.Stream(); s.Next(&in) || s.Err() != nil {
		t.Fatal("empty trace yielded a record or an error")
	}
}

// TestBinaryTruncated chops the image at several points; every cut must
// surface ErrCorrupt at open (the size never matches the header's
// declared layout).
func TestBinaryTruncated(t *testing.T) {
	buf := writeBinary(t, genInstrs(100, 7))
	for _, cut := range []int{len(buf) - 1, len(buf) - 4, binHeaderSize + 10, binHeaderSize, 40, 8, 0} {
		if _, err := NewBinary(bytes.NewReader(buf[:cut]), int64(cut)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestBinaryBitFlips damages each structural region in turn and demands
// ErrCorrupt — from open for header damage, from the cursor for record
// or trailer damage.
func TestBinaryBitFlips(t *testing.T) {
	pristine := writeBinary(t, genInstrs(binBlockRecords+100, 9))
	recEnd := binHeaderSize + (binBlockRecords+100)*binRecordSize

	flip := func(off int) []byte {
		buf := append([]byte(nil), pristine...)
		buf[off] ^= 0x01
		return buf
	}

	t.Run("magic", func(t *testing.T) {
		buf := flip(0)
		if _, err := NewBinary(bytes.NewReader(buf), int64(len(buf))); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("header", func(t *testing.T) {
		for _, off := range []int{8, 16, 20, 24, 56} { // count, recordSize, blockRecords, sourceHash, headerCRC
			buf := flip(off)
			if _, err := NewBinary(bytes.NewReader(buf), int64(len(buf))); !errors.Is(err, ErrCorrupt) {
				t.Errorf("flip at %d: got %v, want ErrCorrupt", off, err)
			}
		}
	})
	t.Run("record", func(t *testing.T) {
		// One flip in each CRC block; caught lazily by the cursor.
		for _, off := range []int{binHeaderSize + 5, binHeaderSize + binBlockRecords*binRecordSize + 5} {
			buf := flip(off)
			b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
			if err != nil {
				t.Fatalf("flip at %d rejected at open: %v", off, err)
			}
			s := b.Stream()
			var in Instr
			for s.Next(&in) {
			}
			if err := s.Err(); !errors.Is(err, ErrCorrupt) {
				t.Errorf("flip at %d: cursor error %v, want ErrCorrupt", off, err)
			}
		}
	})
	t.Run("trailer", func(t *testing.T) {
		buf := flip(recEnd + 1)
		b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
		if err != nil {
			t.Fatalf("trailer flip rejected at open: %v", err)
		}
		if err := b.Verify(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Verify: got %v, want ErrCorrupt", err)
		}
	})
	t.Run("reserved-flags", func(t *testing.T) {
		// Set a reserved flag bit and forge the block CRC so only the
		// record-level validation can catch it.
		buf := append([]byte(nil), pristine...)
		buf[binHeaderSize+40] |= 0x80
		blockLen := binBlockRecords * binRecordSize
		crc := crc32.Checksum(buf[binHeaderSize:binHeaderSize+blockLen], binCRCTable)
		binary.LittleEndian.PutUint32(buf[recEnd:], crc)
		b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
		if err != nil {
			t.Fatal(err)
		}
		s := b.Stream()
		var in Instr
		if s.Next(&in) {
			t.Fatal("record with reserved flag bits decoded")
		}
		if err := s.Err(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestBinaryConcurrentCursors runs many cursors over one shared Binary;
// under -race this fails if cursors share mutable state, and each
// cursor must still see the exact record sequence.
func TestBinaryConcurrentCursors(t *testing.T) {
	instrs := genInstrs(2*binBlockRecords+17, 11)
	buf := writeBinary(t, instrs)
	b, err := NewBinary(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		t.Fatal(err)
	}
	const cursors = 8
	var wg sync.WaitGroup
	errs := make([]error, cursors)
	for c := 0; c < cursors; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := b.Stream()
			var in Instr
			for i := 0; s.Next(&in); i++ {
				if in != instrs[i] {
					errs[c] = errors.New("record mismatch")
					return
				}
			}
			errs[c] = s.Err()
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("cursor %d: %v", c, err)
		}
	}
}

// writeV1File writes instrs to path in the v1 format.
func writeV1File(t *testing.T, path string, instrs []Instr) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenAutoDetect pins Open's magic routing: a binary file opens
// directly, a v1 file converts through a sidecar, garbage is rejected.
func TestOpenAutoDetect(t *testing.T) {
	dir := t.TempDir()
	instrs := genInstrs(500, 3)

	binPath := filepath.Join(dir, "direct.trb")
	if err := os.WriteFile(binPath, writeBinary(t, instrs), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !equalInstrs(drainBinary(t, b), instrs) {
		t.Fatal("binary open altered records")
	}

	v1Path := filepath.Join(dir, "src.trc")
	writeV1File(t, v1Path, instrs)
	v, err := Open(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if !equalInstrs(drainBinary(t, v), instrs) {
		t.Fatal("v1 open via sidecar altered records")
	}
	if _, err := os.Stat(v1Path + ".bin"); err != nil {
		t.Fatalf("sidecar not created: %v", err)
	}

	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("NOTATRACE-------"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage open: got %v, want ErrBadMagic", err)
	}
}

// TestOpenSidecarInvalidation proves the sidecar is keyed on the source
// hash: reusing a fresh sidecar, rebuilding a stale one.
func TestOpenSidecarInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trc")
	sidecar := path + ".bin"

	first := genInstrs(300, 21)
	writeV1File(t, path, first)
	b1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	hash1 := b1.SourceHash()
	b1.Close()

	// A second open must reuse the sidecar byte for byte.
	before, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if b2.SourceHash() != hash1 {
		t.Fatal("reopen changed source hash")
	}
	b2.Close()
	after, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("clean reopen rewrote the sidecar")
	}

	// Changing the source must rebuild it.
	second := genInstrs(301, 22)
	writeV1File(t, path, second)
	b3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	if b3.SourceHash() == hash1 {
		t.Fatal("stale sidecar was trusted after the source changed")
	}
	if !equalInstrs(drainBinary(t, b3), second) {
		t.Fatal("rebuilt sidecar has wrong records")
	}

	// A corrupt sidecar (right hash position, damaged records) must also
	// be rebuilt rather than trusted.
	sc, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	sc[len(sc)-1] ^= 0xff
	if err := os.WriteFile(sidecar, sc, 0o644); err != nil {
		t.Fatal(err)
	}
	b4, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b4.Close()
	if !equalInstrs(drainBinary(t, b4), second) {
		t.Fatal("corrupt sidecar produced wrong records")
	}
}

// TestOpenSidecarUnwritable blocks the sidecar path (a directory is
// squatting on it) and demands the in-memory conversion fallback.
func TestOpenSidecarUnwritable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trc")
	instrs := genInstrs(200, 5)
	writeV1File(t, path, instrs)
	if err := os.MkdirAll(path+".bin/block", 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !equalInstrs(drainBinary(t, b), instrs) {
		t.Fatal("in-memory fallback altered records")
	}
}

// TestOpenCorruptV1Source must refuse to build a sidecar from a damaged
// source rather than caching the damage.
func TestOpenCorruptV1Source(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trc")
	writeV1File(t, path, genInstrs(100, 6))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record while keeping the declared count.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path + ".bin"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("a sidecar was cached for a corrupt source")
	}
}
