package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader throws arbitrary bytes at the reader. Two invariants:
//
//  1. The reader never panics and never allocates proportionally to a
//     corrupt header's claims — any damage surfaces as an error.
//  2. Whatever parses cleanly must survive a write→read round trip
//     byte-identically (modulo the zero-target normalization the format
//     performs on non-branch records).
func FuzzReader(f *testing.F) {
	// Seed corpus: an empty trace, a small valid trace, a truncated
	// trace, a reserved-flags record, and a lying header.
	empty := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Flush()
		return buf.Bytes()
	}()
	valid := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, in := range []Instr{
			{IP: 0x400000, Loads: [MaxLoads]uint64{0x10000}},
			{IP: 0x400004, IsBranch: true, Taken: true, Target: 0x400000},
			{IP: 0x400008, Stores: [MaxStores]uint64{0x20000}, DepPrev: true},
		} {
			in := in
			w.Write(&in)
		}
		w.Flush()
		return buf.Bytes()
	}()
	f.Add([]byte{})
	f.Add(empty)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	corruptFlags := bytes.Clone(valid)
	corruptFlags[16] |= flagsReserved
	f.Add(corruptFlags)
	lyingHeader := bytes.Clone(empty)
	lyingHeader[8] = 0xff
	lyingHeader[15] = 0xff
	f.Add(lyingHeader)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var parsed []Instr
		for {
			var in Instr
			if err := r.Read(&in); err != nil {
				if errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
					break
				}
				return // damaged input, correctly rejected
			}
			parsed = append(parsed, in)
			if len(parsed) > 1<<16 {
				return // enough; bound fuzz iteration time
			}
		}

		// Round trip: re-serialize and re-read; must match exactly.
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parsed {
			// Normalize what the format cannot represent: Write derives
			// the flags from the fields, and a zero target is dropped.
			if err := w.Write(&parsed[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		for i := range parsed {
			var got Instr
			if err := r2.Read(&got); err != nil {
				t.Fatalf("re-read record %d: %v", i, err)
			}
			if got != parsed[i] {
				t.Fatalf("round trip record %d: got %+v want %+v", i, got, parsed[i])
			}
		}
		var extra Instr
		if err := r2.Read(&extra); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after %d records, got %v", len(parsed), err)
		}
	})
}
