package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader throws arbitrary bytes at both trace readers, routing by
// magic like Open does. Two invariants:
//
//  1. Neither reader panics or allocates proportionally to a corrupt
//     header's claims — any damage surfaces as an error.
//  2. Whatever parses cleanly must survive a write→read round trip
//     byte-identically (modulo the zero-target normalization the v1
//     format performs on non-branch records).
func FuzzReader(f *testing.F) {
	// Seed corpus: an empty trace, a small valid trace, a truncated
	// trace, a reserved-flags record, and a lying header.
	empty := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Flush()
		return buf.Bytes()
	}()
	valid := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, in := range []Instr{
			{IP: 0x400000, Loads: [MaxLoads]uint64{0x10000}},
			{IP: 0x400004, IsBranch: true, Taken: true, Target: 0x400000},
			{IP: 0x400008, Stores: [MaxStores]uint64{0x20000}, DepPrev: true},
		} {
			in := in
			w.Write(&in)
		}
		w.Flush()
		return buf.Bytes()
	}()
	f.Add([]byte{})
	f.Add(empty)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	corruptFlags := bytes.Clone(valid)
	corruptFlags[16] |= flagsReserved
	f.Add(corruptFlags)
	lyingHeader := bytes.Clone(empty)
	lyingHeader[8] = 0xff
	lyingHeader[15] = 0xff
	f.Add(lyingHeader)

	// Binary (IPCPTRB2) seeds: empty, valid, truncated, flipped record
	// byte, flipped trailer byte, lying count.
	binInstrs := []Instr{
		{IP: 0x400000, Loads: [MaxLoads]uint64{0x10000}},
		{IP: 0x400004, IsBranch: true, Taken: true, Target: 0x400000},
		{IP: 0x400008, Stores: [MaxStores]uint64{0x20000}, DepPrev: true},
	}
	binValid := func() []byte {
		var ws memWriteSeeker
		w, _ := NewBinaryWriter(&ws)
		for i := range binInstrs {
			w.Write(&binInstrs[i])
		}
		w.Close()
		return ws.buf
	}()
	binEmpty := func() []byte {
		var ws memWriteSeeker
		w, _ := NewBinaryWriter(&ws)
		w.Close()
		return ws.buf
	}()
	f.Add(binEmpty)
	f.Add(binValid)
	f.Add(binValid[:len(binValid)-3])
	binFlipRec := bytes.Clone(binValid)
	binFlipRec[binHeaderSize+4] ^= 0xff
	f.Add(binFlipRec)
	binFlipTrailer := bytes.Clone(binValid)
	binFlipTrailer[len(binFlipTrailer)-1] ^= 0xff
	f.Add(binFlipTrailer)
	binLying := bytes.Clone(binValid)
	binLying[8] = 0xff
	f.Add(binLying)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 8 && [8]byte(data[:8]) == magic2 {
			fuzzBinary(t, data)
			return
		}
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var parsed []Instr
		for {
			var in Instr
			if err := r.Read(&in); err != nil {
				if errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
					break
				}
				return // damaged input, correctly rejected
			}
			parsed = append(parsed, in)
			if len(parsed) > 1<<16 {
				return // enough; bound fuzz iteration time
			}
		}

		// Round trip: re-serialize and re-read; must match exactly.
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range parsed {
			// Normalize what the format cannot represent: Write derives
			// the flags from the fields, and a zero target is dropped.
			if err := w.Write(&parsed[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		for i := range parsed {
			var got Instr
			if err := r2.Read(&got); err != nil {
				t.Fatalf("re-read record %d: %v", i, err)
			}
			if got != parsed[i] {
				t.Fatalf("round trip record %d: got %+v want %+v", i, got, parsed[i])
			}
		}
		var extra Instr
		if err := r2.Read(&extra); !errors.Is(err, io.EOF) {
			t.Fatalf("expected EOF after %d records, got %v", len(parsed), err)
		}
	})
}

// fuzzBinary is FuzzReader's harness for IPCPTRB2 inputs: open, drain a
// cursor, and round-trip whatever parsed cleanly. The binary format is
// exact — no normalization — so the round trip must be byte-identical.
func fuzzBinary(t *testing.T, data []byte) {
	b, err := NewBinary(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return // damaged input, correctly rejected
	}
	s := b.Stream()
	var parsed []Instr
	var in Instr
	for s.Next(&in) {
		parsed = append(parsed, in)
		if len(parsed) > 1<<16 {
			return // enough; bound fuzz iteration time
		}
	}
	if s.Err() != nil {
		return // corrupt block or record, correctly rejected
	}
	if uint64(len(parsed)) != b.Count() {
		t.Fatalf("clean cursor read %d records of a declared %d", len(parsed), b.Count())
	}

	var ws memWriteSeeker
	w, err := NewBinaryWriter(&ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parsed {
		if err := w.Write(&parsed[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewBinary(bytes.NewReader(ws.buf), int64(len(ws.buf)))
	if err != nil {
		t.Fatalf("re-reading own output: %v", err)
	}
	s2 := b2.Stream()
	for i := range parsed {
		var got Instr
		if !s2.Next(&got) {
			t.Fatalf("re-read stopped at record %d: %v", i, s2.Err())
		}
		if got != parsed[i] {
			t.Fatalf("round trip record %d: got %+v want %+v", i, got, parsed[i])
		}
	}
	if s2.Next(&in) {
		t.Fatalf("extra record after %d", len(parsed))
	}
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
}
