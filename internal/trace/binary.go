package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"
)

// --- Pre-decoded binary format (version 2) -------------------------------
//
// The v1 format (IPCPTRC1) optimizes for size: variable-width records
// whose flag byte says which operands follow. Replaying it costs a
// branch-heavy decode per instruction. This format optimizes for replay:
// fixed-width 48-byte records that memory-map cleanly and decode with
// five unconditional loads, so measure-phase replay does no tokenizing
// at all and record i lives at a computable offset.
//
// Layout (all integers little-endian):
//
//	offset  0: magic "IPCPTRB2" (8 bytes)
//	offset  8: count       uint64 — number of records
//	offset 16: recordSize  uint32 — 48 (self-describing for evolution)
//	offset 20: blockRecords uint32 — records per CRC block (4096)
//	offset 24: sourceHash  [32]byte — SHA-256 of the source trace this
//	           file was derived from (zero when written directly); the
//	           .bin sidecar cache keys its validity on this field
//	offset 56: headerCRC   uint32 — CRC-32C of bytes [0,56)
//	offset 60: pad         uint32 — zero
//	offset 64: count × 48-byte records
//	then:      ceil(count/blockRecords) × uint32 — CRC-32C per block of
//	           record bytes (the last block covers the remainder)
//
// Record (48 bytes): IP, Loads[0], Loads[1], Stores[0], Target as
// uint64, then a flags byte (bit0 IsBranch, bit1 Taken, bit2 DepPrev;
// the rest reserved and zero), then 7 zero pad bytes.
//
// Integrity: the header is covered by its own CRC; record blocks are
// verified lazily — the first cursor to touch a block checks its CRC
// and publishes the result in a shared atomic bitset, so a trace opened
// by many concurrent forks pays each block's verification once. Any
// damage (bad magic, size mismatch, CRC failure, reserved bits) wraps
// ErrCorrupt.

var magic2 = [8]byte{'I', 'P', 'C', 'P', 'T', 'R', 'B', '2'}

const (
	binHeaderSize   = 64
	binRecordSize   = 48
	binBlockRecords = 4096

	binFlagBranch  = 1 << 0
	binFlagTaken   = 1 << 1
	binFlagDepPrev = 1 << 2
	binFlagsUnused = ^byte(binFlagBranch | binFlagTaken | binFlagDepPrev)
)

// binCRCTable is the Castagnoli table (matching the checkpoint store's
// framing; hardware-accelerated on every platform Go targets).
var binCRCTable = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord serializes in into dst (len >= binRecordSize).
func encodeRecord(dst []byte, in *Instr) {
	binary.LittleEndian.PutUint64(dst[0:], in.IP)
	binary.LittleEndian.PutUint64(dst[8:], in.Loads[0])
	binary.LittleEndian.PutUint64(dst[16:], in.Loads[1])
	binary.LittleEndian.PutUint64(dst[24:], in.Stores[0])
	binary.LittleEndian.PutUint64(dst[32:], in.Target)
	var flags byte
	if in.IsBranch {
		flags |= binFlagBranch
	}
	if in.Taken {
		flags |= binFlagTaken
	}
	if in.DepPrev {
		flags |= binFlagDepPrev
	}
	dst[40] = flags
	for i := 41; i < binRecordSize; i++ {
		dst[i] = 0
	}
}

// decodeRecord deserializes src (len >= binRecordSize) into in. It
// reports whether the record is well-formed (no reserved bits set).
func decodeRecord(src []byte, in *Instr) bool {
	flags := src[40]
	if flags&binFlagsUnused != 0 {
		return false
	}
	in.IP = binary.LittleEndian.Uint64(src[0:])
	in.Loads[0] = binary.LittleEndian.Uint64(src[8:])
	in.Loads[1] = binary.LittleEndian.Uint64(src[16:])
	in.Stores[0] = binary.LittleEndian.Uint64(src[24:])
	in.Target = binary.LittleEndian.Uint64(src[32:])
	in.IsBranch = flags&binFlagBranch != 0
	in.Taken = flags&binFlagTaken != 0
	in.DepPrev = flags&binFlagDepPrev != 0
	return true
}

// --- writer ---------------------------------------------------------------

// BinaryWriter emits the pre-decoded format. It needs an io.WriteSeeker
// because the header (count, source hash) is patched at Close.
type BinaryWriter struct {
	ws     io.WriteSeeker
	block  []byte
	crcs   []uint32
	count  uint64
	srcSHA [32]byte
	closed bool
}

// NewBinaryWriter writes a placeholder header and returns a writer.
func NewBinaryWriter(ws io.WriteSeeker) (*BinaryWriter, error) {
	var hdr [binHeaderSize]byte
	if _, err := ws.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &BinaryWriter{
		ws:    ws,
		block: make([]byte, 0, binBlockRecords*binRecordSize),
	}, nil
}

// SetSourceHash records the SHA-256 of the source trace this file is
// derived from (the sidecar invalidation key). Call any time before
// Close; the zero hash means "no source".
func (w *BinaryWriter) SetSourceHash(h [32]byte) { w.srcSHA = h }

// Count returns the number of records written so far.
func (w *BinaryWriter) Count() uint64 { return w.count }

// Write appends one record.
func (w *BinaryWriter) Write(in *Instr) error {
	if w.closed {
		return fmt.Errorf("trace: write on closed BinaryWriter")
	}
	off := len(w.block)
	w.block = w.block[:off+binRecordSize]
	encodeRecord(w.block[off:], in)
	w.count++
	if len(w.block) == cap(w.block) {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	return nil
}

func (w *BinaryWriter) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	w.crcs = append(w.crcs, crc32.Checksum(w.block, binCRCTable))
	if _, err := w.ws.Write(w.block); err != nil {
		return err
	}
	w.block = w.block[:0]
	return nil
}

// Close flushes the last block, writes the CRC trailer, and patches the
// final header. It does not close the underlying file.
func (w *BinaryWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushBlock(); err != nil {
		return err
	}
	trailer := make([]byte, 4*len(w.crcs))
	for i, c := range w.crcs {
		binary.LittleEndian.PutUint32(trailer[4*i:], c)
	}
	if _, err := w.ws.Write(trailer); err != nil {
		return err
	}
	if _, err := w.ws.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [binHeaderSize]byte
	copy(hdr[0:], magic2[:])
	binary.LittleEndian.PutUint64(hdr[8:], w.count)
	binary.LittleEndian.PutUint32(hdr[16:], binRecordSize)
	binary.LittleEndian.PutUint32(hdr[20:], binBlockRecords)
	copy(hdr[24:], w.srcSHA[:])
	binary.LittleEndian.PutUint32(hdr[56:], crc32.Checksum(hdr[:56], binCRCTable))
	if _, err := w.ws.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(0, io.SeekEnd)
	return err
}

// --- reader ---------------------------------------------------------------

// Binary is an opened pre-decoded trace, shareable across any number of
// concurrent cursors (Stream() hands out independent ones). Backed
// either by a memory mapping (zero-copy) or a plain io.ReaderAt.
type Binary struct {
	ra     io.ReaderAt
	mapped []byte // non-nil: zero-copy mapping of the whole file
	count  uint64
	blkRec uint32
	crcs   []uint32
	// verified is an atomic bitset, one bit per block: set once the
	// block's CRC has been checked, so concurrent cursors verify each
	// block exactly once between them (duplicated checks are benign).
	verified []uint32
	srcSHA   [32]byte
	closers  []func() error
}

// NewBinary validates the header and trailer of a pre-decoded trace
// held behind ra (size is the total byte length) and returns a Binary.
// Record blocks are verified lazily as cursors touch them.
func NewBinary(ra io.ReaderAt, size int64) (*Binary, error) {
	var hdr [binHeaderSize]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading binary header: %w: %v", ErrCorrupt, err)
	}
	if [8]byte(hdr[:8]) != magic2 {
		return nil, ErrBadMagic
	}
	if got, want := binary.LittleEndian.Uint32(hdr[56:]), crc32.Checksum(hdr[:56], binCRCTable); got != want {
		return nil, fmt.Errorf("trace: binary header CRC mismatch (%08x != %08x): %w", got, want, ErrCorrupt)
	}
	recSize := binary.LittleEndian.Uint32(hdr[16:])
	blkRec := binary.LittleEndian.Uint32(hdr[20:])
	if recSize != binRecordSize || blkRec == 0 {
		return nil, fmt.Errorf("trace: unsupported binary geometry (record=%d block=%d): %w", recSize, blkRec, ErrCorrupt)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	if size < binHeaderSize || count > uint64(size-binHeaderSize)/binRecordSize {
		return nil, fmt.Errorf("trace: binary count %d exceeds file size %d: %w", count, size, ErrCorrupt)
	}
	nBlocks := (count + uint64(blkRec) - 1) / uint64(blkRec)
	expect := binHeaderSize + int64(count)*binRecordSize + int64(nBlocks)*4
	if expect != size {
		return nil, fmt.Errorf("trace: binary size mismatch (declared layout %d bytes, file %d): %w", expect, size, ErrCorrupt)
	}
	b := &Binary{
		ra:       ra,
		count:    count,
		blkRec:   blkRec,
		crcs:     make([]uint32, nBlocks),
		verified: make([]uint32, (nBlocks+31)/32),
	}
	copy(b.srcSHA[:], hdr[24:56])
	trailer := make([]byte, 4*nBlocks)
	if nBlocks > 0 {
		if _, err := ra.ReadAt(trailer, binHeaderSize+int64(count)*binRecordSize); err != nil {
			return nil, fmt.Errorf("trace: reading binary CRC trailer: %w: %v", ErrCorrupt, err)
		}
	}
	for i := range b.crcs {
		b.crcs[i] = binary.LittleEndian.Uint32(trailer[4*i:])
	}
	if c, ok := ra.(io.Closer); ok {
		b.closers = append(b.closers, c.Close)
	}
	return b, nil
}

// Count returns the record count.
func (b *Binary) Count() uint64 { return b.count }

// SourceHash returns the header's source-trace SHA-256 (zero when the
// file was written directly from a generator).
func (b *Binary) SourceHash() [32]byte { return b.srcSHA }

// Close releases the mapping / underlying file. Cursors must not be
// used afterwards.
func (b *Binary) Close() error {
	var first error
	for _, c := range b.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	b.closers = nil
	return first
}

// blockChecked reports whether block i has already been verified.
func (b *Binary) blockChecked(i uint64) bool {
	return atomic.LoadUint32(&b.verified[i/32])&(1<<(i%32)) != 0
}

// markChecked publishes block i as verified.
func (b *Binary) markChecked(i uint64) {
	word := &b.verified[i/32]
	for {
		old := atomic.LoadUint32(word)
		if old&(1<<(i%32)) != 0 || atomic.CompareAndSwapUint32(word, old, old|1<<(i%32)) {
			return
		}
	}
}

// blockExtent returns block i's byte offset and length.
func (b *Binary) blockExtent(i uint64) (off int64, n int) {
	off = binHeaderSize + int64(i)*int64(b.blkRec)*binRecordSize
	recs := uint64(b.blkRec)
	if rem := b.count - i*uint64(b.blkRec); rem < recs {
		recs = rem
	}
	return off, int(recs) * binRecordSize
}

// loadBlock returns block i's bytes, verifying its CRC the first time
// any cursor touches it. buf is the cursor's scratch (used only on the
// ReaderAt path; the mmap path returns a sub-slice of the mapping).
func (b *Binary) loadBlock(i uint64, buf []byte) ([]byte, error) {
	off, n := b.blockExtent(i)
	var data []byte
	if b.mapped != nil {
		data = b.mapped[off : off+int64(n)]
	} else {
		data = buf[:n]
		if _, err := b.ra.ReadAt(data, off); err != nil {
			return nil, fmt.Errorf("trace: reading binary block %d: %w: %v", i, ErrCorrupt, err)
		}
	}
	if !b.blockChecked(i) {
		if got := crc32.Checksum(data, binCRCTable); got != b.crcs[i] {
			return nil, fmt.Errorf("trace: binary block %d CRC mismatch (%08x != %08x) at byte %d: %w",
				i, got, b.crcs[i], off, ErrCorrupt)
		}
		b.markChecked(i)
	}
	return data, nil
}

// Verify eagerly checks every block (tools and tests; cursors normally
// verify lazily).
func (b *Binary) Verify() error {
	buf := make([]byte, int(b.blkRec)*binRecordSize)
	for i := uint64(0); i < uint64(len(b.crcs)); i++ {
		if _, err := b.loadBlock(i, buf); err != nil {
			return err
		}
	}
	return nil
}

// Stream returns a fresh independent cursor positioned at record 0.
// Cursors are not safe for concurrent use individually, but any number
// may read the same Binary concurrently.
func (b *Binary) Stream() *BinaryStream {
	s := &BinaryStream{b: b, blockIdx: math.MaxUint64}
	if b.mapped == nil {
		s.buf = make([]byte, int(b.blkRec)*binRecordSize)
	}
	return s
}

// BinaryStream is one cursor over a Binary. It implements Stream: Next
// returns false at end of trace (callers Reset to replay, exactly like
// the simulator's cores do) and false-with-sticky-error on corruption,
// distinguishable via Err.
type BinaryStream struct {
	b        *Binary
	pos      uint64
	blockIdx uint64 // currently loaded block (MaxUint64: none)
	block    []byte
	buf      []byte
	err      error
}

// Next implements Stream.
func (s *BinaryStream) Next(in *Instr) bool {
	if s.err != nil || s.pos >= s.b.count {
		return false
	}
	blk := s.pos / uint64(s.b.blkRec)
	if blk != s.blockIdx {
		data, err := s.b.loadBlock(blk, s.buf)
		if err != nil {
			s.err = err
			return false
		}
		s.block = data
		s.blockIdx = blk
	}
	off := int(s.pos%uint64(s.b.blkRec)) * binRecordSize
	if !decodeRecord(s.block[off:off+binRecordSize], in) {
		s.err = fmt.Errorf("trace: binary record %d has reserved flag bits: %w", s.pos, ErrCorrupt)
		return false
	}
	s.pos++
	return true
}

// Reset implements Stream. A corruption error is sticky across Reset —
// a damaged trace must not silently replay as a shorter loop.
func (s *BinaryStream) Reset() {
	s.pos = 0
	s.blockIdx = math.MaxUint64
}

// Err returns the sticky corruption/IO error, nil after clean EOF.
func (s *BinaryStream) Err() error { return s.err }
