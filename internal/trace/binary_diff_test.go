package trace_test

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// TestBinaryDifferentialFullSuite is the zero-parse equivalence golden:
// for every registered workload, a trace serialized in the v1 format
// and replayed through the binary sidecar must yield exactly the
// records the v1 reader yields — same values, same count, same order.
func TestBinaryDifferentialFullSuite(t *testing.T) {
	const n = 5000
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			path := filepath.Join(dir, spec.Name+".trc")

			instrs := trace.Collect(spec.New(1), n)
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			w, err := trace.NewWriter(f)
			if err != nil {
				t.Fatal(err)
			}
			for i := range instrs {
				if err := w.Write(&instrs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// Reference: the v1 reader's view of the file.
			rf, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer rf.Close()
			r, err := trace.NewReader(bufio.NewReader(rf))
			if err != nil {
				t.Fatal(err)
			}
			var ref []trace.Instr
			var in trace.Instr
			for {
				if err := r.Read(&in); err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					t.Fatal(err)
				}
				ref = append(ref, in)
			}

			// Candidate: Open's binary sidecar view of the same file.
			b, err := trace.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if b.Count() != uint64(len(ref)) {
				t.Fatalf("binary count %d, v1 reader count %d", b.Count(), len(ref))
			}
			s := b.Stream()
			for i := 0; s.Next(&in); i++ {
				if in != ref[i] {
					t.Fatalf("record %d diverges:\nbinary: %+v\nv1:     %+v", i, in, ref[i])
				}
			}
			if err := s.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
