package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	instrs := []Instr{
		{IP: 0x400000},
		{IP: 0x400004, Loads: [MaxLoads]uint64{0x10000, 0}},
		{IP: 0x400008, Loads: [MaxLoads]uint64{0x10040, 0x20000}},
		{IP: 0x40000c, Stores: [MaxStores]uint64{0x30000}},
		{IP: 0x400010, IsBranch: true, Taken: true, Target: 0x400000},
		{IP: 0x400014, IsBranch: true, Taken: false},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(instrs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(instrs))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range instrs {
		var got Instr
		if err := r.Read(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != instrs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got, instrs[i])
		}
	}
	var extra Instr
	if err := r.Read(&extra); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTATRACE-------")
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("expected ErrBadMagic, got %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 1, Loads: [MaxLoads]uint64{42}}
	w.Write(&in)
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var got Instr
	if err := r.Read(&got); err == nil {
		t.Error("expected error on truncated record")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ip, l0, l1, s0, target uint64, branch, taken bool) bool {
		in := Instr{IP: ip, IsBranch: branch, Taken: taken}
		in.Loads[0], in.Loads[1], in.Stores[0] = l0, l1, s0
		if branch {
			in.Target = target
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		if err := w.Write(&in); err != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var got Instr
		if err := r.Read(&got); err != nil {
			return false
		}
		// Zero operands are not distinguishable from absent operands,
		// and a zero target is not persisted: normalize.
		want := in
		if want.Target == 0 {
			want.Target = 0
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSliceStream(t *testing.T) {
	instrs := []Instr{{IP: 1}, {IP: 2}, {IP: 3}}
	s := &SliceStream{Instrs: instrs}
	got := Collect(s, 10)
	if len(got) != 3 {
		t.Fatalf("collected %d, want 3", len(got))
	}
	s.Reset()
	var in Instr
	if !s.Next(&in) || in.IP != 1 {
		t.Errorf("after Reset, first = %+v", in)
	}
}

func TestSliceStreamLoop(t *testing.T) {
	s := &SliceStream{Instrs: []Instr{{IP: 1}, {IP: 2}}, Loop: true}
	got := Collect(s, 5)
	wantIPs := []uint64{1, 2, 1, 2, 1}
	for i, w := range wantIPs {
		if got[i].IP != w {
			t.Errorf("loop[%d].IP = %d, want %d", i, got[i].IP, w)
		}
	}
}

func TestSliceStreamEmpty(t *testing.T) {
	s := &SliceStream{Loop: true}
	var in Instr
	if s.Next(&in) {
		t.Error("empty looped stream must not produce instructions")
	}
}

func TestLargeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var want []Instr
	for i := 0; i < 5000; i++ {
		in := Instr{IP: rng.Uint64() | 1}
		if rng.Intn(2) == 0 {
			in.Loads[0] = rng.Uint64() | 1
		}
		if rng.Intn(4) == 0 {
			in.Stores[0] = rng.Uint64() | 1
		}
		if rng.Intn(5) == 0 {
			in.IsBranch = true
			in.Taken = rng.Intn(2) == 0
			in.Target = rng.Uint64() | 1
		}
		want = append(want, in)
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		var got Instr
		if err := r.Read(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadAllRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	want := []Instr{
		{IP: 1, Loads: [MaxLoads]uint64{0x40}},
		{IP: 2, Stores: [MaxStores]uint64{0x80}, DepPrev: false},
		{IP: 3, Loads: [MaxLoads]uint64{0xc0}, DepPrev: true},
	}
	for i := range want {
		if err := w.Write(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	s, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Looping: a fourth read wraps around.
	var in Instr
	if !s.Next(&in) || in.IP != 1 {
		t.Error("ReadAll stream does not loop")
	}
}

func TestTruncatedHeader(t *testing.T) {
	r, err := NewReader(bytes.NewReader(magic[:5]))
	if r != nil || !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated header: got reader=%v err=%v, want ErrCorrupt", r, err)
	}
}

func TestReservedFlagBits(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 1}
	w.Write(&in)
	w.Flush()
	b := buf.Bytes()
	b[16] |= flagsReserved // corrupt the first record's flags byte
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var got Instr
	err = r.Read(&got)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reserved flags: got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "byte 16") {
		t.Errorf("error lacks byte-offset context: %v", err)
	}
	// The error must be sticky.
	if err2 := r.Read(&got); !errors.Is(err2, ErrCorrupt) {
		t.Errorf("second Read after corruption: got %v, want sticky ErrCorrupt", err2)
	}
}

func TestTruncatedMidRecordIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 1, Loads: [MaxLoads]uint64{42}}
	w.Write(&in)
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var got Instr
	if err := r.Read(&got); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-record truncation: got %v, want ErrCorrupt", err)
	}
}

func TestDeclaredCountTruncation(t *testing.T) {
	// A header declaring 3 records over a body holding 1 must read as
	// truncation (ErrCorrupt), not a clean EOF.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 1}
	w.Write(&in)
	w.Flush()
	b := buf.Bytes()
	binary.LittleEndian.PutUint64(b[8:], 3)
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared() != 3 {
		t.Fatalf("Declared = %d, want 3", r.Declared())
	}
	var got Instr
	if err := r.Read(&got); err != nil {
		t.Fatal(err)
	}
	err = r.Read(&got)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short of declared count: got %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "1 of 3") {
		t.Errorf("truncation error lacks counts: %v", err)
	}
}

func TestReadAllBoundsPrealloc(t *testing.T) {
	// A header claiming 2^60 records over an empty body must fail with
	// ErrCorrupt without attempting a gigantic allocation.
	var hdr [16]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], 1<<60)
	if _, err := ReadAll(bytes.NewReader(hdr[:])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("absurd declared count: got %v, want ErrCorrupt", err)
	}
}

func TestReaderOffset(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 1} // flags byte + IP = 9 bytes
	w.Write(&in)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offset() != 16 {
		t.Errorf("Offset after header = %d, want 16", r.Offset())
	}
	var got Instr
	if err := r.Read(&got); err != nil {
		t.Fatal(err)
	}
	if r.Offset() != 25 {
		t.Errorf("Offset after one record = %d, want 25", r.Offset())
	}
}

func TestDepPrevPersisted(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := Instr{IP: 9, Loads: [MaxLoads]uint64{0x140}, DepPrev: true}
	w.Write(&in)
	w.Flush()
	r, _ := NewReader(&buf)
	var got Instr
	if err := r.Read(&got); err != nil {
		t.Fatal(err)
	}
	if !got.DepPrev {
		t.Error("DepPrev lost in serialization")
	}
}
