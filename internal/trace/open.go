package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// OpenBinary opens a pre-decoded (IPCPTRB2) trace file. The file is
// memory-mapped when the platform allows it, so concurrent cursors
// share one read-only copy of the records; otherwise cursors read
// through the file with per-cursor block buffers.
func OpenBinary(path string) (*Binary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()

	if mapped, munmap, merr := mmapFile(f, size); merr == nil && mapped != nil {
		b, err := NewBinary(bytes.NewReader(mapped), size)
		if err != nil {
			munmap()
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		b.mapped = mapped
		b.closers = []func() error{munmap}
		f.Close() // the mapping outlives the descriptor
		return b, nil
	}

	b, err := NewBinary(f, size)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Open opens a trace file in either format, always returning the
// zero-parse *Binary representation:
//
//   - A pre-decoded (IPCPTRB2) file is opened directly.
//   - A v1 (IPCPTRC1) file is transparently converted through a ".bin"
//     sidecar next to the source: the sidecar embeds the SHA-256 of the
//     source it was derived from, so a stale or foreign sidecar is
//     rebuilt, never trusted. The sidecar is written to a temp file and
//     renamed into place, so concurrent opens race benignly. If the
//     directory is unwritable the conversion happens in memory instead.
//
// Either way the caller replays fixed-width records; the text decode
// cost is paid at most once per source trace, not once per run.
func Open(path string) (*Binary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w (%v)", path, ErrBadMagic, err)
	}
	switch head {
	case magic2:
		f.Close()
		return OpenBinary(path)
	case magic:
		defer f.Close()
		return openV1(f, path)
	default:
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, ErrBadMagic)
	}
}

// openV1 resolves a v1 source through its sidecar cache. f is the open
// source file (position irrelevant; it is re-seeked).
func openV1(f *os.File, path string) (*Binary, error) {
	srcHash, err := hashFile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: hashing source trace: %w", path, err)
	}
	sidecar := path + ".bin"
	if b, err := OpenBinary(sidecar); err == nil {
		// The sidecar is a cache: reuse it only if it was derived from
		// exactly this source AND its blocks verify. Stale or damaged,
		// it is rebuilt from the source, never trusted.
		if b.SourceHash() == srcHash && b.Verify() == nil {
			return b, nil
		}
		b.Close()
	}
	if b, err := buildSidecar(f, path, sidecar, srcHash); err == nil {
		return b, nil
	} else if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Unwritable directory (or a rename race we lost to a writer that
	// then vanished): convert in memory.
	return convertInMemory(f, srcHash)
}

// hashFile returns the SHA-256 of f's full contents.
func hashFile(f *os.File) ([32]byte, error) {
	var zero [32]byte
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return zero, err
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return zero, err
	}
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// convertV1 streams every record of the v1 source into bw.
func convertV1(f *os.File, bw *BinaryWriter) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r, err := NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return err
	}
	var in Instr
	for {
		if err := r.Read(&in); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if err := bw.Write(&in); err != nil {
			return err
		}
	}
	return bw.Close()
}

// buildSidecar converts the v1 source into a temp file and renames it
// over the sidecar path, then opens the result.
func buildSidecar(f *os.File, path, sidecar string, srcHash [32]byte) (*Binary, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(sidecar)+".tmp-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw, err := NewBinaryWriter(tmp)
	if err != nil {
		tmp.Close()
		return nil, err
	}
	bw.SetSourceHash(srcHash)
	if err := convertV1(f, bw); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp.Name(), sidecar); err != nil {
		return nil, err
	}
	return OpenBinary(sidecar)
}

// convertInMemory converts the v1 source into an in-memory binary image.
func convertInMemory(f *os.File, srcHash [32]byte) (*Binary, error) {
	var ws memWriteSeeker
	bw, err := NewBinaryWriter(&ws)
	if err != nil {
		return nil, err
	}
	bw.SetSourceHash(srcHash)
	if err := convertV1(f, bw); err != nil {
		return nil, err
	}
	return NewBinary(bytes.NewReader(ws.buf), int64(len(ws.buf)))
}

// memWriteSeeker is the minimal in-memory io.WriteSeeker BinaryWriter
// needs for the no-sidecar fallback.
type memWriteSeeker struct {
	buf []byte
	off int
}

func (m *memWriteSeeker) Write(p []byte) (int, error) {
	if need := m.off + len(p); need > len(m.buf) {
		m.buf = append(m.buf, make([]byte, need-len(m.buf))...)
	}
	copy(m.buf[m.off:], p)
	m.off += len(p)
	return len(p), nil
}

func (m *memWriteSeeker) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = int64(m.off) + offset
	case io.SeekEnd:
		abs = int64(len(m.buf)) + offset
	default:
		return 0, fmt.Errorf("trace: bad seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("trace: negative seek offset")
	}
	m.off = int(abs)
	return abs, nil
}
