// Package trace defines the instruction trace record the simulator's
// cores consume, the Stream interface that both trace files and
// synthetic generators implement, and a compact binary file format for
// persisting traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxLoads and MaxStores bound the memory operands a single instruction
// may carry (ChampSim allows more; two loads and one store cover the
// workloads we generate).
const (
	MaxLoads  = 2
	MaxStores = 1
)

// Instr is one dynamic instruction. Zero addresses mean "no operand".
type Instr struct {
	IP     uint64
	Loads  [MaxLoads]uint64
	Stores [MaxStores]uint64

	// DepPrev marks a load whose address depends on the data of the
	// most recent earlier load (pointer chasing / indexed gathers).
	// Dependent loads cannot issue until that load completes, which
	// serializes the demand miss stream — the latency prefetchers
	// exist to hide.
	DepPrev bool

	IsBranch bool
	Taken    bool
	Target   uint64
}

// HasMemory reports whether the instruction carries any memory operand.
func (in *Instr) HasMemory() bool {
	return in.Loads[0] != 0 || in.Stores[0] != 0
}

// Reset clears the record for reuse.
func (in *Instr) Reset() {
	*in = Instr{}
}

// Stream produces a sequence of instructions. Implementations must be
// deterministic given their construction parameters so that multi-core
// replay and "run alone" normalization see identical streams.
type Stream interface {
	// Next fills in with the next instruction and reports whether one
	// was produced. Synthetic generators are typically infinite and
	// always return true; file-backed streams return false at EOF.
	Next(in *Instr) bool
	// Reset rewinds the stream to its beginning.
	Reset()
}

// --- Binary file format -------------------------------------------------
//
// Header:  magic "IPCPTRC1" (8 bytes), little-endian uint64 count
//          (0 = unknown/streamed).
// Record:  flags byte, then varint-style fields:
//            bit0 IsBranch, bit1 Taken, bit2 has Target,
//            bit3 has Loads[0], bit4 has Loads[1], bit5 has Stores[0],
//            bit6 DepPrev.
//          IP always present (8 bytes LE), each present operand 8 bytes.

var magic = [8]byte{'I', 'P', 'C', 'P', 'T', 'R', 'C', '1'}

// ErrCorrupt marks input the reader recognized as damaged: an invalid
// header field, a record with reserved flag bits set, or a stream that
// ends mid-record or short of its declared count. Errors carrying it
// always wrap the byte offset of the damage, so errors.Is(err,
// ErrCorrupt) detects corruption and the message pinpoints it.
var ErrCorrupt = errors.New("corrupt trace")

// ErrBadMagic is returned when a trace file does not start with the
// expected header. It wraps ErrCorrupt.
var ErrBadMagic = fmt.Errorf("%w: bad magic", ErrCorrupt)

// flagsReserved masks the record flag bits the format does not define;
// a record with any of them set cannot have come from Writer.
const flagsReserved = byte(0x80)

// maxPreallocRecords bounds the slab ReadAll sizes from the header's
// declared count, so a corrupt header claiming 2^60 records cannot ask
// for gigabytes before a single record is validated.
const maxPreallocRecords = 1 << 20

// Writer serializes instructions to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes a header and returns a Writer. The count in the
// header is written as 0 (streamed).
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var cnt [8]byte
	if _, err := bw.Write(cnt[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in *Instr) error {
	var flags byte
	if in.IsBranch {
		flags |= 1
	}
	if in.Taken {
		flags |= 2
	}
	if in.Target != 0 {
		flags |= 4
	}
	if in.Loads[0] != 0 {
		flags |= 8
	}
	if in.Loads[1] != 0 {
		flags |= 16
	}
	if in.Stores[0] != 0 {
		flags |= 32
	}
	if in.DepPrev {
		flags |= 64
	}
	buf := make([]byte, 1, 1+8*5)
	buf[0] = flags
	buf = binary.LittleEndian.AppendUint64(buf, in.IP)
	if flags&4 != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, in.Target)
	}
	if flags&8 != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, in.Loads[0])
	}
	if flags&16 != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, in.Loads[1])
	}
	if flags&32 != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, in.Stores[0])
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Reader deserializes instructions from an io.Reader. It is defensive
// against corrupt input: header fields are validated, reserved flag
// bits rejected, truncation detected against the header's declared
// record count, and every failure wraps ErrCorrupt (or the underlying
// I/O error) with the byte offset where reading stopped.
type Reader struct {
	r    *bufio.Reader
	err  error
	off  int64  // bytes consumed so far
	read uint64 // records decoded so far
	// declared is the header's record count (0 = streamed/unknown).
	declared uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte %d: %w: %w", n, ErrCorrupt, err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br, off: int64(len(hdr)), declared: binary.LittleEndian.Uint64(hdr[8:])}, nil
}

// Declared returns the header's record count (0 when the trace was
// written streamed).
func (r *Reader) Declared() uint64 { return r.declared }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int64 { return r.off }

// corrupt records and returns a sticky corruption error at the current
// offset.
func (r *Reader) corrupt(format string, args ...any) error {
	r.err = fmt.Errorf("trace: %s at byte %d: %w", fmt.Sprintf(format, args...), r.off, ErrCorrupt)
	return r.err
}

// Read fills in with the next record. It returns io.EOF at end of
// trace; any other error is sticky and wraps the byte offset.
func (r *Reader) Read(in *Instr) error {
	if r.err != nil {
		return r.err
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) && r.declared != 0 && r.read < r.declared {
			return r.corrupt("truncated: %d of %d declared records", r.read, r.declared)
		}
		r.err = err
		return err
	}
	recStart := r.off
	if flags&flagsReserved != 0 {
		// Report the offset of the bad flags byte itself.
		return r.corrupt("record %d has reserved flag bits (0x%02x)", r.read, flags)
	}
	r.off++
	in.Reset()
	in.IsBranch = flags&1 != 0
	in.Taken = flags&2 != 0
	in.DepPrev = flags&64 != 0
	read64 := func() uint64 {
		var b [8]byte
		n, e := io.ReadFull(r.r, b[:])
		r.off += int64(n)
		if e != nil {
			if err == nil {
				err = e
			}
			return 0
		}
		return binary.LittleEndian.Uint64(b[:])
	}
	in.IP = read64()
	if flags&4 != 0 {
		in.Target = read64()
	}
	if flags&8 != 0 {
		in.Loads[0] = read64()
	}
	if flags&16 != 0 {
		in.Loads[1] = read64()
	}
	if flags&32 != 0 {
		in.Stores[0] = read64()
	}
	if err != nil {
		return r.corrupt("record %d (starting at byte %d) cut short", r.read, recStart)
	}
	r.read++
	return nil
}

// SliceStream adapts an in-memory instruction slice to the Stream
// interface, replaying it in a loop when Loop is set.
type SliceStream struct {
	Instrs []Instr
	Loop   bool
	pos    int
}

// Next implements Stream.
func (s *SliceStream) Next(in *Instr) bool {
	if s.pos >= len(s.Instrs) {
		if !s.Loop || len(s.Instrs) == 0 {
			return false
		}
		s.pos = 0
	}
	*in = s.Instrs[s.pos]
	s.pos++
	return true
}

// Reset implements Stream.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains up to n instructions from a stream into a slice
// (useful for tests and for writing trace files from generators).
func Collect(s Stream, n int) []Instr {
	out := make([]Instr, 0, n)
	var in Instr
	for len(out) < n && s.Next(&in) {
		out = append(out, in)
	}
	return out
}

// StreamFunc adapts a pair of functions to the Stream interface
// (probing/wrapping streams in tests and tools).
type StreamFunc struct {
	NextFn  func(*Instr) bool
	ResetFn func()
}

// Next implements Stream.
func (s StreamFunc) Next(in *Instr) bool { return s.NextFn(in) }

// Reset implements Stream.
func (s StreamFunc) Reset() { s.ResetFn() }

// ReadAll deserializes an entire trace into memory and returns a
// looping SliceStream over it, so recorded traces plug into the
// simulator exactly like synthetic generators.
func ReadAll(r io.Reader) (*SliceStream, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	// Preallocate from the header's declared count, bounded so a corrupt
	// header cannot demand an absurd slab up front.
	prealloc := tr.Declared()
	if prealloc > maxPreallocRecords {
		prealloc = maxPreallocRecords
	}
	out := make([]Instr, 0, prealloc)
	for {
		var in Instr
		if err := tr.Read(&in); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		out = append(out, in)
	}
	return &SliceStream{Instrs: out, Loop: true}, nil
}
