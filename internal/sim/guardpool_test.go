package sim

import (
	"strings"
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/prefetch"
)

// panicAfter forwards to a real prefetcher until the Nth Operate call,
// then panics: the guard trips with that prefetcher's requests still in
// flight through the MSHRs, queues, and DRAM — the scenario the pool
// ownership protocol must survive.
type panicAfter struct {
	inner prefetch.Prefetcher
	at    uint64
	calls uint64
}

func (p *panicAfter) Name() string                { return p.inner.Name() }
func (p *panicAfter) Unwrap() prefetch.Prefetcher { return p.inner }
func (p *panicAfter) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	p.calls++
	if p.calls == p.at {
		panic("panicAfter: injected fault with prefetches in flight")
	}
	p.inner.Operate(now, a, iss)
}
func (p *panicAfter) Fill(now int64, f *prefetch.FillEvent) { p.inner.Fill(now, f) }
func (p *panicAfter) Cycle(now int64)                       { p.inner.Cycle(now) }

// buildTripSystem returns a single-core system whose L1-D prefetcher is
// a real IPCP that panics (and trips its guard) on the atth Operate.
func buildTripSystem(t *testing.T, at uint64) *System {
	t.Helper()
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{New: func() (prefetch.Prefetcher, error) {
		return &panicAfter{inner: core.NewL1IPCP(core.DefaultL1Config()), at: at}, nil
	}}
	cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
	sys, err := Build(cfg, streamsFor(t, []string{"lbm-94"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestGuardTripPoolOwnership trips the L1-D guard mid-run, with IPCP
// prefetches in flight, under the request pool's audit mode: every
// in-flight prefetch must still be recycled exactly once (no double
// free, no leak) even though the prefetcher that caused it is gone.
func TestGuardTripPoolOwnership(t *testing.T) {
	sys := buildTripSystem(t, 500)

	var doubles []string
	sys.RequestPool().EnableAudit(func(detail string) {
		doubles = append(doubles, detail)
	})

	res, err := sys.Run(2_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrefetcherFaults) != 1 {
		t.Fatalf("expected exactly one guard trip, got %+v", res.PrefetcherFaults)
	}
	if f := res.PrefetcherFaults[0]; f.Level != "L1D" || !strings.Contains(f.Reason, "panic") {
		t.Fatalf("trip not attributed to the L1-D panic: %+v", f)
	}
	for _, d := range doubles {
		t.Errorf("request pool double free: %s", d)
	}
	// Everything still in flight at simulation end is bounded by the
	// finite queue/MSHR capacities; a leak across the trip would scale
	// with the post-trip instruction count instead.
	if out := sys.RequestPool().Outstanding(); out < 0 || out > 1024 {
		t.Fatalf("outstanding request balance %d after guard trip; pool ownership broken", out)
	}
	if sys.RequestPool().Len() == 0 {
		t.Fatal("free list empty at end of run: requests were not recycled after the trip")
	}
}

// TestGuardTripThenDrainStable keeps simulating long after the trip and
// checks the live-request balance stays flat: the post-trip system must
// reach the same recycle-everything steady state as an unprefetched one.
func TestGuardTripThenDrainStable(t *testing.T) {
	sys := buildTripSystem(t, 300)
	sys.RequestPool().EnableAudit(func(detail string) {
		t.Errorf("request pool double free: %s", detail)
	})
	if _, err := sys.Run(1_000, 10_000); err != nil {
		t.Fatal(err)
	}
	if f := sys.PrefetcherFaults(); len(f) != 1 {
		t.Fatalf("expected the guard to have tripped, got %+v", f)
	}
	base := sys.RequestPool().Outstanding()
	for i := 0; i < 4; i++ {
		if err := sys.Advance(5_000); err != nil {
			t.Fatal(err)
		}
		out := sys.RequestPool().Outstanding()
		if diff := out - base; diff > 256 || diff < -256 {
			t.Fatalf("outstanding requests drifted %d → %d after %d extra instructions; leak across guard trip",
				base, out, (i+1)*5_000)
		}
	}
}
