//go:build !race

package sim

import (
	"testing"

	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// TestNilHooksZeroAllocs is the telemetry-overhead guard: with no
// tracer, interval log, progress sink or span tracer attached, the
// steady-state simulation loop must stay allocation-free — the
// observability layer's disabled cost is one predictable branch.
// Excluded under -race because the race runtime allocates on its own.
func TestNilHooksZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is slow")
	}
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
	w, err := workload.Named("lbm-94")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(cfg, []trace.Stream{w.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Run past the growth phase of the pools, rings and page tables
	// (mirrors BenchmarkSimulatorThroughputSteady).
	if err := sys.Advance(60_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := sys.Advance(5_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("nil-hook steady state allocates %.1f times per 5k instructions; want 0", avg)
	}
}
