package sim

import (
	"testing"

	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

func streamsFor(t *testing.T, names []string, seed int64) []trace.Stream {
	t.Helper()
	out := make([]trace.Stream, len(names))
	for i, n := range names {
		s, err := workload.Named(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s.New(seed)
	}
	return out
}

func TestSingleCoreRun(t *testing.T) {
	cfg := PaperConfig(1)
	sys, err := Build(cfg, streamsFor(t, []string{"bwaves-2931"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC[0] <= 0 || res.IPC[0] > float64(cfg.Core.Width) {
		t.Errorf("IPC out of range: %f", res.IPC[0])
	}
	if res.L1D[0].DemandAccesses() == 0 {
		t.Error("no demand accesses at L1D")
	}
	if res.L1D[0].DemandMisses() == 0 {
		t.Error("streaming workload produced no L1D misses without prefetching")
	}
	if res.DRAM.Reads == 0 {
		t.Error("no DRAM reads")
	}
	// Hierarchy sanity: L2 demand accesses cannot exceed L1 misses
	// plus L1I misses (everything at L2 was missed above).
	l1miss := res.L1D[0].DemandMisses() + res.L1I[0].DemandMisses()
	if res.L2[0].DemandAccesses() > l1miss+10 {
		t.Errorf("L2 demand accesses (%d) exceed upper-level misses (%d)",
			res.L2[0].DemandAccesses(), l1miss)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() *Result {
		cfg := PaperConfig(1)
		sys, err := Build(cfg, streamsFor(t, []string{"mcf-1536"}, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(1000, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.IPC[0] != b.IPC[0] {
		t.Errorf("IPC not deterministic: %f vs %f", a.IPC[0], b.IPC[0])
	}
	if a.L1D[0] != b.L1D[0] {
		t.Errorf("L1D stats not deterministic")
	}
	if a.DRAM != b.DRAM {
		t.Errorf("DRAM stats not deterministic")
	}
}

func TestComputeBoundHasHighIPCAndLowMPKI(t *testing.T) {
	sys, err := Build(PaperConfig(1), streamsFor(t, []string{"exchange2-387"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Warm long enough to fault in the small hot footprint (one full
	// sweep of the 96KB word-walk takes ~200k instructions); the
	// measured region must then be nearly miss-free.
	res, err := sys.Run(250000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if mpki := res.MPKI("LLC", 0); mpki > 1.0 {
		t.Errorf("compute-bound LLC MPKI = %.2f, want < 1", mpki)
	}
	if res.IPC[0] < 1.0 {
		t.Errorf("compute-bound IPC = %.2f, want > 1", res.IPC[0])
	}
}

func TestMemoryIntensiveHasHighMPKI(t *testing.T) {
	sys, err := Build(PaperConfig(1), streamsFor(t, []string{"mcf-994"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if mpki := res.MPKI("LLC", 0); mpki < 1.0 {
		t.Errorf("mcf-like LLC MPKI = %.2f, want >= 1", mpki)
	}
}

func TestMultiCoreRun(t *testing.T) {
	cfg := PaperConfig(2)
	sys, err := Build(cfg, streamsFor(t, []string{"lbm-94", "omnetpp-17"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 {
		t.Fatalf("IPC entries = %d", len(res.IPC))
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC = %f", i, ipc)
		}
	}
	if res.LLC.DemandAccesses() == 0 {
		t.Error("shared LLC saw no traffic")
	}
}

func TestSharedLLCContention(t *testing.T) {
	// A core co-running with a memory hog must be slower than the
	// same core alone (shared LLC + DRAM contention).
	alone, err := Build(PaperConfig(2), streamsFor(t, []string{"lbm-94", "exchange2-387"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	ra, err := alone.Run(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	contended, err := Build(PaperConfig(2), streamsFor(t, []string{"lbm-94", "lbm-1004"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := contended.Run(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if rc.IPC[0] >= ra.IPC[0] {
		t.Errorf("no contention effect: with hog %.3f, with light partner %.3f",
			rc.IPC[0], ra.IPC[0])
	}
}

func TestPrefetcherSpecByName(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "definitely-not-registered"}
	_, err := Build(cfg, streamsFor(t, []string{"bwaves-98"}, 1))
	if err == nil {
		t.Fatal("unknown prefetcher accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.MaxCycles = 100 // absurdly small
	sys, err := Build(cfg, streamsFor(t, []string{"mcf-994"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(1000, 1000); err == nil {
		t.Fatal("deadline guard did not fire")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.Cores = 0
	if _, err := Build(cfg, nil); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = PaperConfig(1)
	if _, err := Build(cfg, nil); err == nil {
		t.Error("stream count mismatch accepted")
	}
	cfg = PaperConfig(3) // 3*2048 sets is not a power of two
	if _, err := Build(cfg, streamsFor(t, []string{"bwaves-98", "bwaves-98", "bwaves-98"}, 1)); err == nil {
		t.Error("non-power-of-two LLC accepted")
	}
}

func TestPaperConfigMatchesTableII(t *testing.T) {
	cfg := PaperConfig(1)
	if got := cfg.L1D.SizeBytes(); got != 48*1024 {
		t.Errorf("L1D size = %d, want 48KB", got)
	}
	if got := cfg.L1I.SizeBytes(); got != 32*1024 {
		t.Errorf("L1I size = %d, want 32KB", got)
	}
	if got := cfg.L2.SizeBytes(); got != 512*1024 {
		t.Errorf("L2 size = %d, want 512KB", got)
	}
	if got := cfg.LLC.SizeBytes(); got != 2*1024*1024 {
		t.Errorf("LLC size = %d, want 2MB/core", got)
	}
	if cfg.L1D.PQSize != 8 || cfg.L1D.MSHRs != 16 {
		t.Error("L1D PQ/MSHR do not match Table II")
	}
	if cfg.L2.PQSize != 16 || cfg.L2.MSHRs != 32 {
		t.Error("L2 PQ/MSHR do not match Table II")
	}
	if cfg.Core.ROBSize != 256 || cfg.Core.Width != 4 {
		t.Error("core does not match Table II")
	}
	if PaperConfig(4).DRAM.Channels != 2 {
		t.Error("multi-core DRAM must have 2 channels")
	}
}
