package sim

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"ipcp/internal/cache"
	"ipcp/internal/cpu"
	"ipcp/internal/dram"
	"ipcp/internal/memsys"
	"ipcp/internal/telemetry"
	"ipcp/internal/vmem"
)

// This file is the warmup-forking engine: a CacheWarmOnly system runs
// its warmup once, drains every in-flight request to quiescence, and
// captures the remaining architectural state — cache lines, replacement
// metadata, TLBs, page tables, branch predictors, DRAM bank timing and
// the trace-stream positions — as a Snapshot. Any number of fresh
// systems sharing that warmup prefix then restore from the snapshot and
// run only their measure phase. Quiescence is what makes the capture
// tractable: with no requests in flight there is no pointer graph to
// serialize, only plain data, and the restore is provably lossless
// (the fork-vs-cold differential suite holds forked runs bit-identical
// to cold ones).

// Snapshot is a deep capture of a quiescent post-warmup system. It is
// self-describing enough to be spilled to disk (gob) and restored in a
// different process, provided the restoring system is built from an
// identical configuration and identical trace generators.
type Snapshot struct {
	// Sig guards against restoring into a mismatched system.
	Sig   string
	Cycle int64

	Alloc vmem.PhysAllocatorState
	Cores []cpu.State
	L1Is  []cache.State
	L1Ds  []cache.State
	L2s   []cache.State
	LLC   cache.State
	DRAM  dram.ControllerState
}

// ConfigSignature fingerprints the snapshot-relevant parts of a config:
// everything that shapes warmup state, and nothing about prefetchers
// (CacheWarmOnly warmup is prefetcher-independent by construction).
func ConfigSignature(cfg Config) string {
	return fmt.Sprintf("cores=%d core=%+v l1i=%+v l1d=%+v l2=%+v llc=%+v dram=%+v seed=%d",
		cfg.Cores, cfg.Core, cfg.L1I, cfg.L1D, cfg.L2, cfg.LLC, cfg.DRAM, cfg.Seed)
}

// Quiescent reports whether no component holds in-flight work.
func (s *System) Quiescent() bool {
	for i := range s.cores {
		if !s.cores[i].Quiescent() {
			return false
		}
		if !s.l1ds[i].Quiescent() || !s.l1is[i].Quiescent() || !s.l2s[i].Quiescent() {
			return false
		}
	}
	return s.llc.Quiescent() && s.mem.Quiescent()
}

// drainMaxCycles bounds the drain loop; a drain is normally a few
// hundred cycles (one ROB depth of retirement plus queue flush).
const drainMaxCycles = 2_000_000

// drain stops instruction fetch on every core and clocks the system
// until quiescence, then re-opens fetch. The drained instructions stay
// retired — both the cold path and the forked path pass through the
// same drain point, so the measure phase starts from the same state
// either way.
func (s *System) drain(ctx context.Context) error {
	for i := range s.cores {
		s.cores[i].StopFetch()
	}
	defer func() {
		for i := range s.cores {
			s.cores[i].ResumeFetch()
		}
	}()
	deadline := s.cycle + drainMaxCycles
	nextCancel := s.cycle
	for !s.Quiescent() {
		if s.cycle >= deadline {
			return fmt.Errorf("sim: drain exceeded %d cycles", drainMaxCycles)
		}
		if s.cycle >= nextCancel {
			nextCancel = s.cycle + cancelCheckInterval
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: drain cancelled at cycle %d: %w", s.cycle, err)
			}
		}
		s.step()
	}
	return nil
}

// RunWarmup executes the warmup phase (allRetired gate, identical to
// RunContext's warmup loop) and then drains the system to quiescence,
// leaving it ready to be snapshotted or to continue into
// AttachPrefetchers + RunMeasure. Only valid on CacheWarmOnly systems:
// sharing a warmup across prefetcher configurations requires the warmup
// to be prefetcher-independent.
func (s *System) RunWarmup(ctx context.Context, warmup uint64) (err error) {
	if !s.cfg.CacheWarmOnly {
		return fmt.Errorf("sim: RunWarmup requires Config.CacheWarmOnly")
	}
	progress := telemetry.ProgressFrom(ctx)
	report := func() {
		if progress != nil {
			progress(telemetry.Progress{
				Phase: "warmup", Retired: s.minRetired(), Target: warmup, Cycle: s.cycle,
			})
		}
	}
	var phaseSpan *telemetry.ActiveSpan
	_, phaseSpan = telemetry.StartSpan(ctx, "sim.warmup")
	defer func() {
		if err != nil {
			phaseSpan.SetAttr("error", err.Error())
		}
		phaseSpan.End()
	}()

	ctl := s.newLoopCtl(warmup)
	report()
	if err := s.warmupLoop(ctx, warmup, ctl, report); err != nil {
		return err
	}
	report()
	// The drain is a few hundred cycles of tail work; it runs on the
	// sequential scheduler regardless of ParallelCores.
	return s.drain(ctx)
}

// Snapshot captures the drained system. The system must be quiescent
// (RunWarmup leaves it so) and must not have prefetchers attached yet.
func (s *System) Snapshot() (*Snapshot, error) {
	if !s.cfg.CacheWarmOnly {
		return nil, fmt.Errorf("sim: Snapshot requires Config.CacheWarmOnly")
	}
	if s.pfAttached {
		return nil, fmt.Errorf("sim: Snapshot must be taken before AttachPrefetchers")
	}
	if !s.Quiescent() {
		return nil, fmt.Errorf("sim: system not quiescent")
	}
	snap := &Snapshot{
		Sig:   ConfigSignature(s.cfg),
		Cycle: s.cycle,
		Alloc: s.alloc.State(),
		Cores: make([]cpu.State, len(s.cores)),
		L1Is:  make([]cache.State, len(s.l1is)),
		L1Ds:  make([]cache.State, len(s.l1ds)),
		L2s:   make([]cache.State, len(s.l2s)),
	}
	var err error
	for i := range s.cores {
		if snap.Cores[i], err = s.cores[i].CaptureState(); err != nil {
			return nil, err
		}
		if snap.L1Is[i], err = s.l1is[i].CaptureState(); err != nil {
			return nil, err
		}
		if snap.L1Ds[i], err = s.l1ds[i].CaptureState(); err != nil {
			return nil, err
		}
		if snap.L2s[i], err = s.l2s[i].CaptureState(); err != nil {
			return nil, err
		}
	}
	if snap.LLC, err = s.llc.CaptureState(); err != nil {
		return nil, err
	}
	if snap.DRAM, err = s.mem.CaptureState(); err != nil {
		return nil, err
	}
	return snap, nil
}

// RestoreSnapshot forks a freshly built CacheWarmOnly system from snap:
// after it returns, the system is in exactly the state the snapshotted
// system was in at its drain point, including the trace generators'
// positions (replayed, not copied — the streams must be fresh instances
// of the same deterministic generators). Continue with
// AttachPrefetchers + RunMeasure.
func (s *System) RestoreSnapshot(snap *Snapshot) error {
	if !s.cfg.CacheWarmOnly {
		return fmt.Errorf("sim: RestoreSnapshot requires Config.CacheWarmOnly")
	}
	if s.pfAttached {
		return fmt.Errorf("sim: RestoreSnapshot must run before AttachPrefetchers")
	}
	if s.cycle != 0 {
		return fmt.Errorf("sim: RestoreSnapshot requires a fresh system (cycle %d)", s.cycle)
	}
	if sig := ConfigSignature(s.cfg); sig != snap.Sig {
		return fmt.Errorf("sim: snapshot signature mismatch:\n  snapshot: %s\n  system:   %s", snap.Sig, sig)
	}
	if len(snap.Cores) != len(s.cores) {
		return fmt.Errorf("sim: snapshot core count mismatch")
	}
	s.alloc.Replay(snap.Alloc)
	for i := range s.cores {
		if err := s.cores[i].RestoreState(snap.Cores[i]); err != nil {
			return err
		}
		if err := s.l1is[i].RestoreState(snap.L1Is[i]); err != nil {
			return err
		}
		if err := s.l1ds[i].RestoreState(snap.L1Ds[i]); err != nil {
			return err
		}
		if err := s.l2s[i].RestoreState(snap.L2s[i]); err != nil {
			return err
		}
	}
	if err := s.llc.RestoreState(snap.LLC); err != nil {
		return err
	}
	if err := s.mem.RestoreState(snap.DRAM, snap.Cycle); err != nil {
		return err
	}
	s.cycle = snap.Cycle
	return nil
}

// AttachPrefetchers constructs, guards and attaches the configured
// prefetchers on a CacheWarmOnly system — the measure-boundary step
// that turns a shared warm system into one concrete sweep point.
func (s *System) AttachPrefetchers() error {
	if !s.cfg.CacheWarmOnly {
		return fmt.Errorf("sim: AttachPrefetchers requires Config.CacheWarmOnly")
	}
	if s.pfAttached {
		return fmt.Errorf("sim: prefetchers already attached")
	}
	llcPf, err := s.cfg.LLCPrefetcher.build(memsys.LevelLLC)
	if err != nil {
		return err
	}
	s.llc.SetPrefetcher(s.guardPf(llcPf, memsys.LevelLLC, -1))
	for i := range s.cores {
		l2Pf, err := s.cfg.L2Prefetcher.build(memsys.LevelL2)
		if err != nil {
			return err
		}
		s.l2s[i].SetPrefetcher(s.guardPf(l2Pf, memsys.LevelL2, i))
		l1dPf, err := s.cfg.L1DPrefetcher.build(memsys.LevelL1D)
		if err != nil {
			return err
		}
		s.l1ds[i].SetPrefetcher(s.guardPf(l1dPf, memsys.LevelL1D, i))
		l1iPf, err := s.cfg.L1IPrefetcher.build(memsys.LevelL1I)
		if err != nil {
			return err
		}
		s.l1is[i].SetPrefetcher(s.guardPf(l1iPf, memsys.LevelL1I, i))
	}
	s.pfAttached = true
	if s.tracer != nil {
		s.SetTracer(s.tracer) // re-apply to the newly attached prefetchers
	}
	return nil
}

// RunMeasure resets statistics at the measure boundary and runs the
// measured phase, mirroring RunContext's measure loop exactly. Valid
// after RunWarmup (cold) or RestoreSnapshot (forked), in both cases
// after AttachPrefetchers.
func (s *System) RunMeasure(ctx context.Context, measure uint64) (res *Result, err error) {
	if !s.cfg.CacheWarmOnly {
		return nil, fmt.Errorf("sim: RunMeasure requires Config.CacheWarmOnly")
	}
	if !s.pfAttached {
		return nil, fmt.Errorf("sim: RunMeasure requires AttachPrefetchers first")
	}
	progress := telemetry.ProgressFrom(ctx)
	report := func() {
		if progress != nil {
			progress(telemetry.Progress{
				Phase: "measure", Retired: s.minRetired(), Target: measure, Cycle: s.cycle,
			})
		}
	}
	var phaseSpan *telemetry.ActiveSpan
	_, phaseSpan = telemetry.StartSpan(ctx, "sim.measure")
	defer func() {
		if err != nil {
			phaseSpan.SetAttr("error", err.Error())
		}
		phaseSpan.End()
	}()

	s.resetStats()
	start := s.cycle

	ctl := s.newLoopCtl(measure)
	report()
	finish, err := s.measureLoop(ctx, measure, ctl, report)
	if err != nil {
		return nil, err
	}
	report()
	return s.buildResult(measure, start, finish), nil
}

// EncodeSnapshot serializes snap (gob) for the disk spill path.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("sim: encoding snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot produced by EncodeSnapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	return &snap, nil
}
