package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ipcp/internal/cpu"
	"ipcp/internal/memsys"
)

// This file is the parallel multi-core engine and the unified phase
// loops every run path (RunContext, RunWarmup, RunMeasure, Advance)
// drives.
//
// The engine parallelizes one system across cores without changing a
// single simulated bit. Each core plus its private caches (L1I/L1D/L2
// and their prefetchers) is a slice, stepped by its own goroutine; the
// shared LLC and DRAM stay with the coordinator. A cycle is one epoch
// with two phases:
//
//  1. The coordinator clocks DRAM and the LLC (exactly the sequential
//     scheduler's first two steps) while every worker is parked at the
//     barrier, then publishes the cycle number and bumps the epoch
//     counter.
//  2. Each worker clocks its slice in the sequential per-slice order
//     (L2, L1D, L1I, core) and stores the epoch into its done slot;
//     the coordinator waits for all slots, then advances the cycle,
//     flushes interval samples, scans retirements, and — on idle spans
//     — fast-forwards, all with the workers parked again.
//
// Within phase 2 the slices are independent except for two shared
// touch points, both serialized back into canonical order:
//
//   - LLC queue pushes (the only cross-slice memory traffic: L2 miss
//     forwards, dirty-victim writebacks, prefetch pass-through) go
//     through a per-slice orderedSink portal whose every Add first
//     waits until all lower-numbered slices have finished the epoch.
//     Slice i therefore observes exactly the LLC queue state the
//     sequential scheduler would have shown it — same acceptance
//     booleans, same queue order — and the wait graph is a strict DAG
//     (i waits only on j < i), so it cannot deadlock.
//   - First-touch page allocations from the shared PhysAllocator pass
//     the same turn gate (vmem.PageTable.SetAllocGate), keeping the
//     allocator's draw sequence canonical. Translation of mapped pages
//     — the common case, and all the prefetchers ever do — never
//     waits.
//
// Request-pool traffic needs no ordering (a pool is a free list whose
// contents are semantically invisible: Get returns a dirty request
// that every creation site fully overwrites), but it does need race
// freedom, so each slice gets a private pool while the engine runs;
// the LLC and DRAM keep the system pool, which only phase 1 and
// barrier-time code touches. Requests migrating between pools is part
// of the ownership protocol and harmless.
//
// Everything else the coordinator does — fast-forward NextEvent scans,
// AccountSkip replays, interval flushes, retirement scans — runs at
// the barrier with every worker parked, so the engine needs no other
// synchronization. All cross-goroutine handoff rides the epoch/done
// atomics, which establish the happens-before edges the memory model
// needs. Spin waits yield to the scheduler, so the engine is live (if
// pointless) even at GOMAXPROCS=1.

// engine is one parallel run's barrier state. It exists only while a
// phase loop runs; close restores the sequential wiring.
type engine struct {
	s *System

	// epoch is bumped by the coordinator to release the workers; now
	// is the cycle being clocked, published before the bump (the bump
	// is the release fence that makes it visible).
	epoch atomic.Int64
	now   int64

	// done[i] is the last epoch worker i completed, padded so the
	// barrier and turn-gate spins don't false-share.
	done []doneSlot

	// workerEpoch[i] and turnEpoch[i] are worker-local scratch (only
	// goroutine i touches its entries between barriers): the epoch it
	// is executing, and the last epoch it acquired its push turn, so
	// a slice making many LLC pushes in one cycle pays the turn wait
	// once.
	workerEpoch []int64
	turnEpoch   []int64

	stopFlag atomic.Bool
	wg       sync.WaitGroup
}

// doneSlot pads each worker's completion counter to its own cache
// line; every spin in the engine loads these.
type doneSlot struct {
	v atomic.Int64
	_ [56]byte
}

// startEngine wires the system for parallel stepping — portals between
// each L2 and the LLC, per-slice request pools, allocation turn gates —
// and starts one worker goroutine per slice.
func (s *System) startEngine() *engine {
	e := &engine{
		s:           s,
		done:        make([]doneSlot, s.cfg.Cores),
		workerEpoch: make([]int64, s.cfg.Cores),
		turnEpoch:   make([]int64, s.cfg.Cores),
	}
	for i := range s.cores {
		s.l2s[i].SetLower(&orderedSink{eng: e, idx: i, lower: s.llc})
		pool := memsys.NewRequestPool()
		s.cores[i].SetRequestPool(pool)
		s.l1ds[i].SetRequestPool(pool)
		s.l1is[i].SetRequestPool(pool)
		s.l2s[i].SetRequestPool(pool)
		idx := i
		s.cores[i].PageTable().SetAllocGate(func() { e.awaitTurn(idx) })
	}
	e.wg.Add(s.cfg.Cores)
	for i := 0; i < s.cfg.Cores; i++ {
		go e.worker(i)
	}
	return e
}

// close parks the workers for good and restores the sequential wiring,
// leaving the system indistinguishable from one that was stepped
// sequentially (it is bit-identical anyway; this restores the object
// graph too). Must be called at a barrier — every phase loop does so
// via defer, after its last step has fully completed.
func (e *engine) close() {
	e.stopFlag.Store(true)
	e.wg.Wait()
	s := e.s
	for i := range s.cores {
		s.l2s[i].SetLower(s.llc)
		s.cores[i].PageTable().SetAllocGate(nil)
		s.cores[i].SetRequestPool(s.pool)
		s.l1ds[i].SetRequestPool(s.pool)
		s.l1is[i].SetRequestPool(s.pool)
		s.l2s[i].SetRequestPool(s.pool)
	}
}

// worker steps slice i once per epoch until stopped.
func (e *engine) worker(i int) {
	defer e.wg.Done()
	s := e.s
	var last int64
	for {
		for e.epoch.Load() == last {
			if e.stopFlag.Load() {
				return
			}
			runtime.Gosched()
		}
		last++
		e.workerEpoch[i] = last
		now := e.now
		s.l2s[i].Cycle(now)
		s.l1ds[i].Cycle(now)
		s.l1is[i].Cycle(now)
		s.cores[i].Cycle(now)
		e.done[i].v.Store(last)
	}
}

// step clocks the whole system one cycle through the barrier. It is
// the parallel counterpart of System.step and leaves the workers
// parked, so the caller may touch any component state after it
// returns.
func (e *engine) step() {
	s := e.s
	now := s.cycle
	s.mem.Cycle(now)
	s.llc.Cycle(now)
	e.now = now
	target := e.epoch.Add(1)
	for i := range e.done {
		d := &e.done[i].v
		for d.Load() < target {
			runtime.Gosched()
		}
	}
	s.cycle++
	if s.sampling && s.cycle-s.lastSample >= s.ilog.Every {
		s.flushInterval()
	}
}

// awaitTurn blocks worker i until every lower-numbered slice has
// finished the current epoch — the point at which the sequential
// scheduler would have reached slice i, so whatever shared state i
// reads or pushes next is exactly what it would have seen there. The
// wait graph is acyclic by construction (i only waits on j < i).
func (e *engine) awaitTurn(i int) {
	my := e.workerEpoch[i]
	if e.turnEpoch[i] == my {
		return
	}
	for j := 0; j < i; j++ {
		d := &e.done[j].v
		for d.Load() < my {
			runtime.Gosched()
		}
	}
	e.turnEpoch[i] = my
}

// orderedSink is the turn-ordered portal between one slice's L2 and
// the shared LLC: each push first waits for the slice's canonical
// turn, then lands on the real LLC queue, so cross-slice push order
// and queue-full acceptance results match the sequential scheduler
// exactly.
type orderedSink struct {
	eng   *engine
	idx   int
	lower memsys.Sink
}

func (o *orderedSink) AddRead(r *memsys.Request) bool {
	o.eng.awaitTurn(o.idx)
	return o.lower.AddRead(r)
}

func (o *orderedSink) AddWrite(r *memsys.Request) bool {
	o.eng.awaitTurn(o.idx)
	return o.lower.AddWrite(r)
}

func (o *orderedSink) AddPrefetch(r *memsys.Request) bool {
	o.eng.awaitTurn(o.idx)
	return o.lower.AddPrefetch(r)
}

// parallelEligible reports whether this run may use the parallel
// engine: opted in, more than one core to overlap, and none of the
// attachments that reach into slice internals from outside the
// barrier — the tracer's ring is single-writer, and the audit oracles
// hook components mid-cycle.
func (s *System) parallelEligible() bool {
	return s.cfg.ParallelCores && s.cfg.Cores > 1 &&
		s.tracer == nil && s.cfg.Audit == nil
}

// executor dispatches the phase loops' stepping to the sequential
// scheduler or the parallel engine. The zero value is sequential.
type executor struct {
	s   *System
	eng *engine
}

// newExecutor picks the engine for one phase loop. Callers must close
// it (a sequential executor's close is a no-op).
func (s *System) newExecutor() executor {
	x := executor{s: s}
	if s.parallelEligible() {
		x.eng = s.startEngine()
	}
	return x
}

func (x executor) step() {
	if x.eng != nil {
		x.eng.step()
	} else {
		x.s.step()
	}
}

func (x executor) close() {
	if x.eng != nil {
		x.eng.close()
	}
}

// --- unified phase loops -------------------------------------------------

// loopCtl is one run's loop bookkeeping. RunContext threads a single
// ctl through warmup and measurement (one shared cycle budget, one
// cancellation cadence across the phase boundary); the split-phase
// paths (RunWarmup, RunMeasure) each build their own.
type loopCtl struct {
	maxCycles  int64
	deadline   int64
	nextCancel int64
}

// newLoopCtl derives the cycle budget from the instruction budget
// unless the config pins one.
func (s *System) newLoopCtl(budget uint64) *loopCtl {
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		// A generous bound: no workload should average > 500
		// cycles/instruction.
		maxCycles = int64(budget)*500 + 1_000_000
	}
	return &loopCtl{
		maxCycles:  maxCycles,
		deadline:   s.cycle + maxCycles,
		nextCancel: s.cycle,
	}
}

// warmupLoop steps the system until every core has retired warmup
// instructions. Shared by RunContext's warmup phase and RunWarmup.
func (s *System) warmupLoop(ctx context.Context, warmup uint64, ctl *loopCtl, report func()) error {
	exec := s.newExecutor()
	defer exec.close()
	for !s.allRetired(warmup) {
		if s.cycle >= ctl.deadline {
			return fmt.Errorf("sim: warmup exceeded %d cycles", ctl.maxCycles)
		}
		if s.cycle >= ctl.nextCancel {
			ctl.nextCancel = s.cycle + cancelCheckInterval
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: warmup cancelled at cycle %d: %w", s.cycle, err)
			}
			report()
		}
		exec.step()
		// The retirement check must see the exact post-step cycle, so
		// fast-forward only once the loop is known to continue.
		if !s.allRetired(warmup) {
			s.fastForward(ctl.deadline)
		}
	}
	return nil
}

// measureLoop steps the system until every core has retired measure
// further instructions, recording each core's finish cycle. Cores that
// finish early keep executing (contending for shared resources) until
// the last core finishes, as in the paper's methodology. Shared by
// RunContext's measure phase and RunMeasure.
func (s *System) measureLoop(ctx context.Context, measure uint64, ctl *loopCtl, report func()) ([]int64, error) {
	exec := s.newExecutor()
	defer exec.close()
	finish := make([]int64, s.cfg.Cores)
	finished := make([]bool, s.cfg.Cores)
	done := 0
	for done < s.cfg.Cores {
		if s.cycle >= ctl.deadline {
			return nil, fmt.Errorf("sim: measurement exceeded %d cycles (%d/%d cores finished)",
				ctl.maxCycles, done, s.cfg.Cores)
		}
		if s.cycle >= ctl.nextCancel {
			ctl.nextCancel = s.cycle + cancelCheckInterval
			if err := ctx.Err(); err != nil {
				if s.sampling {
					s.flushInterval()
					s.sampling = false
				}
				return nil, fmt.Errorf("sim: measurement cancelled at cycle %d: %w", s.cycle, err)
			}
			report()
		}
		exec.step()
		done += scanFinished(s.cores, s.cycle, measure, finish, finished)
		// Fast-forward only after the finish scan: a finishing core's
		// recorded cycle must be the stepped cycle, not a jump target.
		if done < s.cfg.Cores {
			s.fastForward(ctl.deadline)
		}
	}

	// Close the last (partial) interval so the timeline's deltas sum
	// exactly to the end-of-run totals.
	if s.sampling {
		s.flushInterval()
		s.sampling = false
	}
	return finish, nil
}

// scanFinished records the finish cycle of each core that has just
// reached its measured-instruction target, returning how many finished
// on this call. finished is the explicit has-finished flag: the
// recorded cycle value cannot double as one, because a core can
// legitimately finish at any cycle number (a forked system restores
// mid-timeline), so a zero sentinel could re-count it.
func scanFinished(cores []*cpu.Core, cycle int64, measure uint64, finish []int64, finished []bool) int {
	n := 0
	for i, c := range cores {
		if !finished[i] && c.Retired() >= measure {
			finished[i] = true
			finish[i] = cycle
			n++
		}
	}
	return n
}

// buildResult assembles the Result of a measured phase that started at
// start and finished per-core at finish.
func (s *System) buildResult(measure uint64, start int64, finish []int64) *Result {
	res := &Result{
		Cores:            s.cfg.Cores,
		Instructions:     measure,
		CyclesPerCore:    make([]int64, s.cfg.Cores),
		IPC:              make([]float64, s.cfg.Cores),
		LLC:              s.llc.Stats,
		DRAM:             s.mem.Stats,
		PrefetcherFaults: s.PrefetcherFaults(),
	}
	for i := range s.cores {
		cyc := finish[i] - start
		res.CyclesPerCore[i] = cyc
		res.IPC[i] = float64(measure) / float64(cyc)
		res.CoreStats = append(res.CoreStats, s.cores[i].Stats)
		res.L1D = append(res.L1D, s.l1ds[i].Stats)
		res.L1I = append(res.L1I, s.l1is[i].Stats)
		res.L2 = append(res.L2, s.l2s[i].Stats)
		res.IPCPL1 = append(res.IPCPL1, snapshotOf(s.l1ds[i]))
		res.IPCPL2 = append(res.IPCPL2, snapshotOf(s.l2s[i]))
	}
	return res
}
