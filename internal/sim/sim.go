// Package sim assembles cores, caches, DRAM and prefetchers into a
// runnable system, runs warmup + measurement phases, and reports IPC
// and hierarchy statistics. It is the layer the experiment harness and
// the public facade drive.
package sim

import (
	"fmt"

	"ipcp/internal/cache"
	"ipcp/internal/cpu"
	"ipcp/internal/dram"
	"ipcp/internal/memsys"
	"ipcp/internal/trace"
	"ipcp/internal/vmem"
)

// System is one assembled simulation.
type System struct {
	cfg Config

	cores []*cpu.Core
	l1is  []*cache.Cache
	l1ds  []*cache.Cache
	l2s   []*cache.Cache
	llc   *cache.Cache
	mem   *dram.Controller

	cycle int64
}

// Result reports one run's measured statistics.
type Result struct {
	Cores        int
	Instructions uint64 // measured instructions per core

	// CyclesPerCore is each core's measured cycle count (finish −
	// measurement start).
	CyclesPerCore []int64
	IPC           []float64

	CoreStats    []cpu.Stats
	L1I, L1D, L2 []cache.Stats
	LLC          cache.Stats
	DRAM         dram.Stats
}

// MPKI returns core i's demand misses per kilo instruction at the given
// level ("L1D", "L2", "LLC"). For the shared LLC the misses are the
// whole system's, divided by the per-core instruction count times the
// core count.
func (r *Result) MPKI(level string, core int) float64 {
	instr := float64(r.Instructions)
	switch level {
	case "L1D":
		return float64(r.L1D[core].DemandMisses()) * 1000 / instr
	case "L2":
		return float64(r.L2[core].DemandMisses()) * 1000 / instr
	case "LLC":
		return float64(r.LLC.DemandMisses()) * 1000 / (instr * float64(r.Cores))
	default:
		return 0
	}
}

// TotalDemandMisses sums demand misses across cores for a private level
// or returns the shared LLC's.
func (r *Result) TotalDemandMisses(level string) uint64 {
	var t uint64
	switch level {
	case "L1D":
		for i := range r.L1D {
			t += r.L1D[i].DemandMisses()
		}
	case "L2":
		for i := range r.L2 {
			t += r.L2[i].DemandMisses()
		}
	case "LLC":
		t = r.LLC.DemandMisses()
	}
	return t
}

// Build wires a system from cfg, one trace stream per core.
func Build(cfg Config, streams []trace.Stream) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d cores but %d streams", cfg.Cores, len(streams))
	}

	s := &System{cfg: cfg}

	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s.mem = mem

	llcCfg := cfg.LLC
	llc, err := cache.New(llcCfg)
	if err != nil {
		return nil, err
	}
	llc.SetLower(mem)
	llcPf, err := cfg.LLCPrefetcher.build(memsys.LevelLLC)
	if err != nil {
		return nil, err
	}
	llc.SetPrefetcher(llcPf)
	s.llc = llc

	alloc := vmem.NewPhysAllocator(cfg.Seed)

	for i := 0; i < cfg.Cores; i++ {
		l2Cfg := cfg.L2
		l2Cfg.Name = fmt.Sprintf("L2.%d", i)
		l2, err := cache.New(l2Cfg)
		if err != nil {
			return nil, err
		}
		l2.SetLower(llc)
		l2Pf, err := cfg.L2Prefetcher.build(memsys.LevelL2)
		if err != nil {
			return nil, err
		}
		l2.SetPrefetcher(l2Pf)

		l1dCfg := cfg.L1D
		l1dCfg.Name = fmt.Sprintf("L1D.%d", i)
		l1d, err := cache.New(l1dCfg)
		if err != nil {
			return nil, err
		}
		l1d.SetLower(l2)
		l1dPf, err := cfg.L1DPrefetcher.build(memsys.LevelL1D)
		if err != nil {
			return nil, err
		}
		l1d.SetPrefetcher(l1dPf)

		l1iCfg := cfg.L1I
		l1iCfg.Name = fmt.Sprintf("L1I.%d", i)
		l1i, err := cache.New(l1iCfg)
		if err != nil {
			return nil, err
		}
		l1i.SetLower(l2)
		l1iPf, err := cfg.L1IPrefetcher.build(memsys.LevelL1I)
		if err != nil {
			return nil, err
		}
		l1i.SetPrefetcher(l1iPf)

		core, err := cpu.New(i, cfg.Core, streams[i], alloc)
		if err != nil {
			return nil, err
		}
		core.Attach(l1d, l1i)
		// The L1-D prefetcher computes virtual prefetch addresses;
		// translate through the core's page table without allocating.
		l1d.SetTranslator(core.PageTable().TranslateExisting)

		s.cores = append(s.cores, core)
		s.l1ds = append(s.l1ds, l1d)
		s.l1is = append(s.l1is, l1i)
		s.l2s = append(s.l2s, l2)
	}
	return s, nil
}

// L1D exposes core i's L1-D cache (tests and experiments).
func (s *System) L1D(i int) *cache.Cache { return s.l1ds[i] }

// L2 exposes core i's L2 cache.
func (s *System) L2(i int) *cache.Cache { return s.l2s[i] }

// LLC exposes the shared LLC.
func (s *System) LLC() *cache.Cache { return s.llc }

// DRAM exposes the memory controller.
func (s *System) DRAM() *dram.Controller { return s.mem }

// Core exposes core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// step advances the whole system one cycle, memory side first so that
// data returned this cycle is visible to the cores next cycle.
func (s *System) step() {
	now := s.cycle
	s.mem.Cycle(now)
	s.llc.Cycle(now)
	for i := range s.cores {
		s.l2s[i].Cycle(now)
		s.l1ds[i].Cycle(now)
		s.l1is[i].Cycle(now)
		s.cores[i].Cycle(now)
	}
	s.cycle++
}

// resetStats zeroes every component's counters at the warmup boundary.
func (s *System) resetStats() {
	for i := range s.cores {
		s.cores[i].ResetStats()
		s.l1ds[i].ResetStats()
		s.l1is[i].ResetStats()
		s.l2s[i].ResetStats()
	}
	s.llc.ResetStats()
	s.mem.ResetStats()
}

// Run executes warmup instructions per core (stats discarded), then
// measures until every core has retired measure further instructions.
// Cores that finish early keep executing (contending for shared
// resources) until the last core finishes, as in the paper's
// methodology.
func (s *System) Run(warmup, measure uint64) (*Result, error) {
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		// A generous bound: no workload should average > 500
		// cycles/instruction.
		maxCycles = int64(warmup+measure)*500 + 1_000_000
	}
	deadline := s.cycle + maxCycles

	// Warmup.
	for !s.allRetired(warmup) {
		if s.cycle >= deadline {
			return nil, fmt.Errorf("sim: warmup exceeded %d cycles", maxCycles)
		}
		s.step()
	}
	s.resetStats()
	start := s.cycle

	finish := make([]int64, s.cfg.Cores)
	done := 0
	for done < s.cfg.Cores {
		if s.cycle >= deadline {
			return nil, fmt.Errorf("sim: measurement exceeded %d cycles (%d/%d cores finished)",
				maxCycles, done, s.cfg.Cores)
		}
		s.step()
		for i, c := range s.cores {
			if finish[i] == 0 && c.Retired() >= measure {
				finish[i] = s.cycle
				done++
			}
		}
	}

	res := &Result{
		Cores:         s.cfg.Cores,
		Instructions:  measure,
		CyclesPerCore: make([]int64, s.cfg.Cores),
		IPC:           make([]float64, s.cfg.Cores),
		LLC:           s.llc.Stats,
		DRAM:          s.mem.Stats,
	}
	for i := range s.cores {
		cyc := finish[i] - start
		res.CyclesPerCore[i] = cyc
		res.IPC[i] = float64(measure) / float64(cyc)
		res.CoreStats = append(res.CoreStats, s.cores[i].Stats)
		res.L1D = append(res.L1D, s.l1ds[i].Stats)
		res.L1I = append(res.L1I, s.l1is[i].Stats)
		res.L2 = append(res.L2, s.l2s[i].Stats)
	}
	return res, nil
}

func (s *System) allRetired(n uint64) bool {
	for _, c := range s.cores {
		if c.Retired() < n {
			return false
		}
	}
	return true
}
