// Package sim assembles cores, caches, DRAM and prefetchers into a
// runnable system, runs warmup + measurement phases, and reports IPC
// and hierarchy statistics. It is the layer the experiment harness and
// the public facade drive.
package sim

import (
	"context"
	"fmt"
	"math"

	"ipcp/internal/cache"
	"ipcp/internal/cpu"
	"ipcp/internal/dram"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/telemetry"
	"ipcp/internal/trace"
	"ipcp/internal/vmem"
)

// System is one assembled simulation.
type System struct {
	cfg Config

	cores []*cpu.Core
	l1is  []*cache.Cache
	l1ds  []*cache.Cache
	l2s   []*cache.Cache
	llc   *cache.Cache
	mem   *dram.Controller

	cycle int64

	// pool is the system-wide request free list Build wired into every
	// component.
	pool *memsys.RequestPool

	// alloc is the shared physical-page allocator (captured and replayed
	// by the snapshot machinery).
	alloc *vmem.PhysAllocator

	// pfAttached records that AttachPrefetchers already ran (the
	// CacheWarmOnly measure boundary is one-shot).
	pfAttached bool

	// guards are the fail-safe wrappers Build placed around the
	// attached prefetchers (empty when cfg.DisableGuard).
	guards []guardRef

	// Telemetry (all nil/false when disabled — the step() fast path
	// pays one branch).
	tracer     *telemetry.Tracer
	ilog       *telemetry.IntervalLog
	sampling   bool
	lastSample int64
	prevCum    intervalCum
}

// Result reports one run's measured statistics.
type Result struct {
	Cores        int
	Instructions uint64 // measured instructions per core

	// CyclesPerCore is each core's measured cycle count (finish −
	// measurement start).
	CyclesPerCore []int64
	IPC           []float64

	CoreStats    []cpu.Stats
	L1I, L1D, L2 []cache.Stats
	LLC          cache.Stats
	DRAM         dram.Stats

	// IPCPL1 and IPCPL2 hold per-core introspection snapshots of the
	// L1-D and L2 prefetchers; an entry is nil when that core's
	// prefetcher does not implement telemetry.Introspector.
	IPCPL1 []*telemetry.Snapshot
	IPCPL2 []*telemetry.Snapshot

	// PrefetcherFaults lists guarded prefetchers that were disabled
	// mid-run (panic or budget violation). Empty on a healthy run.
	PrefetcherFaults []PrefetcherFault `json:",omitempty"`
}

// PrefetcherFault records one guarded prefetcher's fail-safe trip: the
// prefetcher was disabled for the rest of the run and the simulation
// continued unprefetched at that level.
type PrefetcherFault struct {
	Core   int    `json:"core"` // -1 for the shared LLC
	Level  string `json:"level"`
	Name   string `json:"name"`
	Reason string `json:"reason"`
}

// guardRef ties a guard to the core it serves (-1 for the LLC).
type guardRef struct {
	g    *prefetch.Guard
	core int
}

// MPKI returns core i's demand misses per kilo instruction at the given
// level ("L1I", "L1D", "L2", "LLC"). For the shared LLC the misses are
// the whole system's, divided by the per-core instruction count times
// the core count. An unknown level returns NaN — loud in any downstream
// arithmetic instead of silently biasing it toward zero.
func (r *Result) MPKI(level string, core int) float64 {
	instr := float64(r.Instructions)
	switch level {
	case "L1I":
		return float64(r.L1I[core].DemandMisses()) * 1000 / instr
	case "L1D":
		return float64(r.L1D[core].DemandMisses()) * 1000 / instr
	case "L2":
		return float64(r.L2[core].DemandMisses()) * 1000 / instr
	case "LLC":
		return float64(r.LLC.DemandMisses()) * 1000 / (instr * float64(r.Cores))
	default:
		return math.NaN()
	}
}

// TotalDemandMisses sums demand misses across cores for a private level
// or returns the shared LLC's.
func (r *Result) TotalDemandMisses(level string) uint64 {
	var t uint64
	switch level {
	case "L1D":
		for i := range r.L1D {
			t += r.L1D[i].DemandMisses()
		}
	case "L2":
		for i := range r.L2 {
			t += r.L2[i].DemandMisses()
		}
	case "LLC":
		t = r.LLC.DemandMisses()
	}
	return t
}

// Build wires a system from cfg, one trace stream per core.
func Build(cfg Config, streams []trace.Stream) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d cores but %d streams", cfg.Cores, len(streams))
	}

	s := &System{cfg: cfg}

	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s.mem = mem

	llcCfg := cfg.LLC
	llc, err := cache.New(llcCfg)
	if err != nil {
		return nil, err
	}
	llc.SetLower(mem)
	if !cfg.CacheWarmOnly {
		llcPf, err := cfg.LLCPrefetcher.build(memsys.LevelLLC)
		if err != nil {
			return nil, err
		}
		llc.SetPrefetcher(s.guardPf(llcPf, memsys.LevelLLC, -1))
	}
	s.llc = llc

	alloc := vmem.NewPhysAllocator(cfg.Seed)
	s.alloc = alloc

	for i := 0; i < cfg.Cores; i++ {
		l2Cfg := cfg.L2
		l2Cfg.Name = fmt.Sprintf("L2.%d", i)
		l2, err := cache.New(l2Cfg)
		if err != nil {
			return nil, err
		}
		l2.SetLower(llc)
		if !cfg.CacheWarmOnly {
			l2Pf, err := cfg.L2Prefetcher.build(memsys.LevelL2)
			if err != nil {
				return nil, err
			}
			l2.SetPrefetcher(s.guardPf(l2Pf, memsys.LevelL2, i))
		}

		l1dCfg := cfg.L1D
		l1dCfg.Name = fmt.Sprintf("L1D.%d", i)
		l1d, err := cache.New(l1dCfg)
		if err != nil {
			return nil, err
		}
		l1d.SetLower(l2)
		if !cfg.CacheWarmOnly {
			l1dPf, err := cfg.L1DPrefetcher.build(memsys.LevelL1D)
			if err != nil {
				return nil, err
			}
			l1d.SetPrefetcher(s.guardPf(l1dPf, memsys.LevelL1D, i))
		}

		l1iCfg := cfg.L1I
		l1iCfg.Name = fmt.Sprintf("L1I.%d", i)
		l1i, err := cache.New(l1iCfg)
		if err != nil {
			return nil, err
		}
		l1i.SetLower(l2)
		if !cfg.CacheWarmOnly {
			l1iPf, err := cfg.L1IPrefetcher.build(memsys.LevelL1I)
			if err != nil {
				return nil, err
			}
			l1i.SetPrefetcher(s.guardPf(l1iPf, memsys.LevelL1I, i))
		}

		core, err := cpu.New(i, cfg.Core, streams[i], alloc)
		if err != nil {
			return nil, err
		}
		core.Attach(l1d, l1i)
		// The L1-D prefetcher computes virtual prefetch addresses;
		// translate through the core's page table without allocating.
		l1d.SetTranslator(core.PageTable().TranslateExisting)

		s.cores = append(s.cores, core)
		s.l1ds = append(s.l1ds, l1d)
		s.l1is = append(s.l1is, l1i)
		s.l2s = append(s.l2s, l2)
	}

	// One request free list per system (sequential stepping is
	// single-threaded within a system; the parallel engine swaps in
	// per-slice pools for the duration of its phase loops).
	pool := memsys.NewRequestPool()
	s.pool = pool
	s.mem.SetRequestPool(pool)
	s.llc.SetRequestPool(pool)
	for i := range s.cores {
		s.cores[i].SetRequestPool(pool)
		s.l1ds[i].SetRequestPool(pool)
		s.l1is[i].SetRequestPool(pool)
		s.l2s[i].SetRequestPool(pool)
	}
	if cfg.Audit != nil {
		cfg.Audit.Attach(s)
	}
	return s, nil
}

// guardPf wraps a prefetcher in the fail-safe Guard unless guarding is
// disabled or the prefetcher is the no-op (whose Nil type the cache's
// fast path keys on).
func (s *System) guardPf(p prefetch.Prefetcher, level memsys.Level, core int) prefetch.Prefetcher {
	if s.cfg.DisableGuard {
		return p
	}
	if _, isNil := p.(prefetch.Nil); isNil {
		return p
	}
	g := prefetch.NewGuard(p, level)
	s.guards = append(s.guards, guardRef{g: g, core: core})
	return g
}

// PrefetcherFaults reports the guards that have tripped so far.
func (s *System) PrefetcherFaults() []PrefetcherFault {
	var out []PrefetcherFault
	for _, ref := range s.guards {
		if disabled, reason := ref.g.Disabled(); disabled {
			out = append(out, PrefetcherFault{
				Core:   ref.core,
				Level:  ref.g.Level().String(),
				Name:   ref.g.Name(),
				Reason: reason,
			})
		}
	}
	return out
}

// L1D exposes core i's L1-D cache (tests and experiments).
func (s *System) L1D(i int) *cache.Cache { return s.l1ds[i] }

// L2 exposes core i's L2 cache.
func (s *System) L2(i int) *cache.Cache { return s.l2s[i] }

// LLC exposes the shared LLC.
func (s *System) LLC() *cache.Cache { return s.llc }

// DRAM exposes the memory controller.
func (s *System) DRAM() *dram.Controller { return s.mem }

// Core exposes core i.
func (s *System) Core(i int) *cpu.Core { return s.cores[i] }

// L1I exposes core i's L1-I cache.
func (s *System) L1I(i int) *cache.Cache { return s.l1is[i] }

// Cores returns the configured core count.
func (s *System) Cores() int { return s.cfg.Cores }

// RequestPool exposes the system-wide request free list (audit/testing).
func (s *System) RequestPool() *memsys.RequestPool { return s.pool }

// Cycle reports the current simulated cycle.
func (s *System) CurrentCycle() int64 { return s.cycle }

// SetTracer attaches an event tracer to every cache and every
// telemetry-aware prefetcher in the system (nil detaches). The trace
// spans warmup and measurement; an EvPhase marker is emitted at the
// warmup boundary so tools can clip to the measured phase.
func (s *System) SetTracer(tr *telemetry.Tracer) {
	s.tracer = tr
	for i := range s.cores {
		s.l1ds[i].SetTracer(tr, i)
		s.l1is[i].SetTracer(tr, i)
		s.l2s[i].SetTracer(tr, i)
		if t, ok := s.l1ds[i].Prefetcher().(telemetry.Traceable); ok {
			t.SetTracer(tr, i)
		}
		if t, ok := s.l2s[i].Prefetcher().(telemetry.Traceable); ok {
			t.SetTracer(tr, i)
		}
	}
	s.llc.SetTracer(tr, -1)
	if t, ok := s.llc.Prefetcher().(telemetry.Traceable); ok {
		t.SetTracer(tr, -1)
	}
}

// SetIntervalLog attaches an interval-metrics log; every log.Every
// cycles of the measured phase, one Sample is recorded. Nil detaches.
func (s *System) SetIntervalLog(log *telemetry.IntervalLog) {
	s.ilog = log
	s.sampling = false
}

// intervalCum is the cumulative-counter snapshot interval deltas are
// computed against.
type intervalCum struct {
	retired                         uint64
	l1dMiss, l2Miss, llcMiss        uint64
	dramBytes, dramBusy, dramCycles uint64

	classIssued [memsys.NumClasses]uint64
	classFills  [memsys.NumClasses]uint64
	classUseful [memsys.NumClasses]uint64
}

// snapshotCum reads the system's cumulative counters.
func (s *System) snapshotCum() intervalCum {
	var c intervalCum
	for i := range s.cores {
		c.retired += s.cores[i].Stats.Retired
		c.l1dMiss += s.l1ds[i].Stats.DemandMisses()
		c.l2Miss += s.l2s[i].Stats.DemandMisses()
		if in, ok := introspector(s.l1ds[i].Prefetcher()); ok {
			snap := in.TelemetrySnapshot()
			for cls := 0; cls < memsys.NumClasses; cls++ {
				c.classIssued[cls] += snap.Classes[cls].Issued
				c.classFills[cls] += snap.Classes[cls].Fills
				c.classUseful[cls] += snap.Classes[cls].Useful
			}
		}
	}
	c.llcMiss = s.llc.Stats.DemandMisses()
	c.dramBytes = s.mem.Stats.BytesTransferred()
	c.dramBusy = s.mem.Stats.BusBusyCycles
	c.dramCycles = s.mem.Stats.Cycles
	return c
}

// flushInterval closes the open interval at the current cycle and
// records its sample.
func (s *System) flushInterval() {
	if s.cycle == s.lastSample {
		return
	}
	cur := s.snapshotCum()
	prev := s.prevCum
	cycles := s.cycle - s.lastSample

	sm := telemetry.Sample{
		StartCycle:   s.lastSample,
		EndCycle:     s.cycle,
		Instructions: cur.retired - prev.retired,
	}
	// IPC is the per-core average over the interval.
	sm.IPC = float64(sm.Instructions) / float64(cycles) / float64(s.cfg.Cores)
	if sm.Instructions > 0 {
		ki := float64(sm.Instructions) / 1000
		sm.L1DMPKI = float64(cur.l1dMiss-prev.l1dMiss) / ki
		sm.L2MPKI = float64(cur.l2Miss-prev.l2Miss) / ki
		sm.LLCMPKI = float64(cur.llcMiss-prev.llcMiss) / ki
	}
	// The raw miss deltas are recorded unconditionally: a zero-retire
	// interval (a fast-forwarded fully stalled span) can still complete
	// in-flight L2/LLC misses and move DRAM data, and the baseline
	// below always advances past them — misses reported only through
	// the instruction-gated MPKI columns would silently vanish from the
	// timeline, breaking deltas-sum-to-totals (pinned by
	// TestIntervalDeltasSumAcrossZeroRetire).
	sm.L1DMisses = cur.l1dMiss - prev.l1dMiss
	sm.L2Misses = cur.l2Miss - prev.l2Miss
	sm.LLCMisses = cur.llcMiss - prev.llcMiss
	sm.DRAMBytes = cur.dramBytes - prev.dramBytes
	if dc := cur.dramCycles - prev.dramCycles; dc > 0 {
		sm.DRAMBusUtil = float64(cur.dramBusy-prev.dramBusy) / float64(dc)
	}
	for cls := 0; cls < memsys.NumClasses; cls++ {
		sm.Classes[cls] = telemetry.ClassSample{
			Issued: cur.classIssued[cls] - prev.classIssued[cls],
			Fills:  cur.classFills[cls] - prev.classFills[cls],
			Useful: cur.classUseful[cls] - prev.classUseful[cls],
		}
	}
	// Degree/accuracy are end-of-interval state, averaged across every
	// introspectable core — an explicit aggregate, not core 0's state
	// attributed to the whole system. A single-core run reports core
	// 0's values exactly (the mean of one is the value itself).
	var snaps []telemetry.Snapshot
	for i := range s.l1ds {
		if in, ok := introspector(s.l1ds[i].Prefetcher()); ok {
			snaps = append(snaps, in.TelemetrySnapshot())
		}
	}
	applyClassState(&sm, snaps)
	s.ilog.Record(sm)
	// The delta baseline advances unconditionally — gating it on
	// interval activity would leave it stale across an idle interval
	// and double-count that interval's counters into the next sample.
	s.prevCum = cur
	s.lastSample = s.cycle
}

// applyClassState fills sm's per-class Degree/Accuracy with the mean
// of the given end-of-interval prefetcher snapshots (integer degrees
// round to nearest). No snapshots leaves the zero values in place.
func applyClassState(sm *telemetry.Sample, snaps []telemetry.Snapshot) {
	n := len(snaps)
	if n == 0 {
		return
	}
	for cls := 0; cls < memsys.NumClasses; cls++ {
		var deg int
		var acc float64
		for i := range snaps {
			deg += snaps[i].Classes[cls].Degree
			acc += snaps[i].Classes[cls].Accuracy
		}
		sm.Classes[cls].Degree = (deg + n/2) / n
		sm.Classes[cls].Accuracy = acc / float64(n)
	}
}

// step advances the whole system one cycle, memory side first so that
// data returned this cycle is visible to the cores next cycle.
func (s *System) step() {
	now := s.cycle
	s.mem.Cycle(now)
	s.llc.Cycle(now)
	for i := range s.cores {
		s.l2s[i].Cycle(now)
		s.l1ds[i].Cycle(now)
		s.l1is[i].Cycle(now)
		s.cores[i].Cycle(now)
	}
	s.cycle++
	if s.sampling && s.cycle-s.lastSample >= s.ilog.Every {
		s.flushInterval()
	}
}

// fastForward advances s.cycle past cycles every component reports as
// no-ops. Each component's NextEvent(now) names the earliest cycle > now
// at which clocking it could change state; the global minimum bounds a
// span of provable no-op cycles that the scheduler skips in one jump,
// replaying the per-cycle counters (core stall accounting, DRAM
// cycle/bus counters) in closed form via AccountSkip. Jumps are capped
// at the run deadline and the next interval-sample boundary, so error
// cycles and telemetry samples land on exactly the cycles the
// cycle-by-cycle reference would produce. The skipped spans contain no
// activity at all, so results are bit-identical with or without
// fast-forwarding (tested by TestFastForwardMatchesReference).
func (s *System) fastForward(deadline int64) {
	if s.cfg.DisableFastForward {
		return
	}
	now := s.cycle - 1 // the cycle step() just clocked
	// Any component due next cycle forecloses a jump — return as soon
	// as one says so, cheapest and most-often-active components first,
	// so the sweep costs little on busy cycles.
	next := int64(math.MaxInt64)
	for i := range s.cores {
		if t := s.cores[i].NextEvent(now); t < next {
			if t <= s.cycle {
				return
			}
			next = t
		}
	}
	for i := range s.cores {
		if t := s.l1ds[i].NextEvent(now); t < next {
			if t <= s.cycle {
				return
			}
			next = t
		}
		if t := s.l2s[i].NextEvent(now); t < next {
			if t <= s.cycle {
				return
			}
			next = t
		}
		if t := s.l1is[i].NextEvent(now); t < next {
			if t <= s.cycle {
				return
			}
			next = t
		}
	}
	if t := s.llc.NextEvent(now); t < next {
		if t <= s.cycle {
			return
		}
		next = t
	}
	if t := s.mem.NextEvent(now); t < next {
		if t <= s.cycle {
			return
		}
		next = t
	}
	if next > deadline {
		next = deadline
	}
	if s.sampling {
		if b := s.lastSample + s.ilog.Every; next > b {
			next = b
		}
	}
	if next <= s.cycle {
		return
	}
	from := s.cycle
	for i := range s.cores {
		s.cores[i].AccountSkip(from, next)
	}
	s.mem.AccountSkip(from, next)
	s.cycle = next
	if s.sampling && s.cycle-s.lastSample >= s.ilog.Every {
		s.flushInterval()
	}
}

// resetStats zeroes every component's counters at the warmup boundary,
// including prefetcher observation counters, so everything reported
// afterwards — aggregates, trace events, interval samples — covers the
// measured phase only.
func (s *System) resetStats() {
	for i := range s.cores {
		s.cores[i].ResetStats()
		s.l1ds[i].ResetStats()
		s.l1is[i].ResetStats()
		s.l2s[i].ResetStats()
		for _, c := range []*cache.Cache{s.l1ds[i], s.l1is[i], s.l2s[i]} {
			if rp, ok := c.Prefetcher().(telemetry.StatsResetter); ok {
				rp.ResetStats()
			}
		}
	}
	s.llc.ResetStats()
	if rp, ok := s.llc.Prefetcher().(telemetry.StatsResetter); ok {
		rp.ResetStats()
	}
	s.mem.ResetStats()

	// The trace deliberately spans the whole run — classification and
	// training happen during warmup, and every event is cycle-stamped —
	// so mark the boundary instead of clearing the ring. Intervals and
	// counters below remain measured-phase only.
	if s.tracer != nil {
		s.tracer.Emit(telemetry.Event{
			Cycle: s.cycle, Kind: telemetry.EvPhase, Core: -1, New: 1,
		})
	}
	if s.ilog != nil {
		s.sampling = true
		s.lastSample = s.cycle
		s.prevCum = s.snapshotCum()
	}
}

// Run executes warmup instructions per core (stats discarded), then
// measures until every core has retired measure further instructions.
// Cores that finish early keep executing (contending for shared
// resources) until the last core finishes, as in the paper's
// methodology.
func (s *System) Run(warmup, measure uint64) (*Result, error) {
	return s.RunContext(context.Background(), warmup, measure)
}

// cancelCheckInterval sets how often the simulation loop polls the
// context: at most once per 4096 advanced cycles — about a microsecond
// of simulated time, and cheap enough (one predictable branch plus an
// atomic load) to be invisible in the cycle loop's profile. A threshold
// rather than a cycle-number mask: fast-forward jumps land on arbitrary
// cycle numbers, and a mask test could miss every one of them.
const cancelCheckInterval = 4096

// RunContext is Run with cooperative cancellation: the cycle loop
// checks ctx every few thousand cycles and returns ctx's error when it
// is cancelled, after closing any open interval-metrics sample so
// flushed telemetry stays consistent.
//
// RunContext is also the simulator's serving-side observability seam:
// a telemetry.ProgressFunc in ctx receives phase/retired/target reports
// at the cancellation-check cadence, and a telemetry.SpanTracer in ctx
// gets one span per phase (sim.warmup, sim.measure). Both ride the
// existing per-few-thousand-cycles branch, so a context carrying
// neither costs the cycle loop nothing.
func (s *System) RunContext(ctx context.Context, warmup, measure uint64) (res *Result, err error) {
	// The shared-warmup methodology decomposes the run into the same
	// phases a forked run uses, so cold and forked runs execute
	// identical code from the measure boundary on.
	if s.cfg.CacheWarmOnly {
		if err := s.RunWarmup(ctx, warmup); err != nil {
			return nil, err
		}
		if err := s.AttachPrefetchers(); err != nil {
			return nil, err
		}
		return s.RunMeasure(ctx, measure)
	}
	progress := telemetry.ProgressFrom(ctx)
	report := func(phase string, target uint64) {
		if progress != nil {
			progress(telemetry.Progress{
				Phase: phase, Retired: s.minRetired(), Target: target, Cycle: s.cycle,
			})
		}
	}
	// One span per phase; the deferred End closes whichever phase a
	// cancellation or cycle-limit error leaves open (End on an ended or
	// nil span no-ops).
	var phaseSpan *telemetry.ActiveSpan
	defer func() {
		if err != nil {
			phaseSpan.SetAttr("error", err.Error())
		}
		phaseSpan.End()
	}()

	// Warmup and measurement share one cycle budget and one
	// cancellation cadence (a fast-forward-heavy warmup must not eat
	// the measure phase's error margin twice).
	ctl := s.newLoopCtl(warmup + measure)

	_, phaseSpan = telemetry.StartSpan(ctx, "sim.warmup")
	report("warmup", warmup)
	if err := s.warmupLoop(ctx, warmup, ctl, func() { report("warmup", warmup) }); err != nil {
		return nil, err
	}
	s.resetStats()
	start := s.cycle
	phaseSpan.End()

	_, phaseSpan = telemetry.StartSpan(ctx, "sim.measure")
	report("measure", measure)
	finish, err := s.measureLoop(ctx, measure, ctl, func() { report("measure", measure) })
	if err != nil {
		return nil, err
	}
	report("measure", measure)
	phaseSpan.End()

	return s.buildResult(measure, start, finish), nil
}

// snapshotOf returns the cache's prefetcher introspection snapshot, or
// nil when the prefetcher exposes none.
func snapshotOf(c *cache.Cache) *telemetry.Snapshot {
	if in, ok := introspector(c.Prefetcher()); ok {
		s := in.TelemetrySnapshot()
		return &s
	}
	return nil
}

// introspector unwraps any Guard layer before probing for the
// introspection interface: the guard must not make a snapshot-less
// prefetcher look like it has one.
func introspector(p prefetch.Prefetcher) (telemetry.Introspector, bool) {
	in, ok := prefetch.Unwrapped(p).(telemetry.Introspector)
	return in, ok
}

func (s *System) allRetired(n uint64) bool {
	for _, c := range s.cores {
		if c.Retired() < n {
			return false
		}
	}
	return true
}

// minRetired is the slowest core's retired-instruction count — the
// number that gates phase completion, and therefore the honest
// "progress so far" figure.
func (s *System) minRetired() uint64 {
	min := uint64(math.MaxUint64)
	for _, c := range s.cores {
		if r := c.Retired(); r < min {
			min = r
		}
	}
	return min
}

// Advance runs the system until every core has retired n further
// instructions, without resetting statistics or building a Result. It
// is the benchmark hook for measuring steady-state throughput: after a
// warmup Run or a prior Advance, repeated calls exercise the inner loop
// with all setup allocation already behind them.
func (s *System) Advance(n uint64) error {
	minRetired := uint64(math.MaxUint64)
	for _, c := range s.cores {
		if r := c.Retired(); r < minRetired {
			minRetired = r
		}
	}
	target := minRetired + n
	deadline := s.cycle + int64(n)*500 + 1_000_000
	exec := s.newExecutor()
	defer exec.close()
	for !s.allRetired(target) {
		if s.cycle >= deadline {
			return fmt.Errorf("sim: Advance(%d) exceeded %d cycles", n, deadline-s.cycle)
		}
		exec.step()
		if !s.allRetired(target) {
			s.fastForward(deadline)
		}
	}
	return nil
}
