//go:build !race

package sim

import "testing"

// TestSteadyStateZeroAllocsAfterGuardTrip asserts the allocation-free
// steady state survives a guard trip: the disabled-prefetcher path must
// not fall off the recycling fast path. Excluded under -race because
// the race runtime adds bookkeeping allocations of its own.
func TestSteadyStateZeroAllocsAfterGuardTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is slow")
	}
	sys := buildTripSystem(t, 300)
	// Run past the trip and through the growth phase of the pools,
	// rings, and page tables (mirrors BenchmarkSimulatorThroughputSteady).
	if err := sys.Advance(60_000); err != nil {
		t.Fatal(err)
	}
	if f := sys.PrefetcherFaults(); len(f) != 1 {
		t.Fatalf("expected the guard to have tripped during warmup, got %+v", f)
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := sys.Advance(5_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady state after guard trip allocates %.1f times per 5k instructions; want 0", avg)
	}
}
