package sim

import (
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/prefetch"
)

// TestMetadataReachesL2 runs the full stack and verifies the L1→L2
// metadata channel: the L2 IPCP must issue class-attributed prefetches
// that can only come from decoded metadata.
func TestMetadataReachesL2(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
	var l2p *core.L2IPCP
	cfg.L2Prefetcher = PrefetcherSpec{New: func() (prefetch.Prefetcher, error) {
		l2p = core.NewL2IPCP(core.DefaultL2Config())
		return l2p, nil
	}}
	sys, err := Build(cfg, streamsFor(t, []string{"bwaves-98"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10000, 40000); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range l2p.Issued {
		total += n
	}
	if total == 0 {
		t.Fatal("L2 IPCP issued nothing — metadata channel broken")
	}
	// On a constant-stride workload the L2's issues must be CS class.
	if l2p.Issued[2] == 0 && l2p.Issued[1] == 0 { // CPLX=2 never expected; CS=1
		t.Errorf("L2 issues not CS-attributed: %v", l2p.Issued)
	}
}

// TestMetadataOffRemovesL2Prefetching verifies the EmitMetadata switch
// end-to-end (Fig. 13b's "metadata off" bar).
func TestMetadataOffRemovesL2Prefetching(t *testing.T) {
	cfg := PaperConfig(1)
	l1cfg := core.DefaultL1Config()
	l1cfg.EmitMetadata = false
	cfg.L1DPrefetcher = PrefetcherSpec{New: func() (prefetch.Prefetcher, error) {
		return core.NewL1IPCP(l1cfg), nil
	}}
	var l2p *core.L2IPCP
	cfg.L2Prefetcher = PrefetcherSpec{New: func() (prefetch.Prefetcher, error) {
		l2p = core.NewL2IPCP(core.DefaultL2Config())
		return l2p, nil
	}}
	sys, err := Build(cfg, streamsFor(t, []string{"bwaves-98"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10000, 40000); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range l2p.Issued {
		total += n
	}
	if total != 0 {
		t.Errorf("L2 IPCP issued %d prefetches with metadata disabled", total)
	}
}

// TestMulticoreDeterminism covers the shared-LLC path.
func TestMulticoreDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := PaperConfig(2)
		cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
		cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
		sys, err := Build(cfg, streamsFor(t, []string{"lbm-94", "mcf-1536"}, 3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(3000, 12000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Errorf("core %d IPC differs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	if a.LLC != b.LLC {
		t.Error("LLC stats not deterministic")
	}
}

// TestPrefetchClassBitsFlow checks the per-line class tags: useful
// prefetch attribution must land in the class that issued it.
func TestPrefetchClassBitsFlow(t *testing.T) {
	res := runWith(t, "fotonik3d-7084", "ipcp", "ipcp", 20000, 60000)
	l1 := res.L1D[0]
	var attributed uint64
	for _, u := range l1.UsefulByClass {
		attributed += u
	}
	if l1.PrefetchUseful == 0 {
		t.Fatal("no useful prefetches")
	}
	if attributed != l1.PrefetchUseful {
		t.Errorf("attributed %d != useful %d", attributed, l1.PrefetchUseful)
	}
}

// TestL1IPrefetcherHelpsBigCode wires next-line into the L1-I and
// checks it reduces instruction-side misses on a cloud-like workload
// whose loop body exceeds the 32KB L1-I.
func TestL1IPrefetcherHelpsBigCode(t *testing.T) {
	run := func(l1i string) *Result {
		cfg := PaperConfig(1)
		cfg.L1IPrefetcher = PrefetcherSpec{Name: l1i}
		sys, err := Build(cfg, streamsFor(t, []string{"cassandra"}, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(10000, 40000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run("")
	nl := run("nl")
	if base.L1I[0].DemandMisses() == 0 {
		t.Fatal("cloud workload produced no L1I misses")
	}
	if nl.L1I[0].DemandMisses() >= base.L1I[0].DemandMisses() {
		t.Errorf("L1I next-line did not reduce I-misses: %d -> %d",
			base.L1I[0].DemandMisses(), nl.L1I[0].DemandMisses())
	}
}
