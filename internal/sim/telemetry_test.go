package sim

import (
	"math"
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/telemetry"

	_ "ipcp/internal/core" // register "ipcp"
)

// buildIPCP builds a single-core system with IPCP at L1-D and L2.
func buildIPCP(t *testing.T, wl string) *System {
	t.Helper()
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
	sys, err := Build(cfg, streamsFor(t, []string{wl}, 1))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTraceCapturesIPCPLifecycle(t *testing.T) {
	sys := buildIPCP(t, "gcc-2226")
	tr := telemetry.NewTracer(1 << 19)
	sys.SetTracer(tr)
	if _, err := sys.Run(5000, 60000); err != nil {
		t.Fatal(err)
	}

	// The trace spans warmup + measurement, so classification events
	// from the training phase must be present alongside steady-state
	// throttle decisions.
	if n := tr.Count(telemetry.EvClassTransition); n == 0 {
		t.Error("no class-transition events in trace")
	}
	if n := tr.Count(telemetry.EvThrottle); n == 0 {
		t.Error("no throttle events in trace")
	}
	if n := tr.Count(telemetry.EvIssued); n == 0 {
		t.Error("no issued events in trace")
	}
	if n := tr.Count(telemetry.EvPhase); n != 1 {
		t.Errorf("got %d phase markers, want exactly 1", n)
	}

	// Events must be cycle-ordered (single emit site per step), and the
	// phase marker must split training from measurement.
	evs := tr.Events()
	var phaseCycle int64 = -1
	for i, e := range evs {
		if i > 0 && e.Cycle < evs[i-1].Cycle {
			t.Fatalf("event %d out of order: cycle %d after %d",
				i, e.Cycle, evs[i-1].Cycle)
		}
		if e.Kind == telemetry.EvPhase {
			phaseCycle = e.Cycle
		}
	}
	if phaseCycle <= 0 {
		t.Fatal("phase marker missing or at cycle 0")
	}
	trainingTransitions := 0
	for _, e := range evs {
		if e.Kind == telemetry.EvClassTransition && e.Cycle < phaseCycle {
			trainingTransitions++
		}
	}
	if trainingTransitions == 0 {
		t.Error("no class transitions during the training phase")
	}
}

func TestIntervalsAlignWithMeasuredPhase(t *testing.T) {
	sys := buildIPCP(t, "gcc-2226")
	log := telemetry.NewIntervalLog(10_000)
	sys.SetIntervalLog(log)
	res, err := sys.Run(5000, 60000)
	if err != nil {
		t.Fatal(err)
	}
	samples := log.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d interval samples, want several", len(samples))
	}

	// The timeline must tile the measured phase: contiguous cycle
	// bounds, full-length intervals except the final partial one.
	for i, s := range samples {
		if s.Index != i {
			t.Errorf("sample %d has index %d", i, s.Index)
		}
		if i > 0 && s.StartCycle != samples[i-1].EndCycle {
			t.Errorf("sample %d not contiguous: starts %d, previous ended %d",
				i, s.StartCycle, samples[i-1].EndCycle)
		}
		length := s.EndCycle - s.StartCycle
		if i < len(samples)-1 && length != log.Every {
			t.Errorf("sample %d spans %d cycles, want %d", i, length, log.Every)
		}
		if length <= 0 || length > log.Every {
			t.Errorf("sample %d has bad span %d", i, length)
		}
	}

	// No warmup event may leak into the measured timeline: the
	// per-class issued/fills/useful deltas must sum exactly to the
	// final snapshot totals, which are reset at the warmup boundary.
	snap := res.IPCPL1[0]
	if snap == nil {
		t.Fatal("IPCP L1 snapshot missing from result")
	}
	var issued, fills, useful [memsys.NumClasses]uint64
	var instr uint64
	for _, s := range samples {
		instr += s.Instructions
		for c := range s.Classes {
			issued[c] += s.Classes[c].Issued
			fills[c] += s.Classes[c].Fills
			useful[c] += s.Classes[c].Useful
		}
	}
	for c := range snap.Classes {
		cls := memsys.PrefetchClass(c)
		if issued[c] != snap.Classes[c].Issued {
			t.Errorf("%s: interval issued sum %d != final total %d",
				cls, issued[c], snap.Classes[c].Issued)
		}
		if fills[c] != snap.Classes[c].Fills {
			t.Errorf("%s: interval fills sum %d != final total %d",
				cls, fills[c], snap.Classes[c].Fills)
		}
		if useful[c] != snap.Classes[c].Useful {
			t.Errorf("%s: interval useful sum %d != final total %d",
				cls, useful[c], snap.Classes[c].Useful)
		}
	}
	if snap.TotalIssued() == 0 {
		t.Error("IPCP issued nothing in the measured phase")
	}
	// Retired-instruction deltas likewise cover exactly the measured
	// phase (cores may overshoot the target by < pipeline width).
	if instr < res.Instructions ||
		instr > res.Instructions+uint64(sys.cfg.Core.Width) {
		t.Errorf("interval instructions sum %d outside [%d, %d]",
			instr, res.Instructions, res.Instructions+uint64(sys.cfg.Core.Width))
	}
}

func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	// Attaching a tracer and interval log must only observe: the
	// simulated outcome has to be bit-identical to a bare run.
	bare := func() *Result {
		sys := buildIPCP(t, "mcf-1536")
		res, err := sys.Run(2000, 20000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	traced := func() *Result {
		sys := buildIPCP(t, "mcf-1536")
		sys.SetTracer(telemetry.NewTracer(1 << 12))
		sys.SetIntervalLog(telemetry.NewIntervalLog(5000))
		res, err := sys.Run(2000, 20000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	if bare.IPC[0] != traced.IPC[0] {
		t.Errorf("tracing changed IPC: %f vs %f", bare.IPC[0], traced.IPC[0])
	}
	if bare.L1D[0] != traced.L1D[0] {
		t.Error("tracing changed L1D statistics")
	}
	if bare.DRAM != traced.DRAM {
		t.Error("tracing changed DRAM statistics")
	}
}

func TestMPKILevels(t *testing.T) {
	sys := buildIPCP(t, "gcc-2226")
	res, err := sys.Run(2000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []string{"L1D", "L1I", "L2", "LLC"} {
		m := res.MPKI(level, 0)
		if math.IsNaN(m) || m < 0 {
			t.Errorf("MPKI(%q) = %f, want a finite non-negative value", level, m)
		}
	}
	// Unknown levels must be loud (NaN propagates into any downstream
	// arithmetic), not a silent zero that biases averages.
	if m := res.MPKI("L3", 0); !math.IsNaN(m) {
		t.Errorf("MPKI of unknown level = %f, want NaN", m)
	}
}
