package sim

import (
	"context"
	"sync"
	"testing"
)

// forkCfg builds a CacheWarmOnly config for one determinism-matrix spec.
func forkCfg(d detSpec) Config {
	cfg := PaperConfig(len(d.workloads))
	cfg.Seed = d.seed
	cfg.L1DPrefetcher = PrefetcherSpec{Name: d.l1d}
	cfg.L2Prefetcher = PrefetcherSpec{Name: d.l2}
	cfg.CacheWarmOnly = true
	return cfg
}

// coldRun runs one spec end to end on the shared-warmup (CacheWarmOnly)
// path without any snapshotting: warmup, drain, attach, measure in a
// single system.
func coldRun(t *testing.T, d detSpec, warmup, measure uint64) *Result {
	t.Helper()
	sys, err := Build(forkCfg(d), streamsFor(t, d.workloads, d.seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// forkSnapshot runs the warmup once and captures it.
func forkSnapshot(t *testing.T, d detSpec, warmup uint64) *Snapshot {
	t.Helper()
	sys, err := Build(forkCfg(d), streamsFor(t, d.workloads, d.seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunWarmup(context.Background(), warmup); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// forkRun restores a fresh system from snap and runs only the measure
// phase.
func forkRun(t *testing.T, d detSpec, snap *Snapshot, measure uint64) *Result {
	t.Helper()
	sys, err := Build(forkCfg(d), streamsFor(t, d.workloads, d.seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachPrefetchers(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunMeasure(context.Background(), measure)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestForkDeterminismMatchesCold is the warmup-forking golden: a run
// forked from a warmup snapshot must be bit-identical to a cold run of
// the same configuration through the same shared-warmup path — same
// IPC, hit/miss counters, per-class prefetch statistics, stall
// accounting and DRAM counters.
func TestForkDeterminismMatchesCold(t *testing.T) {
	for _, d := range detMatrix {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			const warmup, measure = 2000, 10000
			cold := marshal(t, coldRun(t, d, warmup, measure))
			snap := forkSnapshot(t, d, warmup)
			forked := marshal(t, forkRun(t, d, snap, measure))
			if string(cold) != string(forked) {
				t.Errorf("forked Result diverges from cold run:\ncold:   %s\nforked: %s", cold, forked)
			}
		})
	}
}

// TestForkDeterminismGobRoundTrip proves the disk-spill path is
// lossless: a snapshot encoded with gob, decoded, and restored must
// produce the same measured Result as the in-memory snapshot.
func TestForkDeterminismGobRoundTrip(t *testing.T) {
	d := detMatrix[0]
	const warmup, measure = 2000, 10000
	snap := forkSnapshot(t, d, warmup)
	direct := marshal(t, forkRun(t, d, snap, measure))

	b, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	viaDisk := marshal(t, forkRun(t, d, decoded, measure))
	if string(direct) != string(viaDisk) {
		t.Errorf("gob round-tripped snapshot diverges:\ndirect: %s\nvia:    %s", direct, viaDisk)
	}
}

// TestForkConcurrentSharesNoMutableState forks many systems from one
// snapshot concurrently. Under -race this fails if RestoreSnapshot
// leaks any mutable structure (a map, a slice backing array, an RNG)
// from the shared snapshot into the forked systems; without -race it
// still demands identical results from every fork.
func TestForkConcurrentSharesNoMutableState(t *testing.T) {
	d := detMatrix[0]
	const warmup, measure = 2000, 10000
	snap := forkSnapshot(t, d, warmup)

	const forks = 4
	results := make([]string, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = string(marshal(t, forkRun(t, d, snap, measure)))
		}()
	}
	wg.Wait()
	for i := 1; i < forks; i++ {
		if results[i] != results[0] {
			t.Errorf("fork %d diverges from fork 0:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
}

// TestForkSnapshotSignatureGuard pins the mismatch check: restoring a
// snapshot into a differently configured system must fail loudly.
func TestForkSnapshotSignatureGuard(t *testing.T) {
	d := detMatrix[0]
	snap := forkSnapshot(t, d, 2000)

	other := d
	other.seed = d.seed + 1
	sys, err := Build(forkCfg(other), streamsFor(t, other.workloads, other.seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RestoreSnapshot(snap); err == nil {
		t.Fatal("RestoreSnapshot accepted a snapshot from a different configuration")
	}
}
