package sim

import (
	"testing"

	"ipcp/internal/stats"

	_ "ipcp/internal/core" // register "ipcp"
)

// runWith runs one workload with the given L1D/L2 prefetchers and
// returns the result.
func runWith(t *testing.T, wl string, l1pf, l2pf string, warm, meas uint64) *Result {
	t.Helper()
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: l1pf}
	cfg.L2Prefetcher = PrefetcherSpec{Name: l2pf}
	sys, err := Build(cfg, streamsFor(t, []string{wl}, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(warm, meas)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIPCPBeatsNoPrefetchOnStride(t *testing.T) {
	// bwaves-98 has several concurrent stride streams (the paper's
	// common case). The single-stream bwaves-2931 is the paper's own
	// outlier trace — in-page prefetching cannot lead a whole page.
	base := runWith(t, "bwaves-98", "none", "none", 5000, 40000)
	pf := runWith(t, "bwaves-98", "ipcp", "none", 5000, 40000)
	sp := stats.Speedup(pf.IPC[0], base.IPC[0])
	if sp < 1.10 {
		t.Errorf("IPCP speedup on constant-stride workload = %.3f, want > 1.10", sp)
	}
	// L1 miss counting includes MSHR merges (every access of an
	// in-flight line), which depresses the coverage ratio relative to
	// line counts; require a meaningful reduction rather than the
	// paper's line-level 0.60.
	cov := stats.Coverage(base.L1D[0].DemandMisses(), pf.L1D[0].DemandMisses())
	if cov < 0.15 {
		t.Errorf("IPCP L1 coverage on stride workload = %.2f, want > 0.15", cov)
	}
}

func TestIPCPBeatsNoPrefetchOnStream(t *testing.T) {
	base := runWith(t, "gcc-2226", "none", "none", 5000, 40000)
	pf := runWith(t, "gcc-2226", "ipcp", "none", 5000, 40000)
	sp := stats.Speedup(pf.IPC[0], base.IPC[0])
	if sp < 1.10 {
		t.Errorf("IPCP speedup on streaming workload = %.3f, want > 1.10", sp)
	}
	// GS must contribute on a streaming workload.
	gsIssued := pf.L1D[0].IssuedByClass[3] // memsys.ClassGS
	if gsIssued == 0 {
		t.Error("GS class idle on a streaming workload")
	}
}

func TestIPCPMultiLevelAddsOverL1Only(t *testing.T) {
	l1only := runWith(t, "bwaves-98", "ipcp", "none", 5000, 40000)
	multi := runWith(t, "bwaves-98", "ipcp", "ipcp", 5000, 40000)
	// Multi-level IPCP should not be slower (paper: +5.1% on average).
	if multi.IPC[0] < l1only.IPC[0]*0.98 {
		t.Errorf("multi-level IPCP slower than L1-only: %.3f vs %.3f",
			multi.IPC[0], l1only.IPC[0])
	}
	if multi.L2[0].PrefetchIssued == 0 {
		t.Error("L2 IPCP issued nothing")
	}
}

func TestIPCPDoesNotTankIrregular(t *testing.T) {
	base := runWith(t, "omnetpp-874", "none", "none", 5000, 25000)
	pf := runWith(t, "omnetpp-874", "ipcp", "none", 5000, 25000)
	sp := stats.Speedup(pf.IPC[0], base.IPC[0])
	if sp < 0.9 {
		t.Errorf("IPCP degraded an irregular workload by %.1f%%", (1-sp)*100)
	}
}

func TestIPCPAccuracyReasonable(t *testing.T) {
	pf := runWith(t, "lbm-94", "ipcp", "none", 5000, 40000)
	acc := pf.L1D[0].Accuracy()
	if acc < 0.5 {
		t.Errorf("IPCP L1 accuracy on lbm-like stream = %.2f, want > 0.5 (paper: 0.80)", acc)
	}
}

func TestBaselinesRunEndToEnd(t *testing.T) {
	// Every registered baseline must survive a short full-system run.
	for _, name := range []string{"nl", "ipstride", "stream", "bop", "mlop",
		"spp", "vldp", "bingo", "sms", "dspatch", "spp-ppf", "spp-ppf-dspatch", "tskid"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runWith(t, "mcf-1536", name, "none", 2000, 10000)
			if res.IPC[0] <= 0 {
				t.Errorf("%s: IPC %f", name, res.IPC[0])
			}
		})
	}
}
