package sim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"ipcp/internal/cpu"
	"ipcp/internal/telemetry"
)

// runParallel runs one determinism-matrix spec with the given
// ParallelCores setting (fast-forward on — the production scheduler).
func runParallel(t *testing.T, d detSpec, parallel bool, ilog *telemetry.IntervalLog) *Result {
	t.Helper()
	cfg := PaperConfig(len(d.workloads))
	cfg.Seed = d.seed
	cfg.L1DPrefetcher = PrefetcherSpec{Name: d.l1d}
	cfg.L2Prefetcher = PrefetcherSpec{Name: d.l2}
	cfg.ParallelCores = parallel
	sys, err := Build(cfg, streamsFor(t, d.workloads, d.seed))
	if err != nil {
		t.Fatal(err)
	}
	if ilog != nil {
		sys.SetIntervalLog(ilog)
	}
	res, err := sys.Run(2000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelMatchesSequential is the parallel engine's golden test:
// for every determinism-matrix spec, the epoch-barrier engine must
// produce a bit-identical marshaled Result to the sequential scheduler
// — same cycles, hit/miss counters, per-class prefetch statistics,
// stall accounting and DRAM counters. Single-core specs exercise the
// sequential fallback path.
func TestParallelMatchesSequential(t *testing.T) {
	for _, d := range detMatrix {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			seq := marshal(t, runParallel(t, d, false, nil))
			par := marshal(t, runParallel(t, d, true, nil))
			if string(seq) != string(par) {
				t.Errorf("parallel Result diverges from sequential:\nseq: %s\npar: %s", seq, par)
			}
		})
	}
}

// TestParallelIntervalSamples holds the interval timeline to the same
// bit-identity: samples must land on the same cycle boundaries with
// the same contents whether the system was stepped sequentially or
// through the barrier.
func TestParallelIntervalSamples(t *testing.T) {
	d := detMatrix[len(detMatrix)-1] // mix4-ipcp, the 4-core spec
	if len(d.workloads) < 2 {
		t.Fatal("expected a multi-core spec at the end of detMatrix")
	}
	seqLog := telemetry.NewIntervalLog(2048)
	parLog := telemetry.NewIntervalLog(2048)
	runParallel(t, d, false, seqLog)
	runParallel(t, d, true, parLog)
	seq, par := seqLog.Samples(), parLog.Samples()
	if len(seq) == 0 {
		t.Fatal("no interval samples recorded")
	}
	if len(seq) != len(par) {
		t.Fatalf("sample count diverges: sequential %d vs parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("sample %d diverges:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

// TestParallelGOMAXPROCS1 pins scheduler independence: the barrier
// spins yield, so the engine must produce the same bit-identical
// result with a single OS thread as with all of them — determinism
// cannot depend on goroutines actually running in parallel.
func TestParallelGOMAXPROCS1(t *testing.T) {
	d := detMatrix[len(detMatrix)-1]
	ref := marshal(t, runParallel(t, d, false, nil))

	prev := runtime.GOMAXPROCS(1)
	one := marshal(t, runParallel(t, d, true, nil))
	runtime.GOMAXPROCS(prev)
	many := marshal(t, runParallel(t, d, true, nil))

	if string(one) != string(ref) {
		t.Errorf("GOMAXPROCS=1 parallel run diverges from sequential:\npar: %s\nref: %s", one, ref)
	}
	if string(many) != string(ref) {
		t.Errorf("GOMAXPROCS=%d parallel run diverges from sequential:\npar: %s\nref: %s", prev, many, ref)
	}
}

// TestParallelForkFromSnapshot drives the warmup-forking path through
// the parallel engine: a measure phase forked from a (sequentially
// captured) warmup snapshot and stepped through the barrier must be
// bit-identical to the same fork stepped sequentially, and to a cold
// shared-warmup run.
func TestParallelForkFromSnapshot(t *testing.T) {
	d := detSpec{name: "fork-par", seed: 2, l1d: "ipcp", l2: "ipcp",
		workloads: []string{"lbm-94", "mcf-1536"}}
	const warmup, measure = 2000, 10000

	cold := marshal(t, coldRun(t, d, warmup, measure))
	snap := forkSnapshot(t, d, warmup)

	forkWith := func(parallel bool) []byte {
		cfg := forkCfg(d)
		cfg.ParallelCores = parallel
		sys, err := Build(cfg, streamsFor(t, d.workloads, d.seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if err := sys.AttachPrefetchers(); err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunMeasure(context.Background(), measure)
		if err != nil {
			t.Fatal(err)
		}
		return marshal(t, res)
	}

	seqFork := forkWith(false)
	parFork := forkWith(true)
	if string(seqFork) != string(parFork) {
		t.Errorf("parallel fork diverges from sequential fork:\nseq: %s\npar: %s", seqFork, parFork)
	}
	if string(parFork) != string(cold) {
		t.Errorf("parallel fork diverges from cold run:\ncold: %s\npar:  %s", cold, parFork)
	}
}

// TestParallelCancelMidRun stress-tests the barrier under cancellation
// arriving at arbitrary points mid-run (including mid-epoch from the
// engine's perspective): the run must either finish cleanly or return
// the cancellation error, and in both cases the engine must park and
// unwire its workers without leaks or races (this test earns its keep
// under -race, which `make test` applies).
func TestParallelCancelMidRun(t *testing.T) {
	d := detSpec{seed: 3, l1d: "ipcp", l2: "ipcp",
		workloads: []string{"lbm-94", "mcf-1536", "bwaves-2931", "exchange2-387"}}
	for _, delay := range []time.Duration{
		0, 50 * time.Microsecond, 200 * time.Microsecond,
		1 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	} {
		cfg := PaperConfig(len(d.workloads))
		cfg.Seed = d.seed
		cfg.L1DPrefetcher = PrefetcherSpec{Name: d.l1d}
		cfg.L2Prefetcher = PrefetcherSpec{Name: d.l2}
		cfg.ParallelCores = true
		sys, err := Build(cfg, streamsFor(t, d.workloads, d.seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func(delay time.Duration) {
			time.Sleep(delay)
			cancel()
		}(delay)
		_, err = sys.RunContext(ctx, 5000, 50000)
		cancel()
		if err != nil && !strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("delay %v: unexpected error: %v", delay, err)
		}
	}
}

// TestScanFinishedSentinel pins the explicit finished flag: a core
// whose finish cycle is recorded as 0 (legitimate — the scan runs at
// whatever cycle the loop is at) must not be re-counted on later
// scans, which the old `finish[i] == 0` encoding could not guarantee.
func TestScanFinishedSentinel(t *testing.T) {
	cores := []*cpu.Core{{}, {}}
	cores[0].Stats.Retired = 10

	finish := make([]int64, 2)
	finished := make([]bool, 2)

	if n := scanFinished(cores, 0, 10, finish, finished); n != 1 {
		t.Fatalf("first scan counted %d cores, want 1", n)
	}
	if !finished[0] || finish[0] != 0 {
		t.Fatalf("core 0 should be finished at cycle 0: finished=%v finish=%d", finished[0], finish[0])
	}
	// Core 0's recorded cycle is 0 — the exact value the old sentinel
	// used for "not yet finished". It must not be counted again.
	if n := scanFinished(cores, 7, 10, finish, finished); n != 0 {
		t.Fatalf("rescan re-counted an already finished core (%d)", n)
	}
	if finish[0] != 0 {
		t.Fatalf("rescan moved core 0's finish cycle to %d", finish[0])
	}

	cores[1].Stats.Retired = 12
	if n := scanFinished(cores, 9, 10, finish, finished); n != 1 {
		t.Fatalf("core 1 scan counted %d cores, want 1", n)
	}
	if finish[1] != 9 || !finished[1] {
		t.Fatalf("core 1 finish not recorded: finished=%v finish=%d", finished[1], finish[1])
	}
}

// TestIntervalDeltasSumAcrossZeroRetire is the interval-timeline
// accounting regression test: on a workload that stalls long enough to
// produce intervals with zero retired instructions, every counter
// column of the timeline — instructions, raw demand misses, DRAM
// bytes, per-class prefetch counters — must still sum exactly to the
// end-of-run totals. (Before the raw-miss columns existed, a
// zero-retire interval's misses surfaced only through the
// instruction-gated MPKI fields and vanished from the timeline while
// the delta baseline advanced past them.)
func TestIntervalDeltasSumAcrossZeroRetire(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.Seed = 4
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
	sys, err := Build(cfg, streamsFor(t, []string{"mcf-1536"}, 4))
	if err != nil {
		t.Fatal(err)
	}
	ilog := telemetry.NewIntervalLog(50)
	sys.SetIntervalLog(ilog)
	res, err := sys.Run(2000, 10000)
	if err != nil {
		t.Fatal(err)
	}

	samples := ilog.Samples()
	if len(samples) == 0 {
		t.Fatal("no interval samples recorded")
	}
	zeroRetire := 0
	var sumInstr, sumL1D, sumL2, sumLLC, sumBytes uint64
	var sumIssued, sumFills, sumUseful uint64
	for _, sm := range samples {
		if sm.Instructions == 0 {
			zeroRetire++
		}
		sumInstr += sm.Instructions
		sumL1D += sm.L1DMisses
		sumL2 += sm.L2Misses
		sumLLC += sm.LLCMisses
		sumBytes += sm.DRAMBytes
		for cls := range sm.Classes {
			sumIssued += sm.Classes[cls].Issued
			sumFills += sm.Classes[cls].Fills
			sumUseful += sm.Classes[cls].Useful
		}
	}
	if zeroRetire == 0 {
		t.Fatal("no zero-retire interval occurred; shrink the interval length so the test forces the regression scenario")
	}

	var totInstr, totL1D, totL2 uint64
	for i := 0; i < res.Cores; i++ {
		totInstr += res.CoreStats[i].Retired
		totL1D += res.L1D[i].DemandMisses()
		totL2 += res.L2[i].DemandMisses()
	}
	if sumInstr != totInstr {
		t.Errorf("interval instructions sum %d != end-of-run total %d", sumInstr, totInstr)
	}
	if sumL1D != totL1D {
		t.Errorf("interval L1D miss sum %d != end-of-run total %d", sumL1D, totL1D)
	}
	if sumL2 != totL2 {
		t.Errorf("interval L2 miss sum %d != end-of-run total %d", sumL2, totL2)
	}
	if tot := res.LLC.DemandMisses(); sumLLC != tot {
		t.Errorf("interval LLC miss sum %d != end-of-run total %d", sumLLC, tot)
	}
	if tot := res.DRAM.BytesTransferred(); sumBytes != tot {
		t.Errorf("interval DRAM byte sum %d != end-of-run total %d", sumBytes, tot)
	}
	var totIssued, totFills, totUseful uint64
	for _, snap := range res.IPCPL1 {
		if snap == nil {
			t.Fatal("expected an introspectable L1D prefetcher")
		}
		for cls := range snap.Classes {
			totIssued += snap.Classes[cls].Issued
			totFills += snap.Classes[cls].Fills
			totUseful += snap.Classes[cls].Useful
		}
	}
	if sumIssued != totIssued || sumFills != totFills || sumUseful != totUseful {
		t.Errorf("per-class interval sums (%d/%d/%d issued/fills/useful) != totals (%d/%d/%d)",
			sumIssued, sumFills, sumUseful, totIssued, totFills, totUseful)
	}
}

// TestApplyClassStateAggregates pins the multi-core degree/accuracy
// aggregation: the reported end-of-interval state is the mean across
// introspectable cores (rounded to nearest for the integer degree),
// and exactly the single core's state when there is only one.
func TestApplyClassStateAggregates(t *testing.T) {
	var a, b telemetry.Snapshot
	a.Classes[1].Degree, a.Classes[1].Accuracy = 2, 0.5
	b.Classes[1].Degree, b.Classes[1].Accuracy = 3, 0.7

	var sm telemetry.Sample
	applyClassState(&sm, []telemetry.Snapshot{a, b})
	if got := sm.Classes[1].Degree; got != 3 { // mean 2.5 rounds to 3
		t.Errorf("aggregated degree = %d, want 3", got)
	}
	if got := sm.Classes[1].Accuracy; got < 0.5999 || got > 0.6001 {
		t.Errorf("aggregated accuracy = %v, want 0.6", got)
	}

	var single telemetry.Sample
	applyClassState(&single, []telemetry.Snapshot{a})
	if single.Classes[1].Degree != 2 || single.Classes[1].Accuracy != 0.5 {
		t.Errorf("single-core aggregation altered the values: %+v", single.Classes[1])
	}

	var untouched telemetry.Sample
	untouched.Classes[1].Degree = 7
	applyClassState(&untouched, nil)
	if untouched.Classes[1].Degree != 7 {
		t.Error("aggregation with no snapshots should leave the sample untouched")
	}
}
