package sim

import (
	"encoding/json"
	"testing"

	"ipcp/internal/telemetry"
)

// detSpec is one cell of the determinism matrix.
type detSpec struct {
	name      string
	workloads []string
	seed      int64
	l1d, l2   string
}

func (d detSpec) run(t *testing.T, disableFF bool, ilog *telemetry.IntervalLog) *Result {
	t.Helper()
	cfg := PaperConfig(len(d.workloads))
	cfg.Seed = d.seed
	cfg.L1DPrefetcher = PrefetcherSpec{Name: d.l1d}
	cfg.L2Prefetcher = PrefetcherSpec{Name: d.l2}
	cfg.DisableFastForward = disableFF
	sys, err := Build(cfg, streamsFor(t, d.workloads, d.seed))
	if err != nil {
		t.Fatal(err)
	}
	if ilog != nil {
		sys.SetIntervalLog(ilog)
	}
	res, err := sys.Run(2000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func marshal(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var detMatrix = []detSpec{
	{name: "lbm-ipcp", workloads: []string{"lbm-94"}, seed: 1, l1d: "ipcp", l2: "ipcp"},
	{name: "mcf-ipcp", workloads: []string{"mcf-1536"}, seed: 7, l1d: "ipcp", l2: "ipcp"},
	{name: "bwaves-none", workloads: []string{"bwaves-2931"}, seed: 3},
	{name: "gcc-spp", workloads: []string{"gcc-2226"}, seed: 5, l2: "spp"},
	{name: "mix4-ipcp", seed: 2, l1d: "ipcp", l2: "ipcp",
		workloads: []string{"lbm-94", "mcf-1536", "bwaves-2931", "exchange2-387"}},
}

// TestDeterminismRepeatability runs each spec twice under identical
// conditions and requires byte-identical marshaled Results — the
// repeatability half of the determinism golden suite.
func TestDeterminismRepeatability(t *testing.T) {
	for _, d := range detMatrix {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			a := marshal(t, d.run(t, false, nil))
			b := marshal(t, d.run(t, false, nil))
			if string(a) != string(b) {
				t.Errorf("two identical runs produced different Results:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestFastForwardMatchesReference is the scheduler's golden test: the
// next-event fast-forwarding run must be bit-identical to the
// cycle-by-cycle reference — same hits, misses, MPKI inputs, IPC
// (hence speedups), per-class prefetch counters, stall accounting, and
// DRAM counters — across single- and multi-core specs with and without
// prefetching.
func TestFastForwardMatchesReference(t *testing.T) {
	for _, d := range detMatrix {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			fast := marshal(t, d.run(t, false, nil))
			ref := marshal(t, d.run(t, true, nil))
			if string(fast) != string(ref) {
				t.Errorf("fast-forwarded Result diverges from cycle-by-cycle reference:\nfast: %s\nref:  %s", fast, ref)
			}
		})
	}
}

// TestFastForwardIntervalSamples pins the telemetry path: interval
// samples must land on the same cycle boundaries with the same contents
// whether or not idle spans are skipped (jumps are capped at sample
// boundaries).
func TestFastForwardIntervalSamples(t *testing.T) {
	spec := detSpec{workloads: []string{"mcf-1536"}, seed: 4, l1d: "ipcp", l2: "ipcp"}
	fastLog := telemetry.NewIntervalLog(1000)
	refLog := telemetry.NewIntervalLog(1000)
	spec.run(t, false, fastLog)
	spec.run(t, true, refLog)
	fast, ref := fastLog.Samples(), refLog.Samples()
	if len(fast) == 0 {
		t.Fatal("no interval samples recorded")
	}
	if len(fast) != len(ref) {
		t.Fatalf("sample count diverges: fast %d vs reference %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Errorf("sample %d diverges:\nfast: %+v\nref:  %+v", i, fast[i], ref[i])
		}
	}
}
