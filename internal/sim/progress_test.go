package sim

import (
	"context"
	"sync"
	"testing"

	"ipcp/internal/telemetry"
	"ipcp/internal/trace"
)

// progressSystem builds a small single-core system for the observability
// tests.
func progressSystem(t *testing.T) *System {
	t.Helper()
	cfg := PaperConfig(1)
	cfg.L1DPrefetcher = PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = PrefetcherSpec{Name: "ipcp"}
	sys, err := Build(cfg, []trace.Stream{strideStream()})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// strideStream is an endless strided load loop.
func strideStream() trace.Stream {
	return &trace.SliceStream{
		Instrs: []trace.Instr{
			{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x100000}},
			{IP: 0x400004, Loads: [trace.MaxLoads]uint64{0x100040}},
			{IP: 0x400008, Loads: [trace.MaxLoads]uint64{0x100080}},
			{IP: 0x40000c},
		},
		Loop: true,
	}
}

// TestProgressHookReportsPhases drives a run with a progress sink and
// checks the reports walk warmup → measure with monotonic retirement
// and honest targets.
func TestProgressHookReportsPhases(t *testing.T) {
	sys := progressSystem(t)
	var mu sync.Mutex
	var got []telemetry.Progress
	ctx := telemetry.ContextWithProgress(context.Background(), func(p telemetry.Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	const warmup, measure = 20_000, 60_000
	if _, err := sys.RunContext(ctx, warmup, measure); err != nil {
		t.Fatal(err)
	}
	if len(got) < 4 {
		t.Fatalf("only %d progress reports for a %d-instruction run", len(got), warmup+measure)
	}
	seenMeasure := false
	var lastCycle int64 = -1
	for i, p := range got {
		switch p.Phase {
		case "warmup":
			if seenMeasure {
				t.Fatalf("report %d: warmup after measure", i)
			}
			if p.Target != warmup {
				t.Errorf("report %d: warmup target = %d, want %d", i, p.Target, warmup)
			}
		case "measure":
			seenMeasure = true
			if p.Target != measure {
				t.Errorf("report %d: measure target = %d, want %d", i, p.Target, measure)
			}
		default:
			t.Fatalf("report %d: unknown phase %q", i, p.Phase)
		}
		if p.Cycle < lastCycle {
			t.Errorf("report %d: cycle went backwards (%d < %d)", i, p.Cycle, lastCycle)
		}
		lastCycle = p.Cycle
		if p.Retired > p.Target {
			// Retirement may overshoot slightly within a step, but never
			// past target plus one step's worth.
			if p.Retired > p.Target+8 {
				t.Errorf("report %d: retired %d far past target %d", i, p.Retired, p.Target)
			}
		}
	}
	if !seenMeasure {
		t.Fatal("no measure-phase reports")
	}
	final := got[len(got)-1]
	if final.Phase != "measure" || final.Retired < measure {
		t.Errorf("final report = %+v, want completed measure phase", final)
	}
}

// TestPhaseSpansEmitted runs with a span tracer in the context and
// expects one sim.warmup and one sim.measure span, in order.
func TestPhaseSpansEmitted(t *testing.T) {
	sys := progressSystem(t)
	tr := telemetry.NewSpanTracer(64)
	ctx := telemetry.ContextWithSpanTracer(context.Background(), tr)
	ctx = telemetry.ContextWithJobID(ctx, "j-test")
	if _, err := sys.RunContext(ctx, 10_000, 30_000); err != nil {
		t.Fatal(err)
	}
	spans := tr.Snapshot()
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
		if s.JobID != "j-test" {
			t.Errorf("span %s job id = %q", s.Name, s.JobID)
		}
		if s.Dur <= 0 {
			t.Errorf("span %s has no duration", s.Name)
		}
	}
	if len(names) != 2 || names[0] != "sim.warmup" || names[1] != "sim.measure" {
		t.Fatalf("spans = %v, want [sim.warmup sim.measure]", names)
	}
}

// TestCancelledRunClosesPhaseSpan cancels mid-warmup and expects the
// open phase span to be published with an error attribute instead of
// leaking unended.
func TestCancelledRunClosesPhaseSpan(t *testing.T) {
	sys := progressSystem(t)
	tr := telemetry.NewSpanTracer(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx = telemetry.ContextWithSpanTracer(ctx, tr)
	if _, err := sys.RunContext(ctx, 1_000_000, 1_000_000); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "sim.warmup" {
		t.Fatalf("spans after cancellation = %+v, want the open warmup span", spans)
	}
	hasErr := false
	for _, a := range spans[0].Attrs {
		if a.Key == "error" {
			hasErr = true
		}
	}
	if !hasErr {
		t.Errorf("cancelled phase span carries no error attr: %+v", spans[0])
	}
}
