package sim

import (
	"fmt"

	"ipcp/internal/cache"
	"ipcp/internal/cpu"
	"ipcp/internal/dram"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// PrefetcherSpec selects the prefetcher for one cache level: either a
// registered name, or an explicit constructor (which wins when both are
// set). The zero value means "no prefetching". A constructor error
// aborts the build cleanly instead of crashing the worker that called
// it.
type PrefetcherSpec struct {
	Name string
	New  func() (prefetch.Prefetcher, error)
}

func (s PrefetcherSpec) build(level memsys.Level) (prefetch.Prefetcher, error) {
	if s.New != nil {
		return s.New()
	}
	return prefetch.New(s.Name, level)
}

// String names the spec for reports.
func (s PrefetcherSpec) String() string {
	if s.New != nil {
		p, err := s.New()
		if err != nil {
			return fmt.Sprintf("error(%v)", err)
		}
		return p.Name()
	}
	if s.Name == "" {
		return "none"
	}
	return s.Name
}

// Config describes a whole simulated system.
type Config struct {
	Cores int
	Core  cpu.Config

	L1I, L1D, L2, LLC cache.Config
	DRAM              dram.Config

	// Prefetchers per level. Each private level gets one instance per
	// core; the LLC gets a single shared instance. The L1-I prefetcher
	// sees code reads (next-line helps big-code server workloads).
	L1IPrefetcher PrefetcherSpec
	L1DPrefetcher PrefetcherSpec
	L2Prefetcher  PrefetcherSpec
	LLCPrefetcher PrefetcherSpec

	// Seed drives physical page allocation.
	Seed int64

	// DisableGuard turns off the fail-safe prefetch.Guard wrapper that
	// Build places around every attached prefetcher. Guarded is the
	// default: a panicking or budget-violating prefetcher is disabled
	// for the rest of the run (recorded in Result.PrefetcherFaults)
	// and the simulation continues unprefetched, mirroring hardware
	// fail-safety. Tests that want raw panics opt out.
	DisableGuard bool

	// CacheWarmOnly selects the shared-warmup methodology: Build leaves
	// every prefetcher detached (the no-op Nil), so the warmup phase
	// warms caches, TLBs and branch predictors only, making the
	// post-warmup architectural state independent of the prefetcher
	// configuration. AttachPrefetchers installs the configured
	// prefetchers cold at the measure boundary; RunContext then routes
	// through RunWarmup (which drains to quiescence) + AttachPrefetchers
	// + RunMeasure. This is what lets one warmup be snapshotted once and
	// forked across every sweep point that differs only in prefetchers.
	// Off (the default), warmup trains prefetchers too and the classic
	// single-phase RunContext path is used, byte for byte.
	CacheWarmOnly bool

	// ParallelCores steps multi-core systems with the parallel
	// epoch-barrier engine: one goroutine per core + private-cache
	// slice, with the shared LLC/DRAM clocked by the coordinator and
	// every shared-resource interaction resolved in the sequential
	// scheduler's canonical order (see DESIGN.md §17). Results are
	// bit-identical to the sequential engine — the flag trades wall
	// clock, never simulation outcome — so it is deliberately absent
	// from memoization keys and checkpoint signatures. Single-core
	// systems, and runs with a tracer or auditor attached (both hook
	// component internals mid-cycle), fall back to sequential
	// stepping.
	ParallelCores bool

	// MaxCycles aborts a run that fails to make progress (a deadlock
	// guard; 0 means a generous default is derived from the
	// instruction budget).
	MaxCycles int64

	// DisableFastForward forces the scheduler to clock every component
	// on every cycle instead of skipping provably idle spans. The two
	// modes produce bit-identical results (the determinism suite holds
	// them to that); the reference mode exists for that comparison and
	// for debugging the scheduler itself.
	DisableFastForward bool

	// Audit, when non-nil, is attached to the freshly built system and
	// installs the runtime reference models and invariant checks of
	// internal/audit (in the spirit of -race: heavy, exact, opt-in).
	// Nil — the default — leaves every hot path on its allocation-free
	// fast paths.
	Audit Auditor
}

// Auditor is the hook Config.Audit plugs into Build: once the system is
// fully wired (prefetchers guarded, request pool shared), Attach may
// wrap prefetchers, attach cache auditors, and enable request-pool
// auditing. Implemented by internal/audit.Checker; defined here so sim
// does not import the audit machinery it hosts.
type Auditor interface {
	Attach(sys *System)
}

// PaperConfig returns the simulated system of the paper's Table II for
// the given core count: 4 GHz 4-wide cores with 256-entry ROBs, 32KB
// L1-I, 48KB L1-D (PQ 8, MSHR 16, 2 ports), 512KB L2 (PQ 16, MSHR 32),
// a shared 2MB/core LLC, and DDR4-1600 with one channel per single-core
// run or two channels for multi-core.
func PaperConfig(cores int) Config {
	channels := 1
	if cores > 1 {
		channels = 2
	}
	llcPorts := cores
	if llcPorts < 2 {
		llcPorts = 2
	}
	return Config{
		Cores: cores,
		Core:  cpu.DefaultConfig(),
		L1I: cache.Config{
			Name: "L1I", Level: memsys.LevelL1I,
			Sets: 64, Ways: 8, Latency: 3, Ports: 4,
			RQSize: 16, WQSize: 16, PQSize: 8, MSHRs: 8,
		},
		L1D: cache.Config{
			Name: "L1D", Level: memsys.LevelL1D,
			Sets: 64, Ways: 12, Latency: 5, Ports: 2,
			RQSize: 64, WQSize: 64, PQSize: 8, MSHRs: 16,
		},
		L2: cache.Config{
			Name: "L2", Level: memsys.LevelL2,
			Sets: 1024, Ways: 8, Latency: 10, Ports: 2,
			RQSize: 32, WQSize: 32, PQSize: 16, MSHRs: 32,
		},
		LLC: cache.Config{
			Name: "LLC", Level: memsys.LevelLLC,
			Sets: 2048 * cores, Ways: 16, Latency: 20, Ports: llcPorts,
			RQSize: 32 * cores, WQSize: 32 * cores,
			PQSize: 32 * cores, MSHRs: 64 * cores,
		},
		DRAM: dram.DefaultConfig(channels),
		Seed: 1,
	}
}

func (c Config) validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: core count must be positive, got %d", c.Cores)
	}
	if c.LLC.Sets&(c.LLC.Sets-1) != 0 {
		return fmt.Errorf("sim: LLC sets (%d) must be a power of two; "+
			"PaperConfig requires a power-of-two core count", c.LLC.Sets)
	}
	if c.CacheWarmOnly && c.Audit != nil {
		return fmt.Errorf("sim: CacheWarmOnly and Audit are mutually exclusive " +
			"(the audit oracles attach to prefetchers at build time)")
	}
	return nil
}
