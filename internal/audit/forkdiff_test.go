package audit

import (
	"context"
	"testing"
)

// TestForkDifferentialSuite is the shared-warmup acceptance gate: every
// workload (the full bundled suite under AUDIT_FULL=1, the
// class-spanning subset otherwise) runs cold and forked-from-snapshot,
// and the two Results must be byte-identical.
func TestForkDifferentialSuite(t *testing.T) {
	names := suiteNames()
	rep, err := RunForkSuite(context.Background(), names, RunOptions{})
	if err != nil {
		t.Fatalf("fork suite failed to run: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("%v\n%s", err, rep.String())
	}
	if rep.Runs != 2*len(names) {
		t.Fatalf("expected %d runs, got %d", 2*len(names), rep.Runs)
	}
}
