package audit

import (
	"context"
	"os"
	"testing"
)

// TestParallelDifferentialSuite holds the parallel epoch-barrier
// engine to bit-identity with the sequential scheduler across the
// multi-core differential mixes (plus the 8-core mix under
// AUDIT_FULL=1, which `make audit` sets).
func TestParallelDifferentialSuite(t *testing.T) {
	full := os.Getenv("AUDIT_FULL") != ""
	opt := RunOptions{}
	if full {
		opt.Warmup, opt.Measure = 5_000, 20_000
	}
	rep, err := RunParallelSuite(context.Background(), ParallelSpecs(full), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(rep.String())
	}
	if rep.Workloads == 0 {
		t.Fatal("parallel differential suite ran no mixes")
	}
}
