package audit

import (
	"fmt"

	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/telemetry"
)

// oracleMuteAfter stops lockstep comparison for a recorder after this
// many oracle violations: once the reference and the implementation
// disagree their states drift apart, and every further access would
// spray cascading mismatches that bury the root cause.
const oracleMuteAfter = 8

// oracle is the lockstep reference model a recorder drives. Operate
// regenerates the candidate stream from scratch and matches it against
// what the production prefetcher issued; postFill/postCycle cross-check
// the throttle and NL-gate state; finishChecks compares the cumulative
// counters at end of run.
type oracle interface {
	Operate(now int64, a *prefetch.Access, m *opMatcher)
	Fill(now int64, f *prefetch.FillEvent)
	Cycle(now int64)
	ResetStats()
	postFill(rep func(kind, detail string))
	postCycle(rep func(kind, detail string))
	finishChecks(rep func(kind, detail string))
}

// candRec is one candidate the production prefetcher pushed through the
// recorder's issuer during the current Operate, with the verdict the
// cache returned.
type candRec struct {
	addr     memsys.Addr
	ip       memsys.Addr
	class    memsys.PrefetchClass
	meta     uint16
	accepted bool
}

// recorder wraps a cache's attached prefetcher (usually the fail-safe
// Guard around the real one). It interposes the issuer to record every
// candidate with its verdict, checks the paper's inline invariants at
// issue time, and replays each Operate through the reference oracle.
// It forwards Name/NextEvent/SetTracer/ResetStats so wrapping never
// changes scheduling or telemetry behaviour.
type recorder struct {
	k     *Checker
	name  string
	inner prefetch.Prefetcher
	guard *prefetch.Guard // nil when the build is unguarded

	l1 *core.L1IPCP // unwrapped target, when it is the L1 IPCP
	l2 *core.L2IPCP // unwrapped target, when it is the L2 IPCP

	ipcp bool
	ceil [memsys.NumClasses]int

	ora        oracle
	oracleDead bool
	oracleVios int

	rr *refRRFilter // RR-filter mirror for the rr-readmit invariant

	innerNext prefetch.NextEventer
	ri        recIssuer

	// per-Operate state
	now      int64
	trigger  memsys.Addr
	curCands []candRec
	perClass [memsys.NumClasses]int

	stream []issueRec // accepted candidates (Options.RecordStreams)
}

func newRecorder(k *Checker, inner prefetch.Prefetcher, name string) *recorder {
	r := &recorder{k: k, name: name, inner: inner}
	r.guard, _ = inner.(*prefetch.Guard)
	r.innerNext, _ = inner.(prefetch.NextEventer)
	target := prefetch.Unwrapped(inner)
	r.ceil, r.ipcp = ipcpCeilings(target)
	switch t := target.(type) {
	case *core.L1IPCP:
		r.l1 = t
		// The oracle models the paper's four spatial classes; the
		// optional temporal extension issues ClassNone candidates the
		// reference cannot reproduce, so its presence limits the
		// recorder to the inline invariants.
		if !t.TemporalEnabled() {
			r.ora = newL1Oracle(t)
			if t.Config().UseRRFilter {
				r.rr = newRefRR()
			}
		}
	case *core.L2IPCP:
		r.l2 = t
		r.ora = newL2Oracle(t)
	}
	r.ri.r = r
	return r
}

// vio reports one violation against this recorder's component.
func (r *recorder) vio(now int64, kind, detail string) {
	r.k.report(Violation{Cycle: now, Where: r.name, Kind: kind, Detail: detail})
}

// oracleVio reports a lockstep divergence and mutes the oracle once the
// cascade threshold is reached.
func (r *recorder) oracleVio(now int64, kind, detail string) {
	r.oracleVios++
	if r.oracleVios > oracleMuteAfter {
		return
	}
	r.vio(now, kind, detail)
	if r.oracleVios == oracleMuteAfter {
		r.oracleDead = true
		r.vio(now, "oracle-muted",
			fmt.Sprintf("reference comparison stopped after %d divergences (states have drifted)", oracleMuteAfter))
	}
}

// oracleLive reports whether the lockstep comparison is still valid: a
// tripped guard drops calls the oracle would still see, so the first
// trip permanently detaches the reference (the trip itself is reported
// through Result.PrefetcherFaults, not as an audit violation).
func (r *recorder) oracleLive() bool {
	if r.ora == nil || r.oracleDead {
		return false
	}
	if r.guard != nil {
		if tripped, _ := r.guard.Disabled(); tripped {
			r.oracleDead = true
			return false
		}
	}
	return true
}

// Name implements prefetch.Prefetcher.
func (r *recorder) Name() string { return r.inner.Name() }

// Unwrap implements prefetch.Wrapper so telemetry introspection pierces
// the recorder exactly as it pierces the Guard.
func (r *recorder) Unwrap() prefetch.Prefetcher { return r.inner }

// Operate implements prefetch.Prefetcher.
func (r *recorder) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	r.now = now
	r.trigger = a.VAddr
	if r.trigger == 0 {
		r.trigger = a.Addr
	}
	r.curCands = r.curCands[:0]
	r.perClass = [memsys.NumClasses]int{}
	// Mirror the production RR-filter insertion of the triggering
	// demand block (it happens before any candidate is generated, so
	// the mirror must be updated before forwarding).
	if r.rr != nil && a.Type.IsDemand() && a.Type != memsys.CodeRead {
		r.rr.insert(r.trigger)
	}
	r.ri.inner = iss
	r.inner.Operate(now, a, &r.ri)

	if r.oracleLive() {
		m := opMatcher{r: r, now: now}
		r.ora.Operate(now, a, &m)
		m.finish()
	}
	if r.k.opt.RecordStreams {
		for _, c := range r.curCands {
			if c.accepted {
				r.stream = append(r.stream, issueRec{Cycle: now, Addr: c.addr, Class: c.class, Meta: c.meta})
			}
		}
	}
}

// Fill implements prefetch.Prefetcher: after the production prefetcher
// and the oracle have both seen the fill, the throttle state (degree,
// accuracy window) must agree — this is where a window that closed a
// fill early or late becomes visible.
func (r *recorder) Fill(now int64, f *prefetch.FillEvent) {
	r.inner.Fill(now, f)
	if r.oracleLive() {
		r.ora.Fill(now, f)
		r.ora.postFill(func(kind, detail string) { r.oracleVio(now, kind, detail) })
	}
}

// Cycle implements prefetch.Prefetcher; the NL gate is cross-checked
// every cycle (the compare is one boolean).
func (r *recorder) Cycle(now int64) {
	r.inner.Cycle(now)
	if r.oracleLive() {
		r.ora.Cycle(now)
		r.ora.postCycle(func(kind, detail string) { r.oracleVio(now, kind, detail) })
	}
}

// NextEvent implements prefetch.NextEventer by delegation; a recorder
// must never change the fast-forward schedule.
func (r *recorder) NextEvent(now int64) int64 {
	if r.innerNext != nil {
		return r.innerNext.NextEvent(now)
	}
	return now + 1
}

// SetTracer implements telemetry.Traceable by forwarding.
func (r *recorder) SetTracer(tr *telemetry.Tracer, core int) {
	if t, ok := r.inner.(telemetry.Traceable); ok {
		t.SetTracer(tr, core)
	}
}

// ResetStats implements telemetry.StatsResetter: the warmup boundary
// zeroes the production observation counters, so the oracle's mirror
// counters and the recorded stream reset with them.
func (r *recorder) ResetStats() {
	if rs, ok := r.inner.(telemetry.StatsResetter); ok {
		rs.ResetStats()
	}
	if r.ora != nil {
		r.ora.ResetStats()
	}
	r.stream = r.stream[:0]
}

// finish runs the end-of-run counter cross-checks.
func (r *recorder) finish() {
	if r.oracleLive() {
		r.ora.finishChecks(func(kind, detail string) { r.oracleVio(r.now, kind, detail) })
	}
}

// recIssuer sits between the wrapped prefetcher and the cache's real
// issuer: it checks the inline invariants on every candidate and
// records the (candidate, verdict) pairs the oracle later matches.
type recIssuer struct {
	r     *recorder
	inner prefetch.Issuer
}

// Issue implements prefetch.Issuer.
func (ri *recIssuer) Issue(c prefetch.Candidate) bool {
	r := ri.r
	// Invariant (§IV): an IPCP prefetch never crosses the page boundary
	// of its triggering access. Checked before forwarding so even a
	// rejected candidate is flagged.
	if r.ipcp && c.Class != memsys.ClassNone && r.trigger != 0 && !memsys.SamePage(r.trigger, c.Addr) {
		r.vio(r.now, "page-cross",
			fmt.Sprintf("class %v candidate %#x crosses page of trigger %#x", c.Class, c.Addr, r.trigger))
	}
	// Invariant (§V): the RR filter must have dropped a candidate whose
	// tag is resident — seeing one here means the filter was bypassed.
	if r.rr != nil && c.Class != memsys.ClassNone && r.rr.hit(c.Addr) {
		r.vio(r.now, "rr-readmit",
			fmt.Sprintf("class %v candidate %#x readmitted past a resident RR-filter tag", c.Class, c.Addr))
	}
	ok := ri.inner.Issue(c)
	r.curCands = append(r.curCands, candRec{addr: c.Addr, ip: c.IP, class: c.Class, meta: c.Meta, accepted: ok})
	if ok {
		if r.rr != nil {
			r.rr.insert(c.Addr)
		}
		// Invariant (§V): per class, one Operate never lands more
		// accepted prefetches than the class's degree ceiling (the
		// un-throttled default degree).
		if lim := r.ceil[c.Class]; r.ipcp && lim > 0 {
			r.perClass[c.Class]++
			if r.perClass[c.Class] > lim {
				r.vio(r.now, "degree-ceiling",
					fmt.Sprintf("class %v accepted %d candidates in one Operate, ceiling %d",
						c.Class, r.perClass[c.Class], lim))
			}
		}
	}
	return ok
}

// opMatcher is the lockstep cursor one oracle Operate call walks: the
// oracle calls expect for every candidate it would issue, in order, and
// receives the production verdict back (so filter/issued state on both
// sides stays synchronized even across rejections).
type opMatcher struct {
	r   *recorder
	now int64
	pos int
}

func (m *opMatcher) expect(addr, ip memsys.Addr, cls memsys.PrefetchClass, meta uint16) bool {
	r := m.r
	if m.pos >= len(r.curCands) {
		r.oracleVio(m.now, "missing-candidate",
			fmt.Sprintf("reference issues class %v %#x (ip %#x), implementation issued only %d candidate(s)",
				cls, addr, ip, len(r.curCands)))
		m.pos++
		return false
	}
	got := r.curCands[m.pos]
	m.pos++
	if got.addr != addr || got.class != cls || got.meta != meta || got.ip != ip {
		r.oracleVio(m.now, "stream-mismatch",
			fmt.Sprintf("candidate %d: implementation (%#x ip %#x class %v meta %#x) vs reference (%#x ip %#x class %v meta %#x)",
				m.pos-1, got.addr, got.ip, got.class, got.meta, addr, ip, cls, meta))
	}
	return got.accepted
}

// finish flags candidates the implementation issued beyond what the
// reference generated.
func (m *opMatcher) finish() {
	r := m.r
	if m.pos < len(r.curCands) {
		extra := r.curCands[m.pos]
		r.oracleVio(m.now, "extra-candidate",
			fmt.Sprintf("implementation issued %d candidate(s) beyond the reference stream, first %#x class %v",
				len(r.curCands)-m.pos, extra.addr, extra.class))
	}
}

// refRRFilter is the audit-side mirror of the paper's 32-entry
// recent-request filter (12-bit folded tags, FIFO replacement).
type refRRFilter struct {
	tags [32]uint16
	pos  int
}

func newRefRR() *refRRFilter {
	f := &refRRFilter{}
	for i := range f.tags {
		f.tags[i] = 0xffff
	}
	return f
}

func refRRTag(addr memsys.Addr) uint16 {
	b := memsys.BlockNumber(addr)
	return uint16((b ^ b>>12) & 0xfff)
}

func (f *refRRFilter) hit(addr memsys.Addr) bool {
	t := refRRTag(addr)
	for _, x := range &f.tags {
		if x == t {
			return true
		}
	}
	return false
}

func (f *refRRFilter) insert(addr memsys.Addr) {
	f.tags[f.pos] = refRRTag(addr)
	f.pos = (f.pos + 1) % len(f.tags)
}
