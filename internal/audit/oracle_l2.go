package audit

import (
	"fmt"

	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// l2Oracle is the reference model of the paper's L2 IPCP (§V,
// Multilevel Holistic IPCP; Fig. 6): a bookkeeping prefetcher that
// never trains on the jumbled L2 stream, only decodes the 9-bit
// metadata arriving with L1 prefetches and replays deep per-class runs
// on demand hits of known IPs. CPLX is deliberately absent at this
// level.
type l2Oracle struct {
	impl *core.L2IPCP
	cfg  core.L2Config

	table []oraL2Entry

	missCounter uint64
	cycleMark   int64
	nlOn        bool

	issued [memsys.NumClasses]uint64
}

type oraL2Entry struct {
	tag    uint64
	valid  bool
	class  memsys.PrefetchClass
	stride int8
}

func newL2Oracle(impl *core.L2IPCP) *l2Oracle {
	cfg := impl.Config()
	return &l2Oracle{
		impl:  impl,
		cfg:   cfg,
		table: make([]oraL2Entry, cfg.IPTableEntries),
		nlOn:  true,
	}
}

// Operate regenerates the L2 decision for one access.
func (o *l2Oracle) Operate(now int64, a *prefetch.Access, m *opMatcher) {
	idx := (a.IP >> 2) % uint64(len(o.table))
	tag := (a.IP >> 2) / uint64(len(o.table)) & 0x1ff

	if a.Type == memsys.Prefetch {
		if a.Meta != 0 {
			md := memsys.DecodeMetadata(a.Meta)
			o.table[idx] = oraL2Entry{tag: tag, valid: true, class: md.Class, stride: md.Stride}
			o.run(m, a.Addr, md.Class, md.Stride)
		}
		return
	}
	if !a.Type.IsDemand() || a.Type == memsys.CodeRead {
		return
	}
	if !a.Hit {
		o.missCounter++
	}
	e := o.table[idx]
	if e.valid && e.tag == tag {
		o.run(m, a.Addr, e.class, e.stride)
	}
}

// run issues one class's deep run: degree prefetches spaced stride
// blocks apart, stopping at the page boundary.
func (o *l2Oracle) run(m *opMatcher, addr memsys.Addr, cls memsys.PrefetchClass, stride int8) {
	var step int64
	var degree int
	switch cls {
	case memsys.ClassCS:
		if stride == 0 {
			return
		}
		step, degree = int64(stride), o.cfg.DegreeCS
	case memsys.ClassGS:
		step, degree = int64(stride), o.cfg.DegreeGS
		if step == 0 {
			step = 1
		}
	case memsys.ClassNL:
		if !o.nlOn {
			return
		}
		step, degree = 1, 1
	default:
		return
	}
	for k := int64(1); k <= int64(degree); k++ {
		cand := memsys.Addr(int64(memsys.BlockNumber(addr))+step*k) << memsys.BlockBits
		if !memsys.SamePage(addr, cand) {
			return
		}
		if m.expect(cand, 0, cls, 0) {
			o.issued[cls]++
		}
	}
}

// Fill is a no-op: the L2 IPCP has no fill-driven state.
func (o *l2Oracle) Fill(int64, *prefetch.FillEvent) {}

// Cycle mirrors the L2 MPKC epoch for tentative NL.
func (o *l2Oracle) Cycle(now int64) {
	const epoch = 4096
	if now-o.cycleMark < epoch {
		return
	}
	mpkc := float64(o.missCounter) * 1000 / float64(now-o.cycleMark)
	o.nlOn = mpkc < o.cfg.NLThresholdMPKC
	o.missCounter = 0
	o.cycleMark = now
}

// ResetStats mirrors the warmup-boundary counter reset.
func (o *l2Oracle) ResetStats() {
	o.issued = [memsys.NumClasses]uint64{}
}

// postFill has nothing to check: the L2 IPCP does not throttle.
func (o *l2Oracle) postFill(func(kind, detail string)) {}

// postCycle cross-checks the NL gate.
func (o *l2Oracle) postCycle(rep func(kind, detail string)) {
	if got := o.impl.NLEnabled(); got != o.nlOn {
		rep("nl-gate", fmt.Sprintf("NL gate %v, reference %v", got, o.nlOn))
	}
}

// finishChecks compares the cumulative issue counters.
func (o *l2Oracle) finishChecks(rep func(kind, detail string)) {
	if o.impl.Issued != o.issued {
		rep("counter-issued", fmt.Sprintf("implementation %v, reference %v", o.impl.Issued, o.issued))
	}
}
