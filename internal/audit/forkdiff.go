package audit

import (
	"context"
	"encoding/json"
	"fmt"

	"ipcp/internal/sim"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// --- Fork-vs-cold differential -------------------------------------------
//
// The shared-warmup sweep engine (internal/experiments) forks measure
// phases from a warmup snapshot instead of re-simulating the warmup.
// The claim underneath it — that a restored system is architecturally
// indistinguishable from the system that produced the snapshot — is
// load-bearing for every sweep result, so this mode proves it per
// workload, RunSuite-style: run cold through the CacheWarmOnly phase
// decomposition, run again forked through snapshot/restore, and demand
// byte-identical Result JSON. The audit oracles themselves cannot ride
// along (they attach to prefetchers at build time, which CacheWarmOnly
// forbids); the Result covers cycles, per-cache hit/miss/prefetch
// counters, stall accounting, DRAM traffic and the IPCP class
// statistics, so any state the snapshot loses or invents surfaces as a
// diff.

// forkCold runs one workload cold through the shared-warmup phases.
func forkCold(ctx context.Context, name string, opt RunOptions) (*sim.Result, error) {
	sys, err := buildWarmOnly(name, opt)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx, opt.Warmup, opt.Measure)
}

// forkForked snapshots the warmup in one system and measures in a
// second system restored from the encoded snapshot, exercising the same
// gob spill path the sweep scheduler's disk cache uses.
func forkForked(ctx context.Context, name string, opt RunOptions) (*sim.Result, error) {
	warm, err := buildWarmOnly(name, opt)
	if err != nil {
		return nil, err
	}
	if err := warm.RunWarmup(ctx, opt.Warmup); err != nil {
		return nil, err
	}
	snap, err := warm.Snapshot()
	if err != nil {
		return nil, err
	}
	blob, err := sim.EncodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	snap, err = sim.DecodeSnapshot(blob)
	if err != nil {
		return nil, err
	}

	sys, err := buildWarmOnly(name, opt)
	if err != nil {
		return nil, err
	}
	if err := sys.RestoreSnapshot(snap); err != nil {
		return nil, err
	}
	if err := sys.AttachPrefetchers(); err != nil {
		return nil, err
	}
	return sys.RunMeasure(ctx, opt.Measure)
}

// buildWarmOnly builds the standard audited configuration (paper
// single-core, IPCP at L1-D and L2) in CacheWarmOnly mode.
func buildWarmOnly(name string, opt RunOptions) (*sim.System, error) {
	spec, err := workload.Named(name)
	if err != nil {
		return nil, err
	}
	cfg := sim.PaperConfig(1)
	cfg.Seed = opt.Seed
	cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.DisableFastForward = opt.DisableFastForward
	cfg.CacheWarmOnly = true
	return sim.Build(cfg, []trace.Stream{spec.New(opt.Seed)})
}

// RunForkSuite runs the fork-vs-cold differential over the named
// workloads. Pass workload.Names(workload.All()) for the complete
// bundled suite.
func RunForkSuite(ctx context.Context, names []string, opt RunOptions) (*SuiteReport, error) {
	opt = opt.withDefaults()
	rep := &SuiteReport{}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		cold, err := forkCold(ctx, name, opt)
		if err != nil {
			return rep, fmt.Errorf("audit: %s (cold): %w", name, err)
		}
		forked, err := forkForked(ctx, name, opt)
		if err != nil {
			return rep, fmt.Errorf("audit: %s (forked): %w", name, err)
		}
		rep.Workloads++
		rep.Runs += 2
		cj, err := json.Marshal(cold)
		if err != nil {
			return rep, err
		}
		fj, err := json.Marshal(forked)
		if err != nil {
			return rep, err
		}
		if string(cj) != string(fj) {
			rep.Divergences = append(rep.Divergences, diffResults(name, cold, forked)...)
		}
	}
	return rep, nil
}

// diffResults names what diverged between a cold and a forked run,
// reusing the field-level comparisons of DiffOutcomes where they apply
// and falling back to the raw JSON.
func diffResults(name string, cold, forked *sim.Result) []string {
	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) < maxDiffs {
			diffs = append(diffs, fmt.Sprintf("%s: cold vs forked: %s", name, fmt.Sprintf(format, args...)))
		}
	}
	for i := range cold.CyclesPerCore {
		if cold.CyclesPerCore[i] != forked.CyclesPerCore[i] {
			add("core %d measured %d cycles vs %d", i, cold.CyclesPerCore[i], forked.CyclesPerCore[i])
		}
	}
	for i := range cold.L1D {
		if cold.L1D[i].Miss != forked.L1D[i].Miss {
			add("core %d L1D misses %v vs %v", i, cold.L1D[i].Miss, forked.L1D[i].Miss)
		}
	}
	if cold.LLC.Miss != forked.LLC.Miss {
		add("LLC misses %v vs %v", cold.LLC.Miss, forked.LLC.Miss)
	}
	if len(diffs) == 0 {
		// The headline counters agree but some other field differs;
		// point at the JSON so the divergence is never silent.
		cj, _ := json.Marshal(cold)
		fj, _ := json.Marshal(forked)
		add("results differ outside headline counters:\ncold:   %s\nforked: %s", cj, fj)
	}
	return diffs
}
