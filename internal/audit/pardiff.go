package audit

import (
	"context"
	"encoding/json"
	"fmt"

	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// This file is the parallel-vs-sequential differential: every mix runs
// twice — stepped by the sequential scheduler and by the parallel
// epoch-barrier engine — and the two runs are held to bit-identity.
// The audit oracles themselves cannot ride along (their hooks fire
// inside slice cycles, which is exactly why the parallel engine
// declines to run under Config.Audit), so the evidence compared is the
// same the determinism goldens pin: the fully marshaled Result and the
// interval-metrics timeline.

// ParallelSpec is one multi-core mix of the parallel differential.
type ParallelSpec struct {
	Name      string
	Workloads []string
	Seed      int64
	L1D, L2   string
}

// ParallelSpecs returns the default differential mixes: the spatial
// classes the paper's Fig. 15 sweeps lean on (dense streaming,
// irregular, constant stride, big-code), at 2 and 4 cores, with and
// without IPCP. Under full (AUDIT_FULL) sweeps an 8-core mix rides
// along.
func ParallelSpecs(full bool) []ParallelSpec {
	specs := []ParallelSpec{
		{Name: "pair-ipcp", Seed: 2, L1D: "ipcp", L2: "ipcp",
			Workloads: []string{"lbm-94", "mcf-1536"}},
		{Name: "mix4-ipcp", Seed: 3, L1D: "ipcp", L2: "ipcp",
			Workloads: []string{"lbm-94", "mcf-1536", "bwaves-2931", "exchange2-387"}},
		{Name: "mix4-none", Seed: 5,
			Workloads: []string{"roms-1070", "omnetpp-17", "gcc-2226", "xalancbmk-165"}},
	}
	if full {
		specs = append(specs, ParallelSpec{
			Name: "mix8-ipcp", Seed: 7, L1D: "ipcp", L2: "ipcp",
			Workloads: []string{"lbm-94", "mcf-1536", "bwaves-2931", "exchange2-387",
				"roms-1070", "omnetpp-17", "gcc-2226", "xalancbmk-165"},
		})
	}
	return specs
}

// runParallelSpec executes one mix with the given engine selection and
// returns the marshaled Result plus the interval timeline.
func runParallelSpec(ctx context.Context, spec ParallelSpec, parallel bool, opt RunOptions) ([]byte, []telemetry.Sample, error) {
	cfg := sim.PaperConfig(len(spec.Workloads))
	cfg.Seed = opt.Seed
	cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: spec.L1D}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: spec.L2}
	cfg.ParallelCores = parallel

	streams := make([]trace.Stream, len(spec.Workloads))
	for i, name := range spec.Workloads {
		w, err := workload.Named(name)
		if err != nil {
			return nil, nil, err
		}
		streams[i] = w.New(spec.Seed)
	}
	sys, err := sim.Build(cfg, streams)
	if err != nil {
		return nil, nil, err
	}
	ilog := telemetry.NewIntervalLog(1024)
	sys.SetIntervalLog(ilog)
	res, err := sys.RunContext(ctx, opt.Warmup, opt.Measure)
	if err != nil {
		return nil, nil, fmt.Errorf("audit: %s (%s): %w", spec.Name, parMode(parallel), err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, nil, err
	}
	return b, ilog.Samples(), nil
}

func parMode(parallel bool) string {
	if parallel {
		return "parallel"
	}
	return "sequential"
}

// RunParallelSuite runs the parallel-vs-sequential differential over
// the given mixes and reports divergences. A clean report means the
// epoch-barrier engine is bit-identical to the sequential scheduler on
// every mix: marshaled Results and interval timelines byte for byte.
func RunParallelSuite(ctx context.Context, specs []ParallelSpec, opt RunOptions) (*SuiteReport, error) {
	opt = opt.withDefaults()
	rep := &SuiteReport{}
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		seqRes, seqSamples, err := runParallelSpec(ctx, spec, false, opt)
		if err != nil {
			return rep, err
		}
		parRes, parSamples, err := runParallelSpec(ctx, spec, true, opt)
		if err != nil {
			return rep, err
		}
		rep.Workloads++
		rep.Runs += 2
		if string(seqRes) != string(parRes) {
			rep.Divergences = append(rep.Divergences, fmt.Sprintf(
				"%s: parallel Result diverges from sequential:\n  seq: %s\n  par: %s",
				spec.Name, seqRes, parRes))
		}
		if len(seqSamples) != len(parSamples) {
			rep.Divergences = append(rep.Divergences, fmt.Sprintf(
				"%s: interval sample count %d (sequential) vs %d (parallel)",
				spec.Name, len(seqSamples), len(parSamples)))
			continue
		}
		for i := range seqSamples {
			if seqSamples[i] != parSamples[i] {
				rep.Divergences = append(rep.Divergences, fmt.Sprintf(
					"%s: interval sample %d diverges:\n  seq: %+v\n  par: %+v",
					spec.Name, i, seqSamples[i], parSamples[i]))
				break // one divergent interval shifts everything after it
			}
		}
	}
	return rep, nil
}
