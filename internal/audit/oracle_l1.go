package audit

import (
	"fmt"
	"math"

	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
)

// l1Oracle is the reference model of the paper's L1-D IPCP, written for
// clarity rather than speed: plain structs, no pooling, no fast paths.
// It re-derives, from the paper's Figures 2–5 and §IV–§V, the exact
// candidate stream (address, class, 9-bit metadata, order) the bouquet
// must produce for a given access stream, and mirrors the coordinated
// throttling and the tentative-NL MPKC gate so degree and accuracy can
// be compared against the production prefetcher after every fill.
//
// The two sides synchronize through the opMatcher: the oracle learns
// the cache's accept/reject verdict for each candidate and applies it
// to its own RR filter and counters, so a rejected candidate (PQ full,
// unmapped page) cannot drift the states apart.
type l1Oracle struct {
	impl *core.L1IPCP
	cfg  core.L1Config

	ip   []oraIPEntry
	cspt []oraCSPT
	rst  []oraRST
	rr   *refRRFilter

	clock uint64

	// per-class throttle state (§V): current degree, default degree,
	// and the 256-fill accuracy window.
	deg      [memsys.NumClasses]int
	defDeg   [memsys.NumClasses]int
	winFills [memsys.NumClasses]uint64
	winUse   [memsys.NumClasses]uint64
	acc      [memsys.NumClasses]float64
	measured [memsys.NumClasses]bool

	// tentative-NL gate: demand misses per kilo-cycle, 4096-cycle epochs.
	missCounter uint64
	cycleMark   int64
	nlOn        bool

	// observation counters mirroring the production Stats for the
	// end-of-run cross-check.
	issued      [memsys.NumClasses]uint64
	fills       [memsys.NumClasses]uint64
	useful      [memsys.NumClasses]uint64
	rrFiltered  [memsys.NumClasses]uint64
	pageClamped [memsys.NumClasses]uint64
}

// oraIPEntry is one IP-table entry (Fig. 5).
type oraIPEntry struct {
	tag         uint64
	valid       bool
	lastBlock   uint64
	hasLast     bool
	stride      int8
	confidence  uint8
	streamValid bool
	direction   int8
	signature   uint16
}

// oraCSPT is one CSPT entry (Fig. 3).
type oraCSPT struct {
	stride     int8
	confidence uint8
}

// oraRST is one region-stream-table entry (Fig. 4).
type oraRST struct {
	region    uint64
	lastLine  int
	bits      uint64
	posNeg    int
	dense     int
	trained   bool
	tentative bool
	direction int8
	lru       uint64
	valid     bool
}

func newL1Oracle(impl *core.L1IPCP) *l1Oracle {
	cfg := impl.Config()
	o := &l1Oracle{
		impl: impl,
		cfg:  cfg,
		ip:   make([]oraIPEntry, cfg.IPTableEntries),
		cspt: make([]oraCSPT, cfg.CSPTEntries),
		rst:  make([]oraRST, cfg.RSTEntries),
		rr:   newRefRR(),
		nlOn: true,
	}
	o.defDeg[memsys.ClassCS] = cfg.DegreeCS
	o.defDeg[memsys.ClassCPLX] = cfg.DegreeCPLX
	o.defDeg[memsys.ClassGS] = cfg.DegreeGS
	o.defDeg[memsys.ClassNL] = 1
	for c := 0; c < memsys.NumClasses; c++ {
		o.deg[c] = o.defDeg[c]
		o.acc[c] = 1
	}
	return o
}

func (o *l1Oracle) sigMask() uint16 { return uint16(1<<o.cfg.SignatureBits - 1) }

// nextSig is the CPLX signature update: signature = (signature << 1)
// XOR stride, truncated to SignatureBits (Fig. 3).
func (o *l1Oracle) nextSig(sig uint16, stride int8) uint16 {
	return (sig<<1 ^ uint16(uint8(stride))) & o.sigMask()
}

func (o *l1Oracle) regionOf(v memsys.Addr) (uint64, int) {
	region := uint64(v) >> o.cfg.RegionBits
	line := int(v>>memsys.BlockBits) & (1<<(o.cfg.RegionBits-memsys.BlockBits) - 1)
	return region, line
}

func (o *l1Oracle) regionLines() int { return 1 << (o.cfg.RegionBits - memsys.BlockBits) }

// Operate regenerates the full IPCP decision for one demand access and
// pushes every candidate through the matcher.
func (o *l1Oracle) Operate(now int64, a *prefetch.Access, m *opMatcher) {
	if !a.Type.IsDemand() || a.Type == memsys.CodeRead {
		return
	}
	// Per-line class bits feed per-class usefulness (§V).
	if a.HitPrefetched && a.HitClass != memsys.ClassNone {
		o.winUse[a.HitClass]++
		o.useful[a.HitClass]++
	}
	if !a.Hit {
		o.missCounter++
	}
	v := a.VAddr
	if v == 0 {
		v = a.Addr
	}
	block := memsys.BlockNumber(v)
	o.clock++
	if o.cfg.UseRRFilter {
		o.rr.insert(v)
	}

	idx := o.ipIndex(a.IP)
	tag := (a.IP >> 2) & 0x1ff
	e := &o.ip[idx]
	if e.tag != tag || !e.hasLast {
		if e.hasLast && e.tag != tag && e.valid {
			// First conflict: hysteresis keeps the incumbent; the RST
			// still trains (region denseness is IP-independent, §V).
			e.valid = false
			o.updateRST(v, false, 0)
			return
		}
		*e = oraIPEntry{tag: tag, valid: true, lastBlock: block, hasLast: true}
		eligible := o.updateRST(v, false, 0)
		if o.cfg.EnableGS {
			e.streamValid = eligible
			if eligible {
				e.direction = o.rstDirection(v)
			}
		}
		return
	}
	e.valid = true

	// Virtual stride, clamped to the 7-bit signed field (§IV-A).
	strideFull := int64(block) - int64(e.lastBlock)
	stride := int8(0)
	if strideFull >= -64 && strideFull <= 63 {
		stride = int8(strideFull)
	}
	prevBlock := e.lastBlock
	e.lastBlock = block

	// CS: 2-bit hysteresis on the stride (Fig. 2).
	if stride != 0 {
		if stride == e.stride {
			if e.confidence < 3 {
				e.confidence++
			}
		} else {
			if e.confidence > 0 {
				e.confidence--
			}
			if e.confidence == 0 {
				e.stride = stride
			}
		}
	}

	// CPLX: train the CSPT at the current signature, then advance it
	// (Fig. 3).
	if stride != 0 {
		oldSig := e.signature
		c := &o.cspt[oldSig&o.sigMask()]
		if c.stride == stride {
			if c.confidence < 3 {
				c.confidence++
			}
		} else {
			if c.confidence > 0 {
				c.confidence--
			}
			if c.confidence == 0 {
				c.stride = stride
			}
		}
		e.signature = o.nextSig(oldSig, stride)
	}

	// GS: region-stream training with tentative chaining (§IV-C).
	prevRegion := prevBlock >> (o.cfg.RegionBits - memsys.BlockBits)
	curRegion := block >> (o.cfg.RegionBits - memsys.BlockBits)
	carryTentative := false
	carryDir := int8(0)
	if curRegion != prevRegion {
		if pe := o.findRST(prevRegion); pe != nil && pe.trained {
			carryTentative = true
			carryDir = pe.direction
		}
	}
	gsEligible := o.updateRST(v, carryTentative, carryDir)
	if gsEligible {
		e.direction = o.rstDirection(v)
	}
	if o.cfg.EnableGS {
		e.streamValid = gsEligible
	}

	if strideFull == 0 && !e.streamValid {
		return
	}

	// Hierarchical class selection (§V): highest-priority eligible
	// class wins; a low-accuracy GS lets one lower spatial class issue
	// alongside it.
	chosen := memsys.ClassNone
	for _, cls := range o.cfg.Priority {
		if o.eligible(cls, e) {
			chosen = cls
			break
		}
	}
	if chosen == memsys.ClassNone {
		return
	}
	o.issueClass(m, chosen, e, a.IP, v)
	if chosen == memsys.ClassGS && o.measured[memsys.ClassGS] && o.acc[memsys.ClassGS] < o.cfg.ThrottleLow {
		for _, cls := range o.cfg.Priority {
			if cls != memsys.ClassGS && cls != memsys.ClassNL && o.eligible(cls, e) {
				o.issueClass(m, cls, e, a.IP, v)
				break
			}
		}
	}
}

func (o *l1Oracle) ipIndex(ip memsys.Addr) uint64 {
	h := ip>>2 ^ ip>>5 ^ ip>>11
	return h % uint64(len(o.ip))
}

func (o *l1Oracle) eligible(cls memsys.PrefetchClass, e *oraIPEntry) bool {
	switch cls {
	case memsys.ClassGS:
		return o.cfg.EnableGS && e.streamValid
	case memsys.ClassCS:
		return o.cfg.EnableCS && e.confidence >= 2 && e.stride != 0
	case memsys.ClassCPLX:
		if !o.cfg.EnableCPLX {
			return false
		}
		c := o.cspt[e.signature&o.sigMask()]
		return c.confidence >= 1 && c.stride != 0
	case memsys.ClassNL:
		return o.cfg.EnableNL && o.nlOn
	}
	return false
}

func (o *l1Oracle) issueClass(m *opMatcher, cls memsys.PrefetchClass, e *oraIPEntry, ip, v memsys.Addr) {
	switch cls {
	case memsys.ClassGS:
		deg := o.deg[memsys.ClassGS]
		dir := int64(e.direction)
		if dir == 0 {
			dir = 1
		}
		for k := int64(1); k <= int64(deg); k++ {
			o.issue(m, ip, v, dir*k, memsys.ClassGS, int8(dir))
		}
	case memsys.ClassCS:
		deg := o.deg[memsys.ClassCS]
		for k := int64(1); k <= int64(deg); k++ {
			o.issue(m, ip, v, int64(e.stride)*k, memsys.ClassCS, e.stride)
		}
	case memsys.ClassCPLX:
		deg := o.deg[memsys.ClassCPLX]
		sig := e.signature
		off := int64(0)
		issued, skipped := 0, 0
		for step := 0; step < (deg+o.cfg.CPLXDistance)*2 && issued < deg; step++ {
			c := o.cspt[sig&o.sigMask()]
			if c.stride == 0 {
				break
			}
			if c.confidence >= 1 {
				off += int64(c.stride)
				if skipped < o.cfg.CPLXDistance {
					skipped++
				} else if o.issue(m, ip, v, off, memsys.ClassCPLX, c.stride) {
					issued++
				}
			}
			sig = o.nextSig(sig, c.stride)
		}
	case memsys.ClassNL:
		o.issue(m, ip, v, 1, memsys.ClassNL, 1)
	}
}

// issue reproduces the candidate pipeline of one prefetch: page clamp
// (§IV), RR filter (§V), metadata encode (§V), and — through the
// matcher — the comparison with the production stream and the cache's
// verdict.
func (o *l1Oracle) issue(m *opMatcher, ip, v memsys.Addr, offBlocks int64, cls memsys.PrefetchClass, stride int8) bool {
	cand := memsys.Addr(int64(memsys.BlockNumber(v))+offBlocks) << memsys.BlockBits
	if !memsys.SamePage(v, cand) {
		o.pageClamped[cls]++
		return false
	}
	if o.cfg.UseRRFilter && o.rr.hit(cand) {
		o.rrFiltered[cls]++
		return false
	}
	meta := uint16(0)
	if o.cfg.EmitMetadata {
		s := stride
		if o.measured[cls] && o.acc[cls] <= o.cfg.ThrottleHigh {
			s = 0
		}
		meta = memsys.Metadata{Class: cls, Stride: s}.Encode()
	}
	ok := m.expect(cand, ip, cls, meta)
	if ok {
		o.issued[cls]++
		if o.cfg.UseRRFilter {
			o.rr.insert(cand)
		}
	}
	return ok
}

// updateRST records an access in the region stream table and reports
// whether the region is (tentatively) dense (Fig. 4, §IV-C).
func (o *l1Oracle) updateRST(v memsys.Addr, carryTentative bool, carryDir int8) bool {
	region, line := o.regionOf(v)
	o.clock++
	e := o.findRST(region)
	if e == nil {
		e = o.allocRST(region)
		e.tentative = carryTentative
		if carryTentative && carryDir != 0 {
			if carryDir > 0 {
				e.posNeg = 40
			} else {
				e.posNeg = 24
			}
		}
	}
	e.lru = o.clock
	if e.lastLine >= 0 && line != e.lastLine {
		if line > e.lastLine {
			if e.posNeg < 63 {
				e.posNeg++
			}
		} else if e.posNeg > 0 {
			e.posNeg--
		}
	}
	e.lastLine = line
	if e.posNeg >= 32 {
		e.direction = 1
	} else {
		e.direction = -1
	}
	if e.bits&(1<<uint(line)) == 0 {
		e.bits |= 1 << uint(line)
		e.dense++
		if float64(e.dense) >= o.cfg.DenseFraction*float64(o.regionLines()) {
			e.trained = true
		}
	}
	return e.trained || e.tentative
}

func (o *l1Oracle) findRST(region uint64) *oraRST {
	for i := range o.rst {
		if o.rst[i].valid && o.rst[i].region == region {
			return &o.rst[i]
		}
	}
	return nil
}

func (o *l1Oracle) allocRST(region uint64) *oraRST {
	victim := 0
	oldest := uint64(math.MaxUint64)
	for i := range o.rst {
		if !o.rst[i].valid {
			victim, oldest = i, 0
			break
		}
		if o.rst[i].lru < oldest {
			victim, oldest = i, o.rst[i].lru
		}
	}
	o.rst[victim] = oraRST{region: region, lastLine: -1, posNeg: 32, valid: true}
	return &o.rst[victim]
}

func (o *l1Oracle) rstDirection(v memsys.Addr) int8 {
	region, _ := o.regionOf(v)
	if e := o.findRST(region); e != nil {
		return e.direction
	}
	return 1
}

// Fill mirrors the per-class fill window (§V): every prefetch fill
// counts toward the class's 256-fill accuracy epoch, which closes
// exactly when the counter reaches the window.
func (o *l1Oracle) Fill(now int64, f *prefetch.FillEvent) {
	if !f.Prefetch || f.Class == memsys.ClassNone {
		return
	}
	o.fills[f.Class]++
	o.winFills[f.Class]++
	if o.winFills[f.Class] >= uint64(o.cfg.ThrottleWindow) {
		cls := f.Class
		acc := float64(o.winUse[cls]) / float64(o.winFills[cls])
		o.acc[cls] = acc
		o.measured[cls] = true
		o.winFills[cls], o.winUse[cls] = 0, 0
		switch {
		case acc > o.cfg.ThrottleHigh:
			if o.deg[cls] < o.defDeg[cls] {
				o.deg[cls]++
			}
		case acc < o.cfg.ThrottleLow:
			if o.deg[cls] > 1 {
				o.deg[cls]--
			}
		}
	}
}

// Cycle mirrors the MPKC epoch of the tentative-NL gate.
func (o *l1Oracle) Cycle(now int64) {
	const epoch = 4096
	if now-o.cycleMark < epoch {
		return
	}
	mpkc := float64(o.missCounter) * 1000 / float64(now-o.cycleMark)
	o.nlOn = mpkc < o.cfg.NLThresholdMPKC
	o.missCounter = 0
	o.cycleMark = now
}

// ResetStats mirrors the warmup-boundary counter reset: observation
// counters clear, architectural state (tables, degrees, windows, NL
// gate) persists.
func (o *l1Oracle) ResetStats() {
	o.issued = [memsys.NumClasses]uint64{}
	o.fills = [memsys.NumClasses]uint64{}
	o.useful = [memsys.NumClasses]uint64{}
	o.rrFiltered = [memsys.NumClasses]uint64{}
	o.pageClamped = [memsys.NumClasses]uint64{}
}

// postFill cross-checks the throttle state against the production
// prefetcher after each fill: if a window closed a fill early or late,
// or applied the wrong accuracy, degree and accuracy diverge here at
// the exact fill where it happened.
func (o *l1Oracle) postFill(rep func(kind, detail string)) {
	for c := 1; c < memsys.NumClasses; c++ {
		cls := memsys.PrefetchClass(c)
		if d := o.impl.ClassDegree(cls); d != o.deg[c] {
			rep("throttle-degree", fmt.Sprintf("class %v degree %d, reference %d", cls, d, o.deg[c]))
		}
		if a := o.impl.ClassAccuracy(cls); a != o.acc[c] {
			rep("throttle-accuracy", fmt.Sprintf("class %v accuracy %v, reference %v", cls, a, o.acc[c]))
		}
	}
}

// postCycle cross-checks the NL gate.
func (o *l1Oracle) postCycle(rep func(kind, detail string)) {
	if got := o.impl.NLEnabled(); got != o.nlOn {
		rep("nl-gate", fmt.Sprintf("NL gate %v, reference %v", got, o.nlOn))
	}
}

// finishChecks compares the cumulative observation counters.
func (o *l1Oracle) finishChecks(rep func(kind, detail string)) {
	type pair struct {
		name      string
		got, want [memsys.NumClasses]uint64
	}
	for _, p := range []pair{
		{"issued", o.impl.Issued, o.issued},
		{"fills", o.impl.Fills, o.fills},
		{"useful", o.impl.Useful, o.useful},
		{"rr-filtered", o.impl.RRFiltered, o.rrFiltered},
		{"page-clamped", o.impl.PageClamped, o.pageClamped},
	} {
		if p.got != p.want {
			rep("counter-"+p.name, fmt.Sprintf("implementation %v, reference %v", p.got, p.want))
		}
	}
}
