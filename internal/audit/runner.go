package audit

import (
	"context"
	"fmt"
	"sort"

	"ipcp/internal/sim"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// RunOptions parametrizes one audited run.
type RunOptions struct {
	// Warmup and Measure are per-core instruction budgets (defaults
	// 2_000 / 8_000 — enough to exercise training, throttling windows
	// and the NL gate on the bundled workloads while keeping the full
	// sweep fast; the audit instrumentation costs well over the plain
	// simulation).
	Warmup, Measure uint64
	// Seed drives page allocation (default 1, the PaperConfig seed).
	Seed int64
	// DisableFastForward selects the cycle-by-cycle reference scheduler.
	DisableFastForward bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Warmup == 0 {
		o.Warmup = 2_000
	}
	if o.Measure == 0 {
		o.Measure = 8_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Outcome is one fully audited run: the checker holds the violations,
// the recorded issue streams and the per-interval miss buckets.
type Outcome struct {
	Workload    string
	FastForward bool
	Checker     *Checker
	Result      *sim.Result
}

func (o *Outcome) mode() string {
	if o.FastForward {
		return "ff-on"
	}
	return "ff-off"
}

// RunWorkload executes one bundled workload on the paper's single-core
// system with IPCP at L1-D and L2, the full audit harness attached, and
// stream recording on. The end-of-run checks have already run on the
// returned outcome's Checker.
func RunWorkload(ctx context.Context, name string, opt RunOptions) (*Outcome, error) {
	opt = opt.withDefaults()
	spec, err := workload.Named(name)
	if err != nil {
		return nil, err
	}
	cfg := sim.PaperConfig(1)
	cfg.Seed = opt.Seed
	cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: "ipcp"}
	cfg.DisableFastForward = opt.DisableFastForward

	k := NewWithOptions(Options{RecordStreams: true})
	cfg.Audit = k

	sys, err := sim.Build(cfg, []trace.Stream{spec.New(opt.Seed)})
	if err != nil {
		return nil, err
	}
	res, err := sys.RunContext(ctx, opt.Warmup, opt.Measure)
	if err != nil {
		return nil, fmt.Errorf("audit: %s (%s): %w", name, boolMode(opt.DisableFastForward), err)
	}
	k.Finish()
	return &Outcome{
		Workload:    name,
		FastForward: !opt.DisableFastForward,
		Checker:     k,
		Result:      res,
	}, nil
}

func boolMode(disableFF bool) string {
	if disableFF {
		return "ff-off"
	}
	return "ff-on"
}

// maxDiffs caps the divergences reported per outcome pair.
const maxDiffs = 8

// DiffOutcomes compares two audited runs of the same workload — the
// fast-forwarding scheduler against the cycle-by-cycle reference — and
// returns human-readable divergences: final performance numbers, the
// complete prefetch issue streams (cycle, address, class, metadata),
// and the per-interval demand-miss buckets of every cache.
func DiffOutcomes(a, b *Outcome) []string {
	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) < maxDiffs {
			diffs = append(diffs, fmt.Sprintf("%s: %s vs %s: %s",
				a.Workload, a.mode(), b.mode(), fmt.Sprintf(format, args...)))
		}
	}

	ra, rb := a.Result, b.Result
	for i := range ra.CyclesPerCore {
		if ra.CyclesPerCore[i] != rb.CyclesPerCore[i] {
			add("core %d measured %d cycles vs %d", i, ra.CyclesPerCore[i], rb.CyclesPerCore[i])
		}
	}
	for i := range ra.L1D {
		if ra.L1D[i].Miss != rb.L1D[i].Miss {
			add("core %d L1D misses %v vs %v", i, ra.L1D[i].Miss, rb.L1D[i].Miss)
		}
	}
	if ra.LLC.Miss != rb.LLC.Miss {
		add("LLC misses %v vs %v", ra.LLC.Miss, rb.LLC.Miss)
	}

	sa, sb := a.Checker.Streams(), b.Checker.Streams()
	for _, name := range sortedKeys(sa) {
		ea, eb := sa[name], sb[name]
		if len(ea) != len(eb) {
			add("%s issued %d prefetches vs %d", name, len(ea), len(eb))
		}
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			if ea[i] != eb[i] {
				add("%s prefetch %d: cycle %d %#x class %v meta %#x vs cycle %d %#x class %v meta %#x",
					name, i,
					ea[i].Cycle, ea[i].Addr, ea[i].Class, ea[i].Meta,
					eb[i].Cycle, eb[i].Addr, eb[i].Class, eb[i].Meta)
				break // one positional mismatch shifts everything after it
			}
		}
	}

	ma, mb := a.Checker.MissIntervals(), b.Checker.MissIntervals()
	for _, name := range sortedKeys(ma) {
		ba, bb := ma[name], mb[name]
		for _, iv := range sortedIntervals(ba, bb) {
			if ba[iv] != bb[iv] {
				add("%s interval %d demand misses %d vs %d", name, iv, ba[iv], bb[iv])
			}
		}
	}
	return diffs
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedIntervals(a, b map[int64]uint64) []int64 {
	seen := make(map[int64]bool, len(a)+len(b))
	var ivs []int64
	for iv := range a {
		if !seen[iv] {
			seen[iv] = true
			ivs = append(ivs, iv)
		}
	}
	for iv := range b {
		if !seen[iv] {
			seen[iv] = true
			ivs = append(ivs, iv)
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i] < ivs[j] })
	return ivs
}

// SuiteReport aggregates a differential sweep.
type SuiteReport struct {
	Workloads   int      // workloads swept
	Runs        int      // audited runs executed (two per workload)
	Violations  []string // reference-model and invariant violations, tagged by run
	Divergences []string // fast-forward vs reference divergences
}

// Err summarizes the report as an error, nil when the sweep was clean.
func (r *SuiteReport) Err() error {
	if len(r.Violations) == 0 && len(r.Divergences) == 0 {
		return nil
	}
	return fmt.Errorf("audit suite: %d violation(s), %d divergence(s) across %d runs",
		len(r.Violations), len(r.Divergences), r.Runs)
}

// String renders the report for CLI output.
func (r *SuiteReport) String() string {
	s := fmt.Sprintf("audit: %d workloads, %d runs: %d violation(s), %d divergence(s)",
		r.Workloads, r.Runs, len(r.Violations), len(r.Divergences))
	for _, v := range r.Violations {
		s += "\n  violation: " + v
	}
	for _, d := range r.Divergences {
		s += "\n  divergence: " + d
	}
	return s
}

// RunSuite runs the differential audit over the named workloads: each
// one is simulated twice — fast-forward on and off — with the full
// harness attached, and the two runs are diffed. Pass
// workload.Names(workload.All()) for the complete bundled suite.
func RunSuite(ctx context.Context, names []string, opt RunOptions) (*SuiteReport, error) {
	rep := &SuiteReport{}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		optOff := opt
		optOff.DisableFastForward = true
		off, err := RunWorkload(ctx, name, optOff)
		if err != nil {
			return rep, err
		}
		optOn := opt
		optOn.DisableFastForward = false
		on, err := RunWorkload(ctx, name, optOn)
		if err != nil {
			return rep, err
		}
		rep.Workloads++
		rep.Runs += 2
		for _, o := range []*Outcome{off, on} {
			for _, v := range o.Checker.Violations() {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s (%s): %s", o.Workload, o.mode(), v))
			}
			if d := o.Checker.Dropped(); d > 0 {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s (%s): %d further violation(s) dropped", o.Workload, o.mode(), d))
			}
		}
		rep.Divergences = append(rep.Divergences, DiffOutcomes(on, off)...)
	}
	return rep, nil
}
