package audit

import (
	"context"
	"os"
	"strings"
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// subsetWorkloads spans the IPCP classes: constant stride (bwaves),
// complex stride (cactuBSSN), dense streaming (lbm, roms), irregular
// (mcf, omnetpp), big-code (xalancbmk) and a cloud trace with heavy
// instruction misses.
var subsetWorkloads = []string{
	"bwaves-98", "cactuBSSN-2421", "lbm-94", "roms-1070",
	"mcf-1152", "omnetpp-17", "xalancbmk-165", "cassandra",
}

// suiteNames honors AUDIT_FULL=1: the complete bundled workload suite
// (make audit) versus the class-spanning subset (plain go test).
func suiteNames() []string {
	if os.Getenv("AUDIT_FULL") != "" {
		return workload.Names(workload.All())
	}
	return subsetWorkloads
}

// TestDifferentialSuite is the acceptance gate: every workload runs
// through the fully audited system twice — fast-forward on and off —
// and must produce zero invariant violations, zero reference-model
// divergences, and bit-identical results and prefetch streams across
// the two scheduler modes.
func TestDifferentialSuite(t *testing.T) {
	rep, err := RunSuite(context.Background(), suiteNames(), RunOptions{})
	if err != nil {
		t.Fatalf("suite failed to run: %v", err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("%v\n%s", err, rep.String())
	}
	if rep.Runs != 2*len(suiteNames()) {
		t.Fatalf("expected %d runs, got %d", 2*len(suiteNames()), rep.Runs)
	}
}

// TestDeepThrottleRun drives enough prefetch fills through one
// memory-intensive workload to close multiple 256-fill accuracy
// windows, exercising the throttle cross-checks (postFill) for real.
func TestDeepThrottleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("deep run")
	}
	out, err := RunWorkload(context.Background(), "roms-1070", RunOptions{Warmup: 5_000, Measure: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if vs := out.Checker.Violations(); len(vs) > 0 {
		t.Fatalf("violations on deep run: %v", vs)
	}
	snap := out.Result.IPCPL1[0]
	if snap == nil {
		t.Fatal("no L1 IPCP snapshot")
	}
	var fills uint64
	for c := 0; c < memsys.NumClasses; c++ {
		fills += snap.Classes[c].Fills
	}
	if fills < 512 {
		t.Fatalf("deep run filled only %d prefetches; throttle windows not exercised", fills)
	}
}

// dropEvery suppresses every Nth candidate between the real IPCP and
// the issuer — a synthetic bug the lockstep oracle must catch.
type dropEvery struct {
	inner prefetch.Prefetcher
	n     int
	seen  int
}

func (d *dropEvery) Name() string                          { return d.inner.Name() }
func (d *dropEvery) Unwrap() prefetch.Prefetcher           { return d.inner }
func (d *dropEvery) Fill(now int64, f *prefetch.FillEvent) { d.inner.Fill(now, f) }
func (d *dropEvery) Cycle(now int64)                       { d.inner.Cycle(now) }
func (d *dropEvery) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	d.inner.Operate(now, a, &dropIssuer{d: d, inner: iss})
}

type dropIssuer struct {
	d     *dropEvery
	inner prefetch.Issuer
}

func (di *dropIssuer) Issue(c prefetch.Candidate) bool {
	di.d.seen++
	if di.d.seen%di.d.n == 0 {
		return false // swallowed: never reaches the cache (or the recorder)
	}
	return di.inner.Issue(c)
}

// TestOracleCatchesSuppressedCandidates plants the dropEvery bug under
// the audit harness and demands the oracle flag the missing candidates.
func TestOracleCatchesSuppressedCandidates(t *testing.T) {
	spec, err := workload.Named("bwaves-98")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.PaperConfig(1)
	cfg.L1DPrefetcher = sim.PrefetcherSpec{New: func() (prefetch.Prefetcher, error) {
		return &dropEvery{inner: core.NewL1IPCP(core.DefaultL1Config()), n: 5}, nil
	}}
	k := New()
	cfg.Audit = k
	sys, err := sim.Build(cfg, []trace.Stream{spec.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(500, 3_000); err != nil {
		t.Fatal(err)
	}
	k.Finish()
	found := false
	for _, v := range k.Violations() {
		if v.Kind == "missing-candidate" || v.Kind == "extra-candidate" || v.Kind == "stream-mismatch" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("planted candidate-suppression bug not caught; violations: %v", k.Violations())
	}
}

// TestCheckerErrFormatting covers the bounded error summary.
func TestCheckerErrFormatting(t *testing.T) {
	k := NewWithOptions(Options{MaxViolations: 3})
	if err := k.Err(); err != nil {
		t.Fatalf("clean checker returned %v", err)
	}
	k = NewWithOptions(Options{MaxViolations: 3})
	for i := 0; i < 5; i++ {
		k.report(Violation{Where: "t", Kind: "k", Detail: "d"})
	}
	if len(k.Violations()) != 3 || k.Dropped() != 2 {
		t.Fatalf("cap not applied: kept %d dropped %d", len(k.Violations()), k.Dropped())
	}
	if err := k.Err(); err == nil || !strings.Contains(err.Error(), "5 violation(s)") {
		t.Fatalf("summary error wrong: %v", err)
	}
}

// TestRefRRFilterMatchesProduction pins the mirror filter to the
// production tag fold and FIFO shape.
func TestRefRRFilterMatchesProduction(t *testing.T) {
	f := newRefRR()
	a := memsys.Addr(0x1000)
	if f.hit(a) {
		t.Fatal("empty filter hit")
	}
	f.insert(a)
	if !f.hit(a) {
		t.Fatal("inserted tag missed")
	}
	// Same 12-bit folded tag ⇒ hit even for a different block.
	alias := memsys.Addr((memsys.BlockNumber(a) ^ (1<<12 | 1)) << memsys.BlockBits)
	_ = alias
	// FIFO capacity: 32 further inserts evict the original tag.
	for i := 0; i < 32; i++ {
		f.insert(memsys.Addr(0x100000 + i*0x40*0x40))
	}
	if f.hit(a) {
		t.Fatal("tag survived 32 evicting inserts")
	}
}
