package audit

import (
	"fmt"

	"ipcp/internal/cache"
	"ipcp/internal/memsys"
)

// shadowLine is one block in the functional reference cache.
type shadowLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	class      memsys.PrefetchClass
	stamp      uint64 // true-LRU timestamp, mirroring repl's lru policy
}

// shadowCache is the functional reference model of one production
// cache: a plain set-associative line array driven by the cache's
// Auditor event stream. It independently re-derives residency, the
// true-LRU victim, and the dirty/prefetched bookkeeping, and verifies
// every event against them; at end of run the mirrored access counters
// are compared against the cache's Stats.
//
// The shadow deliberately has no notion of queues, MSHRs or latency:
// those affect *when* events happen, which the production cache
// decides; the shadow checks that *given* that schedule the
// architectural state evolves correctly.
type shadowCache struct {
	k    *Checker
	c    *cache.Cache
	name string

	sets, ways int
	setsMask   uint64
	lines      []shadowLine
	tick       uint64

	// lruExact enables victim-way prediction; only the default true-LRU
	// policy is modeled exactly. Other policies still get residency,
	// bookkeeping and counter checks.
	lruExact bool

	access, hit, miss [5]uint64

	// missBuckets counts demand misses per 4096-cycle interval for the
	// differential runner (Options.RecordStreams only).
	missBuckets map[int64]uint64
}

func newShadowCache(k *Checker, c *cache.Cache, name string) *shadowCache {
	cfg := c.Config()
	sh := &shadowCache{
		k: k, c: c, name: name,
		sets: cfg.Sets, ways: cfg.Ways,
		setsMask: uint64(cfg.Sets - 1),
		lines:    make([]shadowLine, cfg.Sets*cfg.Ways),
		lruExact: cfg.Repl == "" || cfg.Repl == "lru",
	}
	if k.opt.RecordStreams {
		sh.missBuckets = make(map[int64]uint64)
	}
	return sh
}

func (sh *shadowCache) vio(now int64, kind, detail string) {
	sh.k.report(Violation{Cycle: now, Where: sh.name, Kind: kind, Detail: detail})
}

// find returns the shadow way holding block, or -1.
func (sh *shadowCache) find(block uint64) (base, way int) {
	base = int(block&sh.setsMask) * sh.ways
	for w := 0; w < sh.ways; w++ {
		if l := &sh.lines[base+w]; l.valid && l.tag == block {
			return base, w
		}
	}
	return base, -1
}

// OnAccess implements cache.Auditor.
func (sh *shadowCache) OnAccess(now int64, addr memsys.Addr, typ memsys.AccessType, hit, hitPrefetched bool, hitClass memsys.PrefetchClass) {
	sh.access[typ]++
	if hit {
		sh.hit[typ]++
	} else {
		sh.miss[typ]++
		if typ.IsDemand() && sh.missBuckets != nil {
			sh.missBuckets[now>>intervalShift]++
		}
	}

	block := memsys.BlockNumber(addr)
	base, way := sh.find(block)

	if typ == memsys.Writeback {
		// A writeback miss is write-allocate: the install event precedes
		// this one (see the Auditor ordering caveat), so the block is
		// resident either way and only the hit path mutates state here.
		if hit {
			if way < 0 {
				sh.vio(now, "wb-hit-not-resident",
					fmt.Sprintf("writeback hit on %#x, block absent from reference model", addr))
				return
			}
			l := &sh.lines[base+way]
			l.dirty = true
			sh.tick++
			l.stamp = sh.tick
		}
		return
	}

	resident := way >= 0
	if resident != hit {
		sh.vio(now, "hit-mismatch",
			fmt.Sprintf("%v of %#x reported hit=%v, reference model resident=%v", typ, addr, hit, resident))
		return
	}
	if !hit {
		return
	}

	l := &sh.lines[base+way]
	wantPf := l.prefetched && typ.IsDemand()
	if hitPrefetched != wantPf {
		sh.vio(now, "prefetched-bit",
			fmt.Sprintf("%v hit on %#x reported hitPrefetched=%v, reference %v", typ, addr, hitPrefetched, wantPf))
	} else if wantPf && hitClass != l.class {
		sh.vio(now, "class-bits",
			fmt.Sprintf("%v hit on %#x reported class %v, reference %v", typ, addr, hitClass, l.class))
	}
	if wantPf {
		l.prefetched = false // first demand touch consumes the tag
	}
	sh.tick++
	l.stamp = sh.tick
	if typ == memsys.RFO {
		l.dirty = true
	}
}

// OnInstall implements cache.Auditor.
func (sh *shadowCache) OnInstall(now int64, addr memsys.Addr, typ memsys.AccessType, prefetched bool, class memsys.PrefetchClass,
	victim memsys.Addr, victimValid, victimDirty, victimPrefetched bool) {
	block := memsys.BlockNumber(addr)
	base, way := sh.find(block)
	if way >= 0 {
		sh.vio(now, "double-install",
			fmt.Sprintf("install of %#x, block already resident in reference model", addr))
		return
	}

	// Free way first, in scan order, exactly as the production install.
	free := -1
	for w := 0; w < sh.ways; w++ {
		if !sh.lines[base+w].valid {
			free = w
			break
		}
	}
	switch {
	case free >= 0 && victimValid:
		sh.vio(now, "victim-with-free-way",
			fmt.Sprintf("install of %#x evicted %#x although the reference set has a free way", addr, victim))
	case free < 0 && !victimValid:
		sh.vio(now, "missing-victim",
			fmt.Sprintf("install of %#x evicted nothing although the reference set is full", addr))
	}

	way = free
	if way < 0 {
		// Full set: check the eviction against the reference model.
		if sh.lruExact {
			// True LRU: minimum stamp, ties to the lowest way.
			pred, best := 0, sh.lines[base].stamp
			for w := 1; w < sh.ways; w++ {
				if s := sh.lines[base+w].stamp; s < best {
					pred, best = w, s
				}
			}
			way = pred
			if victimValid && sh.lines[base+way].valid && sh.lines[base+way].tag<<memsys.BlockBits != victim {
				sh.vio(now, "lru-victim",
					fmt.Sprintf("install of %#x evicted %#x, reference LRU victim is %#x",
						addr, victim, sh.lines[base+way].tag<<memsys.BlockBits))
			}
		} else {
			// Non-LRU policy: follow the production choice, but it must
			// at least name a resident block.
			way = -1
			for w := 0; w < sh.ways; w++ {
				if l := &sh.lines[base+w]; l.valid && l.tag == memsys.BlockNumber(victim) {
					way = w
					break
				}
			}
			if way < 0 {
				sh.vio(now, "victim-not-resident",
					fmt.Sprintf("install of %#x evicted %#x, which the reference model does not hold", addr, victim))
				return
			}
		}
		if victimValid {
			l := &sh.lines[base+way]
			if l.dirty != victimDirty {
				sh.vio(now, "victim-dirty-bit",
					fmt.Sprintf("victim %#x reported dirty=%v, reference %v", victim, victimDirty, l.dirty))
			}
			if l.prefetched != victimPrefetched {
				sh.vio(now, "victim-prefetched-bit",
					fmt.Sprintf("victim %#x reported unused-prefetch=%v, reference %v", victim, victimPrefetched, l.prefetched))
			}
		}
	}

	sh.tick++
	sh.lines[base+way] = shadowLine{
		tag:        block,
		valid:      true,
		dirty:      typ == memsys.RFO || typ == memsys.Writeback,
		prefetched: prefetched,
		class:      class,
		stamp:      sh.tick,
	}
}

// OnResetStats implements cache.Auditor: the warmup boundary zeroes the
// counters; residency and LRU state are architectural and persist.
func (sh *shadowCache) OnResetStats() {
	sh.access = [5]uint64{}
	sh.hit = [5]uint64{}
	sh.miss = [5]uint64{}
	if sh.missBuckets != nil {
		sh.missBuckets = make(map[int64]uint64)
	}
}

// finish compares the mirrored access counters with the cache's Stats.
func (sh *shadowCache) finish() {
	st := &sh.c.Stats
	if st.Access != sh.access || st.Hit != sh.hit || st.Miss != sh.miss {
		sh.k.report(Violation{
			Where: sh.name, Kind: "stats-totals",
			Detail: fmt.Sprintf("cache access/hit/miss %v/%v/%v, reference %v/%v/%v",
				st.Access, st.Hit, st.Miss, sh.access, sh.hit, sh.miss),
		})
	}
}
