// Package audit is the correctness harness for the optimized simulator
// core: slow-but-obviously-correct reference models that shadow the
// production data structures at runtime and cross-check every
// architectural decision against the paper's specification.
//
// It has three layers:
//
//   - A functional cache model (shadow.go) mirrors every cache's line
//     array from the Auditor event stream and verifies hit/miss
//     outcomes, LRU victim choice, dirty/prefetched bookkeeping, and
//     the stats counters.
//   - Straight-from-the-paper IPCP oracles (oracle_l1.go, oracle_l2.go)
//     run in lockstep with the attached prefetchers and verify the
//     issued candidate stream — address, class, metadata, order — plus
//     throttle degrees, accuracy windows, and the NL gate.
//   - Inline invariant checks (recorder.go, the request-pool audit
//     mode) assert the paper's hard rules on every candidate: no
//     prefetch crosses a page boundary (§IV), per-class issue counts
//     never exceed the class's degree ceiling (§V), the RR filter is
//     never bypassed, and requests are never double-freed.
//
// A Checker attaches through sim.Config.Audit. Like -race it is opt-in
// and heavy; a nil Audit config leaves every hot path untouched.
package audit

import (
	"fmt"
	"strings"

	"ipcp/internal/cache"
	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
)

// intervalShift buckets cycle-stamped events into 4096-cycle intervals
// for the differential runner's per-interval miss comparison.
const intervalShift = 12

// Violation is one detected deviation from the reference models or the
// paper's invariants.
type Violation struct {
	Cycle  int64  // simulated cycle of detection (0 when end-of-run)
	Where  string // component, e.g. "L1D.0", "L2.0:oracle", "pool"
	Kind   string // short invariant identifier, e.g. "page-cross"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d %s [%s]: %s", v.Cycle, v.Where, v.Kind, v.Detail)
}

// Options tunes a Checker.
type Options struct {
	// RecordStreams retains the full prefetch issue streams and the
	// per-interval miss buckets so two runs can be diffed (the
	// differential runner sets it; the inline -audit mode does not, to
	// bound memory).
	RecordStreams bool
	// MaxViolations caps retained violations (default 64); further ones
	// are counted in Dropped.
	MaxViolations int
}

// Checker wires the audit reference models into one sim.System. Use one
// Checker per system; it is not safe to share.
type Checker struct {
	opt Options

	sys       *sim.System
	pool      *memsys.RequestPool
	shadows   []*shadowCache
	recorders []*recorder

	violations []Violation
	dropped    int
	finished   bool
}

// New returns a Checker with default options (inline invariants and
// reference models, no stream recording).
func New() *Checker { return NewWithOptions(Options{}) }

// NewWithOptions returns a configured Checker.
func NewWithOptions(opt Options) *Checker {
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 64
	}
	return &Checker{opt: opt}
}

// Attach implements sim.Auditor: Build calls it once the system is
// fully wired. It shadows every cache, wraps every attached prefetcher
// in a lockstep recorder, and switches the request pool into audit
// mode.
func (k *Checker) Attach(sys *sim.System) {
	k.sys = sys
	k.pool = sys.RequestPool()
	k.pool.EnableAudit(func(detail string) {
		k.report(Violation{Where: "pool", Kind: "request-double-free", Detail: detail})
	})
	for i := 0; i < sys.Cores(); i++ {
		k.watchCache(sys.L1D(i), fmt.Sprintf("L1D.%d", i))
		k.watchCache(sys.L1I(i), fmt.Sprintf("L1I.%d", i))
		k.watchCache(sys.L2(i), fmt.Sprintf("L2.%d", i))
	}
	k.watchCache(sys.LLC(), "LLC")
}

func (k *Checker) watchCache(c *cache.Cache, name string) {
	sh := newShadowCache(k, c, name)
	k.shadows = append(k.shadows, sh)
	c.SetAuditor(sh)

	pf := c.Prefetcher()
	if _, isNil := pf.(prefetch.Nil); isNil {
		return
	}
	rec := newRecorder(k, pf, name)
	k.recorders = append(k.recorders, rec)
	c.SetPrefetcher(rec)
}

// report records one violation, bounded by MaxViolations.
func (k *Checker) report(v Violation) {
	if len(k.violations) < k.opt.MaxViolations {
		k.violations = append(k.violations, v)
	} else {
		k.dropped++
	}
}

// Finish runs the end-of-run cross-checks (stats totals against the
// shadow models, oracle counters against the production prefetchers)
// and returns every violation collected. Idempotent.
func (k *Checker) Finish() []Violation {
	if !k.finished {
		k.finished = true
		for _, sh := range k.shadows {
			sh.finish()
		}
		for _, r := range k.recorders {
			r.finish()
		}
	}
	return k.violations
}

// Violations returns what has been collected so far without running the
// end-of-run checks.
func (k *Checker) Violations() []Violation { return k.violations }

// Dropped reports violations discarded beyond MaxViolations.
func (k *Checker) Dropped() int { return k.dropped }

// Err summarizes the (finished) checker as a single error, nil when the
// run was clean.
func (k *Checker) Err() error {
	vs := k.Finish()
	if len(vs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(vs)+k.dropped)
	n := len(vs)
	if n > 8 {
		n = 8
	}
	for _, v := range vs[:n] {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if len(vs)+k.dropped > n {
		fmt.Fprintf(&b, "\n  ... and %d more", len(vs)+k.dropped-n)
	}
	return fmt.Errorf("%s", b.String())
}

// issueRec is one accepted prefetch candidate in a recorded stream.
type issueRec struct {
	Cycle int64
	Addr  memsys.Addr
	Class memsys.PrefetchClass
	Meta  uint16
}

// Streams returns the recorded per-prefetcher issue streams (accepted
// candidates in issue order). Empty unless Options.RecordStreams.
func (k *Checker) Streams() map[string][]issueRec {
	out := make(map[string][]issueRec, len(k.recorders))
	for _, r := range k.recorders {
		out[r.name] = r.stream
	}
	return out
}

// MissIntervals returns, per cache, the demand-miss count bucketed by
// 4096-cycle interval. Empty unless Options.RecordStreams.
func (k *Checker) MissIntervals() map[string]map[int64]uint64 {
	out := make(map[string]map[int64]uint64, len(k.shadows))
	for _, sh := range k.shadows {
		out[sh.name] = sh.missBuckets
	}
	return out
}

// ipcpCeilings returns the per-class per-Operate accepted-candidate
// ceilings for an IPCP prefetcher, zero for unbounded classes.
func ipcpCeilings(p prefetch.Prefetcher) ([memsys.NumClasses]int, bool) {
	var ceil [memsys.NumClasses]int
	switch t := p.(type) {
	case *core.L1IPCP:
		cfg := t.Config()
		ceil[memsys.ClassCS] = cfg.DegreeCS
		ceil[memsys.ClassCPLX] = cfg.DegreeCPLX
		ceil[memsys.ClassGS] = cfg.DegreeGS
		ceil[memsys.ClassNL] = 1
		return ceil, true
	case *core.L2IPCP:
		cfg := t.Config()
		ceil[memsys.ClassCS] = cfg.DegreeCS
		ceil[memsys.ClassGS] = cfg.DegreeGS
		ceil[memsys.ClassNL] = 1
		return ceil, true
	}
	return ceil, false
}
