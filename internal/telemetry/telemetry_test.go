package telemetry

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipcp/internal/memsys"
)

var update = flag.Bool("update", false, "rewrite golden files")

func ev(cycle int64, kind EventKind) Event {
	return Event{Cycle: cycle, Kind: kind, Level: memsys.LevelL1D}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	if tr.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", tr.Cap())
	}
	for i := int64(0); i < 6; i++ {
		tr.Emit(ev(i, EvIssued))
	}
	if tr.Len() != 4 {
		t.Errorf("Len after overflow = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	got := tr.Events()
	if len(got) != 4 {
		t.Fatalf("Events() returned %d events", len(got))
	}
	// The two oldest events (cycles 0, 1) were overwritten; the rest
	// must come back oldest first.
	for i, e := range got {
		if want := int64(i + 2); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(ev(10, EvThrottle))
	tr.Emit(ev(11, EvFill))
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Errorf("Len=%d Dropped=%d, want 2 and 0", tr.Len(), tr.Dropped())
	}
	if n := tr.Count(EvThrottle); n != 1 {
		t.Errorf("Count(EvThrottle) = %d, want 1", n)
	}
	tr.Reset()
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	if c := NewTracer(0).Cap(); c != DefaultTracerCapacity {
		t.Errorf("default capacity = %d, want %d", c, DefaultTracerCapacity)
	}
}

func TestEventKindNames(t *testing.T) {
	// Every kind must have a distinct, non-placeholder name: the wire
	// formats key on them.
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		n := k.String()
		if n == "" || strings.HasPrefix(n, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[n] {
			t.Errorf("duplicate kind name %q", n)
		}
		seen[n] = true
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Cycle: 7, Kind: EvClassTransition, Level: memsys.LevelL1D,
		Class: memsys.ClassGS, IP: 0x400100, Old: int(memsys.ClassNone),
		New: int(memsys.ClassGS)})
	tr.Emit(Event{Cycle: 9, Kind: EvThrottle, Level: memsys.LevelL1D,
		Class: memsys.ClassCS, Old: 4, New: 2, Acc: 0.25})

	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&b)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "class-transition" || lines[0]["ip"] != "0x400100" {
		t.Errorf("first line = %v", lines[0])
	}
	if lines[1]["kind"] != "throttle" || lines[1]["acc"] != 0.25 {
		t.Errorf("second line = %v", lines[1])
	}
}

// goldenEvents is a small deterministic trace exercising every export
// path: metadata lanes, counter tracks (throttle, NL gate), the phase
// marker, and instant events with class-transition args.
func goldenEvents() []Event {
	return []Event{
		{Cycle: 100, Kind: EvClassTransition, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, IP: 0x400010,
			Old: int(memsys.ClassNone), New: int(memsys.ClassCS)},
		{Cycle: 150, Kind: EvIssued, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, Addr: 0x10040, IP: 0x400010},
		{Cycle: 180, Kind: EvRRFiltered, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, Addr: 0x10080, IP: 0x400010},
		{Cycle: 200, Kind: EvNLGate, Level: memsys.LevelL1D, New: 1},
		{Cycle: 220, Kind: EvFill, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, Addr: 0x10040},
		{Cycle: 260, Kind: EvUseful, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, Addr: 0x10040},
		{Cycle: 300, Kind: EvPhase, New: 1},
		{Cycle: 340, Kind: EvPageClamped, Level: memsys.LevelL1D,
			Class: memsys.ClassGS, Addr: 0x10fc0, IP: 0x400020},
		{Cycle: 400, Kind: EvThrottle, Level: memsys.LevelL1D,
			Class: memsys.ClassCS, Old: 4, New: 6, Acc: 0.875},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(16)
	for _, e := range goldenEvents() {
		tr.Emit(e)
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create it)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("Chrome trace drifted from golden file; "+
			"rerun with -update if intentional\ngot:\n%s", b.String())
	}

	// Independently of the exact bytes, the output must be valid
	// trace_event JSON with the expected structure.
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	counters, instants, metas := 0, 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "C":
			counters++
		case "i":
			instants++
		case "M":
			metas++
		default:
			t.Errorf("unexpected phase %q in event %q", e.Phase, e.Name)
		}
	}
	// 2 counters (nl-gate + throttle degree), 7 instants (everything
	// else incl. the phase marker), plus one metadata record per lane.
	if counters != 2 || instants != 7 || metas == 0 {
		t.Errorf("event mix C=%d i=%d M=%d, want 2 counters and 7 instants",
			counters, instants, metas)
	}
}

func TestIntervalCSV(t *testing.T) {
	log := NewIntervalLog(0)
	if log.Every != DefaultInterval {
		t.Errorf("default Every = %d, want %d", log.Every, DefaultInterval)
	}
	s := Sample{
		StartCycle: 1000, EndCycle: 2000,
		Instructions: 500, IPC: 0.5,
		L1DMPKI: 12.5, L2MPKI: 4.0, LLCMPKI: 1.25,
		DRAMBytes: 4096, DRAMBusUtil: 0.125,
	}
	s.Classes[memsys.ClassGS] = ClassSample{
		Issued: 42, Fills: 40, Useful: 30, Degree: 4, Accuracy: 0.75,
	}
	log.Record(s)
	log.Record(Sample{StartCycle: 2000, EndCycle: 3000})
	if log.Len() != 2 {
		t.Fatalf("Len = %d", log.Len())
	}
	if got := log.Samples()[1].Index; got != 1 {
		t.Errorf("Record did not stamp index: %d", got)
	}

	var b bytes.Buffer
	if err := log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&b).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d CSV rows, want header + 2", len(rows))
	}
	header := CSVHeader()
	if len(rows[0]) != len(header) {
		t.Fatalf("header has %d columns, CSVHeader says %d",
			len(rows[0]), len(header))
	}
	for i, col := range header {
		if rows[0][i] != col {
			t.Errorf("header column %d = %q, want %q", i, rows[0][i], col)
		}
	}
	col := func(name string) string {
		for i, c := range header {
			if c == name {
				return rows[1][i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if col("GS_issued") != "42" || col("GS_accuracy") != "0.7500" {
		t.Errorf("GS columns = %s/%s, want 42/0.7500",
			col("GS_issued"), col("GS_accuracy"))
	}
	if col("start_cycle") != "1000" || col("end_cycle") != "2000" {
		t.Errorf("cycle bounds = %s..%s", col("start_cycle"), col("end_cycle"))
	}
}

func TestIntervalJSONL(t *testing.T) {
	log := NewIntervalLog(500)
	log.Record(Sample{StartCycle: 0, EndCycle: 500, Instructions: 100})
	var b bytes.Buffer
	if err := log.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["instructions"] != float64(100) || m["end_cycle"] != float64(500) {
		t.Errorf("JSONL sample = %v", m)
	}
}

func TestSnapshotTotalIssued(t *testing.T) {
	var s Snapshot
	s.Classes[memsys.ClassCS].Issued = 3
	s.Classes[memsys.ClassGS].Issued = 7
	if got := s.TotalIssued(); got != 10 {
		t.Errorf("TotalIssued = %d, want 10", got)
	}
}
