package telemetry

import (
	"bufio"
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition output for one counter,
// one gauge, and one histogram — the wire format scrapers parse.
func TestPrometheusGolden(t *testing.T) {
	var c Counter
	c.Add(42)
	var g Gauge
	g.Set(-7)
	h := NewHistogram(0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(99) // overflow bucket

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf, "ipcpd_jobs_admitted_total", "Jobs admitted."); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheus(&buf, "ipcpd_queue_depth", "Queued jobs."); err != nil {
		t.Fatal(err)
	}
	if err := h.WritePrometheus(&buf, "ipcpd_job_execution_seconds", "Job execution latency."); err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		"# HELP ipcpd_jobs_admitted_total Jobs admitted.",
		"# TYPE ipcpd_jobs_admitted_total counter",
		"ipcpd_jobs_admitted_total 42",
		"# HELP ipcpd_queue_depth Queued jobs.",
		"# TYPE ipcpd_queue_depth gauge",
		"ipcpd_queue_depth -7",
		"# HELP ipcpd_job_execution_seconds Job execution latency.",
		"# TYPE ipcpd_job_execution_seconds histogram",
		`ipcpd_job_execution_seconds_bucket{le="0.1"} 1`,
		`ipcpd_job_execution_seconds_bucket{le="1"} 2`,
		`ipcpd_job_execution_seconds_bucket{le="10"} 3`,
		`ipcpd_job_execution_seconds_bucket{le="+Inf"} 4`,
		"ipcpd_job_execution_seconds_sum 101.55",
		"ipcpd_job_execution_seconds_count 4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promLine matches the exposition grammar this package emits: comments
// or `name{labels} value`.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

// validatePrometheus scans an exposition body line by line against the
// grammar (the serve tests carry their own copy).
func validatePrometheus(t *testing.T, body []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		n++
		if !promLine.MatchString(line) {
			t.Errorf("exposition line %d does not parse: %q", n, line)
		}
	}
	if n == 0 {
		t.Error("empty exposition body")
	}
}

func TestPrometheusEmptyHistogram(t *testing.T) {
	h := NewHistogram(1, 2)
	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf, "m", ""); err != nil {
		t.Fatal(err)
	}
	validatePrometheus(t, buf.Bytes())
	if !strings.Contains(buf.String(), `m_bucket{le="+Inf"} 0`) || !strings.Contains(buf.String(), "m_count 0") {
		t.Errorf("empty histogram exposition:\n%s", buf.String())
	}
}
