package telemetry

import "ipcp/internal/memsys"

// ClassStats are one IPCP class's cumulative counters since the last
// stats reset (i.e. the measured phase of a run).
type ClassStats struct {
	Issued      uint64 `json:"issued"`
	Fills       uint64 `json:"fills"`
	Useful      uint64 `json:"useful"`
	RRFiltered  uint64 `json:"rr_filtered,omitempty"`
	PageClamped uint64 `json:"page_clamped,omitempty"`

	ThrottleUps   uint64 `json:"throttle_ups,omitempty"`
	ThrottleDowns uint64 `json:"throttle_downs,omitempty"`

	// Degree and Accuracy are live state, not counters: the current
	// throttled degree and the last measured window accuracy (valid
	// only when AccuracyMeasured).
	Degree           int     `json:"degree,omitempty"`
	Accuracy         float64 `json:"accuracy"`
	AccuracyMeasured bool    `json:"accuracy_measured"`
}

// Snapshot is one prefetcher instance's introspection state, exported
// through sim.Result for tooling (the `-json` flag, the interval
// sampler, tests).
type Snapshot struct {
	// Name is the prefetcher's registry name; Level where it sits.
	Name  string       `json:"name"`
	Level memsys.Level `json:"level"`

	// NLOn is the tentative next-line gate state.
	NLOn bool `json:"nl_on"`

	// RRProbes/RRHits are recent-request-filter lookups and hits (L1
	// only; zero where there is no filter).
	RRProbes uint64 `json:"rr_probes,omitempty"`
	RRHits   uint64 `json:"rr_hits,omitempty"`

	// ClassTransitions counts IPs switching class.
	ClassTransitions uint64 `json:"class_transitions,omitempty"`

	// Classes indexes by memsys.PrefetchClass (index 0 = none, then
	// CS, CPLX, GS, NL).
	Classes [memsys.NumClasses]ClassStats `json:"classes"`
}

// TotalIssued sums issued prefetches across classes.
func (s *Snapshot) TotalIssued() uint64 {
	var t uint64
	for i := range s.Classes {
		t += s.Classes[i].Issued
	}
	return t
}

// Introspector is implemented by prefetchers that can export a
// per-class Snapshot (the IPCPs). The simulator discovers them by type
// assertion, keeping the prefetch.Prefetcher interface unchanged.
type Introspector interface {
	TelemetrySnapshot() Snapshot
}

// Traceable is implemented by components that can emit trace events.
// SetTracer attaches the (possibly nil) tracer and tells the component
// which core it belongs to (-1 for shared components).
type Traceable interface {
	SetTracer(tr *Tracer, core int)
}

// StatsResetter is implemented by prefetchers whose observation
// counters reset at the warmup boundary alongside cache statistics.
// Resetting must not disturb architectural state (degrees, accuracy
// windows, table contents) — simulation behavior has to be identical
// with or without the reset.
type StatsResetter interface {
	ResetStats()
}
