package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("Gauge = %d, want 0", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("Gauge = %d after Set, want 42", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.07, 0.5, 2, 3, 4, 5, 6, 7, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("Count = %d", s.Count)
	}
	want := []HistogramBucket{{0.1, 2}, {1, 3}, {10, 9}}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if s.Min != 0.05 || s.Max != 50 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-7.762) > 0.01 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Rank 5 of 10 lands in the (1,10] bucket; rank 10 in the overflow,
	// reported as Max.
	if s.P50 != 10 {
		t.Errorf("P50 = %v, want 10", s.P50)
	}
	if s.P99 != 50 {
		t.Errorf("P99 = %v, want Max (50)", s.P99)
	}

	// The snapshot must be JSON-encodable (no +Inf bound anywhere).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	if len(s.Buckets) != len(DefaultLatencyBuckets) {
		t.Errorf("buckets = %d, want %d", len(s.Buckets), len(DefaultLatencyBuckets))
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(i % 4))
			}
		}(i)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("Count = %d, want 4000", s.Count)
	}
}
