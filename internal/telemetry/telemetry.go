// Package telemetry is the simulator's observability layer: a bounded
// structured event trace (prefetch lifecycle, class transitions,
// throttle decisions), an interval metrics timeline, and the per-class
// introspection snapshot IPCP-style prefetchers export.
//
// Everything here is strictly opt-in: components hold a nil *Tracer /
// nil *IntervalLog by default and guard every emit site with a nil
// check, so the disabled path costs one predictable branch and zero
// allocations.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"ipcp/internal/memsys"
)

// EventKind enumerates the traced event types.
type EventKind uint8

const (
	// EvIssued is a prefetch candidate accepted into a prefetch queue.
	EvIssued EventKind = iota
	// EvFill is a prefetched block installed into a cache.
	EvFill
	// EvUseful is a demand hit on a prefetched, not-yet-demanded line.
	EvUseful
	// EvRRFiltered is a candidate dropped by the recent-request filter.
	EvRRFiltered
	// EvPageClamped is a candidate dropped at the page boundary.
	EvPageClamped
	// EvClassTransition is an IP changing IPCP class (Old/New carry the
	// classes).
	EvClassTransition
	// EvNLGate is the tentative next-line gate flipping (New is 0/1).
	EvNLGate
	// EvThrottle is an accuracy-window throttle decision (Old/New carry
	// the degree, Acc the measured accuracy).
	EvThrottle
	// EvPhase marks a simulation phase boundary (the warmup→measurement
	// transition); events with earlier cycles are training-phase
	// events. Tools clip at this marker to isolate the measured phase.
	EvPhase
	// EvGuardTrip is a guarded prefetcher being disabled for the rest
	// of the run after a panic or budget violation (fail-safe
	// degradation; the sim continues unprefetched at that level).
	EvGuardTrip

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"issued", "fill", "useful", "rr-filtered", "page-clamped",
	"class-transition", "nl-gate", "throttle", "phase", "guard-trip",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one traced occurrence. The Old/New/Acc fields are
// kind-specific: class transitions carry the old and new class, NL-gate
// flips carry 0/1, throttle decisions carry the old and new degree plus
// the window accuracy.
type Event struct {
	Cycle int64
	Kind  EventKind
	Level memsys.Level
	Core  int
	Class memsys.PrefetchClass
	Addr  memsys.Addr
	IP    memsys.Addr
	Old   int
	New   int
	Acc   float64
}

// Tracer records events into a bounded ring buffer: once full, the
// oldest events are overwritten (the tail of a run is usually the
// interesting part) and Dropped counts the overwritten ones.
type Tracer struct {
	buf     []Event
	next    int
	n       int
	dropped uint64
}

// DefaultTracerCapacity is used when NewTracer is given a non-positive
// capacity.
const DefaultTracerCapacity = 1 << 16

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event, overwriting the oldest when full.
func (t *Tracer) Emit(e Event) {
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return t.n }

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Reset discards all retained events. The simulator does NOT reset the
// trace at the warmup boundary — training-phase events (classification,
// NL-gate warmup) are part of what the trace explains — it emits an
// EvPhase marker there instead, so tools can clip if they want to.
func (t *Tracer) Reset() {
	t.next, t.n, t.dropped = 0, 0, 0
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Count returns how many retained events have the given kind.
func (t *Tracer) Count(kind EventKind) int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	Cycle int64   `json:"cycle"`
	Kind  string  `json:"kind"`
	Level string  `json:"level"`
	Core  int     `json:"core"`
	Class string  `json:"class,omitempty"`
	Addr  string  `json:"addr,omitempty"`
	IP    string  `json:"ip,omitempty"`
	Old   int     `json:"old,omitempty"`
	New   int     `json:"new,omitempty"`
	Acc   float64 `json:"acc,omitempty"`
}

func toJSONEvent(e Event) jsonEvent {
	je := jsonEvent{
		Cycle: e.Cycle,
		Kind:  e.Kind.String(),
		Level: e.Level.String(),
		Core:  e.Core,
		Old:   e.Old,
		New:   e.New,
		Acc:   e.Acc,
	}
	if e.Class != memsys.ClassNone {
		je.Class = e.Class.String()
	}
	if e.Addr != 0 {
		je.Addr = fmt.Sprintf("0x%x", e.Addr)
	}
	if e.IP != 0 {
		je.IP = fmt.Sprintf("0x%x", e.IP)
	}
	return je
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(toJSONEvent(e)); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event record. ts is in microseconds;
// the export maps one simulated cycle to one microsecond so Perfetto's
// time axis reads directly in cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID lays event lanes out per cache level and class so related
// events share a track in the viewer.
func chromeTID(e Event) int { return int(e.Level)*8 + int(e.Class) }

// WriteChromeTrace writes the retained events in Chrome trace_event
// JSON ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. Lifecycle events become instant events; throttle degrees
// and the NL gate become counter tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events)+8)

	// Name the pid/tid lanes once per (core, level, class) seen.
	type lane struct{ pid, tid int }
	named := map[lane]bool{}
	for _, e := range events {
		l := lane{e.Core, chromeTID(e)}
		if named[l] {
			continue
		}
		named[l] = true
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: e.Core, TID: l.tid,
			Args: map[string]any{
				"name": fmt.Sprintf("%s %s", e.Level, e.Class),
			},
		})
	}

	for _, e := range events {
		switch e.Kind {
		case EvThrottle:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("degree.%s", e.Class), Phase: "C",
				TS: e.Cycle, PID: e.Core,
				Args: map[string]any{"degree": e.New, "accuracy": e.Acc},
			})
		case EvNLGate:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("nl-gate.%s", e.Level), Phase: "C",
				TS: e.Cycle, PID: e.Core,
				Args: map[string]any{"on": e.New},
			})
		case EvPhase:
			out = append(out, chromeEvent{
				Name: "measurement-start", Phase: "i",
				TS: e.Cycle, PID: e.Core, Scope: "g",
			})
		default:
			args := map[string]any{}
			if e.Addr != 0 {
				args["addr"] = fmt.Sprintf("0x%x", e.Addr)
			}
			if e.IP != 0 {
				args["ip"] = fmt.Sprintf("0x%x", e.IP)
			}
			if e.Kind == EvClassTransition {
				args["from"] = memsys.PrefetchClass(e.Old).String()
				args["to"] = memsys.PrefetchClass(e.New).String()
			}
			out = append(out, chromeEvent{
				Name:  fmt.Sprintf("%s %s", e.Kind, e.Class),
				Phase: "i", TS: e.Cycle, PID: e.Core, TID: chromeTID(e),
				Scope: "t", Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ms"})
}
