package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the serving-side metrics surface: lock-free counters
// and gauges plus a bucketed latency histogram, built for ipcpd's
// /metrics endpoint but usable by any long-running harness. Unlike the
// event tracer and interval log — which observe one simulation — these
// aggregate across a process lifetime and many concurrent jobs, so
// every type here is safe for concurrent use.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, in-flight jobs).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans sub-millisecond cache hits to minutes-long
// default-scale experiment jobs.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus-style "le" bounds). The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; observations above the last land in the overflow
	counts []uint64  // per-bucket (non-cumulative), len(bounds)+1 with the overflow last
	sum    float64
	count  uint64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (DefaultLatencyBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramBucket is one cumulative bucket: Count observations were
// <= LE. The overflow bucket (observations above the last bound) is
// not listed — it is Snapshot.Count minus the last bucket's Count —
// so the snapshot stays JSON-encodable (no +Inf bound).
type HistogramBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for
// JSON. Min/Max/Mean are 0 when Count is 0.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy with cumulative buckets and
// estimated quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min, s.Max, s.Mean = h.min, h.max, h.sum/float64(h.count)
	}
	h.mu.Unlock()

	cum := uint64(0)
	s.Buckets = make([]HistogramBucket, len(h.bounds))
	for i, b := range h.bounds {
		cum += counts[i]
		s.Buckets[i] = HistogramBucket{LE: b, Count: cum}
	}
	s.P50 = quantile(h.bounds, counts, s, 0.50)
	s.P90 = quantile(h.bounds, counts, s, 0.90)
	s.P99 = quantile(h.bounds, counts, s, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts: the upper bound
// of the bucket holding the q-th observation (Max for the overflow
// bucket, so a saturated histogram still reports something finite).
func quantile(bounds []float64, counts []uint64, s HistogramSnapshot, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}
