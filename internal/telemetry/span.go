package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the serving-side tracing surface: wall-clock spans with
// parent links and request correlation, recorded into a lock-free
// bounded ring. Where the event Tracer observes one simulation from the
// inside (cycle-stamped, single-goroutine), the SpanTracer observes the
// daemon from the outside — HTTP handlers, queue waits, admission,
// session cache lookups, simulation phases — across many concurrent
// jobs, so every operation here is safe for concurrent use.
//
// Correlation flows through context.Context: the HTTP layer stamps a
// request id (and later a job id) into the context, StartSpan reads
// them plus the enclosing span's id, and every span carries all three.
// A context without a SpanTracer makes StartSpan free: it returns the
// context unchanged and a nil *ActiveSpan whose methods no-op, so
// library code can be instrumented unconditionally.

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed traced operation.
type Span struct {
	ID        uint64        `json:"id"`
	Parent    uint64        `json:"parent,omitempty"`
	Name      string        `json:"name"`
	RequestID string        `json:"request_id,omitempty"`
	JobID     string        `json:"job_id,omitempty"`
	Start     time.Time     `json:"start"`
	Dur       time.Duration `json:"dur"`
	Attrs     []SpanAttr    `json:"attrs,omitempty"`
}

// SpanTracer records completed spans into a bounded ring: once full,
// the oldest spans are overwritten (the recent past is the interesting
// part of a long-running daemon) and Dropped counts the overwritten
// ones. The hot path is lock-free — publishing a span is one atomic
// slot reservation plus one atomic pointer store — and readers
// (Snapshot, the trace exports) see a best-effort consistent copy
// without stalling writers.
type SpanTracer struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64 // total spans ever published
	ids   atomic.Uint64 // span id allocator (ids start at 1)
	epoch time.Time     // zero point of exported timestamps
}

// DefaultSpanCapacity is used when NewSpanTracer is given a
// non-positive capacity.
const DefaultSpanCapacity = 1 << 14

// NewSpanTracer returns a tracer retaining up to capacity spans.
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanTracer{slots: make([]atomic.Pointer[Span], capacity), epoch: time.Now()}
}

// Epoch is the tracer's time origin; exported trace timestamps are
// offsets from it.
func (t *SpanTracer) Epoch() time.Time { return t.epoch }

// NextID allocates a fresh span id (exported for retroactive spans
// built outside StartSpan).
func (t *SpanTracer) NextID() uint64 { return t.ids.Add(1) }

// Emit publishes one completed span, assigning its ID when zero, and
// returns the id. The span value is copied; the caller may reuse it.
func (t *SpanTracer) Emit(s Span) uint64 {
	if s.ID == 0 {
		s.ID = t.NextID()
	}
	i := t.next.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(&s)
	return s.ID
}

// Len returns the number of retained spans.
func (t *SpanTracer) Len() int {
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Cap returns the ring capacity.
func (t *SpanTracer) Cap() int { return len(t.slots) }

// Dropped returns how many spans were overwritten by newer ones.
func (t *SpanTracer) Dropped() uint64 {
	n := t.next.Load()
	if n > uint64(len(t.slots)) {
		return n - uint64(len(t.slots))
	}
	return 0
}

// Snapshot returns a copy of the retained spans ordered by start time.
// Concurrent publishes may land mid-read; the snapshot is best-effort
// (never torn — each slot is an atomic pointer to an immutable span).
func (t *SpanTracer) Snapshot() []Span {
	out := make([]Span, 0, t.Len())
	for i := range t.slots {
		if p := t.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SpansFor returns the retained spans stamped with the given job id,
// ordered by start time.
func (t *SpanTracer) SpansFor(jobID string) []Span {
	all := t.Snapshot()
	out := all[:0]
	for _, s := range all {
		if s.JobID == jobID {
			out = append(out, s)
		}
	}
	return out
}

// --- context correlation --------------------------------------------------

type spanCtxKey int

const (
	ctxKeySpanTracer spanCtxKey = iota
	ctxKeyRequestID
	ctxKeyJobID
	ctxKeyParentSpan
	ctxKeyProgress
)

// ContextWithSpanTracer returns a context whose StartSpan calls record
// into t.
func ContextWithSpanTracer(ctx context.Context, t *SpanTracer) context.Context {
	return context.WithValue(ctx, ctxKeySpanTracer, t)
}

// SpanTracerFrom returns the context's span tracer, or nil.
func SpanTracerFrom(ctx context.Context) *SpanTracer {
	t, _ := ctx.Value(ctxKeySpanTracer).(*SpanTracer)
	return t
}

// ContextWithRequestID stamps a request correlation id; every span and
// log line derived from the context carries it.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom returns the context's request id, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// ContextWithJobID stamps the owning job's id onto spans started below.
func ContextWithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyJobID, id)
}

// JobIDFrom returns the context's job id, or "".
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyJobID).(string)
	return id
}

// ContextWithParentSpan sets the parent span id for spans started below
// (used to link a job's spans back to the HTTP request that submitted
// it, across the queue's goroutine boundary).
func ContextWithParentSpan(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, ctxKeyParentSpan, id)
}

// ParentSpanFrom returns the enclosing span id, or 0.
func ParentSpanFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(ctxKeyParentSpan).(uint64)
	return id
}

// Progress is a point-in-time report from a running simulation: how far
// the current phase has advanced toward its per-core instruction
// target.
type Progress struct {
	Phase   string `json:"phase"` // "warmup" | "measure"
	Retired uint64 `json:"retired"`
	Target  uint64 `json:"target"`
	Cycle   int64  `json:"cycle"`
}

// ProgressFunc receives simulation progress reports. Implementations
// must be cheap and concurrency-safe; the simulator calls them from its
// cycle loop (at the cancellation-check cadence, every few thousand
// cycles).
type ProgressFunc func(Progress)

// ContextWithProgress attaches a progress sink for simulations run
// below the context.
func ContextWithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, ctxKeyProgress, fn)
}

// ProgressFrom returns the context's progress sink, or nil.
func ProgressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(ctxKeyProgress).(ProgressFunc)
	return fn
}

// ActiveSpan is an in-flight span returned by StartSpan. A nil
// *ActiveSpan (no tracer in the context) is valid: every method
// no-ops, so instrumented code needs no conditionals. An ActiveSpan is
// owned by the goroutine that started it until End publishes it.
type ActiveSpan struct {
	tr    *SpanTracer
	s     Span
	ended bool
}

// StartSpan begins a span named name, parented to the context's
// enclosing span and stamped with its request/job ids, and returns a
// derived context under which children parent to the new span. Without
// a tracer in ctx it returns (ctx, nil) — free, allocation-less.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	tr := SpanTracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	a := &ActiveSpan{tr: tr}
	a.s = Span{
		ID:        tr.NextID(),
		Parent:    ParentSpanFrom(ctx),
		Name:      name,
		RequestID: RequestIDFrom(ctx),
		JobID:     JobIDFrom(ctx),
		Start:     time.Now(),
	}
	return context.WithValue(ctx, ctxKeyParentSpan, a.s.ID), a
}

// ID returns the span's id (0 on a nil span).
func (a *ActiveSpan) ID() uint64 {
	if a == nil {
		return 0
	}
	return a.s.ID
}

// SetAttr annotates the span. Later values for the same key are
// appended, not replaced (attr lists stay tiny).
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, SpanAttr{Key: key, Value: value})
}

// SetJobID stamps the owning job onto the span (the submit handler
// learns the job id mid-span).
func (a *ActiveSpan) SetJobID(id string) {
	if a == nil {
		return
	}
	a.s.JobID = id
}

// End completes and publishes the span. Idempotent; safe on nil.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.s.Dur = time.Since(a.s.Start)
	a.tr.Emit(a.s)
}

// --- export ---------------------------------------------------------------

// WriteSpansJSONL writes spans (all retained, or only jobID's when
// non-empty) one JSON object per line, oldest first.
func (t *SpanTracer) WriteSpansJSONL(w io.Writer, jobID string) error {
	spans := t.Snapshot()
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if jobID != "" && s.JobID != jobID {
			continue
		}
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the retained spans (all, or only jobID's when
// non-empty) as Chrome trace_event JSON, loadable in chrome://tracing
// and Perfetto. Spans become complete ("X") events on one lane per job
// (lane 0 for spans outside any job — HTTP scrapes, health checks);
// timestamps are microseconds since the tracer's epoch.
func (t *SpanTracer) WriteChromeTrace(w io.Writer, jobID string) error {
	spans := t.Snapshot()
	out := make([]chromeEvent, 0, len(spans)+8)

	tids := map[string]int{"": 0}
	laneName := func(job string) string {
		if job == "" {
			return "daemon"
		}
		return "job " + job
	}
	for _, s := range spans {
		if jobID != "" && s.JobID != jobID {
			continue
		}
		if _, ok := tids[s.JobID]; !ok {
			tids[s.JobID] = len(tids)
		}
	}
	// Name every lane up front so the viewer groups spans per job.
	lanes := make([]string, len(tids))
	for job, tid := range tids {
		lanes[tid] = job
	}
	for tid, job := range lanes {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": laneName(job)},
		})
	}

	for _, s := range spans {
		if jobID != "" && s.JobID != jobID {
			continue
		}
		args := map[string]any{"span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.RequestID != "" {
			args["request_id"] = s.RequestID
		}
		if s.JobID != "" {
			args["job_id"] = s.JobID
		}
		for _, at := range s.Attrs {
			args[at.Key] = at.Value
		}
		dur := s.Dur.Microseconds()
		if dur < 1 {
			dur = 1 // sub-microsecond spans still render
		}
		out = append(out, chromeEvent{
			Name: s.Name, Phase: "X",
			TS:  s.Start.Sub(t.epoch).Microseconds(),
			Dur: dur, PID: 1, TID: tids[s.JobID],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{out, "ms"})
}
