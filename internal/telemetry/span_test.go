package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanWithoutTracerIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "noop")
	if ctx2 != ctx {
		t.Error("StartSpan without a tracer must return the context unchanged")
	}
	if sp != nil {
		t.Error("StartSpan without a tracer must return a nil span")
	}
	// The nil span's whole surface must be safe.
	sp.SetAttr("k", "v")
	sp.SetJobID("j1")
	sp.End()
	if sp.ID() != 0 {
		t.Error("nil span id != 0")
	}
}

func TestSpanParentingAndCorrelation(t *testing.T) {
	tr := NewSpanTracer(64)
	ctx := ContextWithSpanTracer(context.Background(), tr)
	ctx = ContextWithRequestID(ctx, "req-1")
	ctx = ContextWithJobID(ctx, "j000001")

	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.SetAttr("outcome", "executed")
	child.End()
	root.End()
	root.End() // idempotent

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c := byName["root"], byName["child"]
	if c.Parent != r.ID {
		t.Errorf("child.Parent = %d, want root id %d", c.Parent, r.ID)
	}
	for _, s := range []Span{r, c} {
		if s.RequestID != "req-1" || s.JobID != "j000001" {
			t.Errorf("span %s correlation = (%q, %q), want (req-1, j000001)", s.Name, s.RequestID, s.JobID)
		}
	}
	if len(c.Attrs) != 1 || c.Attrs[0] != (SpanAttr{"outcome", "executed"}) {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
}

func TestSpanRingOverwritesOldest(t *testing.T) {
	tr := NewSpanTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Span{Name: fmt.Sprintf("s%d", i), Start: time.Unix(int64(i), 0)})
	}
	if tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("Len=%d Dropped=%d, want 4/6", tr.Len(), tr.Dropped())
	}
	var names []string
	for _, s := range tr.Snapshot() {
		names = append(names, s.Name)
	}
	if got, want := fmt.Sprint(names), "[s6 s7 s8 s9]"; got != want {
		t.Errorf("retained = %s, want %s", got, want)
	}
}

// TestSpanTracerConcurrency hammers the ring from many goroutines while
// snapshots and exports run concurrently; run under -race this is the
// lock-free-hot-path safety proof.
func TestSpanTracerConcurrency(t *testing.T) {
	tr := NewSpanTracer(256)
	ctx := ContextWithSpanTracer(context.Background(), tr)

	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: snapshots and both exports.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					tr.Snapshot()
				case 1:
					tr.WriteChromeTrace(new(bytes.Buffer), "")
				case 2:
					tr.WriteSpansJSONL(new(bytes.Buffer), "j5")
				}
			}
		}(r)
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			jctx := ContextWithJobID(ctx, fmt.Sprintf("j%d", w))
			for i := 0; i < perWriter; i++ {
				c2, sp := StartSpan(jctx, "op")
				_, inner := StartSpan(c2, "inner")
				inner.End()
				sp.SetAttr("i", fmt.Sprint(i))
				sp.End()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	total := uint64(writers * perWriter * 2)
	if got := tr.Dropped() + uint64(tr.Len()); got != total {
		t.Fatalf("dropped+retained = %d, want %d", got, total)
	}
	if tr.Len() != 256 {
		t.Fatalf("Len = %d, want full ring 256", tr.Len())
	}
}

func TestSpanChromeTraceExport(t *testing.T) {
	tr := NewSpanTracer(64)
	ctx := ContextWithSpanTracer(context.Background(), tr)
	ctx = ContextWithRequestID(ctx, "demo")

	jctx := ContextWithJobID(ctx, "j000001")
	jctx, job := StartSpan(jctx, "job.run")
	_, warm := StartSpan(jctx, "sim.warmup")
	warm.End()
	job.End()
	octx := ContextWithJobID(ctx, "j000002")
	_, other := StartSpan(octx, "job.run")
	other.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "j000001"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Dur   int64          `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.Bytes())
	}
	var complete []string
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		complete = append(complete, e.Name)
		if e.Dur < 1 {
			t.Errorf("event %s dur = %d, want >= 1", e.Name, e.Dur)
		}
		if rid := e.Args["request_id"]; rid != "demo" {
			t.Errorf("event %s request_id = %v", e.Name, rid)
		}
		if jid := e.Args["job_id"]; jid != "j000001" {
			t.Errorf("event %s job_id = %v (filter leaked)", e.Name, jid)
		}
	}
	if got := fmt.Sprint(complete); !strings.Contains(got, "job.run") || !strings.Contains(got, "sim.warmup") {
		t.Errorf("filtered export = %v, want job.run + sim.warmup", complete)
	}
	if len(complete) != 2 {
		t.Errorf("filtered export has %d complete events, want 2 (j000002 excluded)", len(complete))
	}
}

func TestSpansForFiltersByJob(t *testing.T) {
	tr := NewSpanTracer(16)
	tr.Emit(Span{Name: "a", JobID: "j1", Start: time.Unix(1, 0)})
	tr.Emit(Span{Name: "b", JobID: "j2", Start: time.Unix(2, 0)})
	tr.Emit(Span{Name: "c", JobID: "j1", Start: time.Unix(3, 0)})
	got := tr.SpansFor("j1")
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Fatalf("SpansFor(j1) = %+v", got)
	}
}
