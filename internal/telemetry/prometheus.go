package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) for the serving
// metrics. Each metric type knows how to render itself as one family;
// callers composing labeled families (one name, several label sets)
// write the header once with WritePrometheusHeader and the samples
// themselves.

// PrometheusContentType is the Content-Type of the text exposition
// format this file emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheusHeader writes one family's # HELP / # TYPE preamble.
// typ is one of "counter", "gauge", "histogram", "untyped".
func WritePrometheusHeader(w io.Writer, name, typ, help string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// promFloat renders a float the way Prometheus clients expect: shortest
// round-trip decimal, +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheusValue writes a complete single-sample family.
func WritePrometheusValue(w io.Writer, name, typ, help string, v float64) error {
	if err := WritePrometheusHeader(w, name, typ, help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
	return err
}

// WritePrometheus renders the counter as one family.
func (c *Counter) WritePrometheus(w io.Writer, name, help string) error {
	return WritePrometheusValue(w, name, "counter", help, float64(c.Value()))
}

// WritePrometheus renders the gauge as one family.
func (g *Gauge) WritePrometheus(w io.Writer, name, help string) error {
	return WritePrometheusValue(w, name, "gauge", help, float64(g.Value()))
}

// WritePrometheus renders the histogram as one family: cumulative
// _bucket{le="..."} samples (including the mandatory le="+Inf"), _sum,
// and _count.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) error {
	s := h.Snapshot()
	return s.WritePrometheus(w, name, help)
}

// WritePrometheus renders a captured snapshot (same output as
// Histogram.WritePrometheus; split out so a consistent snapshot can be
// rendered alongside its JSON form).
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name, help string) error {
	if err := WritePrometheusHeader(w, name, "histogram", help); err != nil {
		return err
	}
	for _, b := range s.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.LE), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}
