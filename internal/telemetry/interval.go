package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"ipcp/internal/memsys"
)

// ClassSample is one IPCP class's activity within one interval. Issued,
// Fills and Useful are interval deltas (summed across cores); Degree
// and Accuracy are the state at the end of the interval, averaged
// across every core whose prefetcher exposes a snapshot (exactly core
// 0's values on a single-core run).
type ClassSample struct {
	Issued   uint64  `json:"issued"`
	Fills    uint64  `json:"fills"`
	Useful   uint64  `json:"useful"`
	Degree   int     `json:"degree"`
	Accuracy float64 `json:"accuracy"`
}

// Sample is one interval of the metrics timeline. Cycle bounds are
// absolute simulator cycles; rate metrics are computed over the
// interval only.
type Sample struct {
	Index      int   `json:"interval"`
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`

	// Instructions retired in the interval, summed across cores.
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	L1DMPKI float64 `json:"l1d_mpki"`
	L2MPKI  float64 `json:"l2_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`

	// L1DMisses/L2Misses/LLCMisses are the raw demand-miss deltas the
	// MPKI columns are computed from. Unlike the MPKIs — which are
	// zeroed when an interval retires no instructions — they are
	// always recorded, so summing any counter column over the
	// timeline reproduces the end-of-run total exactly.
	L1DMisses uint64 `json:"l1d_misses"`
	L2Misses  uint64 `json:"l2_misses"`
	LLCMisses uint64 `json:"llc_misses"`

	// DRAMBytes is data moved on the DRAM bus in the interval;
	// DRAMBusUtil the fraction of DRAM cycles the bus was busy.
	DRAMBytes   uint64  `json:"dram_bytes"`
	DRAMBusUtil float64 `json:"dram_bus_util"`

	// Classes indexes by memsys.PrefetchClass (L1-D IPCP activity).
	Classes [memsys.NumClasses]ClassSample `json:"classes"`
}

// IntervalLog collects the per-interval samples of one run.
type IntervalLog struct {
	// Every is the interval length in cycles.
	Every   int64
	samples []Sample
}

// DefaultInterval is the sampling period used when NewIntervalLog is
// given a non-positive one.
const DefaultInterval = 10_000

// NewIntervalLog returns a log sampled every `every` cycles.
func NewIntervalLog(every int64) *IntervalLog {
	if every <= 0 {
		every = DefaultInterval
	}
	return &IntervalLog{Every: every}
}

// Record appends one sample, stamping its index.
func (l *IntervalLog) Record(s Sample) {
	s.Index = len(l.samples)
	l.samples = append(l.samples, s)
}

// Samples returns the recorded timeline.
func (l *IntervalLog) Samples() []Sample { return l.samples }

// Len returns the number of recorded intervals.
func (l *IntervalLog) Len() int { return len(l.samples) }

// sampledClasses are the classes reported in the CSV (ClassNone's
// column would always be zero for IPCP; non-IPCP prefetchers land
// there, so it is included last for completeness).
var sampledClasses = []memsys.PrefetchClass{
	memsys.ClassCS, memsys.ClassCPLX, memsys.ClassGS, memsys.ClassNL,
	memsys.ClassNone,
}

// CSVHeader returns the column names of WriteCSV's output.
func CSVHeader() []string {
	cols := []string{
		"interval", "start_cycle", "end_cycle", "instructions", "ipc",
		"l1d_mpki", "l2_mpki", "llc_mpki",
		"l1d_misses", "l2_misses", "llc_misses",
		"dram_bytes", "dram_bus_util",
	}
	for _, c := range sampledClasses {
		n := c.String()
		cols = append(cols,
			n+"_issued", n+"_fills", n+"_useful", n+"_degree", n+"_accuracy")
	}
	return cols
}

// WriteCSV writes the timeline as CSV with the CSVHeader columns.
func (l *IntervalLog) WriteCSV(w io.Writer) error {
	for i, col := range CSVHeader() {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, col); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, s := range l.samples {
		row := fmt.Sprintf("%d,%d,%d,%d,%.6f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%.6f",
			s.Index, s.StartCycle, s.EndCycle, s.Instructions, s.IPC,
			s.L1DMPKI, s.L2MPKI, s.LLCMPKI,
			s.L1DMisses, s.L2Misses, s.LLCMisses,
			s.DRAMBytes, s.DRAMBusUtil)
		for _, c := range sampledClasses {
			cs := s.Classes[c]
			row += fmt.Sprintf(",%d,%d,%d,%d,%.4f",
				cs.Issued, cs.Fills, cs.Useful, cs.Degree, cs.Accuracy)
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the timeline as one JSON object per interval.
func (l *IntervalLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range l.samples {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
