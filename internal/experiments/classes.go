package experiments

import (
	"fmt"

	"ipcp/internal/core"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/stats"
)

// ipcpVariant builds an L1 IPCP with the given config mutation, keyed
// for the session cache.
func ipcpVariant(key string, mutate func(*core.L1Config)) (string, func() (prefetch.Prefetcher, error)) {
	return key, func() (prefetch.Prefetcher, error) {
		cfg := core.DefaultL1Config()
		mutate(&cfg)
		return core.NewL1IPCP(cfg), nil
	}
}

// geomeanVariant runs an IPCP variant over the workload set and
// returns the geomean speedup against the no-prefetching baseline.
func geomeanVariant(s *Session, names []string, key string, withL2 bool, mutate func(*core.L1Config)) (float64, error) {
	k, mk := ipcpVariant(key, mutate)
	specs := make([]RunSpec, 0, 2*len(names))
	l2 := ""
	if withL2 {
		l2 = "ipcp"
	}
	for _, n := range names {
		specs = append(specs,
			RunSpec{Workloads: []string{n}},
			RunSpec{Workloads: []string{n}, L1DNew: mk, L2: l2, ConfigKey: k})
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return 0, err
	}
	sp := make([]float64, len(names))
	for i := range names {
		sp[i] = stats.Speedup(results[2*i+1].IPC[0], results[2*i].IPC[0])
	}
	return stats.Geomean(sp), nil
}

// --- Fig. 13a: utility of IPCP classes ---------------------------------------

func init() {
	register(Experiment{
		ID:    "fig13a",
		Title: "Utility of IPCP classes in isolation and combined",
		Paper: "CS and CPLX are the strongest in isolation (>30%); GS alone " +
			"<15% but lifts the bouquet; full L1 bouquet 40%; +L2 adds 5.1%.",
		Run: runFig13a,
	})
}

func runFig13a(s *Session) (*Table, error) {
	names := s.memIntensive()
	variants := []struct {
		label  string
		key    string
		withL2 bool
		mut    func(*core.L1Config)
	}{
		{"CS only", "cls-cs", false, func(c *core.L1Config) {
			c.EnableCPLX, c.EnableGS, c.EnableNL = false, false, false
		}},
		{"CPLX only", "cls-cplx", false, func(c *core.L1Config) {
			c.EnableCS, c.EnableGS, c.EnableNL = false, false, false
		}},
		{"GS only", "cls-gs", false, func(c *core.L1Config) {
			c.EnableCS, c.EnableCPLX, c.EnableNL = false, false, false
		}},
		{"CS+CPLX", "cls-cs-cplx", false, func(c *core.L1Config) {
			c.EnableGS, c.EnableNL = false, false
		}},
		{"CS+CPLX+NL", "cls-cs-cplx-nl", false, func(c *core.L1Config) {
			c.EnableGS = false
		}},
		{"IPCP L1 (full bouquet)", "cls-full", false, func(c *core.L1Config) {}},
		{"IPCP L1+L2", "cls-full-l2", true, func(c *core.L1Config) {}},
	}
	t := &Table{
		ID:      "fig13a",
		Title:   "Geomean speedup per class configuration",
		Columns: []string{"speedup"},
	}
	for _, v := range variants {
		g, err := geomeanVariant(s, names, v.key, v.withL2, v.mut)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, g)
	}
	t.Notes = append(t.Notes,
		"Paper Fig. 13a: the bouquet beats every class in isolation, and the L2 IPCP adds on top.")
	return t, nil
}

// --- Fig. 13b: priority orders and metadata ------------------------------------

func init() {
	register(Experiment{
		ID:    "fig13b",
		Title: "Class priority orders and metadata utility",
		Paper: "GS-first priority is best (reordering costs up to 9%); " +
			"dropping the L1→L2 metadata costs 3.1%.",
		Run: runFig13b,
	})
}

func runFig13b(s *Session) (*Table, error) {
	names := s.memIntensive()
	orders := []struct {
		label string
		order []memsys.PrefetchClass
	}{
		{"GS>CS>CPLX>NL (paper)", []memsys.PrefetchClass{memsys.ClassGS, memsys.ClassCS, memsys.ClassCPLX, memsys.ClassNL}},
		{"CS>GS>CPLX>NL", []memsys.PrefetchClass{memsys.ClassCS, memsys.ClassGS, memsys.ClassCPLX, memsys.ClassNL}},
		{"CPLX>CS>GS>NL", []memsys.PrefetchClass{memsys.ClassCPLX, memsys.ClassCS, memsys.ClassGS, memsys.ClassNL}},
		{"NL>CPLX>CS>GS", []memsys.PrefetchClass{memsys.ClassNL, memsys.ClassCPLX, memsys.ClassCS, memsys.ClassGS}},
	}
	t := &Table{
		ID:      "fig13b",
		Title:   "Geomean speedup per priority order (IPCP L1+L2)",
		Columns: []string{"speedup"},
	}
	for i, o := range orders {
		o := o
		g, err := geomeanVariant(s, names, fmt.Sprintf("prio-%d", i), true, func(c *core.L1Config) {
			c.Priority = o.order
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(o.label, g)
	}
	// Metadata off.
	g, err := geomeanVariant(s, names, "no-metadata", true, func(c *core.L1Config) {
		c.EmitMetadata = false
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("paper order, metadata off", g)
	t.Notes = append(t.Notes,
		"Paper Fig. 13b: the GS-first order wins; disabling metadata costs ~3.1% on memory-intensive traces.")
	return t, nil
}
