package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ipcp/internal/stats"
	"ipcp/internal/workload"
)

// weightedSpeedup computes the paper's multi-core metric for one mix
// and combo: Σ IPC_together(i)/IPC_alone(i), where "alone" runs the
// trace with the same prefetchers on an equivalent machine (the
// N-core LLC capacity and aggregate DRAM bandwidth; the paper runs
// alone on the N-core system).
func weightedSpeedup(s *Session, mix []string, c Combo) (float64, error) {
	n := len(mix)
	specs := []RunSpec{{
		Workloads: mix,
		L1D:       c.L1D, L2: c.L2, LLC: c.LLC, ConfigKey: c.Name,
	}}
	for _, w := range mix {
		specs = append(specs, RunSpec{
			Workloads: []string{w}, Cores: 1,
			L1D: c.L1D, L2: c.L2, LLC: c.LLC, ConfigKey: c.Name + "-alone",
			LLCSetsPerCore: 2048 * n,
			DRAMGBps:       12.8 * 2, // the multi-core system's two channels
		})
	}
	results, errs := s.RunAllPartial(specs)
	if err := firstError(errs...); err != nil {
		// A failed run degrades this mix's metric to NaN (an n/a cell);
		// only cancellation aborts the experiment.
		if fatal(err) {
			return 0, err
		}
		return math.NaN(), nil
	}
	together := results[0].IPC
	alone := make([]float64, n)
	for i := 0; i < n; i++ {
		alone[i] = results[1+i].IPC[0]
	}
	return stats.WeightedSpeedup(together, alone)
}

// normalizedWS returns WS(combo)/WS(no-prefetch) for a mix.
func normalizedWS(s *Session, mix []string, c Combo) (float64, error) {
	ws, err := weightedSpeedup(s, mix, c)
	if err != nil {
		return 0, err
	}
	base, err := weightedSpeedup(s, mix, baseline)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, nil
	}
	return ws / base, nil
}

// normalizedWSAll evaluates normalizedWS for many mixes concurrently
// (each mix's runs already fan out; this overlaps the mixes too).
func normalizedWSAll(s *Session, mixes [][]string, c Combo) ([]float64, error) {
	out := make([]float64, len(mixes))
	errs := make([]error, len(mixes))
	var wg sync.WaitGroup
	for i := range mixes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = normalizedWS(s, mixes[i], c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// multicoreCombos are the prefetchers compared in the paper's
// multi-core study.
func multicoreCombos() []Combo {
	return Combos()
}

// heterogeneousMixes draws deterministic random mixes from the pool.
func heterogeneousMixes(pool []string, cores, count int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	mixes := make([][]string, count)
	for i := range mixes {
		mix := make([]string, cores)
		for j := range mix {
			mix[j] = pool[rng.Intn(len(pool))]
		}
		mixes[i] = mix
	}
	return mixes
}

// --- Fig. 14a: CloudSuite ---------------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "CloudSuite 4-core mixes",
		Paper: "Spatial prefetchers barely help server workloads (≤ ~1.1×); " +
			"SPP+Perc+DSPatch, Bingo and IPCP perform on the same scale.",
		Run: runFig14a,
	})
}

func runFig14a(s *Session) (*Table, error) {
	combos := multicoreCombos()
	t := &Table{
		ID:      "fig14a",
		Title:   "Normalized weighted speedup, 4-core CloudSuite (homogeneous)",
		Columns: comboNames(combos),
	}
	names := workload.Names(workload.Suite("cloud"))
	mixes := make([][]string, len(names))
	for i, w := range names {
		mixes[i] = []string{w, w, w, w}
	}
	perCombo := make([][]float64, len(combos))
	for j, c := range combos {
		vals, err := normalizedWSAll(s, mixes, c)
		if err != nil {
			return nil, err
		}
		perCombo[j] = vals
	}
	for i, w := range names {
		row := make([]float64, len(combos))
		for j := range combos {
			row[j] = perCombo[j][i]
		}
		t.AddRow(w, row...)
	}
	geo := make([]float64, len(combos))
	for j := range combos {
		geo[j] = stats.Geomean(perCombo[j])
	}
	t.AddRow("geomean", geo...)
	t.Notes = append(t.Notes, "Paper Fig. 14a: gains ≤ ~10%; 'classification' defeats every prefetcher.")
	return t, nil
}

// --- Fig. 14b: CNN/RNN --------------------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig14b",
		Title: "CNN/RNN workloads",
		Paper: "Streaming neural-network kernels: IPCP leads (up to ~2.1×) " +
			"because the GS class captures the streams.",
		Run: runFig14b,
	})
}

func runFig14b(s *Session) (*Table, error) {
	combos := multicoreCombos()
	names := workload.Names(workload.Suite("nn"))
	t := &Table{
		ID:      "fig14b",
		Title:   "Speedup on CNN/RNN workloads (single core)",
		Columns: comboNames(combos),
	}
	perCombo := make([][]float64, len(combos))
	for j, c := range combos {
		sp, err := Speedups(s, names, c)
		if err != nil {
			return nil, err
		}
		perCombo[j] = sp
	}
	for i, n := range names {
		row := make([]float64, len(combos))
		for j := range combos {
			row[j] = perCombo[j][i]
		}
		t.AddRow(n, row...)
	}
	geo := make([]float64, len(combos))
	for j := range combos {
		geo[j] = stats.Geomean(perCombo[j])
	}
	t.AddRow("geomean", geo...)
	t.Notes = append(t.Notes, "Paper Fig. 14b: IPCP on top thanks to GS; all prefetchers gain on streaming kernels.")
	return t, nil
}

// --- Fig. 15: multi-core summary -----------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Multi-core summary",
		Paper: "Across homogeneous + heterogeneous SPEC mixes, CloudSuite and " +
			"NN workloads, IPCP averages +23.4% vs Bingo +20.9% and MLOP +20%.",
		Run: runFig15,
	})
}

func runFig15(s *Session) (*Table, error) {
	combos := multicoreCombos()
	t := &Table{
		ID:      "fig15",
		Title:   "Normalized weighted speedup by workload category",
		Columns: comboNames(combos),
	}
	mi := s.memIntensive()

	// The paper's heterogeneous set is half random draws from the
	// ENTIRE suite and half draws from the memory-intensive traces.
	full := s.fullSuite()
	categories := []struct {
		label string
		mixes [][]string
	}{
		{"homogeneous 4-core", homogeneousMixes(mi, 4, s.Scale.Mixes)},
		{"heterogeneous 4-core (full suite)", heterogeneousMixes(full, 4, maxInt(1, s.Scale.Mixes/2), s.Scale.Seed+100)},
		{"heterogeneous 4-core (mem-intensive)", heterogeneousMixes(mi, 4, maxInt(1, s.Scale.Mixes/2), s.Scale.Seed+150)},
		{"heterogeneous 8-core", heterogeneousMixes(full, 8, maxInt(1, s.Scale.Mixes/2), s.Scale.Seed+200)},
		{"cloud 4-core", homogeneousMixes(workload.Names(workload.Suite("cloud")), 4, s.Scale.Mixes)},
		{"nn 4-core", homogeneousMixes(workload.Names(workload.Suite("nn")), 4, s.Scale.Mixes)},
	}

	perCombo := make([][]float64, len(combos))
	for _, cat := range categories {
		row := make([]float64, len(combos))
		for j, c := range combos {
			vals, err := normalizedWSAll(s, cat.mixes, c)
			if err != nil {
				return nil, err
			}
			row[j] = stats.Geomean(vals)
			perCombo[j] = append(perCombo[j], vals...)
		}
		t.AddRow(fmt.Sprintf("%s (%d mixes)", cat.label, len(cat.mixes)), row...)
	}
	overall := make([]float64, len(combos))
	for j := range combos {
		overall[j] = stats.Geomean(perCombo[j])
	}
	t.AddRow("overall geomean", overall...)
	t.Notes = append(t.Notes, "Paper Fig. 15: IPCP leads the summary with Bingo and MLOP close behind.")
	return t, nil
}

// homogeneousMixes replicates each of up to count pool entries across
// the cores of one mix.
func homogeneousMixes(pool []string, cores, count int) [][]string {
	if count > len(pool) {
		count = len(pool)
	}
	mixes := make([][]string, 0, count)
	for i := 0; i < count; i++ {
		mix := make([]string, cores)
		for j := range mix {
			mix[j] = pool[i]
		}
		mixes = append(mixes, mix)
	}
	return mixes
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
