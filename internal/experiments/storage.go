package experiments

import "ipcp/internal/core"

// storageBudget computes Table I from the default configurations.
func storageBudget() core.Storage {
	return core.ComputeStorage(core.DefaultL1Config(), core.DefaultL2Config())
}
