package experiments

import (
	"strings"
	"testing"
)

// tiny is a fast scale for unit tests.
var tiny = Scale{Warmup: 8_000, Measure: 20_000, MaxTraces: 3, Mixes: 2, Seed: 1}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13a", "fig13b", "fig14a", "fig14b", "fig15", "tab1", "tab4",
		"sens-repl", "sens-cache", "sens-dram", "sens-pq", "sens-tables",
		"abl-rr", "abl-throttle", "abl-region", "abl-degree", "abl-sig"}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registered %d experiments, want at least %d", len(All()), len(want))
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestSessionMemoization(t *testing.T) {
	s := NewSession(tiny)
	spec := RunSpec{Workloads: []string{"bwaves-98"}}
	a, err := s.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs not memoized")
	}
	c, err := s.Run(RunSpec{Workloads: []string{"bwaves-98"}, L1D: "ipcp", ConfigKey: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different specs shared a cache entry")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("r1", 1.5, 2.25)
	tab.Notes = append(tab.Notes, "note")
	md := tab.Markdown()
	for _, want := range []string{"### x", "| r1 | 1.500 | 2.250 |", "> note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if _, ok := tab.Find("r1"); !ok {
		t.Error("Find failed")
	}
	if _, ok := tab.Find("nope"); ok {
		t.Error("Find invented a row")
	}
}

func TestTab1Storage(t *testing.T) {
	e, _ := ByID("tab1")
	tab, err := e.Run(NewSession(tiny))
	if err != nil {
		t.Fatal(err)
	}
	total, ok := tab.Find("total")
	if !ok || total.Values[0] != 895 {
		t.Errorf("tab1 total = %v, want 895 bytes", total.Values)
	}
}

func TestFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession(tiny)
	e, _ := ByID("fig8")
	tab, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	geo, ok := tab.Find("geomean (mem-intensive)")
	if !ok {
		t.Fatal("geomean row missing")
	}
	// IPCP is the last column; it must show a speedup at any scale.
	ipcp := geo.Values[len(geo.Values)-1]
	if ipcp <= 1.0 {
		t.Errorf("IPCP geomean speedup = %.3f, want > 1", ipcp)
	}
}

func TestFig12ClassShares(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession(tiny)
	e, _ := ByID("fig12")
	tab, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tab.Find("overall")
	if !ok {
		t.Fatal("overall row missing")
	}
	sum := 0.0
	for _, v := range row.Values {
		if v < 0 || v > 1 {
			t.Errorf("class share out of range: %v", row.Values)
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("class shares sum to %.3f, want 1", sum)
	}
}

func TestFig10CoverageBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSession(tiny)
	e, _ := ByID("fig10")
	tab, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			if v > 1.0 {
				t.Errorf("%s: coverage > 1: %v", r.Label, r.Values)
			}
		}
	}
}

func TestHeterogeneousMixesDeterministic(t *testing.T) {
	pool := []string{"a", "b", "c"}
	m1 := heterogeneousMixes(pool, 4, 3, 42)
	m2 := heterogeneousMixes(pool, 4, 3, 42)
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	if len(m1) != 3 || len(m1[0]) != 4 {
		t.Error("mix shape wrong")
	}
}

func TestHomogeneousMixes(t *testing.T) {
	m := homogeneousMixes([]string{"x", "y"}, 4, 5)
	if len(m) != 2 {
		t.Fatalf("count = %d, want capped at pool size 2", len(m))
	}
	for _, mix := range m {
		for _, w := range mix {
			if w != mix[0] {
				t.Error("homogeneous mix not homogeneous")
			}
		}
	}
}

func TestCapSpreadKeepsDiversity(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	got := capSpread(names, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != "a" || got[3] != "g" {
		t.Errorf("spread = %v; want endpoints near both ends", got)
	}
	if out := capSpread(names, 0); len(out) != len(names) {
		t.Error("cap 0 must be a no-op")
	}
	if out := capSpread(names, 20); len(out) != len(names) {
		t.Error("cap beyond length must be a no-op")
	}
}

func TestMemIntensiveSubsetIncludesIrregular(t *testing.T) {
	s := NewSession(Scale{MaxTraces: 18})
	names := s.memIntensive()
	hasIrregular := false
	for _, n := range names {
		if n == "mcf-994" || n == "omnetpp-17" || n == "omnetpp-874" ||
			n == "mcf-1536" || n == "omnetpp-340" || n == "mcf-484" || n == "mcf-1554" {
			hasIrregular = true
		}
	}
	if !hasIrregular {
		t.Errorf("capped subset lost the irregular traces: %v", names)
	}
}
