package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"ipcp/internal/sim"
)

// sweepScale is tiny: sharing correctness, not speed, is under test.
var sweepScale = Scale{Warmup: 2000, Measure: 5000, Seed: 1}

// sweepGrid is a prefetcher sweep over two workloads: six points per
// workload sharing one warmup identity each.
func sweepGrid() []RunSpec {
	var specs []RunSpec
	for _, w := range []string{"mcf-994", "bwaves-98"} {
		for _, l1d := range []string{"", "ipcp", "spp"} {
			for _, l2 := range []string{"", "ipcp"} {
				specs = append(specs, RunSpec{Workloads: []string{w}, L1D: l1d, L2: l2})
			}
		}
	}
	return specs
}

func marshalResult(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunSweepSharesWarmup is the scheduler invariant: a grid of
// 2 workloads × 6 prefetcher points runs exactly 2 warmups, and every
// measure phase forks.
func TestRunSweepSharesWarmup(t *testing.T) {
	s := NewSession(sweepScale)
	specs := sweepGrid()
	results, errs := s.RunSweep(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d (%s): %v", i, specs[i].Key(), err)
		}
		if results[i] == nil {
			t.Fatalf("spec %d: nil result", i)
		}
	}
	st := s.Stats()
	if st.SnapshotMisses != 2 {
		t.Errorf("SnapshotMisses = %d, want 2 (one warmup per workload)", st.SnapshotMisses)
	}
	if st.ForkedRuns != len(specs) {
		t.Errorf("ForkedRuns = %d, want %d", st.ForkedRuns, len(specs))
	}
	if got := st.SnapshotMemHits + st.WarmupsCoalesced; got < len(specs)-2 {
		t.Errorf("mem hits (%d) + coalesced warmups (%d) = %d, want >= %d",
			st.SnapshotMemHits, st.WarmupsCoalesced, got, len(specs)-2)
	}
}

// TestRunSharedMatchesColdSharedRun is the scheduler-level determinism
// golden: a forked result must be bit-identical to a cold run through
// the same CacheWarmOnly phases.
func TestRunSharedMatchesColdSharedRun(t *testing.T) {
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", L2: "ipcp"}

	s := NewSession(sweepScale)
	forked, err := s.RunShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ForkedRuns != 1 {
		t.Fatalf("ForkedRuns = %d, want 1 (the run did not fork)", st.ForkedRuns)
	}

	sys, err := s.buildShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sys.RunContext(context.Background(), sweepScale.Warmup, sweepScale.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if f, c := marshalResult(t, forked), marshalResult(t, cold); f != c {
		t.Errorf("forked result diverges from cold shared run:\nforked: %s\ncold:   %s", f, c)
	}
}

// TestRunSharedMemoNamespace proves shared-warmup results and classic
// results never collide in the memo cache: the same spec through both
// paths yields two executions with different semantics.
func TestRunSharedMemoNamespace(t *testing.T) {
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}
	s := NewSession(sweepScale)
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunShared(spec); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MemoHits != 0 {
		t.Errorf("MemoHits = %d: shared and classic paths shared a memo entry", st.MemoHits)
	}
	if st.Executed != 2 {
		t.Errorf("Executed = %d, want 2", st.Executed)
	}

	// And a second shared call is a memo hit.
	if _, err := s.RunShared(spec); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemoHits != 1 {
		t.Errorf("MemoHits = %d after repeat shared run, want 1", st.MemoHits)
	}
}

// TestSweepSnapshotSpillResume points a second session at the first
// session's cache directory and sweeps a NEW prefetcher point: the
// result is not checkpointed, but the warmup snapshot spill is, so the
// new point forks from disk without re-warming.
func TestSweepSnapshotSpillResume(t *testing.T) {
	dir := t.TempDir()
	base := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}

	s1 := NewSession(sweepScale)
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	first, err := s1.RunShared(base)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.SnapshotMisses != 1 || st.SnapshotBytes == 0 {
		t.Fatalf("first session: misses=%d bytes=%d, want 1 warmup spilled", st.SnapshotMisses, st.SnapshotBytes)
	}

	s2 := NewSession(sweepScale)
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	// Same spec: a disk checkpoint hit, no simulation at all.
	again, err := s2.RunShared(base)
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(t, again) != marshalResult(t, first) {
		t.Error("disk-checkpointed shared result diverges")
	}
	// New prefetcher point, same warmup identity: forks from the spill.
	novel := base
	novel.L1D = "spp"
	if _, err := s2.RunShared(novel); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1 (the repeated spec)", st.DiskHits)
	}
	if st.SnapshotDiskHits != 1 {
		t.Errorf("SnapshotDiskHits = %d, want 1 (the novel spec's warmup)", st.SnapshotDiskHits)
	}
	if st.SnapshotMisses != 0 {
		t.Errorf("SnapshotMisses = %d, want 0 (no warmup should re-run)", st.SnapshotMisses)
	}
	if st.ForkedRuns != 1 {
		t.Errorf("ForkedRuns = %d, want 1", st.ForkedRuns)
	}
}

// TestSweepCancelledWarmupRetries mirrors the memo-cache rule for
// snapshots: a warmup interrupted by one caller's context must not
// poison the entry for callers whose contexts are live.
func TestSweepCancelledWarmupRetries(t *testing.T) {
	s := NewSession(sweepScale)
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the leader resolves fatally and unpublishes
	if _, err := s.RunSharedContext(ctx, spec); err == nil {
		t.Fatal("cancelled shared run succeeded")
	}
	if _, err := s.RunShared(spec); err != nil {
		t.Fatalf("live retry after cancelled warmup: %v", err)
	}
}
