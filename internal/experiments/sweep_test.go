package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"ipcp/internal/sim"
)

// sweepScale is tiny: sharing correctness, not speed, is under test.
var sweepScale = Scale{Warmup: 2000, Measure: 5000, Seed: 1}

// sweepGrid is a prefetcher sweep over two workloads: six points per
// workload sharing one warmup identity each.
func sweepGrid() []RunSpec {
	var specs []RunSpec
	for _, w := range []string{"mcf-994", "bwaves-98"} {
		for _, l1d := range []string{"", "ipcp", "spp"} {
			for _, l2 := range []string{"", "ipcp"} {
				specs = append(specs, RunSpec{Workloads: []string{w}, L1D: l1d, L2: l2})
			}
		}
	}
	return specs
}

func marshalResult(t *testing.T, res *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunSweepSharesWarmup is the scheduler invariant: a grid of
// 2 workloads × 6 prefetcher points runs exactly 2 warmups, and every
// measure phase forks.
func TestRunSweepSharesWarmup(t *testing.T) {
	s := NewSession(sweepScale)
	specs := sweepGrid()
	results, errs := s.RunSweep(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d (%s): %v", i, specs[i].Key(), err)
		}
		if results[i] == nil {
			t.Fatalf("spec %d: nil result", i)
		}
	}
	st := s.Stats()
	if st.SnapshotMisses != 2 {
		t.Errorf("SnapshotMisses = %d, want 2 (one warmup per workload)", st.SnapshotMisses)
	}
	if st.ForkedRuns != len(specs) {
		t.Errorf("ForkedRuns = %d, want %d", st.ForkedRuns, len(specs))
	}
	if got := st.SnapshotMemHits + st.WarmupsCoalesced; got < len(specs)-2 {
		t.Errorf("mem hits (%d) + coalesced warmups (%d) = %d, want >= %d",
			st.SnapshotMemHits, st.WarmupsCoalesced, got, len(specs)-2)
	}
}

// TestRunSharedMatchesColdSharedRun is the scheduler-level determinism
// golden: a forked result must be bit-identical to a cold run through
// the same CacheWarmOnly phases.
func TestRunSharedMatchesColdSharedRun(t *testing.T) {
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", L2: "ipcp"}

	s := NewSession(sweepScale)
	forked, err := s.RunShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ForkedRuns != 1 {
		t.Fatalf("ForkedRuns = %d, want 1 (the run did not fork)", st.ForkedRuns)
	}

	sys, err := s.buildShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sys.RunContext(context.Background(), sweepScale.Warmup, sweepScale.Measure)
	if err != nil {
		t.Fatal(err)
	}
	if f, c := marshalResult(t, forked), marshalResult(t, cold); f != c {
		t.Errorf("forked result diverges from cold shared run:\nforked: %s\ncold:   %s", f, c)
	}
}

// TestRunSharedMemoNamespace proves shared-warmup results and classic
// results never collide in the memo cache: the same spec through both
// paths yields two executions with different semantics.
func TestRunSharedMemoNamespace(t *testing.T) {
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}
	s := NewSession(sweepScale)
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunShared(spec); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.MemoHits != 0 {
		t.Errorf("MemoHits = %d: shared and classic paths shared a memo entry", st.MemoHits)
	}
	if st.Executed != 2 {
		t.Errorf("Executed = %d, want 2", st.Executed)
	}

	// And a second shared call is a memo hit.
	if _, err := s.RunShared(spec); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemoHits != 1 {
		t.Errorf("MemoHits = %d after repeat shared run, want 1", st.MemoHits)
	}
}

// TestSweepSnapshotSpillResume points a second session at the first
// session's cache directory and sweeps a NEW prefetcher point: the
// result is not checkpointed, but the warmup snapshot spill is, so the
// new point forks from disk without re-warming.
func TestSweepSnapshotSpillResume(t *testing.T) {
	dir := t.TempDir()
	base := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}

	s1 := NewSession(sweepScale)
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	first, err := s1.RunShared(base)
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.SnapshotMisses != 1 || st.SnapshotBytes == 0 {
		t.Fatalf("first session: misses=%d bytes=%d, want 1 warmup spilled", st.SnapshotMisses, st.SnapshotBytes)
	}

	s2 := NewSession(sweepScale)
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	// Same spec: a disk checkpoint hit, no simulation at all.
	again, err := s2.RunShared(base)
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(t, again) != marshalResult(t, first) {
		t.Error("disk-checkpointed shared result diverges")
	}
	// New prefetcher point, same warmup identity: forks from the spill.
	novel := base
	novel.L1D = "spp"
	if _, err := s2.RunShared(novel); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1 (the repeated spec)", st.DiskHits)
	}
	if st.SnapshotDiskHits != 1 {
		t.Errorf("SnapshotDiskHits = %d, want 1 (the novel spec's warmup)", st.SnapshotDiskHits)
	}
	if st.SnapshotMisses != 0 {
		t.Errorf("SnapshotMisses = %d, want 0 (no warmup should re-run)", st.SnapshotMisses)
	}
	if st.ForkedRuns != 1 {
		t.Errorf("ForkedRuns = %d, want 1", st.ForkedRuns)
	}
}

// TestSweepCancelledWarmupRetries mirrors the memo-cache rule for
// snapshots: a warmup interrupted by one caller's context must not
// poison the entry for callers whose contexts are live.
func TestSweepCancelledWarmupRetries(t *testing.T) {
	s := NewSession(sweepScale)
	spec := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the leader resolves fatally and unpublishes
	if _, err := s.RunSharedContext(ctx, spec); err == nil {
		t.Fatal("cancelled shared run succeeded")
	}
	if _, err := s.RunShared(spec); err != nil {
		t.Fatalf("live retry after cancelled warmup: %v", err)
	}
}

// TestRunSweepOrderingUnderColdFallback pins RunSweep's result
// placement: entry i always belongs to specs[i], even when some
// points' snapshot path degrades and their cold fallbacks interleave
// with other points' forked measures. Warmups are injected to fail for
// one of the two workloads, so half the grid cold-runs while the other
// half forks — concurrently — and every result must still land at the
// caller's index with values byte-identical to an undegraded sweep
// (forked and cold runs are bit-identical by construction).
func TestRunSweepOrderingUnderColdFallback(t *testing.T) {
	specs := sweepGrid()

	ref := NewSession(sweepScale)
	want, refErrs := ref.RunSweep(specs)
	for i, err := range refErrs {
		if err != nil {
			t.Fatalf("reference spec %d: %v", i, err)
		}
	}

	s := NewSession(sweepScale)
	injected := errors.New("injected warmup degradation")
	s.testWarmupErr = func(spec RunSpec) error {
		if spec.Workloads[0] == "mcf-994" {
			return injected
		}
		return nil
	}
	results, errs := s.RunSweep(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d (%s): %v", i, specs[i].Key(), err)
		}
		if marshalResult(t, results[i]) != marshalResult(t, want[i]) {
			t.Errorf("spec %d (%s): result landed at the wrong index or diverged",
				i, specs[i].Key())
		}
	}

	// The degradation actually happened: only the bwaves half forked,
	// the mcf half cold-ran, and nothing short-circuited via memo hits.
	st := s.Stats()
	if st.ForkedRuns != len(specs)/2 {
		t.Errorf("ForkedRuns = %d, want %d (only the undegraded workload forks)",
			st.ForkedRuns, len(specs)/2)
	}
	if st.Executed != len(specs) {
		t.Errorf("Executed = %d, want %d", st.Executed, len(specs))
	}
}

// TestSnapshotEvictionRefillsWithoutCache covers the FIFO eviction edge
// with no cache directory: once more than snapMemCap warmup identities
// resolve, the oldest snapshot's in-memory copy is dropped and there is
// no disk spill to reload — a later fork of that identity must re-lead
// the warmup (never serve a nil or torn snapshot) and produce a result
// bit-identical to an eviction-free session.
func TestSnapshotEvictionRefillsWithoutCache(t *testing.T) {
	first := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", Seed: 1}

	s := NewSession(sweepScale)
	if _, err := s.RunShared(first); err != nil {
		t.Fatal(err)
	}
	// Resolve snapMemCap more identities (distinct seeds), evicting the
	// first snapshot from memory.
	for seed := int64(2); seed <= snapMemCap+1; seed++ {
		if _, err := s.RunShared(RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// A NEW prefetcher point on the first identity: its snapshot is
	// evicted and unspilled, so the warmup re-leads.
	novel := first
	novel.L1D = "spp"
	evicted, err := s.RunShared(novel)
	if err != nil {
		t.Fatalf("post-eviction fork: %v", err)
	}
	st := s.Stats()
	if st.SnapshotMisses != snapMemCap+2 {
		t.Errorf("SnapshotMisses = %d, want %d (the evicted identity re-warms)",
			st.SnapshotMisses, snapMemCap+2)
	}

	fresh := NewSession(sweepScale)
	want, err := fresh.RunShared(novel)
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(t, evicted) != marshalResult(t, want) {
		t.Error("post-eviction result diverges from eviction-free session")
	}
}

// TestSnapshotEvictionRacesLeaders stresses evictSnapshotsLocked
// against concurrent leadWarmup calls: a sweep over 3× snapMemCap
// warmup identities (×2 prefetcher points each) continuously evicts
// while leaders resolve and followers fork. Run under -race, this is
// the torn-snapshot detector; functionally, every point must succeed
// and sampled results must match an eviction-free session.
func TestSnapshotEvictionRacesLeaders(t *testing.T) {
	const identities = 3 * snapMemCap
	var specs []RunSpec
	for seed := int64(1); seed <= identities; seed++ {
		for _, l1d := range []string{"ipcp", "spp"} {
			specs = append(specs, RunSpec{Workloads: []string{"mcf-994"}, L1D: l1d, Seed: seed})
		}
	}
	s := NewSession(sweepScale)
	results, errs := s.RunSweep(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d (%s): %v", i, specs[i].Key(), err)
		}
		if results[i] == nil {
			t.Fatalf("spec %d: nil result", i)
		}
	}
	// Spot-check determinism on the first identity (the most evicted).
	fresh := NewSession(sweepScale)
	want, err := fresh.RunShared(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if marshalResult(t, results[0]) != marshalResult(t, want) {
		t.Error("eviction-stressed result diverges from fresh session")
	}
}

// TestSnapshotEvictionServesSpillWithCache is the cheap-path
// counterpart: with a cache directory attached, an evicted identity
// reloads its disk spill instead of re-warming.
func TestSnapshotEvictionServesSpillWithCache(t *testing.T) {
	s := NewSession(sweepScale)
	if err := s.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	first := RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", Seed: 1}
	if _, err := s.RunShared(first); err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed <= snapMemCap+1; seed++ {
		if _, err := s.RunShared(RunSpec{Workloads: []string{"mcf-994"}, L1D: "ipcp", Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	novel := first
	novel.L1D = "spp"
	if _, err := s.RunShared(novel); err != nil {
		t.Fatalf("post-eviction fork: %v", err)
	}
	st := s.Stats()
	if st.SnapshotMisses != snapMemCap+1 {
		t.Errorf("SnapshotMisses = %d, want %d (the evicted identity must reload its spill, not re-warm)",
			st.SnapshotMisses, snapMemCap+1)
	}
	if st.SnapshotDiskHits != 1 {
		t.Errorf("SnapshotDiskHits = %d, want 1", st.SnapshotDiskHits)
	}
}
