package experiments

// Combo is one multi-level prefetching combination (the paper's
// Table III).
type Combo struct {
	Name         string
	L1D, L2, LLC string
	StorageNote  string
}

// Combos returns the paper's Table III combinations:
//
//	SPP+Perceptron+DSPatch  at L2, throttled NL at L1, NL at LLC
//	MLOP                    at L1, NL at L2+LLC
//	Bingo (48KB tuning)     at L1, NL at L2+LLC
//	TSKID                   at L1, SPP at L2
//	IPCP                    at L1+L2
func Combos() []Combo {
	return []Combo{
		{Name: "SPP+Perc+DSPatch", L1D: "throttled-nl", L2: "spp-ppf-dspatch", LLC: "nl-miss",
			StorageNote: "32KB at L2 + 0.6KB at L1"},
		{Name: "MLOP", L1D: "mlop", L2: "nl", LLC: "nl-miss",
			StorageNote: "8KB at L1"},
		{Name: "Bingo", L1D: "bingo", L2: "nl", LLC: "nl-miss",
			StorageNote: "48KB at L1"},
		{Name: "TSKID", L1D: "tskid", L2: "spp", LLC: "",
			StorageNote: "52KB at L1 + 6.4KB at L2"},
		{Name: "IPCP", L1D: "ipcp", L2: "ipcp", LLC: "",
			StorageNote: "740B at L1 + 155B at L2 = 895B"},
	}
}

// baseline is the no-prefetching configuration every figure normalizes
// against.
var baseline = Combo{Name: "no-prefetch"}
