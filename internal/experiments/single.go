package experiments

import (
	"fmt"
	"math"

	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/stats"
)

// Speedups runs the given combo over the workload list and returns the
// per-trace speedups over the shared no-prefetching baseline. A failed
// run (panic, corrupt trace, cycle-limit blowup) degrades that trace's
// entry to NaN — rendered as n/a, recorded in Session.Faults() — while
// the remaining traces stay exact; only cancellation aborts the call.
func Speedups(s *Session, names []string, c Combo) ([]float64, error) {
	specs := make([]RunSpec, 0, 2*len(names))
	for _, n := range names {
		specs = append(specs,
			RunSpec{Workloads: []string{n}},
			RunSpec{Workloads: []string{n}, L1D: c.L1D, L2: c.L2, LLC: c.LLC, ConfigKey: c.Name})
	}
	results, errs := s.RunAllPartial(specs)
	out := make([]float64, len(names))
	for i := range names {
		if err := firstError(errs[2*i], errs[2*i+1]); err != nil {
			if fatal(err) {
				return nil, err
			}
			out[i] = math.NaN()
			continue
		}
		out[i] = stats.Speedup(results[2*i+1].IPC[0], results[2*i].IPC[0])
	}
	return out, nil
}

// firstError returns the first non-nil error.
func firstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Fig. 1: utility of L1-D prefetching ----------------------------------

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Utility of L1-D prefetching (prefetcher placement)",
		Paper: "Prefetching into the L1 gives 6–13% additional speedup over " +
			"L2-only prefetching; learning at L1 but filling to L2 closes the " +
			"gap to 3–7%.",
		Run: runFig1,
	})
}

func runFig1(s *Session) (*Table, error) {
	names := s.memIntensive()
	t := &Table{
		ID:      "fig1",
		Title:   "Geomean speedup by prefetcher placement (memory-intensive set)",
		Columns: []string{"at L2", "learn L1, fill L2", "at L1"},
	}
	for _, pf := range []string{"ipstride", "bingo", "mlop"} {
		pf := pf
		placements := []struct {
			label string
			spec  func(n string) RunSpec
		}{
			{"l2", func(n string) RunSpec {
				return RunSpec{Workloads: []string{n}, L2: pf, ConfigKey: "fig1-l2-" + pf}
			}},
			{"l1fill2", func(n string) RunSpec {
				return RunSpec{Workloads: []string{n},
					L1DNew: func() (prefetch.Prefetcher, error) {
						p, err := prefetch.New(pf, memsys.LevelL1D)
						if err != nil {
							// Propagated through the worker's error
							// channel; never panic in a worker.
							return nil, err
						}
						return prefetch.FillAt{Inner: p, Level: memsys.LevelL2}, nil
					},
					ConfigKey: "fig1-l1fill2-" + pf}
			}},
			{"l1", func(n string) RunSpec {
				return RunSpec{Workloads: []string{n}, L1D: pf, ConfigKey: "fig1-l1-" + pf}
			}},
		}
		row := make([]float64, 0, 3)
		for _, pl := range placements {
			var sp []float64
			specs := make([]RunSpec, 0, 2*len(names))
			for _, n := range names {
				specs = append(specs, RunSpec{Workloads: []string{n}}, pl.spec(n))
			}
			results, err := s.RunAll(specs)
			if err != nil {
				return nil, err
			}
			for i := range names {
				sp = append(sp, stats.Speedup(results[2*i+1].IPC[0], results[2*i].IPC[0]))
			}
			row = append(row, stats.Geomean(sp))
		}
		t.AddRow(pf, row...)
	}
	t.Notes = append(t.Notes, "Paper Fig. 1: L1 placement wins for every prefetcher; expect at-L1 ≥ learn-L1-fill-L2 ≥ at-L2.")
	return t, nil
}

// --- Fig. 7: L1-only prefetchers -------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "L1-only prefetchers on memory-intensive traces",
		Paper: "IPCP outperforms all L1 prefetchers except the 119KB Bingo; " +
			"SPP/VLDP (designed for L2) do poorly at L1.",
		Run: runFig7,
	})
}

func runFig7(s *Session) (*Table, error) {
	names := s.memIntensive()
	pfs := []string{"nl", "ipstride", "stream", "bop", "spp", "mlop", "bingo", "bingo119", "tskid", "ipcp"}
	t := &Table{
		ID:      "fig7",
		Title:   "Per-trace speedup with L1-only prefetching (L2/LLC off)",
		Columns: append([]string{}, pfs...),
	}
	perPf := make([][]float64, len(pfs))
	for j, pf := range pfs {
		sp, err := Speedups(s, names, Combo{Name: "l1only-" + pf, L1D: pf})
		if err != nil {
			return nil, err
		}
		perPf[j] = sp
	}
	for i, n := range names {
		row := make([]float64, len(pfs))
		for j := range pfs {
			row[j] = perPf[j][i]
		}
		t.AddRow(n, row...)
	}
	geo := make([]float64, len(pfs))
	for j := range pfs {
		geo[j] = stats.Geomean(perPf[j])
	}
	t.AddRow("geomean", geo...)
	t.Notes = append(t.Notes, "Paper Fig. 7: IPCP at or near the top; spp below the offset/footprint prefetchers at L1.")
	return t, nil
}

// --- Fig. 8: multi-level combinations ---------------------------------------

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Multi-level prefetching (Table III combinations)",
		Paper: "IPCP: +45.1% on memory-intensive traces (next three ≥ +42.5%); " +
			"+22% on the full suite (next three +18.2–18.8%).",
		Run: runFig8,
	})
}

func runFig8(s *Session) (*Table, error) {
	combos := Combos()
	names := s.memIntensive()
	t := &Table{
		ID:      "fig8",
		Title:   "Per-trace speedup with multi-level prefetching",
		Columns: comboNames(combos),
	}
	perCombo := make([][]float64, len(combos))
	for j, c := range combos {
		sp, err := Speedups(s, names, c)
		if err != nil {
			return nil, err
		}
		perCombo[j] = sp
	}
	for i, n := range names {
		row := make([]float64, len(combos))
		for j := range combos {
			row[j] = perCombo[j][i]
		}
		t.AddRow(n, row...)
	}
	geo := make([]float64, len(combos))
	for j := range combos {
		geo[j] = stats.Geomean(perCombo[j])
	}
	t.AddRow("geomean (mem-intensive)", geo...)

	// Full-suite geomean.
	full := s.fullSuite()
	geoFull := make([]float64, len(combos))
	for j, c := range combos {
		sp, err := Speedups(s, full, c)
		if err != nil {
			return nil, err
		}
		geoFull[j] = stats.Geomean(sp)
	}
	t.AddRow("geomean (full suite)", geoFull...)
	t.Notes = append(t.Notes,
		"Paper Fig. 8: IPCP leads both geomeans, with the competitors close behind on the memory-intensive set.")
	return t, nil
}

func comboNames(cs []Combo) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// --- Fig. 9: demand-MPKI reduction -------------------------------------------

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Demand MPKI with multi-level prefetching",
		Paper: "All combinations slash demand MPKI at every level; IPCP removes " +
			"the most at L2/LLC.",
		Run: runFig9,
	})
}

func runFig9(s *Session) (*Table, error) {
	names := s.memIntensive()
	combos := append([]Combo{baseline}, Combos()...)
	t := &Table{
		ID:      "fig9",
		Title:   "Average demand MPKI at L1D / L2 / LLC per combination",
		Columns: []string{"L1D MPKI", "L2 MPKI", "LLC MPKI"},
	}
	for _, c := range combos {
		var l1, l2, llc float64
		specs := make([]RunSpec, len(names))
		for i, n := range names {
			specs[i] = RunSpec{Workloads: []string{n}, L1D: c.L1D, L2: c.L2, LLC: c.LLC, ConfigKey: c.Name}
		}
		results, err := s.RunAll(specs)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			l1 += r.MPKI("L1D", 0)
			l2 += r.MPKI("L2", 0)
			llc += r.MPKI("LLC", 0)
		}
		n := float64(len(names))
		t.AddRow(c.Name, l1/n, l2/n, llc/n)
	}
	t.Notes = append(t.Notes, "Paper Fig. 9: prefetching reduces MPKI at all levels; baseline row shows the starting point.")
	return t, nil
}

// --- Table IV: coverage and accuracy per combination --------------------------

func init() {
	register(Experiment{
		ID:    "tab4",
		Title: "Prefetch coverage and accuracy (Table IV)",
		Paper: "IPCP: coverage 0.60/0.79/0.83 at L1/L2/LLC, accuracy 0.80 at L1. " +
			"SPP+Perc+DSPatch 0.50/0.75/0.83; MLOP 0.59/...; Bingo accuracy 0.79; TSKID coverage 0.67 at L1.",
		Run: runTab4,
	})
}

func runTab4(s *Session) (*Table, error) {
	names := s.memIntensive()
	t := &Table{
		ID:      "tab4",
		Title:   "Coverage at L1/L2/LLC and L1 accuracy per combination",
		Columns: []string{"cov L1", "cov L2", "cov LLC", "accuracy L1"},
	}
	baseSpecs := make([]RunSpec, len(names))
	for i, n := range names {
		baseSpecs[i] = RunSpec{Workloads: []string{n}}
	}
	baseResults, err := s.RunAll(baseSpecs)
	if err != nil {
		return nil, err
	}
	for _, c := range Combos() {
		specs := make([]RunSpec, len(names))
		for i, n := range names {
			specs[i] = RunSpec{Workloads: []string{n}, L1D: c.L1D, L2: c.L2, LLC: c.LLC, ConfigKey: c.Name}
		}
		results, err := s.RunAll(specs)
		if err != nil {
			return nil, err
		}
		var c1, c2, c3, acc float64
		accSamples := 0
		for i, r := range results {
			c1 += stats.Coverage(baseResults[i].TotalDemandMisses("L1D"), r.TotalDemandMisses("L1D"))
			c2 += stats.Coverage(baseResults[i].TotalDemandMisses("L2"), r.TotalDemandMisses("L2"))
			c3 += stats.Coverage(baseResults[i].TotalDemandMisses("LLC"), r.TotalDemandMisses("LLC"))
			if a := r.L1D[0].Accuracy(); r.L1D[0].PrefetchFills > 0 {
				acc += a
				accSamples++
			}
		}
		n := float64(len(names))
		if accSamples == 0 {
			accSamples = 1
		}
		t.AddRow(c.Name, c1/n, c2/n, c3/n, acc/float64(accSamples))
	}
	t.Notes = append(t.Notes, "Paper Table IV: IPCP leads L2/LLC coverage with the best L1 accuracy (0.80).")
	return t, nil
}

// --- Storage (Table I / Table III storage column) -----------------------------

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "IPCP hardware budget (Table I)",
		Paper: "740 bytes at L1 + 155 bytes at L2 = 895 bytes total.",
		Run:   runTab1,
	})
}

func runTab1(s *Session) (*Table, error) {
	t := &Table{
		ID:      "tab1",
		Title:   "IPCP storage budget in bytes (computed from the hardware widths)",
		Columns: []string{"bytes"},
	}
	st := storageBudget()
	t.AddRow("L1 (tables+counters)", float64(st.L1Bytes()))
	t.AddRow("L2", float64(st.L2Bytes()))
	t.AddRow("total", float64(st.TotalBytes()))
	t.Notes = append(t.Notes, fmt.Sprintf("Exact bit budget: %s", st))
	return t, nil
}
