package experiments

import (
	"fmt"

	"ipcp/internal/core"
	"ipcp/internal/prefetch"
	"ipcp/internal/stats"
)

// Ablations beyond the paper's own studies: the design choices
// DESIGN.md §6 calls out, each swept on the memory-intensive set.

func init() {
	register(Experiment{
		ID:    "sens-tables",
		Title: "Prefetch table size sensitivity (§VI-C)",
		Paper: "Scaling IPCP's tables 2–100× brings only ~0.7% — except for " +
			"large-code outliers like cactusBSSN.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "sens-tables", Title: "IPCP geomean speedup per table scale",
				Columns: []string{"speedup"}}
			for _, scale := range []int{1, 2, 4, 16} {
				scale := scale
				g, err := geomeanVariant(s, s.memIntensive(), fmt.Sprintf("tables-x%d", scale), true,
					func(c *core.L1Config) {
						c.IPTableEntries *= scale
						c.CSPTEntries *= scale
						c.RSTEntries *= scale
					})
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("x%d tables", scale), g)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "abl-rr",
		Title: "Ablation: recent-request filter",
		Paper: "(design choice) The RR filter exists so prefetches never probe " +
			"the bandwidth-starved L1-D; removing it floods the PQ with " +
			"duplicates.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-rr", Title: "IPCP geomean speedup with/without the RR filter",
				Columns: []string{"speedup"}}
			on, err := geomeanVariant(s, s.memIntensive(), "rr-on", true, func(c *core.L1Config) {})
			if err != nil {
				return nil, err
			}
			off, err := geomeanVariant(s, s.memIntensive(), "rr-off", true, func(c *core.L1Config) {
				c.UseRRFilter = false
			})
			if err != nil {
				return nil, err
			}
			t.AddRow("RR filter on (paper)", on)
			t.AddRow("RR filter off", off)
			return t, nil
		},
	})

	register(Experiment{
		ID:    "abl-throttle",
		Title: "Ablation: throttling watermarks",
		Paper: "(design choice) The paper's 0.75/0.40 watermarks; wider or " +
			"narrower bands trade coverage against pollution.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-throttle", Title: "IPCP geomean speedup per watermark pair",
				Columns: []string{"speedup"}}
			for _, wm := range [][2]float64{{0.75, 0.40}, {0.90, 0.60}, {0.50, 0.25}, {1.01, -0.01}} {
				wm := wm
				label := fmt.Sprintf("high=%.2f low=%.2f", wm[0], wm[1])
				if wm[1] < 0 {
					label = "throttling off"
				}
				g, err := geomeanVariant(s, s.memIntensive(), "throttle-"+label, true,
					func(c *core.L1Config) {
						c.ThrottleHigh, c.ThrottleLow = wm[0], wm[1]
					})
				if err != nil {
					return nil, err
				}
				t.AddRow(label, g)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "abl-region",
		Title: "Ablation: GS region size",
		Paper: "(design choice) 2KB regions; the paper notes bigger regions " +
			"train slower for marginal benefit.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-region", Title: "IPCP geomean speedup per GS region size",
				Columns: []string{"speedup"}}
			for _, bits := range []int{10, 11, 12} {
				bits := bits
				g, err := geomeanVariant(s, s.memIntensive(), fmt.Sprintf("region-%d", bits), true,
					func(c *core.L1Config) { c.RegionBits = bits })
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%dB regions", 1<<bits), g)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "abl-degree",
		Title: "Ablation: CPLX prefetch degree",
		Paper: "(§V) Degree 3 is the CPLX sweet spot; 4+ degrades high-MPKI " +
			"irregular traces, which is why the L2 has no CPLX.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-degree", Title: "IPCP geomean speedup per CPLX degree",
				Columns: []string{"speedup"}}
			for _, d := range []int{1, 2, 3, 4, 6} {
				d := d
				g, err := geomeanVariant(s, s.memIntensive(), fmt.Sprintf("cplxdeg-%d", d), true,
					func(c *core.L1Config) { c.DegreeCPLX = d })
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("degree %d", d), g)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "abl-sig",
		Title: "Ablation: CPLX signature width",
		Paper: "(design choice) 7-bit signatures capture the last 7 strides.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-sig", Title: "IPCP geomean speedup per signature width",
				Columns: []string{"speedup"}}
			for _, b := range []int{5, 7, 9} {
				b := b
				g, err := geomeanVariant(s, s.memIntensive(), fmt.Sprintf("sig-%d", b), true,
					func(c *core.L1Config) { c.SignatureBits = b })
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%d-bit signature", b), g)
			}
			return t, nil
		},
	})
}

func init() {
	register(Experiment{
		ID:    "abl-temporal",
		Title: "Extension: IPCP + temporal component (§VII future work)",
		Paper: "(future work) The paper proposes a temporal component for " +
			"covering temporal/irregular accesses on top of the spatial " +
			"bouquet.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "abl-temporal",
				Title:   "Geomean speedup with and without the temporal extension",
				Columns: []string{"speedup"}}
			base, err := geomeanVariant(s, s.memIntensive(), "temporal-off", true,
				func(c *core.L1Config) {})
			if err != nil {
				return nil, err
			}
			t.AddRow("IPCP (paper)", base)
			// The temporal table attaches after construction, so build
			// the variant directly.
			specs := make([]RunSpec, 0)
			names := s.memIntensive()
			for _, n := range names {
				specs = append(specs,
					RunSpec{Workloads: []string{n}},
					RunSpec{Workloads: []string{n}, ConfigKey: "temporal-on", L2: "ipcp",
						L1DNew: func() (prefetch.Prefetcher, error) {
							p := core.NewL1IPCP(core.DefaultL1Config())
							p.EnableTemporal(1024)
							return p, nil
						}})
			}
			results, err := s.RunAll(specs)
			if err != nil {
				return nil, err
			}
			sp := make([]float64, len(names))
			for i := range names {
				sp[i] = results[2*i+1].IPC[0] / results[2*i].IPC[0]
			}
			t.AddRow("IPCP + temporal (1024 entries)", stats.Geomean(sp))
			return t, nil
		},
	})
}
