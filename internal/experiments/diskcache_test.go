package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipcp/internal/chaos"
	"ipcp/internal/faultinject"
	"ipcp/internal/sim"
)

func testCache(t *testing.T) *diskCache {
	t.Helper()
	d, err := newDiskCache(t.TempDir(), slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testResult() *sim.Result {
	return &sim.Result{IPC: []float64{1.25}}
}

func TestFrameRoundTrip(t *testing.T) {
	e := entry{Spec: "spec-a", Result: testResult()}
	data, err := encodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != e.Spec || got.Result == nil || got.Result.IPC[0] != 1.25 {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestLegacyEntryStillLoads(t *testing.T) {
	d := testCache(t)
	// A v1 (pre-frame) file: the payload alone, no header.
	payload, err := json.Marshal(entry{Spec: "legacy", Result: testResult()})
	if err != nil {
		t.Fatal(err)
	}
	p := d.path("aa00")
	os.MkdirAll(filepath.Dir(p), 0o755)
	if err := os.WriteFile(p, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.load("aa00", "legacy"); !ok {
		t.Fatal("legacy entry did not load")
	}
	if n := d.quarantined.Load(); n != 0 {
		t.Fatalf("legacy load quarantined %d files", n)
	}
}

// TestQuarantine is the satellite table test: every damage mode moves
// the file to corrupt/ (counted), the slot reads as a miss, and the
// quarantined file is never re-read — a fresh store takes the slot.
func TestQuarantine(t *testing.T) {
	valid, err := encodeEntry(entry{Spec: "spec-a", Result: testResult()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", []byte(ckptMagic)},
		{"truncated-payload", faultinject.Truncate(valid, len(valid)-7)},
		{"bit-flip-payload", faultinject.FlipBits(valid, len(valid)-3, 0x40)},
		{"bit-flip-header", faultinject.FlipBits(valid, 2, 0x01)},
		{"not-json-payload", []byte("garbage bytes, no magic")},
		{"legacy-corrupt", []byte("{not json")},
		{"wrong-spec", mustEncode(t, entry{Spec: "other", Result: testResult()})},
		{"nil-result", mustEncode(t, entry{Spec: "spec-a"})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := testCache(t)
			key := "ab12"
			p := d.path(key)
			os.MkdirAll(filepath.Dir(p), 0o755)
			if err := os.WriteFile(p, c.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if res, ok := d.load(key, "spec-a"); ok {
				t.Fatalf("damaged entry served: %+v", res)
			}
			if n := d.quarantined.Load(); n != 1 {
				t.Fatalf("quarantined = %d, want 1", n)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("damaged file still at %s (err=%v)", p, err)
			}
			q := filepath.Join(d.quarantineDir(), filepath.Base(p))
			if _, err := os.Stat(q); err != nil {
				t.Fatalf("quarantined file missing from %s: %v", q, err)
			}

			// Never re-read: the slot is a plain miss now, and the
			// counter does not move again.
			if _, ok := d.load(key, "spec-a"); ok {
				t.Fatal("quarantined entry re-served")
			}
			if n := d.quarantined.Load(); n != 1 {
				t.Fatalf("second load re-quarantined (count %d)", n)
			}

			// A fresh store takes the slot cleanly.
			d.store(key, "spec-a", testResult())
			if _, ok := d.load(key, "spec-a"); !ok {
				t.Fatal("rewritten entry did not load")
			}
		})
	}
}

func mustEncode(t *testing.T, e entry) []byte {
	t.Helper()
	data, err := encodeEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStoreFailureCountedAndLogged: a failing store degrades to a
// no-op but increments the counter and logs the path and error.
func TestStoreFailureCountedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	d, err := newDiskCache(t.TempDir(), slog.New(slog.NewTextHandler(&logBuf, nil)))
	if err != nil {
		t.Fatal(err)
	}
	in := chaos.New(1)
	in.Add(chaos.Rule{Point: "checkpoint.save", Kind: chaos.KindErr})
	chaos.Enable(in)
	t.Cleanup(func() { chaos.Enable(nil) })

	d.store("cd34", "spec", testResult())
	if n := d.storeFails.Load(); n != 1 {
		t.Fatalf("storeFails = %d, want 1", n)
	}
	log := logBuf.String()
	if !strings.Contains(log, "checkpoint store failed") ||
		!strings.Contains(log, "cd34.json") ||
		!strings.Contains(log, "input/output error") {
		t.Fatalf("store-failure log lacks path/error:\n%s", log)
	}
	if _, ok := d.load("cd34", "spec"); ok {
		t.Fatal("failed store produced a loadable entry")
	}
}

// TestShortWriteNeverServed: a torn checkpoint write (chaos short
// write on the temp file) must never produce a loadable entry, and the
// poison never lands under the final name.
func TestShortWriteNeverServed(t *testing.T) {
	d := testCache(t)
	in := chaos.New(1)
	in.Add(chaos.Rule{Point: "checkpoint.write", Kind: chaos.KindShort})
	chaos.Enable(in)
	t.Cleanup(func() { chaos.Enable(nil) })

	d.store("ef56", "spec", testResult())
	if n := d.storeFails.Load(); n != 1 {
		t.Fatalf("storeFails = %d, want 1", n)
	}
	if _, err := os.Stat(d.path("ef56")); !os.IsNotExist(err) {
		t.Fatalf("torn write landed under the final name (err=%v)", err)
	}
	chaos.Enable(nil)
	d.store("ef56", "spec", testResult())
	if _, ok := d.load("ef56", "spec"); !ok {
		t.Fatal("healthy rewrite did not load")
	}
}

// TestSessionStatsSurfaceDiskCounters: quarantines and store failures
// flow through SessionStats.
func TestSessionStatsSurfaceDiskCounters(t *testing.T) {
	s := NewSession(tiny)
	s.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err := s.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Workloads: []string{"bwaves-98"}}
	if _, err := s.Run(spec); err != nil {
		t.Fatal(err)
	}
	// Vandalize the entry, then reload through a fresh session.
	entries, _ := filepath.Glob(filepath.Join(s.disk.dir, "*", "*.json"))
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	if err := os.WriteFile(entries[0], []byte("junk, not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(tiny)
	s2.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err := s2.SetCacheDir(s.disk.dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(spec); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Executed != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine + 1 recompute", st)
	}
}

// FuzzCheckpointDecode throws truncations, bit flips and arbitrary
// bytes at the frame decoder: it must never panic, and any input it
// does accept must carry a self-consistent payload. Seeds cover the
// framed format, the legacy format, and systematic damage to both.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := encodeEntry(entry{Spec: "fuzz-spec", Result: testResult()})
	if err != nil {
		f.Fatal(err)
	}
	legacy, _ := json.Marshal(entry{Spec: "fuzz-legacy", Result: testResult()})
	f.Add(valid)
	f.Add(legacy)
	f.Add([]byte(ckptMagic + " 3 00000000\nxyz"))
	f.Add([]byte(ckptMagic))
	f.Add([]byte("{"))
	for cut := 0; cut < len(valid); cut += 7 {
		f.Add(faultinject.Truncate(valid, cut))
	}
	for off := 0; off < len(valid); off += 5 {
		f.Add(faultinject.FlipBits(valid, off, 0x10))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEntry(data)
		if err != nil {
			return
		}
		// Accepted: the payload must re-encode and re-decode to the
		// same spec — i.e. decode only ever yields frames encode could
		// have produced (modulo legacy passthrough).
		re, encErr := encodeEntry(e)
		if encErr != nil {
			t.Fatalf("accepted entry does not re-encode: %v", encErr)
		}
		e2, decErr := decodeEntry(re)
		if decErr != nil || e2.Spec != e.Spec {
			t.Fatalf("re-decode mismatch: %v (spec %q != %q)", decErr, e2.Spec, e.Spec)
		}
	})
}

// FuzzCheckpointDecode's sibling invariant, checked exhaustively for
// single-bit flips: no single-bit corruption of a framed entry is ever
// accepted with altered content. (The CRC detects every payload flip;
// the only accepted header flips are hex-case changes that re-encode
// to the byte-identical canonical frame.)
func TestEveryBitFlipRejected(t *testing.T) {
	valid, err := encodeEntry(entry{Spec: "bits", Result: testResult()})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(valid); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := faultinject.FlipBits(valid, off, 1<<bit)
			e, err := decodeEntry(mut)
			if err != nil {
				continue
			}
			re, err := encodeEntry(e)
			if err != nil || !bytes.Equal(re, valid) {
				t.Fatalf("flip at byte %d bit %d accepted with altered content (%v)", off, bit, err)
			}
		}
	}
}
