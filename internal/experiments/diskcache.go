package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"

	"ipcp/internal/chaos"
	"ipcp/internal/sim"
)

// diskCache is the Session's persistent checkpoint store: one framed
// JSON file per simulation result, content-addressed by the SHA-256 of
// the run's full identity (workload + configuration + scale). An
// interrupted or crashed experiment invocation resumes by pointing a
// new session at the same directory; completed runs load from disk and
// only the missing ones recompute. Simulations are deterministic, so a
// resumed session reproduces byte-identical tables.
//
// The cache is defensive end to end. Every entry is length-framed and
// CRC-checksummed, so a torn, truncated or bit-flipped file is
// *detected* on load — never decoded as garbage — and quarantined into
// a corrupt/ subdirectory for inspection (surfaced by a counter and a
// warning log) while the run silently recomputes. Writes go through a
// temp file that is fsynced before an atomic rename, so a crash
// mid-store can never leave a half-written entry under the final name,
// and a crash right after the rename still finds the full frame on
// disk.
type diskCache struct {
	dir string
	log *slog.Logger

	// remote, when attached, is a shared second-level store (the
	// coordinator's content-addressed blob service): local misses fall
	// through to it, and every local write is pushed to it, so any
	// worker's checkpoint or warmup spill is every worker's disk hit.
	remote RemoteBlobs

	// quarantined counts corrupt entries moved aside on load;
	// storeFails counts checkpoint writes that failed (non-fatally).
	// Surfaced through SessionStats and the daemon's /metrics.
	quarantined atomic.Uint64
	storeFails  atomic.Uint64
	remoteHits  atomic.Uint64
	remotePuts  atomic.Uint64
}

// RemoteBlobs is a shared second-level blob store keyed by the same
// content addresses as the local cache. Payloads are opaque to the
// store; any transport framing and integrity checking is the
// implementation's business (a payload returned from GetBlob must
// already be verified). Both methods are best-effort: GetBlob misses
// with ok=false, PutBlob failures are swallowed (and should be counted
// by the implementation) — a dead remote degrades sharing, never
// correctness.
type RemoteBlobs interface {
	GetBlob(key string) (payload []byte, ok bool)
	PutBlob(key string, payload []byte)
}

// newDiskCache creates (if needed) and validates the cache directory.
func newDiskCache(dir string, log *slog.Logger) (*diskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating cache dir: %w", err)
	}
	if log == nil {
		log = slog.Default()
	}
	return &diskCache{dir: dir, log: log}, nil
}

// diskKey derives the content address for one memoization key under
// this session's scale. Scale fields that alter a run's outcome are
// part of the identity, so one directory safely serves any mix of
// scales.
func (s *Session) diskKey(specKey string) string {
	h := sha256.Sum256(fmt.Appendf(nil, "ipcp-run-v1|%d|%d|%d|%s",
		s.Scale.Warmup, s.Scale.Measure, s.Scale.Seed, specKey))
	return hex.EncodeToString(h[:])
}

// entry is the on-disk payload: the spec key is stored alongside the
// result so a (vanishingly unlikely) hash collision or a stale file
// from an older key scheme is detected instead of silently served.
type entry struct {
	Spec   string      `json:"spec"`
	Result *sim.Result `json:"result"`
}

// The frame wrapping every checkpoint payload: a one-line text header
// carrying the payload length and CRC, then the JSON payload itself.
// Headers are text (not binary) so a checkpoint file stays inspectable
// with cat, and the file keeps its .json name for existing tooling.
//
//	ipcp-ckpt-v2 <payload-bytes> <crc32c-hex>\n{...payload...}
const ckptMagic = "ipcp-ckpt-v2"

// crcTable is Castagnoli, hardware-accelerated on every modern CPU.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeEntry frames one payload for disk.
func encodeEntry(e entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d %08x\n", ckptMagic, len(payload), crc32.Checksum(payload, crcTable))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// decodeEntry verifies a frame and returns its payload. Legacy
// (pre-frame) entries — plain JSON files — still decode, so an
// existing cache directory survives the format upgrade. Every damage
// mode (truncated header, short payload, trailing garbage, CRC
// mismatch, malformed JSON) is an error, never a garbage entry.
func decodeEntry(data []byte) (entry, error) {
	var e entry
	if !bytes.HasPrefix(data, []byte(ckptMagic+" ")) {
		// Legacy v1 entry: no frame, the whole file is the payload.
		if len(data) == 0 || data[0] != '{' {
			return e, fmt.Errorf("checkpoint: bad magic")
		}
		if err := json.Unmarshal(data, &e); err != nil {
			return e, fmt.Errorf("checkpoint: legacy entry: %w", err)
		}
		return e, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return e, fmt.Errorf("checkpoint: truncated header")
	}
	var n int
	var crc uint32
	if _, err := fmt.Sscanf(string(data[:nl]), ckptMagic+" %d %08x", &n, &crc); err != nil {
		return e, fmt.Errorf("checkpoint: malformed header: %w", err)
	}
	payload := data[nl+1:]
	if n < 0 || len(payload) != n {
		return e, fmt.Errorf("checkpoint: payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return e, fmt.Errorf("checkpoint: crc mismatch (%08x != %08x)", got, crc)
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("checkpoint: payload: %w", err)
	}
	return e, nil
}

// path shards entries by the first key byte to keep directories small.
func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".json")
}

// blobPath is where opaque binary blobs (spilled warmup snapshots)
// live, sharded like result entries but with an extension that says
// "not JSON".
func (d *diskCache) blobPath(key string) string {
	return filepath.Join(d.dir, key[:2], key+".blob")
}

// The frame wrapping a binary blob: same one-line text header as
// checkpoint entries, binary payload.
//
//	ipcp-blob-v1 <payload-bytes> <crc32c-hex>\n<...payload...>
const blobMagic = "ipcp-blob-v1"

// loadBlob returns the blob stored under key, or ok=false on any miss.
// Like result entries, damage is quarantined and recomputed, never
// decoded: a torn or bit-flipped snapshot must not fork simulations.
// A local miss falls through to the remote store; a remote hit is
// adopted locally so the next load is a disk read.
func (d *diskCache) loadBlob(key string) ([]byte, bool) {
	p := d.blobPath(key)
	data, err := os.ReadFile(p)
	if err != nil {
		if d.remote == nil {
			return nil, false
		}
		payload, ok := d.remote.GetBlob(key)
		if !ok {
			return nil, false
		}
		d.remoteHits.Add(1)
		d.writeBlobLocal(p, payload)
		return payload, true
	}
	payload, err := decodeBlob(data)
	if err != nil {
		d.quarantine(p, err)
		return nil, false
	}
	return payload, true
}

// DecodeBlobFrame verifies an ipcp-blob-v1 frame and returns its
// payload. Exported for the coordinator's HTTP blob store, which
// speaks the same framing on the wire as the cache does on disk.
func DecodeBlobFrame(data []byte) ([]byte, error) { return decodeBlob(data) }

// EncodeBlobFrame wraps a payload in the ipcp-blob-v1 frame.
func EncodeBlobFrame(payload []byte) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %d %08x\n", blobMagic, len(payload), crc32.Checksum(payload, crcTable))
	buf.Write(payload)
	return buf.Bytes()
}

// decodeBlob verifies a blob frame and returns its payload.
func decodeBlob(data []byte) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(blobMagic+" ")) {
		return nil, fmt.Errorf("blob: bad magic")
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("blob: truncated header")
	}
	var n int
	var crc uint32
	if _, err := fmt.Sscanf(string(data[:nl]), blobMagic+" %d %08x", &n, &crc); err != nil {
		return nil, fmt.Errorf("blob: malformed header: %w", err)
	}
	payload := data[nl+1:]
	if n < 0 || len(payload) != n {
		return nil, fmt.Errorf("blob: payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("blob: crc mismatch (%08x != %08x)", got, crc)
	}
	return payload, nil
}

// storeBlob persists an opaque blob under key with the same
// non-fatal-but-counted failure policy and tmp+fsync+rename durability
// as result entries, then pushes it to the shared remote store (when
// one is attached) so every peer's next load is a hit.
func (d *diskCache) storeBlob(key string, payload []byte) {
	d.writeBlobLocal(d.blobPath(key), payload)
	if d.remote != nil {
		d.remote.PutBlob(key, payload)
		d.remotePuts.Add(1)
	}
}

// writeBlobLocal frames and writes one blob to the local disk only.
func (d *diskCache) writeBlobLocal(p string, payload []byte) {
	if err := d.writeFile(p, EncodeBlobFrame(payload)); err != nil {
		d.storeFails.Add(1)
		d.log.Warn("snapshot blob store failed", "path", p, "err", err)
	}
}

// quarantineDir is where damaged entries are moved, never re-read.
func (d *diskCache) quarantineDir() string { return filepath.Join(d.dir, "corrupt") }

// quarantine moves a damaged entry aside so it is preserved for
// inspection but can never be decoded again; the rewritten entry gets
// a clean slot. Falls back to removal if the move itself fails.
func (d *diskCache) quarantine(p string, reason error) {
	dst := filepath.Join(d.quarantineDir(), filepath.Base(p))
	if err := os.MkdirAll(d.quarantineDir(), 0o755); err == nil {
		err = os.Rename(p, dst)
		if err == nil {
			d.quarantined.Add(1)
			d.log.Warn("checkpoint quarantined", "path", p, "quarantine", dst, "err", reason)
			return
		}
	}
	os.Remove(p)
	d.quarantined.Add(1)
	d.log.Warn("checkpoint quarantined (removed: move failed)", "path", p, "err", reason)
}

// load returns the cached result for key, or ok=false on any miss.
// Damage is quarantined, not trusted: a file that fails the frame
// check moves to corrupt/ and the caller recomputes. Local misses
// (including just-quarantined entries) fall through to the remote
// store; a verified remote hit is adopted into the local cache.
func (d *diskCache) load(key, specKey string) (*sim.Result, bool) {
	p := d.path(key)
	data, err := os.ReadFile(p)
	if err == nil {
		e, err := decodeEntry(data)
		switch {
		case err != nil:
			d.quarantine(p, err)
		case e.Spec != specKey || e.Result == nil:
			d.quarantine(p, fmt.Errorf("checkpoint: entry is for spec %q, not %q", e.Spec, specKey))
		default:
			return e.Result, true
		}
	}
	if d.remote == nil {
		return nil, false
	}
	// The remote payload is the full checkpoint frame, so the same
	// header/CRC/spec-identity checks gate it; a damaged remote entry
	// is ignored (the remote store quarantines on its own side).
	frame, ok := d.remote.GetBlob(key)
	if !ok {
		return nil, false
	}
	e, err := decodeEntry(frame)
	if err != nil || e.Spec != specKey || e.Result == nil {
		d.log.Warn("remote checkpoint rejected", "key", key, "err", err)
		return nil, false
	}
	d.remoteHits.Add(1)
	if err := d.writeFile(p, frame); err != nil {
		d.storeFails.Add(1)
		d.log.Warn("adopting remote checkpoint failed", "path", p, "err", err)
	}
	return e.Result, true
}

// store checkpoints one result. Failures are deliberately non-fatal —
// a read-only or full disk degrades the cache to a no-op rather than
// failing the run that produced the result — but never invisible:
// each failure is counted (SessionStats.StoreFailures, /metrics) and
// logged with the path and error.
//
// Durability discipline: the frame is written to a temp file in the
// final directory, fsynced, closed, and only then renamed over the
// final name. A crash at any point leaves either no entry or the
// complete old/new entry — never a torn one under the final name.
func (d *diskCache) store(key, specKey string, res *sim.Result) {
	p := d.path(key)
	data, err := encodeEntry(entry{Spec: specKey, Result: res})
	if err == nil {
		err = d.writeFile(p, data)
	}
	if err != nil {
		d.storeFails.Add(1)
		d.log.Warn("checkpoint store failed", "path", p, "err", err)
		return
	}
	if d.remote != nil {
		d.remote.PutBlob(key, data)
		d.remotePuts.Add(1)
	}
}

// writeFile is the shared durable-write discipline: chaos injection
// point, temp file in the final directory, write, fsync, close, atomic
// rename, directory fsync.
func (d *diskCache) writeFile(p string, data []byte) error {
	if err := chaos.At("checkpoint.save"); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := chaos.Writer("checkpoint.write", tmp).Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(filepath.Dir(p))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
