package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ipcp/internal/sim"
)

// diskCache is the Session's persistent checkpoint store: one JSON file
// per simulation result, content-addressed by the SHA-256 of the run's
// full identity (workload + configuration + scale). An interrupted or
// crashed experiment invocation resumes by pointing a new session at
// the same directory; completed runs load from disk and only the
// missing ones recompute. Simulations are deterministic, so a resumed
// session reproduces byte-identical tables.
//
// The cache is defensive end to end: a corrupt, truncated or
// mismatched entry is treated as a miss (and removed) rather than an
// error, and writes go through a temp file + rename so a crash
// mid-store can never leave a half-written entry behind.
type diskCache struct {
	dir string
}

// newDiskCache creates (if needed) and validates the cache directory.
func newDiskCache(dir string) (*diskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

// diskKey derives the content address for one memoization key under
// this session's scale. Scale fields that alter a run's outcome are
// part of the identity, so one directory safely serves any mix of
// scales.
func (s *Session) diskKey(specKey string) string {
	h := sha256.Sum256(fmt.Appendf(nil, "ipcp-run-v1|%d|%d|%d|%s",
		s.Scale.Warmup, s.Scale.Measure, s.Scale.Seed, specKey))
	return hex.EncodeToString(h[:])
}

// entry is the on-disk form: the spec key is stored alongside the
// result so a (vanishingly unlikely) hash collision or a stale file
// from an older key scheme is detected instead of silently served.
type entry struct {
	Spec   string      `json:"spec"`
	Result *sim.Result `json:"result"`
}

// path shards entries by the first key byte to keep directories small.
func (d *diskCache) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".json")
}

// load returns the cached result for key, or ok=false on any miss or
// damage (damaged entries are removed so the rewritten entry is clean).
func (d *diskCache) load(key, specKey string) (*sim.Result, bool) {
	p := d.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Spec != specKey || e.Result == nil {
		os.Remove(p)
		return nil, false
	}
	return e.Result, true
}

// store checkpoints one result. Failures are deliberately non-fatal:
// a read-only or full disk degrades the cache to a no-op rather than
// failing the run that produced the result.
func (d *diskCache) store(key, specKey string, res *sim.Result) {
	data, err := json.Marshal(entry{Spec: specKey, Result: res})
	if err != nil {
		return
	}
	p := d.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}
