// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment is registered under the ID used in
// DESIGN.md (fig1, fig7, ..., tab4, sens-dram, ...) and produces a
// Table that cmd/experiments renders as markdown and bench_test.go
// reports as benchmark metrics.
//
// Simulations are deterministic, so a Session memoizes results across
// experiments (the no-prefetching baselines are shared by most
// figures) and fans independent runs out across CPUs.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
	"ipcp/internal/trace"
	"ipcp/internal/workload"

	_ "ipcp/internal/core" // register the "ipcp" prefetcher
)

// Scale sets how much simulation an experiment run buys. The paper
// simulates 50M warmup + 200M measured instructions per trace; the
// synthetic workloads reach steady state much sooner, so the default
// scales are far smaller (see EXPERIMENTS.md).
type Scale struct {
	Warmup  uint64
	Measure uint64
	// MaxTraces caps the workload list per experiment (0 = all).
	MaxTraces int
	// Mixes is the number of heterogeneous multi-core mixes.
	Mixes int
	// Cores for the multi-core experiments' "small" configuration.
	Seed int64
	// Parallel steps multi-core systems with the parallel
	// epoch-barrier engine (one goroutine per core slice, bit-identical
	// results — see DESIGN.md §17). It deliberately does not appear in
	// RunSpec.Key: the engines produce the same bytes, so memoized and
	// checkpointed results are interchangeable across the setting.
	Parallel bool
}

// Quick is the bench-friendly scale.
var Quick = Scale{Warmup: 20_000, Measure: 60_000, MaxTraces: 8, Mixes: 4, Seed: 1}

// Default is the scale used to produce EXPERIMENTS.md.
var Default = Scale{Warmup: 50_000, Measure: 200_000, Mixes: 16, Seed: 1}

// Table is one experiment's result: rows of labelled values.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	// Notes records the paper's reported shape next to ours.
	Notes []string
}

// Row is one table line.
type Row struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Find returns the row with the given label.
func (t *Table) Find(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(append([]string{""}, t.Columns...), " | ") + " |\n")
	b.WriteString(strings.Repeat("|---", len(t.Columns)+1) + "|\n")
	for _, r := range t.Rows {
		cells := make([]string, 0, len(r.Values)+1)
		cells = append(cells, r.Label)
		for _, v := range r.Values {
			if math.IsNaN(v) {
				// A failed run degrades to an n/a cell (see Notes for
				// the fault) instead of poisoning the whole table.
				cells = append(cells, "n/a")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports, for EXPERIMENTS.md.
	Paper string
	Run   func(s *Session) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}

// --- Session: memoized, parallel simulation runner -----------------------

// RunSpec identifies one simulation for memoization.
type RunSpec struct {
	Workloads []string // one per core
	Cores     int      // defaults to len(Workloads)

	// Prefetcher names per level ("" = none). ConfigKey + New allow
	// custom-configured prefetchers; ConfigKey must uniquely describe
	// the configuration for caching. A construction error propagates
	// through the worker's error channel instead of crashing the
	// process.
	L1D, L2, LLC string
	L1DNew       func() (prefetch.Prefetcher, error)
	ConfigKey    string

	// System knobs (zero values = PaperConfig defaults).
	LLCRepl        string
	DRAMGBps       float64
	L1PQ           int
	L1MSHR         int
	L1DWays        int // 8 → 32KB L1D
	L2Sets         int
	LLCSetsPerCore int

	Seed int64
}

// Key is the spec's memoization identity: two specs with equal keys
// describe the same simulation. The serve layer uses it to coalesce
// identical submissions onto one job. Scale.Parallel is intentionally
// not part of the identity — the parallel engine is bit-identical to
// the sequential one, so either engine's result satisfies the key.
func (r RunSpec) Key() string {
	return fmt.Sprintf("%v|%d|%s|%s|%s|%s|%s|%.1f|%d|%d|%d|%d|%d|%d",
		r.Workloads, r.Cores, r.L1D, r.L2, r.LLC, r.ConfigKey,
		r.LLCRepl, r.DRAMGBps, r.L1PQ, r.L1MSHR, r.L1DWays, r.L2Sets,
		r.LLCSetsPerCore, r.Seed)
}

// PanicError wraps a panic recovered in a simulation worker: the
// panicking run becomes an error row instead of killing the whole
// experiment session.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("run panicked: %v", e.Value) }

// RunFault records one degraded (failed but non-fatal) simulation run.
type RunFault struct {
	Spec      string // memoization key of the failed run
	Workloads []string
	Err       error
}

// fatal reports whether err must abort the session (cancellation)
// rather than degrade to an n/a cell (everything else: panics, corrupt
// traces, cycle-limit blowups, bad configs).
func fatal(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// outcome is one memoized run: a result or its (non-fatal) error.
// Errors are memoized too, so a failing spec reports the same fault
// everywhere it appears instead of recomputing the failure.
//
// An outcome enters the cache the moment a caller commits to running
// its spec, before the simulation starts: done is closed once res/err
// are valid, and every later caller of the same spec waits on it
// instead of redundantly executing (single-flight). A fatal (cancelled
// or deadline-exceeded) outcome is removed from the cache before done
// closes, so waiters whose own context is still live retry as the new
// leader rather than inheriting an interruption that wasn't theirs.
type outcome struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// SessionStats counts how the session's Run calls were satisfied.
type SessionStats struct {
	// Executed is how many simulations actually ran.
	Executed int
	// MemoHits were served from the in-memory memo cache.
	MemoHits int
	// DiskHits were loaded from the disk checkpoint cache.
	DiskHits int
	// Coalesced callers found an identical run already in flight and
	// waited for its outcome instead of executing (single-flight).
	Coalesced int
	// Faults is the number of degraded (failed but non-fatal) runs.
	Faults int
	// StoreFailures counts disk-checkpoint writes that failed. Store
	// failures are deliberately non-fatal (the cache degrades to a
	// no-op) but surfaced here so a dying disk is visible.
	StoreFailures int
	// Quarantined counts corrupt checkpoint files detected on load and
	// moved to the cache's corrupt/ subdirectory instead of decoded.
	Quarantined int
	// Abandoned counts concurrency slots reclaimed from cancelled runs
	// that failed to unwind within the abandon grace (simulations
	// wedged beyond cooperative cancellation).
	Abandoned int
	// RemoteBlobHits counts local cache misses satisfied from the
	// shared remote blob store (checkpoints and warmup spills alike);
	// RemoteBlobPuts counts local writes pushed to it.
	RemoteBlobHits int
	RemoteBlobPuts int

	// Shared-warmup (RunShared/RunSweep) dispositions.
	//
	// SnapshotMemHits counts forks served from a resident warmup
	// snapshot; SnapshotDiskHits from a disk spill; SnapshotMisses are
	// warmups that actually simulated. SnapshotBytes is the total
	// spilled to disk. WarmupsCoalesced counts callers that waited on
	// an in-flight warmup instead of running their own. ForkedRuns
	// counts measure phases that ran from a snapshot (the fallback
	// cold path counts under Executed only).
	SnapshotMemHits  int
	SnapshotDiskHits int
	SnapshotMisses   int
	SnapshotBytes    int64
	WarmupsCoalesced int
	ForkedRuns       int
}

// Session memoizes simulation results for one Scale.
type Session struct {
	Scale Scale

	ctx  context.Context
	disk *diskCache
	log  *slog.Logger

	mu           sync.Mutex
	cache        map[string]*outcome
	faults       []RunFault
	executed     int
	memoHits     int
	diskHits     int
	coalesced    int
	abandoned    int
	snapMisses   int
	snapDiskHits int
	snapBytes    int64
	forkedRuns   int
	sem          chan struct{}

	// Shared-warmup snapshot store (see sweep.go): one single-flight
	// entry per warmup identity, with a residency list bounding how
	// many snapshots stay in memory.
	snapMu           sync.Mutex
	snaps            map[string]*snapEntry
	snapResident     []string
	snapMemHits      int
	warmupsCoalesced int

	// testWarmupErr, when set (tests only), injects a non-fatal
	// snapshot failure for matching specs so the shared-warmup
	// cold-fallback path can be exercised deterministically.
	testWarmupErr func(RunSpec) error
}

// NewSession returns a Session running at the given scale.
func NewSession(s Scale) *Session {
	return NewSessionContext(context.Background(), s)
}

// NewSessionContext returns a Session whose runs are cancelled when ctx
// is: in-flight simulations stop within a few thousand cycles, queued
// ones never start, and already-memoized results stay available.
func NewSessionContext(ctx context.Context, s Scale) *Session {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return &Session{
		Scale: s,
		ctx:   ctx,
		log:   slog.Default(),
		cache: make(map[string]*outcome),
		snaps: make(map[string]*snapEntry),
		sem:   make(chan struct{}, n),
	}
}

// SetLogger routes the session's operational warnings (checkpoint
// store failures, quarantined entries) to log; the default is
// slog.Default(). Call before SetCacheDir.
func (s *Session) SetLogger(log *slog.Logger) {
	if log != nil {
		s.log = log
	}
}

// SetCacheDir attaches a persistent result cache rooted at dir
// (created if missing): every memoized result is also checkpointed to
// disk, and later sessions — including a rerun after a crash or SIGINT
// — resume from it instead of recomputing. Results are keyed by
// workload + configuration + scale, so a cache directory can be shared
// across scales safely.
func (s *Session) SetCacheDir(dir string) error {
	d, err := newDiskCache(dir, s.log)
	if err != nil {
		return err
	}
	s.disk = d
	return nil
}

// SetRemoteBlobs attaches a shared second-level blob store (typically
// the coordinator's /v1/blobs service) behind the local disk cache:
// local misses — result checkpoints and warmup-snapshot spills alike —
// fall through to it, and every local write is pushed to it. Requires
// a cache directory (the local tier is where verified remote payloads
// are adopted); call after SetCacheDir.
func (s *Session) SetRemoteBlobs(r RemoteBlobs) error {
	if s.disk == nil {
		return errors.New("experiments: SetRemoteBlobs requires SetCacheDir first")
	}
	s.disk.remote = r
	return nil
}

// Faults returns the degraded runs recorded so far (rendered as n/a
// cells in tables).
func (s *Session) Faults() []RunFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RunFault(nil), s.faults...)
}

// Executed returns how many simulations actually ran (memoization and
// disk-cache hits excluded); tests use it to prove resume works.
func (s *Session) Executed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.executed
}

// Stats returns the session's run-disposition counters; the serve
// layer surfaces them on /metrics.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	st := SessionStats{
		Executed:         s.executed,
		MemoHits:         s.memoHits,
		DiskHits:         s.diskHits,
		Coalesced:        s.coalesced,
		Faults:           len(s.faults),
		Abandoned:        s.abandoned,
		SnapshotMisses:   s.snapMisses,
		SnapshotDiskHits: s.snapDiskHits,
		SnapshotBytes:    s.snapBytes,
		ForkedRuns:       s.forkedRuns,
	}
	s.mu.Unlock()
	s.snapMu.Lock()
	st.SnapshotMemHits = s.snapMemHits
	st.WarmupsCoalesced = s.warmupsCoalesced
	s.snapMu.Unlock()
	if s.disk != nil {
		st.StoreFailures = int(s.disk.storeFails.Load())
		st.Quarantined = int(s.disk.quarantined.Load())
		st.RemoteBlobHits = int(s.disk.remoteHits.Load())
		st.RemoteBlobPuts = int(s.disk.remotePuts.Load())
	}
	return st
}

// Run executes (or recalls) one simulation.
func (s *Session) Run(spec RunSpec) (*sim.Result, error) {
	return s.RunContext(context.Background(), spec)
}

// RunContext executes (or recalls) one simulation. ctx bounds this
// call only — a per-job deadline from the serve layer, say — and is
// honored alongside the session's own context: the run is cancelled
// when either one is. Concurrent calls with the same spec key are
// single-flight: the first caller executes and the rest wait for its
// outcome, so N identical submissions cost one simulation.
//
// A telemetry.SpanTracer in ctx gets one "session.run" span per call
// whose "outcome" attribute records how the run was satisfied —
// memo-hit, coalesced, disk-hit or executed — plus admission and
// checkpoint child spans on the paths that have them.
func (s *Session) RunContext(ctx context.Context, spec RunSpec) (*sim.Result, error) {
	k := spec.Key()
	ctx, span := telemetry.StartSpan(ctx, "session.run")
	defer span.End()
	for {
		s.mu.Lock()
		if o, ok := s.cache[k]; ok {
			select {
			case <-o.done: // resolved: a plain memo hit
				s.memoHits++
				s.mu.Unlock()
				span.SetAttr("outcome", "memo-hit")
				return o.res, o.err
			default: // in flight: coalesce onto the leader
			}
			s.coalesced++
			s.mu.Unlock()
			span.SetAttr("outcome", "coalesced")
			select {
			case <-o.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-s.ctx.Done():
				return nil, s.ctx.Err()
			}
			if o.err != nil && fatal(o.err) {
				// The leader was interrupted and its entry removed; our
				// own context may still be live, so retry as the new
				// leader instead of inheriting the interruption.
				if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
					return nil, err
				}
				continue
			}
			return o.res, o.err
		}
		o := &outcome{done: make(chan struct{})}
		s.cache[k] = o
		s.mu.Unlock()
		return s.lead(ctx, spec, k, s.diskKey(k), o, span, s.execute)
	}
}

// lead resolves an in-flight cache entry as its leader: it loads or
// executes the run, publishes the outcome, and wakes every coalesced
// waiter. Exactly one goroutine leads each in-flight entry. span is the
// caller's session.run span; lead stamps the outcome onto it. dk is the
// disk-cache address for this entry and exec the path that actually
// simulates (classic warmup+measure, or a forked measure phase).
func (s *Session) lead(ctx context.Context, spec RunSpec, k, dk string, o *outcome, span *telemetry.ActiveSpan,
	exec func(context.Context, RunSpec) (*sim.Result, error)) (*sim.Result, error) {
	resolve := func(res *sim.Result, err error) (*sim.Result, error) {
		s.mu.Lock()
		o.res, o.err = res, err
		switch {
		case err != nil && fatal(err):
			// Cancellation is not memoized: a resumed session must
			// re-run the interrupted spec, not replay the interruption.
			delete(s.cache, k)
		case err != nil:
			s.faults = append(s.faults, RunFault{Spec: k, Workloads: spec.Workloads, Err: err})
		}
		s.mu.Unlock()
		close(o.done)
		return res, err
	}

	if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
		return resolve(nil, err)
	}
	if s.disk != nil {
		_, lsp := telemetry.StartSpan(ctx, "checkpoint.load")
		res, ok := s.disk.load(dk, k)
		lsp.SetAttr("hit", strconv.FormatBool(ok))
		lsp.End()
		if ok {
			s.mu.Lock()
			s.diskHits++
			s.mu.Unlock()
			span.SetAttr("outcome", "disk-hit")
			return resolve(res, nil)
		}
	}
	span.SetAttr("outcome", "executed")
	res, err := exec(ctx, spec)
	if err != nil {
		span.SetAttr("error", err.Error())
		return resolve(nil, err)
	}
	if s.disk != nil {
		_, ssp := telemetry.StartSpan(ctx, "checkpoint.save")
		s.disk.store(dk, k, res)
		ssp.End()
	}
	return resolve(res, nil)
}

// RunAll executes the specs concurrently and returns results in order;
// any run's failure fails the whole call (cancellation reported in
// preference to incidental errors). Experiments that can degrade
// per-run use RunAllPartial instead.
func (s *Session) RunAll(specs []RunSpec) ([]*sim.Result, error) {
	results, errs := s.RunAllPartial(specs)
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fatal(err) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}

// RunAllPartial executes the specs concurrently and returns results and
// errors in spec order: entry i holds either a result or that run's
// error, so callers can degrade failed runs to n/a cells while keeping
// the healthy ones.
func (s *Session) RunAllPartial(specs []RunSpec) ([]*sim.Result, []error) {
	results := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Admission control lives in execute, not here: memo and
			// disk hits (and coalesced waits) don't occupy a CPU slot.
			results[i], errs[i] = s.Run(specs[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}

// runContext returns a context cancelled when either the session's
// context or the per-call ctx is done, plus its release function.
func (s *Session) runContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == context.Background() {
		return s.ctx, func() {}
	}
	merged, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.ctx, cancel)
	return merged, func() { stop(); cancel() }
}

func (s *Session) execute(ctx context.Context, spec RunSpec) (res *sim.Result, err error) {
	return runSlot(s, ctx, func(runCtx context.Context) (*sim.Result, error) {
		s.mu.Lock()
		s.executed++
		s.mu.Unlock()
		return s.buildAndRun(runCtx, spec)
	})
}

// runSlot runs body under one concurrency slot. It is the one gate
// every simulation phase passes through — classic runs, shared
// warmups, and forked measure phases alike — so direct Run calls, the
// multicore helpers and the serve layer all honor the cap, not just
// RunAllPartial. The admission span makes NumCPU-saturation waits
// visible in a job's trace next to its queue wait.
//
// The body runs in a child goroutine that never touches the semaphore;
// the slot is released exactly once — when the body finishes, or when
// a cancelled run fails to unwind within the abandon grace (a
// simulation wedged somewhere the cycle loop's cancellation checks
// can't reach, e.g. a blocked trace source). Reclaiming a wedged run's
// slot keeps the session serving on small machines; if the zombie ever
// resumes it transiently overcommits one CPU but can never
// double-release the slot. A panic anywhere in the body — a buggy
// prefetcher constructor, a corrupt trace stream, a simulator bug — is
// converted into the run's error instead of crashing the session.
func runSlot[T any](s *Session, ctx context.Context, body func(context.Context) (T, error)) (T, error) {
	var zero T
	runCtx, release := s.runContext(ctx)
	defer release()

	_, adm := telemetry.StartSpan(runCtx, "session.admission")
	select {
	case s.sem <- struct{}{}:
	case <-runCtx.Done():
		adm.SetAttr("error", runCtx.Err().Error())
		adm.End()
		return zero, runCtx.Err()
	}
	adm.End()

	type runOutcome struct {
		res T
		err error
	}
	done := make(chan runOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- runOutcome{err: &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		res, err := body(runCtx)
		done <- runOutcome{res: res, err: err}
	}()
	select {
	case o := <-done:
		<-s.sem
		return o.res, o.err
	case <-runCtx.Done():
		select {
		case o := <-done:
			<-s.sem
			return o.res, o.err
		case <-time.After(abandonGrace):
			<-s.sem
			s.mu.Lock()
			s.abandoned++
			s.mu.Unlock()
			return zero, fmt.Errorf("simulation abandoned after cancellation: %w", runCtx.Err())
		}
	}
}

// abandonGrace is how long a cancelled simulation gets to unwind
// cooperatively before execute reclaims its concurrency slot.
const abandonGrace = 100 * time.Millisecond

// specSeed resolves a spec's effective seed against the scale default.
func (s *Session) specSeed(spec RunSpec) int64 {
	if spec.Seed != 0 {
		return spec.Seed
	}
	return s.Scale.Seed
}

// specConfig assembles the sim.Config a spec describes (shared by the
// classic path, warmup leaders and forked measure phases — the three
// must agree exactly for forked runs to be bit-identical to cold ones).
func (s *Session) specConfig(spec RunSpec) sim.Config {
	cores := spec.Cores
	if cores == 0 {
		cores = len(spec.Workloads)
	}
	cfg := sim.PaperConfig(cores)
	if spec.LLCRepl != "" {
		cfg.LLC.Repl = spec.LLCRepl
	}
	if spec.DRAMGBps > 0 {
		cfg.DRAM = cfg.DRAM.WithBandwidthGBps(spec.DRAMGBps / float64(cfg.DRAM.Channels))
	}
	if spec.L1PQ > 0 {
		cfg.L1D.PQSize = spec.L1PQ
	}
	if spec.L1MSHR > 0 {
		cfg.L1D.MSHRs = spec.L1MSHR
	}
	if spec.L1DWays > 0 {
		cfg.L1D.Ways = spec.L1DWays
	}
	if spec.L2Sets > 0 {
		cfg.L2.Sets = spec.L2Sets
	}
	if spec.LLCSetsPerCore > 0 {
		cfg.LLC.Sets = spec.LLCSetsPerCore * cores
	}
	if spec.L1DNew != nil {
		cfg.L1DPrefetcher = sim.PrefetcherSpec{New: spec.L1DNew}
	} else {
		cfg.L1DPrefetcher = sim.PrefetcherSpec{Name: spec.L1D}
	}
	cfg.L2Prefetcher = sim.PrefetcherSpec{Name: spec.L2}
	cfg.LLCPrefetcher = sim.PrefetcherSpec{Name: spec.LLC}
	cfg.Seed = s.specSeed(spec)
	cfg.ParallelCores = s.Scale.Parallel
	return cfg
}

// specStreams builds the spec's per-core trace streams.
func (s *Session) specStreams(spec RunSpec) ([]trace.Stream, error) {
	seed := s.specSeed(spec)
	streams := make([]trace.Stream, 0, len(spec.Workloads))
	for _, name := range spec.Workloads {
		w, err := workload.Named(name)
		if err != nil {
			return nil, err
		}
		streams = append(streams, w.New(seed))
	}
	return streams, nil
}

// buildAndRun is the simulation body of execute: config assembly,
// stream construction, system build and the cycle loop.
func (s *Session) buildAndRun(runCtx context.Context, spec RunSpec) (*sim.Result, error) {
	streams, err := s.specStreams(spec)
	if err != nil {
		return nil, err
	}
	sys, err := sim.Build(s.specConfig(spec), streams)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(runCtx, s.Scale.Warmup, s.Scale.Measure)
}

// capSpread caps a sorted name list by taking evenly spaced entries,
// so a capped subset keeps the suite's diversity (alphabetical
// truncation would drop whole benchmarks — e.g. every irregular
// trace).
func capSpread(names []string, cap int) []string {
	if cap <= 0 || len(names) <= cap {
		return names
	}
	out := make([]string, 0, cap)
	for i := 0; i < cap; i++ {
		out = append(out, names[i*len(names)/cap])
	}
	return out
}

// memIntensive returns the (possibly capped) memory-intensive list.
func (s *Session) memIntensive() []string {
	return capSpread(workload.Names(workload.MemoryIntensive()), s.Scale.MaxTraces)
}

// fullSuite returns the whole SPEC-like list (possibly capped,
// preserving the memory-intensive / compute mix).
func (s *Session) fullSuite() []string {
	names := workload.Names(workload.Suite("spec"))
	if s.Scale.MaxTraces > 0 {
		return capSpread(names, s.Scale.MaxTraces*3/2)
	}
	return names
}
