package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// The concurrency suite pins the session's behavior under concurrent
// identical and concurrent distinct traffic — exactly what the serve
// layer generates: duplicate specs must coalesce onto one simulation,
// the NumCPU admission cap must hold on every entry point, and an
// experiment interrupted mid-flight must still appear in its report.

// concGate instruments workload-stream construction, which happens
// inside Session.execute while the admission slot is held: entered
// counts constructions, max the peak concurrency, and release (when
// non-nil) blocks construction so the test can observe the peak.
type concGate struct {
	mu      sync.Mutex
	active  int
	max     int
	entered int
	release chan struct{}
}

func (g *concGate) enter() {
	g.mu.Lock()
	g.active++
	g.entered++
	if g.active > g.max {
		g.max = g.active
	}
	ch := g.release
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	// Decrement before the simulation proper runs: the admission slot is
	// still held, so a later stream construction can only begin after an
	// earlier run fully finished — max never under-counts the cap.
	g.mu.Lock()
	g.active--
	g.mu.Unlock()
}

func (g *concGate) stats() (entered, max int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.entered, g.max
}

// currentGate is swapped per test; the workload below is registered
// once for the whole binary.
var (
	currentGateMu sync.Mutex
	currentGate   *concGate
)

func setGate(t *testing.T, g *concGate) {
	t.Helper()
	currentGateMu.Lock()
	currentGate = g
	currentGateMu.Unlock()
	t.Cleanup(func() {
		currentGateMu.Lock()
		currentGate = nil
		currentGateMu.Unlock()
	})
}

func init() {
	workload.Register(workload.Spec{
		Name: "conc-gate", Suite: "test",
		NewStream: func(seed int64) trace.Stream {
			currentGateMu.Lock()
			g := currentGate
			currentGateMu.Unlock()
			if g != nil {
				g.enter()
			}
			return &trace.SliceStream{
				Instrs: []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x10000}}},
				Loop:   true,
			}
		},
	})
}

func TestConcurrentDuplicateRunsCoalesce(t *testing.T) {
	s := NewSession(tiny)
	const n = 8
	spec := RunSpec{Workloads: []string{"bwaves-98"}, ConfigKey: "coalesce"}

	var wg sync.WaitGroup
	got := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run(spec)
			errs[i] = err
			if res != nil {
				got[i] = res.IPC[0]
			}
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if s.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1: concurrent duplicate specs must coalesce onto one simulation", s.Executed())
	}
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d saw IPC %v, caller 0 saw %v", i, got[i], got[0])
		}
	}
	if st := s.Stats(); st.Coalesced+st.MemoHits != n-1 {
		t.Errorf("Stats = %+v, want the %d non-leading callers coalesced or memo-served", st, n-1)
	}
}

func TestConcurrentDuplicateErrorsCoalesce(t *testing.T) {
	// A failing spec is also single-flight: one execution, every caller
	// reporting the same memoized fault.
	s := NewSession(tiny)
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Run(RunSpec{Workloads: []string{"fi-panic-stream"}, ConfigKey: "conc-fault"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: err = %v, want the shared PanicError", i, err)
		}
	}
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
	if got := s.Faults(); len(got) != 1 {
		t.Errorf("Faults = %+v, want exactly one recorded fault", got)
	}
}

func TestDirectRunHonorsAdmissionCap(t *testing.T) {
	const cap, jobs = 2, 6
	s := NewSession(tiny)
	s.sem = make(chan struct{}, cap) // shrink the NumCPU cap for observability
	g := &concGate{release: make(chan struct{})}
	setGate(t, g)

	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct keys: no coalescing, every call must simulate —
			// and still respect the cap despite bypassing RunAllPartial.
			_, errs[i] = s.Run(RunSpec{
				Workloads: []string{"conc-gate"},
				ConfigKey: fmt.Sprintf("cap-%d", i),
			})
		}(i)
	}

	// Wait until the cap is saturated, then give any over-admitted run a
	// chance to show up before releasing the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if entered, _ := g.stats(); entered >= cap {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission stalled: cap never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if entered, max := g.stats(); entered > cap || max > cap {
		close(g.release)
		wg.Wait()
		t.Fatalf("admission bypass: %d runs entered execution (peak %d) with a cap of %d", entered, max, cap)
	}
	close(g.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	entered, max := g.stats()
	if entered != jobs {
		t.Errorf("entered = %d, want all %d distinct runs executed", entered, jobs)
	}
	if max > cap {
		t.Errorf("peak concurrency %d exceeded the cap %d", max, cap)
	}
	if s.Executed() != jobs {
		t.Errorf("Executed = %d, want %d", s.Executed(), jobs)
	}
}

func TestRunContextDeadlineDoesNotPoisonSession(t *testing.T) {
	// A per-call deadline (the serve layer's per-job timeout) aborts
	// that call fatally — and must NOT be memoized: the next caller with
	// a live context runs the spec for real.
	s := NewSession(tiny)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := RunSpec{Workloads: []string{"bwaves-98"}, ConfigKey: "deadline"}
	if _, err := s.RunContext(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Executed() != 0 {
		t.Fatalf("Executed = %d after a dead per-call context", s.Executed())
	}
	if _, err := s.RunContext(context.Background(), spec); err != nil {
		t.Fatalf("retry with a live context: %v", err)
	}
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
}

func TestRunIDsRecordsInterruptedExperiment(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSessionContext(ctx, tiny)
	n := len(registry)
	register(Experiment{ID: "rob-interrupt", Title: "interrupted mid-flight",
		Run: func(s *Session) (*Table, error) {
			cancel() // the SIGINT arrives while this experiment is running
			_, err := s.Run(RunSpec{Workloads: []string{"bwaves-98"}, ConfigKey: "interrupt"})
			return nil, err
		}})
	t.Cleanup(func() { registry = registry[:n] })

	rep, err := RunIDs(ctx, s, []string{"rob-interrupt"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("report not marked interrupted")
	}
	if len(rep.Results) != 1 || rep.Results[0].ID != "rob-interrupt" || rep.Results[0].Err == nil {
		t.Fatalf("results = %+v, want the interrupted experiment recorded with its error", rep.Results)
	}
	if failed := rep.Failed(); len(failed) != 1 || failed[0].ID != "rob-interrupt" {
		t.Fatalf("Failed() = %+v, want the interrupted experiment", failed)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "rob-interrupt") {
		t.Errorf("interrupted experiment missing from the rendered report:\n%s", md)
	}
	if !strings.Contains(md, "interrupted") {
		t.Errorf("interruption note missing:\n%s", md)
	}
}
