package experiments

import (
	"ipcp/internal/memsys"
	"ipcp/internal/stats"
)

// ipcpPair returns base and IPCP results for every workload name.
func ipcpPair(s *Session, names []string) (base, pf []*resultPair, err error) {
	specs := make([]RunSpec, 0, 2*len(names))
	for _, n := range names {
		specs = append(specs,
			RunSpec{Workloads: []string{n}},
			RunSpec{Workloads: []string{n}, L1D: "ipcp", L2: "ipcp", ConfigKey: "IPCP"})
	}
	results, e := s.RunAll(specs)
	if e != nil {
		return nil, nil, e
	}
	for i := range names {
		base = append(base, &resultPair{name: names[i], res: results[2*i]})
		pf = append(pf, &resultPair{name: names[i], res: results[2*i+1]})
	}
	return base, pf, nil
}

type resultPair struct {
	name string
	res  interface {
		TotalDemandMisses(level string) uint64
	}
}

// --- Fig. 10: demand misses covered by IPCP at each level --------------------

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Demand misses covered by IPCP at L1/L2/LLC",
		Paper: "IPCP covers on average 60% of L1, 79.5% of L2 and 83% of LLC " +
			"demand misses; mcf/omnetpp stay poorly covered.",
		Run: runFig10,
	})
}

func runFig10(s *Session) (*Table, error) {
	names := s.memIntensive()
	base, pf, err := ipcpPair(s, names)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "IPCP coverage of demand misses per trace",
		Columns: []string{"L1D", "L2", "LLC"},
	}
	var a1, a2, a3 float64
	for i := range names {
		c1 := stats.Coverage(base[i].res.TotalDemandMisses("L1D"), pf[i].res.TotalDemandMisses("L1D"))
		c2 := stats.Coverage(base[i].res.TotalDemandMisses("L2"), pf[i].res.TotalDemandMisses("L2"))
		c3 := stats.Coverage(base[i].res.TotalDemandMisses("LLC"), pf[i].res.TotalDemandMisses("LLC"))
		t.AddRow(names[i], c1, c2, c3)
		a1 += c1
		a2 += c2
		a3 += c3
	}
	n := float64(len(names))
	t.AddRow("average", a1/n, a2/n, a3/n)
	t.Notes = append(t.Notes, "Paper Fig. 10: averages 0.60 / 0.795 / 0.83; irregular traces near zero.")
	return t, nil
}

// --- Fig. 11: covered / uncovered / over-predicted at L1 ----------------------

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Covered, uncovered and over-predicted L1 misses with IPCP",
		Paper: "Most traces are majority-covered; over-prediction stays small " +
			"except on irregular traces.",
		Run: runFig11,
	})
}

func runFig11(s *Session) (*Table, error) {
	names := s.memIntensive()
	specs := make([]RunSpec, 0, 2*len(names))
	for _, n := range names {
		specs = append(specs,
			RunSpec{Workloads: []string{n}},
			RunSpec{Workloads: []string{n}, L1D: "ipcp", L2: "ipcp", ConfigKey: "IPCP"})
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Fraction of baseline L1 demand misses: covered / uncovered / over-predicted",
		Columns: []string{"covered", "uncovered", "overpredicted"},
	}
	var ac, au, ao float64
	for i, n := range names {
		baseMiss := results[2*i].TotalDemandMisses("L1D")
		r := results[2*i+1]
		cov := stats.Coverage(baseMiss, r.TotalDemandMisses("L1D"))
		if cov < 0 {
			cov = 0
		}
		over := stats.OverPrediction(r.L1D[0].PrefetchFills, r.L1D[0].PrefetchUseful, baseMiss)
		t.AddRow(n, cov, 1-cov, over)
		ac += cov
		au += 1 - cov
		ao += over
	}
	cnt := float64(len(names))
	t.AddRow("average", ac/cnt, au/cnt, ao/cnt)
	return t, nil
}

// --- Fig. 12: per-class contribution to L1 coverage ----------------------------

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Contribution of each IPCP class to L1 coverage",
		Paper: "On average CS contributes 46.7% and GS 30% of covered misses; " +
			"CPLX and NL pick up complex/irregular traces (mcf).",
		Run: runFig12,
	})
}

func runFig12(s *Session) (*Table, error) {
	names := s.memIntensive()
	specs := make([]RunSpec, len(names))
	for i, n := range names {
		specs[i] = RunSpec{Workloads: []string{n}, L1D: "ipcp", L2: "ipcp", ConfigKey: "IPCP"}
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Share of useful L1 prefetches per class",
		Columns: []string{"CS", "CPLX", "GS", "NL"},
	}
	var tot [memsys.NumClasses]uint64
	for i, n := range names {
		u := results[i].L1D[0].UsefulByClass
		sum := u[memsys.ClassCS] + u[memsys.ClassCPLX] + u[memsys.ClassGS] + u[memsys.ClassNL]
		if sum == 0 {
			t.AddRow(n, 0, 0, 0, 0)
			continue
		}
		t.AddRow(n,
			stats.Ratio(u[memsys.ClassCS], sum),
			stats.Ratio(u[memsys.ClassCPLX], sum),
			stats.Ratio(u[memsys.ClassGS], sum),
			stats.Ratio(u[memsys.ClassNL], sum))
		for c := 0; c < memsys.NumClasses; c++ {
			tot[c] += u[c]
		}
	}
	sum := tot[memsys.ClassCS] + tot[memsys.ClassCPLX] + tot[memsys.ClassGS] + tot[memsys.ClassNL]
	if sum > 0 {
		t.AddRow("overall",
			stats.Ratio(tot[memsys.ClassCS], sum),
			stats.Ratio(tot[memsys.ClassCPLX], sum),
			stats.Ratio(tot[memsys.ClassGS], sum),
			stats.Ratio(tot[memsys.ClassNL], sum))
	}
	t.Notes = append(t.Notes, "Paper Fig. 12: CS and GS dominate; CPLX carries mcf-1536-style traces; NL is a small remainder.")
	return t, nil
}
