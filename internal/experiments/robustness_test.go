package experiments

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipcp/internal/faultinject"
	"ipcp/internal/prefetch"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// The robustness suite proves the harness's survival guarantees: a
// panicking prefetcher, a panicking or dead instruction stream, a
// cancelled context, and a corrupted cache entry each leave the session
// standing — degraded, flushed or resumed, never crashed.

func init() {
	// A stream that panics mid-measure, registered once for the whole
	// test binary (suite "test" keeps it out of the experiment suites).
	workload.Register(workload.Spec{
		Name: "fi-panic-stream", Suite: "test",
		NewStream: func(seed int64) trace.Stream {
			return &faultinject.PanicStream{
				Inner:   &trace.SliceStream{Instrs: []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x10000}}}, Loop: true},
				PanicAt: 5_000,
			}
		},
	})
	workload.Register(workload.Spec{
		Name: "fi-dead-stream", Suite: "test",
		NewStream: func(seed int64) trace.Stream { return faultinject.DeadStream{} },
	})
}

func TestPrefetcherPanicIsGuarded(t *testing.T) {
	s := NewSession(tiny)
	res, err := s.Run(RunSpec{
		Workloads: []string{"bwaves-98"},
		ConfigKey: "fi-guarded-panic",
		L1DNew: func() (prefetch.Prefetcher, error) {
			return &faultinject.PanicPrefetcher{PanicAt: 100}, nil
		},
	})
	// The guard absorbs the panic: the run completes unprefetched and
	// records the trip.
	if err != nil {
		t.Fatalf("guarded panicking prefetcher failed the run: %v", err)
	}
	if len(res.PrefetcherFaults) != 1 {
		t.Fatalf("PrefetcherFaults = %+v, want exactly one trip", res.PrefetcherFaults)
	}
	f := res.PrefetcherFaults[0]
	if f.Level != "L1D" || !strings.Contains(f.Reason, "panic") {
		t.Errorf("fault = %+v", f)
	}
	if res.IPC[0] <= 0 {
		t.Errorf("IPC = %v; the run must still have made progress", res.IPC)
	}
}

func TestRunawayPrefetcherIsGuarded(t *testing.T) {
	s := NewSession(tiny)
	res, err := s.Run(RunSpec{
		Workloads: []string{"bwaves-98"},
		ConfigKey: "fi-runaway",
		L1DNew: func() (prefetch.Prefetcher, error) {
			return &faultinject.RunawayPrefetcher{Flood: 100_000}, nil
		},
	})
	if err != nil {
		t.Fatalf("guarded runaway prefetcher failed the run: %v", err)
	}
	if len(res.PrefetcherFaults) != 1 {
		t.Fatalf("PrefetcherFaults = %+v, want one budget trip", res.PrefetcherFaults)
	}
	if !strings.Contains(res.PrefetcherFaults[0].Reason, "budget") {
		t.Errorf("trip reason = %q, want a budget violation", res.PrefetcherFaults[0].Reason)
	}
}

func TestUnguardedPrefetcherPanicDegrades(t *testing.T) {
	// With the guard off (DisableGuard is only reachable through sim
	// configs, so simulate the equivalent: a panic outside prefetcher
	// hooks) a worker panic must become a PanicError, not a crash. The
	// panicking stream exercises exactly that path.
	s := NewSession(tiny)
	_, err := s.Run(RunSpec{Workloads: []string{"fi-panic-stream"}})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a PanicError", err)
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "stream panic") {
		t.Errorf("PanicError = %q (stack %d bytes)", pe.Error(), len(pe.Stack))
	}
	if got := s.Faults(); len(got) != 1 {
		t.Errorf("Faults = %+v, want the one degraded run", got)
	}
	// The error is memoized: re-running the spec replays the fault
	// without executing again.
	before := s.Executed()
	if _, err2 := s.Run(RunSpec{Workloads: []string{"fi-panic-stream"}}); !errors.As(err2, &pe) {
		t.Errorf("memoized rerun: err = %v", err2)
	}
	if s.Executed() != before {
		t.Error("failed spec re-executed instead of replaying the memoized fault")
	}
	// And a degraded run does not poison healthy ones.
	if _, err := s.Run(RunSpec{Workloads: []string{"bwaves-98"}}); err != nil {
		t.Errorf("healthy run after a fault: %v", err)
	}
}

func TestDeadStreamDegrades(t *testing.T) {
	s := NewSession(tiny)
	_, err := s.Run(RunSpec{Workloads: []string{"fi-dead-stream"}})
	if err == nil {
		t.Fatal("dead stream produced a result")
	}
	if fatal(err) {
		t.Errorf("dead stream error is fatal: %v", err)
	}
}

func TestSpeedupsDegradeToNaN(t *testing.T) {
	s := NewSession(tiny)
	sp, err := Speedups(s, []string{"fi-panic-stream", "bwaves-98"}, Combo{Name: "none"})
	if err != nil {
		t.Fatalf("Speedups aborted on a degradable fault: %v", err)
	}
	if !math.IsNaN(sp[0]) {
		t.Errorf("faulty workload speedup = %v, want NaN", sp[0])
	}
	if math.IsNaN(sp[1]) || sp[1] <= 0 {
		t.Errorf("healthy workload speedup = %v", sp[1])
	}
}

func TestCancellationAbortsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: nothing may execute
	s := NewSessionContext(ctx, tiny)
	_, err := s.Run(RunSpec{Workloads: []string{"bwaves-98"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Executed() != 0 {
		t.Errorf("Executed = %d after pre-cancelled context", s.Executed())
	}
	// Cancellation is NOT memoized: a fresh session can run the spec.
	s2 := NewSession(tiny)
	if _, err := s2.Run(RunSpec{Workloads: []string{"bwaves-98"}}); err != nil {
		t.Errorf("fresh session after cancellation: %v", err)
	}
}

// registerTestExperiments adds two tiny experiments and returns a
// cleanup restoring the registry.
func registerTestExperiments(t *testing.T) (idA, idB string) {
	t.Helper()
	n := len(registry)
	run := func(w string) func(*Session) (*Table, error) {
		return func(s *Session) (*Table, error) {
			res, err := s.Run(RunSpec{Workloads: []string{w}})
			if err != nil {
				return nil, err
			}
			tab := &Table{ID: "rob-" + w, Title: "robustness probe " + w, Columns: []string{"ipc"}}
			tab.AddRow(w, res.IPC[0])
			return tab, nil
		}
	}
	register(Experiment{ID: "rob-a", Title: "probe a", Run: run("bwaves-98")})
	register(Experiment{ID: "rob-b", Title: "probe b", Run: run("lbm-94")})
	t.Cleanup(func() { registry = registry[:n] })
	return "rob-a", "rob-b"
}

func TestRunIDsFlushesCompletedOnCancel(t *testing.T) {
	idA, idB := registerTestExperiments(t)
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSessionContext(ctx, tiny)
	// Cancel as soon as the first experiment finishes: the second must
	// not run, and the first's table must still be in the report.
	rep, err := RunIDs(ctx, s, []string{idA, idB}, func(res ExperimentResult, done bool) {
		if done && res.ID == idA {
			cancel()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Error("report not marked interrupted")
	}
	if len(rep.Results) != 1 || rep.Results[0].ID != idA || rep.Results[0].Err != nil {
		t.Fatalf("results = %+v, want the completed first experiment only", rep.Results)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "robustness probe bwaves-98") {
		t.Errorf("completed table missing from flushed report:\n%s", md)
	}
	if !strings.Contains(md, "interrupted") {
		t.Errorf("interruption note missing:\n%s", md)
	}
}

func TestRunIDsIsolatesExperimentFailure(t *testing.T) {
	idA, _ := registerTestExperiments(t)
	n := len(registry)
	register(Experiment{ID: "rob-boom", Title: "panicking experiment",
		Run: func(*Session) (*Table, error) { panic("experiment bug") }})
	t.Cleanup(func() { registry = registry[:n] })

	s := NewSession(tiny)
	rep, err := RunIDs(context.Background(), s, []string{"rob-boom", idA}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interrupted {
		t.Error("an experiment panic must not read as interruption")
	}
	if len(rep.Failed()) != 1 || rep.Failed()[0].ID != "rob-boom" {
		t.Fatalf("failed = %+v", rep.Failed())
	}
	if len(rep.Results) != 2 || rep.Results[1].Err != nil {
		t.Fatalf("the healthy experiment after the panic did not complete: %+v", rep.Results)
	}
	if !strings.Contains(rep.Markdown(), "failed experiments") {
		t.Error("failure section missing from the report")
	}
}

func TestDiskCacheResumeByteIdentical(t *testing.T) {
	idA, idB := registerTestExperiments(t)
	dir := t.TempDir()

	s1 := NewSession(tiny)
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	rep1, err := RunIDs(context.Background(), s1, []string{idA, idB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Executed() == 0 {
		t.Fatal("first session executed nothing")
	}

	// A second session over the same cache dir resumes: zero executions,
	// byte-identical report.
	s2 := NewSession(tiny)
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	rep2, err := RunIDs(context.Background(), s2, []string{idA, idB}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Executed() != 0 {
		t.Errorf("resumed session executed %d runs, want 0", s2.Executed())
	}
	if rep1.Markdown() != rep2.Markdown() {
		t.Errorf("resumed report differs:\n--- first\n%s\n--- resumed\n%s",
			rep1.Markdown(), rep2.Markdown())
	}
}

func TestCorruptCacheEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	spec := RunSpec{Workloads: []string{"bwaves-98"}}

	s1 := NewSession(tiny)
	if err := s1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	want, err := s1.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Vandalize every cached entry.
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := NewSession(tiny)
	if err := s2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run(spec)
	if err != nil {
		t.Fatalf("corrupt cache entry surfaced as an error: %v", err)
	}
	if s2.Executed() != 1 {
		t.Errorf("Executed = %d, want 1 (silent recompute)", s2.Executed())
	}
	if got.IPC[0] != want.IPC[0] {
		t.Errorf("recomputed IPC %v != original %v", got.IPC, want.IPC)
	}
}

func TestDiskCacheKeyMismatchIsMiss(t *testing.T) {
	// Two specs never share an entry even if a hash collision is forced:
	// load verifies the stored spec key.
	s := NewSession(tiny)
	if err := s.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	k := RunSpec{Workloads: []string{"bwaves-98"}}.Key()
	res, err := s.Run(RunSpec{Workloads: []string{"bwaves-98"}})
	if err != nil {
		t.Fatal(err)
	}
	s.disk.store(s.diskKey(k), "some-other-spec", res)
	if _, ok := s.disk.load(s.diskKey(k), k); ok {
		t.Error("load accepted an entry whose spec key differs")
	}
}
