package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"

	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
)

// --- Shared-warmup sweep scheduling --------------------------------------
//
// A parameter sweep re-simulates the same (trace, scale, seed) warmup
// once per grid point, although only the measure phase differs. The
// shared-warmup path eliminates that: grid points are grouped by
// warmup identity — the spec minus its prefetcher fields — each
// distinct warmup runs exactly once under single-flight, its
// post-warmup architectural state is snapshotted, and every sweep
// point sharing the prefix forks from the snapshot and runs only its
// measure phase. Forked runs are bit-identical to cold runs of the
// same configuration through the CacheWarmOnly phase decomposition
// (internal/sim, held to that by the fork determinism goldens and
// `audit -fork`).
//
// Results from this path are memoized and checkpointed under their own
// namespace ("sw|" keys, a distinct disk-key version): the
// cache-warm-only methodology is a deliberately different experiment
// semantics than the classic train-the-prefetcher-during-warmup path,
// and the two must never cross-pollinate a cache.

// snapMemCap bounds how many warmup snapshots stay resident: beyond
// it, the oldest in-memory copy is dropped (re-loadable from its disk
// spill when a cache directory is attached; re-warmed otherwise). A
// multi-core snapshot is a few MB, so the cap bounds sweep memory at a
// few tens of MB.
const snapMemCap = 16

// snapEntry is one warmup identity's single-flight slot.
type snapEntry struct {
	done chan struct{}
	snap *sim.Snapshot // may be nil after eviction (spilled to disk)
	err  error
}

// WarmupKey is a spec's warmup identity under scale: every field that
// shapes post-warmup architectural state under CacheWarmOnly
// (workloads, core count, system knobs, seed, warmup length) and none
// of the prefetcher fields, which attach only at the measure boundary.
// Two specs with equal warmup keys share one warmup. The coordinator
// uses it to shard sweep grids so each warmup-identity group lands on
// exactly one worker (where its snapshot is forked locally).
func WarmupKey(scale Scale, spec RunSpec) string {
	cores := spec.Cores
	if cores == 0 {
		cores = len(spec.Workloads)
	}
	seed := spec.Seed
	if seed == 0 {
		seed = scale.Seed
	}
	return fmt.Sprintf("%v|%d|%s|%.1f|%d|%d|%d|%d|%d|%d|%d",
		spec.Workloads, cores, spec.LLCRepl, spec.DRAMGBps,
		spec.L1PQ, spec.L1MSHR, spec.L1DWays, spec.L2Sets,
		spec.LLCSetsPerCore, seed, scale.Warmup)
}

// warmupKey is WarmupKey under the session's own scale.
func (s *Session) warmupKey(spec RunSpec) string {
	return WarmupKey(s.Scale, spec)
}

// snapDiskKey is the content address of a warmup snapshot's disk spill.
func (s *Session) snapDiskKey(wkey string) string {
	h := sha256.Sum256(fmt.Appendf(nil, "ipcp-snap-v1|%s", wkey))
	return hex.EncodeToString(h[:])
}

// diskKeyShared addresses shared-warmup results. A separate version
// string from diskKey keeps the two methodologies' checkpoints apart
// even though they share a cache directory.
func (s *Session) diskKeyShared(specKey string) string {
	h := sha256.Sum256(fmt.Appendf(nil, "ipcp-run-sw-v1|%d|%d|%d|%s",
		s.Scale.Warmup, s.Scale.Measure, s.Scale.Seed, specKey))
	return hex.EncodeToString(h[:])
}

// RunShared executes (or recalls) one simulation with the shared-warmup
// methodology.
func (s *Session) RunShared(spec RunSpec) (*sim.Result, error) {
	return s.RunSharedContext(context.Background(), spec)
}

// RunSharedContext is RunContext's shared-warmup counterpart: the run's
// warmup phase is satisfied from the session's snapshot store (warming
// it on first use, under single-flight per warmup identity) and only
// the measure phase simulates per call. Memoization, coalescing, disk
// checkpointing, admission control and cancellation behave exactly as
// in RunContext, under a separate "sw|" key namespace.
//
// If the snapshot path fails non-fatally — a drain that cannot reach
// quiescence, say — the run falls back to a cold run through the same
// CacheWarmOnly phases, so the result semantics are unchanged; only
// the warmup sharing is lost.
func (s *Session) RunSharedContext(ctx context.Context, spec RunSpec) (*sim.Result, error) {
	k := "sw|" + spec.Key()
	ctx, span := telemetry.StartSpan(ctx, "session.run")
	defer span.End()
	span.SetAttr("warmup_shared", "true")
	for {
		s.mu.Lock()
		if o, ok := s.cache[k]; ok {
			select {
			case <-o.done:
				s.memoHits++
				s.mu.Unlock()
				span.SetAttr("outcome", "memo-hit")
				return o.res, o.err
			default:
			}
			s.coalesced++
			s.mu.Unlock()
			span.SetAttr("outcome", "coalesced")
			select {
			case <-o.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-s.ctx.Done():
				return nil, s.ctx.Err()
			}
			if o.err != nil && fatal(o.err) {
				if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
					return nil, err
				}
				continue
			}
			return o.res, o.err
		}
		o := &outcome{done: make(chan struct{})}
		s.cache[k] = o
		s.mu.Unlock()
		return s.lead(ctx, spec, k, s.diskKeyShared(k), o, span, s.executeShared)
	}
}

// RunSweep executes a sweep grid with shared warmups, returning results
// and errors in spec order (entry i holds one or the other). Specs
// sharing a warmup identity — typically a prefetcher sweep over one
// workload — run one warmup between them and fork the rest; distinct
// identities warm concurrently under the session's admission cap.
func (s *Session) RunSweep(specs []RunSpec) ([]*sim.Result, []error) {
	results := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.RunShared(specs[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}

// executeShared is the shared-warmup execution body behind lead: fork
// from the warmup snapshot when one can be had, cold-run through the
// same phases when not.
func (s *Session) executeShared(ctx context.Context, spec RunSpec) (*sim.Result, error) {
	snap, err := s.snapshotFor(ctx, spec)
	if err != nil {
		if fatal(err) {
			return nil, err
		}
		// Snapshot path degraded (e.g. the workload never drains to
		// quiescence): cold-run this point through the identical
		// CacheWarmOnly phases so its result semantics are unchanged.
		s.log.Warn("shared warmup unavailable; falling back to cold run",
			"spec", spec.Key(), "err", err)
		return runSlot(s, ctx, func(runCtx context.Context) (*sim.Result, error) {
			s.mu.Lock()
			s.executed++
			s.mu.Unlock()
			sys, err := s.buildShared(spec)
			if err != nil {
				return nil, err
			}
			return sys.RunContext(runCtx, s.Scale.Warmup, s.Scale.Measure)
		})
	}
	return runSlot(s, ctx, func(runCtx context.Context) (*sim.Result, error) {
		s.mu.Lock()
		s.executed++
		s.forkedRuns++
		s.mu.Unlock()
		sys, err := s.buildShared(spec)
		if err != nil {
			return nil, err
		}
		if err := sys.RestoreSnapshot(snap); err != nil {
			return nil, err
		}
		if err := sys.AttachPrefetchers(); err != nil {
			return nil, err
		}
		return sys.RunMeasure(runCtx, s.Scale.Measure)
	})
}

// buildShared builds the spec's system in CacheWarmOnly mode.
func (s *Session) buildShared(spec RunSpec) (*sim.System, error) {
	streams, err := s.specStreams(spec)
	if err != nil {
		return nil, err
	}
	cfg := s.specConfig(spec)
	cfg.CacheWarmOnly = true
	return sim.Build(cfg, streams)
}

// snapshotFor returns the warmup snapshot for spec's warmup identity,
// running the warmup (exactly once per identity, under single-flight)
// or recalling it from memory or the disk spill. The returned snapshot
// is shared and immutable; RestoreSnapshot deep-copies out of it.
func (s *Session) snapshotFor(ctx context.Context, spec RunSpec) (*sim.Snapshot, error) {
	if s.testWarmupErr != nil {
		if err := s.testWarmupErr(spec); err != nil {
			return nil, err
		}
	}
	wkey := s.warmupKey(spec)
	for {
		s.snapMu.Lock()
		if e, ok := s.snaps[wkey]; ok {
			select {
			case <-e.done: // resolved
			default: // warmup in flight: coalesce
				s.warmupsCoalesced++
				s.snapMu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-s.ctx.Done():
					return nil, s.ctx.Err()
				}
				if e.err != nil && fatal(e.err) {
					// The leader was interrupted and its entry removed;
					// retry as the new leader if we are still live.
					if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
						return nil, err
					}
					continue
				}
				if e.err != nil {
					return nil, e.err
				}
				s.snapMu.Lock()
			}
			if e.err != nil {
				s.snapMu.Unlock()
				return nil, e.err
			}
			if e.snap != nil {
				// Copy the pointer out under the lock: a concurrent
				// eviction may null e.snap the moment snapMu releases,
				// and the caller must get the still-valid snapshot,
				// never a nil read racing the eviction.
				snap := e.snap
				s.snapMemHits++
				s.snapMu.Unlock()
				return snap, nil
			}
			// Evicted from memory: re-load the disk spill.
			s.snapMu.Unlock()
			if snap, ok := s.loadSnapshotSpill(ctx, wkey); ok {
				return snap, nil
			}
			// The spill is gone (cache wiped, quarantined, or no cache
			// directory): forget the entry and re-lead the warmup.
			s.snapMu.Lock()
			if cur, ok := s.snaps[wkey]; ok && cur == e {
				delete(s.snaps, wkey)
			}
			s.snapMu.Unlock()
			continue
		}
		e := &snapEntry{done: make(chan struct{})}
		s.snaps[wkey] = e
		s.snapMu.Unlock()
		return s.leadWarmup(ctx, spec, wkey, e)
	}
}

// leadWarmup resolves a snapshot entry as its leader: disk spill if
// present, else run the warmup under a concurrency slot, snapshot, and
// spill. Fatal outcomes are removed before publishing so later callers
// retry rather than inherit an interruption.
func (s *Session) leadWarmup(ctx context.Context, spec RunSpec, wkey string, e *snapEntry) (*sim.Snapshot, error) {
	resolve := func(snap *sim.Snapshot, err error) (*sim.Snapshot, error) {
		s.snapMu.Lock()
		e.snap, e.err = snap, err
		if err != nil && fatal(err) {
			delete(s.snaps, wkey)
		}
		if snap != nil {
			s.evictSnapshotsLocked(wkey)
		}
		s.snapMu.Unlock()
		close(e.done)
		return snap, err
	}

	if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
		return resolve(nil, err)
	}
	if snap, ok := s.loadSnapshotSpill(ctx, wkey); ok {
		return resolve(snap, nil)
	}

	snap, err := runSlot(s, ctx, func(runCtx context.Context) (*sim.Snapshot, error) {
		runCtx, wsp := telemetry.StartSpan(runCtx, "session.warmup")
		defer wsp.End()
		s.mu.Lock()
		s.snapMisses++
		s.mu.Unlock()
		sys, err := s.buildShared(spec)
		if err != nil {
			return nil, err
		}
		if err := sys.RunWarmup(runCtx, s.Scale.Warmup); err != nil {
			return nil, err
		}
		return sys.Snapshot()
	})
	if err != nil {
		return resolve(nil, err)
	}
	if s.disk != nil {
		if data, err := sim.EncodeSnapshot(snap); err == nil {
			s.disk.storeBlob(s.snapDiskKey(wkey), data)
			s.mu.Lock()
			s.snapBytes += int64(len(data))
			s.mu.Unlock()
		} else {
			s.log.Warn("snapshot encode failed; not spilled", "warmup", wkey, "err", err)
		}
	}
	return resolve(snap, nil)
}

// loadSnapshotSpill loads and decodes a spilled snapshot. A blob that
// fails its frame check was already quarantined by loadBlob; one that
// fails gob decoding is dropped here the same way (never trusted).
func (s *Session) loadSnapshotSpill(ctx context.Context, wkey string) (*sim.Snapshot, bool) {
	if s.disk == nil {
		return nil, false
	}
	_, lsp := telemetry.StartSpan(ctx, "snapshot.load")
	defer lsp.End()
	data, ok := s.disk.loadBlob(s.snapDiskKey(wkey))
	lsp.SetAttr("hit", strconv.FormatBool(ok))
	if !ok {
		return nil, false
	}
	snap, err := sim.DecodeSnapshot(data)
	if err != nil {
		s.disk.quarantine(s.disk.blobPath(s.snapDiskKey(wkey)), err)
		lsp.SetAttr("error", err.Error())
		return nil, false
	}
	s.mu.Lock()
	s.snapDiskHits++
	s.mu.Unlock()
	return snap, true
}

// evictSnapshotsLocked appends wkey to the residency list and drops the
// oldest in-memory snapshots beyond the cap (their entries stay — the
// warmup is done — only the resident copy goes; a later fork reloads
// the spill or, with no cache directory, re-warms). Callers hold
// snapMu.
func (s *Session) evictSnapshotsLocked(wkey string) {
	s.snapResident = append(s.snapResident, wkey)
	for len(s.snapResident) > snapMemCap {
		oldest := s.snapResident[0]
		s.snapResident = s.snapResident[1:]
		if e, ok := s.snaps[oldest]; ok {
			select {
			case <-e.done:
				e.snap = nil
			default:
				// Still in flight (shouldn't happen — residency is
				// recorded at resolve — but never evict an unresolved
				// entry).
				s.snapResident = append(s.snapResident, oldest)
				return
			}
		}
	}
}
