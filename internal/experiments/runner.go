package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// ExperimentResult is one experiment's outcome within a Report: the
// rendered table on success, or the error that felled it. A failed
// experiment never takes the session down with it.
type ExperimentResult struct {
	ID      string
	Title   string
	Table   *Table
	Err     error
	Elapsed time.Duration
}

// Report is the outcome of running a list of experiments: everything
// that completed (in request order), everything that failed, and
// whether the run was cut short by cancellation. On interruption the
// completed tables are all still present — the report is exactly what
// a SIGINT'd CLI flushes.
type Report struct {
	Results     []ExperimentResult
	Interrupted bool
}

// Failed returns the results whose experiment errored.
func (r *Report) Failed() []ExperimentResult {
	var out []ExperimentResult
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// Markdown renders every completed table, the failure list, and an
// interruption note, in a stable order — two runs over the same session
// state produce byte-identical output.
func (r *Report) Markdown() string {
	var b strings.Builder
	for _, res := range r.Results {
		if res.Err != nil {
			continue
		}
		b.WriteString(res.Table.Markdown())
		b.WriteString("\n")
	}
	if failed := r.Failed(); len(failed) > 0 {
		b.WriteString("### failed experiments\n\n")
		for _, res := range failed {
			fmt.Fprintf(&b, "- %s: %v\n", res.ID, res.Err)
		}
		b.WriteString("\n")
	}
	if r.Interrupted {
		b.WriteString("> run interrupted: the tables above are the completed subset; " +
			"rerun with the same -cache-dir to resume.\n")
	}
	return b.String()
}

// RunIDs runs the named experiments against the session, isolating each
// one: a panic or error inside an experiment becomes that experiment's
// error entry and the rest continue. Cancellation (of ctx or of the
// session's own context) stops the loop and returns the completed
// prefix with Interrupted set. progress, when non-nil, is called before
// and after each experiment (table nil on the "before" call and on
// failures).
func RunIDs(ctx context.Context, s *Session, ids []string, progress func(res ExperimentResult, done bool)) (*Report, error) {
	rep := &Report{}
	for _, id := range ids {
		e, err := ByID(strings.TrimSpace(id))
		if err != nil {
			return rep, err
		}
		if err := firstError(ctx.Err(), s.ctx.Err()); err != nil {
			rep.Interrupted = true
			return rep, nil
		}
		res := ExperimentResult{ID: e.ID, Title: e.Title}
		if progress != nil {
			progress(res, false)
		}
		start := time.Now()
		before := len(s.Faults())
		res.Table, res.Err = runExperiment(s, e)
		res.Elapsed = time.Since(start)
		if res.Err != nil && fatal(res.Err) {
			rep.Interrupted = true
			// The interrupted experiment is part of the record: it must
			// show up in Failed() and the rendered report, not silently
			// vanish as if it was never started.
			rep.Results = append(rep.Results, res)
			if progress != nil {
				progress(res, true)
			}
			return rep, nil
		}
		if res.Table != nil {
			// Degraded runs surface next to the n/a cells they caused.
			for _, f := range s.Faults()[before:] {
				res.Table.Notes = append(res.Table.Notes,
					fmt.Sprintf("n/a: run %v failed: %v", f.Workloads, f.Err))
			}
		}
		rep.Results = append(rep.Results, res)
		if progress != nil {
			progress(res, true)
		}
	}
	return rep, nil
}

// runExperiment invokes one experiment with panic isolation: a panic in
// the experiment body (as opposed to in a simulation worker, which
// Session.Run already contains) degrades to an error.
func runExperiment(s *Session, e Experiment) (t *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("experiment %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(s)
}
