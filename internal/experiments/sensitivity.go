package experiments

import (
	"fmt"

	"ipcp/internal/stats"
)

// sensGeomean runs IPCP (and the baseline) with the spec mutations
// applied to both, returning the geomean speedup.
func sensGeomean(s *Session, names []string, key string, mutate func(*RunSpec)) (float64, error) {
	specs := make([]RunSpec, 0, 2*len(names))
	for _, n := range names {
		base := RunSpec{Workloads: []string{n}, ConfigKey: key + "-base"}
		pf := RunSpec{Workloads: []string{n}, L1D: "ipcp", L2: "ipcp", ConfigKey: key}
		mutate(&base)
		mutate(&pf)
		specs = append(specs, base, pf)
	}
	results, err := s.RunAll(specs)
	if err != nil {
		return 0, err
	}
	sp := make([]float64, len(names))
	for i := range names {
		sp[i] = stats.Speedup(results[2*i+1].IPC[0], results[2*i].IPC[0])
	}
	return stats.Geomean(sp), nil
}

func init() {
	register(Experiment{
		ID:    "sens-repl",
		Title: "LLC replacement policy sensitivity (§VI-C)",
		Paper: "IPCP is resilient to the LLC policy (differences < 1%).",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "sens-repl", Title: "IPCP geomean speedup per LLC replacement policy (512KB/core LLC)",
				Columns: []string{"speedup"}}
			for _, pol := range []string{"lru", "srrip", "drrip", "ship", "hawkeye", "mpppb"} {
				pol := pol
				// A small LLC so replacement is actually exercised at
				// sub-million-instruction scales (the paper's 2MB LLC
				// does not fill within a short run).
				g, err := sensGeomean(s, s.memIntensive(), "repl-"+pol, func(r *RunSpec) {
					r.LLCRepl = pol
					r.LLCSetsPerCore = 512
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(pol, g)
			}
			t.Notes = append(t.Notes, "Paper §VI-C: < 1% spread across policies; MPPPB costs every prefetcher a few percent.")
			return t, nil
		},
	})

	register(Experiment{
		ID:    "sens-cache",
		Title: "Cache size sensitivity (§VI-C)",
		Paper: "IPCP is resilient across L1/L2/LLC sizes (≤ ~1% difference; " +
			"~3% absolute drop with an extremely small LLC, for every prefetcher).",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "sens-cache", Title: "IPCP geomean speedup per cache configuration",
				Columns: []string{"speedup"}}
			configs := []struct {
				label string
				mut   func(*RunSpec)
			}{
				{"L1D 48KB, L2 512KB, LLC 2MB (paper)", func(r *RunSpec) {}},
				{"L1D 32KB", func(r *RunSpec) { r.L1DWays = 8 }},
				{"L2 256KB", func(r *RunSpec) { r.L2Sets = 512 }},
				{"L2 1MB", func(r *RunSpec) { r.L2Sets = 2048 }},
				{"LLC 1MB/core", func(r *RunSpec) { r.LLCSetsPerCore = 1024 }},
				{"LLC 4MB/core", func(r *RunSpec) { r.LLCSetsPerCore = 4096 }},
				{"LLC 512KB/core (tiny)", func(r *RunSpec) { r.LLCSetsPerCore = 512 }},
			}
			for i, c := range configs {
				g, err := sensGeomean(s, s.memIntensive(), fmt.Sprintf("cache-%d", i), c.mut)
				if err != nil {
					return nil, err
				}
				t.AddRow(c.label, g)
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "sens-dram",
		Title: "DRAM bandwidth sensitivity (§VI-C)",
		Paper: "IPCP beats the second best by ~1% at 3.2GB/s and ~1.5% at " +
			"25GB/s; absolute speedups grow with bandwidth.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "sens-dram", Title: "Geomean speedup per DRAM bandwidth",
				Columns: []string{"IPCP", "MLOP"}}
			names := s.memIntensive()
			for _, bw := range []float64{3.2, 12.8, 25.6} {
				bw := bw
				ipcpG, err := sensGeomean(s, names, fmt.Sprintf("dram-%.1f", bw), func(r *RunSpec) { r.DRAMGBps = bw })
				if err != nil {
					return nil, err
				}
				// MLOP comparison at the same bandwidth.
				specs := make([]RunSpec, 0, 2*len(names))
				for _, n := range names {
					specs = append(specs,
						RunSpec{Workloads: []string{n}, DRAMGBps: bw, ConfigKey: "dram-base"},
						RunSpec{Workloads: []string{n}, L1D: "mlop", L2: "nl", LLC: "nl-miss",
							DRAMGBps: bw, ConfigKey: "dram-mlop"})
				}
				results, err := s.RunAll(specs)
				if err != nil {
					return nil, err
				}
				sp := make([]float64, len(names))
				for i := range names {
					sp[i] = stats.Speedup(results[2*i+1].IPC[0], results[2*i].IPC[0])
				}
				t.AddRow(fmt.Sprintf("%.1f GB/s", bw), ipcpG, stats.Geomean(sp))
			}
			return t, nil
		},
	})

	register(Experiment{
		ID:    "sens-pq",
		Title: "L1 PQ/MSHR sensitivity (§VI-C)",
		Paper: "(2,4) loses only ~2.7% vs the (8,16) baseline; high-MLP traces " +
			"are affected most.",
		Run: func(s *Session) (*Table, error) {
			t := &Table{ID: "sens-pq", Title: "IPCP geomean speedup per (PQ, MSHR) pair",
				Columns: []string{"speedup"}}
			for _, pair := range [][2]int{{2, 4}, {4, 8}, {8, 16}, {16, 32}} {
				pair := pair
				g, err := sensGeomean(s, s.memIntensive(), fmt.Sprintf("pq-%d-%d", pair[0], pair[1]),
					func(r *RunSpec) { r.L1PQ, r.L1MSHR = pair[0], pair[1] })
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("PQ=%d MSHR=%d", pair[0], pair[1]), g)
			}
			return t, nil
		},
	})
}
