// Package repl implements cache replacement policies: true LRU, SRRIP,
// DRRIP (set-dueling SRRIP/BRRIP) and a SHiP-lite signature-based
// policy. The paper's sensitivity study (§VI-C) sweeps the LLC policy;
// the L1 and L2 use LRU as in ChampSim's DPC-3 configuration.
package repl

import (
	"fmt"
	"math/rand"

	"ipcp/internal/memsys"
)

// Policy decides victims within one cache. The cache calls Fill when a
// block is installed, Hit on every demand or prefetch hit, and Victim
// when a set is full and a way must be freed. Victim must return a way
// in [0, ways).
type Policy interface {
	Name() string
	Hit(set, way int, r *memsys.Request)
	Fill(set, way int, r *memsys.Request)
	Victim(set int, r *memsys.Request) int
}

// Factory constructs a policy for a cache with the given geometry.
type Factory func(sets, ways int) Policy

// factories is the registry of known policies.
var factories = map[string]Factory{
	"lru":    NewLRU,
	"srrip":  NewSRRIP,
	"drrip":  NewDRRIP,
	"ship":   NewSHiP,
	"random": NewRandom,
	// "hawkeye" registers itself from hawkeye.go.
}

// New returns a policy by name, or an error listing the known names.
func New(name string, sets, ways int) (Policy, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("repl: unknown policy %q (known: %v)", name, Names())
	}
	return f(sets, ways), nil
}

// Names returns the registered policy names.
func Names() []string {
	return []string{"lru", "srrip", "drrip", "ship", "hawkeye", "mpppb", "random"}
}

// --- LRU -------------------------------------------------------------

type lru struct {
	ways  int
	stamp []uint64
	tick  uint64
}

// NewLRU returns a true-LRU policy.
func NewLRU(sets, ways int) Policy {
	return &lru{ways: ways, stamp: make([]uint64, sets*ways)}
}

func (p *lru) Name() string { return "lru" }

func (p *lru) Hit(set, way int, _ *memsys.Request) {
	p.tick++
	p.stamp[set*p.ways+way] = p.tick
}

func (p *lru) Fill(set, way int, _ *memsys.Request) {
	p.tick++
	p.stamp[set*p.ways+way] = p.tick
}

func (p *lru) Victim(set int, _ *memsys.Request) int {
	base := set * p.ways
	victim, best := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if s := p.stamp[base+w]; s < best {
			victim, best = w, s
		}
	}
	return victim
}

// --- SRRIP -----------------------------------------------------------

const rrpvMax = 3 // 2-bit RRPV

type srrip struct {
	ways int
	rrpv []uint8
	// fillRRPV lets DRRIP reuse this implementation with a BRRIP fill
	// policy. nil means "always long re-reference" (classic SRRIP).
	fillRRPV func(set int) uint8
}

// NewSRRIP returns a 2-bit SRRIP policy (fill at RRPV=2, promote to 0
// on hit).
func NewSRRIP(sets, ways int) Policy {
	p := &srrip{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range p.rrpv {
		p.rrpv[i] = rrpvMax
	}
	return p
}

func (p *srrip) Name() string { return "srrip" }

func (p *srrip) Hit(set, way int, _ *memsys.Request) {
	p.rrpv[set*p.ways+way] = 0
}

func (p *srrip) Fill(set, way int, _ *memsys.Request) {
	v := uint8(rrpvMax - 1)
	if p.fillRRPV != nil {
		v = p.fillRRPV(set)
	}
	p.rrpv[set*p.ways+way] = v
}

func (p *srrip) Victim(set int, _ *memsys.Request) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

// --- DRRIP -----------------------------------------------------------

type drrip struct {
	*srrip
	sets    int
	psel    int
	rng     *rand.Rand
	draws   uint64 // BRRIP coin flips, for replay-based snapshot restore
	leaders []int8 // per set: +1 SRRIP leader, -1 BRRIP leader, 0 follower
}

// NewDRRIP returns a set-dueling DRRIP policy with 32 leader sets per
// kind and a 10-bit PSEL counter.
func NewDRRIP(sets, ways int) Policy {
	d := &drrip{
		srrip:   NewSRRIP(sets, ways).(*srrip),
		sets:    sets,
		rng:     rand.New(rand.NewSource(1)),
		leaders: make([]int8, sets),
	}
	for i := 0; i < sets; i += 32 {
		d.leaders[i] = 1
		if i+17 < sets {
			d.leaders[i+17] = -1
		}
	}
	d.srrip.fillRRPV = d.fillRRPV
	return d
}

func (d *drrip) Name() string { return "drrip" }

const pselMax = 1023

func (d *drrip) fillRRPV(set int) uint8 {
	useBRRIP := false
	switch d.leaders[set] {
	case 1: // SRRIP leader: a miss here votes for BRRIP
		if d.psel < pselMax {
			d.psel++
		}
	case -1: // BRRIP leader: a miss here votes for SRRIP
		if d.psel > 0 {
			d.psel--
		}
		useBRRIP = true
	default:
		useBRRIP = d.psel > pselMax/2
	}
	if d.leaders[set] == 1 {
		useBRRIP = false
	}
	if useBRRIP {
		// BRRIP: mostly distant (RRPV max), occasionally long.
		d.draws++
		if d.rng.Intn(32) == 0 {
			return rrpvMax - 1
		}
		return rrpvMax
	}
	return rrpvMax - 1
}

// --- SHiP-lite ---------------------------------------------------------

type ship struct {
	*srrip
	ways int
	// shct is the signature history counter table, indexed by a hash
	// of the filling IP.
	shct []uint8
	// sig and outcome remember, per line, the fill signature and
	// whether the line was re-referenced.
	sig     []uint16
	reref   []bool
	shctCap uint8
}

const shctSize = 1 << 13

// NewSHiP returns a SHiP-lite policy: SRRIP insertion steered by a
// signature history counter table keyed on the requesting IP.
func NewSHiP(sets, ways int) Policy {
	s := &ship{
		srrip: NewSRRIP(sets, ways).(*srrip),
		ways:  ways,
		shct:  make([]uint8, shctSize),
		sig:   make([]uint16, sets*ways),
		reref: make([]bool, sets*ways),
	}
	for i := range s.shct {
		s.shct[i] = 1
	}
	return s
}

func (s *ship) Name() string { return "ship" }

func sigOf(r *memsys.Request) uint16 {
	if r == nil {
		return 0
	}
	ip := r.IP
	return uint16((ip ^ ip>>13 ^ ip>>26) & (shctSize - 1))
}

func (s *ship) Hit(set, way int, r *memsys.Request) {
	s.srrip.Hit(set, way, r)
	idx := set*s.ways + way
	if !s.reref[idx] {
		s.reref[idx] = true
		if c := s.shct[s.sig[idx]]; c < 7 {
			s.shct[s.sig[idx]] = c + 1
		}
	}
}

func (s *ship) Fill(set, way int, r *memsys.Request) {
	idx := set*s.ways + way
	// Train on the outgoing line: dead on eviction decrements.
	if !s.reref[idx] {
		if c := s.shct[s.sig[idx]]; c > 0 {
			s.shct[s.sig[idx]] = c - 1
		}
	}
	sig := sigOf(r)
	s.sig[idx] = sig
	s.reref[idx] = false
	if s.shct[sig] == 0 {
		s.rrpv[idx] = rrpvMax // predicted dead-on-arrival
	} else {
		s.rrpv[idx] = rrpvMax - 1
	}
}

// --- Random ------------------------------------------------------------

type random struct {
	ways  int
	rng   *rand.Rand
	draws uint64 // victim picks, for replay-based snapshot restore
}

// NewRandom returns a uniformly random victim policy (testing baseline).
func NewRandom(sets, ways int) Policy {
	return &random{ways: ways, rng: rand.New(rand.NewSource(2))}
}

func (p *random) Name() string                          { return "random" }
func (p *random) Hit(set, way int, _ *memsys.Request)   {}
func (p *random) Fill(set, way int, _ *memsys.Request)  {}
func (p *random) Victim(set int, _ *memsys.Request) int {
	p.draws++
	return p.rng.Intn(p.ways)
}
