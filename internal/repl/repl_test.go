package repl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
)

func TestNewKnownNames(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 16, 4)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := New("nonsense", 16, 4); err == nil {
		t.Error("New(nonsense) should fail")
	}
}

func TestLRUStackProperty(t *testing.T) {
	p := NewLRU(1, 4)
	// Fill ways 0..3 in order; way 0 is LRU.
	for w := 0; w < 4; w++ {
		p.Fill(0, w, nil)
	}
	if v := p.Victim(0, nil); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	p.Hit(0, 0, nil) // 0 becomes MRU; 1 is now LRU
	if v := p.Victim(0, nil); v != 1 {
		t.Fatalf("victim after hit = %d, want 1", v)
	}
}

// TestLRUMatchesReference replays a random trace against a reference
// stack-based LRU model.
func TestLRUMatchesReference(t *testing.T) {
	const ways = 8
	p := NewLRU(1, ways)
	ref := make([]int, 0, ways) // ref[0] = LRU ... last = MRU
	touch := func(w int) {
		for i, x := range ref {
			if x == w {
				ref = append(ref[:i], ref[i+1:]...)
				break
			}
		}
		ref = append(ref, w)
	}
	rng := rand.New(rand.NewSource(11))
	for w := 0; w < ways; w++ {
		p.Fill(0, w, nil)
		touch(w)
	}
	for i := 0; i < 10000; i++ {
		w := rng.Intn(ways)
		p.Hit(0, w, nil)
		touch(w)
		if got, want := p.Victim(0, nil), ref[0]; got != want {
			t.Fatalf("step %d: victim %d, want %d", i, got, want)
		}
	}
}

func TestVictimInRangeProperty(t *testing.T) {
	for _, name := range Names() {
		name := name
		p, _ := New(name, 8, 4)
		f := func(ops []uint16) bool {
			for _, op := range ops {
				set := int(op) % 8
				way := int(op>>3) % 4
				r := &memsys.Request{IP: uint64(op) * 2654435761}
				switch op % 3 {
				case 0:
					p.Fill(set, way, r)
				case 1:
					p.Hit(set, way, r)
				case 2:
					if v := p.Victim(set, r); v < 0 || v >= 4 {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSRRIPPromotesOnHit(t *testing.T) {
	p := NewSRRIP(1, 2)
	p.Fill(0, 0, nil)
	p.Fill(0, 1, nil)
	p.Hit(0, 0, nil) // way 0 promoted to RRPV 0
	// Victim search ages both until one reaches max; way 1 is closer.
	if v := p.Victim(0, nil); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

func TestSRRIPVictimTerminates(t *testing.T) {
	p := NewSRRIP(4, 16)
	// All lines promoted: victim search must still terminate via aging.
	for w := 0; w < 16; w++ {
		p.Fill(1, w, nil)
		p.Hit(1, w, nil)
	}
	done := make(chan int, 1)
	go func() { done <- p.Victim(1, nil) }()
	v := <-done
	if v < 0 || v >= 16 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestDRRIPDueling(t *testing.T) {
	p := NewDRRIP(64, 4).(*drrip)
	// Misses (fills) in SRRIP leader sets increment PSEL; in BRRIP
	// leaders decrement it.
	start := p.psel
	for i := 0; i < 10; i++ {
		p.Fill(0, i%4, nil) // set 0 is an SRRIP leader
	}
	if p.psel <= start {
		t.Errorf("PSEL did not increase on SRRIP-leader misses: %d -> %d", start, p.psel)
	}
	mid := p.psel
	for i := 0; i < 10; i++ {
		p.Fill(17, i%4, nil) // set 17 is a BRRIP leader
	}
	if p.psel >= mid {
		t.Errorf("PSEL did not decrease on BRRIP-leader misses: %d -> %d", mid, p.psel)
	}
}

func TestSHiPLearnsDeadIP(t *testing.T) {
	p := NewSHiP(16, 4).(*ship)
	deadIP := &memsys.Request{IP: 0xdead0}
	// Refill the same slot from one IP and never re-reference it: each
	// refill trains on the dead outgoing line, so the IP's SHCT counter
	// falls to zero and future fills from it insert at distant RRPV.
	for i := 0; i < 16; i++ {
		p.Fill(0, 0, deadIP)
	}
	if got := p.shct[sigOf(deadIP)]; got != 0 {
		t.Fatalf("dead IP SHCT = %d, want 0", got)
	}
	p.Fill(0, 0, deadIP)
	if got := p.rrpv[0]; got != rrpvMax {
		t.Errorf("dead IP inserted at RRPV %d, want %d", got, rrpvMax)
	}
}

func TestSHiPLearnsLiveIP(t *testing.T) {
	p := NewSHiP(16, 4).(*ship)
	liveIP := &memsys.Request{IP: 0x1117e0}
	for i := 0; i < 32; i++ {
		p.Fill(0, 0, liveIP)
		p.Hit(0, 0, liveIP) // re-referenced: SHCT trains up
	}
	if got := p.shct[sigOf(liveIP)]; got < 2 {
		t.Errorf("live IP SHCT = %d, want trained up", got)
	}
	p.Fill(1, 0, liveIP)
	if got := p.rrpv[1*4+0]; got == rrpvMax {
		t.Error("live IP inserted dead-on-arrival")
	}
}

func TestPoliciesIndependentSets(t *testing.T) {
	// Activity in one set must not disturb another set's LRU order.
	p := NewLRU(2, 2)
	p.Fill(0, 0, nil)
	p.Fill(0, 1, nil)
	p.Fill(1, 0, nil)
	p.Fill(1, 1, nil)
	p.Hit(1, 0, nil)
	if v := p.Victim(0, nil); v != 0 {
		t.Errorf("set 0 victim = %d, want 0", v)
	}
	if v := p.Victim(1, nil); v != 1 {
		t.Errorf("set 1 victim = %d, want 1", v)
	}
}
