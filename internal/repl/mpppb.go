package repl

import "ipcp/internal/memsys"

// mpppb is a lightweight multiperspective placement/promotion policy
// [Jiménez & Teran, MICRO 2017, "MPPPB"]: several feature tables of
// small signed counters vote on whether a filled or promoted line will
// be reused; dead-on-arrival predictions insert at distant RRPV. The
// paper's §VI-C notes that under MPPPB every prefetcher drops ~3%
// (prefetched lines look dead to the reuse predictor), which this lite
// version reproduces qualitatively.
type mpppb struct {
	sets, ways int
	rrpv       []uint8

	// Per-line: the feature indices used at fill time (for training on
	// the observed outcome) and the reuse bit.
	feats [][mpppbFeatures]uint16
	used  []bool

	tables [mpppbFeatures][]int8
}

const (
	mpppbFeatures  = 3
	mpppbTableSize = 1 << 11
	mpppbWeightMax = 31
	mpppbRRPVMax   = 7
	// theta is the training threshold: confident predictions stop
	// updating (perceptron training rule).
	mpppbTheta = 20
)

// NewMPPPB returns the multiperspective policy.
func NewMPPPB(sets, ways int) Policy {
	p := &mpppb{
		sets: sets, ways: ways,
		rrpv:  make([]uint8, sets*ways),
		feats: make([][mpppbFeatures]uint16, sets*ways),
		used:  make([]bool, sets*ways),
	}
	for i := range p.rrpv {
		p.rrpv[i] = mpppbRRPVMax
	}
	for f := range p.tables {
		p.tables[f] = make([]int8, mpppbTableSize)
	}
	return p
}

func (p *mpppb) Name() string { return "mpppb" }

// features extracts the perspectives for one access.
func (p *mpppb) features(r *memsys.Request) [mpppbFeatures]uint16 {
	var pc, addr uint64
	if r != nil {
		pc, addr = r.IP, uint64(memsys.BlockNumber(r.Addr))
	}
	return [mpppbFeatures]uint16{
		uint16((pc ^ pc>>11) & (mpppbTableSize - 1)),
		uint16((addr ^ addr>>9) & (mpppbTableSize - 1)),
		uint16((pc ^ addr<<3 ^ addr>>17) & (mpppbTableSize - 1)),
	}
}

func (p *mpppb) vote(f [mpppbFeatures]uint16) int {
	s := 0
	for i := range f {
		s += int(p.tables[i][f[i]])
	}
	return s
}

func (p *mpppb) train(f [mpppbFeatures]uint16, reused bool) {
	y := p.vote(f)
	if reused && y > mpppbTheta || !reused && y < -mpppbTheta {
		return // confident enough; perceptron rule stops updating
	}
	for i := range f {
		w := &p.tables[i][f[i]]
		if reused && *w < mpppbWeightMax {
			*w++
		}
		if !reused && *w > -mpppbWeightMax {
			*w--
		}
	}
}

func (p *mpppb) Hit(set, way int, r *memsys.Request) {
	idx := set*p.ways + way
	if !p.used[idx] {
		p.used[idx] = true
		p.train(p.feats[idx], true)
	}
	// Promotion: predicted-reusable lines go to the front; others only
	// part way.
	if p.vote(p.features(r)) >= 0 {
		p.rrpv[idx] = 0
	} else if p.rrpv[idx] > 1 {
		p.rrpv[idx] = 1
	}
}

func (p *mpppb) Fill(set, way int, r *memsys.Request) {
	idx := set*p.ways + way
	// Train on the outgoing line's outcome.
	if !p.used[idx] && p.feats[idx] != ([mpppbFeatures]uint16{}) {
		p.train(p.feats[idx], false)
	}
	f := p.features(r)
	p.feats[idx] = f
	p.used[idx] = false
	switch y := p.vote(f); {
	case y < -mpppbTheta/2:
		p.rrpv[idx] = mpppbRRPVMax // predicted dead on arrival
	case y < 0:
		p.rrpv[idx] = mpppbRRPVMax - 2
	default:
		p.rrpv[idx] = 1
	}
}

func (p *mpppb) Victim(set int, r *memsys.Request) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] == mpppbRRPVMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

func init() {
	factories["mpppb"] = NewMPPPB
}
