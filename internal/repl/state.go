package repl

import "fmt"

// Snapshot/restore support. Every policy's state is pure data except
// the two RNGs (drrip's BRRIP coin, random's victim picker), which are
// restored by replaying their recorded draw count against the fixed
// seed — math/rand does not expose its internals, and the draw sequence
// is a pure function of (seed, count).

// State is a tagged union capturing one policy instance. Exactly the
// field matching Policy is set; the rest stay nil so the struct encodes
// compactly under encoding/gob.
type State struct {
	Policy  string
	LRU     *LRUState
	SRRIP   *SRRIPState
	DRRIP   *DRRIPState
	SHiP    *SHiPState
	Random  *RandomState
	Hawkeye *HawkeyeState
	MPPPB   *MPPPBState
}

// LRUState captures the true-LRU stamps and clock.
type LRUState struct {
	Stamp []uint64
	Tick  uint64
}

// SRRIPState captures the RRPV array.
type SRRIPState struct {
	RRPV []uint8
}

// DRRIPState captures the dueling state on top of SRRIP. Leader-set
// assignment is deterministic from geometry and is not captured.
type DRRIPState struct {
	RRPV  []uint8
	PSel  int
	Draws uint64
}

// SHiPState captures the signature tables on top of SRRIP.
type SHiPState struct {
	RRPV  []uint8
	SHCT  []uint8
	Sig   []uint16
	Reref []bool
}

// RandomState captures the victim RNG position.
type RandomState struct {
	Draws uint64
}

// HawkeyeState captures the RRPVs, predictor and OPTgen samplers.
type HawkeyeState struct {
	RRPV      []uint8
	PCOf      []uint64
	UsedBit   []bool
	Predictor []int8
	Samplers  map[int]OptSamplerState
}

// OptSamplerState is one sampled set's OPTgen bookkeeping.
type OptSamplerState struct {
	Entries map[uint64]OptEntryState
	Occ     []uint8
	Clock   int
}

// OptEntryState is one tracked block in an OPTgen sampler.
type OptEntryState struct {
	LastTime int
	PC       uint64
}

// MPPPBState captures the perceptron tables and per-line features.
type MPPPBState struct {
	RRPV   []uint8
	Feats  [][mpppbFeatures]uint16
	Used   []bool
	Tables [mpppbFeatures][]int8
}

// Save captures p's complete replacement state.
func Save(p Policy) (State, error) {
	switch v := p.(type) {
	case *lru:
		return State{Policy: "lru", LRU: &LRUState{
			Stamp: append([]uint64(nil), v.stamp...), Tick: v.tick}}, nil
	case *drrip:
		return State{Policy: "drrip", DRRIP: &DRRIPState{
			RRPV: append([]uint8(nil), v.rrpv...), PSel: v.psel, Draws: v.draws}}, nil
	case *ship:
		return State{Policy: "ship", SHiP: &SHiPState{
			RRPV:  append([]uint8(nil), v.rrpv...),
			SHCT:  append([]uint8(nil), v.shct...),
			Sig:   append([]uint16(nil), v.sig...),
			Reref: append([]bool(nil), v.reref...)}}, nil
	case *srrip:
		return State{Policy: "srrip", SRRIP: &SRRIPState{
			RRPV: append([]uint8(nil), v.rrpv...)}}, nil
	case *random:
		return State{Policy: "random", Random: &RandomState{Draws: v.draws}}, nil
	case *hawkeye:
		hs := &HawkeyeState{
			RRPV:      append([]uint8(nil), v.rrpv...),
			PCOf:      append([]uint64(nil), v.pcOf...),
			UsedBit:   append([]bool(nil), v.usedBit...),
			Predictor: append([]int8(nil), v.predictor...),
			Samplers:  make(map[int]OptSamplerState, len(v.samplers)),
		}
		for set, s := range v.samplers {
			ss := OptSamplerState{
				Entries: make(map[uint64]OptEntryState, len(s.entries)),
				Occ:     append([]uint8(nil), s.occ[:]...),
				Clock:   s.clock,
			}
			for b, e := range s.entries {
				ss.Entries[b] = OptEntryState{LastTime: e.lastTime, PC: e.pc}
			}
			hs.Samplers[set] = ss
		}
		return State{Policy: "hawkeye", Hawkeye: hs}, nil
	case *mpppb:
		ms := &MPPPBState{
			RRPV:  append([]uint8(nil), v.rrpv...),
			Feats: append([][mpppbFeatures]uint16(nil), v.feats...),
			Used:  append([]bool(nil), v.used...),
		}
		for f := range v.tables {
			ms.Tables[f] = append([]int8(nil), v.tables[f]...)
		}
		return State{Policy: "mpppb", MPPPB: ms}, nil
	default:
		return State{}, fmt.Errorf("repl: policy %q does not support snapshots", p.Name())
	}
}

// Restore overwrites p (freshly constructed with the same geometry)
// with the captured state. The policy kind and array geometry must
// match the capture.
func Restore(p Policy, s State) error {
	if p.Name() != s.Policy {
		return fmt.Errorf("repl: restoring %q state into %q policy", s.Policy, p.Name())
	}
	switch v := p.(type) {
	case *lru:
		if s.LRU == nil || len(s.LRU.Stamp) != len(v.stamp) {
			return fmt.Errorf("repl: lru state geometry mismatch")
		}
		copy(v.stamp, s.LRU.Stamp)
		v.tick = s.LRU.Tick
	case *drrip:
		if s.DRRIP == nil || len(s.DRRIP.RRPV) != len(v.rrpv) {
			return fmt.Errorf("repl: drrip state geometry mismatch")
		}
		copy(v.rrpv, s.DRRIP.RRPV)
		v.psel = s.DRRIP.PSel
		for v.draws < s.DRRIP.Draws {
			v.draws++
			v.rng.Intn(32)
		}
	case *ship:
		if s.SHiP == nil || len(s.SHiP.RRPV) != len(v.rrpv) || len(s.SHiP.SHCT) != len(v.shct) {
			return fmt.Errorf("repl: ship state geometry mismatch")
		}
		copy(v.rrpv, s.SHiP.RRPV)
		copy(v.shct, s.SHiP.SHCT)
		copy(v.sig, s.SHiP.Sig)
		copy(v.reref, s.SHiP.Reref)
	case *srrip:
		if s.SRRIP == nil || len(s.SRRIP.RRPV) != len(v.rrpv) {
			return fmt.Errorf("repl: srrip state geometry mismatch")
		}
		copy(v.rrpv, s.SRRIP.RRPV)
	case *random:
		if s.Random == nil {
			return fmt.Errorf("repl: random state missing")
		}
		for v.draws < s.Random.Draws {
			v.draws++
			v.rng.Intn(v.ways)
		}
	case *hawkeye:
		hs := s.Hawkeye
		if hs == nil || len(hs.RRPV) != len(v.rrpv) {
			return fmt.Errorf("repl: hawkeye state geometry mismatch")
		}
		copy(v.rrpv, hs.RRPV)
		copy(v.pcOf, hs.PCOf)
		copy(v.usedBit, hs.UsedBit)
		copy(v.predictor, hs.Predictor)
		v.samplers = make(map[int]*optSampler, len(hs.Samplers))
		for set, ss := range hs.Samplers {
			if len(ss.Occ) != optHistory {
				return fmt.Errorf("repl: hawkeye sampler geometry mismatch")
			}
			sm := &optSampler{ways: v.ways, entries: make(map[uint64]optEntry, len(ss.Entries)), clock: ss.Clock}
			copy(sm.occ[:], ss.Occ)
			for b, e := range ss.Entries {
				sm.entries[b] = optEntry{lastTime: e.LastTime, pc: e.PC}
			}
			v.samplers[set] = sm
		}
	case *mpppb:
		ms := s.MPPPB
		if ms == nil || len(ms.RRPV) != len(v.rrpv) {
			return fmt.Errorf("repl: mpppb state geometry mismatch")
		}
		copy(v.rrpv, ms.RRPV)
		copy(v.feats, ms.Feats)
		copy(v.used, ms.Used)
		for f := range v.tables {
			if len(ms.Tables[f]) != len(v.tables[f]) {
				return fmt.Errorf("repl: mpppb table geometry mismatch")
			}
			copy(v.tables[f], ms.Tables[f])
		}
	default:
		return fmt.Errorf("repl: policy %q does not support snapshots", p.Name())
	}
	return nil
}
