package repl

import "ipcp/internal/memsys"

// hawkeye is a lightweight Hawkeye [Jain & Lin, ISCA 2016]: sampled
// sets replay Belady's OPT over their recent access history (OPTgen);
// the outcome trains a PC-indexed predictor that classifies loads as
// cache-friendly or cache-averse; averse fills insert at distant RRPV
// so they evict first. The paper's LLC sensitivity study (§VI-C)
// includes Hawkeye.
type hawkeye struct {
	sets, ways int
	rrpv       []uint8 // 3-bit

	// pcOf remembers the filling PC per line, to detrain on eviction
	// of never-reused friendly lines.
	pcOf    []uint64
	usedBit []bool

	predictor []int8 // 3-bit signed counters, indexed by PC hash

	samplers map[int]*optSampler
}

const (
	hawkeyeRRPVMax   = 7
	hawkeyePredSize  = 1 << 12
	hawkeyeSampleInt = 16 // every 16th set is sampled
	optHistory       = 128
)

// optSampler replays OPT for one sampled set.
type optSampler struct {
	ways int
	// entries: last access time + PC per recently seen block.
	entries map[uint64]optEntry
	occ     [optHistory]uint8
	clock   int
}

type optEntry struct {
	lastTime int
	pc       uint64
}

// NewHawkeye returns the sampled-OPTgen policy.
func NewHawkeye(sets, ways int) Policy {
	h := &hawkeye{
		sets: sets, ways: ways,
		rrpv:      make([]uint8, sets*ways),
		pcOf:      make([]uint64, sets*ways),
		usedBit:   make([]bool, sets*ways),
		predictor: make([]int8, hawkeyePredSize),
		samplers:  make(map[int]*optSampler),
	}
	for i := range h.rrpv {
		h.rrpv[i] = hawkeyeRRPVMax
	}
	return h
}

func (h *hawkeye) Name() string { return "hawkeye" }

func hawkeyePCIndex(pc uint64) int {
	return int((pc ^ pc>>13 ^ pc>>27) & (hawkeyePredSize - 1))
}

func (h *hawkeye) friendly(pc uint64) bool {
	return h.predictor[hawkeyePCIndex(pc)] >= 0
}

func (h *hawkeye) train(pc uint64, up bool) {
	i := hawkeyePCIndex(pc)
	if up && h.predictor[i] < 3 {
		h.predictor[i]++
	}
	if !up && h.predictor[i] > -4 {
		h.predictor[i]--
	}
}

// sample runs OPTgen for a sampled set access and trains the
// predictor.
func (h *hawkeye) sample(set int, r *memsys.Request) {
	if r == nil || set%hawkeyeSampleInt != 0 {
		return
	}
	s := h.samplers[set]
	if s == nil {
		s = &optSampler{ways: h.ways, entries: make(map[uint64]optEntry)}
		h.samplers[set] = s
	}
	block := memsys.BlockNumber(r.Addr)
	now := s.clock
	s.clock++
	if s.clock >= optHistory {
		// Period rollover: restart the interval bookkeeping.
		s.clock = 0
		for i := range s.occ {
			s.occ[i] = 0
		}
		s.entries = make(map[uint64]optEntry)
		s.entries[block] = optEntry{lastTime: 0, pc: r.IP}
		s.clock = 1
		return
	}
	if e, ok := s.entries[block]; ok {
		// Would OPT have kept this line across [lastTime, now)?
		fits := true
		for t := e.lastTime; t < now; t++ {
			if s.occ[t] >= uint8(s.ways) {
				fits = false
				break
			}
		}
		if fits {
			for t := e.lastTime; t < now; t++ {
				s.occ[t]++
			}
		}
		// The PC that brought the line in was friendly iff OPT would
		// have hit.
		h.train(e.pc, fits)
	}
	if len(s.entries) >= 8*s.ways {
		// Bound the sampler like hardware (8× associativity): evict
		// the stalest entry.
		var oldest uint64
		oldestT := int(^uint(0) >> 1)
		for b, e := range s.entries {
			if e.lastTime < oldestT {
				oldest, oldestT = b, e.lastTime
			}
		}
		delete(s.entries, oldest)
	}
	s.entries[block] = optEntry{lastTime: now, pc: r.IP}
}

func (h *hawkeye) Hit(set, way int, r *memsys.Request) {
	idx := set*h.ways + way
	h.rrpv[idx] = 0
	h.usedBit[idx] = true
	h.sample(set, r)
}

func (h *hawkeye) Fill(set, way int, r *memsys.Request) {
	idx := set*h.ways + way
	pc := uint64(0)
	if r != nil {
		pc = r.IP
	}
	// Detrain the PC of an evicted friendly-but-unused line.
	if !h.usedBit[idx] && h.rrpv[idx] != hawkeyeRRPVMax && h.pcOf[idx] != 0 {
		h.train(h.pcOf[idx], false)
	}
	h.pcOf[idx] = pc
	h.usedBit[idx] = false
	if h.friendly(pc) {
		h.rrpv[idx] = 0
		// Age the other friendly lines so the set keeps an ordering.
		base := set * h.ways
		for w := 0; w < h.ways; w++ {
			if w != way && h.rrpv[base+w] < hawkeyeRRPVMax-1 {
				h.rrpv[base+w]++
			}
		}
	} else {
		h.rrpv[idx] = hawkeyeRRPVMax
	}
	h.sample(set, r)
}

func (h *hawkeye) Victim(set int, r *memsys.Request) int {
	base := set * h.ways
	victim, worst := 0, uint8(0)
	for w := 0; w < h.ways; w++ {
		if h.rrpv[base+w] == hawkeyeRRPVMax {
			return w // a cache-averse line goes first
		}
		if h.rrpv[base+w] >= worst {
			victim, worst = w, h.rrpv[base+w]
		}
	}
	return victim
}

func init() {
	factories["hawkeye"] = NewHawkeye
}
