package repl

import (
	"testing"

	"ipcp/internal/memsys"
)

func req(pc, addr uint64) *memsys.Request {
	return &memsys.Request{IP: pc, Addr: addr}
}

func TestHawkeyeRegistered(t *testing.T) {
	p, err := New("hawkeye", 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "hawkeye" {
		t.Errorf("name = %q", p.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "hawkeye" {
			found = true
		}
	}
	if !found {
		t.Skip("hawkeye intentionally not in Names(); registry-only")
	}
}

func TestHawkeyeAverseInsertsEvictFirst(t *testing.T) {
	h := NewHawkeye(64, 4).(*hawkeye)
	// Force a PC to be averse.
	badPC := uint64(0xbad0)
	for i := 0; i < 8; i++ {
		h.train(badPC, false)
	}
	goodPC := uint64(0x600d0)
	for i := 0; i < 8; i++ {
		h.train(goodPC, true)
	}
	// Fill ways 0-2 friendly, way 3 averse.
	for w := 0; w < 3; w++ {
		h.Fill(1, w, req(goodPC, uint64(w)*64))
	}
	h.Fill(1, 3, req(badPC, 3*64))
	if v := h.Victim(1, nil); v != 3 {
		t.Errorf("victim = %d, want the averse line (3)", v)
	}
}

func TestHawkeyeOPTgenTrainsFriendly(t *testing.T) {
	h := NewHawkeye(64, 4).(*hawkeye)
	pc := uint64(0x42000)
	// A tight reuse loop in a SAMPLED set (set 0): two blocks
	// alternating — OPT always hits, so the PC must train friendly.
	blocks := []uint64{0 << 6, 64 << 6}
	way := 0
	for i := 0; i < 60; i++ {
		b := blocks[i%2]
		h.Fill(0, way%4, req(pc, b*64))
		way++
		h.Hit(0, way%4, req(pc, b*64))
	}
	if !h.friendly(pc) {
		t.Errorf("reused PC classified averse (predictor %d)", h.predictor[hawkeyePCIndex(pc)])
	}
}

func TestHawkeyeOPTgenTrainsAverse(t *testing.T) {
	h := NewHawkeye(64, 2).(*hawkeye)
	pc := uint64(0x43000)
	// A scan over far more blocks than the 2 ways with reuse distance
	// ≫ ways: OPT misses, so the PC trains averse. Each block is
	// touched twice, 16 distinct blocks apart, in a sampled set.
	for round := 0; round < 6; round++ {
		for b := uint64(0); b < 16; b++ {
			h.sample(0, req(pc, b<<6))
		}
	}
	if h.friendly(pc) {
		t.Errorf("thrashing PC classified friendly (predictor %d)", h.predictor[hawkeyePCIndex(pc)])
	}
}

func TestHawkeyeVictimInRange(t *testing.T) {
	h := NewHawkeye(8, 4)
	for i := 0; i < 500; i++ {
		set := i % 8
		way := (i / 8) % 4
		r := req(uint64(i)*31, uint64(i)*64)
		h.Fill(set, way, r)
		if i%3 == 0 {
			h.Hit(set, way, r)
		}
		if v := h.Victim(set, r); v < 0 || v >= 4 {
			t.Fatalf("victim out of range: %d", v)
		}
	}
}

func TestHawkeyeNilRequestTolerated(t *testing.T) {
	h := NewHawkeye(8, 4)
	h.Fill(0, 0, nil)
	h.Hit(0, 0, nil)
	if v := h.Victim(0, nil); v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestMPPPBRegisteredAndSane(t *testing.T) {
	p, err := New("mpppb", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "mpppb" {
		t.Errorf("name = %q", p.Name())
	}
	// Random traffic: victims always in range; fills and hits don't
	// panic.
	for i := 0; i < 2000; i++ {
		set := i % 16
		way := (i * 7) % 4
		r := req(uint64(i)*131, uint64(i)*64)
		p.Fill(set, way, r)
		if i%2 == 0 {
			p.Hit(set, way, r)
		}
		if v := p.Victim(set, r); v < 0 || v >= 4 {
			t.Fatalf("victim out of range: %d", v)
		}
	}
}

func TestMPPPBLearnsDeadPC(t *testing.T) {
	p := NewMPPPB(16, 4).(*mpppb)
	dead := uint64(0xdead00)
	// Refill the same slot from one PC without reuse: the vote for
	// that PC's features must go negative.
	for i := 0; i < 60; i++ {
		p.Fill(0, 0, req(dead, uint64(i)*64))
	}
	if y := p.vote(p.features(req(dead, 60*64))); y >= 0 {
		t.Errorf("dead PC vote = %d, want negative", y)
	}
	// A dead-predicted fill inserts at distant RRPV.
	p.Fill(1, 0, req(dead, 99*64))
	if p.rrpv[1*4+0] != mpppbRRPVMax {
		t.Errorf("dead fill at RRPV %d, want %d", p.rrpv[1*4+0], mpppbRRPVMax)
	}
}

func TestMPPPBLearnsLivePC(t *testing.T) {
	p := NewMPPPB(16, 4).(*mpppb)
	live := uint64(0x11fe00)
	for i := 0; i < 60; i++ {
		p.Fill(0, 0, req(live, 0x4000))
		p.Hit(0, 0, req(live, 0x4000))
	}
	if y := p.vote(p.features(req(live, 0x4000))); y <= 0 {
		t.Errorf("live PC vote = %d, want positive", y)
	}
}
