package workload

import "ipcp/internal/trace"

// nnStream models inference kernels: convolution/GEMM loops streaming
// weight and activation tensors — overwhelmingly dense and streaming,
// which is why IPCP's GS class dominates on these (paper Fig. 14b).
func nnStream(memEvery, dwell int, storeFrac float64, srcf func() source) func(int64) trace.Stream {
	return func(seed int64) trace.Stream {
		g := newGen(seed, memEvery, 32, storeFrac)
		g.dwell = dwell
		g.takenBias = 0.05
		g.depFrac = 0.05 // dense kernels: address streams are index-driven
		g.src = srcf()
		return g
	}
}

func nn(name string, newStream func(int64) trace.Stream) {
	register(Spec{
		Name: name, Benchmark: "nn/" + name, Class: ClassNN,
		MemIntensive: true, Suite: "nn", NewStream: newStream,
	})
}

func init() {
	// Convolution-style: stream input feature maps plus a strided
	// window walk.
	nn("cifar10", nnStream(3, 12, 0.15, func() source {
		return newMixSource(
			[]source{newGSSource(24*MB, +1, 0.96, 2), newStrideSource([]int{2, 2}, 16*MB)},
			[]int{3, 1})
	}))
	nn("lstm", nnStream(3, 12, 0.1, func() source {
		// Recurrent weight-matrix streaming: long unit-stride sweeps.
		return newStrideSource([]int{1, 1, 1}, 48*MB)
	}))
	nn("nin", nnStream(3, 12, 0.15, func() source {
		return newMixSource(
			[]source{newGSSource(32*MB, +1, 0.95, 3), newCplxSource([][]int{{1, 1, 2}}, 16*MB)},
			[]int{3, 1})
	}))
	nn("resnet50", nnStream(3, 12, 0.12, func() source {
		return newMixSource(
			[]source{newGSSource(48*MB, +1, 0.97, 2), newStrideSource([]int{1, 4}, 32*MB)},
			[]int{4, 1})
	}))
	nn("squeezenet", nnStream(3, 10, 0.12, func() source {
		return newMixSource(
			[]source{newGSSource(16*MB, +1, 0.94, 3), newStrideSource([]int{1}, 16*MB)},
			[]int{2, 1})
	}))
	nn("vgg19", nnStream(3, 12, 0.15, func() source {
		return newGSSource(64*MB, +1, 0.98, 2)
	}))
	nn("vggm", nnStream(3, 12, 0.15, func() source {
		return newMixSource(
			[]source{newGSSource(48*MB, +1, 0.96, 3), newStrideSource([]int{2}, 24*MB)},
			[]int{3, 1})
	}))
}
