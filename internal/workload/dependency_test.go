package workload

import (
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/trace"
)

func TestPerIPStrideStability(t *testing.T) {
	// Every load site of a stride workload must observe ONE constant
	// block delta across loop iterations — the property per-IP
	// classifiers rely on.
	s, _ := Named("bwaves-2931")
	st := s.New(1)
	var in trace.Instr
	last := map[uint64]uint64{}
	deltas := map[uint64]map[int64]int{}
	for i := 0; i < 150000; i++ {
		st.Next(&in)
		a := in.Loads[0]
		if a == 0 {
			a = in.Stores[0]
		}
		if a == 0 {
			continue
		}
		b := memsys.BlockNumber(a)
		if lb, ok := last[in.IP]; ok && b != lb {
			if deltas[in.IP] == nil {
				deltas[in.IP] = map[int64]int{}
			}
			deltas[in.IP][int64(b)-int64(lb)]++
		}
		last[in.IP] = b
	}
	if len(deltas) < 30 {
		t.Fatalf("only %d load sites observed", len(deltas))
	}
	for ip, d := range deltas {
		// Allow the footprint-wrap delta as a rare second value.
		if len(d) > 2 {
			t.Errorf("IP %#x sees %d distinct deltas: %v", ip, len(d), d)
		}
	}
}

func TestDepPrevEmissionRate(t *testing.T) {
	s, _ := Named("bwaves-2931")
	st := s.New(1)
	SetDepFrac(st, 0.5)
	var in trace.Instr
	deps, loads := 0, 0
	for i := 0; i < 100000; i++ {
		st.Next(&in)
		if in.Loads[0] != 0 {
			loads++
			if in.DepPrev {
				deps++
			}
		}
	}
	frac := float64(deps) / float64(loads)
	// All dwell accesses of a dependent line are flagged, so the load
	// fraction tracks the line fraction (~0.5) closely.
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("dependent-load fraction = %.2f, want ~0.5", frac)
	}
}

func TestDepPrevChains(t *testing.T) {
	// Dependencies must arrive in Markov chains, not i.i.d.: the
	// number of state transitions must be far below the independent
	// expectation.
	s, _ := Named("bwaves-2931")
	st := s.New(1)
	SetDepFrac(st, 0.5)
	var in trace.Instr
	var states []bool
	lastLine := uint64(0)
	for i := 0; i < 200000; i++ {
		st.Next(&in)
		a := in.Loads[0]
		if a == 0 {
			continue
		}
		line := memsys.BlockNumber(a)
		if line != lastLine {
			states = append(states, in.DepPrev)
			lastLine = line
		}
	}
	trans := 0
	for i := 1; i < len(states); i++ {
		if states[i] != states[i-1] {
			trans++
		}
	}
	rate := float64(trans) / float64(len(states))
	// i.i.d. p=0.5 would flip ~50% of the time; stickiness 0.75 gives
	// ~25%.
	if rate > 0.4 {
		t.Errorf("dependency transition rate %.2f — not chained", rate)
	}
}

func TestSetDepFracZeroDisables(t *testing.T) {
	s, _ := Named("mcf-994") // high default depFrac
	st := s.New(1)
	SetDepFrac(st, 0)
	var in trace.Instr
	for i := 0; i < 50000; i++ {
		st.Next(&in)
		if in.DepPrev {
			t.Fatal("DepPrev emitted with depFrac 0")
		}
	}
}

func TestIrregularWorkloadsAreHighlyDependent(t *testing.T) {
	s, _ := Named("omnetpp-874")
	st := s.New(1)
	var in trace.Instr
	deps, loads := 0, 0
	for i := 0; i < 100000; i++ {
		st.Next(&in)
		if in.Loads[0] != 0 {
			loads++
			if in.DepPrev {
				deps++
			}
		}
	}
	if frac := float64(deps) / float64(loads); frac < 0.5 {
		t.Errorf("omnetpp dependent fraction = %.2f, want pointer-chase-like (>0.5)", frac)
	}
}

func TestStrideWorkloadsAreMostlyIndependent(t *testing.T) {
	s, _ := Named("bwaves-98")
	st := s.New(1)
	var in trace.Instr
	deps, loads := 0, 0
	for i := 0; i < 100000; i++ {
		st.Next(&in)
		if in.Loads[0] != 0 {
			loads++
			if in.DepPrev {
				deps++
			}
		}
	}
	if frac := float64(deps) / float64(loads); frac > 0.3 {
		t.Errorf("bwaves dependent fraction = %.2f, want index-driven (<0.3)", frac)
	}
}
