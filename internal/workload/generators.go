package workload

import (
	"math/rand"

	"ipcp/internal/memsys"
)

// MB is one mebibyte of address space.
const MB = 1 << 20

// --- constant stride ------------------------------------------------------

// strideStream is one array walked with a constant stride.
type strideStream struct {
	base        uint64
	strideBytes int64
	footprint   uint64

	cur uint64
}

// strideSource binds load sites to constant-stride streams (the
// paper's CS class: bwaves-like). Site k walks stream k mod N.
type strideSource struct {
	streams []strideStream
}

// newStrideSource builds one stream per entry of strideBlocks (strides
// in cache blocks) with the given per-stream footprint in bytes.
// Streams are spaced 256MB apart in the virtual address space.
func newStrideSource(strideBlocks []int, footprint uint64) *strideSource {
	s := &strideSource{}
	for i, sb := range strideBlocks {
		s.streams = append(s.streams, strideStream{
			base:        uint64(i+1) << 28,
			strideBytes: int64(sb) * memsys.BlockSize,
			footprint:   footprint,
		})
	}
	return s
}

func (s *strideSource) reset(_ *rand.Rand) {
	for i := range s.streams {
		s.streams[i].cur = s.streams[i].base
	}
}

func (s *strideSource) next(_ *rand.Rand, site int) uint64 {
	st := &s.streams[site%len(s.streams)]
	addr := st.cur
	next := int64(st.cur) + st.strideBytes
	if next < int64(st.base) || uint64(next) >= st.base+st.footprint {
		st.cur = st.base
	} else {
		st.cur = uint64(next)
	}
	return addr
}

// --- complex stride -------------------------------------------------------

// cplxStream walks with a repeating multi-stride pattern (the paper's
// CPLX class: strides like 1,2,1,2 or 3,3,4).
type cplxStream struct {
	base      uint64
	pattern   []int64 // strides in bytes
	footprint uint64

	cur uint64
	pos int
}

// cplxSource gives every load site its own walker so each instruction
// pointer sees the raw alternating stride sequence (sites sharing one
// walker would each observe sums of pattern strides — a constant,
// which defeats the purpose). Site k uses pattern k mod N.
type cplxSource struct {
	patterns  [][]int64
	footprint uint64

	walkers map[int]*cplxStream
}

// newCplxSource builds a per-site complex-stride source; patterns are
// stride sequences in cache blocks.
func newCplxSource(patterns [][]int, footprint uint64) *cplxSource {
	s := &cplxSource{footprint: footprint}
	for _, pat := range patterns {
		bytes := make([]int64, len(pat))
		for j, p := range pat {
			bytes[j] = int64(p) * memsys.BlockSize
		}
		s.patterns = append(s.patterns, bytes)
	}
	return s
}

func (s *cplxSource) reset(_ *rand.Rand) {
	s.walkers = make(map[int]*cplxStream)
}

func (s *cplxSource) next(_ *rand.Rand, site int) uint64 {
	st := s.walkers[site]
	if st == nil {
		fp := s.footprint
		if fp > 1<<24 {
			fp = 1 << 24 // per-site areas are spaced 16MB apart
		}
		st = &cplxStream{
			base:      uint64(9)<<28 + uint64(site)<<24,
			pattern:   s.patterns[site%len(s.patterns)],
			footprint: fp,
		}
		st.cur = st.base
		s.walkers[site] = st
	}
	addr := st.cur
	st.cur += uint64(st.pattern[st.pos])
	st.pos = (st.pos + 1) % len(st.pattern)
	if st.cur >= st.base+st.footprint {
		st.cur = st.base
		st.pos = 0
	}
	return addr
}

// --- global stream --------------------------------------------------------

// gsSource emits dense region streams: nearly every line of each 2KB
// region is touched, in a locally jumbled order — the lbm/gcc pattern
// the paper's GS class captures. All load sites share the stream (in
// the program, several IPs of the loop body walk the same region), and
// regions advance in a fixed direction.
type gsSource struct {
	base      uint64
	footprint uint64
	direction int64 // +1 or -1 regions
	density   float64
	window    int // shuffle window in lines

	regionStart uint64
	queue       []uint64 // upcoming line addresses within the region
	qpos        int
}

const gsRegionBytes = 2048
const gsRegionLines = gsRegionBytes / memsys.BlockSize // 32

func newGSSource(footprint uint64, direction int64, density float64, window int) *gsSource {
	if window < 1 {
		window = 1
	}
	return &gsSource{
		base: 17 << 28, footprint: footprint,
		direction: direction, density: density, window: window,
	}
}

func (s *gsSource) reset(rng *rand.Rand) {
	if s.direction >= 0 {
		s.regionStart = s.base
	} else {
		s.regionStart = s.base + s.footprint - gsRegionBytes
	}
	s.queue = nil
	s.qpos = 0
	s.fillRegion(rng)
}

// fillRegion builds the jumbled visit order for the current region.
func (s *gsSource) fillRegion(rng *rand.Rand) {
	s.queue = s.queue[:0]
	lines := make([]int, 0, gsRegionLines)
	for l := 0; l < gsRegionLines; l++ {
		if rng.Float64() < s.density {
			lines = append(lines, l)
		}
	}
	if s.direction < 0 {
		for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
			lines[i], lines[j] = lines[j], lines[i]
		}
	}
	// Jumble within a small window, preserving the global direction.
	for w := 0; w < len(lines); w += s.window {
		end := w + s.window
		if end > len(lines) {
			end = len(lines)
		}
		sub := lines[w:end]
		rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
	}
	for _, l := range lines {
		s.queue = append(s.queue, s.regionStart+uint64(l)*memsys.BlockSize)
	}
	s.qpos = 0
}

func (s *gsSource) next(rng *rand.Rand, _ int) uint64 {
	if s.qpos >= len(s.queue) {
		// Advance to the next region (wrapping within the footprint).
		nr := int64(s.regionStart) + s.direction*gsRegionBytes
		if nr < int64(s.base) || uint64(nr) >= s.base+s.footprint {
			if s.direction >= 0 {
				nr = int64(s.base)
			} else {
				nr = int64(s.base + s.footprint - gsRegionBytes)
			}
		}
		s.regionStart = uint64(nr)
		s.fillRegion(rng)
		if len(s.queue) == 0 {
			return s.regionStart
		}
	}
	addr := s.queue[s.qpos]
	s.qpos++
	return addr
}

// --- irregular ------------------------------------------------------------

// irregularSource emits low-spatial-locality accesses over a large
// footprint (mcf/omnetpp-like). A reuse fraction re-touches recent
// blocks to give prefetch-resistant temporal behaviour.
type irregularSource struct {
	base      uint64
	footprint uint64
	reuse     float64
	histCap   int

	hist []uint64
	pos  int
}

func newIrregularSource(footprint uint64, reuse float64) *irregularSource {
	return &irregularSource{
		base: 33 << 28, footprint: footprint,
		reuse: reuse, histCap: 64,
	}
}

func (s *irregularSource) reset(_ *rand.Rand) {
	s.hist = s.hist[:0]
	s.pos = 0
}

func (s *irregularSource) next(rng *rand.Rand, _ int) uint64 {
	if len(s.hist) > 8 && rng.Float64() < s.reuse {
		return s.hist[rng.Intn(len(s.hist))]
	}
	blocks := s.footprint / memsys.BlockSize
	addr := s.base + uint64(rng.Int63n(int64(blocks)))*memsys.BlockSize
	if len(s.hist) < s.histCap {
		s.hist = append(s.hist, addr)
	} else {
		s.hist[s.pos%s.histCap] = addr
		s.pos++
	}
	return addr
}

// --- small working set (compute-bound) -------------------------------------

// hotSource loops over a small footprint that fits in the L1/L2, so
// demand misses are rare (xalancbmk-like compute-bound behaviour).
type hotSource struct {
	base      uint64
	footprint uint64
	cur       uint64
}

func newHotSource(footprint uint64) *hotSource {
	return &hotSource{base: 49 << 28, footprint: footprint}
}

func (s *hotSource) reset(_ *rand.Rand) { s.cur = s.base }

func (s *hotSource) next(_ *rand.Rand, _ int) uint64 {
	addr := s.cur
	// Word-granular walk: a hot loop re-touches each line many times,
	// keeping the L1 miss rate genuinely low.
	s.cur += 8
	if s.cur >= s.base+s.footprint {
		s.cur = s.base
	}
	return addr
}

// --- phase mixing ----------------------------------------------------------

// phaseSource alternates among child sources every phaseLen memory
// operations (mcf-like phase behaviour: regular stretches, then
// pointer-chasing stretches).
type phaseSource struct {
	children []source
	phaseLen int

	cur   int
	count int
}

func newPhaseSource(phaseLen int, children ...source) *phaseSource {
	return &phaseSource{children: children, phaseLen: max(1, phaseLen)}
}

func (s *phaseSource) reset(rng *rand.Rand) {
	s.cur, s.count = 0, 0
	for _, c := range s.children {
		c.reset(rng)
	}
}

func (s *phaseSource) next(rng *rand.Rand, site int) uint64 {
	if s.count >= s.phaseLen {
		s.count = 0
		s.cur = (s.cur + 1) % len(s.children)
	}
	s.count++
	return s.children[s.cur].next(rng, site)
}

// --- interleaving -----------------------------------------------------------

// mixSource statically routes load sites to children with the given
// weights, modelling loop bodies whose sites mix pattern kinds (site k
// always feeds from the same child, so per-IP behaviour is stable).
type mixSource struct {
	children []source
	order    []int
}

func newMixSource(children []source, weights []int) *mixSource {
	m := &mixSource{children: children}
	for i, w := range weights {
		for j := 0; j < w; j++ {
			m.order = append(m.order, i)
		}
	}
	return m
}

func (m *mixSource) reset(rng *rand.Rand) {
	for _, c := range m.children {
		c.reset(rng)
	}
}

func (m *mixSource) next(rng *rand.Rand, site int) uint64 {
	c := m.children[m.order[site%len(m.order)]]
	return c.next(rng, site)
}

// --- wide IP fan-out ---------------------------------------------------------

// manyIPSource gives every load site its own stride stream; paired
// with a large loop body it floods the 64-entry IP table
// (cactuBSSN-like), so per-IP classifiers thrash.
type manyIPSource struct {
	numStreams int
	base       uint64
	footprint  uint64
	stride     int64

	curs []uint64
}

func newManyIPSource(numStreams int, footprint uint64, strideBlocks int) *manyIPSource {
	return &manyIPSource{
		numStreams: numStreams, base: 57 << 28, footprint: footprint,
		stride: int64(strideBlocks) * memsys.BlockSize,
	}
}

func (s *manyIPSource) reset(_ *rand.Rand) {
	s.curs = make([]uint64, s.numStreams)
	per := s.footprint / uint64(s.numStreams)
	for i := range s.curs {
		s.curs[i] = s.base + uint64(i)*per
	}
}

func (s *manyIPSource) next(_ *rand.Rand, site int) uint64 {
	i := site % s.numStreams
	per := s.footprint / uint64(s.numStreams)
	addr := s.curs[i]
	s.curs[i] += uint64(s.stride)
	if s.curs[i] >= s.base+uint64(i)*per+per {
		s.curs[i] = s.base + uint64(i)*per
	}
	return addr
}
