package workload

import "ipcp/internal/trace"

// cloudStream builds a server-like workload: a loop body far larger
// than the L1-I (so the front-end misses), mostly irregular data
// accesses with a modest temporal set, and occasional short streams —
// the mix for which spatial prefetchers barely help (paper §VI-D,
// Fig. 14a).
func cloudStream(codeBlocks, memEvery, dwell int, dataSrc func() source) func(int64) trace.Stream {
	return func(seed int64) trace.Stream {
		g := newGen(seed, memEvery, 13, 0.15)
		g.codeBlocks = codeBlocks
		g.dwell = dwell
		g.takenBias = 0.15
		g.depFrac = 0.5 // server code chases objects and indirections
		g.src = dataSrc()
		return g
	}
}

func cloud(name string, newStream func(int64) trace.Stream) {
	register(Spec{
		Name: name, Benchmark: "cloudsuite/" + name, Class: ClassCloud,
		MemIntensive: true, Suite: "cloud", NewStream: newStream,
	})
}

func init() {
	cloud("cassandra", cloudStream(2048, 4, 3, func() source {
		return newMixSource(
			[]source{newIrregularSource(64*MB, 0.4), newGSSource(8*MB, +1, 0.85, 4)},
			[]int{3, 1})
	}))
	cloud("classification", cloudStream(3072, 4, 3, func() source {
		return newIrregularSource(96*MB, 0.3)
	}))
	cloud("cloud9", cloudStream(1536, 5, 3, func() source {
		return newMixSource(
			[]source{newIrregularSource(48*MB, 0.45), newStrideSource([]int{1}, 8*MB)},
			[]int{3, 1})
	}))
	cloud("nutch", cloudStream(2048, 5, 3, func() source {
		return newMixSource(
			[]source{newIrregularSource(64*MB, 0.5), newHotSource(512 * 1024)},
			[]int{2, 1})
	}))
	cloud("streaming", cloudStream(1024, 4, 4, func() source {
		return newMixSource(
			[]source{newGSSource(32*MB, +1, 0.9, 3), newIrregularSource(32*MB, 0.4)},
			[]int{2, 2})
	}))
}
