package workload

import (
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/trace"
)

func TestRegistryLookups(t *testing.T) {
	if len(All()) < 30 {
		t.Fatalf("only %d workloads registered", len(All()))
	}
	if _, err := Named("lbm-94"); err != nil {
		t.Errorf("lbm-94 missing: %v", err)
	}
	if _, err := Named("nope"); err == nil {
		t.Error("unknown workload did not error")
	}
	mi := MemoryIntensive()
	if len(mi) < 20 {
		t.Errorf("memory-intensive set too small: %d", len(mi))
	}
	for _, s := range mi {
		if !s.MemIntensive || s.Suite != "spec" {
			t.Errorf("%s wrongly in memory-intensive set", s.Name)
		}
	}
	if got := len(Suite("cloud")); got != 5 {
		t.Errorf("cloud suite size = %d, want 5", got)
	}
	if got := len(Suite("nn")); got != 7 {
		t.Errorf("nn suite size = %d, want 7", got)
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"bwaves-98", "mcf-994", "lbm-94", "cassandra", "vgg19", "xz-3167"} {
		s, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		a := trace.Collect(s.New(7), 5000)
		b := trace.Collect(s.New(7), 5000)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs: %+v vs %+v", name, i, a[i], b[i])
			}
		}
		// A different seed must give a different stream for workloads
		// with randomness (skip pure-stride ones, which are
		// seed-independent by design).
	}
}

func TestResetReplays(t *testing.T) {
	s, _ := Named("gcc-2226")
	st := s.New(3)
	a := trace.Collect(st, 2000)
	st.Reset()
	b := trace.Collect(st, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Reset did not replay: instr %d differs", i)
		}
	}
}

// classify runs a generator and reports basic shape metrics.
type shape struct {
	memOps     int
	branches   int
	distinctIP map[uint64]bool
	addrs      []uint64
}

func sample(s Spec, n int) shape {
	st := s.New(1)
	sh := shape{distinctIP: map[uint64]bool{}}
	var in trace.Instr
	for i := 0; i < n; i++ {
		st.Next(&in)
		if in.IsBranch {
			sh.branches++
		}
		addr := in.Loads[0]
		if addr == 0 {
			addr = in.Stores[0]
		}
		if addr != 0 {
			sh.memOps++
			sh.distinctIP[in.IP] = true
			sh.addrs = append(sh.addrs, addr)
		}
	}
	return sh
}

// dedupeBlocks collapses consecutive accesses to the same cache line
// (dwell repeats) into one block number.
func dedupeBlocks(addrs []uint64) []uint64 {
	var out []uint64
	for _, a := range addrs {
		b := memsys.BlockNumber(a)
		if len(out) == 0 || out[len(out)-1] != b {
			out = append(out, b)
		}
	}
	return out
}

func TestStridePatternIsConstant(t *testing.T) {
	s, _ := Named("bwaves-2931")
	sh := sample(s, 20000)
	// Single stream: after collapsing dwell repeats, block deltas must
	// be the constant stride 3 (modulo footprint wrap).
	blocks := dedupeBlocks(sh.addrs)
	wrap := 0
	for i := 1; i < len(blocks); i++ {
		if int64(blocks[i])-int64(blocks[i-1]) != 3 {
			wrap++
		}
	}
	if wrap > 2 {
		t.Errorf("non-stride-3 deltas: %d of %d", wrap, len(blocks))
	}
}

func TestComplexPatternRepeats(t *testing.T) {
	src := newCplxSource([][]int{{1, 2}}, 8*MB)
	src.reset(nil)
	var deltas []int64
	prev := src.next(nil, 0)
	for i := 0; i < 20; i++ {
		a := src.next(nil, 0)
		deltas = append(deltas, int64(memsys.BlockNumber(a))-int64(memsys.BlockNumber(prev)))
		prev = a
	}
	for i, d := range deltas {
		want := int64(1)
		if i%2 == 1 {
			want = 2
		}
		if d != want {
			t.Fatalf("delta[%d] = %d, want %d (pattern 1,2)", i, d, want)
		}
	}
}

func TestGSRegionDensity(t *testing.T) {
	s, _ := Named("gcc-2226")
	sh := sample(s, 60000)
	// Group accesses by 2KB region; dense regions must dominate.
	regions := map[uint64]map[uint64]bool{}
	for _, a := range sh.addrs {
		r := a / gsRegionBytes
		if regions[r] == nil {
			regions[r] = map[uint64]bool{}
		}
		regions[r][memsys.BlockNumber(a)] = true
	}
	dense := 0
	for _, lines := range regions {
		if len(lines) >= gsRegionLines*3/4 {
			dense++
		}
	}
	if dense < len(regions)/2 {
		t.Errorf("dense regions %d of %d; GS workload not dense", dense, len(regions))
	}
	if len(sh.distinctIP) < 2 {
		t.Error("GS workload must use multiple IPs")
	}
}

func TestIrregularHasLowSpatialLocality(t *testing.T) {
	s, _ := Named("omnetpp-874")
	sh := sample(s, 30000)
	blocks := dedupeBlocks(sh.addrs)
	near := 0
	for i := 1; i < len(blocks); i++ {
		d := int64(blocks[i]) - int64(blocks[i-1])
		if d >= -4 && d <= 4 {
			near++
		}
	}
	frac := float64(near) / float64(len(blocks))
	if frac > 0.2 {
		t.Errorf("irregular workload too local: %.2f of deltas within ±4 blocks", frac)
	}
}

func TestManyIPWorkloadExceedsIPTable(t *testing.T) {
	s, _ := Named("cactuBSSN-3477")
	sh := sample(s, 30000)
	if len(sh.distinctIP) < 128 {
		t.Errorf("cactuBSSN-like workload has only %d IPs; must exceed the 64-entry IP table", len(sh.distinctIP))
	}
}

func TestComputeBoundIsLight(t *testing.T) {
	s, _ := Named("exchange2-387")
	sh := sample(s, 20000)
	if frac := float64(sh.memOps) / 20000; frac > 0.15 {
		t.Errorf("compute-bound workload too memory heavy: %.2f", frac)
	}
	hot, _ := Named("exchange2-387")
	// All accesses within the small hot footprint.
	shh := sample(hot, 20000)
	lo, hi := shh.addrs[0], shh.addrs[0]
	for _, a := range shh.addrs {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi-lo > 1*MB {
		t.Errorf("hot footprint spans %d bytes", hi-lo)
	}
}

func TestCloudWorkloadsHaveBigCode(t *testing.T) {
	s, _ := Named("cassandra")
	st := s.New(1)
	var in trace.Instr
	blocks := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		st.Next(&in)
		blocks[memsys.BlockNumber(in.IP)] = true
	}
	if len(blocks) < 512 {
		t.Errorf("cloud code footprint only %d blocks; want large", len(blocks))
	}
}

func TestPhaseSourceAlternates(t *testing.T) {
	a := newStrideSource([]int{1}, 8*MB)
	b := newIrregularSource(8*MB, 0)
	p := newPhaseSource(10, a, b)
	g := newGen(1, 2, 0, 0)
	g.src = p
	g.Reset()
	// First 10 ops from the stride stream (monotone unit stride).
	var prev uint64
	for i := 0; i < 10; i++ {
		addr := p.next(g.rng, 0)
		if i > 0 && addr != prev+64 {
			t.Fatalf("phase 1 op %d not unit stride", i)
		}
		prev = addr
	}
	// Next op must come from the irregular child (different 256MB
	// area).
	addr := p.next(g.rng, 0)
	if addr>>28 == prev>>28 {
		t.Error("phase did not switch children")
	}
}

func TestAllWorkloadsProduceMemoryTraffic(t *testing.T) {
	for _, s := range All() {
		sh := sample(s, 4000)
		if sh.memOps == 0 {
			t.Errorf("%s: no memory operations", s.Name)
		}
		if sh.branches == 0 {
			t.Errorf("%s: no branches", s.Name)
		}
		for _, a := range sh.addrs {
			if a == 0 {
				t.Errorf("%s: zero address emitted", s.Name)
				break
			}
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	const name = "workload-test-dup"
	mk := func(int64) trace.Stream { return &trace.SliceStream{Instrs: []trace.Instr{{IP: 1}}, Loop: true} }
	Register(Spec{Name: name, Suite: "spec", NewStream: mk})
	defer func() {
		// Keep the registry clean for Names()-driven tests.
		delete(byName, name)
		specs = specs[:len(specs)-1]
	}()
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Spec{Name: name, Suite: "spec", NewStream: mk})
}

func TestRegisterNilStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register with nil NewStream did not panic")
		}
	}()
	Register(Spec{Name: "workload-test-nil"})
}
