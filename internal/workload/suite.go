package workload

import "ipcp/internal/trace"

// genParams configures the loop-shaped instruction stream around a
// source. The L1 miss intensity of a miss-every-line pattern is about
// 1000/(memEvery*dwell) MPKI.
type genParams struct {
	memEvery   int
	dwell      int
	codeBlocks int // loop body size in I-cache blocks (16 instrs each)
	storeFrac  float64
	// depFrac serializes the demand miss stream (see gen.depFrac).
	depFrac float64
}

// build turns params + a source factory into a Spec.New function; a
// fresh generator and source per instantiation so concurrent systems
// never share state.
func build(p genParams, srcf func() source) func(int64) trace.Stream {
	if p.dwell <= 0 {
		p.dwell = 1
	}
	if p.codeBlocks <= 0 {
		p.codeBlocks = 8
	}
	return func(seed int64) trace.Stream {
		g := newGen(seed, p.memEvery, 16, p.storeFrac)
		g.dwell = p.dwell
		g.codeBlocks = p.codeBlocks
		g.depFrac = p.depFrac
		g.src = srcf()
		return g
	}
}

// spec registers one SPEC-like workload.
func spec(name, benchmark string, class Class, memIntensive bool, newStream func(int64) trace.Stream) {
	register(Spec{
		Name: name, Benchmark: benchmark, Class: class,
		MemIntensive: memIntensive, Suite: "spec", NewStream: newStream,
	})
}

func init() {
	// --- constant-stride scientific codes (CS class territory) ---
	spec("bwaves-98", "603.bwaves_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 16, storeFrac: 0.05, depFrac: 0.10},
			func() source { return newStrideSource([]int{3, 3, 1, 2}, 48*MB) }))
	spec("bwaves-1740", "603.bwaves_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 12, storeFrac: 0.05, depFrac: 0.10},
			func() source { return newStrideSource([]int{3, 5, 2}, 64*MB) }))
	spec("bwaves-2931", "603.bwaves_s", ClassStride, true,
		build(genParams{memEvery: 3, dwell: 16, storeFrac: 0.05, depFrac: 0.08},
			func() source { return newStrideSource([]int{3}, 64*MB) }))
	spec("nab-34", "644.nab_s", ClassStride, true,
		build(genParams{memEvery: 5, dwell: 12, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newStrideSource([]int{1, 2}, 24*MB) }))
	spec("fotonik3d-7084", "649.fotonik3d_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 16, storeFrac: 0.08, depFrac: 0.12},
			func() source { return newStrideSource([]int{1, 1, 1, 2}, 64*MB) }))
	spec("fotonik3d-1176", "649.fotonik3d_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 12, storeFrac: 0.08, depFrac: 0.12},
			func() source {
				return newMixSource(
					[]source{newStrideSource([]int{1, 1}, 64*MB), newGSSource(32*MB, +1, 0.95, 2)},
					[]int{2, 1})
			}))
	spec("wrf-6673", "621.wrf_s", ClassStride, true,
		build(genParams{memEvery: 5, dwell: 12, storeFrac: 0.1, depFrac: 0.12},
			func() source { return newStrideSource([]int{1, 1, 1, 1, 2, 2}, 32*MB) }))
	spec("cam4-490", "627.cam4_s", ClassStride, true,
		build(genParams{memEvery: 5, dwell: 10, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newStrideSource([]int{2, 4, 1}, 32*MB) }))
	spec("roms-1070", "654.roms_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 12, storeFrac: 0.12, depFrac: 0.12},
			func() source { return newStrideSource([]int{1, 2, 1}, 48*MB) }))
	spec("roms-1390", "654.roms_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 12, storeFrac: 0.12, depFrac: 0.12},
			func() source {
				return newMixSource(
					[]source{newStrideSource([]int{1, 3}, 48*MB), newCplxSource([][]int{{2, 2, 3}}, 32*MB)},
					[]int{3, 1})
			}))

	// --- streaming codes (GS class territory) ---
	spec("lbm-94", "619.lbm_s", ClassStream, true,
		build(genParams{memEvery: 3, dwell: 12, storeFrac: 0.25, depFrac: 0.12},
			func() source { return newGSSource(64*MB, +1, 0.97, 3) }))
	spec("lbm-1004", "619.lbm_s", ClassStream, true,
		build(genParams{memEvery: 3, dwell: 12, storeFrac: 0.25, depFrac: 0.12},
			func() source { return newGSSource(64*MB, +1, 0.92, 4) }))
	spec("gcc-2226", "602.gcc_s", ClassStream, true,
		build(genParams{memEvery: 3, dwell: 12, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newGSSource(64*MB, +1, 0.99, 3) }))
	spec("gcc-1850", "602.gcc_s", ClassStream, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.1, depFrac: 0.18},
			func() source {
				return newMixSource(
					[]source{newGSSource(48*MB, +1, 0.9, 3), newIrregularSource(16*MB, 0.3)},
					[]int{4, 1})
			}))
	spec("pop2-17", "628.pop2_s", ClassStream, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.15, depFrac: 0.15},
			func() source {
				return newMixSource(
					[]source{newGSSource(32*MB, -1, 0.9, 3), newStrideSource([]int{1, 2}, 32*MB)},
					[]int{2, 2})
			}))
	spec("imagick-796", "638.imagick_s", ClassStream, false,
		build(genParams{memEvery: 6, dwell: 6, storeFrac: 0.2, depFrac: 0.15},
			func() source { return newGSSource(16*MB, +1, 0.95, 2) }))

	// --- complex-stride codes (CPLX class territory) ---
	spec("mcf-1152", "605.mcf_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.05, depFrac: 0.20},
			func() source { return newStrideSource([]int{2, 6}, 48*MB) }))
	spec("mcf-1536", "605.mcf_s", ClassComplex, true,
		build(genParams{memEvery: 4, dwell: 6, storeFrac: 0.05, depFrac: 0.45},
			func() source {
				return newMixSource(
					[]source{newCplxSource([][]int{{1, 2}, {3, 3, 4}}, 48*MB), newIrregularSource(96*MB, 0.2)},
					[]int{2, 1})
			}))
	spec("mcf-994", "605.mcf_s", ClassIrregular, true,
		build(genParams{memEvery: 4, dwell: 2, storeFrac: 0.05, depFrac: 0.75},
			func() source { return newIrregularSource(128*MB, 0.15) }))
	spec("mcf-1554", "605.mcf_s", ClassMixed, true,
		build(genParams{memEvery: 4, dwell: 6, storeFrac: 0.05, depFrac: 0.40},
			func() source {
				return newPhaseSource(20000,
					newStrideSource([]int{2}, 32*MB),
					newIrregularSource(96*MB, 0.2),
					newCplxSource([][]int{{1, 2}}, 32*MB))
			}))
	spec("x264-12", "625.x264_s", ClassComplex, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.15, depFrac: 0.20},
			func() source { return newCplxSource([][]int{{1, 1, 2}, {2, 3}}, 24*MB) }))
	spec("parest-12", "510.parest_r", ClassComplex, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.1, depFrac: 0.20},
			func() source {
				return newMixSource(
					[]source{newCplxSource([][]int{{3, 3, 4}}, 32*MB), newStrideSource([]int{1}, 16*MB)},
					[]int{2, 1})
			}))
	spec("cactuBSSN-2421", "607.cactuBSSN_s", ClassStride, true,
		build(genParams{memEvery: 3, dwell: 6, codeBlocks: 32, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newManyIPSource(256, 64*MB, 2) }))
	spec("cactuBSSN-3477", "607.cactuBSSN_s", ClassStride, true,
		build(genParams{memEvery: 3, dwell: 6, codeBlocks: 40, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newManyIPSource(256, 64*MB, 1) }))

	// --- irregular codes (prefetch-resistant) ---
	spec("omnetpp-17", "620.omnetpp_s", ClassIrregular, true,
		build(genParams{memEvery: 5, dwell: 2, storeFrac: 0.1, depFrac: 0.70},
			func() source { return newIrregularSource(96*MB, 0.35) }))
	spec("omnetpp-874", "620.omnetpp_s", ClassIrregular, true,
		build(genParams{memEvery: 4, dwell: 2, storeFrac: 0.1, depFrac: 0.75},
			func() source { return newIrregularSource(128*MB, 0.25) }))
	spec("xalancbmk-165", "623.xalancbmk_s", ClassIrregular, true,
		build(genParams{memEvery: 5, dwell: 6, storeFrac: 0.1, depFrac: 0.55},
			func() source {
				return newMixSource(
					[]source{newIrregularSource(48*MB, 0.5), newHotSource(256 * 1024)},
					[]int{1, 2})
			}))
	spec("xz-3167", "657.xz_s", ClassMixed, true,
		build(genParams{memEvery: 4, dwell: 8, storeFrac: 0.2, depFrac: 0.30},
			func() source {
				return newPhaseSource(30000,
					newGSSource(32*MB, +1, 0.9, 4),
					newIrregularSource(64*MB, 0.3))
			}))
	spec("xz-2302", "657.xz_s", ClassMixed, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.2, depFrac: 0.35},
			func() source {
				return newMixSource(
					[]source{newStrideSource([]int{1}, 32*MB), newIrregularSource(64*MB, 0.3)},
					[]int{1, 1})
			}))
	spec("blender-1024", "526.blender_r", ClassMixed, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.1, depFrac: 0.25},
			func() source {
				return newMixSource(
					[]source{newStrideSource([]int{1, 2}, 32*MB), newIrregularSource(32*MB, 0.4)},
					[]int{2, 1})
			}))

	// --- compute-bound / low-MPKI (full-suite dilution) ---
	spec("exchange2-387", "648.exchange2_s", ClassCompute, false,
		build(genParams{memEvery: 16, dwell: 1, storeFrac: 0.05, depFrac: 0.30},
			func() source { return newHotSource(96 * 1024) }))
	spec("leela-1083", "641.leela_s", ClassCompute, false,
		build(genParams{memEvery: 12, dwell: 1, storeFrac: 0.05, depFrac: 0.30},
			func() source { return newHotSource(128 * 1024) }))
	spec("deepsjeng-1164", "631.deepsjeng_s", ClassCompute, false,
		build(genParams{memEvery: 10, dwell: 1, storeFrac: 0.05, depFrac: 0.35},
			func() source {
				return newMixSource(
					[]source{newHotSource(192 * 1024), newIrregularSource(8*MB, 0.5)},
					[]int{5, 1})
			}))
	spec("povray-800", "511.povray_r", ClassCompute, false,
		build(genParams{memEvery: 14, dwell: 1, storeFrac: 0.05, depFrac: 0.30},
			func() source { return newHotSource(64 * 1024) }))
	spec("perlbench-105", "600.perlbench_s", ClassCompute, false,
		build(genParams{memEvery: 8, dwell: 2, storeFrac: 0.1, depFrac: 0.45},
			func() source {
				return newMixSource(
					[]source{newHotSource(256 * 1024), newIrregularSource(4*MB, 0.5)},
					[]int{4, 1})
			}))
	spec("gcc-734", "602.gcc_s", ClassCompute, false,
		build(genParams{memEvery: 8, dwell: 2, storeFrac: 0.1, depFrac: 0.35},
			func() source {
				return newMixSource(
					[]source{newHotSource(256 * 1024), newStrideSource([]int{1}, 8*MB)},
					[]int{3, 1})
			}))
	spec("xalancbmk-700", "623.xalancbmk_s", ClassCompute, false,
		build(genParams{memEvery: 10, dwell: 1, storeFrac: 0.1, depFrac: 0.40},
			func() source { return newHotSource(384 * 1024) }))
}

// Additional trace points: like DPC-3's multiple sim-points per
// benchmark, these sample other phases/parameter mixes of the same
// programs, growing the memory-intensive set toward the paper's 46.
func init() {
	spec("bwaves-1861", "603.bwaves_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 12, storeFrac: 0.05, depFrac: 0.10},
			func() source { return newStrideSource([]int{2, 3, 3, 1, 5}, 56*MB) }))
	spec("lbm-2677", "619.lbm_s", ClassStream, true,
		build(genParams{memEvery: 3, dwell: 10, storeFrac: 0.3, depFrac: 0.12},
			func() source { return newGSSource(48*MB, +1, 0.95, 5) }))
	spec("mcf-484", "605.mcf_s", ClassIrregular, true,
		build(genParams{memEvery: 5, dwell: 3, storeFrac: 0.05, depFrac: 0.65},
			func() source {
				return newMixSource(
					[]source{newIrregularSource(96*MB, 0.3), newStrideSource([]int{1}, 16*MB)},
					[]int{3, 1})
			}))
	spec("fotonik3d-8225", "649.fotonik3d_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 14, storeFrac: 0.08, depFrac: 0.12},
			func() source { return newStrideSource([]int{1, 2, 1, 1}, 48*MB) }))
	spec("roms-294", "654.roms_s", ClassStride, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.12, depFrac: 0.12},
			func() source {
				return newMixSource(
					[]source{newStrideSource([]int{2, 2}, 40*MB), newGSSource(24*MB, +1, 0.92, 3)},
					[]int{2, 1})
			}))
	spec("wrf-8065", "621.wrf_s", ClassStride, true,
		build(genParams{memEvery: 5, dwell: 10, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newStrideSource([]int{1, 1, 3, 2}, 40*MB) }))
	spec("cam4-1905", "627.cam4_s", ClassMixed, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.1, depFrac: 0.2},
			func() source {
				return newPhaseSource(25000,
					newStrideSource([]int{2, 4}, 32*MB),
					newGSSource(16*MB, +1, 0.9, 3))
			}))
	spec("pop2-562", "628.pop2_s", ClassStream, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.15, depFrac: 0.15},
			func() source { return newGSSource(40*MB, -1, 0.93, 3) }))
	spec("omnetpp-340", "620.omnetpp_s", ClassIrregular, true,
		build(genParams{memEvery: 5, dwell: 2, storeFrac: 0.1, depFrac: 0.6},
			func() source {
				return newMixSource(
					[]source{newIrregularSource(64*MB, 0.4), newHotSource(384 * 1024)},
					[]int{2, 1})
			}))
	spec("xz-667", "657.xz_s", ClassMixed, true,
		build(genParams{memEvery: 5, dwell: 6, storeFrac: 0.2, depFrac: 0.3},
			func() source {
				return newPhaseSource(40000,
					newStrideSource([]int{1, 1}, 24*MB),
					newIrregularSource(48*MB, 0.35))
			}))
	spec("x264-39", "625.x264_s", ClassComplex, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.15, depFrac: 0.2},
			func() source { return newCplxSource([][]int{{2, 2, 3}, {1, 2}}, 20*MB) }))
	spec("parest-1285", "510.parest_r", ClassComplex, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.1, depFrac: 0.25},
			func() source {
				return newMixSource(
					[]source{newCplxSource([][]int{{1, 2}}, 24*MB), newIrregularSource(24*MB, 0.3)},
					[]int{2, 1})
			}))
	spec("gcc-56", "602.gcc_s", ClassStream, true,
		build(genParams{memEvery: 4, dwell: 10, storeFrac: 0.1, depFrac: 0.18},
			func() source { return newGSSource(32*MB, +1, 0.97, 2) }))
	spec("blender-981", "526.blender_r", ClassMixed, true,
		build(genParams{memEvery: 5, dwell: 8, storeFrac: 0.1, depFrac: 0.22},
			func() source {
				return newMixSource(
					[]source{newGSSource(16*MB, +1, 0.9, 4), newIrregularSource(24*MB, 0.45)},
					[]int{1, 1})
			}))
	spec("nab-7994", "644.nab_s", ClassStride, true,
		build(genParams{memEvery: 5, dwell: 12, storeFrac: 0.1, depFrac: 0.15},
			func() source { return newStrideSource([]int{3, 1}, 20*MB) }))
}
