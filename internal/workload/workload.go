// Package workload provides deterministic synthetic instruction-stream
// generators standing in for the paper's SPEC CPU 2017, CloudSuite and
// CNN/RNN traces (which are not redistributable). Each generator
// reproduces the *access-pattern class* its namesake benchmark exhibits
// — constant strides, complex repeating strides, dense streaming
// regions, or irregular low-locality accesses — because those classes
// are what the paper's IP classifier keys on and what determines the
// relative ranking of prefetchers. See DESIGN.md §4 for the
// substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ipcp/internal/memsys"
	"ipcp/internal/trace"
)

// Class buckets generators by their dominant access pattern.
type Class string

const (
	ClassStride    Class = "stride"    // constant-stride dominant
	ClassComplex   Class = "complex"   // repeating multi-stride pattern
	ClassStream    Class = "stream"    // dense region streaming
	ClassIrregular Class = "irregular" // low spatial locality
	ClassMixed     Class = "mixed"     // phase-alternating
	ClassCompute   Class = "compute"   // low MPKI
	ClassCloud     Class = "cloud"     // server-like
	ClassNN        Class = "nn"        // neural-network-like
)

// Spec is one named workload.
type Spec struct {
	Name string
	// Benchmark is the SPEC/CloudSuite/NN benchmark the generator
	// mimics.
	Benchmark string
	Class     Class
	// MemIntensive marks workloads standing in for the paper's
	// LLC-MPKI ≥ 1 trace set.
	MemIntensive bool
	// Suite is "spec", "cloud" or "nn".
	Suite string

	// NewStream constructs the workload's instruction stream.
	// Implementations must be deterministic per seed.
	NewStream func(seed int64) trace.Stream
}

// New instantiates the workload's instruction stream with the given
// seed. Streams are infinite and deterministic per (spec, seed).
func (s Spec) New(seed int64) trace.Stream { return s.NewStream(seed) }

var specs []Spec
var byName = map[string]int{}

// Register adds a workload to the registry. It panics on a duplicate
// name or a nil NewStream — both are programming errors caught at init
// time, not runtime conditions. Tests that register synthetic
// workloads (e.g. fault-injecting streams) must pick unique names.
func Register(s Spec) {
	if s.NewStream == nil {
		panic(fmt.Sprintf("workload: %q has no NewStream", s.Name))
	}
	if _, dup := byName[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", s.Name))
	}
	byName[s.Name] = len(specs)
	specs = append(specs, s)
}

// register keeps this package's many init-time call sites short.
func register(s Spec) { Register(s) }

// Named returns the workload with the given name.
func Named(name string) (Spec, error) {
	i, ok := byName[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
	}
	return specs[i], nil
}

// All returns every registered workload, sorted by name.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Suite returns the workloads of one suite ("spec", "cloud", "nn"),
// sorted by name.
func Suite(suite string) []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// MemoryIntensive returns the SPEC-like memory-intensive trace set —
// the stand-in for the paper's 46 LLC-MPKI ≥ 1 traces.
func MemoryIntensive() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.Suite == "spec" && s.MemIntensive {
			out = append(out, s)
		}
	}
	return out
}

// Names extracts the names of a spec list.
func Names(ss []Spec) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// --- generator scaffolding ----------------------------------------------

// gen is the common machinery of all generators. It emulates a loop
// nest: the code walks a loop body of codeBlocks cache blocks (16
// instructions per block) and wraps with a taken branch, so every
// memory instruction has a stable instruction pointer — its slot in
// the loop body — exactly as per-IP classifiers see in real traces.
// Concrete pattern generators supply only the address stream.
type gen struct {
	seed int64
	rng  *rand.Rand

	// memEvery makes every memEvery-th loop slot a memory instruction
	// (≥2 so branch slots exist; 1 is clamped to 2).
	memEvery int
	// branchEvery inserts an in-loop branch at slots where
	// slot%branchEvery == branchEvery-1 (0 disables). In-loop
	// branches are mostly not taken; the loop-back branch is taken.
	branchEvery int
	// takenBias is the probability an in-loop branch is taken.
	takenBias float64
	// storeFrac is the fraction of memory ops that are stores.
	storeFrac float64
	// codeBase/codeBlocks define the loop body.
	codeBase   uint64
	codeBlocks int
	// dwell repeats each source-provided cache line for dwell
	// consecutive memory slots at successive word offsets, modelling
	// element-wise walks that touch a line several times (this sets
	// the workload's MPKI: ~1000/(memEvery*dwell) at the L1).
	dwell int
	// depFrac is the stationary fraction of new lines whose first
	// touch is a dependent load (address computed from earlier load
	// data). Dependent lines come in Markov chains (persistence
	// depStick) because pointer chases are consecutive in real code:
	// a chain longer than the ROB window is what actually exposes
	// memory latency. High values give mcf-like serialization; low
	// values bwaves-like independent index walks.
	depFrac float64
	// depStick is the probability of staying in a dependent chain
	// (default 0.75 ⇒ mean chain length 4 lines).
	depStick float64

	slot     int // current slot within the loop body
	memIdx   int // index of the memory slot within this loop pass
	curLine  uint64
	dwellPos int
	depState bool

	src source
}

// source produces memory addresses; concrete pattern generators
// implement it. site identifies the memory instruction slot (dwell
// group) within the loop body, so a source can bind each load site to
// one of its internal streams — giving every instruction pointer a
// consistent access pattern, as in real loop nests. reset must fully
// reinitialize internal state (rng is freshly seeded by the caller).
type source interface {
	next(rng *rand.Rand, site int) (addr uint64)
	reset(rng *rand.Rand)
}

func newGen(seed int64, memEvery, branchEvery int, storeFrac float64) *gen {
	g := &gen{
		seed:        seed,
		memEvery:    max(2, memEvery),
		branchEvery: branchEvery,
		takenBias:   0.08,
		storeFrac:   storeFrac,
		codeBase:    0x40_0000,
		codeBlocks:  8,
		dwell:       1,
		depStick:    0.75,
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reset reinitializes the stream.
func (g *gen) Reset() {
	g.rng = rand.New(rand.NewSource(g.seed))
	g.slot = 0
	g.memIdx = 0
	g.curLine = 0
	g.dwellPos = 0
	g.depState = false
	g.src.reset(g.rng)
}

// loopSlots is the number of instruction slots in the loop body.
func (g *gen) loopSlots() int { return g.codeBlocks * memsys.BlockSize / 4 }

// Next implements trace.Stream.
func (g *gen) Next(in *trace.Instr) bool {
	if g.rng == nil {
		g.Reset()
	}
	in.Reset()
	slots := g.loopSlots()
	in.IP = g.codeBase + uint64(g.slot)*4

	last := g.slot == slots-1
	isMem := !last && g.slot%g.memEvery == g.memEvery-1
	switch {
	case last:
		// Loop-back branch, always taken.
		in.IsBranch = true
		in.Taken = true
		in.Target = g.codeBase
	case isMem:
		firstTouch := g.dwellPos == 0
		if firstTouch {
			site := g.memIdx / g.dwell
			line := g.src.next(g.rng, site)
			g.curLine = memsys.BlockAlign(line)
			if g.curLine == 0 {
				g.curLine = memsys.BlockSize
			}
		}
		// Word offsets wrap within the 64-byte line for dwell > 8
		// (revisiting words, as reduction loops do).
		addr := g.curLine + uint64(g.dwellPos*8)%memsys.BlockSize
		g.dwellPos++
		if g.dwellPos >= g.dwell {
			g.dwellPos = 0
		}
		g.memIdx++
		if firstTouch && g.depFrac > 0 && g.depFrac < 1 {
			// Two-state Markov chain with stationary probability
			// depFrac and persistence depStick.
			if g.depState {
				g.depState = g.rng.Float64() < g.depStick
			} else {
				enter := g.depFrac * (1 - g.depStick) / (1 - g.depFrac)
				g.depState = g.rng.Float64() < enter
			}
		} else if firstTouch && g.depFrac >= 1 {
			g.depState = true
		}
		if g.storeFrac > 0 && g.rng.Float64() < g.storeFrac {
			in.Stores[0] = addr
		} else {
			in.Loads[0] = addr
			// Every access of a dependent line waits: they are all
			// fields behind the not-yet-loaded pointer. (Siblings
			// chain through each other, which resolves immediately
			// once the line's fill returns.)
			in.DepPrev = g.depState
		}
	case g.branchEvery > 0 && g.slot%g.branchEvery == g.branchEvery-1:
		// In-loop branch (an if that mostly falls through).
		in.IsBranch = true
		in.Taken = g.rng.Float64() < g.takenBias
		in.Target = in.IP + 8
	}
	g.slot++
	if g.slot >= slots {
		g.slot = 0
		g.memIdx = 0
		g.dwellPos = 0
	}
	return true
}

// SetDepFrac overrides the dependent-load fraction of a generator
// produced by this package (no-op for other streams). Experiments use
// it for sensitivity sweeps.
func SetDepFrac(s trace.Stream, f float64) {
	if g, ok := s.(*gen); ok {
		g.depFrac = f
	}
}
