package vmem

// Snapshot/restore support. The virtual-memory state is pure data (page
// maps, TLB arrays) except for the allocator's shuffle RNG, whose
// internal state math/rand does not expose. Rather than serializing RNG
// internals we record the number of Alloc draws and replay them against
// a freshly seeded allocator on restore — deterministic because the
// allocator's output is a pure function of (seed, draw count).

// PhysAllocatorState captures a PhysAllocator for replay-based restore.
type PhysAllocatorState struct {
	Allocs uint64
}

// Allocs returns the number of Alloc calls made so far.
func (a *PhysAllocator) Allocs() uint64 { return a.allocs }

// State captures the allocator's position in its deterministic stream.
func (a *PhysAllocator) State() PhysAllocatorState {
	return PhysAllocatorState{Allocs: a.allocs}
}

// Replay advances a freshly constructed allocator (same seed as the
// captured one) to the captured position by re-drawing; after Replay the
// allocator's future output is identical to the original's.
func (a *PhysAllocator) Replay(s PhysAllocatorState) {
	for a.allocs < s.Allocs {
		a.Alloc()
	}
}

// PageTableState is the mapped-page set of one address space.
type PageTableState struct {
	Pages map[uint64]uint64
}

// State copies the page map.
func (pt *PageTable) State() PageTableState {
	pages := make(map[uint64]uint64, len(pt.pages))
	for v, p := range pt.pages {
		pages[v] = p
	}
	return PageTableState{Pages: pages}
}

// SetState replaces the page map with a copy of s.
func (pt *PageTable) SetState(s PageTableState) {
	pt.pages = make(map[uint64]uint64, len(s.Pages))
	for v, p := range s.Pages {
		pt.pages[v] = p
	}
}

// TLBEntryState is one captured TLB slot.
type TLBEntryState struct {
	VPage uint64
	Valid bool
	LRU   uint64
}

// TLBState captures a TLB's entries, LRU clock and hit counters.
type TLBState struct {
	Entries []TLBEntryState
	Tick    uint64
	Hits    uint64
	Misses  uint64
}

// State captures the TLB contents.
func (t *TLB) State() TLBState {
	s := TLBState{
		Entries: make([]TLBEntryState, len(t.entries)),
		Tick:    t.tick,
		Hits:    t.Hits,
		Misses:  t.Misses,
	}
	for i, e := range t.entries {
		s.Entries[i] = TLBEntryState{VPage: e.vpage, Valid: e.valid, LRU: e.lru}
	}
	return s
}

// SetState restores the TLB contents. The geometry must match the
// capture; mismatched entry counts panic rather than silently corrupt.
func (t *TLB) SetState(s TLBState) {
	if len(s.Entries) != len(t.entries) {
		panic("vmem: TLB state geometry mismatch")
	}
	for i, e := range s.Entries {
		t.entries[i] = tlbEntry{vpage: e.VPage, valid: e.Valid, lru: e.LRU}
	}
	t.tick = s.Tick
	t.Hits = s.Hits
	t.Misses = s.Misses
}

// HierarchyState captures both TLB levels.
type HierarchyState struct {
	DTLB TLBState
	STLB TLBState
}

// State captures the TLB hierarchy.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{DTLB: h.DTLB.State(), STLB: h.STLB.State()}
}

// SetState restores the TLB hierarchy.
func (h *Hierarchy) SetState(s HierarchyState) {
	h.DTLB.SetState(s.DTLB)
	h.STLB.SetState(s.STLB)
}
