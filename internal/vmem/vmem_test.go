package vmem

import (
	"testing"
	"testing/quick"

	"ipcp/internal/memsys"
)

func TestTranslateStable(t *testing.T) {
	pt := NewPageTable(NewPhysAllocator(1))
	a := pt.Translate(0x1234)
	b := pt.Translate(0x1234)
	if a != b {
		t.Fatalf("translation not stable: %#x vs %#x", a, b)
	}
	if a&(memsys.PageSize-1) != 0x234 {
		t.Errorf("page offset not preserved: %#x", a)
	}
}

func TestTranslateDistinctPages(t *testing.T) {
	pt := NewPageTable(NewPhysAllocator(1))
	seen := make(map[uint64]uint64)
	for v := uint64(0); v < 200; v++ {
		p := pt.Translate(v << memsys.PageBits)
		pp := memsys.PageNumber(p)
		if prev, dup := seen[pp]; dup {
			t.Fatalf("physical page %d mapped twice (vpages %d and %d)", pp, prev, v)
		}
		seen[pp] = v
	}
	if pt.Mapped() != 200 {
		t.Errorf("Mapped = %d, want 200", pt.Mapped())
	}
}

func TestTranslateBijectionProperty(t *testing.T) {
	pt := NewPageTable(NewPhysAllocator(42))
	fwd := make(map[uint64]uint64)
	rev := make(map[uint64]uint64)
	f := func(v uint64) bool {
		vp := memsys.PageNumber(v)
		pp := memsys.PageNumber(pt.Translate(v))
		if prev, ok := fwd[vp]; ok && prev != pp {
			return false // mapping changed
		}
		if prev, ok := rev[pp]; ok && prev != vp {
			return false // two vpages share a frame
		}
		fwd[vp], rev[pp] = pp, vp
		// offset preservation
		return pt.Translate(v)&(memsys.PageSize-1) == v&(memsys.PageSize-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTranslateExisting(t *testing.T) {
	pt := NewPageTable(NewPhysAllocator(1))
	if _, ok := pt.TranslateExisting(0x5000); ok {
		t.Fatal("unmapped page reported as existing")
	}
	want := pt.Translate(0x5000)
	got, ok := pt.TranslateExisting(0x5abc)
	if !ok {
		t.Fatal("mapped page reported as missing")
	}
	if memsys.PageNumber(got) != memsys.PageNumber(want) {
		t.Errorf("TranslateExisting frame mismatch")
	}
	if pt.Mapped() != 1 {
		t.Errorf("TranslateExisting must not allocate, Mapped = %d", pt.Mapped())
	}
}

func TestAllocatorUnique(t *testing.T) {
	a := NewPhysAllocator(3)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		p := a.Alloc()
		if seen[p] {
			t.Fatalf("frame %d allocated twice", p)
		}
		seen[p] = true
	}
}

func TestAllocatorDeterministic(t *testing.T) {
	a, b := NewPhysAllocator(9), NewPhysAllocator(9)
	for i := 0; i < 500; i++ {
		if x, y := a.Alloc(), b.Alloc(); x != y {
			t.Fatalf("allocation %d differs: %d vs %d", i, x, y)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4, 2)
	if tlb.Lookup(100) {
		t.Error("first lookup must miss")
	}
	if !tlb.Lookup(100) {
		t.Error("second lookup must hit")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Errorf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(1, 2) // single set, 2 ways
	tlb.Lookup(1)       // miss, insert
	tlb.Lookup(2)       // miss, insert
	tlb.Lookup(1)       // hit; 2 becomes LRU
	tlb.Lookup(3)       // miss, evicts 2
	if !tlb.Lookup(1) {
		t.Error("1 should still be resident")
	}
	if tlb.Lookup(2) {
		t.Error("2 should have been evicted")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	for _, bad := range []struct{ sets, ways int }{{0, 2}, {3, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB(%d,%d) did not panic", bad.sets, bad.ways)
				}
			}()
			NewTLB(bad.sets, bad.ways)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	v := memsys.Addr(0x7000_0000)
	// Cold: full walk.
	if got := h.AccessLatency(v); got != h.STLBLatency+h.WalkLatency {
		t.Errorf("cold access latency = %d", got)
	}
	// Warm: DTLB hit.
	if got := h.AccessLatency(v); got != 0 {
		t.Errorf("warm access latency = %d", got)
	}
	if h.DTLB.Size() != 64 || h.STLB.Size() != 1536 {
		t.Errorf("TLB sizes = %d/%d, want 64/1536", h.DTLB.Size(), h.STLB.Size())
	}
}

func TestHierarchySTLBHit(t *testing.T) {
	h := NewHierarchy()
	// Touch enough pages mapping to the same DTLB set to evict the
	// first from the DTLB but keep it in the larger STLB.
	base := uint64(0x100)
	h.AccessLatency(memsys.Addr(base << memsys.PageBits))
	for i := 1; i <= 8; i++ {
		// Same DTLB set (16 sets): stride of 16 pages.
		h.AccessLatency(memsys.Addr((base + uint64(i)*16) << memsys.PageBits))
	}
	if got := h.AccessLatency(memsys.Addr(base << memsys.PageBits)); got != h.STLBLatency {
		t.Errorf("expected STLB-hit latency %d, got %d", h.STLBLatency, got)
	}
}
