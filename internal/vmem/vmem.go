// Package vmem models the virtual memory system: per-core page tables
// with first-touch physical page allocation, and a two-level TLB whose
// miss latency is charged to demand accesses before they reach the
// L1-D.
//
// The paper's L1-D is virtually indexed and physically tagged, and IPCP
// trains on virtual addresses at the L1; the simulator therefore keeps
// both the virtual and physical address on every request, and this
// package provides the mapping between them.
package vmem

import (
	"math/rand"

	"ipcp/internal/memsys"
)

// PhysAllocator hands out physical page frames. Frames are allocated in
// a shuffled order so that physically indexed structures (the L2, LLC
// and DRAM banks) do not see artificially contiguous physical pages —
// matching how a real OS's free list behaves after some uptime.
type PhysAllocator struct {
	next uint64
	rng  *rand.Rand
	// window holds a small shuffle buffer of upcoming frame numbers.
	window []uint64
	// allocs counts Alloc calls: the allocator's output is a pure
	// function of (seed, allocs), which is what snapshot restore replays.
	allocs uint64
}

// NewPhysAllocator returns an allocator seeded deterministically.
func NewPhysAllocator(seed int64) *PhysAllocator {
	return &PhysAllocator{next: 1, rng: rand.New(rand.NewSource(seed))}
}

// Alloc returns the next free physical page number.
func (a *PhysAllocator) Alloc() uint64 {
	const windowSize = 64
	if len(a.window) == 0 {
		a.window = make([]uint64, windowSize)
		for i := range a.window {
			a.window[i] = a.next
			a.next++
		}
		a.rng.Shuffle(len(a.window), func(i, j int) {
			a.window[i], a.window[j] = a.window[j], a.window[i]
		})
	}
	p := a.window[len(a.window)-1]
	a.window = a.window[:len(a.window)-1]
	a.allocs++
	return p
}

// PageTable maps one address space's virtual pages to physical pages,
// allocating on first touch.
type PageTable struct {
	alloc *PhysAllocator
	pages map[uint64]uint64

	// gate, when set, is called before each first-touch frame
	// allocation. The parallel simulation engine installs one to
	// serialize draws from the shared PhysAllocator into the
	// sequential scheduler's canonical core order; translation of
	// already-mapped pages never pays it.
	gate func()
}

// SetAllocGate installs (or, with nil, removes) the hook called before
// every first-touch allocation from the shared allocator.
func (pt *PageTable) SetAllocGate(gate func()) { pt.gate = gate }

// NewPageTable returns an empty page table drawing frames from alloc.
func NewPageTable(alloc *PhysAllocator) *PageTable {
	return &PageTable{alloc: alloc, pages: make(map[uint64]uint64)}
}

// Translate maps a virtual byte address to a physical byte address,
// allocating a frame on first touch.
func (pt *PageTable) Translate(v memsys.Addr) memsys.Addr {
	vpage := memsys.PageNumber(v)
	ppage, ok := pt.pages[vpage]
	if !ok {
		if pt.gate != nil {
			pt.gate()
		}
		ppage = pt.alloc.Alloc()
		pt.pages[vpage] = ppage
	}
	return ppage<<memsys.PageBits | v&(memsys.PageSize-1)
}

// TranslateExisting is like Translate but reports whether the page was
// already mapped instead of allocating. Prefetchers use it so that a
// bogus prefetch address does not fault in pages.
func (pt *PageTable) TranslateExisting(v memsys.Addr) (memsys.Addr, bool) {
	ppage, ok := pt.pages[memsys.PageNumber(v)]
	if !ok {
		return 0, false
	}
	return ppage<<memsys.PageBits | v&(memsys.PageSize-1), true
}

// Mapped returns the number of mapped pages (the footprint in pages).
func (pt *PageTable) Mapped() int { return len(pt.pages) }

// --- TLBs ----------------------------------------------------------------

// tlbEntry is one TLB slot.
type tlbEntry struct {
	vpage uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation buffer with true-LRU
// replacement. It caches vpage presence only (the page table supplies
// the actual frame; TLB hits/misses purely decide latency).
type TLB struct {
	sets    int
	ways    int
	entries []tlbEntry
	tick    uint64

	Hits   uint64
	Misses uint64
}

// NewTLB returns a TLB with the given geometry. sets must be a power of
// two.
func NewTLB(sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("vmem: TLB sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("vmem: TLB ways must be positive")
	}
	return &TLB{sets: sets, ways: ways, entries: make([]tlbEntry, sets*ways)}
}

// Lookup probes the TLB for vpage, inserting it on a miss, and reports
// whether it hit.
func (t *TLB) Lookup(vpage uint64) bool {
	t.tick++
	set := int(vpage) & (t.sets - 1)
	base := set * t.ways
	victim, victimLRU := base, t.entries[base].lru
	for i := base; i < base+t.ways; i++ {
		e := &t.entries[i]
		if e.valid && e.vpage == vpage {
			e.lru = t.tick
			t.Hits++
			return true
		}
		if !e.valid {
			victim, victimLRU = i, 0
		} else if e.lru < victimLRU {
			victim, victimLRU = i, e.lru
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{vpage: vpage, valid: true, lru: t.tick}
	return false
}

// Size returns the total entry count.
func (t *TLB) Size() int { return t.sets * t.ways }

// Hierarchy bundles the DTLB + shared STLB with their latencies and
// charges a translation latency per data access, as in Table II of the
// paper (64-entry DTLB, 1536-entry shared L2 TLB).
type Hierarchy struct {
	DTLB *TLB
	STLB *TLB

	// STLBLatency is the extra cycles charged on a DTLB miss that hits
	// the STLB; WalkLatency on a full miss.
	STLBLatency int
	WalkLatency int
}

// NewHierarchy returns the paper-configured TLB hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		DTLB:        NewTLB(16, 4),   // 64 entries
		STLB:        NewTLB(128, 12), // 1536 entries
		STLBLatency: 8,
		WalkLatency: 150,
	}
}

// AccessLatency charges the translation of v and returns the extra
// cycles the access must wait before the cache lookup may begin.
func (h *Hierarchy) AccessLatency(v memsys.Addr) int {
	vpage := memsys.PageNumber(v)
	if h.DTLB.Lookup(vpage) {
		return 0
	}
	if h.STLB.Lookup(vpage) {
		return h.STLBLatency
	}
	return h.STLBLatency + h.WalkLatency
}
