// Package faultinject provides test-only fault injectors for the
// robustness suite: instruction streams that panic or die mid-run,
// prefetchers that panic or issue runaway prefetch floods, and byte
// -level trace corrupters. Production code never imports this package;
// it exists so the harness's survival guarantees (panic isolation,
// guard trips, corrupt-trace rejection) are provable by tests instead
// of asserted in prose.
package faultinject

import (
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/trace"
)

// PanicStream wraps an instruction stream and panics on the Nth call
// to Next (1-based). Reset rewinds both the inner stream and the
// countdown, so a warmup+measure run re-arms the bomb.
type PanicStream struct {
	Inner   trace.Stream
	PanicAt uint64 // Next call count that panics; 0 never panics
	calls   uint64
}

// Next implements trace.Stream.
func (s *PanicStream) Next(in *trace.Instr) bool {
	s.calls++
	if s.PanicAt != 0 && s.calls == s.PanicAt {
		panic("faultinject: stream panic")
	}
	return s.Inner.Next(in)
}

// Reset implements trace.Stream.
func (s *PanicStream) Reset() {
	s.calls = 0
	s.Inner.Reset()
}

// DeadStream produces no instructions, even after Reset — the shape of
// an empty or exhausted trace file. The simulator must degrade this to
// an error, never hang or crash.
type DeadStream struct{}

// Next implements trace.Stream.
func (DeadStream) Next(*trace.Instr) bool { return false }

// Reset implements trace.Stream.
func (DeadStream) Reset() {}

// PanicPrefetcher panics on the Nth Operate call (1-based). Wrapped in
// a prefetch.Guard it must trip the guard and let the run complete;
// unguarded it takes the worker down (which Session must contain).
type PanicPrefetcher struct {
	PanicAt uint64 // Operate call count that panics; 0 never panics
	calls   uint64
}

// Name implements prefetch.Prefetcher.
func (p *PanicPrefetcher) Name() string { return "faultinject-panic" }

// Operate implements prefetch.Prefetcher.
func (p *PanicPrefetcher) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	p.calls++
	if p.PanicAt != 0 && p.calls == p.PanicAt {
		panic("faultinject: prefetcher panic")
	}
}

// Fill implements prefetch.Prefetcher.
func (p *PanicPrefetcher) Fill(int64, *prefetch.FillEvent) {}

// Cycle implements prefetch.Prefetcher.
func (p *PanicPrefetcher) Cycle(int64) {}

// RunawayPrefetcher floods the issuer with Flood candidates on every
// Operate — the software model of a broken degree counter. A Guard's
// per-Operate budget must cut it off.
type RunawayPrefetcher struct {
	Flood int
}

// Name implements prefetch.Prefetcher.
func (p *RunawayPrefetcher) Name() string { return "faultinject-runaway" }

// Operate implements prefetch.Prefetcher.
func (p *RunawayPrefetcher) Operate(now int64, a *prefetch.Access, iss prefetch.Issuer) {
	base := a.Addr
	if a.VAddr != 0 {
		base = a.VAddr
	}
	for i := 1; i <= p.Flood; i++ {
		iss.Issue(prefetch.Candidate{Addr: base + memsys.Addr(i)*memsys.BlockSize})
	}
}

// Fill implements prefetch.Prefetcher.
func (p *RunawayPrefetcher) Fill(int64, *prefetch.FillEvent) {}

// Cycle implements prefetch.Prefetcher.
func (p *RunawayPrefetcher) Cycle(int64) {}

// Truncate returns the first n bytes of a serialized trace (a copy) —
// a download cut short.
func Truncate(b []byte, n int) []byte {
	if n > len(b) {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out
}

// FlipBits returns a copy of b with the byte at off XORed with mask —
// a single-sector corruption.
func FlipBits(b []byte, off int, mask byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	if off >= 0 && off < len(out) {
		out[off] ^= mask
	}
	return out
}
