package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"ipcp/internal/prefetch"
	"ipcp/internal/trace"
)

func TestPanicStreamPanicsExactlyAtN(t *testing.T) {
	inner := &trace.SliceStream{Instrs: []trace.Instr{{IP: 1}, {IP: 2}, {IP: 3}}, Loop: true}
	s := &PanicStream{Inner: inner, PanicAt: 3}
	var in trace.Instr
	for i := 0; i < 2; i++ {
		if !s.Next(&in) {
			t.Fatalf("call %d: unexpected end of stream", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("third Next did not panic")
			}
		}()
		s.Next(&in)
	}()
	// Reset re-arms: calls 1 and 2 are safe again.
	s.Reset()
	if !s.Next(&in) || in.IP != 1 {
		t.Errorf("after Reset, first instr = %+v", in)
	}
}

func TestDeadStreamStaysDead(t *testing.T) {
	var s DeadStream
	var in trace.Instr
	if s.Next(&in) {
		t.Error("dead stream produced an instruction")
	}
	s.Reset()
	if s.Next(&in) {
		t.Error("dead stream revived after Reset")
	}
}

func TestPanicPrefetcherPanicsAtN(t *testing.T) {
	p := &PanicPrefetcher{PanicAt: 2}
	a := &prefetch.Access{Addr: 0x1000}
	p.Operate(0, a, nil)
	defer func() {
		if recover() == nil {
			t.Error("second Operate did not panic")
		}
	}()
	p.Operate(1, a, nil)
}

type countIssuer int

func (c *countIssuer) Issue(prefetch.Candidate) bool { *c++; return true }

func TestRunawayPrefetcherFloods(t *testing.T) {
	p := &RunawayPrefetcher{Flood: 1000}
	var n countIssuer
	p.Operate(0, &prefetch.Access{Addr: 0x1000}, &n)
	if n != 1000 {
		t.Errorf("issued %d candidates, want 1000", n)
	}
}

func TestCorruptionHelpersAgainstReader(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	for i := 0; i < 10; i++ {
		in := trace.Instr{IP: uint64(0x400000 + 4*i), Loads: [trace.MaxLoads]uint64{uint64(0x10000 + 64*i)}}
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	good := buf.Bytes()

	// Truncation mid-record must read as ErrCorrupt.
	cut := Truncate(good, len(good)-5)
	r, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var in trace.Instr
	for {
		if err = r.Read(&in); err != nil {
			break
		}
	}
	if !errors.Is(err, trace.ErrCorrupt) {
		t.Errorf("truncated trace: got %v, want ErrCorrupt", err)
	}

	// Magic corruption must be rejected at open.
	bad := FlipBits(good, 0, 0xff)
	if _, err := trace.NewReader(bytes.NewReader(bad)); !errors.Is(err, trace.ErrBadMagic) {
		t.Errorf("flipped magic: got %v, want ErrBadMagic", err)
	}

	// Reserved flag corruption must be rejected at the damaged record.
	badFlags := FlipBits(good, 16, 0x80)
	r2, err := trace.NewReader(bytes.NewReader(badFlags))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Read(&in); !errors.Is(err, trace.ErrCorrupt) {
		t.Errorf("reserved flag bits: got %v, want ErrCorrupt", err)
	}

	// The helpers copy — the original still parses cleanly.
	if _, err := trace.ReadAll(bytes.NewReader(good)); err != nil {
		t.Errorf("original trace damaged by helpers: %v", err)
	}
}
