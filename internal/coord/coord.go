// Package coord is the distributed sweep tier: a coordinator that
// shards parameter grids across self-registered ipcpd workers.
//
// Topology: one coordinator, N workers. Workers are ordinary ipcpd
// daemons (run with -worker <coord-url>) that register over HTTP and
// heartbeat; the coordinator accepts a whole parameter grid as one
// POST /v1/sweeps, shards it by warmup identity (experiments.WarmupKey)
// so each group's shared warmup is simulated — and its snapshot forked
// — on exactly one worker, fans the points out through the workers'
// existing /v1/runs API, and merges results. A worker that misses
// heartbeats (or drops connections) is declared lost and its
// outstanding points are reassigned; a point's simulation failure, by
// contrast, is deterministic and final. Results flow back through a
// shared content-addressed blob store (blobs.go) so nothing is ever
// recomputed twice across the fleet.
package coord

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipcp/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// DataDir backs the shared blob store. Required.
	DataDir string
	// HeartbeatTimeout is how long a silent worker stays schedulable;
	// workers are told to beat at a third of it. Default 5s.
	HeartbeatTimeout time.Duration
	// PollInterval paces job-status polling against workers and
	// worker-availability rechecks. Default 150ms.
	PollInterval time.Duration
	// MaxPoints caps one sweep's expanded grid. Default 4096.
	MaxPoints int
	// SpanBuf is the trace ring capacity (0 = telemetry default).
	SpanBuf int
	// Log receives structured logs (nil = discard).
	Log *slog.Logger
}

// Coordinator owns the worker registry, the sweep scheduler and the
// blob store. Create with New, serve Handler(), Close when done.
type Coordinator struct {
	opts  Options
	log   *slog.Logger
	blobs *BlobStore
	spans *telemetry.SpanTracer
	hc    *http.Client
	ctx   context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup

	mu      sync.Mutex
	workers map[string]*worker
	sweeps  map[string]*sweep
	nextW   int // worker id allocator
	nextS   int // sweep id allocator

	// Fleet and fan-out counters, surfaced on /metrics (JSON and
	// Prometheus). Reassigned counts points re-fanned-out after their
	// worker was lost; retries counts 429-backpressure resubmissions.
	workersRegistered atomic.Uint64
	workersLost       atomic.Uint64
	sweepsAccepted    atomic.Uint64
	sweepsCompleted   atomic.Uint64
	pointsDone        atomic.Uint64
	pointsFailed      atomic.Uint64
	pointsReassigned  atomic.Uint64
	fanoutSubmitted   atomic.Uint64
	fanoutRetries     atomic.Uint64
}

// worker is one registered daemon. Mutable fields are guarded by the
// coordinator's mu; down is closed exactly once when the worker is
// declared lost, waking every scheduler goroutine blocked on it.
type worker struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Capacity int       `json:"capacity"`
	Since    time.Time `json:"registered"`

	lastBeat time.Time
	dead     bool
	down     chan struct{}
	assigned int           // points currently assigned (load metric)
	slots    chan struct{} // capacity semaphore
}

// New creates a coordinator with its blob store under opts.DataDir.
func New(opts Options) (*Coordinator, error) {
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 150 * time.Millisecond
	}
	if opts.MaxPoints <= 0 {
		opts.MaxPoints = 4096
	}
	blobs, err := NewBlobStore(opts.DataDir, opts.Log)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:    opts,
		log:     opts.Log,
		blobs:   blobs,
		spans:   telemetry.NewSpanTracer(opts.SpanBuf),
		hc:      &http.Client{Timeout: 30 * time.Second},
		ctx:     ctx,
		stop:    cancel,
		workers: make(map[string]*worker),
		sweeps:  make(map[string]*sweep),
	}
	c.wg.Add(1)
	go c.reap()
	return c, nil
}

// Close stops the reaper and aborts in-flight sweep scheduling.
func (c *Coordinator) Close() {
	c.stop()
	c.wg.Wait()
}

// --- worker registry -------------------------------------------------------

// register admits (or replaces) a worker. A re-registration from a URL
// we already know supersedes the old entry: the previous incarnation —
// typically a crashed daemon that came back — is declared lost so its
// points reassign, and the new one starts clean.
func (c *Coordinator) register(url string, capacity int) *worker {
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.URL == url && !w.dead {
			c.markDeadLocked(w, "superseded by re-registration")
		}
	}
	c.nextW++
	w := &worker{
		ID:       fmt.Sprintf("w%06d", c.nextW),
		URL:      trimSlash(url),
		Capacity: capacity,
		Since:    time.Now(),
		lastBeat: time.Now(),
		down:     make(chan struct{}),
		slots:    make(chan struct{}, capacity),
	}
	c.workers[w.ID] = w
	c.workersRegistered.Add(1)
	c.log.Info("worker registered", "worker", w.ID, "url", w.URL, "capacity", capacity)
	return w
}

// heartbeat refreshes a worker's liveness; unknown or already-lost ids
// report false so the agent re-registers.
func (c *Coordinator) heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || w.dead {
		return false
	}
	w.lastBeat = time.Now()
	return true
}

// markDead declares a worker lost (idempotent).
func (c *Coordinator) markDead(w *worker, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDeadLocked(w, reason)
}

func (c *Coordinator) markDeadLocked(w *worker, reason string) {
	if w.dead {
		return
	}
	w.dead = true
	close(w.down)
	c.workersLost.Add(1)
	c.log.Warn("worker lost", "worker", w.ID, "url", w.URL, "reason", reason)
}

// reap periodically declares workers lost after a silent heartbeat
// window. Schedulers blocked on those workers wake via their down
// channel and reassign.
func (c *Coordinator) reap() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HeartbeatTimeout / 3)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-c.opts.HeartbeatTimeout)
		c.mu.Lock()
		for _, w := range c.workers {
			if !w.dead && w.lastBeat.Before(cutoff) {
				c.markDeadLocked(w, "missed heartbeats")
			}
		}
		c.mu.Unlock()
	}
}

// pickWorker returns the live worker with the least assigned load,
// reserving n points of load on it, or blocks (re-checking every poll
// interval) until one registers. ctx aborts the wait.
func (c *Coordinator) pickWorker(ctx context.Context, n int) (*worker, error) {
	for {
		c.mu.Lock()
		var best *worker
		for _, w := range c.workers {
			if w.dead {
				continue
			}
			if best == nil || w.assigned < best.assigned {
				best = w
			}
		}
		if best != nil {
			best.assigned += n
			c.mu.Unlock()
			return best, nil
		}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.ctx.Done():
			return nil, c.ctx.Err()
		case <-time.After(c.opts.PollInterval):
		}
	}
}

// release returns reserved load to a worker.
func (c *Coordinator) release(w *worker, n int) {
	c.mu.Lock()
	w.assigned -= n
	c.mu.Unlock()
}

// workerViews snapshots the registry for GET /v1/workers and /metrics.
func (c *Coordinator) workerViews() []workerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]workerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, workerView{
			ID: w.ID, URL: w.URL, Capacity: w.Capacity,
			Since: w.Since, LastBeat: w.lastBeat, Dead: w.dead,
			Assigned: w.assigned,
		})
	}
	return out
}

type workerView struct {
	ID       string    `json:"id"`
	URL      string    `json:"url"`
	Capacity int       `json:"capacity"`
	Since    time.Time `json:"registered"`
	LastBeat time.Time `json:"last_heartbeat"`
	Dead     bool      `json:"lost,omitempty"`
	Assigned int       `json:"assigned_points"`
}
