package coord

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ipcp/internal/experiments"
)

// This file is the coordinator's shared content-addressed result
// store: an HTTP blob interface over the checkpoint-store format, so
// any worker's finished checkpoint or warmup-snapshot spill becomes
// every other worker's disk hit. The wire format IS the disk format —
// one ipcp-blob-v1 CRC frame per blob — so integrity is verified at
// every hop: the worker frames before PUT, the coordinator verifies
// before persisting, verifies again on GET (quarantining damage), and
// the fetching worker verifies before adopting. A flipped bit anywhere
// along the path is detected, never decoded.

// BlobStore is the coordinator-side store: framed files on disk,
// sharded by key prefix like the session's disk cache, with the same
// tmp+fsync+rename durability and quarantine-on-damage policy.
type BlobStore struct {
	dir string
	log *slog.Logger

	gets        atomic.Uint64 // GET requests served
	getHits     atomic.Uint64 // ... that found a verified blob
	puts        atomic.Uint64 // PUT requests accepted and persisted
	rejected    atomic.Uint64 // PUTs refused (bad key, bad frame, too big)
	quarantined atomic.Uint64 // stored blobs that failed verification on GET
}

// NewBlobStore creates (if needed) the store directory.
func NewBlobStore(dir string, log *slog.Logger) (*BlobStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("coord: empty blob store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: creating blob store dir: %w", err)
	}
	if log == nil {
		log = slog.Default()
	}
	return &BlobStore{dir: dir, log: log}, nil
}

// validKey accepts only 64-char lowercase-hex SHA-256 content
// addresses — the only keys the cache layer generates — so a request
// path can never traverse outside the store.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (b *BlobStore) path(key string) string {
	return filepath.Join(b.dir, key[:2], key+".blob")
}

// get returns the stored frame for key after re-verifying it, or
// ok=false. A frame that fails verification is quarantined: bit rot on
// the coordinator's disk must not propagate to workers.
func (b *BlobStore) get(key string) ([]byte, bool) {
	b.gets.Add(1)
	p := b.path(key)
	frame, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	if _, err := experiments.DecodeBlobFrame(frame); err != nil {
		b.quarantine(p, err)
		return nil, false
	}
	b.getHits.Add(1)
	return frame, true
}

// put verifies and persists one frame. The key is the run identity's
// content address (not the payload hash), so identity cannot be
// re-derived here; the frame's own CRC is the integrity gate.
func (b *BlobStore) put(key string, frame []byte) error {
	if _, err := experiments.DecodeBlobFrame(frame); err != nil {
		b.rejected.Add(1)
		return fmt.Errorf("coord: rejecting blob %s: %w", key[:8], err)
	}
	if err := b.writeFile(b.path(key), frame); err != nil {
		b.rejected.Add(1)
		return fmt.Errorf("coord: storing blob %s: %w", key[:8], err)
	}
	b.puts.Add(1)
	return nil
}

// quarantine moves a damaged stored blob aside for inspection, falling
// back to removal when the move fails — either way it is never served.
func (b *BlobStore) quarantine(p string, reason error) {
	qdir := filepath.Join(b.dir, "corrupt")
	dst := filepath.Join(qdir, filepath.Base(p))
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(p, dst); err == nil {
			b.quarantined.Add(1)
			b.log.Warn("blob quarantined", "path", p, "quarantine", dst, "err", reason)
			return
		}
	}
	os.Remove(p)
	b.quarantined.Add(1)
	b.log.Warn("blob quarantined (removed: move failed)", "path", p, "err", reason)
}

// writeFile is the durable-write discipline shared with the session's
// disk cache: temp file in the final directory, fsync, atomic rename.
func (b *BlobStore) writeFile(p string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if f, err := os.Open(filepath.Dir(p)); err == nil {
		f.Sync()
		f.Close()
	}
	return nil
}

// maxBlobBody caps a PUT body: warmup snapshots are a few MB per core,
// so 256 MiB is far above any legitimate blob while still bounding a
// hostile or buggy client.
const maxBlobBody = 256 << 20

// --- worker-side client ----------------------------------------------------

// BlobClient implements experiments.RemoteBlobs over the coordinator's
// blob API. Every error path degrades to a miss or a dropped write —
// an unreachable coordinator costs sharing, never correctness — and
// every fetched payload is CRC-verified before it is returned.
type BlobClient struct {
	base string // coordinator base URL, no trailing slash
	hc   *http.Client
	log  *slog.Logger
}

// NewBlobClient returns a client for the coordinator at base
// (e.g. "http://127.0.0.1:8800").
func NewBlobClient(base string, log *slog.Logger) *BlobClient {
	if log == nil {
		log = slog.Default()
	}
	return &BlobClient{
		base: trimSlash(base),
		hc:   &http.Client{Timeout: 30 * time.Second},
		log:  log,
	}
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// GetBlob fetches and verifies one blob; any failure is a miss.
func (c *BlobClient) GetBlob(key string) ([]byte, bool) {
	resp, err := c.hc.Get(c.base + "/v1/blobs/" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBody+1))
	if err != nil || len(frame) > maxBlobBody {
		return nil, false
	}
	payload, err := experiments.DecodeBlobFrame(frame)
	if err != nil {
		c.log.Warn("remote blob failed verification", "key", key[:8], "err", err)
		return nil, false
	}
	return payload, true
}

// PutBlob pushes one payload, framed, to the shared store. Best-effort:
// failures are logged and dropped.
func (c *BlobClient) PutBlob(key string, payload []byte) {
	req, err := http.NewRequest(http.MethodPut, c.base+"/v1/blobs/"+key,
		bytes.NewReader(experiments.EncodeBlobFrame(payload)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.log.Warn("blob push failed", "key", key[:8], "err", err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		c.log.Warn("blob push refused", "key", key[:8], "status", resp.StatusCode)
	}
}
