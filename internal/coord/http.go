package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ipcp/internal/telemetry"
)

// The coordinator's HTTP surface:
//
//	POST /v1/workers                  worker self-registration
//	POST /v1/workers/{id}/heartbeat   liveness (404 → re-register)
//	GET  /v1/workers                  registry snapshot
//	POST /v1/sweeps                   submit a parameter grid
//	GET  /v1/sweeps/{id}              merged report (per-point results)
//	GET  /v1/sweeps/{id}/events       JSONL follow-stream (partial aggregation)
//	GET  /v1/blobs/{key}              shared store fetch (ipcp-blob-v1 frame)
//	PUT  /v1/blobs/{key}              shared store push
//	GET  /healthz, /metrics, /debug/trace

// maxRequestBody bounds every JSON request body, mirroring the serve
// layer's fix: a multi-GB body earns a 413, not an allocation.
const maxRequestBody = 1 << 20

func decodeRequest(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	return http.StatusOK, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", c.handleRegister)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/workers", c.handleListWorkers)
	mux.HandleFunc("POST /v1/sweeps", c.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", c.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", c.handleSweepEvents)
	mux.HandleFunc("GET /v1/blobs/{key}", c.handleGetBlob)
	mux.HandleFunc("PUT /v1/blobs/{key}", c.handlePutBlob)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /debug/trace", c.handleDebugTrace)
	return mux
}

// --- workers ---------------------------------------------------------------

type registerRequest struct {
	URL      string `json:"url"`
	Capacity int    `json:"capacity,omitempty"`
}

type registerResponse struct {
	ID          string `json:"id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if code, err := decodeRequest(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("url must be non-empty"))
		return
	}
	wk := c.register(req.URL, req.Capacity)
	writeJSON(w, http.StatusCreated, registerResponse{
		ID:          wk.ID,
		HeartbeatMS: (c.opts.HeartbeatTimeout / 3).Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !c.heartbeat(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or lost worker %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": c.workerViews()})
}

// --- sweeps ----------------------------------------------------------------

type sweepSubmitView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Location string `json:"location"`
	Points   int    `json:"points"`
	Groups   int    `json:"groups"`
}

func (c *Coordinator) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if code, err := decodeRequest(w, r, &req); err != nil {
		writeError(w, code, err)
		return
	}
	sw, err := c.acceptSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v := sw.view(false)
	writeJSON(w, http.StatusAccepted, sweepSubmitView{
		ID: sw.ID, Status: v.Status, Location: "/v1/sweeps/" + sw.ID,
		Points: v.Total, Groups: v.Groups,
	})
}

func (c *Coordinator) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := c.lookupSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sw.view(true))
}

// handleSweepEvents streams a sweep's lifecycle as JSONL, following
// until the sweep completes or the client goes away. Every line
// carries the running done/failed/total aggregation.
func (c *Coordinator) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := c.lookupSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		events, changed, terminal := sw.eventsSince(next)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(events)
		if fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-c.ctx.Done():
			return
		}
	}
}

// --- blobs -----------------------------------------------------------------

func (c *Coordinator) handleGetBlob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusBadRequest, errors.New("key must be 64 hex chars"))
		return
	}
	frame, ok := c.blobs.get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no blob %s", key[:8]))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(frame)
}

func (c *Coordinator) handlePutBlob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusBadRequest, errors.New("key must be 64 hex chars"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBlobBody)
	frame, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.blobs.rejected.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("blob exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.blobs.put(key, frame); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"status": "stored"})
}

// --- health, metrics, trace ------------------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := 0
	c.mu.Lock()
	for _, wk := range c.workers {
		if !wk.dead {
			live++
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": live})
}

// MetricsSnapshot is the JSON shape of the coordinator's GET /metrics.
type MetricsSnapshot struct {
	Workers struct {
		Registered uint64 `json:"registered"`
		Live       int    `json:"live"`
		Lost       uint64 `json:"lost"`
	} `json:"workers"`
	Sweeps struct {
		Accepted  uint64 `json:"accepted"`
		Active    int    `json:"active"`
		Completed uint64 `json:"completed"`
	} `json:"sweeps"`
	Points struct {
		Done       uint64 `json:"done"`
		Failed     uint64 `json:"failed"`
		Reassigned uint64 `json:"reassigned"`
	} `json:"points"`
	Fanout struct {
		Submitted uint64 `json:"submitted"`
		Retries   uint64 `json:"retries"`
	} `json:"fanout"`
	Blobs struct {
		Gets        uint64 `json:"gets"`
		Hits        uint64 `json:"hits"`
		Puts        uint64 `json:"puts"`
		Rejected    uint64 `json:"rejected"`
		Quarantined uint64 `json:"quarantined"`
	} `json:"blobs"`
}

// Metrics assembles a point-in-time snapshot.
func (c *Coordinator) Metrics() MetricsSnapshot {
	var m MetricsSnapshot
	c.mu.Lock()
	for _, wk := range c.workers {
		if !wk.dead {
			m.Workers.Live++
		}
	}
	for _, sw := range c.sweeps {
		sw.mu.Lock()
		if sw.state != "done" {
			m.Sweeps.Active++
		}
		sw.mu.Unlock()
	}
	c.mu.Unlock()
	m.Workers.Registered = c.workersRegistered.Load()
	m.Workers.Lost = c.workersLost.Load()
	m.Sweeps.Accepted = c.sweepsAccepted.Load()
	m.Sweeps.Completed = c.sweepsCompleted.Load()
	m.Points.Done = c.pointsDone.Load()
	m.Points.Failed = c.pointsFailed.Load()
	m.Points.Reassigned = c.pointsReassigned.Load()
	m.Fanout.Submitted = c.fanoutSubmitted.Load()
	m.Fanout.Retries = c.fanoutRetries.Load()
	m.Blobs.Gets = c.blobs.gets.Load()
	m.Blobs.Hits = c.blobs.getHits.Load()
	m.Blobs.Puts = c.blobs.puts.Load()
	m.Blobs.Rejected = c.blobs.rejected.Load()
	m.Blobs.Quarantined = c.blobs.quarantined.Load()
	return m
}

// handleMetrics negotiates the representation like the worker daemon's
// /metrics: Prometheus text exposition for scrapers, JSON otherwise.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	if wantsPrometheus(accept) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		c.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, c.Metrics())
}

// wantsPrometheus mirrors the serve layer's content negotiation.
func wantsPrometheus(accept string) bool {
	for _, marker := range []string{"text/plain", "openmetrics", "text/*"} {
		for i := 0; i+len(marker) <= len(accept); i++ {
			if accept[i:i+len(marker)] == marker {
				return true
			}
		}
	}
	return false
}

func (c *Coordinator) writePrometheus(w io.Writer) {
	m := c.Metrics()
	telemetry.WritePrometheusValue(w, "ipcpc_workers_registered_total", "counter",
		"Workers ever registered.", float64(m.Workers.Registered))
	telemetry.WritePrometheusValue(w, "ipcpc_workers_live", "gauge",
		"Workers currently schedulable.", float64(m.Workers.Live))
	telemetry.WritePrometheusValue(w, "ipcpc_workers_lost_total", "counter",
		"Workers declared lost (missed heartbeats or dropped connections).",
		float64(m.Workers.Lost))

	telemetry.WritePrometheusHeader(w, "ipcpc_sweeps_total", "counter",
		"Sweeps by lifecycle stage.")
	fmt.Fprintf(w, "ipcpc_sweeps_total{stage=\"accepted\"} %d\n", m.Sweeps.Accepted)
	fmt.Fprintf(w, "ipcpc_sweeps_total{stage=\"completed\"} %d\n", m.Sweeps.Completed)
	telemetry.WritePrometheusValue(w, "ipcpc_sweeps_active", "gauge",
		"Sweeps currently scheduling.", float64(m.Sweeps.Active))

	telemetry.WritePrometheusHeader(w, "ipcpc_points_total", "counter",
		"Sweep points by outcome; reassigned counts points re-fanned-out after worker loss.")
	fmt.Fprintf(w, "ipcpc_points_total{outcome=\"done\"} %d\n", m.Points.Done)
	fmt.Fprintf(w, "ipcpc_points_total{outcome=\"failed\"} %d\n", m.Points.Failed)
	fmt.Fprintf(w, "ipcpc_points_total{outcome=\"reassigned\"} %d\n", m.Points.Reassigned)

	telemetry.WritePrometheusHeader(w, "ipcpc_fanout_total", "counter",
		"Point submissions to workers; retries are 429-backpressure resubmissions.")
	fmt.Fprintf(w, "ipcpc_fanout_total{kind=\"submitted\"} %d\n", m.Fanout.Submitted)
	fmt.Fprintf(w, "ipcpc_fanout_total{kind=\"retry\"} %d\n", m.Fanout.Retries)

	telemetry.WritePrometheusHeader(w, "ipcpc_blob_requests_total", "counter",
		"Shared blob store traffic by operation.")
	fmt.Fprintf(w, "ipcpc_blob_requests_total{op=\"get\"} %d\n", m.Blobs.Gets)
	fmt.Fprintf(w, "ipcpc_blob_requests_total{op=\"hit\"} %d\n", m.Blobs.Hits)
	fmt.Fprintf(w, "ipcpc_blob_requests_total{op=\"put\"} %d\n", m.Blobs.Puts)
	fmt.Fprintf(w, "ipcpc_blob_requests_total{op=\"rejected\"} %d\n", m.Blobs.Rejected)
	fmt.Fprintf(w, "ipcpc_blob_requests_total{op=\"quarantined\"} %d\n", m.Blobs.Quarantined)
}

// handleDebugTrace exports the coordinator's spans as Chrome
// trace_event JSON. Spans are stamped with worker ids, so the viewer
// lanes the sweep fan-out per worker.
func (c *Coordinator) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = c.spans.WriteChromeTrace(w, r.URL.Query().Get("job"))
}

// Spans exposes the tracer for tests.
func (c *Coordinator) Spans() *telemetry.SpanTracer { return c.spans }
