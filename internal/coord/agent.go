package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// Agent is the worker-side registration client: it announces the
// worker's URL and capacity to the coordinator, then heartbeats at the
// interval the coordinator dictates. Registration retries until it
// succeeds (the worker may come up before the coordinator), and a
// heartbeat answered 404 — this incarnation was declared lost, or the
// coordinator restarted and forgot the fleet — re-registers under a
// fresh id. The agent never gives up: coordinator outages degrade the
// worker to an ordinary standalone daemon, which keeps serving its own
// /v1/runs port throughout.
type Agent struct {
	coord    string // coordinator base URL
	self     string // this worker's advertised URL
	capacity int
	hc       *http.Client
	log      *slog.Logger

	done chan struct{}
}

// StartAgent registers selfURL (capacity concurrent points) with the
// coordinator at coordURL and keeps the registration alive until ctx
// ends. Returns immediately; registration and heartbeats run in the
// background.
func StartAgent(ctx context.Context, coordURL, selfURL string, capacity int, log *slog.Logger) *Agent {
	if log == nil {
		log = slog.Default()
	}
	if capacity <= 0 {
		capacity = 1
	}
	a := &Agent{
		coord:    trimSlash(coordURL),
		self:     trimSlash(selfURL),
		capacity: capacity,
		hc:       &http.Client{Timeout: 10 * time.Second},
		log:      log,
		done:     make(chan struct{}),
	}
	go a.run(ctx)
	return a
}

// Done closes when the agent has stopped (after ctx ends).
func (a *Agent) Done() <-chan struct{} { return a.done }

func (a *Agent) run(ctx context.Context) {
	defer close(a.done)
	const retry = 500 * time.Millisecond
	for {
		id, interval, err := a.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			a.log.Warn("coordinator registration failed; retrying",
				"coordinator", a.coord, "err", err)
			select {
			case <-time.After(retry):
				continue
			case <-ctx.Done():
				return
			}
		}
		a.log.Info("registered with coordinator",
			"coordinator", a.coord, "worker", id, "heartbeat", interval)
		if !a.beat(ctx, id, interval) {
			return // ctx ended
		}
		// Heartbeat rejected: this incarnation was declared lost (or
		// the coordinator restarted). Loop around and re-register.
		a.log.Warn("heartbeat rejected; re-registering", "worker", id)
	}
}

// register announces the worker once; returns the assigned id and the
// heartbeat interval the coordinator wants.
func (a *Agent) register(ctx context.Context) (string, time.Duration, error) {
	body, _ := json.Marshal(registerRequest{URL: a.self, Capacity: a.capacity})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.coord+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return "", 0, &registrationError{status: resp.Status}
	}
	var rr registerResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rr); err != nil {
		return "", 0, err
	}
	interval := time.Duration(rr.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = time.Second
	}
	return rr.ID, interval, nil
}

type registrationError struct{ status string }

func (e *registrationError) Error() string { return "coordinator answered " + e.status }

// beat heartbeats until ctx ends (returns false) or the coordinator
// rejects the id (returns true → caller re-registers). Transient
// connection errors are retried on the next tick — a blipped network
// must not force a re-registration that would reassign our points.
func (a *Agent) beat(ctx context.Context, id string, interval time.Duration) bool {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			a.coord+"/v1/workers/"+id+"/heartbeat", nil)
		if err != nil {
			return false
		}
		resp, err := a.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return false
			}
			a.log.Warn("heartbeat failed", "worker", id, "err", err)
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound, http.StatusGone:
			return true
		default:
			a.log.Warn("heartbeat refused", "worker", id, "status", resp.Status)
		}
	}
}
