package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/memsys"
	"ipcp/internal/prefetch"
	"ipcp/internal/sim"
	"ipcp/internal/telemetry"
	"ipcp/internal/workload"
)

// --- sweep request & grid expansion ---------------------------------------

// SweepRequest is the wire form of POST /v1/sweeps: a parameter grid,
// expanded to the cross product workloads × l1d × l2 × llc (an empty
// axis contributes one "off"/default element), plus optional explicit
// points for shapes the grid cannot express (multi-core runs). The
// scalar knobs and seed apply to every point.
type SweepRequest struct {
	Workloads []string `json:"workloads"` // one single-core point per name
	L1D       []string `json:"l1d,omitempty"`
	L2        []string `json:"l2,omitempty"`
	LLC       []string `json:"llc,omitempty"`

	LLCRepl        string  `json:"llc_repl,omitempty"`
	DRAMGBps       float64 `json:"dram_gbps,omitempty"`
	L1PQ           int     `json:"l1_pq,omitempty"`
	L1MSHR         int     `json:"l1_mshr,omitempty"`
	L1DWays        int     `json:"l1d_ways,omitempty"`
	L2Sets         int     `json:"l2_sets,omitempty"`
	LLCSetsPerCore int     `json:"llc_sets_per_core,omitempty"`
	Seed           int64   `json:"seed,omitempty"`

	// Points are appended after the expanded grid.
	Points []PointSpec `json:"points,omitempty"`

	// TimeoutMS bounds each point's job on the worker (0 = worker cap).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PointSpec is one sweep point on the wire — the same JSON shape the
// workers' POST /v1/runs accepts, so fan-out is a direct re-encode.
type PointSpec struct {
	Workloads      []string `json:"workloads"`
	Cores          int      `json:"cores,omitempty"`
	L1D            string   `json:"l1d,omitempty"`
	L2             string   `json:"l2,omitempty"`
	LLC            string   `json:"llc,omitempty"`
	ConfigKey      string   `json:"config_key,omitempty"`
	LLCRepl        string   `json:"llc_repl,omitempty"`
	DRAMGBps       float64  `json:"dram_gbps,omitempty"`
	L1PQ           int      `json:"l1_pq,omitempty"`
	L1MSHR         int      `json:"l1_mshr,omitempty"`
	L1DWays        int      `json:"l1d_ways,omitempty"`
	L2Sets         int      `json:"l2_sets,omitempty"`
	LLCSetsPerCore int      `json:"llc_sets_per_core,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
	TimeoutMS      int64    `json:"timeout_ms,omitempty"`
}

// spec mirrors the point into an experiments.RunSpec (for grouping).
func (p PointSpec) spec() experiments.RunSpec {
	return experiments.RunSpec{
		Workloads: p.Workloads, Cores: p.Cores,
		L1D: p.L1D, L2: p.L2, LLC: p.LLC, ConfigKey: p.ConfigKey,
		LLCRepl: p.LLCRepl, DRAMGBps: p.DRAMGBps,
		L1PQ: p.L1PQ, L1MSHR: p.L1MSHR, L1DWays: p.L1DWays,
		L2Sets: p.L2Sets, LLCSetsPerCore: p.LLCSetsPerCore,
		Seed: p.Seed,
	}
}

func (p PointSpec) validate() error {
	if len(p.Workloads) == 0 {
		return errors.New("workloads must be non-empty")
	}
	for _, w := range p.Workloads {
		if _, err := workload.Named(w); err != nil {
			return err
		}
	}
	if p.Cores != 0 && p.Cores != len(p.Workloads) {
		return fmt.Errorf("cores (%d) must be 0 or match the workload count (%d)", p.Cores, len(p.Workloads))
	}
	for _, pf := range []string{p.L1D, p.L2, p.LLC} {
		if _, err := prefetch.New(pf, memsys.LevelL1D); err != nil {
			return err
		}
	}
	return nil
}

// expand validates the request and produces the point list in caller
// order: grid cross product (workload outermost, then l1d, l2, llc —
// so points sharing a warmup identity are contiguous), then explicit
// points.
func (r *SweepRequest) expand(maxPoints int) ([]PointSpec, error) {
	if r.TimeoutMS < 0 {
		return nil, errors.New("timeout_ms must be >= 0")
	}
	axis := func(vals []string) []string {
		if len(vals) == 0 {
			return []string{""}
		}
		return vals
	}
	var pts []PointSpec
	for _, wl := range r.Workloads {
		for _, l1d := range axis(r.L1D) {
			for _, l2 := range axis(r.L2) {
				for _, llc := range axis(r.LLC) {
					pts = append(pts, PointSpec{
						Workloads: []string{wl},
						L1D:       l1d, L2: l2, LLC: llc,
						LLCRepl: r.LLCRepl, DRAMGBps: r.DRAMGBps,
						L1PQ: r.L1PQ, L1MSHR: r.L1MSHR, L1DWays: r.L1DWays,
						L2Sets: r.L2Sets, LLCSetsPerCore: r.LLCSetsPerCore,
						Seed: r.Seed,
					})
				}
			}
		}
	}
	pts = append(pts, r.Points...)
	if len(pts) == 0 {
		return nil, errors.New("sweep expands to zero points")
	}
	if len(pts) > maxPoints {
		return nil, fmt.Errorf("sweep expands to %d points, cap is %d", len(pts), maxPoints)
	}
	for i := range pts {
		if err := pts[i].validate(); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
	}
	return pts, nil
}

// groupKey is the point's warmup identity. Only equality matters for
// sharding — the workers own the actual scale — so grouping uses a
// fixed reference scale; every field of the key that varies between
// points comes from the spec itself.
func groupKey(p PointSpec) string {
	return experiments.WarmupKey(experiments.Quick, p.spec())
}

// --- sweep state -----------------------------------------------------------

type pointStatus string

const (
	pointPending pointStatus = "pending"
	pointRunning pointStatus = "running"
	pointDone    pointStatus = "done"
	pointFailed  pointStatus = "failed"
)

// point is one sweep point's lifecycle; guarded by its sweep's mu.
type point struct {
	Index    int
	Spec     PointSpec
	Group    string
	Status   pointStatus
	Worker   string
	JobID    string
	Attempts int
	Result   *sim.Result
	Err      string
}

// sweepEvent is one line of a sweep's JSONL follow-stream. Every event
// carries the running aggregation (done/failed/total) so a client can
// render partial progress without replaying state.
type sweepEvent struct {
	Seq    int       `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"` // accepted | point | done
	Point  int       `json:"point"` // meaningful on point/reassign kinds; 0 is a real index, never omitted
	Worker string    `json:"worker,omitempty"`
	Msg    string    `json:"msg,omitempty"`
	Done   int       `json:"done"`
	Failed int       `json:"failed"`
	Total  int       `json:"total"`
}

// sweep is one accepted grid and its scheduling state.
type sweep struct {
	ID        string
	Submitted time.Time
	TimeoutMS int64
	Groups    int

	mu       sync.Mutex
	points   []*point
	state    string // running | done
	done     int
	failed   int
	finished time.Time
	events   []sweepEvent
	changed  chan struct{}
}

func (sw *sweep) notifyLocked() {
	close(sw.changed)
	sw.changed = make(chan struct{})
}

func (sw *sweep) eventLocked(kind string, pt int, wkr, msg string) {
	sw.events = append(sw.events, sweepEvent{
		Seq: len(sw.events), Time: time.Now(), Kind: kind,
		Point: pt, Worker: wkr, Msg: msg,
		Done: sw.done, Failed: sw.failed, Total: len(sw.points),
	})
	sw.notifyLocked()
}

// eventsSince returns events at seq and beyond, the channel the next
// mutation closes, and whether the sweep is terminal.
func (sw *sweep) eventsSince(seq int) (events []sweepEvent, changed <-chan struct{}, terminal bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if seq < len(sw.events) {
		events = append(events, sw.events[seq:]...)
	}
	return events, sw.changed, sw.state == "done"
}

// begin marks a point running on a worker.
func (sw *sweep) begin(pt *point, workerID string) {
	sw.mu.Lock()
	pt.Status = pointRunning
	pt.Worker = workerID
	pt.Attempts++
	sw.mu.Unlock()
}

// finish records a point's terminal outcome and emits the aggregation
// event. Reassigned points re-enter via begin; finish is final.
func (sw *sweep) finish(pt *point, res *sim.Result, errMsg string) {
	sw.mu.Lock()
	if errMsg != "" {
		pt.Status = pointFailed
		pt.Err = errMsg
		sw.failed++
	} else {
		pt.Status = pointDone
		pt.Result = res
		sw.done++
	}
	sw.eventLocked("point", pt.Index, pt.Worker, errMsg)
	sw.mu.Unlock()
}

// pointView / sweepView are the JSON shapes of GET /v1/sweeps/{id}.
type pointView struct {
	Index    int         `json:"index"`
	Spec     PointSpec   `json:"spec"`
	Group    string      `json:"group"`
	Status   pointStatus `json:"status"`
	Worker   string      `json:"worker,omitempty"`
	JobID    string      `json:"job_id,omitempty"`
	Attempts int         `json:"attempts"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
}

type sweepView struct {
	ID        string      `json:"id"`
	Status    string      `json:"status"`
	Submitted time.Time   `json:"submitted"`
	Finished  *time.Time  `json:"finished,omitempty"`
	ElapsedS  float64     `json:"elapsed_s,omitempty"`
	Total     int         `json:"total"`
	Done      int         `json:"done"`
	Failed    int         `json:"failed"`
	Groups    int         `json:"groups"`
	Points    []pointView `json:"points"`
}

func (sw *sweep) view(withPoints bool) sweepView {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	v := sweepView{
		ID: sw.ID, Status: sw.state, Submitted: sw.Submitted,
		Total: len(sw.points), Done: sw.done, Failed: sw.failed,
		Groups: sw.Groups,
	}
	if !sw.finished.IsZero() {
		t := sw.finished
		v.Finished = &t
		v.ElapsedS = sw.finished.Sub(sw.Submitted).Seconds()
	}
	if withPoints {
		v.Points = make([]pointView, len(sw.points))
		for i, pt := range sw.points {
			v.Points[i] = pointView{
				Index: pt.Index, Spec: pt.Spec, Group: pt.Group,
				Status: pt.Status, Worker: pt.Worker, JobID: pt.JobID,
				Attempts: pt.Attempts, Result: pt.Result, Error: pt.Err,
			}
		}
	}
	return v
}

// --- scheduling ------------------------------------------------------------

// acceptSweep expands the grid, registers the sweep and starts its
// scheduler. The returned sweep is already running.
func (c *Coordinator) acceptSweep(req SweepRequest) (*sweep, error) {
	pts, err := req.expand(c.opts.MaxPoints)
	if err != nil {
		return nil, err
	}
	sw := &sweep{
		Submitted: time.Now(),
		TimeoutMS: req.TimeoutMS,
		state:     "running",
		changed:   make(chan struct{}),
	}
	groups := make(map[string][]*point)
	var order []string
	for i, p := range pts {
		if p.TimeoutMS == 0 {
			p.TimeoutMS = req.TimeoutMS
		}
		g := groupKey(p)
		pt := &point{Index: i, Spec: p, Group: g, Status: pointPending}
		sw.points = append(sw.points, pt)
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], pt)
	}
	sw.Groups = len(order)

	c.mu.Lock()
	c.nextS++
	sw.ID = fmt.Sprintf("s%06d", c.nextS)
	c.sweeps[sw.ID] = sw
	c.mu.Unlock()
	c.sweepsAccepted.Add(1)

	sw.mu.Lock()
	sw.eventLocked("accepted", 0, "", fmt.Sprintf("%d points in %d warmup groups", len(pts), len(order)))
	sw.mu.Unlock()
	c.log.Info("sweep accepted", "sweep", sw.ID, "points", len(pts), "groups", len(order))

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		var gwg sync.WaitGroup
		for _, g := range order {
			gwg.Add(1)
			go func(pts []*point) {
				defer gwg.Done()
				c.runGroup(sw, pts)
			}(groups[g])
		}
		gwg.Wait()
		sw.mu.Lock()
		sw.state = "done"
		sw.finished = time.Now()
		sw.eventLocked("done", 0, "", "")
		done, failed := sw.done, sw.failed
		sw.mu.Unlock()
		c.sweepsCompleted.Add(1)
		c.log.Info("sweep done", "sweep", sw.ID, "done", done, "failed", failed)
	}()
	return sw, nil
}

// lookupSweep returns a sweep by id.
func (c *Coordinator) lookupSweep(id string) (*sweep, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sw, ok := c.sweeps[id]
	return sw, ok
}

// errWorkerLost marks a point attempt that died with its worker (as
// opposed to a deterministic simulation failure): the point is still
// pending and must be reassigned.
var errWorkerLost = errors.New("worker lost")

// runGroup drives one warmup-identity group to completion. The whole
// group is assigned to a single worker so its shared warmup simulates
// once and every other point forks the snapshot locally; when that
// worker is lost mid-group, the surviving points reassign (as a group)
// to the next one.
func (c *Coordinator) runGroup(sw *sweep, pts []*point) {
	remaining := pts
	for len(remaining) > 0 {
		w, err := c.pickWorker(c.ctx, len(remaining))
		if err != nil {
			// Coordinator shutting down: fail what's left.
			for _, pt := range remaining {
				sw.finish(pt, nil, "coordinator shut down: "+err.Error())
				c.pointsFailed.Add(1)
			}
			return
		}
		lost := c.runGroupOn(sw, w, remaining)
		c.release(w, len(remaining))
		if len(lost) > 0 {
			c.pointsReassigned.Add(uint64(len(lost)))
			sw.mu.Lock()
			sw.eventLocked("reassign", lost[0].Index, w.ID,
				fmt.Sprintf("%d points reassigned from lost worker %s", len(lost), w.ID))
			sw.mu.Unlock()
		}
		remaining = lost
	}
}

// runGroupOn fans a group's points onto one worker, bounded by its
// capacity semaphore (shared across all groups assigned to it), and
// returns the points that were lost with the worker.
func (c *Coordinator) runGroupOn(sw *sweep, w *worker, pts []*point) (lost []*point) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, pt := range pts {
		select {
		case w.slots <- struct{}{}:
		case <-w.down:
			// Everything not yet scheduled is lost with the worker.
			mu.Lock()
			lost = append(lost, pts[i:]...)
			mu.Unlock()
			wg.Wait()
			return lost
		case <-c.ctx.Done():
			mu.Lock()
			lost = append(lost, pts[i:]...)
			mu.Unlock()
			wg.Wait()
			return lost
		}
		wg.Add(1)
		go func(pt *point) {
			defer wg.Done()
			defer func() { <-w.slots }()
			if err := c.runPoint(sw, w, pt); err != nil {
				if errors.Is(err, errWorkerLost) {
					mu.Lock()
					lost = append(lost, pt)
					mu.Unlock()
					return
				}
				sw.finish(pt, nil, err.Error())
				c.pointsFailed.Add(1)
				return
			}
			c.pointsDone.Add(1)
		}(pt)
	}
	wg.Wait()
	return lost
}

// runPoint submits one point to a worker and polls it to a terminal
// state. Returns errWorkerLost when the attempt died with the worker
// (reassign), any other error for a permanent point failure, nil after
// sw.finish recorded a result. Each attempt is one "sweep.point" span
// stamped with the worker id, so the trace export lanes fan-out by
// worker.
func (c *Coordinator) runPoint(sw *sweep, w *worker, pt *point) (err error) {
	sw.begin(pt, w.ID)
	span := telemetry.Span{
		Name:      "sweep.point",
		RequestID: sw.ID,
		JobID:     w.ID,
		Start:     time.Now(),
		Attrs: []telemetry.SpanAttr{
			{Key: "point", Value: strconv.Itoa(pt.Index)},
			{Key: "attempt", Value: strconv.Itoa(pt.Attempts)},
		},
	}
	defer func() {
		outcome := "done"
		if err != nil {
			outcome = err.Error()
		}
		span.Attrs = append(span.Attrs, telemetry.SpanAttr{Key: "outcome", Value: outcome})
		span.Dur = time.Since(span.Start)
		c.spans.Emit(span)
	}()

	jobID, err := c.submitPoint(w, pt)
	if err != nil {
		return err
	}
	sw.mu.Lock()
	pt.JobID = jobID
	sw.mu.Unlock()
	res, err := c.awaitJob(w, jobID)
	if err != nil {
		return err
	}
	sw.finish(pt, res, "")
	return nil
}

// submitView / jobView are the slices of the workers' wire shapes the
// coordinator reads back.
type submitView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

type jobView struct {
	ID     string      `json:"id"`
	Status string      `json:"status"`
	Error  string      `json:"error,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

// submitPoint POSTs one point to the worker's /v1/runs, backing off on
// 429 until the worker either admits it or dies.
func (c *Coordinator) submitPoint(w *worker, pt *point) (string, error) {
	body, err := json.Marshal(pt.Spec)
	if err != nil {
		return "", err
	}
	for {
		select {
		case <-w.down:
			return "", errWorkerLost
		case <-c.ctx.Done():
			return "", errWorkerLost
		default:
		}
		c.fanoutSubmitted.Add(1)
		resp, err := c.hc.Post(w.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			c.markDead(w, "submit failed: "+err.Error())
			return "", errWorkerLost
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var sv submitView
			err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sv)
			resp.Body.Close()
			if err != nil || sv.ID == "" {
				return "", fmt.Errorf("worker %s: malformed submit response: %v", w.ID, err)
			}
			return sv.ID, nil
		case http.StatusTooManyRequests:
			// Backpressure: the worker's queue is full (or it is
			// draining). Honor Retry-After, capped so a dying worker's
			// hint cannot stall the sweep.
			delay := c.opts.PollInterval
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
				if delay > 2*time.Second {
					delay = 2 * time.Second
				}
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			c.fanoutRetries.Add(1)
			select {
			case <-time.After(delay):
			case <-w.down:
				return "", errWorkerLost
			case <-c.ctx.Done():
				return "", errWorkerLost
			}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return "", fmt.Errorf("worker %s refused point: %s: %s",
				w.ID, resp.Status, bytes.TrimSpace(msg))
		}
	}
}

// awaitJob polls one worker job to a terminal state.
func (c *Coordinator) awaitJob(w *worker, jobID string) (*sim.Result, error) {
	url := w.URL + "/v1/runs/" + jobID
	for {
		select {
		case <-w.down:
			return nil, errWorkerLost
		case <-c.ctx.Done():
			return nil, errWorkerLost
		case <-time.After(c.opts.PollInterval):
		}
		resp, err := c.hc.Get(url)
		if err != nil {
			c.markDead(w, "poll failed: "+err.Error())
			return nil, errWorkerLost
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			// A worker that forgot an admitted job restarted without its
			// journal; treat as lost so the point reassigns.
			c.markDead(w, fmt.Sprintf("job %s vanished (%s)", jobID, resp.Status))
			return nil, errWorkerLost
		}
		var jv jobView
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			c.markDead(w, "poll decode failed: "+err.Error())
			return nil, errWorkerLost
		}
		switch jv.Status {
		case "done":
			if jv.Result == nil {
				return nil, fmt.Errorf("worker %s: job %s done without result", w.ID, jobID)
			}
			return jv.Result, nil
		case "failed", "stalled":
			// Deterministic simulation outcome: final, not reassigned.
			msg := jv.Error
			if msg == "" {
				msg = "job " + jv.Status
			}
			return nil, fmt.Errorf("worker %s: %s", w.ID, msg)
		}
	}
}
