package coord

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipcp/internal/experiments"
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestCoord returns a coordinator with fast test timings and its
// httptest front end.
func newTestCoord(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(Options{
		DataDir:          t.TempDir(),
		HeartbeatTimeout: 600 * time.Millisecond,
		PollInterval:     10 * time.Millisecond,
		Log:              discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// --- grid expansion ---------------------------------------------------------

func TestSweepExpandCrossProduct(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"mcf-994", "bwaves-98"},
		L1D:       []string{"", "ipcp", "spp"},
		L2:        []string{"", "ipcp"},
		TimeoutMS: 5000,
	}
	pts, err := req.expand(4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("expanded to %d points, want 12", len(pts))
	}
	// Expansion order is workload-outermost, so points sharing a warmup
	// identity are contiguous; the first six belong to mcf-994.
	for i, pt := range pts[:6] {
		if pt.Workloads[0] != "mcf-994" {
			t.Errorf("point %d workload = %s, want mcf-994", i, pt.Workloads[0])
		}
	}
	if pts[0].L1D != "" || pts[1].L2 != "ipcp" || pts[2].L1D != "ipcp" {
		t.Errorf("unexpected expansion order: %+v %+v %+v", pts[0], pts[1], pts[2])
	}
	// Exactly two warmup-identity groups: the prefetcher axes never
	// enter the group key.
	groups := map[string]bool{}
	for _, pt := range pts {
		groups[groupKey(pt)] = true
	}
	if len(groups) != 2 {
		t.Errorf("grid groups into %d warmup identities, want 2", len(groups))
	}
}

func TestSweepExpandValidates(t *testing.T) {
	cases := []struct {
		name string
		req  SweepRequest
	}{
		{"empty", SweepRequest{}},
		{"unknown workload", SweepRequest{Workloads: []string{"no-such-trace"}}},
		{"unknown prefetcher", SweepRequest{Workloads: []string{"mcf-994"}, L1D: []string{"warp-drive"}}},
		{"negative timeout", SweepRequest{Workloads: []string{"mcf-994"}, TimeoutMS: -1}},
		{"bad explicit point", SweepRequest{Points: []PointSpec{{Workloads: []string{"mcf-994"}, Cores: 3}}}},
	}
	for _, tc := range cases {
		if _, err := tc.req.expand(4096); err == nil {
			t.Errorf("%s: expand accepted an invalid request", tc.name)
		}
	}
	big := SweepRequest{Workloads: []string{"mcf-994"}, L1D: []string{"", "ipcp"}}
	if _, err := big.expand(1); err == nil {
		t.Error("expand accepted a grid beyond the point cap")
	}
}

func TestSweepExpandTimeoutInheritance(t *testing.T) {
	req := SweepRequest{
		Workloads: []string{"mcf-994"},
		Points:    []PointSpec{{Workloads: []string{"bwaves-98"}, TimeoutMS: 99}},
		TimeoutMS: 1234,
	}
	c, _ := newTestCoord(t)
	sw, err := c.acceptSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if got := sw.points[0].Spec.TimeoutMS; got != 1234 {
		t.Errorf("grid point timeout = %d, want inherited 1234", got)
	}
	if got := sw.points[1].Spec.TimeoutMS; got != 99 {
		t.Errorf("explicit point timeout = %d, want its own 99", got)
	}
}

// --- blob store --------------------------------------------------------------

func TestBlobStoreHTTPRoundTrip(t *testing.T) {
	c, ts := newTestCoord(t)
	key := strings.Repeat("ab", 32)
	payload := []byte("snapshot bytes")
	frame := experiments.EncodeBlobFrame(payload)

	// Miss first.
	resp, err := http.Get(ts.URL + "/v1/blobs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing blob = %d, want 404", resp.StatusCode)
	}

	put := func(k string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/blobs/"+k, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(key, frame); code != http.StatusCreated {
		t.Fatalf("PUT blob = %d, want 201", code)
	}
	resp, err = http.Get(ts.URL + "/v1/blobs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, frame) {
		t.Fatalf("GET blob = %d, frame mismatch", resp.StatusCode)
	}

	// Damage is refused at the door...
	if code := put(strings.Repeat("cd", 32), []byte("not a frame")); code != http.StatusBadRequest {
		t.Fatalf("PUT bad frame = %d, want 400", code)
	}
	// ...and bad keys never touch the filesystem. (Multi-segment
	// traversal attempts already die in the mux's single-segment
	// {key} pattern; single-segment junk dies in validKey.)
	if code := put(strings.Repeat("ZZ", 32), frame); code != http.StatusBadRequest {
		t.Fatalf("PUT non-hex key = %d, want 400", code)
	}
	if code := put("..", frame); code == http.StatusCreated {
		t.Fatalf("PUT dot-dot key = %d, want a refusal", code)
	}

	m := c.Metrics()
	if m.Blobs.Puts != 1 || m.Blobs.Rejected != 1 || m.Blobs.Hits != 1 {
		t.Errorf("blob counters = %+v, want puts=1 rejected=1 hits=1", m.Blobs)
	}
}

// TestBlobStoreQuarantinesDamage flips bits in a stored blob on disk:
// the next GET must 404 (never serve the damage) and move the file to
// corrupt/.
func TestBlobStoreQuarantinesDamage(t *testing.T) {
	c, ts := newTestCoord(t)
	key := strings.Repeat("ef", 32)
	if err := c.blobs.put(key, experiments.EncodeBlobFrame([]byte("precious"))); err != nil {
		t.Fatal(err)
	}
	p := c.blobs.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/blobs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET damaged blob = %d, want 404", resp.StatusCode)
	}
	if c.blobs.quarantined.Load() != 1 {
		t.Errorf("quarantined = %d, want 1", c.blobs.quarantined.Load())
	}
	if _, err := os.Stat(filepath.Join(c.blobs.dir, "corrupt", filepath.Base(p))); err != nil {
		t.Errorf("damaged blob not preserved in corrupt/: %v", err)
	}
}

// TestBlobClientRoundTrip drives the worker-side RemoteBlobs
// implementation against a live coordinator.
func TestBlobClientRoundTrip(t *testing.T) {
	_, ts := newTestCoord(t)
	cl := NewBlobClient(ts.URL, discardLog())
	key := strings.Repeat("12", 32)
	if _, ok := cl.GetBlob(key); ok {
		t.Fatal("GetBlob hit on an empty store")
	}
	cl.PutBlob(key, []byte("shared result"))
	payload, ok := cl.GetBlob(key)
	if !ok || string(payload) != "shared result" {
		t.Fatalf("GetBlob = %q, %v; want round-tripped payload", payload, ok)
	}
}

// TestSubmitSweepBodyTooLarge extends the 413 bugfix to the new
// endpoint: grid requests are bounded too.
func TestSubmitSweepBodyTooLarge(t *testing.T) {
	_, ts := newTestCoord(t)
	huge := []byte(`{"workloads":["` + strings.Repeat("x", maxRequestBody+1024) + `"]}`)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("POST /v1/sweeps with %d-byte body = %d, want 413", len(huge), resp.StatusCode)
	}
}

// --- registry & agent ---------------------------------------------------------

func TestWorkerRegistryLifecycle(t *testing.T) {
	c, _ := newTestCoord(t)
	w1 := c.register("http://127.0.0.1:1111", 2)
	if !c.heartbeat(w1.ID) {
		t.Fatal("heartbeat for a live worker refused")
	}
	// Re-registration from the same URL supersedes the old entry.
	w2 := c.register("http://127.0.0.1:1111", 2)
	if c.heartbeat(w1.ID) {
		t.Error("heartbeat for a superseded worker accepted")
	}
	if !c.heartbeat(w2.ID) {
		t.Error("heartbeat for the new incarnation refused")
	}
	m := c.Metrics()
	if m.Workers.Registered != 2 || m.Workers.Lost != 1 || m.Workers.Live != 1 {
		t.Errorf("worker counters = %+v, want registered=2 lost=1 live=1", m.Workers)
	}
}

func TestReaperDeclaresSilentWorkersLost(t *testing.T) {
	c, _ := newTestCoord(t)
	w := c.register("http://127.0.0.1:2222", 1)
	// Observe via the down channel, not heartbeat(): a heartbeat is a
	// liveness refresh and would keep the worker alive forever.
	select {
	case <-w.down:
	case <-time.After(5 * time.Second):
		t.Fatal("silent worker never declared lost")
	}
	if c.heartbeat(w.ID) {
		t.Error("heartbeat accepted for a reaped worker")
	}
}

// TestAgentReregisters covers the worker agent's recovery loop: when
// its incarnation is declared lost (here: forced), the next heartbeat's
// 404 makes it register again.
func TestAgentReregisters(t *testing.T) {
	c, ts := newTestCoord(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	StartAgent(ctx, ts.URL, "http://127.0.0.1:3333", 1, discardLog())

	firstID := waitLiveWorker(t, c, "")
	c.mu.Lock()
	c.markDeadLocked(c.workers[firstID], "test kill")
	c.mu.Unlock()

	secondID := waitLiveWorker(t, c, firstID)
	if secondID == firstID {
		t.Fatal("agent did not re-register under a fresh id")
	}
}

// waitLiveWorker polls until a live worker other than exclude exists.
func waitLiveWorker(t *testing.T, c *Coordinator, exclude string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		for id, w := range c.workers {
			if !w.dead && id != exclude {
				c.mu.Unlock()
				return id
			}
		}
		c.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no live worker appeared")
	return ""
}
