package coord

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ipcp/internal/experiments"
	"ipcp/internal/serve"
	"ipcp/internal/trace"
	"ipcp/internal/workload"
)

// e2eScale keeps every point in the low milliseconds; identical to the
// single-node sweep tests' scale so the reference results line up.
var e2eScale = experiments.Scale{Warmup: 2000, Measure: 5000, Seed: 1}

// Gate workloads let the kill test hold sweep points in the running
// state deterministically: their stream construction blocks until the
// gate opens. Four distinct names → four warmup-identity groups.
var (
	coordGateMu   sync.Mutex
	coordGateOpen chan struct{} // nil: gate off (streams build immediately)
)

func gatePoints(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	coordGateMu.Lock()
	coordGateOpen = ch
	coordGateMu.Unlock()
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(func() {
		release()
		coordGateMu.Lock()
		coordGateOpen = nil
		coordGateMu.Unlock()
	})
	return release
}

func init() {
	for i := 0; i < 4; i++ {
		workload.Register(workload.Spec{
			Name: fmt.Sprintf("coord-gate-%d", i), Suite: "test",
			NewStream: func(seed int64) trace.Stream {
				coordGateMu.Lock()
				ch := coordGateOpen
				coordGateMu.Unlock()
				if ch != nil {
					<-ch
				}
				return &trace.SliceStream{
					Instrs: []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x10000}}},
					Loop:   true,
				}
			},
		})
	}
}

// testWorker is one in-process ipcpd worker: a serve.Server, its
// httptest listener, and the agent keeping it registered.
type testWorker struct {
	srv    *serve.Server
	ts     *httptest.Server
	cancel context.CancelFunc
	killed bool
}

// startWorker boots a worker wired to the coordinator: shared-warmup
// methodology, private disk cache, the coordinator's blob store behind
// it, and an agent registering the listener's URL.
func startWorker(t *testing.T, coordURL string) *testWorker {
	t.Helper()
	srv, err := serve.New(serve.Options{
		Scale:        e2eScale,
		SharedWarmup: true,
		CacheDir:     t.TempDir(),
		RemoteBlobs:  NewBlobClient(coordURL, discardLog()),
		Workers:      2,
		QueueSize:    64,
		Log:          discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	StartAgent(ctx, coordURL, ts.URL, 2, discardLog())
	w := &testWorker{srv: srv, ts: ts, cancel: cancel}
	t.Cleanup(func() { w.kill() })
	return w
}

// kill is the in-process stand-in for SIGKILL: the agent stops
// heartbeating, in-flight coordinator connections break, and the
// listener refuses everything after — from the coordinator's side the
// worker is gone mid-conversation.
func (w *testWorker) kill() {
	if w.killed {
		return
	}
	w.killed = true
	w.cancel()
	w.ts.CloseClientConnections()
	w.ts.Close()
	go w.srv.Close() // may wait on gated simulations; never blocks the test
}

// waitWorkers blocks until n workers are live on the coordinator.
func waitWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Metrics().Workers.Live >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("never saw %d live workers", n)
}

// submitSweep posts a sweep and returns its id.
func submitSweep(t *testing.T, coordURL string, req SweepRequest) string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordURL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sv sweepSubmitView
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || sv.ID == "" {
		t.Fatalf("POST /v1/sweeps = %d (%+v), want 202", resp.StatusCode, sv)
	}
	return sv.ID
}

// getSweep fetches the merged report.
func getSweep(t *testing.T, coordURL, id string) sweepView {
	t.Helper()
	resp, err := http.Get(coordURL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v sweepView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitSweep polls until the sweep completes and returns the report.
func waitSweep(t *testing.T, coordURL, id string, timeout time.Duration) sweepView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		v := getSweep(t, coordURL, id)
		if v.Status == "done" {
			return v
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not complete within %s", id, timeout)
	return sweepView{}
}

// TestE2EDistributedSweepMatchesSingleNode is the tentpole acceptance
// test: a 12-point tracked grid submitted as one POST /v1/sweeps to a
// coordinator with 3 workers completes with per-point results
// byte-identical to single-node RunSweep, streams partial aggregation
// on /events, and reports fan-out and blob counters on /metrics. Then
// the fleet is replaced by one fresh worker and the same grid is
// re-submitted: every point must be served from the shared blob store
// without a single simulation.
func TestE2EDistributedSweepMatchesSingleNode(t *testing.T) {
	c, cts := newTestCoord(t)
	workers := []*testWorker{
		startWorker(t, cts.URL),
		startWorker(t, cts.URL),
		startWorker(t, cts.URL),
	}
	waitWorkers(t, c, 3)

	req := SweepRequest{
		Workloads: []string{"mcf-994", "bwaves-98"},
		L1D:       []string{"", "ipcp", "spp"},
		L2:        []string{"", "ipcp"},
	}
	id := submitSweep(t, cts.URL, req)

	// Follow the events stream while the sweep runs: the aggregation
	// counts must be monotonic and the final line must be the terminal
	// "done" event carrying the full tally.
	events := make(chan []sweepEvent, 1)
	go func() {
		var got []sweepEvent
		resp, err := http.Get(cts.URL + "/v1/sweeps/" + id + "/events")
		if err == nil {
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var ev sweepEvent
				if json.Unmarshal(sc.Bytes(), &ev) == nil {
					got = append(got, ev)
				}
			}
			resp.Body.Close()
		}
		events <- got
	}()

	view := waitSweep(t, cts.URL, id, 60*time.Second)
	if view.Total != 12 || view.Done != 12 || view.Failed != 0 {
		t.Fatalf("sweep finished total=%d done=%d failed=%d, want 12/12/0",
			view.Total, view.Done, view.Failed)
	}
	if view.Groups != 2 {
		t.Errorf("sweep grouped into %d warmup identities, want 2", view.Groups)
	}

	// The grid's two warmup groups landed on two distinct workers.
	byWorker := map[string]bool{}
	for _, pt := range view.Points {
		byWorker[pt.Worker] = true
	}
	if len(byWorker) != 2 {
		t.Errorf("points ran on %d workers, want 2 (one per warmup group)", len(byWorker))
	}

	// Byte-identity against single-node RunSweep over the same grid in
	// the same order.
	var specs []experiments.RunSpec
	for _, w := range req.Workloads {
		for _, l1d := range req.L1D {
			for _, l2 := range req.L2 {
				specs = append(specs, experiments.RunSpec{Workloads: []string{w}, L1D: l1d, L2: l2})
			}
		}
	}
	ref := experiments.NewSession(e2eScale)
	want, errs := ref.RunSweep(specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reference spec %d: %v", i, err)
		}
	}
	for i, pt := range view.Points {
		if pt.Index != i {
			t.Fatalf("point %d reported index %d: per-point order lost", i, pt.Index)
		}
		got, err := json.Marshal(pt.Result)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp) {
			t.Errorf("point %d: distributed result diverges from single-node RunSweep\ngot:  %s\nwant: %s",
				i, got, exp)
		}
	}

	// Partial aggregation arrived on the follow-stream.
	evs := <-events
	if len(evs) < 14 { // accepted + 12 points + done
		t.Fatalf("events stream delivered %d lines, want >= 14", len(evs))
	}
	last := 0
	for _, ev := range evs {
		if ev.Done < last {
			t.Errorf("aggregation went backwards: done=%d after %d", ev.Done, last)
		}
		last = ev.Done
		if ev.Total != 12 {
			t.Errorf("event total = %d, want 12", ev.Total)
		}
	}
	if fin := evs[len(evs)-1]; fin.Kind != "done" || fin.Done != 12 {
		t.Errorf("final event = %+v, want kind=done done=12", fin)
	}

	// Fan-out and blob counters are live on /metrics — JSON...
	m := c.Metrics()
	if m.Fanout.Submitted < 12 {
		t.Errorf("fanout submitted = %d, want >= 12", m.Fanout.Submitted)
	}
	if m.Points.Done != 12 {
		t.Errorf("points done = %d, want 12", m.Points.Done)
	}
	if m.Blobs.Puts == 0 {
		t.Error("no blobs were pushed to the shared store")
	}
	// ...and in the Prometheus exposition.
	reqProm, _ := http.NewRequest(http.MethodGet, cts.URL+"/metrics", nil)
	reqProm.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(reqProm)
	if err != nil {
		t.Fatal(err)
	}
	promBody := new(bytes.Buffer)
	promBody.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"ipcpc_points_total{outcome=\"done\"} 12",
		"ipcpc_fanout_total{kind=\"submitted\"}",
		"ipcpc_blob_requests_total{op=\"put\"}",
		"ipcpc_workers_live 3",
	} {
		if !strings.Contains(promBody.String(), metric) {
			t.Errorf("Prometheus exposition missing %q", metric)
		}
	}
	// Per-worker span lanes: every point span is stamped with its
	// worker's id.
	lanes := map[string]int{}
	for _, sp := range c.Spans().Snapshot() {
		if sp.Name == "sweep.point" {
			lanes[sp.JobID]++
		}
	}
	if len(lanes) != 2 {
		t.Errorf("sweep.point spans span %d worker lanes, want 2 (%v)", len(lanes), lanes)
	}

	// --- shared-store replay: a fresh worker, an empty cache, zero
	// simulations ---------------------------------------------------
	for _, w := range workers {
		w.kill()
	}
	fresh := startWorker(t, cts.URL)
	waitWorkers(t, c, 1)

	id2 := submitSweep(t, cts.URL, req)
	view2 := waitSweep(t, cts.URL, id2, 60*time.Second)
	if view2.Done != 12 || view2.Failed != 0 {
		t.Fatalf("replay sweep done=%d failed=%d, want 12/0", view2.Done, view2.Failed)
	}
	for i, pt := range view2.Points {
		got, _ := json.Marshal(pt.Result)
		exp, _ := json.Marshal(want[i])
		if !bytes.Equal(got, exp) {
			t.Errorf("replay point %d diverges", i)
		}
	}
	st := fresh.srv.Metrics()
	if st.Session.Executed != 0 {
		t.Errorf("fresh worker executed %d simulations, want 0 (all points from the shared store)",
			st.Session.Executed)
	}
	if st.Session.RemoteBlobHits < 12 {
		t.Errorf("fresh worker remote blob hits = %d, want >= 12", st.Session.RemoteBlobHits)
	}
	if hits := c.Metrics().Blobs.Hits; hits < 12 {
		t.Errorf("coordinator blob hits = %d, want >= 12", hits)
	}
}

// TestE2EWorkerKillMidSweepReassigns is the chaos acceptance test: one
// worker dies mid-sweep (agent gone, connections severed — the
// in-process SIGKILL) and the coordinator reassigns its outstanding
// points to the survivors. Zero acknowledged points are lost: every
// point of the accepted sweep reports a result.
func TestE2EWorkerKillMidSweepReassigns(t *testing.T) {
	c, cts := newTestCoord(t)
	workers := []*testWorker{
		startWorker(t, cts.URL),
		startWorker(t, cts.URL),
		startWorker(t, cts.URL),
	}
	waitWorkers(t, c, 3)

	release := gatePoints(t)
	req := SweepRequest{
		Workloads: []string{"coord-gate-0", "coord-gate-1", "coord-gate-2", "coord-gate-3"},
		L1D:       []string{"", "ipcp", "spp"},
		L2:        []string{"", "ipcp"},
	}
	id := submitSweep(t, cts.URL, req) // 24 points, 4 warmup groups

	// Wait until every worker holds running points, so the kill is
	// guaranteed to strand some mid-flight.
	victim := workers[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		view := getSweep(t, cts.URL, id)
		running := map[string]int{}
		for _, pt := range view.Points {
			if pt.Status == "running" {
				running[pt.Worker]++
			}
		}
		if len(running) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("points never spread across 3 workers (running on %v)", running)
		}
		time.Sleep(20 * time.Millisecond)
	}

	victim.kill()
	release()

	view := waitSweep(t, cts.URL, id, 120*time.Second)
	if view.Total != 24 || view.Done != 24 || view.Failed != 0 {
		t.Fatalf("post-kill sweep total=%d done=%d failed=%d, want 24/24/0 (zero lost points)",
			view.Total, view.Done, view.Failed)
	}
	m := c.Metrics()
	if m.Points.Reassigned == 0 {
		t.Error("no points were reassigned — the kill missed the sweep")
	}
	if m.Workers.Lost == 0 {
		t.Error("the killed worker was never declared lost")
	}
	// Reassigned points record multiple attempts in the merged report.
	multi := 0
	for _, pt := range view.Points {
		if pt.Attempts > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no point reports a second attempt after reassignment")
	}
}
