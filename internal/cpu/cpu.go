// Package cpu models a trace-driven out-of-order core: a 4-wide
// front-end with a bimodal branch predictor and an L1-I, a 256-entry
// reorder buffer, non-blocking loads issued to the L1-D, and in-order
// retirement. The model captures what matters for prefetching studies —
// ROB-limited memory-level parallelism and retirement stalls on cache
// misses — without register renaming or functional execution.
package cpu

import (
	"fmt"
	"math"

	"ipcp/internal/memsys"
	"ipcp/internal/trace"
	"ipcp/internal/vmem"
)

// Config describes the core.
type Config struct {
	Width             int // dispatch/retire width per cycle
	ROBSize           int
	MispredictPenalty int // redirect cycles after a mispredicted branch
	// L1IHitLatency is the expected instruction-fetch hit latency;
	// code reads taking longer stall the front-end.
	L1IHitLatency int
	// LoadPortsPerCycle bounds loads sent to the L1-D per cycle.
	LoadPortsPerCycle int
}

// DefaultConfig matches the paper's Table II core.
func DefaultConfig() Config {
	return Config{
		Width:             4,
		ROBSize:           256,
		MispredictPenalty: 12,
		L1IHitLatency:     3,
		LoadPortsPerCycle: 2,
	}
}

// Stats aggregates core counters.
type Stats struct {
	Retired          uint64
	Cycles           uint64
	Loads            uint64
	Stores           uint64
	Branches         uint64
	Mispredicts      uint64
	FetchStallCycles uint64
	ROBFullCycles    uint64
	// DepBlocked counts load-issue attempts deferred by an address
	// dependency.
	DepBlocked uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// robEntry is one in-flight instruction.
type robEntry struct {
	seq          int64
	doneAt       int64
	pendingLoads int
	valid        bool
}

// pendingLoad is a load waiting for TLB latency, its address
// dependency, and an L1-D queue slot.
type pendingLoad struct {
	seq     int64
	vaddr   memsys.Addr
	paddr   memsys.Addr
	ipVal   memsys.Addr
	readyAt int64 // after address translation
	// depSeq, when non-zero, is the sequence number of the load whose
	// data this load's address depends on; issue waits for it.
	depSeq int64
	// isStore marks an RFO from the store buffer: it issues in order
	// with the loads but does not block retirement.
	isStore bool
}

// loadRing is a growable FIFO of pending loads. It replaces the old
// loadQ slice, whose head-slide (loadQ = loadQ[1:]) forced a fresh
// backing array every drain cycle; the ring reuses one buffer for the
// life of the core.
type loadRing struct {
	buf  []pendingLoad // len(buf) is a power of two (or 0 before first push)
	head int
	size int
}

func (q *loadRing) push(pl pendingLoad) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)&(len(q.buf)-1)] = pl
	q.size++
}

func (q *loadRing) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	next := make([]pendingLoad, n)
	for i := 0; i < q.size; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}

// front returns the oldest entry; only valid when size > 0.
func (q *loadRing) front() *pendingLoad { return &q.buf[q.head] }

func (q *loadRing) pop() {
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.size--
}

// Core is one simulated CPU.
type Core struct {
	ID  int
	cfg Config

	stream trace.Stream
	l1d    memsys.Sink
	l1i    memsys.Sink
	tlb    *vmem.Hierarchy
	pt     *vmem.PageTable

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int
	seq      int64

	loadQ       loadRing
	lastLoadSeq int64

	bp bimodal

	fetchStallUntil int64
	lastFetchBlock  uint64
	codeSeq         int64 // in-flight code read tag (-1 none)
	codeIssuedAt    int64
	seqCode         int64

	streamEnded bool
	// fetchStopped gates dispatch during snapshot drain: the front-end
	// stops feeding the ROB so in-flight work can retire to quiescence.
	fetchStopped bool

	// instr is the dispatch decode buffer: passing a stack variable's
	// address through the trace.Stream interface would heap-allocate one
	// Instr per dispatched instruction. Streams reset or fully overwrite
	// it in Next.
	instr trace.Instr

	// pool recycles Requests (nil: allocate per request).
	pool *memsys.RequestPool
	// issueBlockedOnSink records that the load-queue head bounced off a
	// full L1-D read queue this cycle; the queue can only drain through
	// cache activity, which pins the scheduler awake on the cache side.
	issueBlockedOnSink bool

	Stats Stats
}

// New constructs a core reading from stream, with its own page table
// drawn from alloc. The L1 sinks are attached with Attach.
func New(id int, cfg Config, stream trace.Stream, alloc *vmem.PhysAllocator) (*Core, error) {
	if cfg.Width <= 0 || cfg.ROBSize <= 0 {
		return nil, fmt.Errorf("cpu: width and ROB size must be positive")
	}
	if cfg.LoadPortsPerCycle <= 0 {
		cfg.LoadPortsPerCycle = 1
	}
	return &Core{
		ID:      id,
		cfg:     cfg,
		stream:  stream,
		tlb:     vmem.NewHierarchy(),
		pt:      vmem.NewPageTable(alloc),
		rob:     make([]robEntry, cfg.ROBSize),
		bp:      newBimodal(12),
		codeSeq: -1,
	}, nil
}

// Attach wires the core to its L1 caches.
func (c *Core) Attach(l1d, l1i memsys.Sink) {
	c.l1d = l1d
	c.l1i = l1i
}

// SetRequestPool attaches the system-wide request free list.
func (c *Core) SetRequestPool(p *memsys.RequestPool) { c.pool = p }

// PageTable exposes the core's address space (the L1-D prefetcher's
// translator uses it).
func (c *Core) PageTable() *vmem.PageTable { return c.pt }

// Retired returns the number of retired instructions.
func (c *Core) Retired() uint64 { return c.Stats.Retired }

// ResetStats zeroes the counters (end of warmup).
func (c *Core) ResetStats() { c.Stats = Stats{} }

// Done reports whether a finite trace has been fully consumed and
// drained.
func (c *Core) Done() bool { return c.streamEnded && c.robCount == 0 }

// ReturnData implements memsys.Receiver: load data and code reads
// coming back from the L1s. The core created these requests, so it
// recycles them here — the caller must not touch r afterwards.
func (c *Core) ReturnData(ready int64, r *memsys.Request) {
	c.returnData(ready, r)
	c.pool.Put(r)
}

func (c *Core) returnData(ready int64, r *memsys.Request) {
	if r.Type == memsys.CodeRead {
		if r.Tag == c.codeSeq {
			c.codeSeq = -1
			// Stall the front-end only for the portion beyond a
			// pipelined hit.
			if ready-c.codeIssuedAt > int64(c.cfg.L1IHitLatency)+1 {
				if ready > c.fetchStallUntil {
					c.fetchStallUntil = ready
				}
			}
		}
		return
	}
	// Load return: locate the ROB entry by sequence number. Sequence
	// numbers start at 1 and advance in lockstep with the tail, so
	// seq s always lives in slot (s-1) mod size.
	idx := int((r.Tag - 1) % int64(len(c.rob)))
	e := &c.rob[idx]
	if !e.valid || e.seq != r.Tag {
		return // already retired (should not happen for loads)
	}
	e.pendingLoads--
	if ready > e.doneAt {
		e.doneAt = ready
	}
}

// Cycle advances the core one cycle: retire, issue pending loads,
// dispatch.
func (c *Core) Cycle(now int64) {
	c.Stats.Cycles++
	c.retire(now)
	c.issueLoads(now)
	c.dispatch(now)
}

// NextEvent reports the earliest future cycle at which clocking the
// core could change architectural state. Between now and the returned
// cycle, every Cycle call would only bump the per-cycle stall counters,
// whose per-cycle behaviour is constant across the span — AccountSkip
// replays them in closed form. math.MaxInt64 means the core is inert
// until an external data return arrives (those happen only inside some
// cache's own event, which bounds the global skip).
func (c *Core) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)

	// Retirement: the head entry completes at doneAt (pending loads are
	// finalized by ReturnData during clocked cycles only).
	if c.robCount > 0 {
		e := &c.rob[c.robHead]
		if e.pendingLoads == 0 {
			if e.doneAt <= now {
				return now + 1
			}
			if e.doneAt < next {
				next = e.doneAt
			}
		}
	}

	// Load issue: the queue head either waits for translation
	// (readyAt), for its address dependency (the dep entry's doneAt),
	// or for an L1-D queue slot (cache activity keeps the system
	// clocked until the queue drains).
	if c.loadQ.size > 0 {
		pl := c.loadQ.front()
		if pl.depSeq != 0 && !c.depResolved(now, pl.depSeq) {
			de := &c.rob[int((pl.depSeq-1)%int64(len(c.rob)))]
			if de.pendingLoads == 0 && de.doneAt > now && de.doneAt < next {
				next = de.doneAt
			}
		} else if pl.readyAt > now {
			if pl.readyAt < next {
				next = pl.readyAt
			}
		} else if !c.issueBlockedOnSink {
			return now + 1
		}
	}

	// Dispatch: a pending fetch stall is always a breakpoint (the
	// FetchStall→ROBFull accounting switch happens there); otherwise an
	// unstalled core with ROB space and a live stream dispatches next
	// cycle.
	if c.fetchStallUntil > now {
		if c.fetchStallUntil < next {
			next = c.fetchStallUntil
		}
	} else if !c.streamEnded && !c.fetchStopped && c.robCount < len(c.rob) {
		return now + 1
	}

	return next
}

// AccountSkip replays the per-cycle statistics for the skipped cycles
// [from, to). NextEvent's breakpoints guarantee each condition below is
// constant across the span, so the closed form equals clocking every
// cycle.
func (c *Core) AccountSkip(from, to int64) {
	d := uint64(to - from)
	c.Stats.Cycles += d
	if c.loadQ.size > 0 {
		pl := c.loadQ.front()
		if pl.depSeq != 0 && !c.depResolved(from, pl.depSeq) {
			c.Stats.DepBlocked += d
		}
	}
	if c.fetchStopped {
		return // dispatch is gated: no front-end stall accounting
	}
	if from < c.fetchStallUntil {
		c.Stats.FetchStallCycles += d
	} else if c.robCount == len(c.rob) {
		c.Stats.ROBFullCycles += d
	}
}

func (c *Core) retire(now int64) {
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.pendingLoads > 0 || e.doneAt > now {
			return
		}
		e.valid = false
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
		c.Stats.Retired++
	}
}

// depResolved reports whether the load with sequence number dep has
// produced its data (or already retired).
func (c *Core) depResolved(now, dep int64) bool {
	if dep == 0 {
		return true
	}
	e := &c.rob[int((dep-1)%int64(len(c.rob)))]
	if !e.valid || e.seq != dep {
		return true // retired
	}
	return e.pendingLoads == 0 && e.doneAt <= now
}

// issueLoads sends memory operations to the L1-D strictly in program
// order (an in-order address-generation model): a load blocked on an
// address dependency blocks younger memory operations too. This keeps
// each instruction pointer's access sequence in order — what per-IP
// classifiers see on real hardware — and makes dependent chains
// expose memory latency exactly as pointer chases do.
func (c *Core) issueLoads(now int64) {
	c.issueBlockedOnSink = false
	budget := c.cfg.LoadPortsPerCycle
	for budget > 0 && c.loadQ.size > 0 {
		pl := c.loadQ.front()
		if pl.depSeq != 0 && !c.depResolved(now, pl.depSeq) {
			c.Stats.DepBlocked++
			return
		}
		if pl.readyAt > now {
			return
		}
		r := c.pool.Get()
		*r = memsys.Request{
			Addr:     pl.paddr,
			VAddr:    pl.vaddr,
			IP:       pl.ipVal,
			Type:     memsys.Load,
			CoreID:   c.ID,
			ReturnTo: c,
			Tag:      pl.seq,
			Born:     now,
		}
		if pl.isStore {
			r.Type = memsys.RFO
			r.ReturnTo = nil
		}
		if !c.l1d.AddRead(r) {
			c.pool.Put(r)
			c.issueBlockedOnSink = true
			return
		}
		c.loadQ.pop()
		budget--
	}
}

func (c *Core) dispatch(now int64) {
	if c.fetchStopped {
		return
	}
	if now < c.fetchStallUntil {
		c.Stats.FetchStallCycles++
		return
	}
	for n := 0; n < c.cfg.Width; n++ {
		if c.robCount == len(c.rob) {
			c.Stats.ROBFullCycles++
			return
		}
		in := &c.instr
		if !c.stream.Next(in) {
			// Finite traces replay from the start (the paper replays
			// benchmarks that finish early in multi-core mixes).
			c.stream.Reset()
			if !c.stream.Next(in) {
				c.streamEnded = true
				return
			}
		}
		c.seq++
		seq := c.seq
		e := &c.rob[c.robTail]
		*e = robEntry{seq: seq, doneAt: now + 1, valid: true}
		c.robTail = (c.robTail + 1) % len(c.rob)
		c.robCount++

		// Instruction fetch: one code read per new block.
		if blk := memsys.BlockNumber(in.IP); blk != c.lastFetchBlock {
			c.lastFetchBlock = blk
			c.fetchBlock(now, in.IP)
		}

		// Loads.
		for _, v := range in.Loads {
			if v == 0 {
				continue
			}
			c.Stats.Loads++
			lat := c.tlb.AccessLatency(v)
			e.pendingLoads++
			dep := int64(0)
			// Never depend on a load of the same instruction (it
			// could not resolve before its own entry completes).
			if in.DepPrev && c.lastLoadSeq != seq {
				dep = c.lastLoadSeq
			}
			c.loadQ.push(pendingLoad{
				seq:     seq,
				vaddr:   v,
				paddr:   c.pt.Translate(v),
				readyAt: now + 1 + int64(lat),
				ipVal:   in.IP,
				depSeq:  dep,
			})
			c.lastLoadSeq = seq
		}

		// Stores: the RFO issues through the same in-order queue as
		// the loads (so the L1 sees per-IP access sequences in
		// program order) but does not block retirement — a store
		// buffer drains it.
		for _, v := range in.Stores {
			if v == 0 {
				continue
			}
			c.Stats.Stores++
			lat := c.tlb.AccessLatency(v)
			c.loadQ.push(pendingLoad{
				seq:     seq,
				vaddr:   v,
				paddr:   c.pt.Translate(v),
				readyAt: now + 1 + int64(lat),
				ipVal:   in.IP,
				isStore: true,
			})
		}

		// Branches.
		if in.IsBranch {
			c.Stats.Branches++
			if c.bp.predict(in.IP) != in.Taken {
				c.Stats.Mispredicts++
				c.fetchStallUntil = now + int64(c.cfg.MispredictPenalty)
			}
			c.bp.update(in.IP, in.Taken)
			if in.Taken {
				c.lastFetchBlock = 0 // force a fetch at the target
			}
			if c.fetchStallUntil > now {
				return // redirect: stop dispatching this cycle
			}
		}
	}
}

// fetchBlock issues a code read for the block containing ip.
func (c *Core) fetchBlock(now int64, ip memsys.Addr) {
	if c.l1i == nil {
		return
	}
	c.seqCode++
	r := c.pool.Get()
	*r = memsys.Request{
		Addr:     memsys.BlockAlign(ip), // code: identity-mapped
		VAddr:    memsys.BlockAlign(ip),
		IP:       ip,
		Type:     memsys.CodeRead,
		CoreID:   c.ID,
		ReturnTo: c,
		Tag:      c.seqCode,
		Born:     now,
	}
	if c.l1i.AddRead(r) {
		c.codeSeq = c.seqCode
		c.codeIssuedAt = now
	} else {
		c.pool.Put(r)
	}
}

// bimodal is a table of 2-bit saturating counters.
type bimodal struct {
	table []uint8
	mask  uint64
}

func newBimodal(bits int) bimodal {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return bimodal{table: t, mask: uint64(n - 1)}
}

func (b *bimodal) predict(ip memsys.Addr) bool {
	return b.table[(ip>>2)&b.mask] >= 2
}

func (b *bimodal) update(ip memsys.Addr, taken bool) {
	i := (ip >> 2) & b.mask
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}
