package cpu

import (
	"fmt"

	"ipcp/internal/trace"
	"ipcp/internal/vmem"
)

// Snapshot/restore support. A core is only captured at quiescence —
// empty ROB, empty load queue, no in-flight code read — so the state is
// pure data plus the trace-stream position, which is restored by
// replaying the deterministic stream (exactly mirroring dispatch's
// Next/Reset pattern) rather than serializing generator closures.

// State captures a quiescent core.
type State struct {
	Seq             int64
	SeqCode         int64
	StreamEnded     bool
	RobHead         int
	RobTail         int
	LastLoadSeq     int64
	FetchStallUntil int64
	LastFetchBlock  uint64
	CodeIssuedAt    int64
	BPTable         []uint8
	TLB             vmem.HierarchyState
	PageTable       vmem.PageTableState
	Stats           Stats
}

// StopFetch gates dispatch so the core drains: in-flight instructions
// retire, no new ones enter the ROB.
func (c *Core) StopFetch() { c.fetchStopped = true }

// ResumeFetch re-opens dispatch after a drain.
func (c *Core) ResumeFetch() { c.fetchStopped = false }

// Quiescent reports whether the core holds no in-flight work: empty
// ROB, empty load queue, no outstanding code read.
func (c *Core) Quiescent() bool {
	return c.robCount == 0 && c.loadQ.size == 0 && c.codeSeq == -1
}

// CaptureState captures the core. The core must be quiescent.
func (c *Core) CaptureState() (State, error) {
	if !c.Quiescent() {
		return State{}, fmt.Errorf("cpu: core %d not quiescent (rob=%d loadq=%d code=%d)",
			c.ID, c.robCount, c.loadQ.size, c.codeSeq)
	}
	return State{
		Seq:             c.seq,
		SeqCode:         c.seqCode,
		StreamEnded:     c.streamEnded,
		RobHead:         c.robHead,
		RobTail:         c.robTail,
		LastLoadSeq:     c.lastLoadSeq,
		FetchStallUntil: c.fetchStallUntil,
		LastFetchBlock:  c.lastFetchBlock,
		CodeIssuedAt:    c.codeIssuedAt,
		BPTable:         append([]uint8(nil), c.bp.table...),
		TLB:             c.tlb.State(),
		PageTable:       c.pt.State(),
		Stats:           c.Stats,
	}, nil
}

// RestoreState overwrites a freshly constructed core (same config, a
// fresh deterministic stream from the same generator and seed, and an
// allocator already replayed to the captured position) with s. The
// stream is advanced by replaying Seq successful Next calls using
// dispatch's exact consume pattern, so the generator's internal state
// matches the original core's bit for bit.
func (c *Core) RestoreState(s State) error {
	if len(s.BPTable) != len(c.bp.table) {
		return fmt.Errorf("cpu: branch predictor geometry mismatch")
	}
	var in trace.Instr
	for i := int64(0); i < s.Seq; i++ {
		if !c.stream.Next(&in) {
			c.stream.Reset()
			if !c.stream.Next(&in) {
				return fmt.Errorf("cpu: stream exhausted at replay %d/%d", i, s.Seq)
			}
		}
	}
	c.seq = s.Seq
	c.seqCode = s.SeqCode
	c.streamEnded = s.StreamEnded
	c.robHead = s.RobHead
	c.robTail = s.RobTail
	c.robCount = 0
	c.loadQ = loadRing{}
	c.codeSeq = -1
	c.lastLoadSeq = s.LastLoadSeq
	c.fetchStallUntil = s.FetchStallUntil
	c.lastFetchBlock = s.LastFetchBlock
	c.codeIssuedAt = s.CodeIssuedAt
	copy(c.bp.table, s.BPTable)
	c.tlb.SetState(s.TLB)
	c.pt.SetState(s.PageTable)
	c.Stats = s.Stats
	c.fetchStopped = false
	c.issueBlockedOnSink = false
	return nil
}
