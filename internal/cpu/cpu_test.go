package cpu

import (
	"testing"

	"ipcp/internal/memsys"
	"ipcp/internal/trace"
	"ipcp/internal/vmem"
)

// fakeL1 answers every read after a fixed latency.
type fakeL1 struct {
	latency int64
	pend    []fakeFill
	now     int64
	Reads   int
	RFOs    int
	Code    int
	// issued logs the virtual addresses of data-side requests in
	// arrival order.
	issued []uint64
	// reject makes AddRead fail (backpressure tests).
	reject bool
}

type fakeFill struct {
	at  int64
	req *memsys.Request
}

func (m *fakeL1) AddRead(r *memsys.Request) bool {
	if m.reject {
		return false
	}
	switch r.Type {
	case memsys.RFO:
		m.RFOs++
		m.issued = append(m.issued, r.VAddr)
	case memsys.CodeRead:
		m.Code++
	default:
		m.Reads++
		m.issued = append(m.issued, r.VAddr)
	}
	m.pend = append(m.pend, fakeFill{at: m.now + m.latency, req: r})
	return true
}

func (m *fakeL1) AddWrite(r *memsys.Request) bool    { return true }
func (m *fakeL1) AddPrefetch(r *memsys.Request) bool { return true }

func (m *fakeL1) Cycle(now int64) {
	m.now = now
	rest := m.pend[:0]
	for _, f := range m.pend {
		if f.at <= now {
			if f.req.ReturnTo != nil {
				f.req.ReturnTo.ReturnData(now, f.req)
			}
		} else {
			rest = append(rest, f)
		}
	}
	m.pend = rest
}

func computeStream(n int) trace.Stream {
	instrs := make([]trace.Instr, n)
	for i := range instrs {
		instrs[i] = trace.Instr{IP: 0x400000 + uint64(i)*4}
	}
	return &trace.SliceStream{Instrs: instrs, Loop: true}
}

func newCore(t *testing.T, s trace.Stream, mem *fakeL1) *Core {
	t.Helper()
	c, err := New(0, DefaultConfig(), s, vmem.NewPhysAllocator(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Attach(mem, mem)
	return c
}

func runCore(c *Core, m *fakeL1, cycles int64) {
	for now := int64(0); now < cycles; now++ {
		m.Cycle(now)
		c.Cycle(now)
	}
}

func TestComputeBoundIPC(t *testing.T) {
	m := &fakeL1{latency: 3}
	c := newCore(t, computeStream(64), m)
	runCore(c, m, 1000)
	ipc := c.Stats.IPC()
	if ipc < 3.0 {
		t.Errorf("compute-bound IPC = %.2f, want near width (4)", ipc)
	}
}

func TestLoadLatencyLimitsIPC(t *testing.T) {
	// Every instruction loads a distinct cold address with a long
	// latency; IPC must be far below width.
	mkStream := func() trace.Stream {
		instrs := make([]trace.Instr, 256)
		for i := range instrs {
			instrs[i] = trace.Instr{
				IP:    0x400000,
				Loads: [trace.MaxLoads]uint64{0x100000 + uint64(i)*4096},
			}
		}
		return &trace.SliceStream{Instrs: instrs, Loop: true}
	}
	fast := &fakeL1{latency: 5}
	cfast := newCore(t, mkStream(), fast)
	runCore(cfast, fast, 3000)

	slow := &fakeL1{latency: 300}
	cslow := newCore(t, mkStream(), slow)
	runCore(cslow, slow, 3000)

	if cslow.Stats.IPC() >= cfast.Stats.IPC() {
		t.Errorf("slow-memory IPC (%.3f) not below fast-memory IPC (%.3f)",
			cslow.Stats.IPC(), cfast.Stats.IPC())
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Independent loads should overlap: doubling latency must not
	// double execution time when the ROB can hold many misses.
	mk := func() trace.Stream {
		instrs := make([]trace.Instr, 512)
		for i := range instrs {
			instrs[i] = trace.Instr{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x200000 + uint64(i)*64}}
		}
		return &trace.SliceStream{Instrs: instrs, Loop: true}
	}
	m := &fakeL1{latency: 100}
	c := newCore(t, mk(), m)
	runCore(c, m, 5000)
	// With a 256-entry ROB and 2 load ports, ~2 loads/cycle issue and
	// overlap; IPC should be far above 1/latency.
	if ipc := c.Stats.IPC(); ipc < 0.5 {
		t.Errorf("MLP not exploited: IPC = %.3f", ipc)
	}
}

func TestROBBlocksOnOutstandingLoad(t *testing.T) {
	// One very long load followed by compute: retirement must stall.
	instrs := []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x100000}}}
	for i := 0; i < 1000; i++ {
		instrs = append(instrs, trace.Instr{IP: 0x400004 + uint64(i)*4})
	}
	m := &fakeL1{latency: 10000}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	runCore(c, m, 2000)
	if c.Stats.Retired != 0 {
		t.Errorf("retired %d instructions past an unresolved load", c.Stats.Retired)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	instrs := []trace.Instr{
		{IP: 0x400000, Stores: [trace.MaxStores]uint64{0x100000}},
		{IP: 0x400004},
	}
	m := &fakeL1{latency: 10000}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	runCore(c, m, 500)
	if c.Stats.Retired == 0 {
		t.Error("stores blocked retirement")
	}
	if m.RFOs == 0 {
		t.Error("no RFO issued for stores")
	}
}

func TestBranchMispredictsStallFetch(t *testing.T) {
	// Alternating taken/not-taken defeats the bimodal predictor.
	alternating := make([]trace.Instr, 64)
	for i := range alternating {
		alternating[i] = trace.Instr{
			IP: 0x400000, IsBranch: true, Taken: i%2 == 0, Target: 0x400000,
		}
	}
	m := &fakeL1{latency: 3}
	c := newCore(t, &trace.SliceStream{Instrs: alternating, Loop: true}, m)
	runCore(c, m, 2000)
	if c.Stats.Mispredicts == 0 {
		t.Fatal("no mispredicts recorded for alternating branch")
	}
	if c.Stats.IPC() > 1.0 {
		t.Errorf("IPC %.2f too high for a mispredict-bound loop", c.Stats.IPC())
	}

	// A always-taken branch trains quickly: far fewer mispredicts.
	taken := []trace.Instr{{IP: 0x500000, IsBranch: true, Taken: true, Target: 0x500000}}
	m2 := &fakeL1{latency: 3}
	c2 := newCore(t, &trace.SliceStream{Instrs: taken, Loop: true}, m2)
	runCore(c2, m2, 2000)
	rate1 := float64(c.Stats.Mispredicts) / float64(c.Stats.Branches)
	rate2 := float64(c2.Stats.Mispredicts) / float64(c2.Stats.Branches)
	if rate2 >= rate1 {
		t.Errorf("predictable branch mispredict rate %.2f not below alternating %.2f", rate2, rate1)
	}
}

func TestLoadsCarryIPAndAddresses(t *testing.T) {
	instrs := []trace.Instr{
		{IP: 0xabc000, Loads: [trace.MaxLoads]uint64{0x123456}},
	}
	m := &fakeL1{latency: 5}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	// The very first load pays a cold TLB walk before it can issue.
	runCore(c, m, 400)
	var found bool
	for _, f := range m.pend {
		_ = f
	}
	// Inspect via stats instead: at least one load issued, carrying
	// the right virtual address through translation.
	if m.Reads == 0 {
		t.Fatal("no loads issued")
	}
	// Direct check on a fresh request.
	m2 := &fakeL1{latency: 1000}
	c2 := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m2)
	runCore(c2, m2, 300)
	for _, f := range m2.pend {
		if f.req.Type == memsys.Load {
			found = true
			if f.req.IP != 0xabc000 {
				t.Errorf("load IP = %#x, want 0xabc000", f.req.IP)
			}
			if f.req.VAddr != 0x123456 {
				t.Errorf("load VAddr = %#x, want 0x123456", f.req.VAddr)
			}
			if f.req.Addr&(memsys.PageSize-1) != 0x123456&(memsys.PageSize-1) {
				t.Errorf("physical page offset not preserved: %#x", f.req.Addr)
			}
			break
		}
	}
	if !found {
		t.Fatal("no pending load found")
	}
}

func TestBackpressureRetries(t *testing.T) {
	instrs := []trace.Instr{{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x100000}}}
	m := &fakeL1{latency: 5, reject: true}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	runCore(c, m, 100)
	if m.Reads != 0 {
		t.Fatal("reads accepted while rejecting")
	}
	m.reject = false
	for now := int64(100); now < 200; now++ {
		m.Cycle(now)
		c.Cycle(now)
	}
	if m.Reads == 0 {
		t.Error("queued loads never retried after backpressure lifted")
	}
}

func TestCodeReadsIssuedPerBlock(t *testing.T) {
	// 32 sequential instructions span two 64-byte blocks at 4 B each.
	m := &fakeL1{latency: 1}
	c := newCore(t, computeStream(32), m)
	runCore(c, m, 20)
	if m.Code == 0 {
		t.Fatal("no code reads issued")
	}
	// Code reads must be far fewer than instructions dispatched.
	if uint64(m.Code) > c.Stats.Retired {
		t.Errorf("code reads (%d) exceed retired instructions (%d)", m.Code, c.Stats.Retired)
	}
}

func TestResetStats(t *testing.T) {
	m := &fakeL1{latency: 2}
	c := newCore(t, computeStream(16), m)
	runCore(c, m, 100)
	if c.Stats.Retired == 0 {
		t.Fatal("nothing retired")
	}
	c.ResetStats()
	if c.Stats.Retired != 0 || c.Stats.Cycles != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, Config{Width: 0, ROBSize: 8}, computeStream(1), vmem.NewPhysAllocator(1)); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(0, Config{Width: 4, ROBSize: 0}, computeStream(1), vmem.NewPhysAllocator(1)); err == nil {
		t.Error("zero ROB accepted")
	}
}

func TestFiniteStreamReplays(t *testing.T) {
	// A non-looping stream is replayed via Reset, as the paper does
	// for fast-finishing benchmarks in mixes.
	s := &trace.SliceStream{Instrs: []trace.Instr{{IP: 1}, {IP: 2}}}
	m := &fakeL1{latency: 1}
	c := newCore(t, s, m)
	runCore(c, m, 100)
	if c.Stats.Retired < 10 {
		t.Errorf("retired only %d from a replayable stream", c.Stats.Retired)
	}
	if c.Done() {
		t.Error("replayable stream reported Done")
	}
}
