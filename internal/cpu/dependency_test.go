package cpu

import (
	"testing"

	"ipcp/internal/trace"
)

func TestDependencyChainSerializes(t *testing.T) {
	// 100 dependent loads to distinct lines at latency 100 must take
	// ~100*100 cycles per pass: the chain defeats the ROB's MLP.
	var instrs []trace.Instr
	for i := 0; i < 100; i++ {
		instrs = append(instrs, trace.Instr{
			IP:      0x400000,
			Loads:   [trace.MaxLoads]uint64{0x100000 + uint64(i)*64},
			DepPrev: true,
		})
	}
	m := &fakeL1{latency: 100}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	runCore(c, m, 30000)
	// Serialized: ~100 cycles per instruction → IPC ≈ 0.01.
	if ipc := c.Stats.IPC(); ipc > 0.05 {
		t.Errorf("dependent chain IPC = %.4f, want ~0.01 (serialized)", ipc)
	}
	if c.Stats.DepBlocked == 0 {
		t.Error("no dependency blocking recorded")
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// The same loads without dependencies overlap freely: much higher
	// IPC at the same latency.
	var dep, indep []trace.Instr
	for i := 0; i < 100; i++ {
		in := trace.Instr{
			IP:    0x400000,
			Loads: [trace.MaxLoads]uint64{0x100000 + uint64(i)*64},
		}
		indep = append(indep, in)
		in.DepPrev = true
		dep = append(dep, in)
	}
	md := &fakeL1{latency: 100}
	cd := newCore(t, &trace.SliceStream{Instrs: dep, Loop: true}, md)
	runCore(cd, md, 20000)

	mi := &fakeL1{latency: 100}
	ci := newCore(t, &trace.SliceStream{Instrs: indep, Loop: true}, mi)
	runCore(ci, mi, 20000)

	if ci.Stats.IPC() < cd.Stats.IPC()*5 {
		t.Errorf("independent IPC (%.4f) not ≫ dependent IPC (%.4f)",
			ci.Stats.IPC(), cd.Stats.IPC())
	}
}

func TestDependencyOnHitResolvesQuickly(t *testing.T) {
	// Dependencies through cache hits cost little: alternating
	// dependent loads to the same two lines.
	instrs := []trace.Instr{
		{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x100000}, DepPrev: true},
		{IP: 0x400004, Loads: [trace.MaxLoads]uint64{0x100040}, DepPrev: true},
	}
	m := &fakeL1{latency: 3} // always "hits"
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: true}, m)
	runCore(c, m, 10000)
	if ipc := c.Stats.IPC(); ipc < 0.15 {
		t.Errorf("hit-latency dependent chain IPC = %.4f, too slow", ipc)
	}
}

func TestStoresIssueInOrderWithLoads(t *testing.T) {
	// A store between two loads must reach the L1 between them.
	instrs := []trace.Instr{
		{IP: 0x400000, Loads: [trace.MaxLoads]uint64{0x100000}},
		{IP: 0x400004, Stores: [trace.MaxStores]uint64{0x200000}},
		{IP: 0x400008, Loads: [trace.MaxLoads]uint64{0x300000}},
	}
	m := &fakeL1{latency: 2}
	c := newCore(t, &trace.SliceStream{Instrs: instrs, Loop: false}, m)
	runCore(c, m, 2000) // the core replays the short trace repeatedly
	if m.RFOs == 0 {
		t.Fatal("no RFO issued")
	}
	// The first three data-side requests must appear in program order.
	want := []uint64{0x100000, 0x200000, 0x300000}
	if len(m.issued) < 3 {
		t.Fatalf("issued %d memory ops, want >= 3", len(m.issued))
	}
	for i, w := range want {
		if m.issued[i]&^uint64(63) != w&^uint64(63) {
			t.Errorf("issue order[%d] = %#x, want %#x", i, m.issued[i], w)
		}
	}
}
