// Package chaos is the serving layer's fault-injection harness: named
// injection points compiled into production IO paths (journal appends,
// checkpoint saves, queue handoff) that are inert until an Injector is
// installed. A rule attached to a point can fail it with a disk-shaped
// error (EIO, ENOSPC), cut a write short (a torn write), stall it
// (slow IO), or crash the whole process at exactly that point — the
// software form of a kill -9 landing mid-operation.
//
// Unlike internal/faultinject (test-only types passed into the
// simulator by tests), chaos points live inside production code: the
// crash/restart e2e suite enables them on the real ipcpd binary via
// the IPCPD_CHAOS environment variable and proves the durability
// machinery (journal replay, checkpoint quarantine) holds under fire.
// With no injector installed every hook is a single atomic load.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind is what a rule does when it fires.
type Kind int

const (
	// KindErr fails the point with Rule.Err.
	KindErr Kind = iota
	// KindShort makes the point's writer write only half the buffer
	// and then fail — a torn write that leaves real partial bytes.
	KindShort
	// KindSlow sleeps Rule.Delay before letting the point proceed.
	KindSlow
	// KindCrash terminates the process (exit 137, the kill -9 status)
	// at the point. Tests can override the crash function.
	KindCrash
)

// Rule arms one behavior at one point.
type Rule struct {
	// Point names the injection site, e.g. "journal.append".
	Point string
	// Kind selects the fault.
	Kind Kind
	// Prob is the chance (0,1] the rule fires on an eligible hit.
	Prob float64
	// Err is returned for KindErr (defaults to EIO).
	Err error
	// Delay is the KindSlow stall.
	Delay time.Duration
	// After suppresses the rule for the first After hits of the
	// point, making "crash on exactly the 3rd append" expressible.
	After int
}

// Injector holds the armed rules. The zero value has none; use New.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   map[string][]*Rule
	hits    map[string]int
	crashFn func(point string)
	fired   atomic.Uint64
}

// New returns an empty injector whose probabilistic decisions derive
// from seed, so a chaos run is reproducible.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		rules:   make(map[string][]*Rule),
		hits:    make(map[string]int),
		crashFn: func(point string) { os.Exit(137) },
	}
}

// Add arms one rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.Prob <= 0 || r.Prob > 1 {
		r.Prob = 1
	}
	if r.Err == nil {
		r.Err = syscall.EIO
	}
	rc := r
	in.rules[r.Point] = append(in.rules[r.Point], &rc)
}

// SetCrashFunc replaces the process-exit crash with fn (tests use a
// panic or a flag instead of dying).
func (in *Injector) SetCrashFunc(fn func(point string)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashFn = fn
}

// Fired reports how many rules have fired so far.
func (in *Injector) Fired() uint64 { return in.fired.Load() }

// pick returns the rule that fires for this hit of point, if any.
// KindShort rules only fire through Writer, never through At.
func (in *Injector) pick(point string, forWrite bool) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[point]++
	n := in.hits[point]
	for _, r := range in.rules[point] {
		if r.Kind == KindShort && !forWrite {
			continue
		}
		if n <= r.After {
			continue
		}
		if r.Prob >= 1 || in.rng.Float64() < r.Prob {
			return r
		}
	}
	return nil
}

// At evaluates the point: it may sleep, crash the process, or return
// the injected error. A nil return means the operation proceeds.
func (in *Injector) At(point string) error {
	if in == nil {
		return nil
	}
	r := in.pick(point, false)
	if r == nil {
		return nil
	}
	in.fired.Add(1)
	switch r.Kind {
	case KindSlow:
		time.Sleep(r.Delay)
		return nil
	case KindCrash:
		in.crash(point)
		return nil
	default:
		return fmt.Errorf("chaos %s: %w", point, r.Err)
	}
}

func (in *Injector) crash(point string) {
	in.mu.Lock()
	fn := in.crashFn
	in.mu.Unlock()
	fn(point)
}

// faultWriter interposes the injector on every Write through the
// point, so short writes leave genuine partial bytes behind.
type faultWriter struct {
	in    *Injector
	point string
	w     io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	r := fw.in.pick(fw.point, true)
	if r == nil {
		return fw.w.Write(p)
	}
	fw.in.fired.Add(1)
	switch r.Kind {
	case KindSlow:
		time.Sleep(r.Delay)
		return fw.w.Write(p)
	case KindShort:
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos %s: %w", fw.point, io.ErrShortWrite)
	case KindCrash:
		// Half the bytes land, then the process dies: a torn write
		// exactly as a power cut would leave it.
		fw.w.Write(p[:len(p)/2])
		fw.in.crash(fw.point)
		return 0, fmt.Errorf("chaos %s: crash returned", fw.point)
	default:
		return 0, fmt.Errorf("chaos %s: %w", fw.point, r.Err)
	}
}

// Writer interposes the injector between point and w.
func (in *Injector) Writer(point string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{in: in, point: point, w: w}
}

// Parse builds an injector from a spec string:
//
//	point=kind[:prob[:arg]][,point=kind...]
//
// kinds: eio | enospc | short | slow | crash. prob defaults to 1.
// arg is the slow delay ("50ms") or the crash/err After count.
//
//	journal.append=crash:0.05,checkpoint.save=enospc:0.2
//	checkpoint.write=short:1:2      (always, but only after 2 writes)
//	journal.fsync=slow:1:20ms
func Parse(spec string, seed int64) (*Injector, error) {
	in := New(seed)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rest, ok := strings.Cut(part, "=")
		if !ok || point == "" {
			return nil, fmt.Errorf("chaos: bad rule %q (want point=kind[:prob[:arg]])", part)
		}
		fields := strings.Split(rest, ":")
		r := Rule{Point: point, Prob: 1}
		switch fields[0] {
		case "eio":
			r.Kind, r.Err = KindErr, syscall.EIO
		case "enospc":
			r.Kind, r.Err = KindErr, syscall.ENOSPC
		case "short":
			r.Kind = KindShort
		case "slow":
			r.Kind = KindSlow
		case "crash":
			r.Kind = KindCrash
		default:
			return nil, fmt.Errorf("chaos: unknown kind %q in %q", fields[0], part)
		}
		if len(fields) > 1 && fields[1] != "" {
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("chaos: bad probability %q in %q", fields[1], part)
			}
			r.Prob = p
		}
		if len(fields) > 2 && fields[2] != "" {
			if r.Kind == KindSlow {
				d, err := time.ParseDuration(fields[2])
				if err != nil {
					return nil, fmt.Errorf("chaos: bad delay %q in %q", fields[2], part)
				}
				r.Delay = d
			} else {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("chaos: bad after-count %q in %q", fields[2], part)
				}
				r.After = n
			}
		}
		if len(fields) > 3 {
			return nil, fmt.Errorf("chaos: trailing fields in %q", part)
		}
		in.Add(r)
	}
	return in, nil
}

// --- package-level default injector --------------------------------------

// def is the process-wide injector; nil (the common case) makes every
// production hook a single atomic load.
var def atomic.Pointer[Injector]

// Enable installs in as the process-wide injector (nil disables).
func Enable(in *Injector) { def.Store(in) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return def.Load() != nil }

// Default returns the installed injector, or nil.
func Default() *Injector { return def.Load() }

// At evaluates the point against the process-wide injector.
func At(point string) error { return def.Load().At(point) }

// Writer interposes the process-wide injector on w (w unchanged when
// chaos is disabled).
func Writer(point string, w io.Writer) io.Writer { return def.Load().Writer(point, w) }

// EnvVar and EnvSeed configure the process-wide injector at daemon
// startup (see EnableFromEnv).
const (
	EnvVar  = "IPCPD_CHAOS"
	EnvSeed = "IPCPD_CHAOS_SEED"
)

// ErrNotConfigured reports an empty/unset EnvVar to EnableFromEnv.
var ErrNotConfigured = errors.New("chaos: not configured")

// EnableFromEnv parses EnvVar (seeded by EnvSeed, default 1) and
// installs the result. Returns ErrNotConfigured when EnvVar is unset,
// so callers can tell "off" from "misconfigured".
func EnableFromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, ErrNotConfigured
	}
	seed := int64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad %s %q: %w", EnvSeed, s, err)
		}
		seed = n
	}
	in, err := Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	Enable(in)
	return in, nil
}
