package chaos

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.At("anything"); err != nil {
		t.Fatalf("nil injector At = %v", err)
	}
	var buf bytes.Buffer
	if w := in.Writer("p", &buf); w != &buf {
		t.Fatal("nil injector must return the writer unchanged")
	}
	Enable(nil)
	if err := At("anything"); err != nil {
		t.Fatalf("disabled package At = %v", err)
	}
}

func TestErrRule(t *testing.T) {
	in := New(1)
	in.Add(Rule{Point: "p", Kind: KindErr, Err: syscall.ENOSPC})
	err := in.At("p")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("At = %v, want ENOSPC", err)
	}
	if err := in.At("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired())
	}
}

func TestAfterCount(t *testing.T) {
	in := New(1)
	in.Add(Rule{Point: "p", Kind: KindErr, After: 2})
	if err := in.At("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := in.At("p"); err != nil {
		t.Fatalf("hit 2 fired early: %v", err)
	}
	if err := in.At("p"); err == nil {
		t.Fatal("hit 3 did not fire")
	}
}

func TestShortWriteLeavesPartialBytes(t *testing.T) {
	in := New(1)
	in.Add(Rule{Point: "w", Kind: KindShort})
	var buf bytes.Buffer
	w := in.Writer("w", &buf)
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write err = %v", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Fatalf("short write left %d bytes %q, want half", n, buf.String())
	}
	// KindShort must not fire through At (it only makes sense on writes).
	in2 := New(1)
	in2.Add(Rule{Point: "p", Kind: KindShort})
	if err := in2.At("p"); err != nil {
		t.Fatalf("KindShort fired through At: %v", err)
	}
}

func TestCrashFuncOverride(t *testing.T) {
	in := New(1)
	crashed := ""
	in.SetCrashFunc(func(point string) { crashed = point })
	in.Add(Rule{Point: "p", Kind: KindCrash})
	if err := in.At("p"); err != nil {
		t.Fatalf("crash rule returned error %v", err)
	}
	if crashed != "p" {
		t.Fatalf("crash fn saw %q", crashed)
	}
}

func TestSlowDelays(t *testing.T) {
	in := New(1)
	in.Add(Rule{Point: "p", Kind: KindSlow, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := in.At("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slow rule only delayed %v", d)
	}
}

func TestProbabilityRoughlyHolds(t *testing.T) {
	in := New(42)
	in.Add(Rule{Point: "p", Kind: KindErr, Prob: 0.5})
	fired := 0
	for i := 0; i < 1000; i++ {
		if in.At("p") != nil {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Fatalf("p=0.5 fired %d/1000", fired)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("journal.append=crash:0.05,checkpoint.save=enospc:0.2,ckpt.write=short,journal.fsync=slow:1:20ms,x=eio:1:3", 7)
	if err != nil {
		t.Fatal(err)
	}
	for point, want := range map[string]struct {
		kind  Kind
		prob  float64
		after int
	}{
		"journal.append":  {KindCrash, 0.05, 0},
		"checkpoint.save": {KindErr, 0.2, 0},
		"ckpt.write":      {KindShort, 1, 0},
		"journal.fsync":   {KindSlow, 1, 0},
		"x":               {KindErr, 1, 3},
	} {
		rs := in.rules[point]
		if len(rs) != 1 {
			t.Fatalf("%s: %d rules", point, len(rs))
		}
		r := rs[0]
		if r.Kind != want.kind || r.Prob != want.prob || r.After != want.after {
			t.Errorf("%s parsed as %+v, want %+v", point, r, want)
		}
	}
	if in.rules["journal.fsync"][0].Delay != 20*time.Millisecond {
		t.Errorf("slow delay = %v", in.rules["journal.fsync"][0].Delay)
	}

	for _, bad := range []string{
		"noequals", "p=", "p=warp", "p=eio:2", "p=eio:0", "p=slow:1:xyz",
		"p=eio:1:-1", "p=eio:1:3:junk",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}

	// Empty segments are tolerated (trailing commas from shell quoting).
	if in, err := Parse("p=eio,,", 1); err != nil || len(in.rules) != 1 {
		t.Errorf("trailing commas: %v %v", in, err)
	}
}

func TestEnableFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if _, err := EnableFromEnv(); !errors.Is(err, ErrNotConfigured) {
		t.Fatalf("unset env = %v, want ErrNotConfigured", err)
	}
	t.Setenv(EnvVar, "p=eio")
	t.Setenv(EnvSeed, "99")
	in, err := EnableFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Enable(nil) })
	if !Enabled() || Default() != in {
		t.Fatal("EnableFromEnv did not install the injector")
	}
	if err := At("p"); err == nil || !strings.Contains(err.Error(), "chaos p") {
		t.Fatalf("package At = %v", err)
	}
	t.Setenv(EnvSeed, "notanumber")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
}
