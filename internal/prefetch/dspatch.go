package prefetch

import "ipcp/internal/memsys"

// DSPatch is a lightweight rendition of the Dual Spatial Pattern
// prefetcher [Bera et al., MICRO 2019]: per trigger-PC it keeps two
// bit patterns for a page — a coverage-biased pattern (the OR of
// observed footprints) and an accuracy-biased pattern (the AND) — and
// selects between them with a feedback signal. The original switches
// on measured DRAM bandwidth headroom; as the prefetcher has no bus
// probe in this framework, the selector uses its own recent prefetch
// accuracy (low accuracy → accuracy-biased pattern), which tracks the
// same congestion signal. Deviation documented in DESIGN.md.
type DSPatch struct {
	table map[uint64]*dspatchEntry
	cap   int

	// active tracks the in-flight page footprints being accumulated.
	active []dspatchActive
	clock  uint64

	// accuracy feedback
	issued uint64
	useful uint64
	useAcc bool // true → accuracy-biased (AND) pattern
}

type dspatchEntry struct {
	covP uint64 // OR of footprints (coverage-biased)
	accP uint64 // AND of footprints (accuracy-biased)
	seen int
}

type dspatchActive struct {
	page  uint64
	pc    uint64
	bits  uint64
	lru   uint64
	valid bool
}

// NewDSPatch returns the default configuration.
func NewDSPatch() *DSPatch {
	return &DSPatch{
		table:  make(map[uint64]*dspatchEntry),
		cap:    1024,
		active: make([]dspatchActive, 32),
	}
}

// Name implements Prefetcher.
func (p *DSPatch) Name() string { return "dspatch" }

// Operate implements Prefetcher.
func (p *DSPatch) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	if a.HitPrefetched {
		p.useful++
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	page := memsys.PageNumber(addr)
	line := memsys.PageOffsetLine(addr)
	p.clock++

	for i := range p.active {
		e := &p.active[i]
		if e.valid && e.page == page {
			e.bits |= 1 << uint(line)
			e.lru = p.clock
			return
		}
	}

	// New page: learn the evicted page's footprint, then predict.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.active {
		if !p.active[i].valid {
			victim, oldest = i, 0
			break
		}
		if p.active[i].lru < oldest {
			victim, oldest = i, p.active[i].lru
		}
	}
	if v := &p.active[victim]; v.valid {
		p.learn(v.pc, v.bits)
	}
	p.active[victim] = dspatchActive{page: page, pc: a.IP, bits: 1 << uint(line), lru: p.clock, valid: true}

	e := p.table[hash64(a.IP)]
	if e == nil || e.seen < 2 {
		return
	}
	p.updateSelector()
	bits := e.covP
	if p.useAcc {
		bits = e.accP
	}
	base := addr &^ memsys.Addr(memsys.PageSize-1)
	for l := 0; l < memsys.LinesPerPage; l++ {
		if l == line || bits&(1<<uint(l)) == 0 {
			continue
		}
		if iss.Issue(Candidate{Addr: base + memsys.Addr(l)*memsys.BlockSize, Class: memsys.ClassNone}) {
			p.issued++
		}
	}
}

func (p *DSPatch) learn(pc, bits uint64) {
	k := hash64(pc)
	e := p.table[k]
	if e == nil {
		if len(p.table) >= p.cap {
			p.table = make(map[uint64]*dspatchEntry)
		}
		e = &dspatchEntry{covP: bits, accP: bits}
		p.table[k] = e
	} else {
		e.covP |= bits
		e.accP &= bits
	}
	e.seen++
}

func (p *DSPatch) updateSelector() {
	if p.issued < 512 {
		return
	}
	acc := float64(p.useful) / float64(p.issued)
	p.useAcc = acc < 0.5
	p.issued, p.useful = 0, 0
}

// Fill implements Prefetcher.
func (p *DSPatch) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *DSPatch) Cycle(int64) {}

func init() {
	Register("dspatch", func(Level) Prefetcher { return NewDSPatch() })
}
