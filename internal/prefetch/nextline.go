package prefetch

import "ipcp/internal/memsys"

// NextLine is the classic next-line prefetcher: on an access to block
// X, prefetch X+1..X+Degree (within the page). The paper's multi-level
// combinations use NL variants at L2 and the LLC, and a miss-throttled
// NL at L1 (DPC-3's "throttled NL").
type NextLine struct {
	// Degree is the number of consecutive lines prefetched.
	Degree int
	// OnMissOnly restricts triggering to demand misses (the throttled
	// variant).
	OnMissOnly bool
}

// NewNextLine returns a degree-1 next-line prefetcher.
func NewNextLine() *NextLine { return &NextLine{Degree: 1} }

// Name implements Prefetcher.
func (p *NextLine) Name() string {
	if p.OnMissOnly {
		return "nl-miss"
	}
	return "nl"
}

// Operate implements Prefetcher.
func (p *NextLine) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	if p.OnMissOnly && a.Hit {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr // train on virtual addresses where available
	}
	deg := p.Degree
	if deg <= 0 {
		deg = 1
	}
	for k := 1; k <= deg; k++ {
		cand := memsys.BlockAlign(addr) + memsys.Addr(k*memsys.BlockSize)
		if !memsys.SamePage(addr, cand) {
			return
		}
		iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNL})
	}
}

// Fill implements Prefetcher.
func (p *NextLine) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *NextLine) Cycle(int64) {}

func init() {
	Register("nl", func(Level) Prefetcher { return NewNextLine() })
	Register("nl-miss", func(Level) Prefetcher { return &NextLine{Degree: 1, OnMissOnly: true} })
}
