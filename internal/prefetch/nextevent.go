package prefetch

// NextEvent implementations for the built-in prefetchers (see the
// NextEventer contract in prefetch.go). A prefetcher whose Cycle hook
// is an unconditional no-op always reports NoEvent: skipping its Cycle
// calls cannot change anything. Wrappers delegate; anything stateful
// reports the earliest cycle its Cycle hook would act.

func (p *BOP) NextEvent(int64) int64         { return NoEvent }
func (p *NextLine) NextEvent(int64) int64    { return NoEvent }
func (p *VLDP) NextEvent(int64) int64        { return NoEvent }
func (p *IPStride) NextEvent(int64) int64    { return NoEvent }
func (p *SMS) NextEvent(int64) int64         { return NoEvent }
func (p *DSPatch) NextEvent(int64) int64     { return NoEvent }
func (p *MLOP) NextEvent(int64) int64        { return NoEvent }
func (p *ThrottledNL) NextEvent(int64) int64 { return NoEvent }
func (p *Stream) NextEvent(int64) int64      { return NoEvent }
func (p *Bingo) NextEvent(int64) int64       { return NoEvent }
func (p *SPP) NextEvent(int64) int64         { return NoEvent }

// NextEvent reports the earliest pending delayed release. The scheduler
// never jumps past it, so Cycle observes exactly the same delayed set at
// the release cycle as it would under cycle-by-cycle clocking.
func (p *TSKID) NextEvent(now int64) int64 {
	if len(p.delayed) == 0 {
		return NoEvent
	}
	next := NoEvent
	for _, d := range p.delayed {
		if d.at < next {
			next = d.at
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// NextEvent delegates to the guarded prefetcher. A tripped (disabled)
// guard is permanently inert. An inner prefetcher that does not declare
// its own bound keeps the conservative every-cycle clocking — that
// includes the fault-injection prefetchers, whose panics must fire at
// exactly the same cycle as under the reference scheduler.
func (g *Guard) NextEvent(now int64) int64 {
	if g.disabled {
		return NoEvent
	}
	if g.innerNext != nil {
		return g.innerNext.NextEvent(now)
	}
	return now + 1
}

// NextEvent delegates to the filtered prefetcher (the perceptron layer
// itself has no clocked state).
func (p *PPF) NextEvent(now int64) int64 {
	if ne, ok := p.inner.(NextEventer); ok {
		return ne.NextEvent(now)
	}
	return now + 1
}

// NextEvent delegates to the wrapped prefetcher.
func (f FillAt) NextEvent(now int64) int64 {
	if ne, ok := f.Inner.(NextEventer); ok {
		return ne.NextEvent(now)
	}
	return now + 1
}

// NextEvent reports the earliest bound across all children.
func (c *Composite) NextEvent(now int64) int64 {
	next := NoEvent
	for _, ch := range c.children {
		t := now + 1
		if ne, ok := ch.(NextEventer); ok {
			t = ne.NextEvent(now)
		}
		if t < next {
			next = t
		}
	}
	return next
}
