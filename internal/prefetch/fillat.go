package prefetch

import "ipcp/internal/memsys"

// FillAt wraps a prefetcher and forces every candidate to fill at the
// given level instead of the issuing cache. The paper's Figure 1 uses
// this to study "learn at L1 but fill only to L2" placements.
type FillAt struct {
	Inner Prefetcher
	Level memsys.Level
}

// Name implements Prefetcher.
func (f FillAt) Name() string { return f.Inner.Name() + "@" + f.Level.String() }

type fillAtIssuer struct {
	iss   Issuer
	level memsys.Level
}

func (fi fillAtIssuer) Issue(c Candidate) bool {
	c.FillLevel = fi.level
	return fi.iss.Issue(c)
}

// Operate implements Prefetcher.
func (f FillAt) Operate(now int64, a *Access, iss Issuer) {
	f.Inner.Operate(now, a, fillAtIssuer{iss, f.Level})
}

// Fill implements Prefetcher.
func (f FillAt) Fill(now int64, e *FillEvent) { f.Inner.Fill(now, e) }

// Cycle implements Prefetcher.
func (f FillAt) Cycle(now int64) { f.Inner.Cycle(now) }
