package prefetch

import (
	"testing"

	"ipcp/internal/memsys"
)

// recorder collects issued candidates.
type recorder struct {
	cands []Candidate
	// rejectAll simulates a full PQ.
	rejectAll bool
}

func (r *recorder) Issue(c Candidate) bool {
	if r.rejectAll {
		return false
	}
	r.cands = append(r.cands, c)
	return true
}

func (r *recorder) blocks() map[uint64]bool {
	m := map[uint64]bool{}
	for _, c := range r.cands {
		m[memsys.BlockNumber(c.Addr)] = true
	}
	return m
}

func (r *recorder) reset() { r.cands = r.cands[:0] }

// access drives one demand load through a prefetcher.
func access(p Prefetcher, rec *recorder, now int64, ip, vaddr uint64, hit bool) {
	p.Operate(now, &Access{
		Addr: vaddr, VAddr: vaddr, IP: ip,
		Type: memsys.Load, Hit: hit,
	}, rec)
}

func TestRegistryNames(t *testing.T) {
	want := []string{"nl", "nl-miss", "ipstride", "stream", "bop", "mlop",
		"spp", "vldp", "bingo", "bingo119", "sms", "dspatch", "spp-ppf",
		"spp-ppf-dspatch", "tskid"}
	for _, n := range want {
		p, err := New(n, memsys.LevelL1D)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if p == nil {
			t.Errorf("New(%q) returned nil", n)
		}
	}
	if _, err := New("bogus", memsys.LevelL1D); err == nil {
		t.Error("unknown prefetcher accepted")
	}
	if p, _ := New("none", memsys.LevelL1D); p.Name() != "none" {
		t.Error("none prefetcher wrong")
	}
}

func TestNextLineBasics(t *testing.T) {
	p := NewNextLine()
	rec := &recorder{}
	access(p, rec, 0, 0x400, 0x10000, false)
	if len(rec.cands) != 1 {
		t.Fatalf("issued %d, want 1", len(rec.cands))
	}
	if rec.cands[0].Addr != 0x10040 {
		t.Errorf("candidate %#x, want 0x10040", rec.cands[0].Addr)
	}
	if rec.cands[0].Class != memsys.ClassNL {
		t.Errorf("class = %v", rec.cands[0].Class)
	}
	// Never across a page boundary.
	rec.reset()
	access(p, rec, 0, 0x400, 0x10fc0, false) // last line of page
	if len(rec.cands) != 0 {
		t.Errorf("next-line crossed page boundary: %#x", rec.cands[0].Addr)
	}
}

func TestNextLineMissOnly(t *testing.T) {
	p := &NextLine{Degree: 1, OnMissOnly: true}
	rec := &recorder{}
	access(p, rec, 0, 0x400, 0x10000, true)
	if len(rec.cands) != 0 {
		t.Error("miss-only NL triggered on a hit")
	}
	access(p, rec, 0, 0x400, 0x10000, false)
	if len(rec.cands) != 1 {
		t.Error("miss-only NL did not trigger on a miss")
	}
}

func TestIPStrideLearnsStride(t *testing.T) {
	p := NewIPStride()
	rec := &recorder{}
	const ip = 0x401000
	base := uint64(0x20000)
	stride := uint64(3 * memsys.BlockSize)
	// Training: a few accesses with constant stride.
	for i := uint64(0); i < 4; i++ {
		access(p, rec, int64(i), ip, base+i*stride, false)
	}
	rec.reset()
	access(p, rec, 10, ip, base+4*stride, false)
	if len(rec.cands) == 0 {
		t.Fatal("trained IP-stride issued nothing")
	}
	want := memsys.BlockNumber(base+4*stride) + 3
	if memsys.BlockNumber(rec.cands[0].Addr) != want {
		t.Errorf("first candidate block %d, want %d",
			memsys.BlockNumber(rec.cands[0].Addr), want)
	}
	if len(rec.cands) > p.Degree {
		t.Errorf("issued %d > degree %d", len(rec.cands), p.Degree)
	}
}

func TestIPStrideNoConfidenceOnAlternating(t *testing.T) {
	p := NewIPStride()
	rec := &recorder{}
	const ip = 0x402000
	// Alternating strides 1,2,1,2 never build confidence.
	addr := uint64(0x30000)
	deltas := []uint64{1, 2, 1, 2, 1, 2, 1, 2}
	for i, d := range deltas {
		access(p, rec, int64(i), ip, addr, false)
		addr += d * memsys.BlockSize
	}
	if len(rec.cands) != 0 {
		t.Errorf("IP-stride prefetched %d times on an alternating pattern", len(rec.cands))
	}
}

func TestIPStridePageBoundary(t *testing.T) {
	p := NewIPStride()
	rec := &recorder{}
	const ip = 0x403000
	base := uint64(0x40000)
	for i := uint64(0); i < 60; i++ {
		access(p, rec, int64(i), ip, base+i*memsys.BlockSize, false)
	}
	for _, c := range rec.cands {
		if memsys.PageNumber(c.Addr) != memsys.PageNumber(base) {
			t.Fatalf("prefetch crossed page: %#x", c.Addr)
		}
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	p := NewStream()
	rec := &recorder{}
	base := uint64(0x50000)
	for i := uint64(0); i < 6; i++ {
		access(p, rec, 0, 0, base+i*memsys.BlockSize, false)
	}
	if len(rec.cands) == 0 {
		t.Fatal("stream prefetcher issued nothing on a sequential stream")
	}
	for _, c := range rec.cands {
		if c.Addr <= base {
			t.Errorf("ascending stream prefetched backwards: %#x", c.Addr)
		}
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	p := NewStream()
	rec := &recorder{}
	base := uint64(0x60000) + 32*memsys.BlockSize
	for i := uint64(0); i < 6; i++ {
		access(p, rec, 0, 0, base-i*memsys.BlockSize, false)
	}
	if len(rec.cands) == 0 {
		t.Fatal("stream prefetcher issued nothing on a descending stream")
	}
	for _, c := range rec.cands {
		if c.Addr >= base {
			t.Errorf("descending stream prefetched forwards: %#x", c.Addr)
		}
	}
}

func TestBOPElectsDominantOffset(t *testing.T) {
	p := NewBOP()
	rec := &recorder{}
	// Feed a long stride-2 miss stream (fills echo into the RR table).
	addr := uint64(1 << 30)
	for i := 0; i < 3000; i++ {
		a := &Access{Addr: addr, VAddr: addr, IP: 0x400, Type: memsys.Load, Hit: false}
		p.Operate(0, a, rec)
		p.Fill(0, &FillEvent{Addr: addr, VAddr: addr})
		addr += 2 * memsys.BlockSize
		if addr%memsys.PageSize == 0 {
			addr += 0 // keep walking; page crossings are fine for BOP scoring
		}
	}
	// On a constant stride-2 stream every positive multiple of 2 is a
	// valid offset and they tie in score; BOP must elect one of them.
	if p.best <= 0 || p.best%2 != 0 {
		t.Errorf("elected offset %d, want a positive multiple of the stride 2", p.best)
	}
	if !p.bestOK {
		t.Error("prefetching disabled despite a clear pattern")
	}
}

func TestMLOPElectsOffsets(t *testing.T) {
	p := NewMLOP()
	rec := &recorder{}
	// Unit-stride stream: offset +1 must dominate.
	addr := uint64(2 << 30)
	for i := 0; i < 2000; i++ {
		access(p, rec, int64(i), 0x400, addr, false)
		addr += memsys.BlockSize
	}
	offs := p.Offsets()
	if len(offs) == 0 || offs[0] != 1 {
		t.Errorf("elected offsets %v, want +1 first", offs)
	}
	rec.reset()
	access(p, rec, 9999, 0x400, addr, false)
	if len(rec.cands) == 0 {
		t.Error("trained MLOP issued nothing")
	}
}

func TestSPPFollowsSignaturePath(t *testing.T) {
	p := NewSPP()
	rec := &recorder{}
	// Repeating complex pattern 1,2 within pages: SPP should learn it
	// and prefetch along the path.
	addr := uint64(3 << 30)
	deltas := []uint64{1, 2}
	for i := 0; i < 4000; i++ {
		access(p, rec, int64(i), 0x400, addr, false)
		addr += deltas[i%2] * memsys.BlockSize
	}
	if len(rec.cands) == 0 {
		t.Fatal("SPP issued nothing on a repeating delta pattern")
	}
	// Candidates must stay in page.
	for _, c := range rec.cands {
		if memsys.PageNumber(c.Addr) > memsys.PageNumber(addr)+1 {
			t.Fatalf("SPP escaped the page: %#x vs %#x", c.Addr, addr)
		}
	}
}

func TestSPPConfidenceDecaysOnNoise(t *testing.T) {
	p := NewSPP()
	rec := &recorder{}
	// Pure random offsets: SPP must stay quiet (low path confidence).
	addr := uint64(4 << 30)
	rng := uint64(12345)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		off := (rng >> 33) % memsys.LinesPerPage
		a := addr&^memsys.Addr(memsys.PageSize-1) + memsys.Addr(off)*memsys.BlockSize
		access(p, rec, int64(i), 0x400, a, false)
		if i%64 == 0 {
			addr += memsys.PageSize
		}
	}
	issueRate := float64(len(rec.cands)) / 3000
	if issueRate > 0.5 {
		t.Errorf("SPP issue rate %.2f on random traffic; confidence gate broken", issueRate)
	}
}

func TestVLDPLearnsDeltaSequence(t *testing.T) {
	p := NewVLDP()
	rec := &recorder{}
	addr := uint64(5 << 30)
	deltas := []uint64{3, 3, 4} // the paper's CPLX example
	for i := 0; i < 3000; i++ {
		access(p, rec, int64(i), 0x400, addr, false)
		addr += deltas[i%3] * memsys.BlockSize
	}
	if len(rec.cands) == 0 {
		t.Fatal("VLDP issued nothing on a repeating delta sequence")
	}
}

func TestBingoRecallsFootprint(t *testing.T) {
	p := NewBingo(2048)
	rec := &recorder{}
	const ip = 0x400
	// Visit a fixed footprint in region 1, then trigger region 2 with
	// the same PC+offset: the footprint must be prefetched.
	region1 := uint64(6 << 30)
	lines := []int{0, 3, 5, 9, 12}
	for _, l := range lines {
		access(p, rec, 0, ip, region1+uint64(l)*memsys.BlockSize, false)
	}
	// New region triggers eviction+learning of region1 once region1
	// leaves the AT; force it by touching many regions.
	for r := 1; r <= bingoATSize+1; r++ {
		access(p, rec, 0, 0x999, region1+uint64(r)*0x800+0x7<<6, false)
	}
	rec.reset()
	region2 := region1 + 0x100000
	access(p, rec, 0, ip, region2, false) // same trigger offset 0
	got := rec.blocks()
	for _, l := range lines[1:] {
		want := memsys.BlockNumber(region2 + uint64(l)*memsys.BlockSize)
		if !got[want] {
			t.Errorf("footprint line %d not prefetched", l)
		}
	}
}

func TestSMSRecallsFootprint(t *testing.T) {
	p := NewSMS()
	rec := &recorder{}
	const ip = 0x440
	region1 := uint64(7 << 30)
	lines := []int{0, 2, 4}
	for _, l := range lines {
		access(p, rec, 0, ip, region1+uint64(l)*memsys.BlockSize, false)
	}
	for r := 1; r <= 33; r++ {
		access(p, rec, 0, 0x888, region1+uint64(r)*0x800+0x3<<6, false)
	}
	rec.reset()
	region2 := region1 + 0x200000
	access(p, rec, 0, ip, region2, false)
	got := rec.blocks()
	for _, l := range lines[1:] {
		if !got[memsys.BlockNumber(region2+uint64(l)*memsys.BlockSize)] {
			t.Errorf("SMS did not recall line %d", l)
		}
	}
}

func TestDSPatchPatterns(t *testing.T) {
	p := NewDSPatch()
	rec := &recorder{}
	const ip = 0x460
	// Two generations of the same page-footprint shape from one PC.
	for gen := 0; gen < 3; gen++ {
		page := uint64(8<<30) + uint64(gen)*memsys.PageSize
		for _, l := range []int{0, 1, 2, 3} {
			access(p, rec, 0, ip, page+uint64(l)*memsys.BlockSize, false)
		}
		// Touch other pages to evict from the active table.
		for r := 0; r < 33; r++ {
			access(p, rec, 0, 0x777, uint64(9<<30)+uint64(gen*33+r)*memsys.PageSize, false)
		}
	}
	rec.reset()
	page := uint64(8<<30) + 100*memsys.PageSize
	access(p, rec, 0, ip, page, false)
	if len(rec.cands) == 0 {
		t.Fatal("DSPatch predicted nothing for a learned PC")
	}
	got := rec.blocks()
	for _, l := range []int{1, 2, 3} {
		if !got[memsys.BlockNumber(page+uint64(l)*memsys.BlockSize)] {
			t.Errorf("DSPatch missing line %d", l)
		}
	}
}

func TestPPFFiltersAndTrains(t *testing.T) {
	inner := NewNextLine()
	p := NewPPF(inner)
	rec := &recorder{}
	// Drive accesses; nothing should crash, and the filter must pass
	// candidates through initially (weights near zero >= tAccept).
	access(p, rec, 0, 0x400, 0x1000_0000, false)
	if p.Accepted == 0 {
		t.Fatal("fresh PPF rejected everything")
	}
	// Hammer negative training for this candidate shape.
	for i := 0; i < 200; i++ {
		rec.reset()
		access(p, rec, int64(i), 0x400, 0x1000_0000+uint64(i)*memsys.PageSize, false)
		for _, c := range rec.cands {
			p.Fill(0, &FillEvent{
				Addr: c.Addr, VAddr: c.Addr,
				Evicted: c.Addr, EvictedUnusedPrefetch: true,
			})
		}
	}
	rec.reset()
	before := p.Rejected
	for i := 0; i < 50; i++ {
		access(p, rec, int64(1000+i), 0x400, 0x2000_0000+uint64(i)*memsys.PageSize, false)
	}
	if p.Rejected == before {
		t.Error("PPF never learned to reject a uniformly useless pattern")
	}
}

func TestPPFPositiveTrainingKeepsAccepting(t *testing.T) {
	p := NewPPF(NewNextLine())
	rec := &recorder{}
	addr := uint64(0x3000_0000)
	for i := 0; i < 300; i++ {
		// Issue, then report the prefetched block useful.
		access(p, rec, int64(i), 0x400, addr, false)
		p.Operate(int64(i), &Access{
			Addr: addr + memsys.BlockSize, VAddr: addr + memsys.BlockSize,
			IP: 0x400, Type: memsys.Load, Hit: true, HitPrefetched: true,
		}, rec)
		addr += memsys.BlockSize
	}
	if p.Rejected > p.Accepted/10 {
		t.Errorf("PPF rejecting a useful stream: accepted=%d rejected=%d",
			p.Accepted, p.Rejected)
	}
}

func TestTSKIDDelaysPrefetches(t *testing.T) {
	p := NewTSKID()
	rec := &recorder{}
	const ip = 0x480
	base := uint64(10 << 30)
	// Slow cadence: one access every 500 cycles; stride 1.
	var now int64
	for i := uint64(0); i < 6; i++ {
		access(p, rec, now, ip, base+i*memsys.BlockSize, false)
		now += 500
	}
	// Some candidates must have been deferred rather than all issued.
	if len(p.delayed) == 0 && len(rec.cands) == 0 {
		t.Fatal("TSKID neither issued nor scheduled prefetches")
	}
	// Advance time: the delayed ones release and flush on next
	// Operate.
	p.Cycle(now + 10000)
	rec.reset()
	access(p, rec, now+10001, ip, base+6*memsys.BlockSize, false)
	if len(rec.cands) == 0 {
		t.Error("released prefetches never flushed")
	}
}

func TestCompositeFansOut(t *testing.T) {
	c := NewComposite(NewNextLine(), NewIPStride())
	if c.Name() != "nl+ipstride" {
		t.Errorf("composite name = %q", c.Name())
	}
	rec := &recorder{}
	access(c, rec, 0, 0x400, 0x11000, false)
	if len(rec.cands) == 0 {
		t.Error("composite issued nothing")
	}
	c.Fill(0, &FillEvent{Addr: 0x11000})
	c.Cycle(1)
}

func TestAllPrefetchersStayInPage(t *testing.T) {
	// Property: no baseline ever issues a candidate outside the page
	// of its trigger when fed in-page patterns. (BOP may elect
	// negative offsets but still respects the page check.)
	for _, name := range []string{"nl", "ipstride", "stream", "spp", "vldp", "mlop"} {
		p, err := New(name, memsys.LevelL1D)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recorder{}
		base := uint64(12 << 30)
		for i := uint64(0); i < 200; i++ {
			a := base + (i%64)*memsys.BlockSize
			p.Operate(0, &Access{Addr: a, VAddr: a, IP: 0x500, Type: memsys.Load}, rec)
		}
		for _, c := range rec.cands {
			if memsys.PageNumber(c.Addr) != memsys.PageNumber(base) {
				t.Errorf("%s crossed the page: %#x", name, c.Addr)
			}
		}
	}
}

func TestPrefetchersIgnoreNonDemand(t *testing.T) {
	for _, name := range []string{"nl", "ipstride", "stream", "bop", "mlop", "spp", "vldp", "bingo", "sms", "dspatch"} {
		p, _ := New(name, memsys.LevelL1D)
		rec := &recorder{}
		p.Operate(0, &Access{Addr: 0x7000, VAddr: 0x7000, IP: 1, Type: memsys.Writeback}, rec)
		if len(rec.cands) != 0 {
			t.Errorf("%s triggered on a writeback", name)
		}
	}
}

func TestThrottledNLGoesQuietWhenInaccurate(t *testing.T) {
	p := NewThrottledNL()
	rec := &recorder{}
	if !p.Enabled() {
		t.Fatal("must start enabled")
	}
	// A window of useless fills turns it off.
	for i := 0; i < tnlWindow; i++ {
		p.Fill(0, &FillEvent{Prefetch: true})
	}
	if p.Enabled() {
		t.Fatal("did not throttle at 0 accuracy")
	}
	// While off, only the sparse probe issues.
	issued := 0
	for i := 0; i < tnlProbeEvery*4; i++ {
		before := len(rec.cands)
		access(p, rec, int64(i), 0x400, uint64(0x9000_0000+i*4096), false)
		if len(rec.cands) > before {
			issued++
		}
	}
	if issued == 0 || issued > 6 {
		t.Errorf("probe rate while off = %d of %d misses", issued, tnlProbeEvery*4)
	}
	// A window of useful outcomes re-enables it.
	for i := 0; i < tnlWindow; i++ {
		p.Operate(0, &Access{Addr: 0x9100_0000, VAddr: 0x9100_0000,
			Type: memsys.Load, Hit: true, HitPrefetched: true}, rec)
		p.Fill(0, &FillEvent{Prefetch: true})
	}
	if !p.Enabled() {
		t.Error("did not re-enable after a useful window")
	}
}

func TestBingoPacingDrainsPending(t *testing.T) {
	p := NewBingo(2048)
	rec := &recorder{rejectAll: true}
	// Teach a full-region footprint under one PC, trigger with a full
	// queue: candidates park in pending.
	const ip = 0x777
	region1 := uint64(30 << 30)
	for l := 0; l < 32; l++ {
		access(p, rec, 0, ip, region1+uint64(l)*memsys.BlockSize, false)
	}
	for r := 1; r <= bingoATSize+1; r++ {
		access(p, rec, 0, 0x888, region1+uint64(r)*0x800+0x100, false)
	}
	region2 := region1 + 0x200000
	access(p, rec, 0, ip, region2, false)
	if len(p.pending) == 0 {
		t.Fatal("nothing parked while the queue was full")
	}
	// With the queue open, subsequent accesses drain the backlog.
	rec2 := &recorder{}
	for i := 0; i < 20 && len(p.pending) > 0; i++ {
		access(p, rec2, int64(i), 0x999, region1+uint64(i)*0x800+0x40, false)
	}
	if len(rec2.cands) == 0 {
		t.Error("pending footprint candidates never drained")
	}
}
