package prefetch

import "testing"

func TestNewIPStrideSizedPanicsOnBadSize(t *testing.T) {
	cases := []struct {
		name    string
		entries int
		panics  bool
	}{
		{"zero", 0, true},
		{"negative", -8, true},
		{"non-power-of-two", 48, true},
		{"one", 1, false},
		{"sixty-four", 64, false},
		{"large power of two", 1 << 16, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if tc.panics && r == nil {
					t.Errorf("NewIPStrideSized(%d, 3) did not panic", tc.entries)
				}
				if !tc.panics && r != nil {
					t.Errorf("NewIPStrideSized(%d, 3) panicked: %v", tc.entries, r)
				}
			}()
			NewIPStrideSized(tc.entries, 3)
		})
	}
}
