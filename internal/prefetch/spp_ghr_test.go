package prefetch

import (
	"testing"

	"ipcp/internal/memsys"
)

// TestSPPGHRCrossPage: a long unit-stride stream crossing page
// boundaries must keep prefetching in fresh pages without retraining
// from scratch (the GHR carries the signature over).
func TestSPPGHRCrossPage(t *testing.T) {
	p := NewSPP()
	rec := &recorder{}
	base := uint64(20 << 30)
	// Train through the first pages.
	for i := uint64(0); i < 3*memsys.LinesPerPage; i++ {
		access(p, rec, int64(i), 0x400, base+i*memsys.BlockSize, false)
	}
	// A GHR entry must have been parked for offset 0 of the next page.
	parked := false
	for _, g := range p.ghr {
		if g.valid {
			parked = true
		}
	}
	if !parked {
		t.Fatal("no cross-page path parked in the GHR")
	}
	// First access of the next page: SPP must issue immediately (the
	// bootstrapped signature points at delta +1 with confidence).
	rec.reset()
	next := base + 3*memsys.LinesPerPage*memsys.BlockSize
	access(p, rec, 1000, 0x400, next, false)
	if len(rec.cands) == 0 {
		t.Error("no prefetch on the first access of a fresh page despite GHR bootstrap")
	}
}

func TestSPPGHRInsertReplacesSameOffset(t *testing.T) {
	p := NewSPP()
	p.ghrInsert(sppGHREntry{valid: true, sig: 1, lastDelta: 1, offset: 5})
	p.ghrInsert(sppGHREntry{valid: true, sig: 2, lastDelta: 2, offset: 5})
	count := 0
	for _, g := range p.ghr {
		if g.valid && g.offset == 5 {
			count++
			if g.sig != 2 {
				t.Errorf("stale GHR entry survived: sig %d", g.sig)
			}
		}
	}
	if count != 1 {
		t.Errorf("offset-5 entries = %d, want 1", count)
	}
}
