package prefetch

import "ipcp/internal/memsys"

// VLDP is the Variable Length Delta Prefetcher [Shevgoor et al., MICRO
// 2015]: per-page delta histories feed a cascade of delta prediction
// tables keyed by progressively longer delta sequences; the longest
// matching history wins. An offset prediction table (OPT) covers the
// first access to a page.
type VLDP struct {
	Degree int

	dhb  []vldpDHB
	dpt1 map[int64]int64
	dpt2 map[[2]int64]int64
	dpt3 map[[3]int64]int64
	opt  [memsys.LinesPerPage]int64

	clock uint64
}

type vldpDHB struct {
	page       uint64
	lastOffset int
	deltas     [3]int64 // most recent first
	numDeltas  int
	lru        uint64
	valid      bool
}

const vldpDHBSize = 16

// NewVLDP returns the default degree-4 configuration.
func NewVLDP() *VLDP {
	return &VLDP{
		Degree: 4,
		dhb:    make([]vldpDHB, vldpDHBSize),
		dpt1:   make(map[int64]int64),
		dpt2:   make(map[[2]int64]int64),
		dpt3:   make(map[[3]int64]int64),
	}
}

// Name implements Prefetcher.
func (p *VLDP) Name() string { return "vldp" }

// Operate implements Prefetcher.
func (p *VLDP) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	page := memsys.PageNumber(addr)
	offset := memsys.PageOffsetLine(addr)
	p.clock++

	e := p.findDHB(page)
	if e.numDeltas == 0 && e.lastOffset == -1 {
		// First access to the page: train/consult the OPT.
		e.lastOffset = offset
		if d := p.opt[offset]; d != 0 {
			p.chase(addr, offset, []int64{d}, iss)
		}
		return
	}
	delta := int64(offset - e.lastOffset)
	if delta == 0 {
		return
	}
	if e.numDeltas == 0 {
		p.opt[e.lastOffset] = delta
	}

	// Train the DPTs on the history that predicted this delta. The
	// maps model fixed-capacity hardware tables: past the cap they are
	// cleared rather than grown.
	const dptCap = 4096
	if e.numDeltas >= 1 {
		if len(p.dpt1) >= dptCap {
			p.dpt1 = make(map[int64]int64)
		}
		p.dpt1[e.deltas[0]] = delta
	}
	if e.numDeltas >= 2 {
		if len(p.dpt2) >= dptCap {
			p.dpt2 = make(map[[2]int64]int64)
		}
		p.dpt2[[2]int64{e.deltas[0], e.deltas[1]}] = delta
	}
	if e.numDeltas >= 3 {
		if len(p.dpt3) >= dptCap {
			p.dpt3 = make(map[[3]int64]int64)
		}
		p.dpt3[[3]int64{e.deltas[0], e.deltas[1], e.deltas[2]}] = delta
	}

	// Shift the new delta in.
	e.deltas[2], e.deltas[1], e.deltas[0] = e.deltas[1], e.deltas[0], delta
	if e.numDeltas < 3 {
		e.numDeltas++
	}
	e.lastOffset = offset

	// Predict: longest history first.
	hist := []int64{e.deltas[0], e.deltas[1], e.deltas[2]}
	p.chase(addr, offset, hist[:e.numDeltas], iss)
}

// chase walks the prediction chain up to Degree prefetches.
func (p *VLDP) chase(addr memsys.Addr, offset int, hist []int64, iss Issuer) {
	cur := offset
	h := append([]int64(nil), hist...)
	for k := 0; k < p.Degree; k++ {
		d, ok := p.predict(h)
		if !ok || d == 0 {
			return
		}
		cur += int(d)
		if cur < 0 || cur >= memsys.LinesPerPage {
			return
		}
		cand := addr&^memsys.Addr(memsys.PageSize-1) + memsys.Addr(cur)*memsys.BlockSize
		iss.Issue(Candidate{Addr: cand, Class: memsys.ClassNone})
		// Shift the predicted delta into the speculative history.
		h = append([]int64{d}, h...)
		if len(h) > 3 {
			h = h[:3]
		}
	}
}

func (p *VLDP) predict(h []int64) (int64, bool) {
	if len(h) >= 3 {
		if d, ok := p.dpt3[[3]int64{h[0], h[1], h[2]}]; ok {
			return d, true
		}
	}
	if len(h) >= 2 {
		if d, ok := p.dpt2[[2]int64{h[0], h[1]}]; ok {
			return d, true
		}
	}
	if len(h) >= 1 {
		if d, ok := p.dpt1[h[0]]; ok {
			return d, true
		}
	}
	return 0, false
}

func (p *VLDP) findDHB(page uint64) *vldpDHB {
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.dhb {
		e := &p.dhb[i]
		if e.valid && e.page == page {
			e.lru = p.clock
			return e
		}
		if !e.valid {
			victim, oldest = i, 0
		} else if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	p.dhb[victim] = vldpDHB{page: page, lastOffset: -1, lru: p.clock, valid: true}
	return &p.dhb[victim]
}

// Fill implements Prefetcher.
func (p *VLDP) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *VLDP) Cycle(int64) {}

func init() {
	Register("vldp", func(Level) Prefetcher { return NewVLDP() })
}
