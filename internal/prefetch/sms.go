package prefetch

import "ipcp/internal/memsys"

// SMS is Spatial Memory Streaming [Somogyi et al., ISCA 2006]: region
// footprints recorded in an active generation table and predicted from
// a pattern history table keyed by (PC, trigger offset). It is the
// predecessor Bingo improves on; included as a baseline and storage
// comparison point.
type SMS struct {
	regionBits int
	agt        []bingoAT // same shape as Bingo's accumulation entries
	pht        map[uint64]uint64
	phtCap     int
	clock      uint64
}

// NewSMS returns an SMS with a 4K-entry pattern history table over 2KB
// regions.
func NewSMS() *SMS {
	return &SMS{
		regionBits: 11,
		agt:        make([]bingoAT, 32),
		pht:        make(map[uint64]uint64),
		phtCap:     4096,
	}
}

// Name implements Prefetcher.
func (p *SMS) Name() string { return "sms" }

func (p *SMS) key(pc uint64, offset int) uint64 {
	return hash64(pc<<6 ^ uint64(offset))
}

// Operate implements Prefetcher.
func (p *SMS) Operate(now int64, a *Access, iss Issuer) {
	if !a.Type.IsDemand() {
		return
	}
	addr := a.Addr
	if a.VAddr != 0 {
		addr = a.VAddr
	}
	region := uint64(addr) >> p.regionBits
	line := int(addr>>memsys.BlockBits) & (1<<(p.regionBits-memsys.BlockBits) - 1)
	p.clock++

	for i := range p.agt {
		e := &p.agt[i]
		if e.valid && e.region == region {
			e.bits |= 1 << uint(line)
			e.lru = p.clock
			return
		}
	}

	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.agt {
		if !p.agt[i].valid {
			victim, oldest = i, 0
			break
		}
		if p.agt[i].lru < oldest {
			victim, oldest = i, p.agt[i].lru
		}
	}
	if v := &p.agt[victim]; v.valid {
		if len(p.pht) >= p.phtCap {
			// Capacity model: clear rather than grow unboundedly.
			p.pht = make(map[uint64]uint64)
		}
		p.pht[p.key(v.pc, v.offset)] = v.bits
	}
	p.agt[victim] = bingoAT{
		region: region, pc: a.IP, offset: line,
		bits: 1 << uint(line), lru: p.clock, valid: true,
	}

	if bits, ok := p.pht[p.key(a.IP, line)]; ok {
		base := memsys.Addr(region) << p.regionBits
		for l := 0; l < 1<<(p.regionBits-memsys.BlockBits); l++ {
			if l == line || bits&(1<<uint(l)) == 0 {
				continue
			}
			iss.Issue(Candidate{Addr: base + memsys.Addr(l)*memsys.BlockSize, Class: memsys.ClassNone})
		}
	}
}

// Fill implements Prefetcher.
func (p *SMS) Fill(int64, *FillEvent) {}

// Cycle implements Prefetcher.
func (p *SMS) Cycle(int64) {}

func init() {
	Register("sms", func(Level) Prefetcher { return NewSMS() })
}
