package prefetch

import "ipcp/internal/memsys"

// PPF wraps an underlying prefetcher with a Perceptron Prefetch Filter
// [Bhatia et al., ISCA 2019]: every candidate the inner prefetcher
// proposes is scored by a set of perceptron weight tables over simple
// features; candidates below the rejection threshold are dropped. The
// filter trains on outcome events — a demand hit on a prefetched line
// is a positive example, an unused prefetched line evicted is a
// negative one — using a table of recently filtered decisions.
type PPF struct {
	inner Prefetcher

	// weight tables, one per feature, each 1024 7-bit-equivalent
	// signed counters.
	weights [ppfNumFeatures][]int16

	// recent remembers the features of recently accepted prefetches,
	// keyed by block number, so outcomes can train the right weights.
	recent map[uint64][ppfNumFeatures]uint16

	// thresholds
	tAccept int
	tTrain  int

	Accepted, Rejected uint64
}

const (
	ppfNumFeatures = 4
	ppfTableSize   = 1024
	ppfWeightMax   = 63
)

// NewPPF wraps inner with a perceptron filter.
func NewPPF(inner Prefetcher) *PPF {
	p := &PPF{
		inner:   inner,
		recent:  make(map[uint64][ppfNumFeatures]uint16),
		tAccept: -4,
		tTrain:  16,
	}
	for i := range p.weights {
		p.weights[i] = make([]int16, ppfTableSize)
	}
	return p
}

// Name implements Prefetcher.
func (p *PPF) Name() string { return p.inner.Name() + "+ppf" }

// features extracts the perceptron features for a candidate block
// triggered by access a.
func (p *PPF) features(a *Access, cand memsys.Addr) [ppfNumFeatures]uint16 {
	trig := a.Addr
	if a.VAddr != 0 {
		trig = a.VAddr
	}
	delta := int64(memsys.BlockNumber(cand)) - int64(memsys.BlockNumber(trig))
	return [ppfNumFeatures]uint16{
		uint16(hash64(a.IP) % ppfTableSize),
		uint16(uint64(delta+memsys.LinesPerPage) % ppfTableSize),
		uint16(memsys.BlockNumber(cand) % ppfTableSize),
		uint16(hash64(a.IP^uint64(delta)<<32) % ppfTableSize),
	}
}

func (p *PPF) score(f [ppfNumFeatures]uint16) int {
	s := 0
	for i := range f {
		s += int(p.weights[i][f[i]])
	}
	return s
}

func (p *PPF) train(f [ppfNumFeatures]uint16, up bool) {
	for i := range f {
		w := &p.weights[i][f[i]]
		if up && *w < ppfWeightMax {
			*w++
		}
		if !up && *w > -ppfWeightMax {
			*w--
		}
	}
}

// ppfIssuer intercepts the inner prefetcher's candidates.
type ppfIssuer struct {
	p   *PPF
	a   *Access
	iss Issuer
}

// Issue implements Issuer, filtering through the perceptron.
func (fi ppfIssuer) Issue(c Candidate) bool {
	f := fi.p.features(fi.a, c.Addr)
	if fi.p.score(f) < fi.p.tAccept {
		fi.p.Rejected++
		// Remember rejected candidates too: if the block is demanded
		// soon we missed coverage and should train upward. We encode
		// rejection by storing with a sentinel in recent (same
		// training signal via demand misses is not observable here,
		// so rejected candidates simply age out).
		return false
	}
	fi.p.Accepted++
	if len(fi.p.recent) > 4096 {
		fi.p.recent = make(map[uint64][ppfNumFeatures]uint16)
	}
	fi.p.recent[memsys.BlockNumber(c.Addr)] = f
	return fi.iss.Issue(c)
}

// Operate implements Prefetcher.
func (p *PPF) Operate(now int64, a *Access, iss Issuer) {
	// Outcome training: a demand hit on a prefetched line is a
	// positive example for the features that admitted it.
	if a.HitPrefetched {
		trig := a.Addr
		if a.VAddr != 0 {
			trig = a.VAddr
		}
		if f, ok := p.recent[memsys.BlockNumber(trig)]; ok {
			p.train(f, true)
			delete(p.recent, memsys.BlockNumber(trig))
		}
	}
	p.inner.Operate(now, a, ppfIssuer{p: p, a: a, iss: iss})
}

// Fill implements Prefetcher: an unused prefetched victim is a
// negative training example.
func (p *PPF) Fill(now int64, f *FillEvent) {
	if f.EvictedUnusedPrefetch {
		key := memsys.BlockNumber(f.Evicted)
		if feat, ok := p.recent[key]; ok {
			p.train(feat, false)
			delete(p.recent, key)
		}
	}
	p.inner.Fill(now, f)
}

// Cycle implements Prefetcher.
func (p *PPF) Cycle(now int64) { p.inner.Cycle(now) }

func init() {
	Register("spp-ppf", func(Level) Prefetcher { return NewPPF(NewSPP()) })
}
