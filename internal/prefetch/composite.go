package prefetch

import "strings"

// Composite runs several prefetchers side by side at one cache level,
// fanning every hook out to each child. The paper's best L2
// combination, SPP+Perceptron+DSPatch, is a composite of the filtered
// SPP and the adjunct DSPatch.
type Composite struct {
	children []Prefetcher
}

// NewComposite combines the given prefetchers.
func NewComposite(children ...Prefetcher) *Composite {
	return &Composite{children: children}
}

// Name implements Prefetcher.
func (c *Composite) Name() string {
	names := make([]string, len(c.children))
	for i, ch := range c.children {
		names[i] = ch.Name()
	}
	return strings.Join(names, "+")
}

// Operate implements Prefetcher.
func (c *Composite) Operate(now int64, a *Access, iss Issuer) {
	for _, ch := range c.children {
		ch.Operate(now, a, iss)
	}
}

// Fill implements Prefetcher.
func (c *Composite) Fill(now int64, f *FillEvent) {
	for _, ch := range c.children {
		ch.Fill(now, f)
	}
}

// Cycle implements Prefetcher.
func (c *Composite) Cycle(now int64) {
	for _, ch := range c.children {
		ch.Cycle(now)
	}
}

func init() {
	Register("spp-ppf-dspatch", func(Level) Prefetcher {
		return NewComposite(NewPPF(NewSPP()), NewDSPatch())
	})
}
